#ifndef DICHO_STORAGE_LSM_SKIPLIST_H_
#define DICHO_STORAGE_LSM_SKIPLIST_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"

namespace dicho::storage::lsm {

/// Ordered skip list, the memtable's core structure (LevelDB/RocksDB
/// default). Keys are owned by the list; Comparator is a functor with
/// `int operator()(const Key&, const Key&)` returning <0/0/>0.
///
/// Duplicate keys are the caller's responsibility to avoid (the memtable's
/// internal keys embed a unique sequence number so duplicates cannot occur).
template <typename Key, class Comparator>
class SkipList {
 public:
  explicit SkipList(Comparator cmp, uint64_t seed = 0xDECAF)
      : compare_(cmp),
        rng_(seed),
        head_(NewNode(Key(), kMaxHeight)),
        max_height_(1) {}

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || compare_(key, x->key) != 0);
    (void)x;

    int height = RandomHeight();
    if (height > max_height_) {
      for (int i = max_height_; i < height; i++) prev[i] = head_;
      max_height_ = height;
    }
    Node* node = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      node->next[i] = prev[i]->next[i];
      prev[i]->next[i] = node;
    }
    size_++;
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && compare_(key, x->key) == 0;
  }

  size_t size() const { return size_; }

  /// Forward iterator; invalidated only by destruction of the list.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->next[0]; }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr unsigned int kBranching = 4;

  struct Node {
    Key key;
    std::vector<Node*> next;
    Node(const Key& k, int height) : key(k), next(height, nullptr) {}
  };

  Node* NewNode(const Key& key, int height) { return new Node(key, height); }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rng_.Uniform(kBranching) == 0) height++;
    return height;
  }

  /// First node with key >= target; fills prev[] when non-null.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->next[level];
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Comparator const compare_;
  Rng rng_;
  Node* const head_;
  int max_height_;
  size_t size_ = 0;
};

}  // namespace dicho::storage::lsm

#endif  // DICHO_STORAGE_LSM_SKIPLIST_H_
