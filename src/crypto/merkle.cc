#include "crypto/merkle.h"

#include <cassert>

namespace dicho::crypto {

MerkleTree::MerkleTree(const std::vector<std::string>& leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = ZeroDigest();
    return;
  }
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) {
    level.push_back(Sha256Of(leaf));
  }
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      if (i + 1 < prev.size()) {
        next.push_back(Sha256Pair(prev[i], prev[i + 1]));
      } else {
        next.push_back(prev[i]);  // odd node promoted unchanged
      }
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::Prove(uint64_t index) const {
  assert(index < leaf_count_);
  MerkleProof proof;
  proof.leaf_index = index;
  uint64_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); lvl++) {
    const auto& level = levels_[lvl];
    uint64_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.steps.push_back({level[sibling], /*sibling_on_left=*/pos % 2 == 1});
    }
    // When pos is the promoted odd node there is no sibling at this level.
    pos /= 2;
  }
  return proof;
}

bool VerifyMerkleProof(const Slice& leaf_content, const MerkleProof& proof,
                       const Digest& root) {
  Digest running = Sha256Of(leaf_content);
  for (const auto& step : proof.steps) {
    running = step.sibling_on_left ? Sha256Pair(step.sibling, running)
                                   : Sha256Pair(running, step.sibling);
  }
  return running == root;
}

}  // namespace dicho::crypto
