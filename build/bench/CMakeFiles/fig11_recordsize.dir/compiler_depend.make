# Empty compiler generated dependencies file for fig11_recordsize.
# This may be replaced when dependencies are built.
