#include "systems/runtime/elasticity.h"

#include <algorithm>
#include <utility>

#include "consensus/raft.h"
#include "lifecycle/membership.h"

namespace dicho::systems::runtime {

ReplicaTracker::ReplicaTracker(const ElasticityConfig* config,
                               lifecycle::LifecycleMetrics metrics)
    : config_(config), metrics_(metrics) {}

void ReplicaTracker::OnLoad(const std::string& key, const std::string& value) {
  state_[key] = value;
  loads_pending_ = true;
}

void ReplicaTracker::OnEntry(
    uint64_t seq, uint64_t term,
    const std::vector<std::pair<std::string, std::string>>& writes) {
  for (const auto& [key, value] : writes) state_[key] = value;
  applied_seq_ = seq;
  last_term_ = term;
  suffix_.push_back({seq, term, lifecycle::EncodeChunk(writes)});
  MaybeFold();
}

void ReplicaTracker::MaybeFold() {
  if (applied_seq_ - manifest_.anchor < config_->snapshot_every) return;
  Fold();
}

void ReplicaTracker::Fold() {
  uint64_t bytes_before = store_.bytes_stored();
  size_t chunks_before = store_.chunk_count();
  manifest_ =
      lifecycle::BuildSnapshot(state_, applied_seq_, config_->snapshot,
                               &store_);
  anchor_term_ = last_term_;
  suffix_.clear();
  loads_pending_ = false;
  snapshots_taken_++;
  if (metrics_.snapshots_taken) metrics_.snapshots_taken->Inc();
  if (metrics_.snapshot_bytes) {
    metrics_.snapshot_bytes->Inc(store_.bytes_stored() - bytes_before);
  }
  if (metrics_.snapshot_chunks) {
    metrics_.snapshot_chunks->Inc(store_.chunk_count() - chunks_before);
  }
  if (on_fold_) on_fold_(manifest_.anchor, anchor_term_);
}

void ReplicaTracker::Seed(std::map<std::string, std::string> state,
                          uint64_t anchor, uint64_t term) {
  state_ = std::move(state);
  applied_seq_ = anchor;
  last_term_ = term;
  anchor_term_ = term;
  suffix_.clear();
  loads_pending_ = false;
  // Fold now: unchanged buckets dedup against any chunks this store already
  // holds (the delta-rejoin win), and the replica can serve joins itself.
  manifest_ =
      lifecycle::BuildSnapshot(state_, anchor, config_->snapshot, &store_);
  snapshots_taken_++;
  if (metrics_.snapshots_taken) metrics_.snapshots_taken->Inc();
}

lifecycle::SnapshotTransfer::Source ReplicaTracker::AsSource(
    std::function<bool()> available) {
  lifecycle::SnapshotTransfer::Source src;
  src.available =
      available != nullptr ? std::move(available) : [] { return true; };
  src.manifest = [this] {
    // Loads since the last fold live only in the shadow state; fold now so
    // the manifest + suffix the joiner sees reconstruct state_ exactly.
    if (loads_pending_) Fold();
    return manifest_;
  };
  src.chunks = [this]() -> const lifecycle::ChunkStore* { return &store_; };
  src.log_suffix = [this](uint64_t after) {
    lifecycle::LogSuffix out;
    out.anchor_term = anchor_term_;
    for (const SuffixEntry& entry : suffix_) {
      if (entry.seq > after) {
        out.entries.push_back({entry.seq, entry.term, entry.encoded});
      } else {
        out.anchor_term = entry.term;
      }
    }
    return out;
  };
  return src;
}

void StartReplicaJoin(
    sim::Simulator* sim, sim::SimNetwork* net, sim::NodeId source_id,
    sim::NodeId joiner_id, ReplicaTracker* source, ReplicaTracker* joiner,
    const ElasticityConfig& config, std::function<bool()> source_available,
    std::function<void(const JoinReport&,
                       const std::map<std::string, std::string>& state)>
        install) {
  sim::Time started = sim->Now();
  lifecycle::SnapshotTransfer::Start(
      sim, net, source_id, joiner_id,
      source->AsSource(std::move(source_available)), joiner->store(),
      /*joiner_alive=*/[] { return true; }, config.transfer,
      [sim, joiner, install = std::move(install),
       started](lifecycle::TransferResult result) {
        JoinReport report;
        report.started = started;
        report.finished = sim->Now();
        report.stats = result.stats;
        std::map<std::string, std::string> state;
        if (!result.ok ||
            !lifecycle::RestoreSnapshot(result.manifest, *joiner->store(),
                                        &state)) {
          joiner->RecordTransfer(result.stats, false);
          install(report, {});
          return;
        }
        uint64_t anchor = result.manifest.anchor;
        uint64_t term = result.suffix.anchor_term;
        for (const lifecycle::CatchupEntry& entry : result.suffix.entries) {
          std::vector<std::pair<std::string, std::string>> writes;
          if (lifecycle::DecodeChunk(entry.cmd, &writes)) {
            for (const auto& [key, value] : writes) state[key] = value;
          }
          anchor = entry.index;
          term = entry.term;
        }
        report.ok = true;
        report.anchor = anchor;
        report.anchor_term = term;
        joiner->RecordTransfer(result.stats, true);
        joiner->Seed(state, anchor, term);
        install(report, joiner->state());
      });
}

namespace {

/// Drives the Raft §6 add-node admission of an already-caught-up joiner:
/// polls for a leader, proposes the single-server add, and re-polls until
/// the leader's membership contains the joiner (elections and an in-flight
/// config change just delay the next attempt).
void DriveAdmission(sim::Simulator* sim, Transport* transport,
                    sim::NodeId joiner_id, JoinReport report,
                    std::function<void(const JoinReport&)> done) {
  consensus::RaftCluster* cluster = transport->raft();
  consensus::RaftNode* leader = cluster->leader();
  if (leader != nullptr && leader->membership().Contains(joiner_id)) {
    report.finished = sim->Now();
    done(report);
    return;
  }
  if (leader != nullptr) {
    lifecycle::ConfigChange cc;
    cc.kind = lifecycle::ConfigChangeKind::kAddNode;
    cc.node = joiner_id;
    // Rejected while another change is in flight — the re-poll retries.
    leader->ProposeConfigChange(cc, [](Status, uint64_t) {});
  }
  sim->Schedule(100 * sim::kMs, [sim, transport, joiner_id,
                                 report = std::move(report),
                                 done = std::move(done)]() mutable {
    DriveAdmission(sim, transport, joiner_id, std::move(report),
                   std::move(done));
  });
}

void MergeStats(const lifecycle::CatchupStats& round,
                lifecycle::CatchupStats* total) {
  total->control_bytes += round.control_bytes;
  total->manifest_bytes += round.manifest_bytes;
  total->chunk_bytes += round.chunk_bytes;
  total->chunks_fetched += round.chunks_fetched;
  total->chunks_reused += round.chunks_reused;
  total->log_entries += round.log_entries;
  total->log_bytes += round.log_bytes;
  total->retries += round.retries;
}

/// The straggler rescue: an admitted joiner whose log end sits below the
/// leader's snapshot anchor can never be back-filled by AppendEntries (the
/// leader compacted those entries away), and under sustained traffic the
/// group folds faster than the admission round-trip — so without this loop
/// the joiner starves forever at its transfer anchor. Each round re-runs
/// the lifecycle transfer; the joiner's chunk store already holds the last
/// round's chunks, so only the buckets dirtied since then ship (the delta
/// win), which makes a round much faster than the fold interval and the
/// loop converge.
void DriveCatchup(
    sim::Simulator* sim, sim::SimNetwork* net, Transport* transport,
    sim::NodeId source_id, sim::NodeId joiner_id, ReplicaTracker* source,
    ReplicaTracker* joiner, ElasticityConfig config,
    std::function<void(const std::map<std::string, std::string>& state)>
        install_state,
    JoinReport report, std::function<void(const JoinReport&)> done) {
  consensus::RaftCluster* cluster = transport->raft();
  consensus::RaftNode* raft = cluster->node(joiner_id);
  consensus::RaftNode* leader = cluster->leader();
  if (leader == nullptr) {
    // Election in progress; the next leader's anchor decides.
    sim->Schedule(100 * sim::kMs,
                  [sim, net, transport, source_id, joiner_id, source, joiner,
                   config, install_state = std::move(install_state),
                   report = std::move(report), done = std::move(done)]() mutable {
                    DriveCatchup(sim, net, transport, source_id, joiner_id,
                                 source, joiner, config,
                                 std::move(install_state), std::move(report),
                                 std::move(done));
                  });
    return;
  }
  if (leader->snapshot_index() <= raft->log_size()) {
    // Back inside the leader's retained log: normal AppendEntries
    // replication finishes the job from here.
    report.finished = sim->Now();
    done(report);
    return;
  }
  StartReplicaJoin(
      sim, net, source_id, joiner_id, source, joiner, config,
      /*source_available=*/nullptr,
      [sim, net, transport, source_id, joiner_id, source, joiner, config,
       raft, install_state = std::move(install_state),
       report = std::move(report), done = std::move(done)](
          const JoinReport& round,
          const std::map<std::string, std::string>& state) mutable {
        JoinReport merged = report;
        MergeStats(round.stats, &merged.stats);
        if (round.ok) {
          merged.anchor = round.anchor;
          merged.anchor_term = round.anchor_term;
          install_state(state);
          raft->InstallSnapshot(round.anchor, round.anchor_term);
        }
        DriveCatchup(sim, net, transport, source_id, joiner_id, source,
                     joiner, config, std::move(install_state),
                     std::move(merged), std::move(done));
      });
}

}  // namespace

void StartElasticRaftJoin(
    sim::Simulator* sim, sim::SimNetwork* net, Transport* transport,
    sim::NodeId source_id, sim::NodeId joiner_id, ReplicaTracker* source,
    ReplicaTracker* joiner, const ElasticityConfig& config,
    std::function<void(const std::map<std::string, std::string>& state)>
        install_state,
    std::function<void(const JoinReport&)> done) {
  StartReplicaJoin(
      sim, net, source_id, joiner_id, source, joiner, config,
      /*source_available=*/nullptr,
      [sim, net, transport, source_id, joiner_id, source, joiner, config,
       install_state = std::move(install_state), done = std::move(done)](
          const JoinReport& report,
          const std::map<std::string, std::string>& state) mutable {
        if (!report.ok) {
          done(report);
          return;
        }
        consensus::RaftCluster* cluster = transport->raft();
        consensus::RaftNode* leader = cluster->leader();
        if (leader != nullptr && leader->snapshot_index() > report.anchor) {
          // The source folded (and compacted its log) past the anchor we
          // transferred while the transfer was in flight, so the leader can
          // no longer back-fill from anchor+1. Re-run the transfer: the
          // joiner's chunk store already holds this round's chunks, so the
          // retry ships only the buckets that changed since.
          StartElasticRaftJoin(sim, net, transport, source_id, joiner_id,
                               source, joiner, config,
                               std::move(install_state), std::move(done));
          return;
        }
        install_state(state);
        consensus::RaftNode* raft = transport->AddRaftReplica(joiner_id);
        lifecycle::MembershipView view =
            leader != nullptr ? leader->membership() : raft->membership();
        raft->InstallSnapshot(report.anchor, report.anchor_term, view);
        raft->Start();
        DriveAdmission(
            sim, transport, joiner_id, report,
            [sim, net, transport, source_id, joiner_id, source, joiner,
             config, install_state = std::move(install_state),
             done = std::move(done)](const JoinReport& admitted) mutable {
              // Admission can outlast several folds under load; rescue the
              // joiner if the leader compacted past its log end meanwhile.
              DriveCatchup(sim, net, transport, source_id, joiner_id, source,
                           joiner, config, std::move(install_state), admitted,
                           std::move(done));
            });
      });
}

}  // namespace dicho::systems::runtime
