// Delta-store backing of the MVCC world state (txn/occ.h +
// storage/delta/delta_store.h): enabling it must not change any visible
// read/validate behavior, and the physical footprint of a versioned history
// of field updates must sit well under the logical bytes.

#include <gtest/gtest.h>

#include "common/random.h"
#include "txn/occ.h"

namespace dicho::txn {
namespace {

std::string BaseValue(uint64_t seed, size_t size) {
  return Rng(seed).Bytes(size);
}

/// A field update: the base value with a small randomized window.
std::string Mutate(Rng* rng, std::string value, size_t window) {
  size_t offset = rng->Uniform(value.size() - window + 1);
  std::string field = rng->Bytes(window);
  value.replace(offset, window, field);
  return value;
}

TEST(OccDeltaTest, BackedStateReadsIdenticallyToPlainState) {
  VersionedState plain;
  VersionedState backed;
  backed.EnableDeltaBacking();
  Rng rng(11);
  for (uint64_t version = 1; version <= 40; version++) {
    std::vector<std::pair<std::string, std::string>> writes;
    for (int k = 0; k < 8; k++) {
      std::string key = "key" + std::to_string(k);
      writes.emplace_back(key,
                          Mutate(&rng, BaseValue(k, 2000), 16));
    }
    plain.Apply(writes, version);
    backed.Apply(writes, version);
  }
  for (int k = 0; k < 8; k++) {
    std::string key = "key" + std::to_string(k);
    std::string v1, v2;
    uint64_t ver1, ver2;
    plain.Get(key, &v1, &ver1);
    backed.Get(key, &v2, &ver2);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(ver1, ver2);
  }
  EXPECT_EQ(plain.DataBytes(), backed.DataBytes());
  ASSERT_TRUE(backed.delta_backed());
  ASSERT_NE(backed.delta_stats(), nullptr);
  // 40 versions of each record, each differing by a 16-byte window: the
  // delta store keeps one full anchor plus small deltas per chain.
  EXPECT_GT(backed.delta_stats()->delta_stored, 0u);
  EXPECT_LT(backed.PhysicalBytes(),
            40u * 8u * 2000u / 4u);  // far below full-copy history
}

TEST(OccDeltaTest, EnableAfterLoadBackfillsExistingState) {
  VersionedState state;
  state.Apply({{"seeded", std::string(500, 'a')}}, 0);
  state.EnableDeltaBacking();
  ASSERT_NE(state.delta_stats(), nullptr);
  // The pre-existing record was back-filled into the store at enable time.
  EXPECT_EQ(state.delta_stats()->puts, 1u);
  EXPECT_GE(state.PhysicalBytes(), 500u);

  std::string value;
  uint64_t version;
  state.Get("seeded", &value, &version);
  EXPECT_EQ(value, std::string(500, 'a'));
}

TEST(OccDeltaTest, UnbackedPhysicalEqualsLogical) {
  VersionedState state;
  state.Apply({{"k", std::string(100, 'v')}}, 1);
  EXPECT_FALSE(state.delta_backed());
  EXPECT_EQ(state.delta_stats(), nullptr);
  EXPECT_EQ(state.PhysicalBytes(), state.DataBytes());
}

}  // namespace
}  // namespace dicho::txn
