# Empty dependencies file for fig14_sharding.
# This may be replaced when dependencies are built.
