#include "crypto/signature.h"

#include <gtest/gtest.h>

namespace dicho::crypto {
namespace {

TEST(HmacTest, Rfc4231Case2) {
  // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
  Digest mac = HmacSha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(DigestHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case1) {
  std::string key(20, '\x0b');
  Digest mac = HmacSha256(key, "Hi There");
  EXPECT_EQ(DigestHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  std::string key(131, '\xaa');
  Digest mac = HmacSha256(key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(DigestHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(SignatureTest, SignVerifyRoundTrip) {
  Signer alice(1);
  std::string sig = alice.Sign("transfer 10 coins");
  EXPECT_TRUE(VerifySignature(1, "transfer 10 coins", sig));
}

TEST(SignatureTest, TamperedMessageFails) {
  Signer alice(1);
  std::string sig = alice.Sign("transfer 10 coins");
  EXPECT_FALSE(VerifySignature(1, "transfer 99 coins", sig));
}

TEST(SignatureTest, WrongSignerFails) {
  Signer alice(1);
  std::string sig = alice.Sign("msg");
  EXPECT_FALSE(VerifySignature(2, "msg", sig));
}

TEST(SignatureTest, TamperedSignatureFails) {
  Signer alice(1);
  std::string sig = alice.Sign("msg");
  sig[0] ^= 1;
  EXPECT_FALSE(VerifySignature(1, "msg", sig));
}

TEST(SignatureTest, WrongLengthFails) {
  EXPECT_FALSE(VerifySignature(1, "msg", "short"));
}

TEST(SignatureTest, DistinctSignersDistinctSignatures) {
  Signer a(1), b(2);
  EXPECT_NE(a.Sign("msg"), b.Sign("msg"));
}

TEST(SignatureTest, Deterministic) {
  Signer a1(1), a2(1);
  EXPECT_EQ(a1.Sign("msg"), a2.Sign("msg"));
}

}  // namespace
}  // namespace dicho::crypto
