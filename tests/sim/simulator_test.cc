#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.h"
#include "sim/network.h"

namespace dicho::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(10, [&] { order.push_back(2); });
  sim.Schedule(10, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(5, [&] {
    times.push_back(sim.Now());
    sim.Schedule(5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{5, 10}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { fired++; });
  sim.Schedule(20, [&] { fired++; });
  sim.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 15);
  sim.RunUntil(25);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  double t = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(-5, [&] { t = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(t, 10);
}

TEST(SimulatorTest, DeterministicReplay) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 50; i++) {
      sim.Schedule(sim.rng()->NextDouble() * 100, [&trace, &sim] {
        trace.push_back(static_cast<uint64_t>(sim.Now() * 1000));
      });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimulatorTest, MaxEventsCap) {
  Simulator sim;
  // Self-perpetuating event chain; the cap must stop it.
  std::function<void()> loop = [&] { sim.Schedule(1, loop); };
  sim.Schedule(1, loop);
  uint64_t n = sim.Run(100);
  EXPECT_EQ(n, 100u);
}

TEST(CpuResourceTest, SerialService) {
  Simulator sim;
  CpuResource cpu(&sim);
  std::vector<double> completions;
  // Three jobs of 10us each submitted at t=0: complete at 10, 20, 30.
  for (int i = 0; i < 3; i++) {
    cpu.Submit(10, [&] { completions.push_back(sim.Now()); });
  }
  EXPECT_EQ(cpu.outstanding(), 3u);
  sim.Run();
  EXPECT_EQ(completions, (std::vector<double>{10, 20, 30}));
  EXPECT_EQ(cpu.outstanding(), 0u);
  EXPECT_EQ(cpu.total_busy(), 30);
}

TEST(CpuResourceTest, IdleGapResetsStart) {
  Simulator sim;
  CpuResource cpu(&sim);
  std::vector<double> completions;
  cpu.Submit(10, [&] { completions.push_back(sim.Now()); });
  sim.Schedule(100, [&] {
    cpu.Submit(10, [&] { completions.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(completions, (std::vector<double>{10, 110}));
}

TEST(CpuResourceTest, BacklogReflectsQueueing) {
  Simulator sim;
  CpuResource cpu(&sim);
  cpu.Submit(50, [] {});
  cpu.Submit(50, [] {});
  EXPECT_EQ(cpu.backlog(), 100);
}

TEST(SimNetworkTest, DeliversWithLatency) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.base_latency_us = 100;
  cfg.bandwidth_bytes_per_us = 100;
  cfg.jitter_us = 0;
  SimNetwork net(&sim, cfg);
  double delivered_at = -1;
  net.Send(0, 1, 1000, [&] { delivered_at = sim.Now(); });
  sim.Run();
  // 100 base + 1000/100 bandwidth = 110.
  EXPECT_DOUBLE_EQ(delivered_at, 110);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(SimNetworkTest, DownNodeDropsAtDelivery) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.jitter_us = 0;
  SimNetwork net(&sim, cfg);
  bool delivered = false;
  net.Send(0, 1, 10, [&] { delivered = true; });
  // Crash node 1 while the message is in flight.
  net.SetNodeDown(1, true);
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 0u);
}

TEST(SimNetworkTest, RestartedNodeReceivesAgain) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{});
  net.SetNodeDown(1, true);
  net.SetNodeDown(1, false);
  bool delivered = false;
  net.Send(0, 1, 10, [&] { delivered = true; });
  sim.Run();
  EXPECT_TRUE(delivered);
}

TEST(SimNetworkTest, PartitionBlocksCrossGroup) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{});
  net.Partition({{0, 1}, {2, 3}});
  int same = 0, cross = 0;
  net.Send(0, 1, 10, [&] { same++; });
  net.Send(0, 2, 10, [&] { cross++; });
  net.Send(2, 3, 10, [&] { same++; });
  sim.Run();
  EXPECT_EQ(same, 2);
  EXPECT_EQ(cross, 0);

  net.HealPartition();
  net.Send(0, 2, 10, [&] { cross++; });
  sim.Run();
  EXPECT_EQ(cross, 1);
}

TEST(SimNetworkTest, DropRateLosesSomeMessages) {
  Simulator sim(1234);
  NetworkConfig cfg;
  cfg.drop_rate = 0.5;
  SimNetwork net(&sim, cfg);
  int delivered = 0;
  for (int i = 0; i < 1000; i++) {
    net.Send(0, 1, 10, [&] { delivered++; });
  }
  sim.Run();
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
}

TEST(SimNetworkTest, BytesAccounted) {
  Simulator sim;
  SimNetwork net(&sim, NetworkConfig{});
  net.Send(0, 1, 123, [] {});
  net.Send(1, 0, 877, [] {});
  sim.Run();
  EXPECT_EQ(net.bytes_sent(), 1000u);
}

}  // namespace
}  // namespace dicho::sim
