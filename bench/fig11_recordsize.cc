// Reproduces Fig. 11: performance under uniform updates as the record size
// grows 10 -> 5000 bytes, plus the Quorum/Fabric latency breakdown.
//
// Paper shapes: Quorum collapses 1547 -> 58 tps (per-commit MPT
// reconstruction grows 56 us -> 2.5 ms and the EVM cost is per-byte; both
// phases of its double execution grow at the same rate); Fabric stays
// roughly flat then halves at 5000 B; the databases decline moderately.

#include "bench_util.h"

namespace dicho::bench {
namespace {

void Run() {
  PrintHeader("Fig 11a: record size sweep, uniform updates (tps)");
  const size_t kSizes[] = {10, 100, 1000, 5000};
  printf("%-8s", "system");
  for (size_t s : kSizes) printf("%9zuB", s);
  printf("\n");

  BenchScale scale;
  scale.record_count = 20000;
  scale.measure = 10 * sim::kSec;

  std::map<size_t, workload::RunMetrics> quorum_runs;
  printf("%-8s", "quorum");
  for (size_t size : kSizes) {
    World w;
    auto quorum = MakeQuorum(&w, 5);
    workload::YcsbConfig wcfg;
    wcfg.record_size = size;
    auto m = RunYcsb(&w, quorum.get(), wcfg, scale, 0, /*arrival=*/2200);
    printf("%10.0f", m.throughput_tps);
    fflush(stdout);
    quorum_runs[size] = std::move(m);
  }
  printf("\n%-8s", "fabric");
  for (size_t size : kSizes) {
    World w;
    auto fabric = MakeFabric(&w, 5);
    workload::YcsbConfig wcfg;
    wcfg.record_size = size;
    auto m = RunYcsb(&w, fabric.get(), wcfg, scale, 0, /*arrival=*/2200);
    printf("%10.0f", m.throughput_tps);
    fflush(stdout);
  }
  printf("\n%-8s", "tidb");
  for (size_t size : kSizes) {
    World w;
    auto tidb = MakeTidb(&w, 5, 5);
    workload::YcsbConfig wcfg;
    wcfg.record_size = size;
    auto m = RunYcsb(&w, tidb.get(), wcfg, scale);
    printf("%10.0f", m.throughput_tps);
    fflush(stdout);
  }
  printf("\n%-8s", "etcd");
  for (size_t size : kSizes) {
    World w;
    auto etcd = MakeEtcd(&w, 5);
    workload::YcsbConfig wcfg;
    wcfg.record_size = size;
    auto m = RunYcsb(&w, etcd.get(), wcfg, scale);
    printf("%10.0f", m.throughput_tps);
    fflush(stdout);
  }

  PrintHeader("Fig 11b: Quorum phase latency vs record size (ms)");
  // Measured just below each size's capacity so queueing does not swamp the
  // phase structure (the paper's breakdown is per-transaction work).
  printf("%-8s %16s %22s\n", "size", "proposal wait", "exec+consensus+commit");
  for (size_t size : kSizes) {
    World w;
    auto quorum = MakeQuorum(&w, 5);
    workload::YcsbConfig wcfg;
    wcfg.record_size = size;
    double arrival = 0.7 * quorum_runs[size].throughput_tps;
    auto m = RunYcsb(&w, quorum.get(), wcfg, scale, 0, arrival);
    printf("%6zuB %14.0fms %20.0fms\n", size,
           m.phase_us("proposal").Mean() / 1000.0,
           m.phase_us("consensus+commit").Mean() / 1000.0);
  }
  printf("(modeled per-record MPT reconstruction: 10B=%.0fus, 5000B=%.0fus "
         "— paper: 56us -> 2.5ms)\n",
         sim::CostModel{}.MptUpdateCost(10), sim::CostModel{}.MptUpdateCost(5000));
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
