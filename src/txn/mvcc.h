#ifndef DICHO_TXN_MVCC_H_
#define DICHO_TXN_MVCC_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace dicho::txn {

/// Percolator-style multi-version store with a lock column — the
/// transactional layer of TiKV (TiDB's storage). Transactions run
/// two-phase: Prewrite places locks (primary first) and staged values at
/// start_ts; Commit replaces locks with write records at commit_ts. Readers
/// at snapshot `ts` see the newest committed version <= ts and are blocked
/// (Conflict) by locks from transactions that started before their
/// snapshot.
///
/// The *primary lock* is the linearization point: the transaction is
/// committed iff the primary's lock has been replaced by a write record —
/// this is the latch the paper blames for TiDB's collapse under skew
/// (Section 5.3.1).
class MvccStore {
 public:
  /// Stages `value` under a lock. Errors:
  ///   Conflict  — another transaction holds a lock on `key`
  ///   Aborted   — a committed write with commit_ts > start_ts exists
  ///               (write-write conflict; Percolator aborts)
  Status Prewrite(const Slice& key, const Slice& value, uint64_t start_ts,
                  const Slice& primary_key, uint64_t txn_id);

  /// Finalizes the key: lock at start_ts becomes a committed version at
  /// commit_ts. NotFound if no matching lock (e.g. rolled back).
  Status Commit(const Slice& key, uint64_t start_ts, uint64_t commit_ts);

  /// Drops the lock and staged value at start_ts. Idempotent.
  Status Rollback(const Slice& key, uint64_t start_ts);

  /// Snapshot read at `ts`. Errors:
  ///   Conflict — a lock from a transaction with start_ts <= ts blocks the
  ///              read (caller retries or resolves)
  ///   NotFound — no committed version at or before ts
  Status GetSnapshot(const Slice& key, uint64_t ts, std::string* value) const;

  /// True if `key` carries any lock (introspection / tests).
  bool IsLocked(const Slice& key) const;
  /// Newest committed commit_ts for key, 0 if none.
  uint64_t LatestCommitTs(const Slice& key) const;

  size_t key_count() const { return records_.size(); }
  uint64_t DataBytes() const { return data_bytes_; }

 private:
  struct Lock {
    uint64_t start_ts = 0;
    uint64_t txn_id = 0;
    std::string primary;
    std::string staged_value;
  };
  struct Record {
    // commit_ts -> value, newest = rbegin.
    std::map<uint64_t, std::string> versions;
    bool locked = false;
    Lock lock;
  };

  std::map<std::string, Record> records_;
  uint64_t data_bytes_ = 0;
};

}  // namespace dicho::txn

#endif  // DICHO_TXN_MVCC_H_
