file(REMOVE_RECURSE
  "CMakeFiles/fig12_storage.dir/fig12_storage.cc.o"
  "CMakeFiles/fig12_storage.dir/fig12_storage.cc.o.d"
  "fig12_storage"
  "fig12_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
