#ifndef DICHO_STORAGE_DELTA_DELTA_H_
#define DICHO_STORAGE_DELTA_DELTA_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace dicho::storage::delta {

/// Copy/insert delta encoding (the fossil/rsync family): a delta is a
/// program that rebuilds `target` from `base` using two ops — COPY a run of
/// bytes out of the base, or INSERT literal bytes carried in the delta
/// itself. Encoding indexes the base in fixed-size blocks by hash and scans
/// the target greedily, extending every block hit in both directions, so a
/// version that shares most of its bytes with its predecessor (a field
/// update inside a large record) encodes to a few dozen bytes.
///
/// Wire format (all varint32 unless noted):
///   target_len
///   ops:  0x00 len <len literal bytes>      insert
///         0x01 offset len                   copy from base
///   0x02 crc32c(target) as fixed32          trailer / integrity check
///
/// The format is self-delimiting and fully checked on apply: a truncated
/// delta, an out-of-bounds copy, or a corrupted base all fail with
/// Status::Corruption instead of producing wrong bytes.

/// Encodes `target` as a delta against `base` into `*delta` (cleared
/// first). Always succeeds; when base and target share nothing the delta
/// degenerates to one big INSERT (header + trailer overhead ~10 bytes).
void EncodeDelta(const Slice& base, const Slice& target, std::string* delta);

/// Rebuilds the target from `base` and `delta` into `*target` (cleared
/// first). Verifies the trailing checksum.
Status ApplyDelta(const Slice& base, const Slice& delta, std::string* target);

/// Length the delta will reconstruct to, without applying it (reads the
/// header only). Returns false on a malformed header.
bool DeltaTargetSize(const Slice& delta, uint64_t* size);

}  // namespace dicho::storage::delta

#endif  // DICHO_STORAGE_DELTA_DELTA_H_
