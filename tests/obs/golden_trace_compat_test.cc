// Golden-compat under tracing: attaching a trace sink must be
// side-effect-free on the model. Every fixed-seed golden case is re-run
// with a process-default TraceSink installed (the hook scenarios and golden
// cases use, since they construct their simulators internally), and the
// rendered JSON must still match the committed baseline byte-for-byte —
// proof that instrumentation only records and never perturbs event
// ordering, costs, or stamping.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "sim/simulator.h"
#include "testing/golden.h"

namespace dicho::testing {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Installs a process-default sink for the scope; simulators constructed
/// inside pick it up. Always detached on exit so no other test inherits it.
class ScopedDefaultSink {
 public:
  explicit ScopedDefaultSink(obs::TraceSink* sink) {
    sim::Simulator::SetDefaultTraceSink(sink);
  }
  ~ScopedDefaultSink() { sim::Simulator::SetDefaultTraceSink(nullptr); }
};

class GoldenTraceCompatTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTraceCompatTest, TracingDoesNotPerturbGoldenOutput) {
  const GoldenCase& c = GetParam();
  const std::string path =
      std::string(DICHO_GOLDEN_DIR) + "/" + c.name + ".json";
  const std::string expected = ReadFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << "missing baseline " << path
      << " — regenerate with: golden_gen --out tests/golden";

  obs::TraceSink sink;
  std::string actual;
  {
    ScopedDefaultSink guard(&sink);
    actual = c.run();
  }
  EXPECT_EQ(expected, actual)
      << "attaching a trace sink changed the fixed-seed run for '" << c.name
      << "' — instrumentation must be record-only";
  // The trace itself must render deterministically too.
  EXPECT_EQ(sink.ToChromeJson(), sink.ToChromeJson());
}

std::string CaseName(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string name = info.param.name;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(GoldenTraced, GoldenTraceCompatTest,
                         ::testing::ValuesIn(AllGoldenCases()), CaseName);

TEST(GoldenTraceCaptureTest, DefaultSinkActuallyCapturesSpans) {
  // Guard against the compat suite passing vacuously (sink installed but
  // nothing ever emitted): an instrumented system case must produce events.
  const GoldenCase* c = FindGoldenCase("quorum-raft");
  ASSERT_NE(c, nullptr);
  obs::TraceSink sink;
  {
    ScopedDefaultSink guard(&sink);
    c->run();
  }
  EXPECT_FALSE(sink.empty())
      << "golden run emitted no trace events through the default sink";
}

}  // namespace
}  // namespace dicho::testing
