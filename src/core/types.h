#ifndef DICHO_CORE_TYPES_H_
#define DICHO_CORE_TYPES_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace dicho::core {

/// One key-value operation inside a transaction.
enum class OpType : uint8_t {
  kRead = 0,
  kWrite = 1,
  /// Read the record, then write it back modified — the paper's skew
  /// experiments use single-record read-modify-write transactions.
  kReadModifyWrite = 2,
};

struct Op {
  OpType type;
  std::string key;
  std::string value;  // for writes
};

/// A transaction as submitted by a client: a contract invocation
/// (contract + method + args) or an explicit op list (KV workloads use
/// ops; Smallbank uses method/args).
struct TxnRequest {
  uint64_t txn_id = 0;
  uint64_t client_id = 0;
  std::string contract;  // "ycsb" | "smallbank" | user-registered
  std::string method;
  std::vector<std::string> args;
  std::vector<Op> ops;
  /// Multi-tenant admission metadata (open-loop arrival engine): which
  /// tenant mix the request came from and the fee it bid. Client-side only
  /// — excluded from Serialize()/PayloadBytes() so ledger bytes and network
  /// costs are unchanged whether or not an admission policy inspects them.
  uint32_t tenant = 0;
  double fee = 1.0;

  /// Approximate wire size (drives the network model).
  uint64_t PayloadBytes() const {
    uint64_t total = 64 + contract.size() + method.size();
    for (const auto& a : args) total += a.size() + 4;
    for (const auto& op : ops) total += op.key.size() + op.value.size() + 8;
    return total;
  }

  std::string Serialize() const;
  static bool Deserialize(const std::string& data, TxnRequest* out);
};

/// Why a transaction aborted — the paper breaks abort rates down by cause
/// (Fig. 9b, Fig. 10b discussion).
enum class AbortReason : uint8_t {
  kNone = 0,
  kWriteConflict,           // write-write (TiDB/Percolator)
  kReadConflict,            // stale read version (Fabric MVCC check)
  kInconsistentEndorsement, // peers returned diverging simulation results
  kContention,              // latch/lock acquisition failed or timed out
  kConstraint,              // application logic abort (e.g. overdraft)
  kUnavailable,             // no leader / node down
  kOther,
  kAdmissionReject,         // shed at the mempool admission gate
  kBadSignature,            // client signature failed block validation
};

const char* AbortReasonName(AbortReason reason);

/// The pipeline stages the benchmarked systems report latency for — the
/// union of every stage the paper's Fig. 8 breakdowns use. Declared in
/// *alphabetical* name order so iterating the enum visits phases exactly
/// like the old per-txn std::map<std::string, Time> did (goldens depend
/// on that ordering).
enum class Phase : uint8_t {
  kAuth = 0,         // "auth"              Fabric query MSP check
  kCommit,           // "commit"            TiDB 2PC commit wave
  kConsensus,        // "consensus"         etcd Raft propose->apply
  kConsensusCommit,  // "consensus+commit"  Quorum consensus + block apply
  kEvmRead,          // "evm-read"          Quorum query through the VM
  kExecute,          // "execute"           Fabric endorsement simulation
  kOrder,            // "order"             Fabric ordering-service wait
  kParse,            // "parse"             TiDB SQL-layer parse/plan
  kPrewrite,         // "prewrite"          TiDB Percolator prewrite wave
  kProposal,         // "proposal"          Quorum mempool wait + proposal
  kRead,             // "read"              storage point-read service
  kValidate,         // "validate"          Fabric MVCC validate + commit
};
inline constexpr size_t kNumPhases = 12;

const char* PhaseName(Phase phase);
/// Accepts the names PhaseName produces; returns false on anything else.
bool ParsePhaseName(const std::string& name, Phase* out);

/// Per-transaction phase-latency breakdown: a flat array indexed by Phase
/// plus a presence mask — replaces the per-txn heap-allocated string map on
/// the hot path. Only phases a system explicitly stamped are "present";
/// aggregation skips the rest (identical to iterating the old map).
class PhaseTimeline {
 public:
  void Set(Phase phase, sim::Time t) {
    us_[Index(phase)] = t;
    mask_ |= Bit(phase);
  }
  /// Accumulates across retries (TiDB stamps each attempt's waves).
  void Add(Phase phase, sim::Time t) {
    us_[Index(phase)] += t;
    mask_ |= Bit(phase);
  }
  bool Has(Phase phase) const { return (mask_ & Bit(phase)) != 0; }
  /// 0 when the phase was never stamped (matches map::operator[] default).
  sim::Time Get(Phase phase) const {
    return Has(phase) ? us_[Index(phase)] : 0;
  }
  bool empty() const { return mask_ == 0; }

  /// Drops every stamp. Retrying systems reset at the start of each attempt
  /// so the delivered timeline describes the *final* attempt only —
  /// otherwise per-phase aggregation double-counts abandoned attempts'
  /// phase time (the retry-accounting bug fixed alongside src/obs).
  void Reset() {
    us_.fill(0);
    mask_ = 0;
  }

  /// Visits stamped phases in enum (== alphabetical-name) order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < kNumPhases; i++) {
      if ((mask_ & (1u << i)) != 0) {
        fn(static_cast<Phase>(i), us_[i]);
      }
    }
  }

 private:
  static size_t Index(Phase phase) { return static_cast<size_t>(phase); }
  static uint32_t Bit(Phase phase) { return 1u << Index(phase); }

  std::array<sim::Time, kNumPhases> us_{};
  uint32_t mask_ = 0;
};

/// Outcome delivered to the client, with the phase-level latency breakdown
/// used by the Fig. 8 experiments.
struct TxnResult {
  Status status;
  AbortReason reason = AbortReason::kNone;
  sim::Time submit_time = 0;
  sim::Time finish_time = 0;
  /// Typed per-phase breakdown (e.g. kExecute/kOrder/kValidate for Fabric;
  /// kParse/kPrewrite/kCommit for TiDB).
  PhaseTimeline phases;
  /// Values returned by read operations, keyed by record key.
  std::map<std::string, std::string> reads;

  sim::Time latency() const { return finish_time - submit_time; }
  /// Name-keyed compatibility shim for bench/printf code ("execute", ...).
  sim::Time phase_us(const std::string& name) const;
};

using TxnCallback = std::function<void(const TxnResult&)>;

/// A read-only query (served without consensus in every benchmarked
/// system — paper Section 2.1).
struct ReadRequest {
  uint64_t client_id = 0;
  std::string key;
};

struct ReadResult {
  Status status;
  std::string value;
  sim::Time submit_time = 0;
  sim::Time finish_time = 0;
  PhaseTimeline phases;

  sim::Time latency() const { return finish_time - submit_time; }
  sim::Time phase_us(const std::string& name) const;
};

using ReadCallback = std::function<void(const ReadResult&)>;

/// Queue-depth / stage-progress gauges the shared runtime layer maintains
/// for every system (mempool admission, inflight tracking, batch cutting).
/// Pure observability: updating these never touches the simulator.
struct StageGauges {
  uint64_t enqueued = 0;      // txns admitted to the mempool/batch queue
  uint64_t batches_cut = 0;   // blocks/batches formed from the queue
  size_t mempool_depth = 0;   // current mempool/batch-queue depth
  size_t mempool_peak = 0;
  size_t inflight_depth = 0;  // txns submitted but not yet resolved
  size_t inflight_peak = 0;
  uint64_t rejected = 0;      // txns shed by the admission gate
};

/// Aggregate counters every system maintains.
struct SystemStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  std::map<AbortReason, uint64_t> aborts_by_reason;
  uint64_t queries = 0;
  StageGauges stages;

  double AbortRate() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0.0 : static_cast<double>(aborted) / total;
  }
};

/// Common interface of every system composition in src/systems and every
/// hybrid built by the fusion framework — the "transactional system" the
/// paper's taxonomy ranges over.
class TransactionalSystem {
 public:
  virtual ~TransactionalSystem() = default;

  virtual void Submit(const TxnRequest& request, TxnCallback cb) = 0;
  virtual void Query(const ReadRequest& request, ReadCallback cb) = 0;
  virtual const SystemStats& stats() const = 0;
  virtual std::string name() const = 0;

  /// Pre-populates one record before the run (bulk seeding). Systems that
  /// replicate state must seed every replica.
  virtual void Load(const std::string& key, const std::string& value) = 0;
  /// Boots background machinery (consensus timers, proposers). Default:
  /// nothing to start.
  virtual void Start() {}
};

}  // namespace dicho::core

#endif  // DICHO_CORE_TYPES_H_
