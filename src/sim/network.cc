#include "sim/network.h"

namespace dicho::sim {

namespace {
constexpr int kNoGroup = -1;
}

void SimNetwork::Send(NodeId from, NodeId to, uint64_t size_bytes,
                      std::function<void()> handler) {
  messages_sent_++;
  bytes_sent_ += size_bytes;
  bytes_by_sender_[from] += size_bytes;

  if (IsDown(from)) return;  // sender crashed mid-send: message lost
  if (config_.drop_rate > 0 && sim_->rng()->Bernoulli(config_.drop_rate)) {
    return;
  }

  // Serialize on the sender's NIC: transmission begins when the uplink
  // frees up and occupies it for size/bandwidth.
  Time transmit = static_cast<Time>(size_bytes) / config_.bandwidth_bytes_per_us;
  Time& egress = egress_busy_until_[from];
  Time start = egress > sim_->Now() ? egress : sim_->Now();
  egress = start + transmit;
  Time delay = (egress - sim_->Now()) + config_.base_latency_us;
  if (config_.jitter_us > 0) {
    delay += sim_->rng()->NextDouble() * config_.jitter_us;
  }

  // Partition and crash state are re-checked at delivery time so that messages
  // in flight when a failure is injected are affected too.
  sim_->Schedule(delay, [this, from, to, handler = std::move(handler)]() {
    if (IsDown(to)) return;
    if (!CanCommunicate(from, to)) return;
    messages_delivered_++;
    handler();
  });
}

void SimNetwork::SetNodeDown(NodeId node, bool down) {
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

void SimNetwork::Partition(const std::vector<std::vector<NodeId>>& groups) {
  partitioned_ = true;
  group_of_.clear();
  for (size_t g = 0; g < groups.size(); g++) {
    for (NodeId n : groups[g]) {
      if (group_of_.size() <= n) group_of_.resize(n + 1, kNoGroup);
      group_of_[n] = static_cast<int>(g);
    }
  }
}

void SimNetwork::HealPartition() {
  partitioned_ = false;
  group_of_.clear();
}

Time SimNetwork::EgressBacklog(NodeId node) const {
  auto it = egress_busy_until_.find(node);
  if (it == egress_busy_until_.end() || it->second <= sim_->Now()) return 0;
  return it->second - sim_->Now();
}

bool SimNetwork::CanCommunicate(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  int ga = a < group_of_.size() ? group_of_[a] : kNoGroup;
  int gb = b < group_of_.size() ? group_of_[b] : kNoGroup;
  if (ga == kNoGroup || gb == kNoGroup) return true;
  return ga == gb;
}

}  // namespace dicho::sim
