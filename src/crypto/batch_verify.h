#ifndef DICHO_CRYPTO_BATCH_VERIFY_H_
#define DICHO_CRYPTO_BATCH_VERIFY_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"

namespace dicho::crypto {

/// One signature to check: `message` and `signature` must stay alive until
/// VerifyBatch returns (they are borrowed, not copied).
struct BatchVerifyItem {
  uint64_t signer_id = 0;
  Slice message;
  Slice signature;
};

/// Verifies every item, fanning the work across a thread pool, and returns
/// one result per item IN INPUT ORDER (1 = valid) — callers that fold the
/// results into deterministic state (a block validator walking txns in
/// block order) see exactly what serial verification would have produced,
/// whatever the thread count.
///
/// `threads` <= 0 resolves the pool size from the environment:
/// DICHO_BENCH_THREADS, then DICHO_SIM_THREADS ("hw" or "0" = all cores),
/// then hardware_concurrency. Small batches (or threads == 1) verify
/// serially — an HMAC check is ~1 us, so below a few hundred items the
/// thread spawn costs more than it saves.
std::vector<uint8_t> VerifyBatch(const std::vector<BatchVerifyItem>& items,
                                 int threads = 0);

/// The pool size VerifyBatch(items, 0) would use right now (env-resolved
/// per call, so tests can flip the variables between calls).
unsigned BatchVerifyThreads();

}  // namespace dicho::crypto

#endif  // DICHO_CRYPTO_BATCH_VERIFY_H_
