#include "systems/quorum.h"

#include <cassert>

#include "crypto/signature.h"

namespace dicho::systems {

namespace {

/// Read view over a node's MPT state.
class MptView : public contract::StateView {
 public:
  explicit MptView(const adt::MerklePatriciaTrie* state) : state_(state) {}
  Status Get(const Slice& key, std::string* value) override {
    return state_->Get(key, value);
  }

 private:
  const adt::MerklePatriciaTrie* state_;
};

}  // namespace

QuorumSystem::QuorumSystem(sim::Simulator* sim, sim::SimNetwork* net,
                           const sim::CostModel* costs, QuorumConfig config)
    : sim_(sim),
      net_(net),
      costs_(costs),
      config_(config),
      contracts_(contract::ContractRegistry::CreateDefault()) {
  for (NodeId i = 0; i < config_.num_nodes; i++) node_ids_.push_back(i);
  for (NodeId id : node_ids_) {
    nodes_[id] = std::make_unique<Node>(sim);
  }
  auto on_apply = [this](NodeId node, uint64_t, const std::string& cmd) {
    OnBlockCommitted(node, cmd);
  };
  if (config_.consensus == QuorumConsensus::kRaft) {
    raft_ = consensus::RaftCluster::Create(sim, net, costs, node_ids_,
                                           config_.raft, on_apply);
  } else {
    ibft_ = consensus::BftCluster::Create(sim, net, costs, node_ids_,
                                          config_.ibft, on_apply);
  }
}

void QuorumSystem::Start() {
  if (raft_ != nullptr) {
    raft_->StartAll();
  } else {
    ibft_->StartAll();
  }
  sim_->Schedule(config_.block_interval, [this] { ProposerTick(); });
}

bool QuorumSystem::HasProposer() const {
  if (raft_ != nullptr) {
    return const_cast<consensus::RaftCluster*>(raft_.get())->leader() != nullptr;
  }
  return const_cast<consensus::BftCluster*>(ibft_.get())->primary() != nullptr;
}

NodeId QuorumSystem::ProposerId() const {
  if (raft_ != nullptr) {
    auto* leader = const_cast<consensus::RaftCluster*>(raft_.get())->leader();
    return leader != nullptr ? leader->id() : node_ids_[0];
  }
  auto* primary = const_cast<consensus::BftCluster*>(ibft_.get())->primary();
  return primary != nullptr ? primary->id() : node_ids_[0];
}

void QuorumSystem::ProposerTick() {
  if (!mempool_.empty() && HasProposer()) {
    CutAndProposeBlock();
  }
  sim_->Schedule(config_.block_interval, [this] { ProposerTick(); });
}

Time QuorumSystem::ExecuteTxn(Node* node, const core::TxnRequest& request,
                              ledger::LedgerTxn* out, bool apply_writes) {
  contract::Contract* contract = contracts_->Lookup(
      request.contract.empty() ? "ycsb" : request.contract);
  Time cost = costs_->sig_verify_us;  // transaction signature check
  if (contract == nullptr) {
    out->valid = false;
    return cost;
  }
  MptView view(&node->state);
  contract::WriteSet writes;
  Status s = contract->Execute(request, &view, &writes, nullptr);

  // Read ops: state-trie lookups.
  for (const auto& op : request.ops) {
    if (op.type == core::OpType::kRead) {
      cost += costs_->lsm_read_us;
    }
  }
  // Write ops: EVM interpretation + MPT path rebuild per record.
  for (const auto& [key, value] : writes) {
    cost += costs_->QuorumOpCost(key.size() + value.size());
  }
  if (request.ops.empty()) {
    // Contract-method transactions (Smallbank): charge the VM base per
    // state access via the contract's own estimate.
    cost += contract->ExecCost(request, *costs_);
  }

  out->valid = s.ok();
  out->write_set.assign(writes.begin(), writes.end());
  if (s.ok() && apply_writes) {
    for (const auto& [key, value] : writes) {
      node->state.Put(key, value);  // real MPT hashing work
    }
  }
  return cost;
}

void QuorumSystem::CutAndProposeBlock() {
  NodeId proposer_id = ProposerId();
  Node* proposer = nodes_.at(proposer_id).get();

  ledger::Block block;
  block.header.number = next_block_number_;
  block.header.parent = proposer->chain.TipDigest();
  block.header.timestamp_us = static_cast<uint64_t>(sim_->Now());

  Time exec_cost = 0;
  uint64_t bytes = 0;
  while (!mempool_.empty() && block.txns.size() < config_.max_block_txns &&
         bytes < config_.max_block_bytes) {
    PendingTxn pending = std::move(mempool_.front());
    mempool_.pop_front();
    pending.proposed_time = sim_->Now();

    ledger::LedgerTxn txn;
    txn.txn_id = pending.request.txn_id;
    txn.client_id = pending.request.client_id;
    txn.payload = pending.request.Serialize();
    txn.client_signature =
        crypto::Signer(pending.request.client_id).Sign(txn.payload);
    // Serial pre-execution against the proposer's state (applied now — the
    // proposer's chain head advances as it builds).
    exec_cost += ExecuteTxn(proposer, pending.request, &txn,
                            /*apply_writes=*/true);
    bytes += txn.ByteSize();
    block.txns.push_back(std::move(txn));
    inflight_[pending.request.txn_id] = std::move(pending);
  }
  if (block.txns.empty()) return;
  next_block_number_++;
  block.header.state_digest = proposer->state.RootDigest();
  block.SealTxnRoot();

  // Remember which blocks this node built so it can skip re-execution when
  // they commit (geth's miner does not re-process its own blocks).
  locally_built_[proposer_id].insert(
      crypto::DigestBytes(block.header.txn_root));

  std::string serialized = block.Serialize();
  // The pre-execution work occupies the proposer's serial thread; the block
  // goes to consensus when it finishes.
  proposer->cpu.Submit(exec_cost, [this, proposer_id,
                                   serialized = std::move(serialized)] {
    if (raft_ != nullptr) {
      consensus::RaftNode* leader = raft_->leader();
      if (leader == nullptr || leader->id() != proposer_id) return;
      leader->Propose(serialized, [](Status, uint64_t) {});
    } else {
      consensus::BftNode* primary = ibft_->primary();
      if (primary == nullptr) return;
      primary->Submit(serialized, [](Status, uint64_t) {});
    }
  });
}

void QuorumSystem::OnBlockCommitted(NodeId node_id, const std::string& cmd) {
  ledger::Block block;
  if (!ledger::Block::Deserialize(cmd, &block)) return;
  Node* node = nodes_.at(node_id).get();

  // The proposer already executed this block while building it; skip its
  // re-execution.
  auto& built = locally_built_[node_id];
  auto built_it = built.find(crypto::DigestBytes(block.header.txn_root));
  bool already_executed = built_it != built.end();
  if (already_executed) built.erase(built_it);

  Time cost = 0;
  if (!already_executed) {
    for (const auto& txn : block.txns) {
      core::TxnRequest request;
      if (!core::TxnRequest::Deserialize(txn.payload, &request)) continue;
      ledger::LedgerTxn scratch;
      cost += ExecuteTxn(node, request, &scratch, /*apply_writes=*/false);
    }
    // Apply the block's write sets (deterministic replay).
    for (const auto& txn : block.txns) {
      if (!txn.valid) continue;
      for (const auto& [key, value] : txn.write_set) {
        node->state.Put(key, value);
      }
    }
  }

  // Serial commit on the node's execution thread.
  auto shared = std::make_shared<ledger::Block>(std::move(block));
  node->cpu.Submit(cost, [this, node_id, node, shared] {
    // Fix up the parent pointer for the node's own chain (proposer chains
    // can briefly diverge in IBFT view changes; benches keep it linear).
    ledger::Block to_append = *shared;
    to_append.header.number = node->chain.height();
    to_append.header.parent = node->chain.TipDigest();
    to_append.SealTxnRoot();
    node->chain.Append(std::move(to_append));

    // A fixed non-proposer node acts as the client's local peer: completion
    // fires when it has committed, so the latency includes the
    // re-execution (commit) phase like a real client observes.
    NodeId completion = node_ids_.back();
    if (completion == ProposerId() && node_ids_.size() > 1) {
      completion = node_ids_[node_ids_.size() - 2];
    }
    if (node_id != completion) return;
    for (const auto& txn : shared->txns) {
      auto it = inflight_.find(txn.txn_id);
      if (it == inflight_.end()) continue;
      PendingTxn pending = std::move(it->second);
      inflight_.erase(it);
      net_->Send(node_id, config_.client_node, 64,
                 [this, pending = std::move(pending),
                  valid = txn.valid]() mutable {
                   core::TxnResult result;
                   result.submit_time = pending.submit_time;
                   result.finish_time = sim_->Now();
                   result.phase_us["proposal"] =
                       pending.proposed_time - pending.submit_time;
                   result.phase_us["consensus+commit"] =
                       result.finish_time - pending.proposed_time;
                   if (valid) {
                     result.status = Status::Ok();
                     stats_.committed++;
                   } else {
                     result.status = Status::Aborted("contract aborted");
                     result.reason = core::AbortReason::kConstraint;
                     stats_.aborted++;
                     stats_.aborts_by_reason[result.reason]++;
                   }
                   pending.cb(result);
                 });
    }
  });
}

void QuorumSystem::Submit(const core::TxnRequest& request,
                          core::TxnCallback cb) {
  PendingTxn pending;
  pending.request = request;
  pending.cb = std::move(cb);
  pending.submit_time = sim_->Now();
  // Client sends the signed transaction to the proposer's mempool.
  net_->Send(config_.client_node, ProposerId(), request.PayloadBytes() + 96,
             [this, pending = std::move(pending)]() mutable {
               mempool_.push_back(std::move(pending));
             });
}

void QuorumSystem::Query(const core::ReadRequest& request,
                         core::ReadCallback cb) {
  stats_.queries++;
  Time submit_time = sim_->Now();
  NodeId target = node_ids_[request.client_id % node_ids_.size()];
  net_->Send(config_.client_node, target, 64 + request.key.size(),
             [this, target, key = request.key, cb = std::move(cb),
              submit_time]() mutable {
               // Served concurrently by the node's RPC layer (no consensus).
               sim_->Schedule(costs_->quorum_query_us, [this, target, key,
                                                        cb = std::move(cb),
                                                        submit_time]() mutable {
                 std::string value;
                 Status s = nodes_.at(target)->state.Get(key, &value);
                 net_->Send(target, config_.client_node, 64 + value.size(),
                            [this, cb = std::move(cb), submit_time, s,
                             value = std::move(value)] {
                              core::ReadResult result;
                              result.status = s;
                              result.value = value;
                              result.submit_time = submit_time;
                              result.finish_time = sim_->Now();
                              result.phase_us["evm-read"] =
                                  result.finish_time - submit_time;
                              cb(result);
                            });
               });
             });
}

}  // namespace dicho::systems
