# Empty dependencies file for fig07_cft_vs_bft.
# This may be replaced when dependencies are built.
