#include "contract/contract.h"

#include <cstdio>
#include <cstdlib>

namespace dicho::contract {

Status KvContract::Execute(const core::TxnRequest& request, StateView* view,
                           WriteSet* writes,
                           std::map<std::string, std::string>* result_reads) {
  for (const auto& op : request.ops) {
    switch (op.type) {
      case core::OpType::kRead: {
        std::string value;
        Status s = view->Get(op.key, &value);
        if (!s.ok() && !s.IsNotFound()) return s;
        if (result_reads != nullptr) (*result_reads)[op.key] = value;
        break;
      }
      case core::OpType::kWrite:
        writes->emplace_back(op.key, op.value);
        break;
      case core::OpType::kReadModifyWrite: {
        std::string value;
        Status s = view->Get(op.key, &value);
        if (!s.ok() && !s.IsNotFound()) return s;
        if (result_reads != nullptr) (*result_reads)[op.key] = value;
        writes->emplace_back(op.key, op.value);
        break;
      }
    }
  }
  return Status::Ok();
}

sim::Time KvContract::ExecCost(const core::TxnRequest& request,
                               const sim::CostModel& costs) const {
  return static_cast<sim::Time>(request.ops.size()) * costs.native_op_us;
}

std::string SmallbankContract::EncodeBalance(int64_t cents) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(cents));
  return buf;
}

int64_t SmallbankContract::DecodeBalance(const std::string& value) {
  if (value.empty()) return 0;
  return strtoll(value.c_str(), nullptr, 10);
}

namespace {

Status ReadBalance(StateView* view, const std::string& key, int64_t* balance,
                   std::map<std::string, std::string>* result_reads) {
  std::string value;
  Status s = view->Get(key, &value);
  if (!s.ok() && !s.IsNotFound()) return s;
  if (s.IsNotFound()) {
    *balance = 0;
  } else {
    *balance = SmallbankContract::DecodeBalance(value);
  }
  if (result_reads != nullptr) (*result_reads)[key] = value;
  return Status::Ok();
}

}  // namespace

Status SmallbankContract::Execute(
    const core::TxnRequest& request, StateView* view, WriteSet* writes,
    std::map<std::string, std::string>* result_reads) {
  const auto& m = request.method;
  const auto& args = request.args;

  if (m == "balance") {
    if (args.size() != 1) return Status::InvalidArgument("balance(cust)");
    int64_t chk, sav;
    Status s = ReadBalance(view, CheckingKey(args[0]), &chk, result_reads);
    if (!s.ok()) return s;
    return ReadBalance(view, SavingsKey(args[0]), &sav, result_reads);
  }

  if (m == "deposit_checking") {
    if (args.size() != 2) {
      return Status::InvalidArgument("deposit_checking(cust, amt)");
    }
    int64_t amount = DecodeBalance(args[1]);
    if (amount < 0) return Status::Aborted("negative deposit");
    int64_t chk;
    Status s = ReadBalance(view, CheckingKey(args[0]), &chk, result_reads);
    if (!s.ok()) return s;
    writes->emplace_back(CheckingKey(args[0]), EncodeBalance(chk + amount));
    return Status::Ok();
  }

  if (m == "transact_savings") {
    if (args.size() != 2) {
      return Status::InvalidArgument("transact_savings(cust, amt)");
    }
    int64_t amount = DecodeBalance(args[1]);
    int64_t sav;
    Status s = ReadBalance(view, SavingsKey(args[0]), &sav, result_reads);
    if (!s.ok()) return s;
    if (sav + amount < 0) return Status::Aborted("insufficient savings");
    writes->emplace_back(SavingsKey(args[0]), EncodeBalance(sav + amount));
    return Status::Ok();
  }

  if (m == "write_check") {
    if (args.size() != 2) {
      return Status::InvalidArgument("write_check(cust, amt)");
    }
    int64_t amount = DecodeBalance(args[1]);
    int64_t chk, sav;
    Status s = ReadBalance(view, CheckingKey(args[0]), &chk, result_reads);
    if (!s.ok()) return s;
    s = ReadBalance(view, SavingsKey(args[0]), &sav, result_reads);
    if (!s.ok()) return s;
    // Overdraft beyond total funds incurs a $1 penalty (Smallbank spec).
    int64_t penalty = (amount > chk + sav) ? 100 : 0;
    writes->emplace_back(CheckingKey(args[0]),
                         EncodeBalance(chk - amount - penalty));
    return Status::Ok();
  }

  if (m == "amalgamate") {
    if (args.size() != 2) return Status::InvalidArgument("amalgamate(c1, c2)");
    int64_t sav1, chk1, chk2;
    Status s = ReadBalance(view, SavingsKey(args[0]), &sav1, result_reads);
    if (!s.ok()) return s;
    s = ReadBalance(view, CheckingKey(args[0]), &chk1, result_reads);
    if (!s.ok()) return s;
    s = ReadBalance(view, CheckingKey(args[1]), &chk2, result_reads);
    if (!s.ok()) return s;
    writes->emplace_back(SavingsKey(args[0]), EncodeBalance(0));
    writes->emplace_back(CheckingKey(args[0]), EncodeBalance(0));
    writes->emplace_back(CheckingKey(args[1]),
                         EncodeBalance(chk2 + sav1 + chk1));
    return Status::Ok();
  }

  if (m == "send_payment") {
    if (args.size() != 3) {
      return Status::InvalidArgument("send_payment(c1, c2, amt)");
    }
    int64_t amount = DecodeBalance(args[2]);
    int64_t chk1, chk2;
    Status s = ReadBalance(view, CheckingKey(args[0]), &chk1, result_reads);
    if (!s.ok()) return s;
    s = ReadBalance(view, CheckingKey(args[1]), &chk2, result_reads);
    if (!s.ok()) return s;
    if (chk1 < amount) return Status::Aborted("insufficient funds");
    writes->emplace_back(CheckingKey(args[0]), EncodeBalance(chk1 - amount));
    writes->emplace_back(CheckingKey(args[1]), EncodeBalance(chk2 + amount));
    return Status::Ok();
  }

  return Status::NotSupported("unknown smallbank method: " + m);
}

sim::Time SmallbankContract::ExecCost(const core::TxnRequest& request,
                                      const sim::CostModel& costs) const {
  // Each method touches 1-3 records; charge per state access.
  size_t accesses = 2;
  if (request.method == "amalgamate") accesses = 3;
  if (request.method == "send_payment") accesses = 2;
  if (request.method == "deposit_checking") accesses = 1;
  return static_cast<sim::Time>(accesses) * costs.native_op_us;
}

std::vector<std::string> StaticKeySet(const core::TxnRequest& request) {
  std::vector<std::string> keys;
  for (const auto& op : request.ops) keys.push_back(op.key);
  if (request.contract == "smallbank" && !request.args.empty()) {
    const auto& m = request.method;
    const auto& a = request.args;
    if (m == "balance" || m == "write_check") {
      keys.push_back(SmallbankContract::CheckingKey(a[0]));
      keys.push_back(SmallbankContract::SavingsKey(a[0]));
    } else if (m == "deposit_checking") {
      keys.push_back(SmallbankContract::CheckingKey(a[0]));
    } else if (m == "transact_savings") {
      keys.push_back(SmallbankContract::SavingsKey(a[0]));
    } else if (m == "amalgamate" && a.size() >= 2) {
      keys.push_back(SmallbankContract::SavingsKey(a[0]));
      keys.push_back(SmallbankContract::CheckingKey(a[0]));
      keys.push_back(SmallbankContract::CheckingKey(a[1]));
    } else if (m == "send_payment" && a.size() >= 2) {
      keys.push_back(SmallbankContract::CheckingKey(a[0]));
      keys.push_back(SmallbankContract::CheckingKey(a[1]));
    }
  }
  return keys;
}

void ContractRegistry::Register(std::unique_ptr<Contract> contract) {
  contracts_[contract->name()] = std::move(contract);
}

Contract* ContractRegistry::Lookup(const std::string& name) const {
  auto it = contracts_.find(name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

std::unique_ptr<ContractRegistry> ContractRegistry::CreateDefault() {
  auto registry = std::make_unique<ContractRegistry>();
  registry->Register(std::make_unique<KvContract>());
  registry->Register(std::make_unique<SmallbankContract>());
  return registry;
}

}  // namespace dicho::contract
