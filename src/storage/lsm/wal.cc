#include "storage/lsm/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace dicho::storage::lsm {

Status LogWriter::AddRecord(const Slice& payload) {
  std::string header;
  uint32_t crc = crc32c::Value(payload.data(), payload.size());
  PutFixed32(&header, crc32c::Mask(crc));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  Status s = file_->Append(header);
  if (!s.ok()) return s;
  return file_->Append(payload);
}

bool LogReader::ReadRecord(std::string* payload, bool* corruption_detected) {
  if (corruption_detected != nullptr) *corruption_detected = false;
  if (pos_ + 8 > contents_.size()) {
    if (corruption_detected != nullptr && pos_ != contents_.size()) {
      *corruption_detected = true;  // torn header
    }
    return false;
  }
  uint32_t masked_crc = DecodeFixed32(contents_.data() + pos_);
  uint32_t len = DecodeFixed32(contents_.data() + pos_ + 4);
  if (pos_ + 8 + len > contents_.size()) {
    if (corruption_detected != nullptr) *corruption_detected = true;  // torn body
    return false;
  }
  const char* body = contents_.data() + pos_ + 8;
  uint32_t actual = crc32c::Value(body, len);
  if (crc32c::Unmask(masked_crc) != actual) {
    if (corruption_detected != nullptr) *corruption_detected = true;
    return false;
  }
  payload->assign(body, len);
  pos_ += 8 + len;
  return true;
}

}  // namespace dicho::storage::lsm
