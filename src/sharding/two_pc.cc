#include "sharding/two_pc.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace dicho::sharding {

namespace {
constexpr uint64_t kCtrlBytes = 64;
}

void TwoPcCoordinator::Run(uint64_t txn_id,
                           std::vector<TwoPcParticipant> participants,
                           std::function<void(Status)> cb) {
  auto pending = std::make_shared<Pending>();
  pending->participants = participants;
  pending->cb = std::move(cb);
  pending->started = sim_->Now();
  pending_[txn_id] = pending;

  size_t total = participants.size();
  for (const auto& participant : participants) {
    // PREPARE to each participant.
    net_->Send(node_, participant.node, kCtrlBytes,
               [this, txn_id, participant, pending, total] {
                 participant.prepare(
                     txn_id, [this, txn_id, pending, total,
                              from = participant.node](bool vote) {
                       // Vote back to the coordinator.
                       net_->Send(from, node_, kCtrlBytes,
                                  [this, txn_id, pending, total, vote] {
                                    pending->votes_received++;
                                    pending->all_yes &= vote;
                                    if (pending->votes_received < total) return;
                                    // Decision point: the prepare span covers
                                    // PREPARE fan-out through last vote.
                                    obs::EmitSpan(sim_, "2pc.prepare", "commit",
                                                  node_, txn_id,
                                                  pending->started,
                                                  sim_->Now());
                                    if (crash_before_decision_) {
                                      blocked_++;
                                      return;  // participants stay prepared
                                    }
                                    bool commit = pending->all_yes;
                                    if (commit) {
                                      committed_++;
                                    } else {
                                      aborted_++;
                                    }
                                    const sim::Time decided = sim_->Now();
                                    for (const auto& p :
                                         pending->participants) {
                                      net_->Send(node_, p.node, kCtrlBytes,
                                                 [this, p, txn_id, commit,
                                                  decided] {
                                                   obs::EmitSpan(
                                                       sim_, "2pc.decide",
                                                       "commit", p.node,
                                                       txn_id, decided,
                                                       sim_->Now());
                                                   p.finish(txn_id, commit);
                                                 });
                                    }
                                    pending_.erase(txn_id);
                                    pending->cb(commit
                                                    ? Status::Ok()
                                                    : Status::Aborted(
                                                          "participant voted no"));
                                  });
                     });
               });
  }
}

namespace {

/// log(n choose k) via lgamma for numerical stability.
double LogChoose(uint32_t n, uint32_t k) {
  if (k > n) return -INFINITY;
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

}  // namespace

double ShardFailureProbability(uint32_t n_nodes, uint32_t n_byzantine,
                               uint32_t shard_size, double threshold) {
  if (shard_size == 0 || shard_size > n_nodes) return 0.0;
  uint32_t bad_needed =
      static_cast<uint32_t>(std::ceil(threshold * shard_size));
  if (bad_needed == 0) return 1.0;
  double p = 0.0;
  uint32_t max_bad = std::min(n_byzantine, shard_size);
  for (uint32_t k = bad_needed; k <= max_bad; k++) {
    double log_p = LogChoose(n_byzantine, k) +
                   LogChoose(n_nodes - n_byzantine, shard_size - k) -
                   LogChoose(n_nodes, shard_size);
    p += std::exp(log_p);
  }
  return std::min(p, 1.0);
}

double AnyShardFailureProbability(uint32_t n_nodes, uint32_t n_byzantine,
                                  uint32_t shard_size, double threshold,
                                  uint32_t num_shards) {
  double single = ShardFailureProbability(n_nodes, n_byzantine, shard_size,
                                          threshold);
  // Union bound / independence approximation.
  return 1.0 - std::pow(1.0 - single, num_shards);
}

std::vector<std::vector<NodeId>> RandomShardAssignment(
    const std::vector<NodeId>& nodes, uint32_t shard_size, Rng* rng) {
  std::vector<NodeId> shuffled = nodes;
  for (size_t i = shuffled.size() - 1; i > 0; i--) {
    std::swap(shuffled[i], shuffled[rng->Uniform(i + 1)]);
  }
  std::vector<std::vector<NodeId>> shards;
  for (size_t i = 0; i + shard_size <= shuffled.size(); i += shard_size) {
    shards.emplace_back(shuffled.begin() + static_cast<long>(i),
                        shuffled.begin() + static_cast<long>(i + shard_size));
  }
  return shards;
}

}  // namespace dicho::sharding
