#ifndef DICHO_SYSTEMS_FABRIC_H_
#define DICHO_SYSTEMS_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "contract/contract.h"
#include "core/types.h"
#include "ledger/ledger.h"
#include "sharedlog/ordering_service.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/runtime/elasticity.h"
#include "systems/runtime/mempool.h"
#include "systems/runtime/runtime.h"
#include "txn/occ.h"

namespace dicho::systems {

using sim::NodeId;
using sim::Time;

struct FabricConfig {
  uint32_t num_peers = 5;
  /// The paper's endorsement policy: every peer endorses every transaction.
  /// (Reduce for ablations.)
  uint32_t endorsers_required = 0;  // 0 = all peers
  /// Fabric validates blocks serially (its implementation choice — paper
  /// Section 5.2.1 notes commits *could* be concurrent). Values > 1 model a
  /// validation pool with that many workers (the ablation bench).
  uint32_t validation_parallelism = 1;
  sharedlog::OrderingConfig ordering;
  NodeId client_node = runtime::kClientNode;
  /// Replica-lifecycle support (default-off; enables AddPeer).
  runtime::ElasticityConfig elasticity;
  /// Fast storage path (DESIGN.md §2g): peer world state is backed by the
  /// content-addressed delta store (src/storage/delta) and the per-byte
  /// commit charge drops to the delta-encode rate. Default-off so the
  /// modeled costs in golden traces are unchanged.
  bool fast_storage = false;
};

/// Hyperledger Fabric v2.x: an execute-order-validate permissioned
/// blockchain. Clients collect simulated read/write sets plus signatures
/// from the peers (concurrent execute phase), submit the endorsed envelope
/// to a 3-orderer Raft ordering service (a shared log from the peers'
/// viewpoint), and every peer validates blocks *serially*: per-endorsement
/// signature checks + an optimistic read-set version check, aborting stale
/// transactions (paper Sections 3.2, 5.2, 5.3).
///
/// Design-dimension choices: transaction-based replication / shared log
/// (CFT Raft orderers) / concurrent execution + serial commit / ledger /
/// LSM state without an authenticated index (v1+ dropped the MBT) / no
/// sharding.
class FabricSystem : public core::TransactionalSystem {
 public:
  FabricSystem(sim::Simulator* sim, sim::SimNetwork* net,
               const sim::CostModel* costs, FabricConfig config);

  void Start() override;
  bool Ready() const { return ordering_->HasLeader(); }

  void Submit(const core::TxnRequest& request, core::TxnCallback cb) override;
  void Query(const core::ReadRequest& request, core::ReadCallback cb) override;
  const core::SystemStats& stats() const override { return stats_; }
  std::string name() const override { return "fabric"; }

  /// Pre-populates every peer's world state directly (benchmark setup).
  void Load(const std::string& key, const std::string& value) override {
    peers_.ForEach([&](NodeId id, Peer& peer) {
      peer.state.Apply({{key, value}}, 0);
      // Tracker values carry the MVCC version ("value@version") so a
      // transferred snapshot restores versions the joiner's later
      // validation can compare against.
      if (runtime::ReplicaTracker* t = tracker(id)) t->OnLoad(key, value + "@0");
    });
  }

  const txn::VersionedState& state_of(NodeId peer) const {
    return peers_.at(peer).state;
  }
  const ledger::Chain& chain_of(NodeId peer) const {
    return peers_.at(peer).chain;
  }
  uint64_t LedgerBytes() const { return peers_.at_index(0).chain.TotalBytes(); }
  uint64_t StateBytes() const { return peers_.at_index(0).state.DataBytes(); }
  /// Physical bytes behind the world state: equals StateBytes() unless
  /// fast_storage delta-backs it (Fig. 12's fs row).
  uint64_t StatePhysicalBytes() const {
    return peers_.at_index(0).state.PhysicalBytes();
  }
  /// Validation backlog on a peer (saturation diagnostics, Fig. 8a).
  Time ValidationBacklog(NodeId peer) const {
    return peers_.at(peer).validate_cpu.backlog();
  }

  /// Lifecycle (requires config.elasticity.enabled): adds one peer via a
  /// world-state snapshot transfer from peer 0 — Fabric v2.4's
  /// ledger-snapshot join: the new peer gets state (with MVCC versions,
  /// so later validation matches its elders) but no historical blocks; it
  /// validates ordered blocks past the snapshot anchor itself. Peers are
  /// not consensus members, so no config change is needed — admission is a
  /// delivery subscription. `done` fires once the buffered block backlog
  /// has drained into the peer.
  NodeId AddPeer(std::function<void(const runtime::JoinReport&)> done);

  /// TESTING ONLY: injects a pre-built envelope straight into ordering,
  /// bypassing the endorsement path — how a tampered or forged envelope
  /// would reach block validation (the signature check must catch it).
  void SubmitRawEnvelopeForTest(const ledger::LedgerTxn& envelope) {
    ordering_->Submit(config_.client_node, envelope.Serialize(), [](Status) {});
  }

  runtime::ReplicaTracker* tracker(NodeId peer) {
    size_t index = peers_.index_of(peer);
    return index < trackers_.size() ? trackers_[index].get() : nullptr;
  }

 private:
  struct Peer {
    explicit Peer(sim::Simulator* sim) : validate_cpu(sim) {}
    txn::VersionedState state;
    ledger::Chain chain;
    sim::CpuResource validate_cpu;  // the serial validate/commit thread
    /// True between AddPeer and snapshot install: delivered blocks are
    /// buffered in `backlog` instead of validated (the subscription starts
    /// before the transfer so no block is lost in between).
    bool catching_up = false;
    std::vector<sharedlog::OrderedBlock> backlog;
  };
  struct PendingTxn {
    core::TxnRequest request;
    core::TxnCallback cb;
    Time submit_time = 0;
    Time endorsed_time = 0;
    Time ordered_time = 0;
    size_t responses = 0;
    bool endorsement_diverged = false;
    ledger::LedgerTxn envelope;
    std::vector<std::vector<std::pair<std::string, uint64_t>>> read_sets;
  };

  uint32_t EndorsersRequired() const {
    return config_.endorsers_required == 0 ? config_.num_peers
                                           : config_.endorsers_required;
  }
  runtime::ReplicaTracker* MakeTracker(NodeId peer);
  void OnEndorsementsComplete(std::shared_ptr<PendingTxn> pending);
  void OnBlockDelivered(NodeId peer, const sharedlog::OrderedBlock& block);
  void FinishTxn(uint64_t txn_id, bool valid, core::AbortReason reason);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  FabricConfig config_;
  core::SystemStats stats_;
  runtime::NodeSet<Peer> peers_;
  /// Parallel to peers_; empty when elasticity is disabled (the default).
  std::vector<std::unique_ptr<runtime::ReplicaTracker>> trackers_;
  std::unique_ptr<sharedlog::OrderingService> ordering_;
  std::unique_ptr<contract::ContractRegistry> contracts_;
  runtime::InflightTable<std::shared_ptr<PendingTxn>> inflight_;
};

}  // namespace dicho::systems

#endif  // DICHO_SYSTEMS_FABRIC_H_
