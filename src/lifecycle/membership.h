#ifndef DICHO_LIFECYCLE_MEMBERSHIP_H_
#define DICHO_LIFECYCLE_MEMBERSHIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.h"

namespace dicho::lifecycle {

using sim::NodeId;

/// A versioned membership view: the set of replica ids that constitutes the
/// replication group after `version` committed configuration changes.
/// Members are kept sorted so views compare structurally.
struct MembershipView {
  uint64_t version = 0;
  std::vector<NodeId> members;

  bool Contains(NodeId id) const;
  size_t QuorumSize() const { return members.size() / 2 + 1; }
  bool operator==(const MembershipView& o) const {
    return version == o.version && members == o.members;
  }
};

enum class ConfigChangeKind { kAddNode, kRemoveNode };

struct ConfigChange {
  ConfigChangeKind kind = ConfigChangeKind::kAddNode;
  NodeId node = 0;
};

/// Config changes travel through the replicated log as commands with a
/// reserved prefix ("#cfg ..."). System state machines that deserialize
/// structured requests fail the parse and ignore them; consensus layers
/// intercept them before apply.
std::string FormatConfigChange(const ConfigChange& cc);
bool IsConfigChangeCommand(const std::string& cmd);
bool ParseConfigChange(const std::string& cmd, ConfigChange* out);

/// Applies a change to a sorted member vector. Returns false for a no-op
/// (adding a present member / removing an absent one); the vector is
/// untouched in that case.
bool ApplyConfigChange(const ConfigChange& cc, std::vector<NodeId>* members);

/// Raft §6 single-server rule: adjacent configurations must differ by at
/// most one member, which guarantees their majority quorums intersect.
bool IsSingleServerChange(const std::vector<NodeId>& from,
                          const std::vector<NodeId>& to);

/// Whether configurations `a` and `b` admit two *disjoint* majority quorums
/// (the membership-change safety violation: each quorum could commit a
/// different value with no common voter). With ma = |a|/2+1 and mb = |b|/2+1
/// majorities, disjoint quorums exist iff the members exclusive to each side
/// plus the shared pool can seat both majorities without overlap:
///   max(0, ma - |a\b|) + max(0, mb - |b\a|) <= |a ∩ b|
bool DisjointQuorumsPossible(const std::vector<NodeId>& a,
                             const std::vector<NodeId>& b);

}  // namespace dicho::lifecycle

#endif  // DICHO_LIFECYCLE_MEMBERSHIP_H_
