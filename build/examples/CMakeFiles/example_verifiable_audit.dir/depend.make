# Empty dependencies file for example_verifiable_audit.
# This may be replaced when dependencies are built.
