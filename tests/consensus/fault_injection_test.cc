#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "testing/invariants.h"
#include "testing/nemesis.h"
#include "testing/schedule.h"

namespace dicho::consensus {
namespace {

using testing::BftInvariantChecker;
using testing::FaultAction;
using testing::FaultSchedule;
using testing::Nemesis;
using testing::RaftInvariantChecker;

// Failure injection beyond crashes: lossy networks and flaky links, driven
// by named nemesis schedules (the same machinery sim_fuzz randomizes) and
// checked with the shared safety invariant checkers. Both protocol families
// must preserve safety and (once conditions clear) liveness.

// Steady 10% iid loss for the whole run, never lifted.
FaultSchedule SteadyLossSchedule(double drop_rate) {
  FaultAction start;
  start.at = 0;
  start.kind = FaultAction::Kind::kDropStart;
  start.drop_rate = drop_rate;
  return FaultSchedule{{start}};
}

// A loss storm that ends: brutal drop rate from t=0, restored at `until`.
FaultSchedule LossStormSchedule(double drop_rate, sim::Time until) {
  FaultAction start;
  start.at = 0;
  start.kind = FaultAction::Kind::kDropStart;
  start.drop_rate = drop_rate;
  FaultAction stop;
  stop.at = until;
  stop.kind = FaultAction::Kind::kDropStop;
  return FaultSchedule{{start, stop}};
}

// Light loss plus a single mid-stream crash (f = 1 budget for n = 4 BFT).
FaultSchedule LossAndOneCrashSchedule(double drop_rate, sim::NodeId victim,
                                      sim::Time crash_at) {
  FaultAction drop;
  drop.at = 0;
  drop.kind = FaultAction::Kind::kDropStart;
  drop.drop_rate = drop_rate;
  FaultAction crash;
  crash.at = crash_at;
  crash.kind = FaultAction::Kind::kCrash;
  crash.node = victim;
  return FaultSchedule{{drop, crash}};
}

TEST(RaftLossyNetworkTest, CommitsDespiteMessageLoss) {
  sim::Simulator sim(42);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  RaftInvariantChecker* checker = nullptr;
  auto cluster = RaftCluster::Create(
      &sim, &net, &costs, {0, 1, 2, 3, 4}, RaftConfig{},
      [&checker](NodeId node, uint64_t index, const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, index, cmd);
      });
  RaftInvariantChecker check(cluster->all());
  checker = &check;

  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});  // network faults only
  nemesis.Arm(SteadyLossSchedule(0.10));
  cluster->StartAll();

  std::function<void()> observe = [&] {
    check.Observe();
    sim.Schedule(20 * sim::kMs, observe);
  };
  sim.Schedule(20 * sim::kMs, observe);

  // Find a leader under loss (may take several election rounds).
  RaftNode* leader = nullptr;
  for (int i = 0; i < 300 && leader == nullptr; i++) {
    sim.RunFor(100 * sim::kMs);
    leader = cluster->leader();
  }
  ASSERT_NE(leader, nullptr);

  int committed = 0;
  for (int i = 0; i < 20; i++) {
    if (cluster->leader() != nullptr) {
      cluster->leader()->Propose(
          "cmd" + std::to_string(i),
          [&](Status s, uint64_t) { committed += s.ok(); });
    }
    sim.RunFor(200 * sim::kMs);
  }
  sim.RunFor(10 * sim::kSec);
  EXPECT_GT(committed, 10);  // most commit despite loss

  // Safety: election safety, log matching, and identical applies at every
  // index, accumulated live plus a final pairwise sweep.
  check.CheckFinal();
  EXPECT_TRUE(check.report()->ok()) << check.report()->Summary();
}

TEST(RaftLossyNetworkTest, RecoversAfterLossStops) {
  sim::Simulator sim(7);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  auto cluster =
      RaftCluster::Create(&sim, &net, &costs, {0, 1, 2}, RaftConfig{}, nullptr);

  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  nemesis.Arm(LossStormSchedule(0.6, 3 * sim::kSec));  // brutal, then clear
  cluster->StartAll();

  sim.RunFor(3 * sim::kSec);
  RaftNode* leader = nullptr;
  for (int i = 0; i < 100 && leader == nullptr; i++) {
    sim.RunFor(100 * sim::kMs);
    leader = cluster->leader();
  }
  ASSERT_NE(leader, nullptr);
  bool committed = false;
  leader->Propose("after-storm",
                  [&](Status s, uint64_t) { committed = s.ok(); });
  sim.RunFor(3 * sim::kSec);
  EXPECT_TRUE(committed);
}

TEST(PbftLossyNetworkTest, SafetyUnderLossAndCrash) {
  sim::Simulator sim(13);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  BftConfig config;
  config.view_change_timeout = 400 * sim::kMs;
  BftInvariantChecker* checker = nullptr;
  auto cluster = BftCluster::Create(
      &sim, &net, &costs, {0, 1, 2, 3}, config,
      [&checker](NodeId node, uint64_t seq, const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, seq, cmd);
      });
  BftInvariantChecker check(cluster->all(), /*byzantine=*/{});
  checker = &check;

  Nemesis nemesis(&sim, &net,
                  Nemesis::Hooks{
                      [&](sim::NodeId id) { cluster->node(id)->Crash(); },
                      [&](sim::NodeId id) { cluster->node(id)->Restart(); },
                  });
  // One crash mid-stream (f = 1): node 3 dies while request 5 is in flight.
  nemesis.Arm(LossAndOneCrashSchedule(0.05, 3, 1500 * sim::kMs));
  cluster->StartAll();

  for (int i = 0; i < 10; i++) {
    BftNode* target = cluster->node(i % 4);
    if (!target->crashed()) {
      std::string cmd = "cmd" + std::to_string(i);
      check.NoteSubmitted(cmd);
      target->Submit(cmd, [](Status, uint64_t) {});
    }
    sim.RunFor(300 * sim::kMs);
  }
  sim.RunFor(15 * sim::kSec);

  // Agreement at every sequence number across live replicas, validity of
  // every executed command, and gap-free execution.
  check.CheckFinal();
  EXPECT_TRUE(check.report()->ok()) << check.report()->Summary();
  EXPECT_GT(check.executed_total(), 0u);
}

}  // namespace
}  // namespace dicho::consensus
