#include "adt/mbt.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace dicho::adt {
namespace {

TEST(MbtTest, DepthIsCappedByConstruction) {
  MerkleBucketTree tree(1000, 4);
  // ceil(log4 1000) = 5 — the paper's configuration.
  EXPECT_EQ(tree.depth(), 5u);
  MerkleBucketTree small(16, 4);
  EXPECT_EQ(small.depth(), 2u);
}

TEST(MbtTest, PutGet) {
  MerkleBucketTree tree(100, 4);
  ASSERT_TRUE(tree.Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(tree.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_TRUE(tree.Get("missing", &value).IsNotFound());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(MbtTest, UpdateAndDelete) {
  MerkleBucketTree tree(100, 4);
  ASSERT_TRUE(tree.Put("k", "v1").ok());
  crypto::Digest r1 = tree.RootDigest();
  ASSERT_TRUE(tree.Put("k", "v2").ok());
  EXPECT_NE(tree.RootDigest(), r1);
  EXPECT_EQ(tree.size(), 1u);
  ASSERT_TRUE(tree.Delete("k").ok());
  EXPECT_EQ(tree.size(), 0u);
  std::string value;
  EXPECT_TRUE(tree.Get("k", &value).IsNotFound());
  EXPECT_TRUE(tree.Delete("k").IsNotFound());
}

TEST(MbtTest, DeleteRestoresPriorRoot) {
  MerkleBucketTree tree(100, 4);
  ASSERT_TRUE(tree.Put("a", "1").ok());
  crypto::Digest before = tree.RootDigest();
  ASSERT_TRUE(tree.Put("b", "2").ok());
  ASSERT_TRUE(tree.Delete("b").ok());
  EXPECT_EQ(tree.RootDigest(), before);
}

TEST(MbtTest, RootOrderIndependent) {
  Rng rng(7);
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 300; i++) {
    kvs.emplace_back("key" + std::to_string(i), rng.Bytes(16));
  }
  MerkleBucketTree a(50, 4);
  for (const auto& [k, v] : kvs) ASSERT_TRUE(a.Put(k, v).ok());
  for (size_t i = kvs.size() - 1; i > 0; i--) {
    std::swap(kvs[i], kvs[rng.Uniform(i + 1)]);
  }
  MerkleBucketTree b(50, 4);
  for (const auto& [k, v] : kvs) ASSERT_TRUE(b.Put(k, v).ok());
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
}

TEST(MbtTest, RootDetectsAnyMutation) {
  MerkleBucketTree tree(64, 4);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(tree.Put("key" + std::to_string(i), "v").ok());
  }
  crypto::Digest base = tree.RootDigest();
  ASSERT_TRUE(tree.Put("key77", "mutated").ok());
  EXPECT_NE(tree.RootDigest(), base);
}

TEST(MbtTest, FuzzAgainstMap) {
  MerkleBucketTree tree(128, 4);
  std::map<std::string, std::string> model;
  Rng rng(13);
  for (int i = 0; i < 3000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(500));
    if (rng.Bernoulli(0.25)) {
      bool existed = model.erase(key) > 0;
      EXPECT_EQ(tree.Delete(key).ok(), existed);
    } else {
      std::string value = rng.Bytes(1 + rng.Uniform(40));
      model[key] = value;
      ASSERT_TRUE(tree.Put(key, value).ok());
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  for (const auto& [k, v] : model) {
    std::string value;
    ASSERT_TRUE(tree.Get(k, &value).ok());
    EXPECT_EQ(value, v);
  }
}

// Proof soundness across bucket/fanout configurations.
class MbtProofSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MbtProofSweep, ProofsVerifyAndForgeriesFail) {
  auto [buckets, fanout] = GetParam();
  MerkleBucketTree tree(buckets, fanout);
  Rng rng(buckets * 31 + fanout);
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 200; i++) {
    std::string k = "rec" + std::to_string(i);
    kvs[k] = rng.Bytes(24);
    ASSERT_TRUE(tree.Put(k, kvs[k]).ok());
  }
  for (const auto& [k, v] : kvs) {
    MerkleBucketTree::Proof proof;
    ASSERT_TRUE(tree.Prove(k, &proof).ok());
    EXPECT_TRUE(VerifyMbtProof(tree.RootDigest(), k, v, proof)) << k;
    EXPECT_FALSE(VerifyMbtProof(tree.RootDigest(), k, "forged", proof));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MbtProofSweep,
    ::testing::Values(std::make_tuple(1, 4), std::make_tuple(7, 2),
                      std::make_tuple(16, 4), std::make_tuple(100, 4),
                      std::make_tuple(1000, 4), std::make_tuple(1000, 16)));

TEST(MbtTest, ProofRejectsTamperedStep) {
  MerkleBucketTree tree(64, 4);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(tree.Put("key" + std::to_string(i), "v").ok());
  }
  MerkleBucketTree::Proof proof;
  ASSERT_TRUE(tree.Prove("key5", &proof).ok());
  ASSERT_FALSE(proof.steps.empty());
  proof.steps[0].group[0][0] ^= 1;
  EXPECT_FALSE(VerifyMbtProof(tree.RootDigest(), "key5", "v", proof));
}

TEST(MbtTest, OverheadIsSmallConstantPerRecord) {
  // The Fig. 13 effect: MBT overhead per record is tens of bytes because the
  // tree above the buckets is fixed-size.
  MerkleBucketTree tree(1000, 4);
  Rng rng(19);
  const int kRecords = 10000;
  for (int i = 0; i < kRecords; i++) {
    ASSERT_TRUE(tree.Put(rng.Bytes(16), rng.Bytes(100)).ok());
  }
  uint64_t per_record = tree.OverheadBytes() / kRecords;
  EXPECT_LT(per_record, 50u);
  EXPECT_GT(per_record, 10u);
}

}  // namespace
}  // namespace dicho::adt
