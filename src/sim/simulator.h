#ifndef DICHO_SIM_SIMULATOR_H_
#define DICHO_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "sim/event_queue.h"

namespace dicho::obs {
class TraceSink;
class MetricsRegistry;
}  // namespace dicho::obs

namespace dicho::sim {

/// Virtual time in microseconds.
using Time = double;

constexpr Time kUs = 1.0;
constexpr Time kMs = 1000.0;
constexpr Time kSec = 1000000.0;

/// Deterministic discrete-event simulator. All distributed components in
/// dicho (consensus protocols, networks, system pipelines) are event-driven
/// state machines scheduled here; a run with the same seed replays
/// identically.
///
/// The world can optionally be split into *logical partitions* (LPs), each
/// with its own event queue, clock, and RNG stream. Partitioned worlds can
/// then run on worker threads under conservative synchronization: the
/// smallest cross-partition delay (registered by SimNetwork as the base
/// network latency) is the lookahead `L`, and every partition may safely
/// execute all events below `min-pending-time + L` without ever receiving a
/// straggler. Event order is defined by the integer pair
///
///     (TimeKey(time), (source_partition << 40) | source_seq)
///
/// where the sequence number comes from the *scheduling* partition's private
/// counter — a quantity that does not depend on how partitions interleave on
/// wall-clock threads. Serial (DICHO_SIM_THREADS=1) and parallel execution
/// therefore produce bit-identical results: same handler order per
/// partition, same RNG draws, same merged trace bytes. Unpartitioned worlds
/// (the default: everything on partition 0) take a serial fast path that
/// reproduces the original single-queue engine exactly, tie-break and RNG
/// stream included.
class Simulator {
  struct Lp;

  /// Thread-local execution context: which simulator/partition the current
  /// thread is logically inside. `now`/`rng`/`sink` answer Now()/rng()/
  /// trace_sink() without looking up the partition again.
  struct ExecContext {
    const Simulator* sim = nullptr;
    Lp* lp = nullptr;
    const Time* now = nullptr;
    Rng* rng = nullptr;
    obs::TraceSink* sink = nullptr;
  };

 public:
  explicit Simulator(uint64_t seed = 42);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The caller's logical clock: inside an event handler, the executing
  /// partition's clock; elsewhere the global (end-of-run) clock.
  Time Now() const {
    const ExecContext& c = exec_tls_;
    return c.sim == this ? *c.now : now_;
  }

  /// The caller's RNG stream. Partition 0 (and all ambient/setup code) draws
  /// from the stream seeded with the constructor seed — byte-compatible with
  /// the original single-stream engine. Partitions k >= 1 own derived
  /// streams, so their draws are independent of sibling interleaving.
  Rng* rng() {
    const ExecContext& c = exec_tls_;
    return c.sim == this ? c.rng : &rng_;
  }

  /// Observability hooks (src/obs). Null by default: components guard every
  /// use with a pointer check, so a simulation without observers pays one
  /// predictable branch per instrumentation site and nothing else. In
  /// partitioned worlds trace_sink() resolves to the executing partition's
  /// buffer; buffers are merged into the root sink in deterministic key
  /// order at the end of each top-level Run/RunUntil.
  obs::TraceSink* trace_sink() const {
    const ExecContext& c = exec_tls_;
    if (c.sim == this && c.sink != nullptr) return c.sink;
    return trace_sink_;
  }
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Sink inherited by every Simulator constructed afterwards *on this
  /// thread* — for code paths that build their worlds internally (golden
  /// cases, sim-fuzz scenario replays). The slot is thread-local, so
  /// parallel sweeps and the parallel engine's workers each see their own
  /// inheritance chain and never race.
  static void SetDefaultTraceSink(obs::TraceSink* sink);

  /// Partitioning ------------------------------------------------------------
  /// Adds a logical partition and returns its index (>= 1; index 0 is the
  /// ambient partition every unassigned node lives on). Call during world
  /// construction only — never from inside a running event.
  uint32_t AddPartition();
  uint32_t num_partitions() const { return static_cast<uint32_t>(lps_.size()); }

  /// Maps a node id onto a partition; SimNetwork routes deliveries for the
  /// node to that partition's queue. Unassigned nodes map to partition 0.
  void AssignNode(uint32_t node, uint32_t partition);
  uint32_t PartitionOfNode(uint32_t node) const {
    return node < lp_of_node_.size() ? lp_of_node_[node] : 0;
  }
  /// Partition whose context the caller currently runs under (0 if ambient).
  uint32_t current_partition() const;

  /// RAII context for running construction/start code "on" a partition: node
  /// constructors and Start() methods wrapped in a scope draw from that
  /// partition's RNG and schedule onto its queue. In an unpartitioned world
  /// a scope on partition 0 is behavior-neutral.
  class PartitionScope {
   public:
    PartitionScope(Simulator* sim, uint32_t partition);
    ~PartitionScope();
    PartitionScope(const PartitionScope&) = delete;
    PartitionScope& operator=(const PartitionScope&) = delete;

   private:
    Simulator* sim_;
    ExecContext saved_;
  };

  /// Worker threads for partitioned runs. Defaults to the DICHO_SIM_THREADS
  /// environment variable (unset/1 = serial; "hw" or "0" = hardware
  /// concurrency). With 1 thread, partitioned worlds run on the exact
  /// serial merge of the per-partition queues; with >= 2 threads and a
  /// registered lookahead they run conservative parallel rounds. Results are
  /// identical either way.
  void set_threads(unsigned n) { threads_ = n == 0 ? 1 : n; }
  unsigned threads() const { return threads_; }

  /// Registers a lower bound on cross-partition scheduling delay (the
  /// conservative lookahead). SimNetwork calls this with its base latency;
  /// the smallest registered bound wins. Cross-partition schedules closer
  /// than the bound while the engine is running are a hard error.
  void NoteMinCrossDelay(Time d);
  Time lookahead() const { return lookahead_; }

  /// Scheduling ---------------------------------------------------------------
  /// Schedules `fn` to run `delay` from now on the caller's partition.
  /// Negative delays clamp to 0.
  void Schedule(Time delay, EventFn fn);
  void ScheduleAt(Time t, EventFn fn);

  /// Schedules onto a specific partition (cross-partition message arrival).
  /// While the engine runs, `t` must be at least lookahead() past the
  /// caller's clock when the target is a different partition.
  void ScheduleOnPartitionAt(uint32_t partition, Time t, EventFn fn);

  /// Global events: fault injection and other actions that mutate
  /// world-shared state (crash flags, network partitions). They run on the
  /// coordinating thread with every partition parked at a time barrier, and
  /// execute before any partition event with time >= theirs. In a
  /// single-partition world they degenerate to plain Schedule/ScheduleAt.
  void ScheduleGlobal(Time delay, EventFn fn);
  void ScheduleGlobalAt(Time t, EventFn fn);

  /// Runs events until the queues drain or virtual time would exceed `t`.
  /// Returns the number of events executed.
  uint64_t RunUntil(Time t);

  /// Runs events for `d` of virtual time from now.
  uint64_t RunFor(Time d) { return RunUntil(now_ + d); }

  /// Runs until every event queue is empty (or the safety cap of
  /// `max_events` fires — runaway protection for tests). A finite cap runs
  /// on the exact serial path so the count semantics are precise.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  size_t pending_events() const;
  uint64_t executed_events() const;
  /// Conservative-round counter (diagnostics for benches/tests).
  uint64_t parallel_rounds() const { return rounds_; }

 private:
  struct WorkerPool;

  /// Key of a buffered trace event, used to merge per-partition buffers
  /// deterministically: the (tkey, skey) of the event being executed when it
  /// was emitted, its emission index within that handler, and tie-breaks
  /// that make the order total.
  struct MergeKey {
    uint64_t tkey;
    uint64_t skey;
    uint32_t intra;
    uint32_t idx;  // index into the partition buffer's event vector
  };

  /// Cross-partition message buffered by a worker during a parallel round;
  /// merged into the destination queue at the round barrier.
  struct OutMsg {
    uint64_t tkey;
    uint64_t skey;
    EventFn fn;
  };

  /// Entry in the serial-merged outer heap (one live entry per non-empty
  /// partition; staleness detected via the partition's stamp).
  struct OuterEntry {
    uint64_t tkey;
    uint64_t skey;
    uint32_t lp;
    uint64_t stamp;
  };

  struct GlobalEvent {
    uint64_t tkey;
    uint64_t seq;
    EventFn fn;
  };

  Lp* CallerLp();
  Time CallerNow() const {
    const ExecContext& c = exec_tls_;
    return c.sim == this ? *c.now : now_;
  }
  void PushEvent(Lp* src, Lp* dst, Time t, EventFn fn);
  void EnsureBuffers();
  void ExecuteOne(Lp* lp, uint64_t tkey, uint64_t skey, uint32_t slot);
  void AppendMergeKeys(Lp* lp, uint64_t tkey, uint64_t skey);
  void RunGlobalTop();
  uint64_t TotalExecuted() const;
  void FinishRun(Time t_limit);
  void MergeTraces();

  uint64_t RunSingle(Time t_limit, uint64_t max_events);
  void RunMerged(Time t_limit, uint64_t max_events);
  void RegisterOuter(Lp* lp);
  void MaybeRegisterOuter(Lp* lp, uint64_t tkey, uint64_t skey);
  void RunParallel(Time t_limit);
  void ExecuteLpRound(Lp* lp, uint64_t h_key, uint64_t limit_key);
  void DrainOutboxes();
  void EnsurePool();

  [[noreturn]] void LookaheadViolation(Time t, Time base) const;

  static thread_local ExecContext exec_tls_;
  static thread_local obs::TraceSink* default_trace_sink_;

  Time now_ = 0;
  Rng rng_;  // partition 0's stream (also ambient/setup draws)
  Rng global_rng_;
  uint64_t seed_;
  obs::TraceSink* trace_sink_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  unsigned threads_ = 1;
  Time lookahead_ = 0;  // 0 = no cross-partition bound registered
  std::vector<std::unique_ptr<Lp>> lps_;
  std::vector<uint32_t> lp_of_node_;

  std::vector<GlobalEvent> global_queue_;  // binary min-heap on (tkey, seq)
  Time global_now_ = 0;
  uint64_t global_seq_ = 0;
  uint64_t global_executed_ = 0;

  bool running_ = false;      // a multi-partition run is in progress
  bool in_global_ = false;    // currently executing a global (barrier) event
  bool merged_active_ = false;
  bool parallel_phase_ = false;
  std::vector<OuterEntry> outer_heap_;

  std::vector<Lp*> round_active_;
  uint64_t round_hkey_ = 0;
  uint64_t round_limit_key_ = 0;
  uint64_t rounds_ = 0;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace dicho::sim

#endif  // DICHO_SIM_SIMULATOR_H_
