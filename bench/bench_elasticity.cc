// Replica-elasticity sweep: what a mid-flash-crowd scale-out costs, per
// system model, as a function of the snapshot-fold interval.
//
// Each cell builds one system with the replica-lifecycle layer enabled,
// drives a fixed-rate open-loop write crowd, and grows the replica set by
// one at t=3s — snapshot + delta catch-up transfer, then consensus-level
// admission (Raft §6 single-server change where the group is Raft-backed).
// The cell reports the pre-join steady-state throughput, the deepest
// throughput bin while the join was in flight (the "dip"), the end-to-end
// catch-up time, the transfer byte/chunk economics, and whether the joiner
// converged to the elders' state digest once traffic quiesced — the same
// catch-up-correctness oracle the elasticity fuzz scenarios check.
//
// The sweep axis is ElasticityConfig::snapshot_every: longer fold intervals
// mean a staler snapshot anchor, a longer log tail per transfer, and more
// rescue rounds when the group compacts past the joiner during admission.
//
// Emits BENCH_elasticity.json in the working directory; the copy at the
// repo root is refreshed when the numbers move (see EXPERIMENTS.md).
// Output is deterministic across reruns and DICHO_BENCH_THREADS settings:
// every cell runs in its own seeded world.
//
// Usage: bench_elasticity [--quick]
//   --quick   2 systems, one interval; the CI smoke mode.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "parallel.h"

namespace dicho::bench {
namespace {

// Traffic shape: blind single-key writes over a small keyspace, so every
// snapshot interval sees real chunk churn (hot keys rewrite whole buckets)
// while MVCC systems (fabric) still commit nearly everything.
constexpr int kKeys = 200;
constexpr size_t kValueBytes = 100;
constexpr sim::Time kGap = 2 * sim::kMs;          // 500 tps offered
constexpr sim::Time kTrafficStart = 1 * sim::kSec;
constexpr sim::Time kJoinAt = 3 * sim::kSec;
constexpr sim::Time kBin = 250 * sim::kMs;

struct CellConfig {
  std::string system;
  uint64_t snapshot_every = 0;
};

struct CellResult {
  bool join_ok = false;
  bool digest_match = false;
  double steady_tps = 0;
  double dip_tps = 0;
  double dip_ratio = 0;
  double catchup_ms = 0;
  uint64_t transfer_bytes = 0;
  uint64_t chunks_fetched = 0;
  uint64_t chunks_reused = 0;
  uint64_t log_entries = 0;
  uint64_t anchor = 0;
  uint64_t committed = 0;
};

core::TxnRequest WriteTxn(uint64_t id) {
  core::TxnRequest req;
  req.txn_id = id;
  req.client_id = id;
  req.contract = "ycsb";
  core::Op op;
  op.type = core::OpType::kWrite;
  op.key = "key" + std::to_string(id % kKeys);
  op.value = std::string(kValueBytes, 'a' + static_cast<char>(id % 26));
  req.ops.push_back(std::move(op));
  return req;
}

systems::runtime::ElasticityConfig Elasticity(uint64_t snapshot_every) {
  systems::runtime::ElasticityConfig elasticity;
  elasticity.enabled = true;
  elasticity.snapshot_every = snapshot_every;
  return elasticity;
}

/// The per-system hooks the shared traffic loop drives. The concrete
/// system object lives in the closures.
struct Adapter {
  core::TransactionalSystem* system = nullptr;
  /// Kicks off the replica join; fires `done` once admitted (or failed).
  std::function<void(std::function<void(const systems::runtime::JoinReport&)>)>
      add;
  /// Catch-up-correctness oracle, evaluated after traffic quiesces.
  std::function<bool()> digest_match;
  std::function<void()> own;  // keeps the concrete system alive
};

/// One join-under-load run. The adapter owns the system; the loop owns the
/// clock: traffic from kTrafficStart, join at kJoinAt, quiesce, verdicts.
CellResult DriveCell(World* world, const Adapter& adapter, bool quick) {
  sim::Simulator& sim = world->sim;
  const sim::Time traffic_end = (quick ? 6 : 9) * sim::kSec;
  const sim::Time horizon = traffic_end + 3 * sim::kSec;
  const int total = static_cast<int>((traffic_end - kTrafficStart) / kGap);

  std::vector<uint64_t> bins(static_cast<size_t>(horizon / kBin) + 1, 0);
  uint64_t committed = 0;
  for (int i = 0; i < total; i++) {
    sim.Schedule(kTrafficStart + static_cast<sim::Time>(i) * kGap,
                 [&sim, &bins, &committed, &adapter, i] {
                   adapter.system->Submit(
                       WriteTxn(static_cast<uint64_t>(i + 1)),
                       [&sim, &bins, &committed](const core::TxnResult& r) {
                         if (!r.status.ok()) return;
                         committed++;
                         bins[static_cast<size_t>(sim.Now() / kBin)]++;
                       });
                 });
  }

  systems::runtime::JoinReport report;
  bool reported = false;
  sim.Schedule(kJoinAt, [&adapter, &report, &reported] {
    adapter.add([&report, &reported](const systems::runtime::JoinReport& r) {
      report = r;
      reported = true;
    });
  });
  sim.RunFor(horizon);

  CellResult result;
  result.join_ok = reported && report.ok;
  result.committed = committed;
  result.anchor = report.anchor;
  result.catchup_ms = (report.finished - report.started) / sim::kMs;
  result.transfer_bytes = report.stats.TotalBytes();
  result.chunks_fetched = report.stats.chunks_fetched;
  result.chunks_reused = report.stats.chunks_reused;
  result.log_entries = report.stats.log_entries;
  result.digest_match = adapter.digest_match();

  // Pre-join steady state: full bins in [kTrafficStart + one bin, kJoinAt).
  auto bin_tps = [&bins](size_t b) {
    return static_cast<double>(bins[b]) / (kBin / sim::kSec);
  };
  size_t steady_lo = static_cast<size_t>(kTrafficStart / kBin) + 1;
  size_t steady_hi = static_cast<size_t>(kJoinAt / kBin);
  double steady = 0;
  for (size_t b = steady_lo; b < steady_hi; b++) steady += bin_tps(b);
  result.steady_tps = steady / static_cast<double>(steady_hi - steady_lo);

  // Dip: the worst bin while the join was in flight (at least two bins so
  // a sub-bin join still reads a real window), clipped to active traffic.
  size_t dip_lo = static_cast<size_t>(kJoinAt / kBin);
  size_t dip_hi = std::max(
      dip_lo + 2, static_cast<size_t>(
                      (reported ? report.finished : kJoinAt) / kBin) +
                      1);
  dip_hi = std::min(dip_hi, static_cast<size_t>(traffic_end / kBin));
  double dip = bin_tps(dip_lo);
  for (size_t b = dip_lo; b < dip_hi; b++) dip = std::min(dip, bin_tps(b));
  result.dip_tps = dip;
  result.dip_ratio = result.steady_tps > 0 ? dip / result.steady_tps : 0;
  return result;
}

CellResult RunCell(const CellConfig& cell, bool quick) {
  World world(/*seed=*/42);
  Adapter adapter;

  if (cell.system == "etcd") {
    systems::EtcdConfig config;
    config.num_nodes = 3;
    config.elasticity = Elasticity(cell.snapshot_every);
    auto system = std::make_shared<systems::EtcdSystem>(
        &world.sim, &world.net, &world.costs, config);
    auto joiner = std::make_shared<sim::NodeId>(0);
    adapter.system = system.get();
    adapter.add = [system, joiner](auto done) {
      *joiner = system->AddReplica(std::move(done));
    };
    adapter.digest_match = [system, joiner] {
      return system->tracker(*joiner) != nullptr &&
             system->tracker(*joiner)->Digest() ==
                 system->tracker(0)->Digest();
    };
    adapter.own = [system] {};
  } else if (cell.system == "fabric") {
    systems::FabricConfig config;
    config.num_peers = 4;
    config.elasticity = Elasticity(cell.snapshot_every);
    auto system = std::make_shared<systems::FabricSystem>(
        &world.sim, &world.net, &world.costs, config);
    auto joiner = std::make_shared<sim::NodeId>(0);
    adapter.system = system.get();
    adapter.add = [system, joiner](auto done) {
      *joiner = system->AddPeer(std::move(done));
    };
    adapter.digest_match = [system, joiner] {
      return system->tracker(*joiner) != nullptr &&
             system->tracker(*joiner)->Digest() ==
                 system->tracker(systems::runtime::kReplicaBase)->Digest();
    };
    adapter.own = [system] {};
  } else if (cell.system == "harmonylike") {
    systems::HarmonyConfig config;
    config.num_nodes = 3;
    config.elasticity = Elasticity(cell.snapshot_every);
    auto system = std::make_shared<systems::HarmonySystem>(
        &world.sim, &world.net, &world.costs, config);
    auto joiner = std::make_shared<sim::NodeId>(0);
    adapter.system = system.get();
    adapter.add = [system, joiner](auto done) {
      *joiner = system->AddReplica(std::move(done));
    };
    adapter.digest_match = [system, joiner] {
      // Deterministic execution's stronger oracle: the authenticated MPT
      // root, not just the shadow digest.
      return system->tracker(*joiner) != nullptr &&
             system->state_of(*joiner).RootDigest() ==
                 system->state_of(system->node_ids()[0]).RootDigest();
    };
    adapter.own = [system] {};
  } else {  // harmonyshard
    systems::HarmonyShardConfig config;
    config.num_shards = 2;
    config.nodes_per_shard = 3;
    config.elasticity = Elasticity(cell.snapshot_every);
    auto system = std::make_shared<systems::HarmonyShardSystem>(
        &world.sim, &world.net, &world.costs, config);
    adapter.system = system.get();
    adapter.add = [system](auto done) {
      system->AddShardReplica(0, std::move(done));
    };
    adapter.digest_match = [system] {
      // Shard state is materialized once per group, so the group-level
      // oracle is the tracker's fold history covering the joiner's anchor
      // — plus the fusion claim that growth never buys a 2PC round.
      sharding::ShardExecutor* shard = system->mutable_shard(0);
      return shard->tracker() != nullptr &&
             system->sharding_stats().two_pc_rounds == 0;
    };
    adapter.own = [system] {};
  }

  adapter.system->Start();
  world.sim.RunFor(500 * sim::kMs);
  for (int i = 0; i < kKeys; i++) {
    adapter.system->Load("key" + std::to_string(i), std::string(kValueBytes, 'x'));
  }
  return DriveCell(&world, adapter, quick);
}

void WriteJson(const char* path, bool quick,
               const std::vector<std::string>& systems,
               const std::vector<uint64_t>& intervals,
               const std::vector<CellConfig>& cells,
               const std::vector<CellResult>& results) {
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"bench\": \"elasticity\",\n");
  fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  fprintf(f,
          "  \"traffic\": {\"keys\": %d, \"value_bytes\": %zu, "
          "\"offered_tps\": %.0f, \"join_at_ms\": %.0f},\n",
          kKeys, kValueBytes, sim::kSec / kGap,
          kJoinAt / sim::kMs);
  fprintf(f, "  \"systems\": [\n");
  size_t cell_index = 0;
  for (size_t s = 0; s < systems.size(); s++) {
    fprintf(f, "    {\"system\": \"%s\", \"cells\": [\n", systems[s].c_str());
    for (size_t m = 0; m < intervals.size(); m++, cell_index++) {
      const CellConfig& cell = cells[cell_index];
      const CellResult& r = results[cell_index];
      fprintf(f,
              "      {\"snapshot_every\": %llu, \"join_ok\": %s, "
              "\"digest_match\": %s, \"steady_tps\": %.1f, "
              "\"dip_tps\": %.1f, \"dip_ratio\": %.3f, "
              "\"catchup_ms\": %.3f, \"transfer_bytes\": %llu, "
              "\"chunks_fetched\": %llu, \"chunks_reused\": %llu, "
              "\"log_entries\": %llu, \"anchor\": %llu, "
              "\"committed\": %llu}%s\n",
              static_cast<unsigned long long>(cell.snapshot_every),
              r.join_ok ? "true" : "false",
              r.digest_match ? "true" : "false", r.steady_tps, r.dip_tps,
              r.dip_ratio, r.catchup_ms,
              static_cast<unsigned long long>(r.transfer_bytes),
              static_cast<unsigned long long>(r.chunks_fetched),
              static_cast<unsigned long long>(r.chunks_reused),
              static_cast<unsigned long long>(r.log_entries),
              static_cast<unsigned long long>(r.anchor),
              static_cast<unsigned long long>(r.committed),
              m + 1 < intervals.size() ? "," : "");
    }
    fprintf(f, "    ]}%s\n", s + 1 < systems.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("wrote %s\n", path);
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<std::string> systems =
      quick ? std::vector<std::string>{"etcd", "harmonyshard"}
            : std::vector<std::string>{"etcd", "fabric", "harmonylike",
                                       "harmonyshard"};
  const std::vector<uint64_t> intervals =
      quick ? std::vector<uint64_t>{16} : std::vector<uint64_t>{16, 64, 256};

  std::vector<CellConfig> cells;
  for (const std::string& system : systems) {
    for (uint64_t interval : intervals) cells.push_back({system, interval});
  }

  PrintHeader("elasticity: join under flash crowd, snapshot-interval sweep");
  std::vector<CellResult> results = RunSweep(
      cells, [quick](const CellConfig& cell) { return RunCell(cell, quick); });

  printf("%-14s %9s %8s %8s %6s %9s %9s %7s %7s %6s\n", "system", "interval",
         "steady", "dip", "ratio", "catchup", "bytes", "fetch", "reuse",
         "digest");
  for (size_t i = 0; i < cells.size(); i++) {
    const CellResult& r = results[i];
    printf("%-14s %9llu %8.0f %8.0f %5.0f%% %7.1fms %9llu %7llu %7llu %6s\n",
           cells[i].system.c_str(),
           static_cast<unsigned long long>(cells[i].snapshot_every),
           r.steady_tps, r.dip_tps, 100 * r.dip_ratio, r.catchup_ms,
           static_cast<unsigned long long>(r.transfer_bytes),
           static_cast<unsigned long long>(r.chunks_fetched),
           static_cast<unsigned long long>(r.chunks_reused),
           r.digest_match ? "match" : "DIFF");
  }

  // Acceptance read-out: a join "absorbs" when the group kept >= 50% of
  // its pre-join steady state through the whole admission window and the
  // joiner reached digest equality.
  PrintHeader("elasticity: verdicts");
  int failures = 0;
  for (size_t i = 0; i < cells.size(); i++) {
    const CellResult& r = results[i];
    bool ok = r.join_ok && r.digest_match && r.dip_ratio >= 0.5;
    if (!ok) failures++;
    printf("%-14s interval %4llu  %s\n", cells[i].system.c_str(),
           static_cast<unsigned long long>(cells[i].snapshot_every),
           ok ? "ABSORBS (>=50% kept, digests equal)" : "FAILS");
  }

  WriteJson("BENCH_elasticity.json", quick, systems, intervals, cells,
            results);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dicho::bench

int main(int argc, char** argv) { return dicho::bench::Main(argc, argv); }
