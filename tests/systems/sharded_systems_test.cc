#include <gtest/gtest.h>

#include "systems/ahl.h"
#include "systems/spannerlike.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace dicho::systems {
namespace {

core::TxnRequest RmwTxn(uint64_t id, std::vector<std::string> keys,
                        const std::string& value) {
  core::TxnRequest req;
  req.txn_id = id;
  req.client_id = id;
  req.contract = "ycsb";
  for (auto& key : keys) {
    req.ops.push_back({core::OpType::kReadModifyWrite, key, value});
  }
  return req;
}

// ---------------------------------------------------------------------------
// Spanner-like
// ---------------------------------------------------------------------------

struct SpannerHarness {
  explicit SpannerHarness(uint32_t shards = 2)
      : sim(42), net(&sim, sim::NetworkConfig{}) {
    SpannerConfig config;
    config.num_shards = shards;
    system = std::make_unique<SpannerLikeSystem>(&sim, &net, &costs, config);
  }
  sim::Simulator sim;
  sim::SimNetwork net;
  sim::CostModel costs;
  std::unique_ptr<SpannerLikeSystem> system;
};

TEST(SpannerLikeTest, CommitsCrossShardTransaction) {
  SpannerHarness h(4);
  h.system->Load("a", "1");
  h.system->Load("b", "2");
  core::TxnResult result;
  h.system->Submit(RmwTxn(1, {"a", "b"}, "new"),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(2 * sim::kSec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  core::ReadResult ra, rb;
  h.system->Query({1, "a"}, [&](const core::ReadResult& r) { ra = r; });
  h.system->Query({2, "b"}, [&](const core::ReadResult& r) { rb = r; });
  h.sim.RunFor(1 * sim::kSec);
  EXPECT_EQ(ra.value, "new");
  EXPECT_EQ(rb.value, "new");
}

TEST(SpannerLikeTest, ConflictingTransactionsSerializeViaLocks) {
  SpannerHarness h;
  h.system->Load("hot", "0");
  int ok = 0, done = 0;
  for (int i = 0; i < 8; i++) {
    h.system->Submit(RmwTxn(i + 1, {"hot"}, "v" + std::to_string(i)),
                     [&](const core::TxnResult& r) {
                       done++;
                       ok += r.status.ok();
                     });
  }
  h.sim.RunFor(10 * sim::kSec);
  EXPECT_EQ(done, 8);
  // Pessimistic locking: most (typically all) commit by waiting.
  EXPECT_GE(ok, 6);
  EXPECT_GT(h.system->lock_waits(), 0u);
}

TEST(SpannerLikeTest, SmallbankConstraintAborts) {
  SpannerHarness h;
  h.system->Load(contract::SmallbankContract::CheckingKey("a"), "10");
  h.system->Load(contract::SmallbankContract::CheckingKey("b"), "0");
  core::TxnRequest req;
  req.txn_id = 1;
  req.contract = "smallbank";
  req.method = "send_payment";
  req.args = {"a", "b", "500"};
  core::TxnResult result;
  h.system->Submit(req, [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(2 * sim::kSec);
  EXPECT_TRUE(result.status.IsAborted());
  EXPECT_EQ(result.reason, core::AbortReason::kConstraint);
}

// ---------------------------------------------------------------------------
// AHL
// ---------------------------------------------------------------------------

struct AhlHarness {
  explicit AhlHarness(uint32_t shards = 2, sim::Time epoch = 0)
      : sim(42), net(&sim, sim::NetworkConfig{}) {
    AhlConfig config;
    config.num_shards = shards;
    config.epoch = epoch;
    system = std::make_unique<AhlSystem>(&sim, &net, &costs, config);
    system->Start();
    sim.RunFor(500 * sim::kMs);
  }
  sim::Simulator sim;
  sim::SimNetwork net;
  sim::CostModel costs;
  std::unique_ptr<AhlSystem> system;
};

TEST(AhlTest, SingleShardTransactionCommits) {
  AhlHarness h;
  h.system->Load("k", "0");
  core::TxnResult result;
  h.system->Submit(RmwTxn(1, {"k"}, "v"),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(5 * sim::kSec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  core::ReadResult read;
  h.system->Query({1, "k"}, [&](const core::ReadResult& r) { read = r; });
  h.sim.RunFor(1 * sim::kSec);
  EXPECT_EQ(read.value, "v");
}

TEST(AhlTest, CrossShardCostsMoreThanSingleShard) {
  AhlHarness h(2);
  h.system->Load("a", "1");
  // Use deterministic partitioning to find same-shard and cross-shard keys.
  sharding::HashPartitioner part(2);
  uint32_t shard_a = part.ShardOf("a");
  std::string same_shard, other_shard;
  for (int i = 0; i < 500 && (same_shard.empty() || other_shard.empty()); i++) {
    std::string candidate = "k" + std::to_string(i);
    if (part.ShardOf(candidate) == shard_a) {
      if (same_shard.empty()) same_shard = candidate;
    } else if (other_shard.empty()) {
      other_shard = candidate;
    }
  }
  ASSERT_FALSE(same_shard.empty());
  ASSERT_FALSE(other_shard.empty());
  h.system->Load(same_shard, "1");
  h.system->Load(other_shard, "1");

  core::TxnResult single, cross;
  h.system->Submit(RmwTxn(1, {"a", same_shard}, "v"),
                   [&](const core::TxnResult& r) { single = r; });
  h.sim.RunFor(10 * sim::kSec);
  h.system->Submit(RmwTxn(2, {"a", other_shard}, "v"),
                   [&](const core::TxnResult& r) { cross = r; });
  h.sim.RunFor(10 * sim::kSec);
  ASSERT_TRUE(single.status.ok());
  ASSERT_TRUE(cross.status.ok());
  // Byzantine 2PC: three consensus rounds instead of one.
  EXPECT_GT(cross.latency(), single.latency() * 1.5);
}

TEST(AhlTest, ReconfigurationPausesProcessing) {
  AhlHarness h(2, /*epoch=*/2 * sim::kSec);
  h.sim.RunFor(10 * sim::kSec);
  EXPECT_GT(h.system->reconfigurations(), 1u);
}

}  // namespace
}  // namespace dicho::systems
