#include "systems/harmonylike.h"

#include <utility>

#include "crypto/signature.h"
#include "obs/trace.h"

namespace dicho::systems {

namespace {

/// Read view over a replica's committed MPT state.
class MptView : public contract::StateView {
 public:
  explicit MptView(const adt::MerklePatriciaTrie* state) : state_(state) {}
  Status Get(const Slice& key, std::string* value) override {
    return state_->Get(key, value);
  }

 private:
  const adt::MerklePatriciaTrie* state_;
};

}  // namespace

HarmonySystem::HarmonySystem(sim::Simulator* sim, sim::SimNetwork* net,
                             const sim::CostModel* costs, HarmonyConfig config)
    : sim_(sim),
      net_(net),
      costs_(costs),
      config_(config),
      nodes_(sim, runtime::kHarmonyBase, config_.num_nodes),
      contracts_(contract::ContractRegistry::CreateDefault()),
      executor_(contracts_.get(), costs, config_.exec_lanes,
                config_.fast_storage),
      mempool_(&stats_.stages),
      inflight_(&stats_.stages) {
  if (config_.fast_storage) {
    // Out-of-line threshold chosen at the record sizes where full-path
    // re-hashing dominates (Fig. 11's knee); must be set before any state
    // lands in the tries.
    adt::MptOptions options;
    options.inline_value_threshold = 1024;
    nodes_.ForEach([&](sim::NodeId, Node& node) {
      node.state.Configure(options);
    });
  }
  runtime::TransportConfig transport;
  transport.kind = config_.consensus == HarmonyConsensus::kRaft
                       ? runtime::TransportKind::kRaft
                       : runtime::TransportKind::kBft;
  transport.raft = config_.raft;
  transport.bft = config_.bft;
  transport_ = std::make_unique<runtime::Transport>(
      sim, net, costs, nodes_.ids(), transport,
      [this](size_t node_index, uint64_t seq, const std::string& cmd) {
        OnEpochCommitted(nodes_.id_of(node_index), seq, cmd);
      });
  if (config_.elasticity.enabled) {
    for (sim::NodeId id : nodes_.ids()) MakeTracker(id);
  }
  if (obs::MetricsRegistry* registry = sim_->metrics()) {
    runtime::RegisterSystemStats(registry, "harmony", &stats_);
    mempool_.AttachMetrics(registry, "harmony.mempool");
    inflight_.AttachMetrics(registry, "harmony.inflight");
    runtime::RegisterNodeCpuGauges(registry, "harmony", &nodes_,
                                   [](Node& node) { return &node.cpu; });
    registry->GetCallbackGauge("harmony.epochs", [this] {
      return static_cast<double>(epoch_stats_.epochs);
    });
    registry->GetCallbackGauge("harmony.conflict_edges", [this] {
      return static_cast<double>(epoch_stats_.conflict_edges);
    });
    registry->GetCallbackGauge("harmony.lane_speedup", [this] {
      return epoch_stats_.LaneSpeedup();
    });
  }
}

void HarmonySystem::Start() {
  transport_->Start();
  sim_->Schedule(config_.epoch_interval, [this] { SequencerTick(); });
}

bool HarmonySystem::HasSequencer() const {
  auto* transport = const_cast<runtime::Transport*>(transport_.get());
  if (transport->raft() != nullptr) {
    return transport->raft()->leader() != nullptr;
  }
  return transport->bft()->primary() != nullptr;
}

sim::NodeId HarmonySystem::SequencerId() const {
  auto* transport = const_cast<runtime::Transport*>(transport_.get());
  if (transport->raft() != nullptr) {
    auto* leader = transport->raft()->leader();
    return leader != nullptr ? leader->id() : nodes_.id_of(0);
  }
  auto* primary = transport->bft()->primary();
  return primary != nullptr ? primary->id() : nodes_.id_of(0);
}

sim::NodeId HarmonySystem::CompletionId() const {
  // A fixed non-sequencer replica acts as the client's local peer, so the
  // observed latency includes the deterministic-execution (commit) phase.
  // Pinned to the construction-time span: a replica joining later must not
  // inherit completion duty while it is still catching up.
  sim::NodeId completion = nodes_.id_of(config_.num_nodes - 1);
  if (completion == SequencerId() && config_.num_nodes > 1) {
    completion = nodes_.id_of(config_.num_nodes - 2);
  }
  return completion;
}

runtime::ReplicaTracker* HarmonySystem::MakeTracker(sim::NodeId node) {
  auto tracker = std::make_unique<runtime::ReplicaTracker>(
      &config_.elasticity,
      lifecycle::LifecycleMetrics::For(sim_->metrics(), "lifecycle.harmony"));
  if (config_.consensus == HarmonyConsensus::kRaft) {
    tracker->set_on_fold([this, node](uint64_t anchor, uint64_t term) {
      transport_->raft()->node(node)->InstallSnapshot(anchor, term);
    });
  }
  trackers_.push_back(std::move(tracker));
  return trackers_.back().get();
}

sim::NodeId HarmonySystem::AddReplica(
    std::function<void(const runtime::JoinReport&)> done) {
  sim::NodeId id = nodes_.Grow(sim_);
  runtime::ReplicaTracker* joiner = MakeTracker(id);
  consensus::RaftNode* leader = transport_->raft()->leader();
  sim::NodeId source = leader != nullptr ? leader->id() : nodes_.id_of(0);
  runtime::StartElasticRaftJoin(
      sim_, net_, transport_.get(), source, id, tracker(source), joiner,
      config_.elasticity,
      [this, id](const std::map<std::string, std::string>& state) {
        Node* node = &nodes_.at(id);
        for (const auto& [key, value] : state) node->state.Put(key, value);
      },
      std::move(done));
  return id;
}

void HarmonySystem::SequencerTick() {
  if (!mempool_.empty() && HasSequencer()) {
    CutAndOrderEpoch();
  }
  sim_->Schedule(config_.epoch_interval, [this] { SequencerTick(); });
}

void HarmonySystem::CutAndOrderEpoch() {
  sim::NodeId sequencer_id = SequencerId();
  Node* sequencer = &nodes_.at(sequencer_id);

  ledger::Block block;
  block.header.number = next_epoch_number_;
  block.header.timestamp_us = static_cast<uint64_t>(sim_->Now());

  // The epoch goes to consensus UNEXECUTED: the sequencer only assembles
  // and signs — no pre-execution, so epoch cutting costs per-txn message
  // handling instead of Quorum's serial EVM pass.
  sim::Time cut_cost = 0;
  runtime::BatchPolicy policy;
  policy.max_txns = config_.max_epoch_txns;
  policy.max_bytes = config_.max_epoch_bytes;
  mempool_.Cut(policy, [&](PendingTxn pending) {
    pending.proposed_time = sim_->Now();

    ledger::LedgerTxn txn;
    txn.txn_id = pending.request.txn_id;
    txn.client_id = pending.request.client_id;
    txn.payload = pending.request.Serialize();
    txn.client_signature =
        crypto::Signer(pending.request.client_id).Sign(txn.payload);
    cut_cost += costs_->msg_handling_us + costs_->sig_verify_us;
    uint64_t bytes = txn.ByteSize();
    block.txns.push_back(std::move(txn));
    uint64_t txn_id = pending.request.txn_id;
    inflight_.Insert(txn_id, std::move(pending));
    return bytes;
  });
  if (block.txns.empty()) return;
  next_epoch_number_++;
  block.SealTxnRoot();

  std::string serialized = block.Serialize();
  sequencer->cpu.Submit(cut_cost, [this, sequencer_id,
                                   serialized = std::move(serialized)] {
    if (transport_->raft() != nullptr) {
      consensus::RaftNode* leader = transport_->raft()->leader();
      if (leader == nullptr || leader->id() != sequencer_id) return;
      leader->Propose(serialized, [](Status, uint64_t) {});
    } else {
      consensus::BftNode* primary = transport_->bft()->primary();
      if (primary == nullptr) return;
      primary->Submit(serialized, [](Status, uint64_t) {});
    }
  });
}

void HarmonySystem::OnEpochCommitted(sim::NodeId node_id, uint64_t seq,
                                     const std::string& cmd) {
  ledger::Block block;
  if (!ledger::Block::Deserialize(cmd, &block)) return;
  Node* node = &nodes_.at(node_id);
  sim::Time ordered_time = sim_->Now();

  // Every replica (sequencer included — it never pre-executed) runs the
  // same deterministic schedule against its committed state. Blocks are
  // delivered in commit order and writes apply synchronously here, so each
  // epoch reads its predecessor's effects even while the modeled CPU is
  // still draining earlier epochs.
  std::vector<core::TxnRequest> batch;
  batch.reserve(block.txns.size());
  for (const auto& txn : block.txns) {
    core::TxnRequest request;
    if (core::TxnRequest::Deserialize(txn.payload, &request)) {
      batch.push_back(std::move(request));
    }
  }
  MptView view(&node->state);
  txn::EpochOutcome outcome = executor_.ExecuteEpoch(batch, &view);
  for (size_t i = 0; i < outcome.results.size() && i < block.txns.size();
       i++) {
    const txn::EpochTxnResult& result = outcome.results[i];
    block.txns[i].valid = result.valid;
    block.txns[i].write_set.assign(result.writes.begin(),
                                   result.writes.end());
    for (const auto& [key, value] : result.writes) {
      node->state.StagePut(key, value);  // staged in epoch order
    }
  }
  // One batched commit per epoch: shared path nodes hash once however many
  // staged keys pass through them, untouched subtrees are reused by digest,
  // and the root is byte-identical to per-write Puts (adt/mpt.h).
  node->state.CommitBatch();
  block.header.state_digest = node->state.RootDigest();

  if (runtime::ReplicaTracker* t = tracker(node_id)) {
    std::vector<std::pair<std::string, std::string>> writes;
    for (const auto& result : outcome.results) {
      for (const auto& [key, value] : result.writes) {
        writes.emplace_back(key, value);
      }
    }
    uint64_t term = 0;
    if (config_.consensus == HarmonyConsensus::kRaft) {
      consensus::RaftNode* raft = transport_->raft()->node(node_id);
      if (raft != nullptr) term = raft->EntryTerm(seq);
    }
    t->OnEntry(seq, term, writes);
  }

  // One replica (a fixed one, so the count is once per epoch) accumulates
  // the schedule statistics the ablation bench reports. Pinned to the
  // construction-time span so a joining replica doesn't skew the counts.
  if (node_id == nodes_.id_of(config_.num_nodes - 1)) {
    epoch_stats_.epochs++;
    epoch_stats_.scheduled_txns += outcome.results.size();
    epoch_stats_.conflict_edges += outcome.schedule.conflict_edges;
    epoch_stats_.total_layers += outcome.schedule.num_layers;
    epoch_stats_.makespan_us += outcome.makespan_us;
    epoch_stats_.serial_us += outcome.serial_us;
  }

  // The replica's engine is busy for the *multi-lane makespan*, not the
  // serial sum — this is where deterministic execution buys its headroom.
  auto shared = std::make_shared<ledger::Block>(std::move(block));
  node->cpu.Submit(outcome.makespan_us, [this, node_id, node, shared,
                                         ordered_time] {
    ledger::Block to_append = *shared;
    to_append.header.number = node->chain.height();
    to_append.header.parent = node->chain.TipDigest();
    to_append.SealTxnRoot();
    node->chain.Append(std::move(to_append));

    if (node_id != CompletionId()) return;
    for (const auto& txn : shared->txns) {
      PendingTxn pending;
      if (!inflight_.Take(txn.txn_id, &pending)) continue;
      net_->Send(node_id, config_.client_node, 64,
                 [this, node_id, pending = std::move(pending),
                  valid = txn.valid, ordered_time]() mutable {
                   core::TxnResult result;
                   result.submit_time = pending.submit_time;
                   result.finish_time = sim_->Now();
                   result.phases.Set(core::Phase::kProposal,
                                     pending.proposed_time -
                                         pending.submit_time);
                   result.phases.Set(core::Phase::kOrder,
                                     ordered_time - pending.proposed_time);
                   result.phases.Set(core::Phase::kExecute,
                                     result.finish_time - ordered_time);
                   obs::EmitPhaseSpan(sim_, core::Phase::kProposal, node_id,
                                      pending.request.txn_id,
                                      pending.submit_time,
                                      pending.proposed_time);
                   obs::EmitPhaseSpan(sim_, core::Phase::kOrder, node_id,
                                      pending.request.txn_id,
                                      pending.proposed_time, ordered_time);
                   obs::EmitPhaseSpan(sim_, core::Phase::kExecute, node_id,
                                      pending.request.txn_id, ordered_time,
                                      result.finish_time);
                   if (valid) {
                     result.status = Status::Ok();
                     stats_.committed++;
                   } else {
                     // The only abort class deterministic execution admits:
                     // an application constraint, identical on all replicas.
                     result.status = Status::Aborted("contract aborted");
                     result.reason = core::AbortReason::kConstraint;
                     stats_.aborted++;
                     stats_.aborts_by_reason[result.reason]++;
                   }
                   pending.cb(result);
                 });
    }
  });
}

void HarmonySystem::Submit(const core::TxnRequest& request,
                           core::TxnCallback cb) {
  PendingTxn pending;
  pending.request = request;
  pending.cb = std::move(cb);
  pending.submit_time = sim_->Now();
  // Client sends the signed transaction to the sequencer's mempool.
  net_->Send(config_.client_node, SequencerId(), request.PayloadBytes() + 96,
             [this, pending = std::move(pending)]() mutable {
               mempool_.Push(std::move(pending));
             });
}

void HarmonySystem::Query(const core::ReadRequest& request,
                          core::ReadCallback cb) {
  stats_.queries++;
  sim::Time submit_time = sim_->Now();
  // Reads route over the construction-time span only — a joiner still
  // catching up must not serve stale reads.
  sim::NodeId target = nodes_.id_of(request.client_id % config_.num_nodes);
  net_->Send(config_.client_node, target, 64 + request.key.size(),
             [this, target, key = request.key, cb = std::move(cb),
              submit_time]() mutable {
               // Native read path — no VM between the RPC layer and the
               // storage engine (contrast quorum_query_us).
               sim::Time cost = costs_->native_op_us + costs_->lsm_read_us;
               sim_->Schedule(cost, [this, target, key, cb = std::move(cb),
                                     submit_time]() mutable {
                 std::string value;
                 Status s = nodes_.at(target).state.Get(key, &value);
                 net_->Send(target, config_.client_node, 64 + value.size(),
                            [this, target, cb = std::move(cb), submit_time, s,
                             value = std::move(value)] {
                              core::ReadResult result;
                              result.status = s;
                              result.value = value;
                              result.submit_time = submit_time;
                              result.finish_time = sim_->Now();
                              result.phases.Set(core::Phase::kRead,
                                                result.finish_time -
                                                    submit_time);
                              obs::EmitPhaseSpan(sim_, core::Phase::kRead,
                                                 target, 0, submit_time,
                                                 result.finish_time);
                              cb(result);
                            });
               });
             });
}

}  // namespace dicho::systems
