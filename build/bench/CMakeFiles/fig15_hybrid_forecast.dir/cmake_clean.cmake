file(REMOVE_RECURSE
  "CMakeFiles/fig15_hybrid_forecast.dir/fig15_hybrid_forecast.cc.o"
  "CMakeFiles/fig15_hybrid_forecast.dir/fig15_hybrid_forecast.cc.o.d"
  "fig15_hybrid_forecast"
  "fig15_hybrid_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_hybrid_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
