// Property tests for the open-loop arrival engine: Poisson interarrival
// statistics, diurnal mass conservation, flash-crowd placement and
// amplitude, hot-set drift coverage, tenant-mix proportions, and the
// determinism contract (byte-identical sequences across reruns and
// DICHO_SIM_THREADS settings).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/arrival.h"

namespace dicho::workload {
namespace {

class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("DICHO_SIM_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv("DICHO_SIM_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      setenv("DICHO_SIM_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("DICHO_SIM_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

// Renders the first `n` arrivals as one string — the byte-identity probe.
std::string RenderArrivals(const ArrivalConfig& config, uint64_t seed,
                           size_t n) {
  ArrivalEngine engine(config, seed);
  std::string out;
  sim::Time now = 0;
  char buf[128];
  for (size_t i = 0; i < n; i++) {
    Arrival arrival = engine.Next(now);
    snprintf(buf, sizeof(buf), "%.17g|%u|%.17g|%llu\n", arrival.time,
             arrival.tenant, arrival.fee,
             static_cast<unsigned long long>(arrival.key_index));
    out += buf;
    now = arrival.time;
  }
  return out;
}

TEST(ArrivalPoissonTest, InterarrivalMeanAndVarianceMatchRate) {
  ArrivalConfig config;
  config.base_rate_tps = 1000.0;  // homogeneous: no diurnal, no crowds
  ArrivalEngine engine(config, 7);

  const size_t kSamples = 50000;
  std::vector<double> gaps;
  gaps.reserve(kSamples);
  sim::Time now = 0;
  for (size_t i = 0; i < kSamples; i++) {
    Arrival arrival = engine.Next(now);
    gaps.push_back(arrival.time - now);
    now = arrival.time;
  }
  double mean = 0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());

  // Exponential(1/rate): mean = 1000 us, variance = mean^2 (CV = 1).
  const double expected_mean = sim::kSec / config.base_rate_tps;
  EXPECT_NEAR(mean, expected_mean, 0.03 * expected_mean);
  double cv2 = var / (mean * mean);
  EXPECT_NEAR(cv2, 1.0, 0.05);
}

TEST(ArrivalDiurnalTest, CurveConservesMassOverWholePeriods) {
  ArrivalConfig config;
  config.base_rate_tps = 500.0;
  config.diurnal_amplitude = 0.6;
  config.diurnal_period = 10 * sim::kSec;
  ArrivalEngine engine(config, 1);

  // Numerically integrate rate(t) over one full period: the sinusoid must
  // contribute zero net mass, leaving exactly base_rate x period.
  const int kSteps = 100000;
  const double dt = config.diurnal_period / kSteps;
  double mass = 0;
  for (int i = 0; i < kSteps; i++) {
    mass += engine.RateAt((i + 0.5) * dt) * dt / sim::kSec;
  }
  const double expected =
      config.base_rate_tps * (config.diurnal_period / sim::kSec);
  EXPECT_NEAR(mass, expected, 1e-6 * expected);

  // The curve actually modulates: peak and trough hit base x (1 +/- A).
  EXPECT_NEAR(engine.RateAt(config.diurnal_period / 4),
              config.base_rate_tps * 1.6, 1e-6);
  EXPECT_NEAR(engine.RateAt(3 * config.diurnal_period / 4),
              config.base_rate_tps * 0.4, 1e-6);
  EXPECT_LE(engine.RateAt(config.diurnal_period / 4),
            engine.MaxRate() + 1e-9);
}

TEST(ArrivalFlashCrowdTest, SeedDrawnCrowdsLandInHorizonWithAmplitude) {
  ArrivalConfig config;
  config.base_rate_tps = 200.0;
  config.flash_count = 3;
  config.flash_amplitude = 5.0;
  config.flash_duration = 1 * sim::kSec;
  config.horizon = 30 * sim::kSec;
  ArrivalEngine engine(config, 21);

  const auto& crowds = engine.flash_crowds();
  ASSERT_EQ(crowds.size(), 3u);
  sim::Time prev_start = -1;
  for (const FlashCrowd& crowd : crowds) {
    EXPECT_GE(crowd.start, 0.0);
    EXPECT_LT(crowd.start, config.horizon);
    EXPECT_EQ(crowd.duration, config.flash_duration);
    EXPECT_EQ(crowd.amplitude, config.flash_amplitude);
    EXPECT_GE(crowd.start, prev_start) << "crowds must be sorted by start";
    prev_start = crowd.start;
  }

  // Inside a crowd (and away from the others) the rate is base x amplitude;
  // far from every crowd it is the base rate.
  const FlashCrowd& first = crowds.front();
  double in_crowd = engine.RateAt(first.start + first.duration / 2);
  EXPECT_GE(in_crowd, config.base_rate_tps * config.flash_amplitude - 1e-6);

  sim::Time calm = config.horizon;  // crowds are drawn strictly inside
  for (const FlashCrowd& crowd : crowds) {
    EXPECT_GT(calm, crowd.start + crowd.duration);
  }
  EXPECT_NEAR(engine.RateAt(calm + 1), config.base_rate_tps, 1e-6);
}

TEST(ArrivalFlashCrowdTest, ArrivalCountSurgesInsideTheCrowd) {
  ArrivalConfig config;
  config.base_rate_tps = 300.0;
  config.flash_crowds = {{5 * sim::kSec, 2 * sim::kSec, 6.0}};
  ArrivalEngine engine(config, 33);

  uint64_t inside = 0, before = 0;
  sim::Time now = 0;
  while (now < 7 * sim::kSec) {
    Arrival arrival = engine.Next(now);
    now = arrival.time;
    if (now >= 5 * sim::kSec && now < 7 * sim::kSec) inside++;
    if (now < 5 * sim::kSec) before++;
  }
  // Expected: 5 s x 300 tps = 1500 before, 2 s x 1800 tps = 3600 inside.
  EXPECT_NEAR(static_cast<double>(before), 1500.0, 150.0);
  EXPECT_NEAR(static_cast<double>(inside), 3600.0, 300.0);
}

TEST(ArrivalDriftTest, HotSetRotatesAndCoversTheKeyspace) {
  ArrivalConfig config;
  config.record_count = 64;
  config.zipf_theta = 0.99;  // sharply skewed: rank 0 dominates
  config.hot_rotation_period = 1 * sim::kSec;
  config.hot_rotation_step = 16;
  ArrivalEngine engine(config, 5);

  EXPECT_EQ(engine.HotOffset(0), 0u);
  EXPECT_EQ(engine.HotOffset(1.5 * sim::kSec), 16u);
  EXPECT_EQ(engine.HotOffset(3.2 * sim::kSec), 48u);
  // The offset wraps modulo record_count.
  EXPECT_EQ(engine.HotOffset(4.5 * sim::kSec), 0u);

  // Sampling across 4 rotation epochs must spread the hot mass onto all 4
  // rotated hot heads; a static hot set concentrates on one.
  std::set<uint64_t> hot_heads_hit;
  for (int epoch = 0; epoch < 4; epoch++) {
    sim::Time t = (epoch + 0.5) * sim::kSec;
    for (int i = 0; i < 200; i++) {
      uint64_t key = engine.SampleKeyIndex(t);
      ASSERT_LT(key, config.record_count);
      if (key == engine.HotOffset(t)) hot_heads_hit.insert(key);
    }
  }
  EXPECT_EQ(hot_heads_hit.size(), 4u)
      << "each epoch's rotated head must receive traffic";
}

TEST(ArrivalTenantTest, MixFollowsWeightsAndStampsFees) {
  ArrivalConfig config;
  config.base_rate_tps = 2000.0;
  config.tenants = {{"retail", "ycsb", 3.0, 2.5}, {"batch", "ycsb", 1.0, 0.5}};
  ArrivalEngine engine(config, 11);

  uint64_t counts[2] = {0, 0};
  sim::Time now = 0;
  const size_t kSamples = 20000;
  for (size_t i = 0; i < kSamples; i++) {
    Arrival arrival = engine.Next(now);
    now = arrival.time;
    ASSERT_LT(arrival.tenant, 2u);
    counts[arrival.tenant]++;
    EXPECT_EQ(arrival.fee, arrival.tenant == 0 ? 2.5 : 0.5);
  }
  double retail_share =
      static_cast<double>(counts[0]) / static_cast<double>(kSamples);
  EXPECT_NEAR(retail_share, 0.75, 0.02);
}

TEST(ArrivalDeterminismTest, ByteIdenticalAcrossRerunsAndThreadSettings) {
  ArrivalConfig config;
  config.base_rate_tps = 400.0;
  config.diurnal_amplitude = 0.3;
  config.diurnal_period = 5 * sim::kSec;
  config.flash_count = 2;
  config.flash_amplitude = 4.0;
  config.flash_duration = 500 * sim::kMs;
  config.horizon = 20 * sim::kSec;
  config.record_count = 128;
  config.hot_rotation_period = 2 * sim::kSec;
  config.tenants = {{"a", "ycsb", 1.0, 1.0}, {"b", "ycsb", 1.0, 2.0}};

  const std::string baseline = RenderArrivals(config, 99, 2000);
  ASSERT_FALSE(baseline.empty());
  // Rerun identity: the engine owns all of its randomness.
  EXPECT_EQ(baseline, RenderArrivals(config, 99, 2000));
  // A different seed must actually change the plan.
  EXPECT_NE(baseline, RenderArrivals(config, 100, 2000));
  // Thread-count invariance: the engine never touches the simulator's
  // partition streams, so the env knob must not change a byte.
  for (const char* threads : {"1", "2", "hw"}) {
    ScopedThreadsEnv env(threads);
    EXPECT_EQ(baseline, RenderArrivals(config, 99, 2000))
        << "arrival plan diverged with DICHO_SIM_THREADS=" << threads;
  }
}

}  // namespace
}  // namespace dicho::workload
