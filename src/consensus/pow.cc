#include "consensus/pow.h"

#include <algorithm>

namespace dicho::consensus {

namespace {
constexpr uint64_t kBlockHeaderBytes = 128;
}

PowNetwork::PowNetwork(sim::Simulator* sim, sim::SimNetwork* net,
                       std::vector<NodeId> miners, PowConfig config,
                       ApplyFn apply)
    : sim_(sim),
      net_(net),
      miners_(std::move(miners)),
      config_(config),
      apply_(std::move(apply)) {
  for (NodeId m : miners_) {
    tip_[m] = 0;
    tip_height_[m] = 0;
    mining_epoch_[m] = 0;
    confirmed_height_[m] = 0;
  }
}

void PowNetwork::Start() {
  for (NodeId m : miners_) ScheduleMining(m);
}

void PowNetwork::Submit(std::string txn, ConfirmCallback cb) {
  mempool_.emplace_back(std::move(txn), std::move(cb));
}

void PowNetwork::ScheduleMining(NodeId miner) {
  uint64_t epoch = ++mining_epoch_[miner];
  // Each of n miners solves at rate 1/(n * mean), so the network solves at
  // 1/mean.
  Time delay = sim_->rng()->Exponential(
      config_.mean_block_interval * static_cast<double>(miners_.size()));
  sim_->Schedule(delay, [this, miner, epoch] { OnBlockFound(miner, epoch); });
}

void PowNetwork::OnBlockFound(NodeId miner, uint64_t epoch) {
  if (epoch != mining_epoch_[miner]) return;  // preempted by a received block
  if (net_->IsDown(miner)) {
    ScheduleMining(miner);
    return;
  }
  Block block;
  block.id = next_block_id_++;
  block.parent = tip_[miner];
  block.height = tip_height_[miner] + 1;
  block.miner = miner;
  uint64_t bytes = kBlockHeaderBytes;
  size_t take = std::min(mempool_.size(), config_.max_txns_per_block);
  for (size_t i = 0; i < take; i++) {
    block.txns.push_back(mempool_[i].first);
    awaiting_confirm_[mempool_[i].first] = std::move(mempool_[i].second);
    bytes += mempool_[i].first.size();
  }
  mempool_.erase(mempool_.begin(), mempool_.begin() + static_cast<long>(take));
  blocks_[block.id] = block;
  blocks_mined_++;

  // Adopt own block and broadcast.
  tip_[miner] = block.id;
  tip_height_[miner] = block.height;
  ConfirmUpTo(miner, block.id);
  ScheduleMining(miner);
  for (NodeId peer : miners_) {
    if (peer == miner) continue;
    uint64_t block_id = block.id;
    net_->Send(miner, peer, bytes,
               [this, peer, block_id] { DeliverBlock(peer, block_id); });
  }
}

void PowNetwork::DeliverBlock(NodeId node, uint64_t block_id) {
  const Block& block = blocks_.at(block_id);
  if (block.height <= tip_height_[node]) {
    // Competing block at the same or lower height: a fork.
    if (block.height == tip_height_[node] && tip_[node] != block_id) forks_++;
    return;
  }
  tip_[node] = block_id;
  tip_height_[node] = block.height;
  // Receiving a longer chain preempts the current mining attempt.
  ScheduleMining(node);
  ConfirmUpTo(node, block_id);
}

void PowNetwork::ConfirmUpTo(NodeId node, uint64_t tip_id) {
  const Block& tip_block = blocks_.at(tip_id);
  if (tip_block.height < static_cast<uint64_t>(config_.confirm_depth)) return;
  uint64_t confirm_to = tip_block.height - config_.confirm_depth;
  if (confirm_to <= confirmed_height_[node]) return;

  // Collect the path from tip down to the last confirmed height.
  std::vector<const Block*> path;
  const Block* b = &tip_block;
  while (b->height > confirmed_height_[node]) {
    if (b->height <= confirm_to) path.push_back(b);
    if (b->parent == 0) break;
    b = &blocks_.at(b->parent);
  }
  std::reverse(path.begin(), path.end());
  for (const Block* blk : path) {
    for (const auto& txn : blk->txns) {
      if (apply_) apply_(node, blk->height, txn);
      auto it = awaiting_confirm_.find(txn);
      if (it != awaiting_confirm_.end()) {
        confirmed_txns_++;
        if (it->second) it->second(Status::Ok(), blk->height);
        awaiting_confirm_.erase(it);
      }
    }
  }
  confirmed_height_[node] = confirm_to;
}

}  // namespace dicho::consensus
