#include "storage/env.h"

#include <cstdio>
#include <map>
#include <memory>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

namespace dicho::storage {
namespace {

// ---------------------------------------------------------------------------
// MemEnv
// ---------------------------------------------------------------------------

struct MemFileMap {
  std::map<std::string, std::shared_ptr<std::string>> files;
};

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<std::string> contents)
      : contents_(std::move(contents)) {}

  Status Append(const Slice& data) override {
    contents_->append(data.data(), data.size());
    return Status::Ok();
  }
  Status Sync() override { return Status::Ok(); }
  Status Close() override { return Status::Ok(); }

 private:
  std::shared_ptr<std::string> contents_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<std::string> contents)
      : contents_(std::move(contents)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              std::string* /*scratch*/) const override {
    if (offset > contents_->size()) {
      return Status::IoError("read past end of file");
    }
    size_t avail = contents_->size() - offset;
    if (n > avail) n = avail;
    *result = Slice(contents_->data() + offset, n);
    return Status::Ok();
  }

  uint64_t Size() const override { return contents_->size(); }

 private:
  std::shared_ptr<std::string> contents_;
};

class MemEnv : public Env {
 public:
  Status NewWritableFile(const std::string& name,
                         std::unique_ptr<WritableFile>* file) override {
    auto contents = std::make_shared<std::string>();
    files_.files[name] = contents;
    *file = std::make_unique<MemWritableFile>(contents);
    return Status::Ok();
  }

  Status NewRandomAccessFile(
      const std::string& name,
      std::unique_ptr<RandomAccessFile>* file) override {
    auto it = files_.files.find(name);
    if (it == files_.files.end()) return Status::NotFound(name);
    *file = std::make_unique<MemRandomAccessFile>(it->second);
    return Status::Ok();
  }

  Status ReadFileToString(const std::string& name, std::string* data) override {
    auto it = files_.files.find(name);
    if (it == files_.files.end()) return Status::NotFound(name);
    *data = *it->second;
    return Status::Ok();
  }

  bool FileExists(const std::string& name) override {
    return files_.files.count(name) > 0;
  }

  Status DeleteFile(const std::string& name) override {
    if (files_.files.erase(name) == 0) return Status::NotFound(name);
    return Status::Ok();
  }

  Status ListFiles(const std::string& dir,
                   std::vector<std::string>* names) override {
    names->clear();
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (const auto& [name, _] : files_.files) {
      if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = name.substr(prefix.size());
        if (rest.find('/') == std::string::npos) names->push_back(rest);
      }
    }
    return Status::Ok();
  }

  Status CreateDirIfMissing(const std::string& /*dir*/) override {
    return Status::Ok();
  }

 private:
  MemFileMap files_;
};

// ---------------------------------------------------------------------------
// PosixEnv
// ---------------------------------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(FILE* f) : f_(f) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) fclose(f_);
  }

  Status Append(const Slice& data) override {
    if (fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::IoError("fwrite failed");
    }
    return Status::Ok();
  }
  Status Sync() override {
    if (fflush(f_) != 0) return Status::IoError("fflush failed");
    return Status::Ok();
  }
  Status Close() override {
    if (f_ != nullptr) {
      int r = fclose(f_);
      f_ = nullptr;
      if (r != 0) return Status::IoError("fclose failed");
    }
    return Status::Ok();
  }

 private:
  FILE* f_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(FILE* f, uint64_t size) : f_(f), size_(size) {}
  ~PosixRandomAccessFile() override {
    if (f_ != nullptr) fclose(f_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              std::string* scratch) const override {
    scratch->resize(n);
    if (fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("fseek failed");
    }
    size_t got = fread(scratch->data(), 1, n, f_);
    scratch->resize(got);
    *result = Slice(*scratch);
    return Status::Ok();
  }

  uint64_t Size() const override { return size_; }

 private:
  FILE* f_;
  uint64_t size_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& name,
                         std::unique_ptr<WritableFile>* file) override {
    FILE* f = fopen(name.c_str(), "wb");
    if (f == nullptr) return Status::IoError("cannot open " + name);
    *file = std::make_unique<PosixWritableFile>(f);
    return Status::Ok();
  }

  Status NewRandomAccessFile(
      const std::string& name,
      std::unique_ptr<RandomAccessFile>* file) override {
    FILE* f = fopen(name.c_str(), "rb");
    if (f == nullptr) return Status::NotFound(name);
    fseek(f, 0, SEEK_END);
    uint64_t size = static_cast<uint64_t>(ftell(f));
    *file = std::make_unique<PosixRandomAccessFile>(f, size);
    return Status::Ok();
  }

  Status ReadFileToString(const std::string& name, std::string* data) override {
    FILE* f = fopen(name.c_str(), "rb");
    if (f == nullptr) return Status::NotFound(name);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fseek(f, 0, SEEK_SET);
    data->resize(static_cast<size_t>(size));
    size_t got = fread(data->data(), 1, data->size(), f);
    fclose(f);
    if (got != data->size()) return Status::IoError("short read on " + name);
    return Status::Ok();
  }

  bool FileExists(const std::string& name) override {
    struct stat st;
    return stat(name.c_str(), &st) == 0;
  }

  Status DeleteFile(const std::string& name) override {
    if (remove(name.c_str()) != 0) return Status::IoError("remove " + name);
    return Status::Ok();
  }

  Status ListFiles(const std::string& dir,
                   std::vector<std::string>* names) override {
    names->clear();
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return Status::IoError("opendir " + dir);
    struct dirent* entry;
    while ((entry = readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names->push_back(name);
    }
    closedir(d);
    return Status::Ok();
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (mkdir(dir.c_str(), 0755) != 0) {
      struct stat st;
      if (stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        return Status::Ok();
      }
      return Status::IoError("mkdir " + dir);
    }
    return Status::Ok();
  }
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }
std::unique_ptr<Env> NewPosixEnv() { return std::make_unique<PosixEnv>(); }

}  // namespace dicho::storage
