#include "common/hex.h"

namespace dicho {
namespace {
constexpr char kDigits[] = "0123456789abcdef";

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const Slice& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); i++) {
    unsigned char c = static_cast<unsigned char>(data[i]);
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

std::string FromHex(const Slice& hex) {
  if (hex.size() % 2 != 0) return "";
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexVal(hex[i]);
    int lo = HexVal(hex[i + 1]);
    if (hi < 0 || lo < 0) return "";
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace dicho
