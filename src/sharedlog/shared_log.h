#ifndef DICHO_SHAREDLOG_SHARED_LOG_H_
#define DICHO_SHAREDLOG_SHARED_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dicho::sharedlog {

using sim::NodeId;
using sim::Time;

struct SharedLogConfig {
  /// Broker CPU per appended record (Kafka-grade: very cheap — ordering is
  /// decoupled from state replication, which is why shared-log systems have
  /// high ordering throughput, paper Section 3.1.2).
  Time append_cost_us = 4.0;
  /// Push accumulated records to subscribers on this cadence.
  Time delivery_interval = 5 * sim::kMs;
};

/// A Kafka/Corfu-style shared log: a totally ordered, durable record stream
/// that decouples *ordering* from *state replication*. Producers append;
/// consumers receive the stream in order and apply independently. Veritas
/// and ChainifyDB use exactly this as their ledger transport.
class SharedLog {
 public:
  using AppendCallback = std::function<void(Status, uint64_t offset)>;
  using DeliverFn = std::function<void(uint64_t offset, const std::string&)>;

  SharedLog(sim::Simulator* sim, sim::SimNetwork* net, NodeId broker,
            SharedLogConfig config);

  /// Appends `record` from node `from`; `cb` fires (back at the caller, after
  /// the network round trip) with the assigned offset.
  void Append(NodeId from, std::string record, AppendCallback cb);

  /// Registers node `subscriber` to receive every record in order, pushed
  /// over the network on the delivery cadence.
  void Subscribe(NodeId subscriber, DeliverFn fn);

  uint64_t size() const { return log_.size(); }
  const std::string& record(uint64_t offset) const { return log_[offset]; }

 private:
  struct Subscriber {
    NodeId node;
    DeliverFn fn;
    uint64_t next_offset = 0;
  };

  void DeliveryTick();

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  NodeId broker_;
  SharedLogConfig config_;
  sim::CpuResource cpu_;
  std::vector<std::string> log_;
  std::vector<Subscriber> subscribers_;
  bool tick_armed_ = false;
};

}  // namespace dicho::sharedlog

#endif  // DICHO_SHAREDLOG_SHARED_LOG_H_
