#include "crypto/batch_verify.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/signature.h"

namespace dicho::crypto {
namespace {

struct Signed {
  uint64_t signer;
  std::string message;
  std::string signature;
};

std::vector<Signed> MakeSigned(size_t n, Rng* rng) {
  std::vector<Signed> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    Signed s;
    s.signer = rng->Uniform(64);
    s.message = rng->Bytes(rng->UniformRange(1, 200));
    s.signature = Signer(s.signer).Sign(s.message);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<BatchVerifyItem> ToItems(const std::vector<Signed>& batch) {
  std::vector<BatchVerifyItem> items;
  items.reserve(batch.size());
  for (const Signed& s : batch) {
    items.push_back({s.signer, s.message, s.signature});
  }
  return items;
}

TEST(BatchVerifyTest, AllValidSmallBatch) {
  Rng rng(1);
  auto batch = MakeSigned(10, &rng);
  auto results = VerifyBatch(ToItems(batch));
  ASSERT_EQ(results.size(), 10u);
  for (uint8_t r : results) EXPECT_EQ(r, 1);
}

TEST(BatchVerifyTest, EmptyBatch) {
  EXPECT_TRUE(VerifyBatch({}).empty());
}

// Results must land at the index of their input whatever the thread count:
// tamper with a known subset and check exactly those slots fail, for 1, 2,
// and 7 threads (7 does not divide the batch, exercising the tail chunk).
TEST(BatchVerifyTest, ResultsInInputOrderAcrossThreadCounts) {
  Rng rng(2);
  auto batch = MakeSigned(1500, &rng);  // above the serial cutoff
  for (size_t i = 0; i < batch.size(); i += 13) {
    batch[i].message += "!";  // invalidate every 13th signature
  }
  auto items = ToItems(batch);
  for (int threads : {1, 2, 7}) {
    auto results = VerifyBatch(items, threads);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); i++) {
      EXPECT_EQ(results[i], i % 13 == 0 ? 0 : 1)
          << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(BatchVerifyTest, WrongSignerFails) {
  Rng rng(3);
  auto batch = MakeSigned(4, &rng);
  batch[2].signer ^= 1;  // signature was made by someone else
  auto results = VerifyBatch(ToItems(batch));
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[2], 0);
}

TEST(BatchVerifyTest, EnvResolutionPrefersBenchThreads) {
  // setenv/getenv in a single-threaded test body is safe; restore after.
  setenv("DICHO_BENCH_THREADS", "3", 1);
  EXPECT_EQ(BatchVerifyThreads(), 3u);
  unsetenv("DICHO_BENCH_THREADS");
  setenv("DICHO_SIM_THREADS", "2", 1);
  EXPECT_EQ(BatchVerifyThreads(), 2u);
  unsetenv("DICHO_SIM_THREADS");
  EXPECT_GE(BatchVerifyThreads(), 1u);
}

}  // namespace
}  // namespace dicho::crypto
