#include "storage/btree/btree.h"

#include <algorithm>
#include <cassert>

namespace dicho::storage::btree {

struct BTree::Node {
  bool leaf;
  // Interior: keys.size() + 1 == children.size(); keys are separators —
  // subtree i holds keys < keys[i], subtree i+1 holds keys >= keys[i].
  std::vector<std::string> keys;
  std::vector<Node*> children;
  // Leaf payload + chain.
  std::vector<LeafEntry> entries;
  Node* next = nullptr;

  explicit Node(bool is_leaf) : leaf(is_leaf) {}
};

BTree::BTree(int order) : order_(order < 4 ? 4 : order) {
  root_ = new Node(/*is_leaf=*/true);
}

BTree::~BTree() { FreeNode(root_); }

void BTree::FreeNode(Node* node) {
  if (!node->leaf) {
    for (Node* child : node->children) FreeNode(child);
  }
  delete node;
}

int BTree::height() const {
  int h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children[0];
    h++;
  }
  return h;
}

BTree::Node* BTree::FindLeaf(const Slice& key) const {
  Node* node = root_;
  while (!node->leaf) {
    // First separator > key  => child index.
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(),
                                key.ToString()) -
               node->keys.begin();
    node = node->children[i];
  }
  return node;
}

Status BTree::Get(const Slice& key, std::string* value) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const Slice& k) { return Slice(e.key) < k; });
  if (it == leaf->entries.end() || Slice(it->key) != key) {
    return Status::NotFound();
  }
  *value = it->value;
  return Status::Ok();
}

void BTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[index];
  Node* sibling = new Node(child->leaf);
  std::string separator;

  if (child->leaf) {
    size_t mid = child->entries.size() / 2;
    sibling->entries.assign(child->entries.begin() + mid,
                            child->entries.end());
    child->entries.resize(mid);
    sibling->next = child->next;
    child->next = sibling;
    separator = sibling->entries.front().key;
  } else {
    // Interior: promote the median; left keeps < median, right keeps >.
    size_t mid = child->keys.size() / 2;
    separator = child->keys[mid];
    sibling->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    sibling->children.assign(child->children.begin() + mid + 1,
                             child->children.end());
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + index, separator);
  parent->children.insert(parent->children.begin() + index + 1, sibling);
}

void BTree::InsertNonFull(Node* node, const Slice& key, const Slice& value,
                          bool* inserted, uint64_t* delta_bytes) {
  if (node->leaf) {
    auto it = std::lower_bound(
        node->entries.begin(), node->entries.end(), key,
        [](const LeafEntry& e, const Slice& k) { return Slice(e.key) < k; });
    if (it != node->entries.end() && Slice(it->key) == key) {
      *delta_bytes = value.size() - it->value.size();
      it->value = value.ToString();
      *inserted = false;
    } else {
      node->entries.insert(it, {key.ToString(), value.ToString()});
      *delta_bytes = key.size() + value.size();
      *inserted = true;
    }
    return;
  }
  size_t i = std::upper_bound(node->keys.begin(), node->keys.end(),
                              key.ToString()) -
             node->keys.begin();
  Node* child = node->children[i];
  bool full = child->leaf
                  ? static_cast<int>(child->entries.size()) >= order_
                  : static_cast<int>(child->keys.size()) >= order_;
  if (full) {
    SplitChild(node, static_cast<int>(i));
    if (Slice(node->keys[i]).Compare(key) <= 0) {
      child = node->children[i + 1];
    } else {
      child = node->children[i];
    }
  }
  InsertNonFull(child, key, value, inserted, delta_bytes);
}

Status BTree::Put(const Slice& key, const Slice& value) {
  bool root_full = root_->leaf
                       ? static_cast<int>(root_->entries.size()) >= order_
                       : static_cast<int>(root_->keys.size()) >= order_;
  if (root_full) {
    Node* new_root = new Node(/*is_leaf=*/false);
    new_root->children.push_back(root_);
    root_ = new_root;
    SplitChild(root_, 0);
  }
  bool inserted = false;
  uint64_t delta = 0;
  InsertNonFull(root_, key, value, &inserted, &delta);
  if (inserted) count_++;
  bytes_ += delta;
  return Status::Ok();
}

Status BTree::Delete(const Slice& key) {
  // Lazy deletion: remove from the leaf without rebalancing (common in
  // practice for in-memory trees; underfull leaves merge away on later
  // splits of the key space). Min-fill is therefore not an invariant after
  // deletes — CheckInvariants() checks ordering/depth only.
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const Slice& k) { return Slice(e.key) < k; });
  if (it == leaf->entries.end() || Slice(it->key) != key) {
    return Status::NotFound();
  }
  bytes_ -= it->key.size() + it->value.size();
  leaf->entries.erase(it);
  count_--;
  return Status::Ok();
}

Status BTree::Write(const WriteBatch& batch) {
  for (const auto& op : batch.ops()) {
    if (op.type == WriteBatch::OpType::kPut) {
      Status s = Put(op.key, op.value);
      if (!s.ok()) return s;
    } else {
      Status s = Delete(op.key);
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }
  return Status::Ok();
}

namespace {
}  // namespace

class BTreeIterator : public storage::Iterator {
 public:
  explicit BTreeIterator(const BTree* tree) : tree_(tree) {}

  bool Valid() const override { return leaf_ != nullptr; }

  void SeekToFirst() override {
    const BTree::Node* n = tree_->root_;
    while (!n->leaf) n = n->children[0];
    leaf_ = n;
    index_ = 0;
    SkipEmptyLeaves();
  }

  void Seek(const Slice& target) override {
    leaf_ = tree_->FindLeaf(target);
    const auto& entries = leaf_->entries;
    index_ = static_cast<size_t>(
        std::lower_bound(entries.begin(), entries.end(), target,
                         [](const BTree::LeafEntry& e, const Slice& k) {
                           return Slice(e.key) < k;
                         }) -
        entries.begin());
    SkipEmptyLeaves();
  }

  void Next() override {
    assert(Valid());
    index_++;
    SkipEmptyLeaves();
  }

  Slice key() const override { return Slice(leaf_->entries[index_].key); }
  Slice value() const override { return Slice(leaf_->entries[index_].value); }

 private:
  void SkipEmptyLeaves() {
    while (leaf_ != nullptr && index_ >= leaf_->entries.size()) {
      leaf_ = leaf_->next;
      index_ = 0;
    }
  }

  const BTree* tree_;
  const BTree::Node* leaf_ = nullptr;
  size_t index_ = 0;
};

std::unique_ptr<storage::Iterator> BTree::NewIterator() {
  return std::make_unique<BTreeIterator>(this);
}

int BTree::LeafDepth() const {
  int d = 0;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children[0];
    d++;
  }
  return d;
}

bool BTree::CheckNode(const Node* node, const std::string* lower,
                      const std::string* upper, int depth,
                      int leaf_depth) const {
  if (node->leaf) {
    if (depth != leaf_depth) return false;
    for (size_t i = 0; i < node->entries.size(); i++) {
      const std::string& k = node->entries[i].key;
      if (i > 0 && !(node->entries[i - 1].key < k)) return false;
      if (lower != nullptr && k < *lower) return false;
      if (upper != nullptr && !(k < *upper)) return false;
    }
    return true;
  }
  if (node->children.size() != node->keys.size() + 1) return false;
  for (size_t i = 0; i + 1 < node->keys.size(); i++) {
    if (!(node->keys[i] < node->keys[i + 1])) return false;
  }
  for (size_t i = 0; i < node->children.size(); i++) {
    const std::string* lo = (i == 0) ? lower : &node->keys[i - 1];
    const std::string* hi = (i == node->keys.size()) ? upper : &node->keys[i];
    if (!CheckNode(node->children[i], lo, hi, depth + 1, leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool BTree::CheckInvariants() const {
  return CheckNode(root_, nullptr, nullptr, 0, LeafDepth());
}

}  // namespace dicho::storage::btree
