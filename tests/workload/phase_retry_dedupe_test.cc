// Regression test for per-phase accounting under retries: a retried
// transaction's delivered PhaseTimeline must describe the FINAL attempt
// only. Before the fix, TidbSystem::StartAttempt kept stamping into the
// same timeline across attempts, so a txn that retried k times reported
// (k+1)x its parse/prewrite/commit time and the per-phase aggregates
// double-counted every retried transaction.
//
// The oracle is the trace layer: each attempt emits its own kParse span
// (stamped with the attempt number), so the final result's kParse value
// must equal the duration of the highest-attempt span — not the sum.

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/types.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/tidb.h"

namespace dicho::systems {
namespace {

struct ParseSpan {
  uint32_t attempt = 0;
  sim::Time duration = 0;
};

TEST(PhaseRetryDedupeTest, TimelineDescribesFinalAttemptOnly) {
  sim::Simulator sim(7);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  obs::TraceSink sink;
  sim.set_trace_sink(&sink);

  TidbConfig cfg;
  cfg.num_tidb_servers = 2;
  cfg.num_tikv_nodes = 2;
  cfg.max_write_retries = 2;  // small budget so some txns exhaust it
  cfg.retry_backoff = 500;    // 0.5 ms: retries collide with live locks
  TidbSystem tidb(&sim, &net, &costs, cfg);
  tidb.Load("hot", "v0");

  // A burst of single-record RMW transactions on one hot key: Percolator
  // serializes them on the primary lock, so all but the winner hit lock
  // conflicts, retry, and (deep in the queue) run out of retries.
  const uint64_t kTxns = 40;
  std::map<uint64_t, core::TxnResult> results;
  for (uint64_t i = 1; i <= kTxns; i++) {
    core::TxnRequest req;
    req.txn_id = i;
    req.client_id = i;
    req.contract = "ycsb";
    core::Op op;
    op.type = core::OpType::kReadModifyWrite;
    op.key = "hot";
    op.value = "v" + std::to_string(i);
    req.ops.push_back(op);
    tidb.Submit(req, [&results, i](const core::TxnResult& r) {
      results[i] = r;
    });
  }
  sim.RunFor(120 * sim::kSec);
  ASSERT_EQ(results.size(), kTxns) << "some transactions never finished";

  // Collect the per-attempt kParse spans, keyed by txn id.
  std::map<uint64_t, std::vector<ParseSpan>> parse_spans;
  const char* parse_name = core::PhaseName(core::Phase::kParse);
  for (const auto& ev : sink.events()) {
    if (ev.kind != obs::TraceSink::Kind::kSpan) continue;
    if (std::strcmp(ev.span.cat, "phase") != 0) continue;
    if (std::strcmp(ev.span.name, parse_name) != 0) continue;
    parse_spans[ev.span.id].push_back(
        ParseSpan{ev.span.attempt, ev.span.t1 - ev.span.t0});
  }

  uint64_t retried = 0;
  uint64_t aborted = 0;
  for (const auto& [txn_id, result] : results) {
    const auto it = parse_spans.find(txn_id);
    ASSERT_NE(it, parse_spans.end()) << "txn " << txn_id << " has no spans";
    const std::vector<ParseSpan>& spans = it->second;
    // One span per attempt, stamped 1..n in order.
    for (size_t k = 0; k < spans.size(); k++) {
      EXPECT_EQ(spans[k].attempt, k + 1) << "txn " << txn_id;
    }
    if (spans.size() > 1) retried++;
    if (!result.status.ok()) {
      aborted++;
      EXPECT_NE(result.reason, core::AbortReason::kNone);
    }
    // THE regression assertion: the delivered timeline equals the final
    // attempt's span exactly — pre-fix it was the sum over all attempts.
    EXPECT_DOUBLE_EQ(result.phases.Get(core::Phase::kParse),
                     spans.back().duration)
        << "txn " << txn_id << " (" << spans.size()
        << " attempts): timeline must not accumulate across retries";
  }

  // The workload must actually exercise the retry path, and exhaust it for
  // some transactions, or the assertions above are vacuous.
  EXPECT_GT(retried, 0u) << "no transaction ever retried";
  EXPECT_GT(aborted, 0u) << "no transaction exhausted its retry budget";
  EXPECT_LT(aborted, kTxns) << "nothing committed";
}

}  // namespace
}  // namespace dicho::systems
