// Layered cross-shard runtime (src/sharding/runtime.h) and the harmonyshard
// system built on it. Covers the PR's refactor contract from the unit side:
// the ShardPlanner routing every sharded system now shares, ReliableLink's
// exactly-once delivery under message loss, EpochSequencer epoch-cut
// determinism across DICHO_SIM_THREADS, epoch atomicity across a
// shard-severing partition, and 2PC-vs-epoch semantic equivalence (ahl,
// spannerlike and harmonyshard agree on final state for the same sequential
// history — the *byte*-level "ahl goldens unchanged" half of that claim is
// pinned by tests/systems/golden_equivalence_test.cc).

#include "sharding/runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sharding/partition.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/ahl.h"
#include "systems/harmonyshard.h"
#include "systems/spannerlike.h"

namespace dicho {
namespace {

core::TxnRequest RmwTxn(uint64_t id, std::vector<std::string> keys,
                        const std::string& value) {
  core::TxnRequest req;
  req.txn_id = id;
  req.contract = "ycsb";
  for (auto& key : keys) {
    core::Op op;
    op.type = core::OpType::kReadModifyWrite;
    op.key = std::move(key);
    op.value = value;
    req.ops.push_back(std::move(op));
  }
  return req;
}

// --- ShardPlanner -----------------------------------------------------------

TEST(ShardPlannerTest, SortsAndDeduplicatesKeysAndShards) {
  sharding::HashPartitioner partitioner(4);
  sharding::ShardPlanner planner(&partitioner);
  core::TxnRequest req = RmwTxn(1, {"kiwi", "apple", "kiwi", "mango"}, "v");
  sharding::TxnShardPlan plan = planner.Plan(req);

  ASSERT_EQ(plan.keys.size(), 3u);  // duplicate "kiwi" collapsed
  EXPECT_TRUE(std::is_sorted(plan.keys.begin(), plan.keys.end()));
  EXPECT_TRUE(std::is_sorted(plan.shards.begin(), plan.shards.end()));
  EXPECT_EQ(std::adjacent_find(plan.shards.begin(), plan.shards.end()),
            plan.shards.end());
  // keys_by_shard partitions exactly the deduplicated key set.
  size_t grouped = 0;
  for (const auto& [shard, keys] : plan.keys_by_shard) {
    for (const auto& key : keys) {
      EXPECT_EQ(partitioner.ShardOf(key), shard);
      grouped++;
    }
  }
  EXPECT_EQ(grouped, plan.keys.size());
  EXPECT_EQ(plan.home(), plan.shards.front());
}

TEST(ShardPlannerTest, KeylessTransactionsHomeOnShardZero) {
  sharding::HashPartitioner partitioner(4);
  sharding::ShardPlanner planner(&partitioner);
  core::TxnRequest req;
  req.txn_id = 7;
  req.contract = "ycsb";
  sharding::TxnShardPlan plan = planner.Plan(req);
  EXPECT_EQ(plan.shards, std::vector<uint32_t>{0});
  EXPECT_FALSE(plan.cross_shard());
  EXPECT_EQ(plan.home(), 0u);
}

// --- ReliableLink -----------------------------------------------------------

TEST(ReliableLinkTest, ExactlyOnceDeliveryUnderDrops) {
  sim::Simulator sim(17);
  sim::NetworkConfig config;
  config.drop_rate = 0.3;  // 30% iid loss, both directions (data and acks)
  sim::SimNetwork net(&sim, config);

  std::map<uint64_t, int> delivered;  // seq -> times the deliver fn ran
  sharding::ReliableLink link(&sim, &net, /*from=*/1, /*to=*/2,
                              [&delivered](uint64_t seq, const std::string&) {
                                delivered[seq]++;
                              });
  constexpr uint64_t kMessages = 50;
  for (uint64_t i = 0; i < kMessages; i++) {
    link.Send("payload-" + std::to_string(i));
  }
  sim.RunFor(20 * sim::kSec);

  ASSERT_EQ(delivered.size(), kMessages);
  for (const auto& [seq, times] : delivered) {
    EXPECT_EQ(times, 1) << "seq " << seq << " delivered more than once";
  }
  EXPECT_EQ(link.acked(), kMessages);
  // At 30% loss some first transmissions must have needed a retransmit.
  EXPECT_GT(link.retransmits(), 0u);
}

// --- harmonyshard world helpers ---------------------------------------------

struct HsWorld {
  explicit HsWorld(uint32_t num_shards, uint64_t seed = 11,
                   bool partitioned_lps = false)
      : sim(std::make_unique<sim::Simulator>(seed)) {
    systems::HarmonyShardConfig config;
    config.num_shards = num_shards;
    config.record_payloads = true;
    if (partitioned_lps) {
      // One logical partition per consensus group (sequencer + each shard),
      // so DICHO_SIM_THREADS >= 2 actually runs conservative parallel
      // rounds instead of the trivially serial single-queue path.
      auto assign_group = [this](sim::NodeId base, uint32_t count) {
        uint32_t p = sim->AddPartition();
        for (uint32_t i = 0; i < count; i++) sim->AssignNode(base + i, p);
      };
      sim::NodeId base = systems::runtime::kHarmonyShardBase;
      assign_group(base, config.sequencer_nodes);
      for (uint32_t s = 0; s < num_shards; s++) {
        assign_group(base + config.sequencer_nodes + s * config.nodes_per_shard,
                     config.nodes_per_shard);
      }
    }
    net = std::make_unique<sim::SimNetwork>(sim.get(), sim::NetworkConfig{});
    system = std::make_unique<systems::HarmonyShardSystem>(
        sim.get(), net.get(), &costs, config);
    system->Start();
    sim->RunFor(1 * sim::kSec);
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<sim::SimNetwork> net;
  sim::CostModel costs;
  std::unique_ptr<systems::HarmonyShardSystem> system;
};

/// Submits `req` and runs the simulator until its callback fires.
core::TxnResult RunTxn(sim::Simulator* sim, core::TransactionalSystem* system,
                       const core::TxnRequest& req) {
  core::TxnResult result;
  bool done = false;
  system->Submit(req, [&](const core::TxnResult& r) {
    result = r;
    done = true;
  });
  for (int i = 0; i < 1000 && !done; i++) sim->RunFor(10 * sim::kMs);
  EXPECT_TRUE(done) << "txn " << req.txn_id << " never completed";
  return result;
}

std::string RunQuery(sim::Simulator* sim, core::TransactionalSystem* system,
                     const std::string& key) {
  std::string value;
  bool done = false;
  core::ReadRequest req;
  req.key = key;
  system->Query(req, [&](const core::ReadResult& r) {
    EXPECT_TRUE(r.status.ok()) << key;
    value = r.value;
    done = true;
  });
  for (int i = 0; i < 1000 && !done; i++) sim->RunFor(10 * sim::kMs);
  EXPECT_TRUE(done) << "query " << key << " never completed";
  return value;
}

// Keys chosen so HashPartitioner(2) maps k0 -> shard 0 and k1 -> shard 1
// (asserted inside the tests that rely on it).
std::vector<std::string> TwoShardKeys() {
  sharding::HashPartitioner partitioner(2);
  std::string k0, k1;
  for (int i = 0; k0.empty() || k1.empty(); i++) {
    std::string key = "acct" + std::to_string(i);
    (partitioner.ShardOf(key) == 0 ? k0 : k1) = key;
  }
  return {k0, k1};
}

// --- harmonyshard basics ----------------------------------------------------

TEST(HarmonyShardTest, CrossShardTxnCommitsWithoutTwoPcOrAborts) {
  HsWorld w(2);
  auto keys = TwoShardKeys();
  w.system->Load(keys[0], "a0");
  w.system->Load(keys[1], "b0");

  core::TxnResult single = RunTxn(w.sim.get(), w.system.get(),
                                  RmwTxn(1, {keys[0]}, "a1"));
  EXPECT_TRUE(single.status.ok());
  core::TxnResult cross = RunTxn(w.sim.get(), w.system.get(),
                                 RmwTxn(2, {keys[0], keys[1]}, "x"));
  EXPECT_TRUE(cross.status.ok());

  const sharding::ShardingStats& stats = w.system->sharding_stats();
  EXPECT_EQ(stats.single_shard_txns, 1u);
  EXPECT_EQ(stats.cross_shard_txns, 1u);
  EXPECT_EQ(stats.two_pc_rounds, 0u);  // structurally zero on the epoch path
  EXPECT_GT(stats.read_forwards, 0u);  // the cross-shard epoch forwarded
  EXPECT_EQ(w.system->stats().aborted, 0u);

  EXPECT_EQ(RunQuery(w.sim.get(), w.system.get(), keys[0]), "x");
  EXPECT_EQ(RunQuery(w.sim.get(), w.system.get(), keys[1]), "x");
}

// --- 2PC vs epoch equivalence ----------------------------------------------

TEST(ShardEquivalenceTest, AhlSpannerAndHarmonyshardAgreeOnFinalState) {
  // The same sequential history (each txn submitted after the previous one
  // committed, so serialization order is fixed) through the 2PC strategies
  // and the epoch strategy must produce identical final values. Byte-level
  // non-regression of ahl/spannerlike under the shared planner is pinned
  // separately by the golden suite.
  auto keys = TwoShardKeys();
  std::vector<core::TxnRequest> history;
  history.push_back(RmwTxn(1, {keys[0]}, "v1"));
  history.push_back(RmwTxn(2, {keys[1]}, "v2"));
  history.push_back(RmwTxn(3, {keys[0], keys[1]}, "v3"));  // cross-shard
  history.push_back(RmwTxn(4, {keys[1]}, "v4"));
  history.push_back(RmwTxn(5, {keys[0], keys[1]}, "v5"));  // cross-shard

  auto run_history = [&](sim::Simulator* sim,
                         core::TransactionalSystem* system) {
    system->Load(keys[0], "init0");
    system->Load(keys[1], "init1");
    for (const auto& req : history) {
      core::TxnResult r = RunTxn(sim, system, req);
      EXPECT_TRUE(r.status.ok()) << "txn " << req.txn_id;
    }
    std::map<std::string, std::string> state;
    for (const auto& key : keys) state[key] = RunQuery(sim, system, key);
    return state;
  };

  std::map<std::string, std::string> ahl_state;
  {
    sim::Simulator sim(11);
    sim::SimNetwork net(&sim, sim::NetworkConfig{});
    sim::CostModel costs;
    systems::AhlConfig config;
    config.num_shards = 2;
    config.epoch = 0;
    systems::AhlSystem ahl(&sim, &net, &costs, config);
    ahl.Start();
    sim.RunFor(1 * sim::kSec);
    ahl_state = run_history(&sim, &ahl);
    EXPECT_GT(ahl.sharding_stats().two_pc_rounds, 0u);  // paid the 2PC tax
  }
  std::map<std::string, std::string> spanner_state;
  {
    sim::Simulator sim(11);
    sim::SimNetwork net(&sim, sim::NetworkConfig{});
    sim::CostModel costs;
    systems::SpannerConfig config;
    config.num_shards = 2;
    systems::SpannerLikeSystem spanner(&sim, &net, &costs, config);
    spanner_state = run_history(&sim, &spanner);
    EXPECT_GT(spanner.sharding_stats().two_pc_rounds, 0u);
  }
  std::map<std::string, std::string> hs_state;
  {
    HsWorld w(2);
    hs_state = run_history(w.sim.get(), w.system.get());
    EXPECT_EQ(w.system->sharding_stats().two_pc_rounds, 0u);
  }

  EXPECT_EQ(ahl_state, spanner_state);
  EXPECT_EQ(ahl_state, hs_state);
}

// --- EpochSequencer determinism across thread counts ------------------------

struct EpochTrace {
  uint64_t epochs_cut = 0;
  std::vector<std::vector<crypto::Digest>> shard_digests;
  std::vector<crypto::Digest> state_digests;

  bool operator==(const EpochTrace& other) const {
    return epochs_cut == other.epochs_cut &&
           shard_digests == other.shard_digests &&
           state_digests == other.state_digests;
  }
};

EpochTrace RunEpochWorkload() {
  HsWorld w(2, /*seed=*/23, /*partitioned_lps=*/true);
  auto keys = TwoShardKeys();
  w.system->Load(keys[0], "a");
  w.system->Load(keys[1], "b");
  // Open-loop: a txn every 10ms, alternating single- and cross-shard, so
  // several epochs carry several txns each.
  uint64_t completed = 0;
  for (uint64_t i = 0; i < 60; i++) {
    w.sim->Schedule((i + 1) * 10 * sim::kMs, [&w, &keys, &completed, i] {
      std::vector<std::string> txn_keys =
          i % 3 == 0 ? std::vector<std::string>{keys[0], keys[1]}
                     : std::vector<std::string>{keys[i % 2]};
      w.system->Submit(RmwTxn(100 + i, txn_keys, "v" + std::to_string(i)),
                       [&completed](const core::TxnResult& r) {
                         EXPECT_TRUE(r.status.ok());
                         completed++;
                       });
    });
  }
  w.sim->RunFor(3 * sim::kSec);
  EXPECT_EQ(completed, 60u);

  EpochTrace trace;
  trace.epochs_cut = w.system->sequencer().epochs_cut();
  for (uint32_t s = 0; s < w.system->num_shards(); s++) {
    trace.shard_digests.push_back(w.system->shard(s).epoch_digests());
    trace.state_digests.push_back(w.system->shard(s).StateDigest());
  }
  return trace;
}

class ScopedSimThreads {
 public:
  explicit ScopedSimThreads(const char* value) {
    const char* old = std::getenv("DICHO_SIM_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv("DICHO_SIM_THREADS", value, 1);
  }
  ~ScopedSimThreads() {
    if (had_old_) {
      setenv("DICHO_SIM_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("DICHO_SIM_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(EpochSequencerTest, EpochCutsAreDeterministicAcrossThreadCounts) {
  // Per-group logical partitions + the conservative parallel engine: the
  // epoch stream (count, per-shard digest sequences, final state roots)
  // must be identical at 1 and 2 worker threads.
  EpochTrace serial;
  {
    ScopedSimThreads env("1");
    serial = RunEpochWorkload();
  }
  EpochTrace parallel;
  {
    ScopedSimThreads env("2");
    parallel = RunEpochWorkload();
  }
  EXPECT_GT(serial.epochs_cut, 0u);
  EXPECT_TRUE(serial == parallel);
}

// --- Epoch atomicity across a shard-severing partition ----------------------

TEST(HarmonyShardTest, EpochsStayAtomicAcrossShardSeveringPartition) {
  HsWorld w(2);
  auto keys = TwoShardKeys();
  w.system->Load(keys[0], "a");
  w.system->Load(keys[1], "b");

  // Sever shard 1 (replicas + its epoch-tree parent link) from everyone
  // else, submit cross-shard traffic, then heal. Every epoch must
  // eventually apply on both shards with identical digests — never on one
  // side only.
  std::vector<sim::NodeId> shard1 = w.system->shard(1).node_ids();
  std::vector<sim::NodeId> rest;
  for (sim::NodeId id : w.system->AllNodeIds()) {
    if (std::find(shard1.begin(), shard1.end(), id) == shard1.end()) {
      rest.push_back(id);
    }
  }
  rest.push_back(systems::runtime::kClientNode);
  w.net->Partition({shard1, rest});

  uint64_t completed = 0;
  for (uint64_t i = 0; i < 10; i++) {
    w.sim->Schedule((i + 1) * 20 * sim::kMs, [&w, &keys, &completed, i] {
      w.system->Submit(RmwTxn(500 + i, {keys[0], keys[1]}, "p"),
                       [&completed](const core::TxnResult&) { completed++; });
    });
  }
  w.sim->RunFor(1 * sim::kSec);
  w.net->HealPartition();
  w.sim->RunFor(5 * sim::kSec);

  EXPECT_EQ(completed, 10u);
  EXPECT_EQ(w.system->shard(0).epoch_digests(),
            w.system->shard(1).epoch_digests());
  EXPECT_GT(w.system->shard(0).applied_epochs(), 0u);
}

}  // namespace
}  // namespace dicho
