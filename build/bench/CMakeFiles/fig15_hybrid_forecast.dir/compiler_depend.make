# Empty compiler generated dependencies file for fig15_hybrid_forecast.
# This may be replaced when dependencies are built.
