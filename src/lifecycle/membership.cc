#include "lifecycle/membership.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dicho::lifecycle {

namespace {
constexpr char kPrefix[] = "#cfg ";
}  // namespace

bool MembershipView::Contains(NodeId id) const {
  return std::binary_search(members.begin(), members.end(), id);
}

std::string FormatConfigChange(const ConfigChange& cc) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%s %u", kPrefix,
                cc.kind == ConfigChangeKind::kAddNode ? "add" : "rm",
                static_cast<unsigned>(cc.node));
  return buf;
}

bool IsConfigChangeCommand(const std::string& cmd) {
  return cmd.compare(0, sizeof(kPrefix) - 1, kPrefix) == 0;
}

bool ParseConfigChange(const std::string& cmd, ConfigChange* out) {
  if (!IsConfigChangeCommand(cmd)) return false;
  const char* rest = cmd.c_str() + sizeof(kPrefix) - 1;
  unsigned node = 0;
  if (std::sscanf(rest, "add %u", &node) == 1) {
    out->kind = ConfigChangeKind::kAddNode;
  } else if (std::sscanf(rest, "rm %u", &node) == 1) {
    out->kind = ConfigChangeKind::kRemoveNode;
  } else {
    return false;
  }
  out->node = static_cast<NodeId>(node);
  return true;
}

bool ApplyConfigChange(const ConfigChange& cc, std::vector<NodeId>* members) {
  auto it = std::lower_bound(members->begin(), members->end(), cc.node);
  bool present = it != members->end() && *it == cc.node;
  if (cc.kind == ConfigChangeKind::kAddNode) {
    if (present) return false;
    members->insert(it, cc.node);
  } else {
    if (!present) return false;
    members->erase(it);
  }
  return true;
}

bool IsSingleServerChange(const std::vector<NodeId>& from,
                          const std::vector<NodeId>& to) {
  // Both sorted: symmetric difference must be exactly one element.
  std::vector<NodeId> diff;
  std::set_symmetric_difference(from.begin(), from.end(), to.begin(), to.end(),
                                std::back_inserter(diff));
  return diff.size() == 1;
}

bool DisjointQuorumsPossible(const std::vector<NodeId>& a,
                             const std::vector<NodeId>& b) {
  std::vector<NodeId> inter, only_a, only_b;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(only_a));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(only_b));
  size_t ma = a.size() / 2 + 1;
  size_t mb = b.size() / 2 + 1;
  // Seat each majority out of its exclusive members first; the remainder
  // must come from the shared pool, without overlap.
  size_t need_a = ma > only_a.size() ? ma - only_a.size() : 0;
  size_t need_b = mb > only_b.size() ? mb - only_b.size() : 0;
  if (a.empty() || b.empty()) return false;
  return need_a + need_b <= inter.size();
}

}  // namespace dicho::lifecycle
