# Empty compiler generated dependencies file for fig10_opcount.
# This may be replaced when dependencies are built.
