#ifndef DICHO_TXN_OCC_H_
#define DICHO_TXN_OCC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/delta/delta_store.h"

namespace dicho::txn {

/// Version-stamped key-value state with optimistic validation — the commit
/// path of Fabric (and of Veritas/FalconDB): transactions record the version
/// of every key they read during simulation; at commit the versions are
/// checked against the current state, and any staleness aborts the
/// transaction (paper Section 3.2, Fig. 9's read-write conflicts).
class VersionedState {
 public:
  /// Missing keys read as version 0, empty value.
  void Get(const Slice& key, std::string* value, uint64_t* version) const;

  /// Checks every (key, version) pair against current state. On mismatch
  /// returns false and names the first conflicting key.
  bool Validate(const std::vector<std::pair<std::string, uint64_t>>& read_set,
                std::string* conflict_key) const;

  /// Applies writes, stamping each written key with `version` (typically the
  /// committing block height or a commit counter).
  void Apply(const std::vector<std::pair<std::string, std::string>>& writes,
             uint64_t version);

  size_t size() const { return state_.size(); }
  uint64_t DataBytes() const { return data_bytes_; }

  /// Routes every applied write through a content-addressed delta store
  /// (storage/delta): successive versions of a key are stored as deltas
  /// against their predecessor with periodic anchors, and identical values
  /// are deduplicated across keys. The in-memory map stays authoritative
  /// for reads/validation — the delta store is the modeled durable
  /// representation, and PhysicalBytes()/delta_stats() report what it
  /// actually holds. Call before the first Apply.
  void EnableDeltaBacking(storage::delta::DeltaStoreOptions options = {});
  bool delta_backed() const { return delta_ != nullptr; }
  const storage::delta::DeltaStoreStats* delta_stats() const {
    return delta_ == nullptr ? nullptr : &delta_->stats();
  }
  /// Durable bytes: delta-store physical bytes when delta-backed, else the
  /// logical map bytes (value bytes stored verbatim).
  uint64_t PhysicalBytes() const {
    return delta_ == nullptr ? data_bytes_ : delta_->stats().physical_bytes;
  }

 private:
  struct Entry {
    std::string value;
    uint64_t version = 0;
  };
  std::map<std::string, Entry> state_;
  uint64_t data_bytes_ = 0;
  std::unique_ptr<storage::delta::DeltaStore> delta_;
};

}  // namespace dicho::txn

#endif  // DICHO_TXN_OCC_H_
