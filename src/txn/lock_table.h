#ifndef DICHO_TXN_LOCK_TABLE_H_
#define DICHO_TXN_LOCK_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

namespace dicho::txn {

/// Exclusive per-key lock manager with wound-wait deadlock avoidance (the
/// Spanner-style pessimistic concurrency control contrasted with TiDB's
/// abort-fast OCC in the paper's Fig. 14 discussion):
///   - an older requester (smaller timestamp) *wounds* a younger holder —
///     the holder's wound callback fires and it must release and abort;
///   - a younger requester waits in the key's FIFO queue.
/// Waiting is asynchronous: the grant callback fires when the lock is
/// acquired (possibly immediately).
class LockTable {
 public:
  using GrantFn = std::function<void()>;
  using WoundFn = std::function<void()>;

  /// Registers a transaction before any Acquire; `priority_ts` orders age
  /// (smaller = older = higher priority), `wound` is invoked at most once if
  /// the transaction gets wounded.
  void RegisterTxn(uint64_t txn_id, uint64_t priority_ts, WoundFn wound);

  /// Requests the exclusive lock on `key`; `granted` runs when acquired.
  void Acquire(uint64_t txn_id, const std::string& key, GrantFn granted);

  /// Releases all locks held by the transaction and removes it from all
  /// wait queues; waiting requests may be granted as a result. Also
  /// unregisters the transaction.
  void ReleaseAll(uint64_t txn_id);

  bool IsHeldBy(const std::string& key, uint64_t txn_id) const;
  uint64_t waits() const { return waits_; }
  uint64_t wounds() const { return wounds_; }
  size_t locked_keys() const { return holders_.size(); }

 private:
  struct Waiter {
    uint64_t txn_id;
    GrantFn granted;
  };
  struct TxnInfo {
    uint64_t priority_ts;
    WoundFn wound;
    bool wounded = false;
    std::set<std::string> held;
  };

  void GrantNext(const std::string& key);

  std::map<uint64_t, TxnInfo> txns_;
  std::map<std::string, uint64_t> holders_;          // key -> txn
  std::map<std::string, std::deque<Waiter>> queues_;  // key -> waiters
  uint64_t waits_ = 0;
  uint64_t wounds_ = 0;
};

}  // namespace dicho::txn

#endif  // DICHO_TXN_LOCK_TABLE_H_
