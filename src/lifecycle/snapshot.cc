#include "lifecycle/snapshot.h"

#include <cstring>

namespace dicho::lifecycle {

bool ChunkStore::Put(const crypto::Digest& digest, std::string bytes) {
  auto key = crypto::DigestBytes(digest);
  auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    ++dedup_hits_;
    return false;
  }
  bytes_stored_ += bytes.size();
  chunks_.emplace(std::move(key), std::move(bytes));
  return true;
}

const std::string* ChunkStore::Get(const crypto::Digest& digest) const {
  auto it = chunks_.find(crypto::DigestBytes(digest));
  return it == chunks_.end() ? nullptr : &it->second;
}

bool ChunkStore::Has(const crypto::Digest& digest) const {
  return chunks_.count(crypto::DigestBytes(digest)) > 0;
}

crypto::Digest ManifestRoot(const SnapshotManifest& m) {
  crypto::Sha256 h;
  uint8_t anchor[8];
  for (int i = 0; i < 8; ++i) anchor[i] = (m.anchor >> (8 * i)) & 0xff;
  h.Update(anchor, sizeof(anchor));
  for (const auto& d : m.chunks) h.Update(d.data(), d.size());
  return h.Finish();
}

size_t BucketOf(const std::string& key, size_t buckets) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return buckets == 0 ? 0 : static_cast<size_t>(hash % buckets);
}

namespace {
void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}
bool ReadU32(Slice* in, uint32_t* v) {
  if (in->size() < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i)
    *v |= static_cast<uint32_t>(static_cast<unsigned char>((*in)[i])) << (8 * i);
  in->RemovePrefix(4);
  return true;
}
}  // namespace

std::string EncodeChunk(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(entries.size()));
  for (const auto& [k, v] : entries) {
    AppendU32(&out, static_cast<uint32_t>(k.size()));
    out.append(k);
    AppendU32(&out, static_cast<uint32_t>(v.size()));
    out.append(v);
  }
  return out;
}

bool DecodeChunk(const Slice& bytes,
                 std::vector<std::pair<std::string, std::string>>* out) {
  Slice in = bytes;
  uint32_t count = 0;
  if (!ReadU32(&in, &count)) return false;
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t klen = 0, vlen = 0;
    if (!ReadU32(&in, &klen) || in.size() < klen) return false;
    std::string k(in.data(), klen);
    in.RemovePrefix(klen);
    if (!ReadU32(&in, &vlen) || in.size() < vlen) return false;
    std::string v(in.data(), vlen);
    in.RemovePrefix(vlen);
    out->emplace_back(std::move(k), std::move(v));
  }
  return in.empty();
}

SnapshotManifest BuildSnapshot(const std::map<std::string, std::string>& state,
                               uint64_t anchor, const SnapshotConfig& config,
                               ChunkStore* store) {
  std::vector<std::vector<std::pair<std::string, std::string>>> buckets(
      config.buckets == 0 ? 1 : config.buckets);
  for (const auto& [k, v] : state)
    buckets[BucketOf(k, buckets.size())].emplace_back(k, v);

  SnapshotManifest m;
  m.anchor = anchor;
  for (const auto& bucket : buckets) {
    if (bucket.empty()) continue;  // state map iterates sorted, so this is
                                   // deterministic per bucket population
    std::string bytes = EncodeChunk(bucket);
    crypto::Digest d = crypto::Sha256Of(bytes);
    store->Put(d, std::move(bytes));
    m.chunks.push_back(d);
  }
  m.root = ManifestRoot(m);
  return m;
}

bool RestoreSnapshot(const SnapshotManifest& m, const ChunkStore& store,
                     std::map<std::string, std::string>* out) {
  out->clear();
  for (const auto& d : m.chunks) {
    const std::string* bytes = store.Get(d);
    if (bytes == nullptr) return false;
    if (crypto::Sha256Of(*bytes) != d) return false;
    std::vector<std::pair<std::string, std::string>> entries;
    if (!DecodeChunk(*bytes, &entries)) return false;
    for (auto& [k, v] : entries) (*out)[std::move(k)] = std::move(v);
  }
  return true;
}

crypto::Digest StateDigest(const std::map<std::string, std::string>& state) {
  crypto::Sha256 h;
  for (const auto& [k, v] : state) {
    uint32_t klen = static_cast<uint32_t>(k.size());
    uint32_t vlen = static_cast<uint32_t>(v.size());
    h.Update(reinterpret_cast<const uint8_t*>(&klen), sizeof(klen));
    h.Update(k);
    h.Update(reinterpret_cast<const uint8_t*>(&vlen), sizeof(vlen));
    h.Update(v);
  }
  return h.Finish();
}

}  // namespace dicho::lifecycle
