#include "contract/contract.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace dicho::contract {
namespace {

/// StateView over a plain map for contract unit tests.
class MapView : public StateView {
 public:
  explicit MapView(std::map<std::string, std::string>* state)
      : state_(state) {}
  Status Get(const Slice& key, std::string* value) override {
    auto it = state_->find(key.ToString());
    if (it == state_->end()) return Status::NotFound();
    *value = it->second;
    return Status::Ok();
  }

 private:
  std::map<std::string, std::string>* state_;
};

void ApplyWrites(std::map<std::string, std::string>* state,
                 const WriteSet& writes) {
  for (const auto& [k, v] : writes) (*state)[k] = v;
}

core::TxnRequest SmallbankReq(const std::string& method,
                              std::vector<std::string> args) {
  core::TxnRequest req;
  req.contract = "smallbank";
  req.method = method;
  req.args = std::move(args);
  return req;
}

TEST(KvContractTest, ExecutesOps) {
  std::map<std::string, std::string> state{{"a", "1"}};
  MapView view(&state);
  KvContract contract;

  core::TxnRequest req;
  req.ops = {{core::OpType::kRead, "a", ""},
             {core::OpType::kWrite, "b", "2"},
             {core::OpType::kReadModifyWrite, "a", "9"}};
  WriteSet writes;
  std::map<std::string, std::string> reads;
  ASSERT_TRUE(contract.Execute(req, &view, &writes, &reads).ok());
  EXPECT_EQ(reads["a"], "1");
  ASSERT_EQ(writes.size(), 2u);
  ApplyWrites(&state, writes);
  EXPECT_EQ(state["b"], "2");
  EXPECT_EQ(state["a"], "9");
}

TEST(KvContractTest, ExecCostScalesWithOps) {
  KvContract contract;
  sim::CostModel costs;
  core::TxnRequest one, ten;
  one.ops.resize(1);
  ten.ops.resize(10);
  EXPECT_GT(contract.ExecCost(ten, costs), contract.ExecCost(one, costs) * 5);
}

class SmallbankTest : public ::testing::Test {
 protected:
  void Seed(const std::string& cust, int64_t chk, int64_t sav) {
    state_[SmallbankContract::CheckingKey(cust)] =
        SmallbankContract::EncodeBalance(chk);
    state_[SmallbankContract::SavingsKey(cust)] =
        SmallbankContract::EncodeBalance(sav);
  }
  int64_t Checking(const std::string& cust) {
    return SmallbankContract::DecodeBalance(
        state_[SmallbankContract::CheckingKey(cust)]);
  }
  int64_t Savings(const std::string& cust) {
    return SmallbankContract::DecodeBalance(
        state_[SmallbankContract::SavingsKey(cust)]);
  }
  Status Run(const std::string& method, std::vector<std::string> args) {
    MapView view(&state_);
    WriteSet writes;
    Status s = contract_.Execute(SmallbankReq(method, std::move(args)), &view,
                                 &writes, nullptr);
    if (s.ok()) ApplyWrites(&state_, writes);
    return s;
  }

  std::map<std::string, std::string> state_;
  SmallbankContract contract_;
};

TEST_F(SmallbankTest, DepositChecking) {
  Seed("alice", 1000, 500);
  ASSERT_TRUE(Run("deposit_checking", {"alice", "250"}).ok());
  EXPECT_EQ(Checking("alice"), 1250);
}

TEST_F(SmallbankTest, TransactSavingsRejectsOverdraw) {
  Seed("alice", 1000, 500);
  EXPECT_TRUE(Run("transact_savings", {"alice", "-600"}).IsAborted());
  EXPECT_EQ(Savings("alice"), 500);  // unchanged
  ASSERT_TRUE(Run("transact_savings", {"alice", "-500"}).ok());
  EXPECT_EQ(Savings("alice"), 0);
}

TEST_F(SmallbankTest, WriteCheckAppliesOverdraftPenalty) {
  Seed("bob", 100, 50);
  // Within funds: no penalty.
  ASSERT_TRUE(Run("write_check", {"bob", "120"}).ok());
  EXPECT_EQ(Checking("bob"), -20);
  // Beyond total funds: $1 (100 cents) penalty.
  Seed("carl", 100, 50);
  ASSERT_TRUE(Run("write_check", {"carl", "200"}).ok());
  EXPECT_EQ(Checking("carl"), 100 - 200 - 100);
}

TEST_F(SmallbankTest, SendPaymentMovesMoneyAtomically) {
  Seed("alice", 1000, 0);
  Seed("bob", 200, 0);
  ASSERT_TRUE(Run("send_payment", {"alice", "bob", "300"}).ok());
  EXPECT_EQ(Checking("alice"), 700);
  EXPECT_EQ(Checking("bob"), 500);
}

TEST_F(SmallbankTest, SendPaymentRejectsInsufficientFunds) {
  Seed("alice", 100, 0);
  Seed("bob", 0, 0);
  EXPECT_TRUE(Run("send_payment", {"alice", "bob", "300"}).IsAborted());
  EXPECT_EQ(Checking("alice"), 100);
  EXPECT_EQ(Checking("bob"), 0);
}

TEST_F(SmallbankTest, AmalgamateZeroesSourceAccounts) {
  Seed("alice", 300, 700);
  Seed("bob", 50, 0);
  ASSERT_TRUE(Run("amalgamate", {"alice", "bob"}).ok());
  EXPECT_EQ(Checking("alice"), 0);
  EXPECT_EQ(Savings("alice"), 0);
  EXPECT_EQ(Checking("bob"), 1050);
}

TEST_F(SmallbankTest, BalanceReadsBoth) {
  Seed("alice", 42, 43);
  MapView view(&state_);
  WriteSet writes;
  std::map<std::string, std::string> reads;
  ASSERT_TRUE(contract_
                  .Execute(SmallbankReq("balance", {"alice"}), &view, &writes,
                           &reads)
                  .ok());
  EXPECT_TRUE(writes.empty());
  EXPECT_EQ(reads.size(), 2u);
}

TEST_F(SmallbankTest, UnknownMethodRejected) {
  EXPECT_EQ(Run("rob_bank", {"alice"}).code(), StatusCode::kNotSupported);
}

TEST_F(SmallbankTest, MoneyConservedUnderRandomWorkload) {
  // Conservation invariant: total money only changes via deposits and
  // overdraft penalties — never by send_payment or amalgamate.
  Seed("a", 10000, 5000);
  Seed("b", 10000, 5000);
  Seed("c", 10000, 5000);
  int64_t total = 45000;
  Rng rng(77);
  for (int i = 0; i < 500; i++) {
    const char* custs[] = {"a", "b", "c"};
    std::string c1 = custs[rng.Uniform(3)];
    std::string c2 = custs[rng.Uniform(3)];
    if (c1 == c2) continue;
    std::string amount = std::to_string(rng.Uniform(500));
    switch (rng.Uniform(2)) {
      case 0:
        Run("send_payment", {c1, c2, amount});
        break;
      case 1:
        Run("amalgamate", {c1, c2});
        break;
    }
  }
  int64_t after = Checking("a") + Savings("a") + Checking("b") + Savings("b") +
                  Checking("c") + Savings("c");
  EXPECT_EQ(after, total);
}

TEST(ContractRegistryTest, DefaultHasBuiltins) {
  auto registry = ContractRegistry::CreateDefault();
  EXPECT_NE(registry->Lookup("ycsb"), nullptr);
  EXPECT_NE(registry->Lookup("smallbank"), nullptr);
  EXPECT_EQ(registry->Lookup("nope"), nullptr);
}

}  // namespace
}  // namespace dicho::contract
