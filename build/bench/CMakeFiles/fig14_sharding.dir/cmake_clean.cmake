file(REMOVE_RECURSE
  "CMakeFiles/fig14_sharding.dir/fig14_sharding.cc.o"
  "CMakeFiles/fig14_sharding.dir/fig14_sharding.cc.o.d"
  "fig14_sharding"
  "fig14_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
