#include "sim/network.h"

namespace dicho::sim {

namespace {
constexpr int kNoGroup = -1;
}

void SimNetwork::SyncPartitions() {
  while (shards_.size() < sim_->num_partitions()) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void SimNetwork::Send(NodeId from, NodeId to, uint64_t size_bytes,
                      EventFn handler) {
  Shard& shard = ShardForNode(from);
  shard.messages_sent++;
  shard.bytes_sent += size_bytes;
  shard.bytes_by_sender[from] += size_bytes;

  if (IsDown(from)) return;  // sender crashed mid-send: message lost
  if (config_.drop_rate > 0 && sim_->rng()->Bernoulli(config_.drop_rate)) {
    return;
  }

  // Serialize on the sender's NIC: transmission begins when the uplink
  // frees up and occupies it for size/bandwidth.
  const Time now = sim_->Now();
  Time transmit = static_cast<Time>(size_bytes) / config_.bandwidth_bytes_per_us;
  Time& egress = shard.egress_busy_until[from];
  Time start = egress > now ? egress : now;
  egress = start + transmit;
  Time delay = (egress - now) + config_.base_latency_us;
  if (config_.jitter_us > 0) {
    delay += sim_->rng()->NextDouble() * config_.jitter_us;
  }

  // Partition and crash state are re-checked at delivery time so that messages
  // in flight when a failure is injected are affected too. The arrival runs on
  // the destination node's partition; base_latency_us keeps it at or past the
  // conservative lookahead horizon.
  sim_->ScheduleOnPartitionAt(
      sim_->PartitionOfNode(to), now + delay,
      [this, from, to, handler = std::move(handler)]() mutable {
        if (IsDown(to)) return;
        if (!CanCommunicate(from, to)) return;
        ShardForNode(to).messages_delivered++;
        handler();
      });
}

void SimNetwork::SetNodeDown(NodeId node, bool down) {
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

void SimNetwork::Partition(const std::vector<std::vector<NodeId>>& groups) {
  partitioned_ = true;
  group_of_.clear();
  for (size_t g = 0; g < groups.size(); g++) {
    for (NodeId n : groups[g]) {
      if (group_of_.size() <= n) group_of_.resize(n + 1, kNoGroup);
      group_of_[n] = static_cast<int>(g);
    }
  }
}

void SimNetwork::HealPartition() {
  partitioned_ = false;
  group_of_.clear();
}

uint64_t SimNetwork::messages_sent() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->messages_sent;
  return n;
}

uint64_t SimNetwork::messages_delivered() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->messages_delivered;
  return n;
}

uint64_t SimNetwork::bytes_sent() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->bytes_sent;
  return n;
}

std::map<NodeId, uint64_t> SimNetwork::bytes_by_sender() const {
  std::map<NodeId, uint64_t> out;
  for (const auto& s : shards_) {
    for (const auto& [node, bytes] : s->bytes_by_sender) out[node] += bytes;
  }
  return out;
}

Time SimNetwork::EgressBacklog(NodeId node) const {
  const Shard* shard = ShardOfNode(node);
  if (shard == nullptr) return 0;
  auto it = shard->egress_busy_until.find(node);
  if (it == shard->egress_busy_until.end() || it->second <= sim_->Now()) {
    return 0;
  }
  return it->second - sim_->Now();
}

bool SimNetwork::CanCommunicate(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  int ga = a < group_of_.size() ? group_of_[a] : kNoGroup;
  int gb = b < group_of_.size() ? group_of_[b] : kNoGroup;
  if (ga == kNoGroup || gb == kNoGroup) return true;
  return ga == gb;
}

}  // namespace dicho::sim
