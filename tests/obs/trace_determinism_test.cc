// Trace determinism (the property that makes traces diffable and the
// golden suite meaningful): the same seed must produce a byte-identical
// Chrome trace JSON on every run, and running traced worlds through the
// parallel sweep harness at any DICHO_BENCH_THREADS must produce exactly
// the serial bytes — each world is sealed, so emission order is a pure
// function of the seed.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "bench/parallel.h"

namespace dicho::bench {
namespace {

/// Builds a sealed traced world, drives a short mixed YCSB run on etcd, and
/// returns the rendered trace. Everything (sim seed, workload seed, config)
/// is pinned, so this is a pure function of `seed`.
std::string TraceJsonFor(uint64_t seed) {
  World w(seed);
  w.EnableObservability();
  auto system = MakeEtcd(&w, 3);
  workload::YcsbConfig wcfg;
  wcfg.record_size = 100;
  wcfg.ops_per_txn = 1;  // etcd rejects multi-op requests
  BenchScale scale;
  scale.record_count = 200;
  scale.warmup = 0.5 * sim::kSec;
  scale.measure = 1.5 * sim::kSec;
  scale.clients = 8;
  RunYcsb(&w, system.get(), wcfg, scale, /*query_fraction=*/0.25,
          /*arrival_rate=*/300);
  return w.trace.ToChromeJson();
}

/// Scoped override of DICHO_BENCH_THREADS (same helper pattern as the sweep
/// determinism suite; restores the previous value on scope exit).
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("DICHO_BENCH_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      setenv("DICHO_BENCH_THREADS", value, /*overwrite=*/1);
    } else {
      unsetenv("DICHO_BENCH_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      setenv("DICHO_BENCH_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("DICHO_BENCH_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(TraceDeterminismTest, SameSeedProducesByteIdenticalTrace) {
  const std::string first = TraceJsonFor(42);
  const std::string second = TraceJsonFor(42);
  ASSERT_GT(first.size(), 100u) << "trace suspiciously empty";
  EXPECT_EQ(first, second);
}

TEST(TraceDeterminismTest, DifferentSeedsProduceDifferentTraces) {
  // Sanity check that the byte comparison above is not vacuous.
  EXPECT_NE(TraceJsonFor(42), TraceJsonFor(43));
}

TEST(TraceDeterminismTest, ByteIdenticalAcrossSweepThreadCounts) {
  const std::vector<uint64_t> seeds = {1, 2, 3, 4};
  auto run = [](const uint64_t& seed) { return TraceJsonFor(seed); };

  std::vector<std::string> serial;
  std::vector<std::string> threaded;
  std::vector<std::string> inherited;
  {
    ScopedThreadsEnv env("1");
    serial = RunSweep(seeds, run);
  }
  {
    ScopedThreadsEnv env("3");
    threaded = RunSweep(seeds, run);
  }
  {
    ScopedThreadsEnv env(nullptr);  // harness default
    inherited = RunSweep(seeds, run);
  }
  ASSERT_EQ(serial.size(), seeds.size());
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(serial, inherited);
  // And the sweep result equals the plain serial loop.
  for (size_t i = 0; i < seeds.size(); i++) {
    EXPECT_EQ(serial[i], TraceJsonFor(seeds[i])) << "seed " << seeds[i];
  }
}

}  // namespace
}  // namespace dicho::bench
