#ifndef DICHO_COMMON_STATUS_H_
#define DICHO_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dicho {

/// Error category returned by fallible operations across the library.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kCorruption,
  kInvalidArgument,
  kAborted,          // transaction aborted (conflict, stale read, ...)
  kConflict,         // write-write / read-write conflict detected
  kUnavailable,      // no quorum / leader unknown / partitioned
  kTimedOut,
  kNotSupported,
  kAlreadyExists,
  kIoError,
  kInternal,
};

/// Returns a short human-readable name such as "NotFound".
const char* StatusCodeName(StatusCode code);

/// Status carries the outcome of an operation: an OK singleton or an error
/// code plus message. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Conflict(std::string m = "") {
    return Status(StatusCode::kConflict, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status TimedOut(std::string m = "") {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status NotSupported(std::string m = "") {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status AlreadyExists(std::string m = "") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status IoError(std::string m = "") {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is a Status or a value; the database-style alternative to
/// exceptions (which this codebase does not use).
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  T& value() { return value_; }
  const T& value() const { return value_; }
  T&& TakeValue() { return std::move(value_); }

  /// value() if ok, otherwise `fallback`.
  T ValueOr(T fallback) const { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

}  // namespace dicho

#endif  // DICHO_COMMON_STATUS_H_
