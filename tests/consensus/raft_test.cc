#include "consensus/raft.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace dicho::consensus {
namespace {

struct RaftHarness {
  explicit RaftHarness(size_t n, uint64_t seed = 42)
      : sim(seed), net(&sim, sim::NetworkConfig{}) {
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < n; i++) ids.push_back(i);
    cluster = RaftCluster::Create(
        &sim, &net, &costs, ids, RaftConfig{},
        [this](NodeId node, uint64_t index, const std::string& cmd) {
          applied[node].push_back({index, cmd});
        });
    cluster->StartAll();
  }

  RaftNode* WaitForLeader(sim::Time limit = 5 * sim::kSec) {
    sim::Time deadline = sim.Now() + limit;
    while (sim.Now() < deadline) {
      sim.RunFor(10 * sim::kMs);
      if (RaftNode* l = cluster->leader()) return l;
    }
    return nullptr;
  }

  /// Checks the State Machine Safety property: no two nodes applied
  /// different commands at the same index.
  void CheckNoDivergence() {
    std::map<uint64_t, std::string> canonical;
    for (const auto& [node, entries] : applied) {
      for (const auto& [index, cmd] : entries) {
        auto [it, inserted] = canonical.emplace(index, cmd);
        EXPECT_EQ(it->second, cmd)
            << "divergence at index " << index << " on node " << node;
      }
    }
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  sim::CostModel costs;
  std::unique_ptr<RaftCluster> cluster;
  std::map<NodeId, std::vector<std::pair<uint64_t, std::string>>> applied;
};

TEST(RaftTest, ElectsExactlyOneLeader) {
  RaftHarness h(5);
  RaftNode* leader = h.WaitForLeader();
  ASSERT_NE(leader, nullptr);
  int leaders = 0;
  for (RaftNode* n : h.cluster->all()) {
    if (n->IsLeader()) leaders++;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftTest, CommitsAndAppliesEverywhere) {
  RaftHarness h(3);
  RaftNode* leader = h.WaitForLeader();
  ASSERT_NE(leader, nullptr);

  int committed = 0;
  for (int i = 0; i < 10; i++) {
    leader->Propose("cmd" + std::to_string(i), [&](Status s, uint64_t) {
      if (s.ok()) committed++;
    });
  }
  h.sim.RunFor(2 * sim::kSec);
  EXPECT_EQ(committed, 10);
  for (RaftNode* n : h.cluster->all()) {
    EXPECT_EQ(h.applied[n->id()].size(), 10u) << "node " << n->id();
  }
  h.CheckNoDivergence();
  // Entries applied in order with the right contents.
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(h.applied[0][i].second, "cmd" + std::to_string(i));
  }
}

TEST(RaftTest, ProposeOnFollowerFails) {
  RaftHarness h(3);
  RaftNode* leader = h.WaitForLeader();
  ASSERT_NE(leader, nullptr);
  RaftNode* follower = nullptr;
  for (RaftNode* n : h.cluster->all()) {
    if (!n->IsLeader()) follower = n;
  }
  ASSERT_NE(follower, nullptr);
  bool called = false;
  follower->Propose("x", [&](Status s, uint64_t) {
    called = true;
    EXPECT_TRUE(s.IsUnavailable());
  });
  EXPECT_TRUE(called);
}

TEST(RaftTest, FailsOverAfterLeaderCrash) {
  RaftHarness h(5);
  RaftNode* leader = h.WaitForLeader();
  ASSERT_NE(leader, nullptr);

  int committed = 0;
  for (int i = 0; i < 5; i++) {
    leader->Propose("before" + std::to_string(i),
                    [&](Status s, uint64_t) { committed += s.ok(); });
  }
  h.sim.RunFor(2 * sim::kSec);
  EXPECT_EQ(committed, 5);

  NodeId old_leader = leader->id();
  leader->Crash();
  RaftNode* new_leader = h.WaitForLeader(10 * sim::kSec);
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->id(), old_leader);

  new_leader->Propose("after", [&](Status s, uint64_t) { committed += s.ok(); });
  h.sim.RunFor(2 * sim::kSec);
  EXPECT_EQ(committed, 6);
  h.CheckNoDivergence();
}

TEST(RaftTest, CommittedEntriesSurviveFailover) {
  RaftHarness h(5);
  RaftNode* leader = h.WaitForLeader();
  ASSERT_NE(leader, nullptr);
  leader->Propose("durable", [](Status, uint64_t) {});
  h.sim.RunFor(2 * sim::kSec);

  leader->Crash();
  RaftNode* new_leader = h.WaitForLeader(10 * sim::kSec);
  ASSERT_NE(new_leader, nullptr);
  ASSERT_GE(new_leader->commit_index(), 1u);
  EXPECT_EQ(new_leader->CommittedEntry(1), "durable");
}

TEST(RaftTest, MinorityPartitionCannotCommit) {
  RaftHarness h(5);
  RaftNode* leader = h.WaitForLeader();
  ASSERT_NE(leader, nullptr);
  NodeId lid = leader->id();

  // Isolate the leader with one other node (minority side).
  std::vector<NodeId> minority{lid, (lid + 1) % 5};
  std::vector<NodeId> majority;
  for (NodeId i = 0; i < 5; i++) {
    if (i != minority[0] && i != minority[1]) majority.push_back(i);
  }
  h.net.Partition({minority, majority});

  bool minority_committed = false;
  leader->Propose("lost", [&](Status s, uint64_t) {
    if (s.ok()) minority_committed = true;
  });
  h.sim.RunFor(3 * sim::kSec);
  EXPECT_FALSE(minority_committed);

  // Majority elects a fresh leader and commits.
  RaftNode* new_leader = nullptr;
  for (NodeId id : majority) {
    if (h.cluster->node(id)->IsLeader()) new_leader = h.cluster->node(id);
  }
  ASSERT_NE(new_leader, nullptr);
  bool majority_committed = false;
  new_leader->Propose("win", [&](Status s, uint64_t) {
    majority_committed = s.ok();
  });
  h.sim.RunFor(2 * sim::kSec);
  EXPECT_TRUE(majority_committed);

  // Heal: the old leader steps down and converges; no divergence.
  h.net.HealPartition();
  h.sim.RunFor(3 * sim::kSec);
  h.CheckNoDivergence();
  EXPECT_FALSE(h.cluster->node(lid)->IsLeader());
}

TEST(RaftTest, RestartedNodeCatchesUp) {
  RaftHarness h(3);
  RaftNode* leader = h.WaitForLeader();
  ASSERT_NE(leader, nullptr);
  RaftNode* victim = nullptr;
  for (RaftNode* n : h.cluster->all()) {
    if (!n->IsLeader()) victim = n;
  }
  victim->Crash();

  for (int i = 0; i < 5; i++) {
    leader->Propose("while-down" + std::to_string(i), [](Status, uint64_t) {});
  }
  h.sim.RunFor(2 * sim::kSec);

  victim->Restart();
  h.sim.RunFor(3 * sim::kSec);
  EXPECT_GE(h.applied[victim->id()].size(), 5u);
  h.CheckNoDivergence();
}

// Property sweep: randomized crash/restart schedules across cluster sizes;
// Raft's State Machine Safety must hold in every run.
class RaftChaosSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RaftChaosSweep, SafetyUnderRandomCrashes) {
  auto [n, seed] = GetParam();
  RaftHarness h(n, seed);
  Rng chaos(seed * 31);

  int proposed = 0;
  for (int round = 0; round < 30; round++) {
    h.sim.RunFor(200 * sim::kMs);
    // Random crash/restart, keeping a majority alive.
    int down = 0;
    for (RaftNode* node : h.cluster->all()) {
      if (node->crashed()) down++;
    }
    if (chaos.Bernoulli(0.3) && down < (n - 1) / 2) {
      RaftNode* victim = h.cluster->all()[chaos.Uniform(n)];
      if (!victim->crashed()) victim->Crash();
    }
    if (chaos.Bernoulli(0.3)) {
      RaftNode* back = h.cluster->all()[chaos.Uniform(n)];
      if (back->crashed()) back->Restart();
    }
    if (RaftNode* leader = h.cluster->leader()) {
      leader->Propose("p" + std::to_string(proposed++), [](Status, uint64_t) {});
    }
  }
  for (RaftNode* node : h.cluster->all()) {
    if (node->crashed()) node->Restart();
  }
  h.sim.RunFor(5 * sim::kSec);
  h.CheckNoDivergence();

  // Log Matching: all live nodes agree on the committed prefix.
  uint64_t min_commit = UINT64_MAX;
  for (RaftNode* node : h.cluster->all()) {
    min_commit = std::min(min_commit, node->commit_index());
  }
  ASSERT_GT(min_commit, 0u);
  for (uint64_t i = 1; i <= min_commit; i++) {
    std::string expected = h.cluster->all()[0]->CommittedEntry(i);
    for (RaftNode* node : h.cluster->all()) {
      EXPECT_EQ(node->CommittedEntry(i), expected) << "index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, RaftChaosSweep,
    ::testing::Values(std::make_tuple(3, 1ull), std::make_tuple(3, 2ull),
                      std::make_tuple(5, 3ull), std::make_tuple(5, 4ull),
                      std::make_tuple(5, 5ull), std::make_tuple(7, 6ull)));

TEST(RaftTest, DeterministicReplay) {
  auto run = [](uint64_t seed) {
    RaftHarness h(5, seed);
    RaftNode* leader = h.WaitForLeader();
    if (leader == nullptr) return std::string("no-leader");
    for (int i = 0; i < 20; i++) {
      leader->Propose("cmd" + std::to_string(i), [](Status, uint64_t) {});
    }
    h.sim.RunFor(3 * sim::kSec);
    std::string trace;
    for (const auto& [index, cmd] : h.applied[0]) {
      trace += std::to_string(index) + ":" + cmd + ";";
    }
    trace += "t=" + std::to_string(h.sim.executed_events());
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
}

}  // namespace
}  // namespace dicho::consensus
