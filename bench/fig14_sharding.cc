// Reproduces Fig. 14: sharded systems under a skewed (theta = 1) workload
// of two-record transactions, 3 nodes per shard, scaling the node count.
//
// Paper shapes: TiDB > Spanner (abort-fast OCC beats lock-waiting under
// contention); AHL is far behind both (PBFT per shard + BFT 2PC); periodic
// shard reconfiguration costs AHL a further ~30%.

#include "bench_util.h"

namespace dicho::bench {
namespace {

constexpr uint64_t kRecords = 20000;

workload::YcsbConfig TwoRecordSkewed() {
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  wcfg.theta = 1.0;
  wcfg.ops_per_txn = 2;
  return wcfg;
}

template <typename System>
double Measure(World* w, System* system, size_t clients = 256) {
  workload::YcsbConfig wcfg = TwoRecordSkewed();
  wcfg.record_count = kRecords;
  workload::YcsbWorkload workload(wcfg, 7);
  LoadYcsb(system, &workload, kRecords);
  workload::DriverConfig dcfg;
  dcfg.num_clients = clients;
  dcfg.warmup = 3 * sim::kSec;
  dcfg.measure = 10 * sim::kSec;
  workload::Driver driver(&w->sim, system,
                          [&workload] { return workload.NextTxn(); }, dcfg);
  return driver.Run().throughput_tps;
}

void Run() {
  PrintHeader(
      "Fig 14: sharded systems, theta=1, 2-record txns, 3 nodes/shard");
  const uint32_t kShards[] = {2, 4, 6};
  printf("%-12s", "system");
  for (uint32_t s : kShards) printf("  %2u shards", s);
  printf("\n");

  printf("%-12s", "tidb");
  for (uint32_t shards : kShards) {
    World w;
    // Sharded mode: replication factor 3 instead of full replication.
    auto tidb = MakeTidb(&w, shards, shards * 3, /*replication=*/3);
    printf(" %10.0f", Measure(&w, tidb.get()));
    fflush(stdout);
  }
  printf("\n%-12s", "spanner");
  for (uint32_t shards : kShards) {
    World w;
    systems::SpannerConfig config;
    config.num_shards = shards;
    auto spanner = std::make_unique<systems::SpannerLikeSystem>(
        &w.sim, &w.net, &w.costs, config);
    printf(" %10.0f", Measure(&w, spanner.get()));
    fflush(stdout);
  }
  printf("\n%-12s", "ahl-fixed");
  for (uint32_t shards : kShards) {
    World w;
    systems::AhlConfig config;
    config.num_shards = shards;
    config.epoch = 0;  // no reconfiguration
    auto ahl = std::make_unique<systems::AhlSystem>(&w.sim, &w.net, &w.costs,
                                                    config);
    ahl->Start();
    w.sim.RunFor(500 * sim::kMs);
    printf(" %10.0f", Measure(&w, ahl.get(), /*clients=*/128));
    fflush(stdout);
  }
  printf("\n%-12s", "ahl-reconf");
  for (uint32_t shards : kShards) {
    World w;
    systems::AhlConfig config;
    config.num_shards = shards;
    config.epoch = 7 * sim::kSec;
    config.reconfig_pause = 3 * sim::kSec;
    auto ahl = std::make_unique<systems::AhlSystem>(&w.sim, &w.net, &w.costs,
                                                    config);
    ahl->Start();
    w.sim.RunFor(500 * sim::kMs);
    printf(" %10.0f", Measure(&w, ahl.get(), /*clients=*/128));
    fflush(stdout);
  }
  printf("\n");
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
