#ifndef DICHO_LEDGER_LEDGER_H_
#define DICHO_LEDGER_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace dicho::ledger {

/// A transaction as recorded on the ledger: the full client request plus
/// replication-level context (signatures, read/write sets, validity). This
/// is the paper's "transaction-based replication" unit — the ledger keeps
/// enough application-level information to re-verify execution (Section
/// 3.1.1), which is also why it costs so much more storage than a database
/// (Fig. 12).
struct LedgerTxn {
  uint64_t txn_id = 0;
  uint64_t client_id = 0;
  std::string payload;          // serialized TxnRequest
  std::string client_signature; // 32B in our scheme
  /// Endorsement signatures (Fabric) or empty (order-execute chains).
  std::vector<std::pair<uint64_t, std::string>> endorsements;
  /// MVCC read set: key -> version observed during simulation.
  std::vector<std::pair<std::string, uint64_t>> read_set;
  /// Write set applied on commit.
  std::vector<std::pair<std::string, std::string>> write_set;
  bool valid = true;  // set false by validation (aborted txns stay on chain)

  std::string Serialize() const;
  static bool Deserialize(const std::string& data, LedgerTxn* out);
  /// Exact Serialize().size() computed arithmetically — no allocation, no
  /// byte copying (a hot-path cost on every block append; pinned to the
  /// wire format by a ledger test).
  uint64_t ByteSize() const;
};

struct BlockHeader {
  uint64_t number = 0;
  crypto::Digest parent = crypto::ZeroDigest();
  crypto::Digest txn_root = crypto::ZeroDigest();   // Merkle root over txns
  crypto::Digest state_digest = crypto::ZeroDigest();  // after applying block
  uint64_t timestamp_us = 0;

  std::string Serialize() const;
  crypto::Digest Hash() const { return crypto::Sha256Of(Serialize()); }
};

struct Block {
  BlockHeader header;
  std::vector<LedgerTxn> txns;

  /// Recomputes header.txn_root from the transactions.
  void SealTxnRoot();
  std::string Serialize() const;
  static bool Deserialize(const std::string& data, Block* out);
  /// Exact Serialize().size() without serializing (see LedgerTxn::ByteSize).
  uint64_t ByteSize() const;
};

/// The append-only hash-linked chain of blocks. Verify() recomputes every
/// hash link and Merkle root, so any bit flipped anywhere in history is
/// detected — the tamper-evidence property databases lack (Section 3.3.1).
class Chain {
 public:
  Chain() = default;

  /// Appends after checking the parent link and txn root. The genesis block
  /// (number 0) must have a zero parent.
  Status Append(Block block);

  uint64_t height() const { return blocks_.size(); }
  const Block& block(uint64_t number) const { return blocks_[number]; }
  crypto::Digest TipDigest() const;

  /// Full-chain integrity check.
  Status Verify() const;

  /// Merkle inclusion proof that `txn_index` of `block_number` is on chain.
  Result<crypto::MerkleProof> ProveTxn(uint64_t block_number,
                                       uint64_t txn_index) const;

  /// Ledger storage consumed (Fig. 12's "block storage").
  uint64_t TotalBytes() const { return total_bytes_; }
  uint64_t TotalTxns() const { return total_txns_; }

  /// TESTING ONLY: direct mutable access used by tamper-detection tests.
  Block* MutableBlockForTest(uint64_t number) { return &blocks_[number]; }

 private:
  std::vector<Block> blocks_;
  uint64_t total_bytes_ = 0;
  uint64_t total_txns_ = 0;
};

}  // namespace dicho::ledger

#endif  // DICHO_LEDGER_LEDGER_H_
