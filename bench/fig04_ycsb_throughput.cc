// Reproduces Fig. 4: peak YCSB throughput (log scale) of Quorum, Fabric,
// TiDB, TiKV, and etcd under uniform update-only and query-only workloads,
// 1 KB records, 5 nodes, full replication.
//
// Paper shapes to hold: etcd ≈ TiKV (~15-19k tps) > TiDB (~5k) >
// Fabric (~1.3k) > Quorum (~0.25k) for updates; queries are much faster for
// every system, with the databases far below blockchains in latency cost.
//
// Each system runs in its own sealed World, so the five update rows (and the
// four query rows) execute concurrently through RunSweep with output
// identical to the serial loop.

#include <cstdarg>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "parallel.h"

namespace dicho::bench {
namespace {

enum class Fig4System { kEtcd, kTikv, kTidb, kFabric, kQuorum };

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

std::string RunUpdateRow(Fig4System which) {
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  wcfg.theta = 0.0;
  wcfg.ops_per_txn = 1;
  BenchScale scale;
  // Fabric's abort rate under uniform load scales with 1/population; use a
  // larger population here so the peak numbers are not conflict-polluted
  // (the paper uses 100K).
  scale.record_count = 50000;

  switch (which) {
    case Fig4System::kEtcd: {
      World w;
      auto etcd = MakeEtcd(&w, 5);
      auto m = RunYcsb(&w, etcd.get(), wcfg, scale);
      return Format("%-8s %8.0f tps\n", "etcd", m.throughput_tps);
    }
    case Fig4System::kTikv: {
      // TiKV standalone: raw KV path, no SQL / transaction layer.
      World w;
      auto tidb = MakeTidb(&w, 5, 5);
      workload::YcsbWorkload workload(
          [&] {
            workload::YcsbConfig c = wcfg;
            c.record_count = scale.record_count;
            return c;
          }(),
          7);
      LoadYcsb(tidb.get(), &workload, scale.record_count);
      uint64_t done = 0;
      Time window_start = w.sim.Now() + scale.warmup;
      Time window_end = window_start + scale.measure;
      // Closed loop over the raw path.
      std::function<void()> issue = [&] {
        if (w.sim.Now() >= window_end) return;
        core::TxnRequest req = workload.NextTxn();
        tidb->RawPut(req.ops[0].key, req.ops[0].value, [&](Status) {
          if (w.sim.Now() >= window_start && w.sim.Now() < window_end) done++;
          issue();
        });
      };
      for (size_t c = 0; c < scale.clients; c++) issue();
      w.sim.RunUntil(window_end + 2 * sim::kSec);
      return Format("%-8s %8.0f tps\n", "tikv",
                    static_cast<double>(done) / (scale.measure / sim::kSec));
    }
    case Fig4System::kTidb: {
      World w;
      auto tidb = MakeTidb(&w, 5, 5);
      auto m = RunYcsb(&w, tidb.get(), wcfg, scale);
      return Format("%-8s %8.0f tps\n", "tidb", m.throughput_tps);
    }
    case Fig4System::kFabric: {
      // Block-based systems need an open-loop saturating driver (the paper's
      // Caliper at peak): closed-loop clients would be latency-bound by the
      // block cadence.
      World w;
      auto fabric = MakeFabric(&w, 5);
      auto m = RunYcsb(&w, fabric.get(), wcfg, scale, 0, /*arrival=*/1350);
      return Format("%-8s %8.0f tps (abort %.1f%%)\n", "fabric",
                    m.throughput_tps, m.AbortRate() * 100);
    }
    case Fig4System::kQuorum: {
      World w;
      auto quorum = MakeQuorum(&w, 5);
      auto m = RunYcsb(&w, quorum.get(), wcfg, scale, 0, /*arrival=*/280);
      return Format("%-8s %8.0f tps\n", "quorum", m.throughput_tps);
    }
  }
  return {};
}

void RunUpdateWorkload() {
  PrintHeader("Fig 4a: YCSB uniform update-only throughput (tps), 5 nodes");
  const std::vector<Fig4System> systems = {
      Fig4System::kEtcd, Fig4System::kTikv, Fig4System::kTidb,
      Fig4System::kFabric, Fig4System::kQuorum};
  for (const std::string& row : RunSweep(systems, RunUpdateRow)) {
    fputs(row.c_str(), stdout);
  }
}

std::string RunQueryRow(Fig4System which) {
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.measure = 8 * sim::kSec;

  auto report = [](const char* name, const workload::RunMetrics& m) {
    return Format("%-8s %8.0f qps\n", name, m.query_throughput_tps);
  };
  switch (which) {
    case Fig4System::kEtcd: {
      World w;
      auto etcd = MakeEtcd(&w, 5);
      return report("etcd", RunYcsb(&w, etcd.get(), wcfg, scale, /*query=*/1.0));
    }
    case Fig4System::kTidb: {
      World w;
      auto tidb = MakeTidb(&w, 5, 5);
      return report("tidb", RunYcsb(&w, tidb.get(), wcfg, scale, 1.0));
    }
    case Fig4System::kFabric: {
      World w;
      auto fabric = MakeFabric(&w, 5);
      return report("fabric", RunYcsb(&w, fabric.get(), wcfg, scale, 1.0));
    }
    case Fig4System::kQuorum: {
      World w;
      auto quorum = MakeQuorum(&w, 5);
      return report("quorum", RunYcsb(&w, quorum.get(), wcfg, scale, 1.0));
    }
    default:
      return {};
  }
}

void RunQueryWorkload() {
  PrintHeader("Fig 4b: YCSB uniform query-only throughput (qps), 5 nodes");
  const std::vector<Fig4System> systems = {
      Fig4System::kEtcd, Fig4System::kTidb, Fig4System::kFabric,
      Fig4System::kQuorum};
  for (const std::string& row : RunSweep(systems, RunQueryRow)) {
    fputs(row.c_str(), stdout);
  }
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::RunUpdateWorkload();
  dicho::bench::RunQueryWorkload();
  return 0;
}
