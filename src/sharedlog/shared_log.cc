#include "sharedlog/shared_log.h"

namespace dicho::sharedlog {

SharedLog::SharedLog(sim::Simulator* sim, sim::SimNetwork* net, NodeId broker,
                     SharedLogConfig config)
    : sim_(sim), net_(net), broker_(broker), config_(config), cpu_(sim) {}

void SharedLog::Append(NodeId from, std::string record, AppendCallback cb) {
  uint64_t bytes = 64 + record.size();
  net_->Send(from, broker_, bytes,
             [this, from, record = std::move(record), cb = std::move(cb)]() mutable {
               cpu_.Submit(config_.append_cost_us, [this, from,
                                                    record = std::move(record),
                                                    cb = std::move(cb)]() mutable {
                 log_.push_back(std::move(record));
                 uint64_t offset = log_.size() - 1;
                 if (!tick_armed_) {
                   tick_armed_ = true;
                   sim_->Schedule(config_.delivery_interval,
                                  [this] { DeliveryTick(); });
                 }
                 if (cb) {
                   net_->Send(broker_, from, 48,
                              [cb = std::move(cb), offset] {
                                cb(Status::Ok(), offset);
                              });
                 }
               });
             });
}

void SharedLog::Subscribe(NodeId subscriber, DeliverFn fn) {
  subscribers_.push_back(Subscriber{subscriber, std::move(fn), 0});
  if (!tick_armed_ && !log_.empty()) {
    tick_armed_ = true;
    sim_->Schedule(config_.delivery_interval, [this] { DeliveryTick(); });
  }
}

void SharedLog::DeliveryTick() {
  tick_armed_ = false;
  bool backlog = false;
  for (auto& sub : subscribers_) {
    // Ship this subscriber's backlog as one batched push.
    if (sub.next_offset >= log_.size()) continue;
    uint64_t begin = sub.next_offset;
    uint64_t end = log_.size();
    uint64_t bytes = 64;
    for (uint64_t i = begin; i < end; i++) bytes += log_[i].size();
    DeliverFn fn = sub.fn;
    net_->Send(broker_, sub.node, bytes, [this, fn, begin, end] {
      for (uint64_t i = begin; i < end; i++) {
        fn(i, log_[i]);
      }
    });
    sub.next_offset = end;
    backlog = true;
  }
  (void)backlog;
  // Keep ticking while there are subscribers (new records keep flowing).
  if (!subscribers_.empty()) {
    tick_armed_ = true;
    sim_->Schedule(config_.delivery_interval, [this] { DeliveryTick(); });
  }
}

}  // namespace dicho::sharedlog
