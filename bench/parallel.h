#ifndef DICHO_BENCH_PARALLEL_H_
#define DICHO_BENCH_PARALLEL_H_

// Parallel multi-world sweep runner. Every bench binary sweeps independent
// configurations, and each configuration runs inside its own sealed World
// (its own Simulator, network, cost model, and seeds) — so the sweeps are
// embarrassingly parallel and deterministic: RunSweep produces results in
// config order that are bit-identical to the serial loop, just wall-clock
// faster on multi-core machines.
//
// Thread count: DICHO_BENCH_THREADS env var, defaulting to the hardware
// concurrency (documented in EXPERIMENTS.md).

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

namespace dicho::bench {

inline unsigned SweepThreads() {
  if (const char* env = std::getenv("DICHO_BENCH_THREADS")) {
    long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Runs fn(config) for every entry of `configs` on a pool of SweepThreads()
/// threads and returns the results in config order. `fn` must be callable
/// concurrently from multiple threads on distinct configs (true for any fn
/// that builds its World locally) and its result type default-constructible.
template <typename Config, typename Fn>
auto RunSweep(const std::vector<Config>& configs, Fn fn)
    -> std::vector<decltype(fn(std::declval<const Config&>()))> {
  using Result = decltype(fn(std::declval<const Config&>()));
  std::vector<Result> results(configs.size());
  const size_t n = configs.size();
  const unsigned threads =
      static_cast<unsigned>(std::min<size_t>(SweepThreads(), n));
  if (threads <= 1) {
    for (size_t i = 0; i < n; i++) results[i] = fn(configs[i]);
    return results;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; t++) {
    pool.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        results[i] = fn(configs[i]);
      }
    });
  }
  for (auto& worker : pool) worker.join();
  return results;
}

}  // namespace dicho::bench

#endif  // DICHO_BENCH_PARALLEL_H_
