file(REMOVE_RECURSE
  "CMakeFiles/example_asset_transfer.dir/asset_transfer.cc.o"
  "CMakeFiles/example_asset_transfer.dir/asset_transfer.cc.o.d"
  "example_asset_transfer"
  "example_asset_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_asset_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
