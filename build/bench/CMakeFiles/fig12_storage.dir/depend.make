# Empty dependencies file for fig12_storage.
# This may be replaced when dependencies are built.
