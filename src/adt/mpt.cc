#include "adt/mpt.h"

#include <array>
#include <cassert>

#include "common/coding.h"

namespace dicho::adt {
namespace {

// Node serialization. Nibbles are stored one per byte — marginally larger
// than Ethereum's hex-prefix packing but simpler to audit; the storage
// overhead comparison (Fig. 13) is unaffected in shape.
constexpr char kLeafTag = 'L';
constexpr char kExtTag = 'E';
constexpr char kBranchTag = 'B';

struct ParsedNode {
  char tag = 0;
  std::vector<uint8_t> path;           // leaf/ext
  std::string value;                   // leaf/branch
  bool has_value = false;              // branch
  std::string child;                   // ext: child hash bytes
  std::array<std::string, 16> children;  // branch: empty = absent
};

void AppendPath(std::string* out, const std::vector<uint8_t>& path,
                size_t from) {
  PutVarint32(out, static_cast<uint32_t>(path.size() - from));
  for (size_t i = from; i < path.size(); i++) {
    out->push_back(static_cast<char>(path[i]));
  }
}

bool ParsePath(Slice* in, std::vector<uint8_t>* path) {
  uint32_t len;
  if (!GetVarint32(in, &len) || in->size() < len) return false;
  path->clear();
  path->reserve(len);
  for (uint32_t i = 0; i < len; i++) {
    path->push_back(static_cast<uint8_t>((*in)[i]));
  }
  in->RemovePrefix(len);
  return true;
}

std::string SerializeLeaf(const std::vector<uint8_t>& path, size_t from,
                          const Slice& value) {
  std::string out(1, kLeafTag);
  AppendPath(&out, path, from);
  PutLengthPrefixed(&out, value);
  return out;
}

std::string SerializeExt(const std::vector<uint8_t>& path,
                         const std::string& child_hash) {
  std::string out(1, kExtTag);
  AppendPath(&out, path, 0);
  PutLengthPrefixed(&out, child_hash);
  return out;
}

std::string SerializeBranch(const std::array<std::string, 16>& children,
                            bool has_value, const Slice& value) {
  std::string out(1, kBranchTag);
  uint32_t bitmap = 0;
  for (int i = 0; i < 16; i++) {
    if (!children[i].empty()) bitmap |= (1u << i);
  }
  if (has_value) bitmap |= (1u << 16);
  PutVarint32(&out, bitmap);
  for (int i = 0; i < 16; i++) {
    if (!children[i].empty()) PutLengthPrefixed(&out, children[i]);
  }
  if (has_value) PutLengthPrefixed(&out, value);
  return out;
}

bool ParseNode(const std::string& raw, ParsedNode* node) {
  if (raw.empty()) return false;
  Slice in(raw);
  node->tag = in[0];
  in.RemovePrefix(1);
  if (node->tag == kLeafTag) {
    Slice value;
    if (!ParsePath(&in, &node->path) || !GetLengthPrefixed(&in, &value)) {
      return false;
    }
    node->value = value.ToString();
    node->has_value = true;
    return in.empty();
  }
  if (node->tag == kExtTag) {
    Slice child;
    if (!ParsePath(&in, &node->path) || !GetLengthPrefixed(&in, &child) ||
        child.size() != 32) {
      return false;
    }
    node->child = child.ToString();
    return in.empty();
  }
  if (node->tag == kBranchTag) {
    uint32_t bitmap;
    if (!GetVarint32(&in, &bitmap)) return false;
    for (int i = 0; i < 16; i++) {
      if (bitmap & (1u << i)) {
        Slice child;
        if (!GetLengthPrefixed(&in, &child) || child.size() != 32) {
          return false;
        }
        node->children[i] = child.ToString();
      }
    }
    node->has_value = (bitmap & (1u << 16)) != 0;
    if (node->has_value) {
      Slice value;
      if (!GetLengthPrefixed(&in, &value)) return false;
      node->value = value.ToString();
    }
    return in.empty();
  }
  return false;
}

size_t CommonPrefix(const std::vector<uint8_t>& a, size_t a_from,
                    const std::vector<uint8_t>& b, size_t b_from) {
  size_t n = 0;
  while (a_from + n < a.size() && b_from + n < b.size() &&
         a[a_from + n] == b[b_from + n]) {
    n++;
  }
  return n;
}

std::vector<uint8_t> SubPath(const std::vector<uint8_t>& p, size_t from) {
  return std::vector<uint8_t>(p.begin() + static_cast<long>(from), p.end());
}

}  // namespace

MerklePatriciaTrie::Nibbles MerklePatriciaTrie::ToNibbles(const Slice& key) {
  Nibbles out;
  out.reserve(key.size() * 2);
  for (size_t i = 0; i < key.size(); i++) {
    uint8_t b = static_cast<uint8_t>(key[i]);
    out.push_back(b >> 4);
    out.push_back(b & 0xF);
  }
  return out;
}

std::string MerklePatriciaTrie::Store(const std::string& serialized) {
  std::string hash = crypto::DigestBytes(crypto::Sha256Of(serialized));
  auto [it, inserted] = nodes_.emplace(hash, serialized);
  if (inserted) {
    total_node_bytes_ += 32 + serialized.size();
  }
  (void)it;
  last_update_nodes_++;
  return hash;
}

const std::string* MerklePatriciaTrie::Load(const Digest& digest) const {
  auto it = nodes_.find(crypto::DigestBytes(digest));
  return it == nodes_.end() ? nullptr : &it->second;
}

Status MerklePatriciaTrie::Put(const Slice& key, const Slice& value) {
  Nibbles path = ToNibbles(key);
  std::string existing;
  bool existed = Get(key, &existing).ok();
  last_update_nodes_ = 0;
  root_hash_bytes_ = InsertAt(root_hash_bytes_, path, 0, value);
  root_ = crypto::DigestFromBytes(root_hash_bytes_);
  if (!existed) size_++;
  return Status::Ok();
}

std::string MerklePatriciaTrie::InsertAt(const std::string& node_hash,
                                         const Nibbles& path, size_t depth,
                                         const Slice& value) {
  if (node_hash.empty()) {
    return Store(SerializeLeaf(path, depth, value));
  }
  auto it = nodes_.find(node_hash);
  assert(it != nodes_.end());
  ParsedNode node;
  bool ok = ParseNode(it->second, &node);
  assert(ok);
  (void)ok;

  Nibbles rest = SubPath(path, depth);

  if (node.tag == kLeafTag) {
    if (node.path == rest) {
      return Store(SerializeLeaf(path, depth, value));  // overwrite
    }
    size_t cp = CommonPrefix(node.path, 0, rest, 0);
    std::array<std::string, 16> children;
    bool branch_has_value = false;
    std::string branch_value;
    // Existing leaf's continuation.
    if (node.path.size() == cp) {
      branch_has_value = true;
      branch_value = node.value;
    } else {
      Nibbles lp = SubPath(node.path, cp);
      uint8_t idx = lp[0];
      children[idx] = Store(SerializeLeaf(lp, 1, node.value));
    }
    // New key's continuation.
    if (rest.size() == cp) {
      branch_has_value = true;
      branch_value = value.ToString();
    } else {
      Nibbles np = SubPath(rest, cp);
      uint8_t idx = np[0];
      children[idx] = Store(SerializeLeaf(np, 1, value));
    }
    std::string branch =
        Store(SerializeBranch(children, branch_has_value, branch_value));
    if (cp > 0) {
      Nibbles shared(rest.begin(), rest.begin() + static_cast<long>(cp));
      return Store(SerializeExt(shared, branch));
    }
    return branch;
  }

  if (node.tag == kExtTag) {
    size_t cp = CommonPrefix(node.path, 0, rest, 0);
    if (cp == node.path.size()) {
      std::string child = InsertAt(node.child, path, depth + cp, value);
      return Store(SerializeExt(node.path, child));
    }
    // Split the extension at cp.
    std::array<std::string, 16> children;
    bool branch_has_value = false;
    std::string branch_value;
    // The extension's remainder.
    {
      Nibbles ep = SubPath(node.path, cp);
      uint8_t idx = ep[0];
      if (ep.size() == 1) {
        children[idx] = node.child;
      } else {
        children[idx] = Store(SerializeExt(SubPath(ep, 1), node.child));
      }
    }
    // The new key's remainder.
    if (rest.size() == cp) {
      branch_has_value = true;
      branch_value = value.ToString();
    } else {
      Nibbles np = SubPath(rest, cp);
      children[np[0]] = Store(SerializeLeaf(np, 1, value));
    }
    std::string branch =
        Store(SerializeBranch(children, branch_has_value, branch_value));
    if (cp > 0) {
      Nibbles shared(rest.begin(), rest.begin() + static_cast<long>(cp));
      return Store(SerializeExt(shared, branch));
    }
    return branch;
  }

  // Branch.
  if (rest.empty()) {
    return Store(SerializeBranch(node.children, true, value));
  }
  uint8_t idx = rest[0];
  node.children[idx] = InsertAt(node.children[idx], path, depth + 1, value);
  return Store(SerializeBranch(node.children, node.has_value, node.value));
}

Status MerklePatriciaTrie::Get(const Slice& key, std::string* value) const {
  if (root_hash_bytes_.empty()) return Status::NotFound();
  Nibbles path = ToNibbles(key);
  return GetAt(root_hash_bytes_, path, 0, value, nullptr);
}

Status MerklePatriciaTrie::GetAt(const std::string& node_hash,
                                 const Nibbles& path, size_t depth,
                                 std::string* value,
                                 std::vector<std::string>* proof_nodes) const {
  if (node_hash.empty()) return Status::NotFound();
  auto it = nodes_.find(node_hash);
  if (it == nodes_.end()) return Status::Corruption("dangling node hash");
  if (proof_nodes != nullptr) proof_nodes->push_back(it->second);
  ParsedNode node;
  if (!ParseNode(it->second, &node)) return Status::Corruption("bad node");

  Nibbles rest = SubPath(path, depth);
  if (node.tag == kLeafTag) {
    if (node.path != rest) return Status::NotFound();
    *value = node.value;
    return Status::Ok();
  }
  if (node.tag == kExtTag) {
    size_t cp = CommonPrefix(node.path, 0, rest, 0);
    if (cp != node.path.size()) return Status::NotFound();
    return GetAt(node.child, path, depth + cp, value, proof_nodes);
  }
  // Branch.
  if (rest.empty()) {
    if (!node.has_value) return Status::NotFound();
    *value = node.value;
    return Status::Ok();
  }
  return GetAt(node.children[rest[0]], path, depth + 1, value, proof_nodes);
}

Status MerklePatriciaTrie::Prove(const Slice& key, Proof* proof) const {
  proof->nodes.clear();
  if (root_hash_bytes_.empty()) return Status::NotFound();
  Nibbles path = ToNibbles(key);
  std::string value;
  return GetAt(root_hash_bytes_, path, 0, &value, &proof->nodes);
}

uint64_t MerklePatriciaTrie::ReachableBytes() const {
  return ReachableBytesAt(root_hash_bytes_);
}

uint64_t MerklePatriciaTrie::ReachableBytesAt(
    const std::string& node_hash) const {
  if (node_hash.empty()) return 0;
  auto it = nodes_.find(node_hash);
  if (it == nodes_.end()) return 0;
  ParsedNode node;
  if (!ParseNode(it->second, &node)) return 0;
  uint64_t total = 32 + it->second.size();
  if (node.tag == kExtTag) {
    total += ReachableBytesAt(node.child);
  } else if (node.tag == kBranchTag) {
    for (const auto& child : node.children) {
      total += ReachableBytesAt(child);
    }
  }
  return total;
}

bool VerifyMptProof(const crypto::Digest& root, const Slice& key,
                    const Slice& value,
                    const MerklePatriciaTrie::Proof& proof) {
  if (proof.nodes.empty()) return false;
  std::vector<uint8_t> path;
  for (size_t i = 0; i < key.size(); i++) {
    uint8_t b = static_cast<uint8_t>(key[i]);
    path.push_back(b >> 4);
    path.push_back(b & 0xF);
  }

  std::string expected = crypto::DigestBytes(root);
  size_t depth = 0;
  for (size_t n = 0; n < proof.nodes.size(); n++) {
    const std::string& raw = proof.nodes[n];
    if (crypto::DigestBytes(crypto::Sha256Of(raw)) != expected) return false;
    ParsedNode node;
    if (!ParseNode(raw, &node)) return false;
    std::vector<uint8_t> rest(path.begin() + static_cast<long>(depth),
                              path.end());
    if (node.tag == kLeafTag) {
      return n == proof.nodes.size() - 1 && node.path == rest &&
             Slice(node.value) == value;
    }
    if (node.tag == kExtTag) {
      size_t cp = CommonPrefix(node.path, 0, rest, 0);
      if (cp != node.path.size()) return false;
      depth += cp;
      expected = node.child;
      continue;
    }
    // Branch.
    if (rest.empty()) {
      return n == proof.nodes.size() - 1 && node.has_value &&
             Slice(node.value) == value;
    }
    if (node.children[rest[0]].empty()) return false;
    expected = node.children[rest[0]];
    depth += 1;
  }
  return false;  // ran out of nodes before reaching the terminal
}

}  // namespace dicho::adt
