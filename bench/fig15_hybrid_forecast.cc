// Reproduces Fig. 15 / Section 5.6: the back-of-the-envelope framework for
// hybrid blockchain-database throughput. Three parts:
//   1. The forecaster's predictions vs the reported numbers of the six
//      published hybrids (the paper's figure).
//   2. *Composed, runnable* hybrids built from the same taxonomy choices
//      with the fusion builder, measured on the simulator — the measured
//      ordering must agree with the forecast ordering.
//   3. Forecast accuracy on the harmonylike design point: the fused
//      order-then-deterministic-execute model sits outside the paper's six
//      hybrids, so its taxonomy-only prediction vs the measured saturation
//      peak is an out-of-sample check of the framework.
//   4. Forecast accuracy on the harmonyshard design point: the sharded
//      fusion adds the shard_scaling / cross_shard_forward_penalty factors;
//      the prediction is checked against the exact Fig 14 --scale cell
//      (4 shards, 20% cross-shard) that BENCH_sharding.json records.

#include <algorithm>

#include "bench_util.h"
#include "hybrid/builder.h"
#include "hybrid/forecast.h"

namespace dicho::bench {
namespace {

using hybrid::SystemDescriptor;

double MeasureHybrid(SystemDescriptor design) {
  World w(11);
  hybrid::HybridConfig config;
  config.design = design;
  config.num_nodes = 4;
  config.pow.mean_block_interval = 1 * sim::kSec;
  hybrid::HybridSystem system(&w.sim, &w.net, &w.costs, config);
  system.Start();
  w.sim.RunFor(1 * sim::kSec);

  workload::YcsbConfig wcfg;
  wcfg.record_count = 10000;
  wcfg.record_size = 100;
  workload::YcsbWorkload workload(wcfg, 5);
  for (int i = 0; i < 10000; i++) {
    system.Load(workload.KeyAt(i), workload.RandomValue());
  }
  workload::DriverConfig dcfg;
  dcfg.num_clients = 256;
  dcfg.warmup = 3 * sim::kSec;
  dcfg.measure = 10 * sim::kSec;
  workload::Driver driver(&w.sim, &system,
                          [&workload] { return workload.NextTxn(); }, dcfg);
  return driver.Run().throughput_tps;
}

void Run() {
  PrintHeader("Fig 15 (1/2): forecast vs reported numbers of published hybrids");
  hybrid::ThroughputForecaster forecaster;
  auto hybrids = hybrid::Figure15Hybrids();
  std::sort(hybrids.begin(), hybrids.end(),
            [](const auto& a, const auto& b) {
              return a.reported_tps > b.reported_tps;
            });
  printf("%s", forecaster.Report(hybrids).c_str());

  int checked = 0, agreed = 0;
  for (const auto& a : hybrids) {
    for (const auto& b : hybrids) {
      if (a.reported_tps > b.reported_tps * 1.5) {
        checked++;
        agreed += forecaster.Predict(a).expected_tps >
                  forecaster.Predict(b).expected_tps;
      }
    }
  }
  printf("pairwise ranking agreement: %d/%d\n", agreed, checked);

  PrintHeader("Fig 15 (2/2): composed runnable hybrids (fusion builder)");
  std::vector<SystemDescriptor> designs;
  {
    SystemDescriptor d;
    d.name = "veritas-like";
    d.replication = hybrid::ReplicationModel::kStorageBased;
    d.approach = hybrid::ReplicationApproach::kSharedLog;
    d.failure = hybrid::FailureModel::kCft;
    d.concurrency = hybrid::ConcurrencyModel::kOccCommit;
    d.ledger = hybrid::LedgerAbstraction::kChain;
    designs.push_back(d);
  }
  {
    SystemDescriptor d;
    d.name = "chainify-like";
    d.replication = hybrid::ReplicationModel::kTxnBased;
    d.approach = hybrid::ReplicationApproach::kSharedLog;
    d.failure = hybrid::FailureModel::kCft;
    d.concurrency = hybrid::ConcurrencyModel::kConcurrent;
    d.ledger = hybrid::LedgerAbstraction::kChain;
    designs.push_back(d);
  }
  {
    SystemDescriptor d;
    d.name = "falcon-like";
    d.replication = hybrid::ReplicationModel::kStorageBased;
    d.approach = hybrid::ReplicationApproach::kConsensus;
    d.failure = hybrid::FailureModel::kBft;
    d.concurrency = hybrid::ConcurrencyModel::kOccCommit;
    d.ledger = hybrid::LedgerAbstraction::kChain;
    d.index = hybrid::StateIndex::kMbt;
    designs.push_back(d);
  }
  {
    SystemDescriptor d;
    d.name = "bigchain-like";
    d.replication = hybrid::ReplicationModel::kTxnBased;
    d.approach = hybrid::ReplicationApproach::kConsensus;
    d.failure = hybrid::FailureModel::kBft;
    d.concurrency = hybrid::ConcurrencyModel::kConcurrent;
    d.ledger = hybrid::LedgerAbstraction::kChain;
    designs.push_back(d);
  }
  {
    SystemDescriptor d;
    d.name = "blockchaindb-like";
    d.replication = hybrid::ReplicationModel::kStorageBased;
    d.approach = hybrid::ReplicationApproach::kConsensus;
    d.failure = hybrid::FailureModel::kPow;
    d.concurrency = hybrid::ConcurrencyModel::kSerial;
    d.ledger = hybrid::LedgerAbstraction::kChain;
    d.index = hybrid::StateIndex::kMpt;
    designs.push_back(d);
  }

  printf("%-20s %12s %12s\n", "design", "measured", "forecast");
  for (const auto& design : designs) {
    double measured = MeasureHybrid(design);
    double forecast = forecaster.Predict(design).expected_tps;
    printf("%-20s %9.0f tps %9.0f tps\n", design.name.c_str(), measured,
           forecast);
    fflush(stdout);
  }

  PrintHeader("Fig 15 (3/4): forecast accuracy on the harmonylike design point");
  // Measured under the ablation_deterministic peak setup: uniform keys,
  // open-loop arrival far above capacity so the epoch pipeline saturates.
  World hw;
  auto harmony = MakeHarmony(&hw, 5);
  BenchScale hscale;
  hscale.record_count = 20000;
  hscale.measure = 10 * sim::kSec;
  workload::YcsbConfig hwcfg;
  hwcfg.record_size = 1000;
  hwcfg.read_modify_write = true;
  double measured =
      RunYcsb(&hw, harmony.get(), hwcfg, hscale, 0, 20000).throughput_tps;
  hybrid::Forecast f = forecaster.Predict(hybrid::HarmonylikeDescriptor());
  const double err_pct =
      measured > 0 ? (f.expected_tps - measured) / measured * 100 : 0;
  printf("%-20s %9.0f tps %9.0f tps  (error %+.1f%%)\n", "harmonylike",
         measured, f.expected_tps, err_pct);

  PrintHeader(
      "Fig 15 (4/4): forecast accuracy on the harmonyshard design point");
  // The exact Fig 14 --scale cell BENCH_sharding.json records: 4 shards,
  // 20% cross-shard transactions, 1024 saturating closed-loop clients.
  const uint32_t kShards = 4;
  const double kCrossRatio = 0.2;
  World sw;
  auto harmonyshard = MakeHarmonyShard(&sw, kShards);
  double shard_measured =
      RunCrossRatio(&sw, harmonyshard.get(), kShards, kCrossRatio,
                    /*clients=*/1024)
          .throughput_tps;
  hybrid::Forecast sf = forecaster.Predict(
      hybrid::HarmonyshardDescriptor(kShards, kCrossRatio));
  const double shard_err_pct =
      shard_measured > 0 ? (sf.expected_tps - shard_measured) /
                               shard_measured * 100
                         : 0;
  printf("%-20s %9.0f tps %9.0f tps  (error %+.1f%%)%s\n", "harmonyshard",
         shard_measured, sf.expected_tps, shard_err_pct,
         shard_err_pct > 10 || shard_err_pct < -10
             ? "  ** outside +-10% **"
             : "");
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
