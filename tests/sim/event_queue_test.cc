#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "common/random.h"

namespace dicho::sim {
namespace {

// --- TimeKey: integer image of the double timestamp -------------------------

TEST(TimeKeyTest, RoundTripsExactly) {
  for (double t : {0.0, 1.0, 0.5, 20.0, 1e-9, 1e9, 123456.789,
                   std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(TimeOfKey(TimeKeyOf(t)), t);
  }
}

TEST(TimeKeyTest, PreservesOrderOnRandomNonNegativeDoubles) {
  Rng rng(7);
  std::vector<double> ts = {0.0, 1e-300, 1e-9, 1.0, 5120.0, 1e6, 3e8};
  for (int i = 0; i < 10000; i++) {
    ts.push_back(rng.NextDouble() * 1e7);
    ts.push_back(rng.Exponential(1e4));
  }
  std::sort(ts.begin(), ts.end());
  for (size_t i = 1; i < ts.size(); i++) {
    if (ts[i - 1] < ts[i]) {
      EXPECT_LT(TimeKeyOf(ts[i - 1]), TimeKeyOf(ts[i]))
          << ts[i - 1] << " vs " << ts[i];
    } else {
      EXPECT_EQ(TimeKeyOf(ts[i - 1]), TimeKeyOf(ts[i]));
    }
  }
}

// --- EventFn: SBO type erasure ----------------------------------------------

TEST(EventFnTest, InvokesInlineAndHeapCallables) {
  int hits = 0;
  EventFn small([&hits] { hits++; });
  small();
  EXPECT_EQ(hits, 1);

  struct Big {
    int* hits;
    char pad[100];  // force the heap fallback (> 48-byte inline buffer)
    void operator()() const { (*hits)++; }
  };
  EventFn big(Big{&hits, {}});
  big();
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, MoveTransfersOwnershipAndDestroysOnce) {
  struct Counter {
    int* dtors;
    explicit Counter(int* d) : dtors(d) {}
    Counter(Counter&& o) noexcept : dtors(o.dtors) { o.dtors = nullptr; }
    ~Counter() {
      if (dtors != nullptr) (*dtors)++;
    }
    void operator()() const {}
  };
  int dtors = 0;
  {
    EventFn a(Counter{&dtors});
    EventFn b(std::move(a));
    EventFn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(c));
    c();
  }
  EXPECT_EQ(dtors, 1);
}

TEST(EventPoolTest, RecyclesSlotsThroughFreeList) {
  EventPool pool;
  int sum = 0;
  uint32_t a = pool.Alloc([&sum] { sum += 1; });
  uint32_t b = pool.Alloc([&sum] { sum += 10; });
  EXPECT_EQ(pool.live(), 2u);
  pool.Take(a)();
  EXPECT_EQ(sum, 1);
  uint32_t c = pool.Alloc([&sum] { sum += 100; });
  EXPECT_EQ(c, a);  // recycled
  pool.Take(b)();
  pool.Take(c)();
  EXPECT_EQ(sum, 111);
  EXPECT_EQ(pool.live(), 0u);
}

// --- CalendarQueue: differential oracle vs a reference heap -----------------

struct RefEntry {
  uint64_t tkey;
  uint64_t skey;
  bool operator>(const RefEntry& o) const {
    if (tkey != o.tkey) return tkey > o.tkey;
    return skey > o.skey;
  }
};

using RefHeap =
    std::priority_queue<RefEntry, std::vector<RefEntry>, std::greater<>>;

// Drives the calendar queue and a std::priority_queue with an identical
// simulated-engine workload (pushes never precede the last popped time, like
// Simulator's clamp-to-now) and asserts every pop matches key-for-key.
void RunOracle(uint64_t seed, int steps, double far_scale) {
  Rng rng(seed);
  CalendarQueue q;
  RefHeap ref;
  uint64_t next_skey = 0;
  double now = 0;

  auto push_at = [&](double t) {
    if (t < now) t = now;
    uint64_t tkey = TimeKeyOf(t);
    uint64_t skey = next_skey++;
    q.Push(tkey, skey, 0);
    ref.push({tkey, skey});
  };

  for (int step = 0; step < steps; step++) {
    double r = rng.NextDouble();
    if (r < 0.55 && !ref.empty()) {
      ASSERT_EQ(q.size(), ref.size());
      const CalendarQueue::Entry& peek = q.Peek();
      ASSERT_EQ(peek.tkey, ref.top().tkey) << "step " << step;
      ASSERT_EQ(peek.skey, ref.top().skey) << "step " << step;
      CalendarQueue::Entry e = q.Pop();
      EXPECT_EQ(e.tkey, ref.top().tkey);
      EXPECT_EQ(e.skey, ref.top().skey);
      ref.pop();
      now = TimeOfKey(e.tkey);
    } else {
      double choice = rng.NextDouble();
      if (choice < 0.45) {
        push_at(now + rng.NextDouble() * 40.0);  // dense, in-window
      } else if (choice < 0.6) {
        push_at(now);  // zero-delay self-schedule
      } else if (choice < 0.85) {
        push_at(now + rng.Exponential(200.0));
      } else {
        // Far-future timer (election timeouts, PoW mining): far beyond the
        // 256 * 20us default window, forcing overflow-heap traffic and
        // window re-bases.
        push_at(now + rng.NextDouble() * far_scale);
      }
    }
  }
  while (!ref.empty()) {
    CalendarQueue::Entry e = q.Pop();
    EXPECT_EQ(e.tkey, ref.top().tkey);
    EXPECT_EQ(e.skey, ref.top().skey);
    ref.pop();
    now = TimeOfKey(e.tkey);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, MatchesReferenceHeapOnMixedWorkload) {
  for (uint64_t seed = 1; seed <= 8; seed++) {
    RunOracle(seed, 20000, 300000.0);
  }
}

TEST(CalendarQueueTest, MatchesReferenceHeapOnSparseTimerWorkload) {
  // Mostly far-future pushes: the queue degenerates to overflow-heap
  // behavior with a re-base per event.
  for (uint64_t seed = 100; seed <= 104; seed++) {
    RunOracle(seed, 5000, 5e7);
  }
}

// Regression: a window re-base jumps the origin to the overflow minimum,
// which can land far past the engine clock. A subsequent push between the
// clock and the new origin must still pop in exact key order (it previously
// computed a negative bucket index).
TEST(CalendarQueueTest, PushBelowRebasedWindowPopsInOrder) {
  CalendarQueue q;
  // One near event and one far timer (past the 5120us default window).
  q.Push(TimeKeyOf(100.0), 0, 0);
  q.Push(TimeKeyOf(200000.0), 1, 0);
  CalendarQueue::Entry e = q.Pop();
  EXPECT_EQ(e.tkey, TimeKeyOf(100.0));
  // Peek forces the re-base onto the 200000us event...
  EXPECT_EQ(q.Peek().tkey, TimeKeyOf(200000.0));
  // ...and the engine (still at t=100) schedules below the new origin.
  q.Push(TimeKeyOf(150.0), 2, 0);
  q.Push(TimeKeyOf(199999.0), 3, 0);
  EXPECT_EQ(q.Pop().tkey, TimeKeyOf(150.0));
  EXPECT_EQ(q.Pop().tkey, TimeKeyOf(199999.0));
  EXPECT_EQ(q.Pop().tkey, TimeKeyOf(200000.0));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, TiesBreakBySeqKeyEverywhere) {
  CalendarQueue q;
  // Same timestamp through all three internal paths: bucket, late heap
  // (pushed after the bucket is sorted by a Peek), and overflow.
  q.Push(TimeKeyOf(10.0), 5, 0);
  q.Push(TimeKeyOf(10.0), 1, 0);
  q.Push(TimeKeyOf(999999.0), 2, 0);
  EXPECT_EQ(q.Peek().skey, 1u);       // sorts the current bucket
  q.Push(TimeKeyOf(10.0), 3, 0);      // late-heap path
  EXPECT_EQ(q.Pop().skey, 1u);
  EXPECT_EQ(q.Pop().skey, 3u);
  EXPECT_EQ(q.Pop().skey, 5u);
  EXPECT_EQ(q.Pop().skey, 2u);
}

}  // namespace
}  // namespace dicho::sim
