// Reproduces Fig. 8: (a) Fabric's per-phase transaction latency when
// unsaturated vs saturated — validation becomes the bottleneck and blocks
// pile up once the request rate exceeds capacity; (b) query latency
// breakdown — Fabric is dominated by client authentication, TiDB by data
// access. Part (c) extends the figure with the same breakdown for Quorum,
// TiDB, and etcd over the unified phase timeline: every system stamps its
// pipeline stages into the same typed enum, so one generic printer renders
// all of them.
//
// Every run here is traced: the printed rows are re-derived from the
// src/obs trace layer (DeriveRunMetrics), not from the driver's inline
// accounting — the figure and an exported trace can never disagree. Pass
// --trace=<prefix> to also dump the Chrome trace_event + metrics JSON per
// run.

#include "bench_util.h"

namespace dicho::bench {
namespace {

/// Traced variant of RunYcsb: attaches the world's sink/registry (must run
/// before system construction — callers pass a factory), drives the
/// workload, optionally exports, and returns the trace-derived metrics.
template <typename MakeSystemFn>
workload::RunMetrics RunTraced(World* w, MakeSystemFn make,
                               workload::YcsbConfig wcfg, BenchScale scale,
                               const std::string& tag, double query_fraction,
                               double arrival) {
  w->EnableObservability();
  auto system = make(w);
  RunYcsb(w, system.get(), wcfg, scale, query_fraction, arrival);
  workload::RunMetrics m = DeriveRunMetrics(w->trace);
  TraceExport::Dump(*w, tag);
  return m;
}

void PhaseRow(const char* label, workload::RunMetrics* m) {
  printf("%-12s execute=%7.1fms order=%7.1fms validate=%8.1fms total=%8.1fms\n",
         label, m->phase_us("execute").Mean() / 1000.0,
         m->phase_us("order").Mean() / 1000.0,
         m->phase_us("validate").Mean() / 1000.0,
         m->txn_latency_us.Mean() / 1000.0);
}

void RunFabricBreakdown() {
  PrintHeader("Fig 8a: Fabric latency breakdown, unsaturated vs saturated");
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.record_count = 20000;
  scale.measure = 10 * sim::kSec;

  {
    World w;
    auto m = RunTraced(
        &w, [](World* world) { return MakeFabric(world, 5); }, wcfg, scale,
        "fig8a_unsaturated", 0, /*arrival=*/500);
    PhaseRow("unsaturated", &m);
  }
  {
    World w;
    w.EnableObservability();
    auto fabric = MakeFabric(&w, 5);
    RunYcsb(&w, fabric.get(), wcfg, scale, 0, /*arrival=*/1800);
    auto m = DeriveRunMetrics(w.trace);
    PhaseRow("saturated", &m);
    printf("  (validation queue at a peer after the run: %.0f ms of backlog)\n",
           fabric->ValidationBacklog(1) / 1000.0);
    TraceExport::Dump(w, "fig8a_saturated");
  }
}

void RunQueryBreakdown() {
  PrintHeader("Fig 8b: query latency breakdown (ms)");
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.record_count = 5000;
  scale.measure = 8 * sim::kSec;
  {
    World w;
    auto m = RunTraced(
        &w, [](World* world) { return MakeFabric(world, 5); }, wcfg, scale,
        "fig8b_fabric", 1.0, /*arrival=*/200);
    printf("%-8s auth=%6.2fms read+net=%6.2fms total=%6.2fms\n", "fabric",
           m.phase_us("auth").Mean() / 1000.0,
           (m.query_latency_us.Mean() - m.phase_us("auth").Mean()) / 1000.0,
           m.query_latency_us.Mean() / 1000.0);
  }
  {
    World w;
    auto m = RunTraced(
        &w, [](World* world) { return MakeTidb(world, 5, 5); }, wcfg, scale,
        "fig8b_tidb", 1.0, /*arrival=*/200);
    printf("%-8s auth=%6.2fms read+net=%6.2fms total=%6.2fms\n", "tidb", 0.0,
           m.query_latency_us.Mean() / 1000.0,
           m.query_latency_us.Mean() / 1000.0);
  }
}

/// Prints every phase the system stamped (count > 0), in timeline enum
/// order — no per-system format strings needed.
void UniformPhaseRow(const char* label, const workload::RunMetrics& m) {
  printf("%-12s", label);
  for (size_t i = 0; i < core::kNumPhases; i++) {
    const Histogram& hist = m.phase_hist[i];
    if (hist.count() == 0) continue;
    printf(" %s=%.1fms", core::PhaseName(static_cast<core::Phase>(i)),
           hist.Mean() / 1000.0);
  }
  printf(" total=%.1fms\n", m.txn_latency_us.Mean() / 1000.0);
}

void RunCrossSystemBreakdown() {
  PrintHeader("Fig 8c: txn phase breakdown across systems (unified timeline)");
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.record_count = 5000;
  scale.measure = 8 * sim::kSec;
  {
    World w;
    auto m = RunTraced(
        &w, [](World* world) { return MakeFabric(world, 5); }, wcfg, scale,
        "fig8c_fabric", 0, /*arrival=*/500);
    UniformPhaseRow("fabric", m);
  }
  {
    World w;
    auto m = RunTraced(
        &w, [](World* world) { return MakeQuorum(world, 5); }, wcfg, scale,
        "fig8c_quorum_raft", 0, /*arrival=*/500);
    UniformPhaseRow("quorum-raft", m);
  }
  {
    World w;
    auto m = RunTraced(
        &w, [](World* world) { return MakeTidb(world, 5, 5); }, wcfg, scale,
        "fig8c_tidb", 0, /*arrival=*/500);
    UniformPhaseRow("tidb", m);
  }
  {
    World w;
    workload::YcsbConfig kv = wcfg;
    kv.ops_per_txn = 1;  // etcd rejects multi-op requests
    auto m = RunTraced(
        &w, [](World* world) { return MakeEtcd(world, 5); }, kv, scale, "fig8c_etcd",
        0, /*arrival=*/500);
    UniformPhaseRow("etcd", m);
  }
}

}  // namespace
}  // namespace dicho::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    dicho::bench::TraceExport::ParseArg(argv[i]);
  }
  dicho::bench::RunFabricBreakdown();
  dicho::bench::RunQueryBreakdown();
  dicho::bench::RunCrossSystemBreakdown();
  return 0;
}
