#include "common/status.h"

namespace dicho {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace dicho
