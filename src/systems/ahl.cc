#include "systems/ahl.h"

#include <set>

namespace dicho::systems {

namespace {

class ShardStateView : public contract::StateView {
 public:
  explicit ShardStateView(
      std::function<const std::string*(const std::string&)> lookup)
      : lookup_(std::move(lookup)) {}
  Status Get(const Slice& key, std::string* value) override {
    const std::string* v = lookup_(key.ToString());
    if (v == nullptr) return Status::NotFound();
    *value = *v;
    return Status::Ok();
  }

 private:
  std::function<const std::string*(const std::string&)> lookup_;
};

}  // namespace

AhlSystem::AhlSystem(sim::Simulator* sim, sim::SimNetwork* net,
                     const sim::CostModel* costs, AhlConfig config)
    : sim_(sim),
      net_(net),
      costs_(costs),
      config_(config),
      partitioner_(config.num_shards),
      planner_(&partitioner_),
      shard_state_(config.num_shards),
      contracts_(contract::ContractRegistry::CreateDefault()) {
  runtime::TransportConfig bft_transport;
  bft_transport.kind = runtime::TransportKind::kBft;
  bft_transport.bft = config_.bft;
  bft_transport.bft.forced_f = static_cast<int>(config_.forced_f);
  NodeId next = runtime::kAhlBase;
  auto span = [&](uint32_t count) {
    std::vector<NodeId> ids;
    for (uint32_t i = 0; i < count; i++) ids.push_back(next++);
    return ids;
  };
  // The reference committee (BFT 2PC coordinator shard).
  committee_ = std::make_unique<runtime::Transport>(
      sim, net, costs, span(config_.nodes_per_shard), bft_transport, nullptr);
  for (uint32_t s = 0; s < config_.num_shards; s++) {
    shard_bft_.push_back(std::make_unique<runtime::Transport>(
        sim, net, costs, span(config_.nodes_per_shard), bft_transport,
        [this, s](size_t node_index, uint64_t, const std::string& cmd) {
          // Apply once, on the shard's first node (shared state object).
          if (node_index == 0) ApplyShardEntry(s, cmd);
        }));
  }
}

void AhlSystem::Start() {
  committee_->Start();
  for (auto& shard : shard_bft_) shard->Start();
  if (config_.epoch > 0) ScheduleReconfiguration();
}

void AhlSystem::ScheduleReconfiguration() {
  sim_->Schedule(config_.epoch, [this] {
    // Drain and reshuffle: shards stop accepting work for the pause window.
    reconfiguring_ = true;
    reconfigurations_++;
    sim_->Schedule(config_.reconfig_pause, [this] {
      reconfiguring_ = false;
      ScheduleReconfiguration();
    });
  });
}

void AhlSystem::ApplyShardEntry(uint32_t shard, const std::string& cmd) {
  core::TxnRequest request;
  if (!core::TxnRequest::Deserialize(cmd, &request)) return;
  ShardStateView view([this, shard](const std::string& key) -> const std::string* {
    auto it = shard_state_[shard].find(key);
    return it == shard_state_[shard].end() ? nullptr : &it->second;
  });
  contract::Contract* contract = contracts_->Lookup(
      request.contract.empty() ? "ycsb" : request.contract);
  if (contract == nullptr) return;
  contract::WriteSet writes;
  if (contract->Execute(request, &view, &writes, nullptr).ok()) {
    for (const auto& [key, value] : writes) {
      // Only this shard's keys are applied here; cross-shard requests are
      // replicated to every involved shard.
      if (partitioner_.ShardOf(key) == shard) {
        shard_state_[shard][key] = value;
      }
    }
  }
}

void AhlSystem::Submit(const core::TxnRequest& request, core::TxnCallback cb) {
  auto txn = std::make_shared<PendingTxn>();
  txn->request = request;
  txn->cb = std::move(cb);
  txn->submit_time = sim_->Now();

  if (reconfiguring_) {
    // Shards are reconfiguring: the request waits for the new epoch.
    sim_->Schedule(config_.reconfig_pause, [this, txn] {
      Submit(txn->request, std::move(txn->cb));
    });
    return;
  }

  // Routing via the shared layered planner: plan.shards is the sorted
  // distinct shard list the old per-system std::set computed.
  sharding::TxnShardPlan plan = planner_.Plan(txn->request);
  if (!plan.cross_shard()) {
    shard_stats_.single_shard_txns++;
    SubmitSingleShard(txn, plan.home());
  } else {
    shard_stats_.cross_shard_txns++;
    SubmitCrossShard(txn, plan.shards);
  }
}

void AhlSystem::SubmitSingleShard(std::shared_ptr<PendingTxn> txn,
                                  uint32_t shard) {
  consensus::BftNode* entry = shard_bft_[shard]->bft()->all()[0];
  std::string cmd = txn->request.Serialize();
  net_->Send(config_.client_node, entry->id(), txn->request.PayloadBytes() + 96,
             [this, txn, entry, cmd = std::move(cmd)]() mutable {
               entry->Submit(std::move(cmd), [this, txn](Status s, uint64_t) {
                 Finish(txn, s,
                        s.ok() ? core::AbortReason::kNone
                               : core::AbortReason::kUnavailable);
               });
             });
}

void AhlSystem::SubmitCrossShard(std::shared_ptr<PendingTxn> txn,
                                 std::vector<uint32_t> shards) {
  // BFT 2PC: (1) the reference committee reaches consensus on the
  // transaction (prepare decision is now fault-tolerant), (2) every
  // involved shard runs consensus to lock/stage it, (3) the committee
  // reaches consensus on the commit decision, (4) shards apply. Steps 2 and
  // 4 are folded into one shard consensus each here; the committee rounds
  // are real BFT instances.
  consensus::BftNode* committee_entry = committee_->bft()->all()[0];
  std::string cmd = txn->request.Serialize();
  std::string prepare_cmd = "prepare:" + cmd;

  net_->Send(
      config_.client_node, committee_entry->id(),
      txn->request.PayloadBytes() + 96,
      [this, txn, committee_entry, cmd, prepare_cmd, shards]() mutable {
        shard_stats_.two_pc_rounds++;  // committee prepare consensus
        committee_entry->Submit(prepare_cmd, [this, txn, cmd, shards](
                                                 Status s, uint64_t) {
          if (!s.ok()) {
            Finish(txn, s, core::AbortReason::kUnavailable);
            return;
          }
          // Each shard replicates the staged transaction via its own BFT.
          auto remaining = std::make_shared<size_t>(shards.size());
          for (uint32_t shard : shards) {
            consensus::BftNode* entry = shard_bft_[shard]->bft()->all()[0];
            entry->Submit(cmd, [this, txn, remaining](Status vote, uint64_t) {
              if (!vote.ok()) {
                if (*remaining != 0) {
                  *remaining = 0;
                  Finish(txn, vote, core::AbortReason::kUnavailable);
                }
                return;
              }
              if (*remaining == 0 || --(*remaining) != 0) return;
              // Commit decision through the committee.
              consensus::BftNode* committee_entry2 =
                  committee_->bft()->all()[0];
              shard_stats_.two_pc_rounds++;  // committee commit consensus
              committee_entry2->Submit(
                  "commit:" + std::to_string(txn->request.txn_id),
                  [this, txn](Status decision, uint64_t) {
                    Finish(txn, decision,
                           decision.ok() ? core::AbortReason::kNone
                                         : core::AbortReason::kUnavailable);
                  });
            });
          }
        });
      });
}

void AhlSystem::Finish(std::shared_ptr<PendingTxn> txn, Status status,
                       core::AbortReason reason) {
  core::TxnResult result;
  result.status = status;
  result.reason = reason;
  result.submit_time = txn->submit_time;
  result.finish_time = sim_->Now();
  if (status.ok()) {
    stats_.committed++;
  } else {
    stats_.aborted++;
    stats_.aborts_by_reason[reason]++;
  }
  txn->cb(result);
}

void AhlSystem::Query(const core::ReadRequest& request, core::ReadCallback cb) {
  stats_.queries++;
  Time submit_time = sim_->Now();
  uint32_t shard = partitioner_.ShardOf(request.key);
  NodeId target = shard_bft_[shard]->bft()->all()[0]->id();
  net_->Send(config_.client_node, target, 64 + request.key.size(),
             [this, shard, target, key = request.key, cb = std::move(cb),
              submit_time]() mutable {
               sim_->Schedule(
                   costs_->fabric_query_auth_us, [this, shard, target, key,
                                                  cb = std::move(cb),
                                                  submit_time]() mutable {
                     auto it = shard_state_[shard].find(key);
                     Status s = it == shard_state_[shard].end()
                                    ? Status::NotFound()
                                    : Status::Ok();
                     std::string value =
                         it == shard_state_[shard].end() ? "" : it->second;
                     net_->Send(target, config_.client_node, 64 + value.size(),
                                [this, cb = std::move(cb), submit_time, s,
                                 value = std::move(value)] {
                                  core::ReadResult result;
                                  result.status = s;
                                  result.value = value;
                                  result.submit_time = submit_time;
                                  result.finish_time = sim_->Now();
                                  cb(result);
                                });
                   });
             });
}

}  // namespace dicho::systems
