#ifndef DICHO_TESTING_SERIALIZABILITY_H_
#define DICHO_TESTING_SERIALIZABILITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dicho::testing {

/// What a committed transaction observed and wrote, plus its position in the
/// candidate serial order the executor claims is equivalent:
///   OCC        — commit (validation) order
///   MVCC       — commit_ts (writers) / start_ts (read-only snapshots)
///   lock table — strict-2PL commit order
struct RecordedTxn {
  uint64_t id = 0;
  uint64_t serial_order = 0;
  std::vector<std::pair<std::string, std::string>> reads;   // key -> seen value
  std::vector<std::pair<std::string, std::string>> writes;  // key -> new value
};

/// Replays `committed` in serial_order against a fresh oracle map: every
/// recorded read must equal the oracle's value at that point (missing keys
/// read as ""), then the writes apply. If the replay reproduces every read,
/// the history is serializable in that order — the certificate the txn-layer
/// property tests and the sim_fuzz scenario rely on. Returns false and fills
/// `error` with the first divergence otherwise.
bool CheckSerialEquivalence(
    const std::map<std::string, std::string>& initial,
    std::vector<RecordedTxn> committed, std::string* error);

struct HistoryConfig {
  uint32_t num_txns = 48;
  uint32_t num_keys = 10;
  /// Keys touched per transaction (1..max_ops).
  uint32_t max_ops = 4;
  /// Concurrently active transactions the interleaver juggles.
  uint32_t max_concurrent = 6;
  double read_only_prob = 0.25;
};

struct HistoryResult {
  std::vector<RecordedTxn> committed;  // includes a final audit read of all keys
  uint64_t attempted = 0;
  uint64_t aborted = 0;
  /// Executor-internal progress violations (stuck scheduler, impossible
  /// grant states). Empty on a healthy run.
  std::vector<std::string> errors;
};

/// Random interleaved histories through each concurrency-control scheme.
/// Deterministic per (seed, config). Every executor appends a final
/// audit transaction reading the whole key universe, so the serial check
/// also certifies the final state.
HistoryResult RunOccHistory(uint64_t seed, const HistoryConfig& config);
HistoryResult RunMvccHistory(uint64_t seed, const HistoryConfig& config);
HistoryResult RunLockTableHistory(uint64_t seed, const HistoryConfig& config);

}  // namespace dicho::testing

#endif  // DICHO_TESTING_SERIALIZABILITY_H_
