file(REMOVE_RECURSE
  "CMakeFiles/fig07_cft_vs_bft.dir/fig07_cft_vs_bft.cc.o"
  "CMakeFiles/fig07_cft_vs_bft.dir/fig07_cft_vs_bft.cc.o.d"
  "fig07_cft_vs_bft"
  "fig07_cft_vs_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cft_vs_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
