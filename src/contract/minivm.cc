#include "contract/minivm.h"

#include <cstdlib>
#include <sstream>

namespace dicho::contract {
namespace {

int64_t AsInt(const std::string& cell) {
  return cell.empty() ? 0 : strtoll(cell.c_str(), nullptr, 10);
}

std::string FromInt(int64_t v) { return std::to_string(v); }

struct OpNameEntry {
  const char* name;
  OpCode op;
  bool has_operand;
};

constexpr OpNameEntry kOpTable[] = {
    {"PUSH", OpCode::kPush, true},   {"ARG", OpCode::kArg, true},
    {"POP", OpCode::kPop, false},    {"DUP", OpCode::kDup, false},
    {"SWAP", OpCode::kSwap, false},  {"CONCAT", OpCode::kConcat, false},
    {"ADD", OpCode::kAdd, false},    {"SUB", OpCode::kSub, false},
    {"MUL", OpCode::kMul, false},    {"DIV", OpCode::kDiv, false},
    {"LT", OpCode::kLt, false},      {"GT", OpCode::kGt, false},
    {"EQ", OpCode::kEq, false},      {"NOT", OpCode::kNot, false},
    {"JMP", OpCode::kJmp, true},     {"JZ", OpCode::kJz, true},
    {"SLOAD", OpCode::kSload, false}, {"SSTORE", OpCode::kSstore, false},
    {"ABORT", OpCode::kAbort, false}, {"HALT", OpCode::kHalt, false},
};

}  // namespace

Result<Program> Assemble(const std::string& source) {
  Program program;
  std::map<std::string, size_t> labels;
  std::vector<std::pair<size_t, std::string>> fixups;  // instr idx -> label

  std::istringstream stream(source);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    line_no++;
    // Strip comments and whitespace.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank

    if (word.back() == ':') {
      labels[word.substr(0, word.size() - 1)] = program.size();
      if (!(ls >> word)) continue;  // label-only line
    }

    const OpNameEntry* entry = nullptr;
    for (const auto& e : kOpTable) {
      if (word == e.name) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown opcode " + word);
    }
    Instruction instr{entry->op, ""};
    if (entry->has_operand) {
      if (!(ls >> instr.operand)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": missing operand for " + word);
      }
      if (entry->op == OpCode::kJmp || entry->op == OpCode::kJz) {
        fixups.emplace_back(program.size(), instr.operand);
      }
    }
    program.push_back(std::move(instr));
  }

  for (const auto& [index, label] : fixups) {
    auto it = labels.find(label);
    if (it == labels.end()) {
      return Status::InvalidArgument("undefined label " + label);
    }
    program[index].operand = std::to_string(it->second);
  }
  return program;
}

Status RunProgram(const Program& program, const core::TxnRequest& request,
                  StateView* view, WriteSet* writes, uint64_t gas_limit,
                  uint64_t* gas_used) {
  std::vector<std::string> stack;
  // Writes within the run must be read-your-own-writes visible.
  std::map<std::string, std::string> local_writes;
  uint64_t gas = 0;
  size_t pc = 0;

  auto pop = [&](std::string* out) -> bool {
    if (stack.empty()) return false;
    *out = std::move(stack.back());
    stack.pop_back();
    return true;
  };

  while (pc < program.size()) {
    const Instruction& instr = program[pc];
    bool is_state =
        instr.op == OpCode::kSload || instr.op == OpCode::kSstore;
    gas += is_state ? kGasState : kGasPlain;
    if (gas > gas_limit) {
      if (gas_used != nullptr) *gas_used = gas;
      return Status::Aborted("out of gas");
    }
    pc++;

    std::string a, b;
    switch (instr.op) {
      case OpCode::kPush:
        stack.push_back(instr.operand);
        break;
      case OpCode::kArg: {
        size_t idx = static_cast<size_t>(AsInt(instr.operand));
        if (idx >= request.args.size()) {
          return Status::InvalidArgument("ARG index out of range");
        }
        stack.push_back(request.args[idx]);
        break;
      }
      case OpCode::kPop:
        if (!pop(&a)) return Status::Corruption("stack underflow");
        break;
      case OpCode::kDup:
        if (stack.empty()) return Status::Corruption("stack underflow");
        stack.push_back(stack.back());
        break;
      case OpCode::kSwap:
        if (stack.size() < 2) return Status::Corruption("stack underflow");
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      case OpCode::kConcat:
        if (!pop(&b) || !pop(&a)) return Status::Corruption("stack underflow");
        stack.push_back(a + b);
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kLt:
      case OpCode::kGt:
      case OpCode::kEq: {
        if (!pop(&b) || !pop(&a)) return Status::Corruption("stack underflow");
        int64_t x = AsInt(a), y = AsInt(b);
        int64_t r = 0;
        switch (instr.op) {
          case OpCode::kAdd: r = x + y; break;
          case OpCode::kSub: r = x - y; break;
          case OpCode::kMul: r = x * y; break;
          case OpCode::kDiv:
            if (y == 0) return Status::Aborted("division by zero");
            r = x / y;
            break;
          case OpCode::kLt: r = x < y; break;
          case OpCode::kGt: r = x > y; break;
          case OpCode::kEq: r = x == y; break;
          default: break;
        }
        stack.push_back(FromInt(r));
        break;
      }
      case OpCode::kNot:
        if (!pop(&a)) return Status::Corruption("stack underflow");
        stack.push_back(AsInt(a) == 0 ? "1" : "0");
        break;
      case OpCode::kJmp:
        pc = static_cast<size_t>(AsInt(instr.operand));
        break;
      case OpCode::kJz:
        if (!pop(&a)) return Status::Corruption("stack underflow");
        if (a.empty() || AsInt(a) == 0) {
          pc = static_cast<size_t>(AsInt(instr.operand));
        }
        break;
      case OpCode::kSload: {
        if (!pop(&a)) return Status::Corruption("stack underflow");
        auto local = local_writes.find(a);
        if (local != local_writes.end()) {
          stack.push_back(local->second);
        } else {
          std::string value;
          Status s = view->Get(a, &value);
          if (!s.ok() && !s.IsNotFound()) return s;
          stack.push_back(value);
        }
        break;
      }
      case OpCode::kSstore:
        if (!pop(&b) || !pop(&a)) return Status::Corruption("stack underflow");
        local_writes[a] = b;
        break;
      case OpCode::kAbort:
        if (gas_used != nullptr) *gas_used = gas;
        return Status::Aborted("contract abort");
      case OpCode::kHalt:
        pc = program.size();
        break;
    }
  }
  if (gas_used != nullptr) *gas_used = gas;
  for (auto& [key, value] : local_writes) {
    writes->emplace_back(key, std::move(value));
  }
  return Status::Ok();
}

void VmContract::AddMethod(const std::string& method, Program program) {
  methods_[method] = std::move(program);
}

Status VmContract::Execute(const core::TxnRequest& request, StateView* view,
                           WriteSet* writes,
                           std::map<std::string, std::string>* result_reads) {
  auto it = methods_.find(request.method);
  if (it == methods_.end()) it = methods_.find("");
  if (it == methods_.end()) {
    return Status::NotSupported("no program for method " + request.method);
  }
  (void)result_reads;
  return RunProgram(it->second, request, view, writes, gas_limit_,
                    &last_gas_used_);
}

sim::Time VmContract::ExecCost(const core::TxnRequest& request,
                               const sim::CostModel& costs) const {
  auto it = methods_.find(request.method);
  if (it == methods_.end()) it = methods_.find("");
  if (it == methods_.end()) return 0;
  // Static estimate: assume each instruction executes once.
  uint64_t gas = 0;
  for (const auto& instr : it->second) {
    bool is_state =
        instr.op == OpCode::kSload || instr.op == OpCode::kSstore;
    gas += is_state ? kGasState : kGasPlain;
  }
  return static_cast<sim::Time>(gas) * costs.vm_step_us;
}

Program CompileKvOps(const std::vector<core::Op>& ops) {
  Program program;
  for (const auto& op : ops) {
    switch (op.type) {
      case core::OpType::kRead:
        program.push_back({OpCode::kPush, op.key});
        program.push_back({OpCode::kSload, ""});
        program.push_back({OpCode::kPop, ""});
        break;
      case core::OpType::kWrite:
        program.push_back({OpCode::kPush, op.key});
        program.push_back({OpCode::kPush, op.value});
        program.push_back({OpCode::kSstore, ""});
        break;
      case core::OpType::kReadModifyWrite:
        program.push_back({OpCode::kPush, op.key});
        program.push_back({OpCode::kSload, ""});
        program.push_back({OpCode::kPop, ""});
        program.push_back({OpCode::kPush, op.key});
        program.push_back({OpCode::kPush, op.value});
        program.push_back({OpCode::kSstore, ""});
        break;
    }
  }
  program.push_back({OpCode::kHalt, ""});
  return program;
}

}  // namespace dicho::contract
