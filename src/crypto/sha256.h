#ifndef DICHO_CRYPTO_SHA256_H_
#define DICHO_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace dicho::crypto {

/// 32-byte digest type used across the ledger, Merkle structures, and
/// authenticated indexes.
using Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch — no external
/// crypto dependency. The compression function is selected once at startup:
/// x86 SHA-NI when the CPU supports it, otherwise an unrolled portable
/// implementation. Full input blocks are compressed straight from the
/// caller's buffer; only sub-block tails are staged.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const Slice& s) { Update(s.data(), s.size()); }
  /// Finalizes and returns the digest; the object must be Reset() before
  /// reuse.
  Digest Finish();

 private:
  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// One-shot hash. Zero-copy fast path: compresses whole blocks directly from
/// `data` without the incremental buffer — this is the hot call on the MPT /
/// Merkle reconstruction path.
Digest Sha256Hash(const Slice& data);
/// One-shot convenience (alias of Sha256Hash, kept for existing callers).
Digest Sha256Of(const Slice& data);
/// Hash of the concatenation of two digests (Merkle interior nodes).
Digest Sha256Pair(const Digest& a, const Digest& b);

/// Digest -> lowercase hex.
std::string DigestHex(const Digest& d);
/// Digest -> raw 32 bytes as std::string (for map keys / serialization).
std::string DigestBytes(const Digest& d);
/// Raw 32 bytes -> Digest. Pre-condition: bytes.size() == 32.
Digest DigestFromBytes(const Slice& bytes);

/// All-zero digest (genesis parent, empty-tree root sentinel).
Digest ZeroDigest();

/// True when the runtime-dispatched SHA-NI compression is in use (exposed for
/// tests and the hot-path microbenchmark report).
bool Sha256UsesHardwareAcceleration();

}  // namespace dicho::crypto

#endif  // DICHO_CRYPTO_SHA256_H_
