#ifndef DICHO_LIFECYCLE_SNAPSHOT_H_
#define DICHO_LIFECYCLE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/slice.h"
#include "crypto/sha256.h"

namespace dicho::lifecycle {

/// Content-addressed chunk store: raw digest bytes -> chunk payload. Every
/// snapshot a replica takes inserts its chunks here; buckets whose contents
/// did not change between two snapshots hash to the same digest and
/// deduplicate, which is what makes periodic snapshots cheap and delta
/// catch-up ("send only what the joiner lacks") possible.
class ChunkStore {
 public:
  /// Returns true when the chunk is new, false when it deduplicated against
  /// an existing identical chunk.
  bool Put(const crypto::Digest& digest, std::string bytes);
  const std::string* Get(const crypto::Digest& digest) const;
  bool Has(const crypto::Digest& digest) const;

  size_t chunk_count() const { return chunks_.size(); }
  uint64_t bytes_stored() const { return bytes_stored_; }
  /// Put() calls that found an identical chunk already present.
  uint64_t dedup_hits() const { return dedup_hits_; }

 private:
  std::map<std::string, std::string> chunks_;
  uint64_t bytes_stored_ = 0;
  uint64_t dedup_hits_ = 0;
};

/// A snapshot is an anchor (the last replicated-log index / sequence the
/// state reflects) plus the ordered digests of its content chunks. The
/// manifest root commits to both, so two replicas agreeing on a root agree
/// on the exact state bytes at that anchor.
struct SnapshotManifest {
  uint64_t anchor = 0;
  crypto::Digest root = crypto::ZeroDigest();
  std::vector<crypto::Digest> chunks;

  bool empty() const { return anchor == 0 && chunks.empty(); }
  /// Modeled wire size: anchor + root + one digest per chunk.
  uint64_t WireBytes() const { return 8 + 32 + 32 * chunks.size(); }
};

/// Recomputes the manifest root over (anchor, chunk digests).
crypto::Digest ManifestRoot(const SnapshotManifest& m);

struct SnapshotConfig {
  /// Fixed bucket count for key->chunk assignment. Stability matters more
  /// than balance: a key always lands in the same bucket, so a write dirties
  /// exactly one chunk and every other chunk dedups against the previous
  /// snapshot. Changing this value re-chunks the world.
  size_t buckets = 64;
};

/// Deterministic key->bucket assignment (FNV-1a; stable across platforms so
/// committed bench snapshots reproduce everywhere).
size_t BucketOf(const std::string& key, size_t buckets);

/// Chunks `state` into bucket chunks, inserts them into `store`, and returns
/// the manifest. Empty buckets are omitted (their absence is part of the
/// manifest, so the root still commits to the full state).
SnapshotManifest BuildSnapshot(const std::map<std::string, std::string>& state,
                               uint64_t anchor, const SnapshotConfig& config,
                               ChunkStore* store);

/// Rebuilds the state a manifest describes from `store`. Fails (returns
/// false) if a chunk is missing or its bytes do not hash to its digest.
bool RestoreSnapshot(const SnapshotManifest& m, const ChunkStore& store,
                     std::map<std::string, std::string>* out);

/// Canonical digest of a whole state map — the catch-up-correctness oracle:
/// a joined replica is "caught up at anchor A" iff its StateDigest equals
/// the digest of a full replay of the committed log through A.
crypto::Digest StateDigest(const std::map<std::string, std::string>& state);

/// Serializes one chunk's key/value pairs (length-prefixed, sorted order).
std::string EncodeChunk(
    const std::vector<std::pair<std::string, std::string>>& entries);
/// Decodes chunk bytes back into pairs; false on malformed input.
bool DecodeChunk(const Slice& bytes,
                 std::vector<std::pair<std::string, std::string>>* out);

}  // namespace dicho::lifecycle

#endif  // DICHO_LIFECYCLE_SNAPSHOT_H_
