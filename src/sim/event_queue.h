#ifndef DICHO_SIM_EVENT_QUEUE_H_
#define DICHO_SIM_EVENT_QUEUE_H_

// Pooled event representation + calendar pending-event set for the
// discrete-event engine. Replaces the seed's `std::function` +
// `std::priority_queue<Event>` hot loop:
//
//   * EventFn is a move-only type-erased callable with 48 bytes of inline
//     storage — nearly every closure the engine schedules (captured pointers,
//     a few ids/doubles, one std::string) fits without touching the heap.
//   * EventPool arena-allocates fixed 64-byte slots and recycles them through
//     a free list, so steady-state scheduling allocates nothing.
//   * CalendarQueue keeps the pending set ordered by a 16-byte POD key
//     (TimeKey, seq-key): a bucketed calendar over the near future (O(1)
//     amortized push, buckets sorted lazily when the drain front reaches
//     them) with a 4-ary heap of PODs as the far-future overflow. Sorting and
//     sifting move 24-byte PODs, never closures.
//
// Ordering contract (shared with Simulator): events are totally ordered by
// (TimeKey(time), seq_key) compared as unsigned integers. TimeKey is the
// raw bit pattern of the non-negative IEEE double timestamp, which preserves
// order exactly (for a, b >= 0: a < b  <=>  bits(a) < bits(b)) — the hot
// comparator never does floating-point comparison, so merge order across
// logical partitions cannot diverge by FP-compare subtleties, and the key
// doubles as a hash-stable integer representation of the timestamp.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace dicho::sim {

/// Order-preserving integer image of a non-negative finite double. The
/// engine clamps all schedule times to >= 0 and virtual time never reaches
/// infinity, so the sign bit is always clear and the IEEE ordering of the
/// raw bits equals the numeric ordering.
inline uint64_t TimeKeyOf(double t) {
  assert(t >= 0.0);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(t));
  std::memcpy(&bits, &t, sizeof(bits));
  return bits;
}

inline double TimeOfKey(uint64_t key) {
  double t;
  std::memcpy(&t, &key, sizeof(t));
  return t;
}

/// Move-only type-erased nullary callable with small-buffer optimization.
/// sizeof(EventFn) == 64: two function pointers + 48-byte inline buffer.
/// Captures larger than the buffer fall back to one heap allocation.
class EventFn {
 public:
  static constexpr size_t kInline = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInline &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* self) { (*static_cast<Fn*>(self))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            static_cast<Fn*>(self)->~Fn();
            break;
          case Op::kMove:
            ::new (self) Fn(std::move(*static_cast<Fn*>(other)));
            static_cast<Fn*>(other)->~Fn();
            break;
        }
      };
    } else {
      auto* heap = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &heap, sizeof(heap));
      invoke_ = [](void* self) {
        Fn* p;
        std::memcpy(&p, self, sizeof(p));
        (*p)();
      };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy: {
            Fn* p;
            std::memcpy(&p, self, sizeof(p));
            delete p;
            break;
          }
          case Op::kMove:
            std::memcpy(self, other, sizeof(Fn*));
            break;
        }
      };
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const { return invoke_ != nullptr; }

  void Reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op { kDestroy, kMove };

  void MoveFrom(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(Op::kMove, buf_, other.buf_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInline];
};

/// Chunked arena of EventFn slots addressed by dense uint32 index, recycled
/// through a free list. Indices stay valid until Free (chunks never move).
class EventPool {
 public:
  static constexpr size_t kChunkShift = 10;  // 1024 slots = 64 KiB per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;

  uint32_t Alloc(EventFn fn) {
    uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<uint32_t>(next_++);
      if ((idx >> kChunkShift) >= chunks_.size()) {
        chunks_.push_back(std::make_unique<EventFn[]>(kChunkSize));
      }
    }
    At(idx) = std::move(fn);
    return idx;
  }

  /// Moves the callable out and recycles the slot.
  EventFn Take(uint32_t idx) {
    EventFn fn = std::move(At(idx));
    free_.push_back(idx);
    return fn;
  }

  size_t live() const { return next_ - free_.size(); }

 private:
  EventFn& At(uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::vector<std::unique_ptr<EventFn[]>> chunks_;
  std::vector<uint32_t> free_;
  size_t next_ = 0;
};

/// Pending-event set ordered by (tkey, skey) as pure integers. Entries are
/// 24-byte PODs pointing into an external EventPool.
///
/// Structure: a calendar of `kBuckets` equal-width time buckets covering
/// [origin, horizon) plus a 4-ary min-heap holding everything at or past the
/// horizon. Pushes into the window are O(1) bucket appends; buckets are
/// sorted only when the drain front reaches them. Same-bucket arrivals after
/// that sort (zero/short-delay self-schedules) go to a small `late` heap that
/// is merged entry-by-entry at pop — pops still come out in exact global
/// (tkey, skey) order, which the oracle test pins against a reference heap.
/// The bucket width adapts to the observed event spacing; degenerate spacing
/// simply routes everything through the overflow heap, which is the plain
/// d-ary-heap behavior.
///
/// Invariant relied on throughout: a push is never earlier than the last
/// popped key (the simulator clamps schedule times to `now`, and
/// cross-partition arrivals are bounded below by the conservative lookahead
/// horizon), so passed buckets never receive entries.
class CalendarQueue {
 public:
  struct Entry {
    uint64_t tkey;
    uint64_t skey;
    uint32_t slot;
  };

  static constexpr size_t kBuckets = 256;  // power of two
  static constexpr double kDefaultWidthUs = 20.0;

  CalendarQueue() : buckets_(kBuckets) { ResetWindow(0.0, kDefaultWidthUs); }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  void Push(uint64_t tkey, uint64_t skey, uint32_t slot) {
    Entry e{tkey, skey, slot};
    count_++;
    const double t = TimeOfKey(tkey);
    if (t >= horizon_) {
      HeapPush(&overflow_, e);
      return;
    }
    const size_t b = BucketOf(t);
    // Below the drain front (a window re-base can jump the origin past the
    // engine clock, so later pushes may precede bucket cur_), or into the
    // already-sorted current bucket: the `late` heap is a front overlay that
    // Peek/Pop merge entry-by-entry, so order stays exact either way.
    if (b < cur_ || (b == cur_ && cur_sorted_)) {
      HeapPush(&late_, e);
    } else {
      buckets_[b].push_back(e);
    }
  }

  /// Smallest pending key. Pre-condition: !empty(). Mutating-const-free by
  /// design: peeking settles the drain front (sorts the reached bucket,
  /// refills the window from overflow) but never changes the pop sequence.
  const Entry& Peek() {
    assert(count_ > 0);
    Settle();
    const Entry* bucket_front = BucketFront();
    if (!late_.empty() &&
        (bucket_front == nullptr || Less(late_[0], *bucket_front))) {
      return late_[0];
    }
    return *bucket_front;
  }

  Entry Pop() {
    assert(count_ > 0);
    Settle();
    count_--;
    pops_since_adapt_++;
    const Entry* bucket_front = BucketFront();
    if (!late_.empty() &&
        (bucket_front == nullptr || Less(late_[0], *bucket_front))) {
      return HeapPop(&late_);
    }
    Entry e = *bucket_front;
    cur_pos_++;
    return e;
  }

 private:
  static bool Less(const Entry& a, const Entry& b) {
    if (a.tkey != b.tkey) return a.tkey < b.tkey;
    return a.skey < b.skey;
  }

  size_t BucketOf(double t) const {
    const double x = (t - origin_) * inv_width_;
    if (!(x > 0)) return 0;  // at or before the origin (negative cast is UB)
    auto idx = static_cast<size_t>(x);
    return idx >= kBuckets ? kBuckets - 1 : idx;
  }

  const Entry* BucketFront() const {
    const std::vector<Entry>& b = buckets_[cur_];
    return cur_pos_ < b.size() ? &b[cur_pos_] : nullptr;
  }

  /// Advances the drain front to the next pending entry: drains exhausted
  /// buckets, sorts the newly reached one, and re-bases the window on the
  /// overflow heap once the calendar is dry.
  void Settle() {
    for (;;) {
      if (!late_.empty()) return;  // late entries belong to bucket cur_
      std::vector<Entry>& b = buckets_[cur_];
      if (cur_pos_ < b.size()) {
        if (!cur_sorted_) {
          std::sort(b.begin() + static_cast<ptrdiff_t>(cur_pos_), b.end(),
                    Less);
          cur_sorted_ = true;
        }
        return;
      }
      b.clear();
      cur_pos_ = 0;
      cur_sorted_ = false;
      if (cur_ + 1 < kBuckets) {
        cur_++;
        cur_sorted_ = false;
        // Sort on first contact happens on the next loop iteration.
        if (!buckets_[cur_].empty()) {
          std::sort(buckets_[cur_].begin(), buckets_[cur_].end(), Less);
          cur_sorted_ = true;
        }
        continue;
      }
      // Window exhausted: every pending entry is in the overflow heap
      // (buckets and late are drained), so re-base on it or go idle.
      if (overflow_.empty()) {
        assert(count_ == 0);
        // Keep the window rooted where it ended so the next Push lands
        // either in a bucket or in overflow with a consistent horizon.
        ResetWindow(horizon_, width_);
        return;
      }
      MaybeAdaptWidth();
      ResetWindow(TimeOfKey(overflow_[0].tkey), width_);
      RefillFromOverflow();
    }
  }

  void ResetWindow(double origin, double width) {
    origin_ = origin;
    width_ = width;
    inv_width_ = 1.0 / width;
    horizon_ = origin_ + width_ * static_cast<double>(kBuckets);
    cur_ = 0;
    cur_pos_ = 0;
    cur_sorted_ = false;
  }

  void RefillFromOverflow() {
    while (!overflow_.empty() && TimeOfKey(overflow_[0].tkey) < horizon_) {
      Entry e = HeapPop(&overflow_);
      buckets_[BucketOf(TimeOfKey(e.tkey))].push_back(e);
    }
    if (!buckets_[cur_].empty()) {
      std::sort(buckets_[cur_].begin(), buckets_[cur_].end(), Less);
      cur_sorted_ = true;
    }
  }

  /// Adapts bucket width toward ~4 events per bucket based on the spacing
  /// observed over the last window's pops. Only consulted at window
  /// re-base, so the pop order is unaffected.
  void MaybeAdaptWidth() {
    if (pops_since_adapt_ < kBuckets) return;
    const double last_popped = origin_ + width_ * static_cast<double>(kBuckets);
    const double span = last_popped - adapt_mark_;
    if (span > 0 && pops_since_adapt_ > 0) {
      double gap = span / static_cast<double>(pops_since_adapt_);
      double target = std::max(1e-3, std::min(gap * 4.0, 1e9));
      if (target > width_ * 2.0 || target < width_ * 0.5) width_ = target;
    }
    adapt_mark_ = last_popped;
    pops_since_adapt_ = 0;
  }

  // 4-ary min-heap over PODs.
  static void HeapPush(std::vector<Entry>* h, Entry e) {
    h->push_back(e);
    size_t i = h->size() - 1;
    while (i > 0) {
      size_t parent = (i - 1) >> 2;
      if (!Less((*h)[i], (*h)[parent])) break;
      std::swap((*h)[i], (*h)[parent]);
      i = parent;
    }
  }

  static Entry HeapPop(std::vector<Entry>* h) {
    Entry top = (*h)[0];
    Entry last = h->back();
    h->pop_back();
    if (!h->empty()) {
      size_t i = 0;
      const size_t n = h->size();
      for (;;) {
        size_t first_child = (i << 2) + 1;
        if (first_child >= n) break;
        size_t best = first_child;
        size_t end = std::min(first_child + 4, n);
        for (size_t c = first_child + 1; c < end; c++) {
          if (Less((*h)[c], (*h)[best])) best = c;
        }
        if (!Less((*h)[best], last)) break;
        (*h)[i] = (*h)[best];
        i = best;
      }
      (*h)[i] = last;
    }
    return top;
  }

  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;  // 4-ary heap: keys >= horizon_
  std::vector<Entry> late_;      // 4-ary heap: arrivals into sorted cur_
  double origin_ = 0;
  double width_ = kDefaultWidthUs;
  double inv_width_ = 1.0 / kDefaultWidthUs;
  double horizon_ = 0;
  size_t cur_ = 0;
  size_t cur_pos_ = 0;
  bool cur_sorted_ = false;
  size_t count_ = 0;
  size_t pops_since_adapt_ = 0;
  double adapt_mark_ = 0;
};

}  // namespace dicho::sim

#endif  // DICHO_SIM_EVENT_QUEUE_H_
