#include <gtest/gtest.h>

#include <map>
#include <set>

#include "systems/etcd.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace dicho::workload {
namespace {

TEST(YcsbTest, KeysAreStableAndDistinct) {
  YcsbConfig config;
  YcsbWorkload workload(config);
  EXPECT_EQ(workload.KeyAt(0), workload.KeyAt(0));
  std::set<std::string> keys;
  for (int i = 0; i < 1000; i++) keys.insert(workload.KeyAt(i));
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(YcsbTest, TxnMatchesConfig) {
  YcsbConfig config;
  config.record_count = 100;
  config.record_size = 64;
  config.ops_per_txn = 4;
  YcsbWorkload workload(config, 3);
  core::TxnRequest txn = workload.NextTxn();
  EXPECT_EQ(txn.contract, "ycsb");
  ASSERT_EQ(txn.ops.size(), 4u);
  for (const auto& op : txn.ops) {
    EXPECT_EQ(op.type, core::OpType::kReadModifyWrite);
    EXPECT_EQ(op.value.size(), 64u);
  }
}

TEST(YcsbTest, MutateBytesKeepsVersionsNearIdentical) {
  YcsbConfig config;
  config.record_size = 1000;
  config.mutate_bytes = 16;
  YcsbWorkload workload(config, 3);
  std::string v1 = workload.ValueFor("user0000000007");
  std::string v2 = workload.ValueFor("user0000000007");
  ASSERT_EQ(v1.size(), 1000u);
  ASSERT_EQ(v2.size(), 1000u);
  // Each version differs from the shared per-key base in one 16-byte
  // window, so two versions differ in at most 32 positions.
  size_t diff = 0;
  for (size_t i = 0; i < v1.size(); i++) diff += v1[i] != v2[i];
  EXPECT_LE(diff, 32u);
  EXPECT_GT(diff, 0u);
  // Distinct keys get distinct bases.
  EXPECT_NE(workload.ValueFor("user0000000008"), v1);
}

TEST(YcsbTest, MutateBytesZeroMatchesRandomValueStream) {
  // Default mutate_bytes == 0 must consume the RNG exactly like
  // RandomValue() — golden traces pin the default byte stream.
  YcsbConfig config;
  config.record_size = 100;
  YcsbWorkload a(config, 9);
  YcsbWorkload b(config, 9);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(a.RandomValue(), b.ValueFor("user0000000001"));
  }
}

TEST(YcsbTest, TxnIdsAreUnique) {
  YcsbWorkload workload(YcsbConfig{}, 3);
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; i++) ids.insert(workload.NextTxn().txn_id);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(YcsbTest, FixTxnSizeDividesRecordSize) {
  YcsbConfig config;
  config.record_size = 1000;
  config.ops_per_txn = 10;
  config.fix_txn_size = true;
  YcsbWorkload workload(config, 3);
  core::TxnRequest txn = workload.NextTxn();
  uint64_t total = 0;
  for (const auto& op : txn.ops) total += op.value.size();
  EXPECT_EQ(total, 1000u);
}

TEST(YcsbTest, ReadFractionProducesReads) {
  YcsbConfig config;
  config.read_fraction = 1.0;
  YcsbWorkload workload(config, 3);
  core::TxnRequest txn = workload.NextTxn();
  EXPECT_EQ(txn.ops[0].type, core::OpType::kRead);
}

TEST(YcsbTest, SkewConcentratesKeys) {
  YcsbConfig uniform_cfg;
  uniform_cfg.record_count = 1000;
  uniform_cfg.theta = 0;
  YcsbConfig skewed_cfg = uniform_cfg;
  skewed_cfg.theta = 0.99;
  YcsbWorkload uniform(uniform_cfg, 3), skewed(skewed_cfg, 3);
  std::map<std::string, int> ucount, scount;
  for (int i = 0; i < 5000; i++) {
    ucount[uniform.NextTxn().ops[0].key]++;
    scount[skewed.NextTxn().ops[0].key]++;
  }
  int umax = 0, smax = 0;
  for (auto& [k, c] : ucount) umax = std::max(umax, c);
  for (auto& [k, c] : scount) smax = std::max(smax, c);
  EXPECT_GT(smax, umax * 5);
}

TEST(SmallbankWorkloadTest, GeneratesValidMix) {
  SmallbankConfig config;
  config.num_accounts = 100;
  SmallbankWorkload workload(config, 3);
  std::map<std::string, int> methods;
  for (int i = 0; i < 2000; i++) {
    core::TxnRequest txn = workload.NextTxn();
    EXPECT_EQ(txn.contract, "smallbank");
    methods[txn.method]++;
    if (txn.method == "send_payment") {
      ASSERT_EQ(txn.args.size(), 3u);
      EXPECT_NE(txn.args[0], txn.args[1]);
    }
    if (txn.method == "amalgamate") {
      ASSERT_EQ(txn.args.size(), 2u);
      EXPECT_NE(txn.args[0], txn.args[1]);
    }
  }
  // All six profiles appear.
  EXPECT_EQ(methods.size(), 6u);
  // write_check is the 25% heavy hitter.
  EXPECT_GT(methods["write_check"], methods["balance"]);
}

TEST(DriverTest, ClosedLoopMeasuresThroughputAndLatency) {
  sim::Simulator simulator(42);
  sim::SimNetwork network(&simulator, sim::NetworkConfig{});
  sim::CostModel costs;
  systems::EtcdConfig config;
  config.num_nodes = 3;
  systems::EtcdSystem etcd(&simulator, &network, &costs, config);
  etcd.Start();
  simulator.RunFor(1 * sim::kSec);

  YcsbConfig wcfg;
  wcfg.record_count = 100;
  wcfg.record_size = 64;
  YcsbWorkload workload(wcfg, 3);
  DriverConfig dcfg;
  dcfg.num_clients = 8;
  dcfg.warmup = 500 * sim::kMs;
  dcfg.measure = 2 * sim::kSec;
  Driver driver(&simulator, &etcd, [&] { return workload.NextTxn(); }, dcfg);
  RunMetrics m = driver.Run();
  EXPECT_GT(m.throughput_tps, 100);
  EXPECT_GT(m.committed, 100u);
  EXPECT_GT(m.txn_latency_us.Mean(), 0);
  EXPECT_NE(m.Summary().find("tps="), std::string::npos);
}

TEST(DriverTest, OpenLoopApproximatesArrivalRate) {
  sim::Simulator simulator(42);
  sim::SimNetwork network(&simulator, sim::NetworkConfig{});
  sim::CostModel costs;
  systems::EtcdConfig config;
  config.num_nodes = 3;
  systems::EtcdSystem etcd(&simulator, &network, &costs, config);
  etcd.Start();
  simulator.RunFor(1 * sim::kSec);

  YcsbConfig wcfg;
  wcfg.record_count = 100;
  wcfg.record_size = 64;
  YcsbWorkload workload(wcfg, 3);
  DriverConfig dcfg;
  dcfg.arrival_rate_tps = 500;  // far below etcd capacity
  dcfg.warmup = 1 * sim::kSec;
  dcfg.measure = 4 * sim::kSec;
  Driver driver(&simulator, &etcd, [&] { return workload.NextTxn(); }, dcfg);
  RunMetrics m = driver.Run();
  EXPECT_NEAR(m.throughput_tps, 500, 100);
}

TEST(DriverTest, QueryFractionSplitsTraffic) {
  sim::Simulator simulator(42);
  sim::SimNetwork network(&simulator, sim::NetworkConfig{});
  sim::CostModel costs;
  systems::EtcdConfig config;
  config.num_nodes = 3;
  systems::EtcdSystem etcd(&simulator, &network, &costs, config);
  etcd.Start();
  simulator.RunFor(1 * sim::kSec);
  etcd.Load("user0000000001", "x");

  YcsbConfig wcfg;
  wcfg.record_count = 100;
  wcfg.record_size = 16;
  YcsbWorkload workload(wcfg, 3);
  DriverConfig dcfg;
  dcfg.num_clients = 4;
  dcfg.warmup = 500 * sim::kMs;
  dcfg.measure = 2 * sim::kSec;
  dcfg.query_fraction = 0.5;
  Driver driver(
      &simulator, &etcd, [&] { return workload.NextTxn(); },
      [&] { return workload.NextRead(); }, dcfg);
  RunMetrics m = driver.Run();
  EXPECT_GT(m.committed, 0u);
  EXPECT_GT(m.query_latency_us.count(), 0u);
}

}  // namespace
}  // namespace dicho::workload
