// Reproduces Fig. 8: (a) Fabric's per-phase transaction latency when
// unsaturated vs saturated — validation becomes the bottleneck and blocks
// pile up once the request rate exceeds capacity; (b) query latency
// breakdown — Fabric is dominated by client authentication, TiDB by data
// access. Part (c) extends the figure with the same breakdown for Quorum,
// TiDB, and etcd over the unified phase timeline: every system stamps its
// pipeline stages into the same typed enum, so one generic printer renders
// all of them.

#include "bench_util.h"

namespace dicho::bench {
namespace {

void PhaseRow(const char* label, workload::RunMetrics* m) {
  printf("%-12s execute=%7.1fms order=%7.1fms validate=%8.1fms total=%8.1fms\n",
         label, m->phase_us("execute").Mean() / 1000.0,
         m->phase_us("order").Mean() / 1000.0,
         m->phase_us("validate").Mean() / 1000.0,
         m->txn_latency_us.Mean() / 1000.0);
}

void RunFabricBreakdown() {
  PrintHeader("Fig 8a: Fabric latency breakdown, unsaturated vs saturated");
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.record_count = 20000;
  scale.measure = 10 * sim::kSec;

  {
    World w;
    auto fabric = MakeFabric(&w, 5);
    auto m = RunYcsb(&w, fabric.get(), wcfg, scale, 0, /*arrival=*/500);
    PhaseRow("unsaturated", &m);
  }
  {
    World w;
    auto fabric = MakeFabric(&w, 5);
    auto m = RunYcsb(&w, fabric.get(), wcfg, scale, 0, /*arrival=*/1800);
    PhaseRow("saturated", &m);
    printf("  (validation queue at a peer after the run: %.0f ms of backlog)\n",
           fabric->ValidationBacklog(1) / 1000.0);
  }
}

void RunQueryBreakdown() {
  PrintHeader("Fig 8b: query latency breakdown (ms)");
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.record_count = 5000;
  scale.measure = 8 * sim::kSec;
  {
    World w;
    auto fabric = MakeFabric(&w, 5);
    auto m = RunYcsb(&w, fabric.get(), wcfg, scale, 1.0, /*arrival=*/200);
    printf("%-8s auth=%6.2fms read+net=%6.2fms total=%6.2fms\n", "fabric",
           m.phase_us("auth").Mean() / 1000.0,
           (m.query_latency_us.Mean() - m.phase_us("auth").Mean()) / 1000.0,
           m.query_latency_us.Mean() / 1000.0);
  }
  {
    World w;
    auto tidb = MakeTidb(&w, 5, 5);
    auto m = RunYcsb(&w, tidb.get(), wcfg, scale, 1.0, /*arrival=*/200);
    printf("%-8s auth=%6.2fms read+net=%6.2fms total=%6.2fms\n", "tidb", 0.0,
           m.query_latency_us.Mean() / 1000.0,
           m.query_latency_us.Mean() / 1000.0);
  }
}

/// Prints every phase the system stamped (count > 0), in timeline enum
/// order — no per-system format strings needed.
void UniformPhaseRow(const char* label, const workload::RunMetrics& m) {
  printf("%-12s", label);
  for (size_t i = 0; i < core::kNumPhases; i++) {
    const Histogram& hist = m.phase_hist[i];
    if (hist.count() == 0) continue;
    printf(" %s=%.1fms", core::PhaseName(static_cast<core::Phase>(i)),
           hist.Mean() / 1000.0);
  }
  printf(" total=%.1fms\n", m.txn_latency_us.Mean() / 1000.0);
}

void RunCrossSystemBreakdown() {
  PrintHeader("Fig 8c: txn phase breakdown across systems (unified timeline)");
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.record_count = 5000;
  scale.measure = 8 * sim::kSec;
  {
    World w;
    auto fabric = MakeFabric(&w, 5);
    auto m = RunYcsb(&w, fabric.get(), wcfg, scale, 0, /*arrival=*/500);
    UniformPhaseRow("fabric", m);
  }
  {
    World w;
    auto quorum = MakeQuorum(&w, 5);
    auto m = RunYcsb(&w, quorum.get(), wcfg, scale, 0, /*arrival=*/500);
    UniformPhaseRow("quorum-raft", m);
  }
  {
    World w;
    auto tidb = MakeTidb(&w, 5, 5);
    auto m = RunYcsb(&w, tidb.get(), wcfg, scale, 0, /*arrival=*/500);
    UniformPhaseRow("tidb", m);
  }
  {
    World w;
    auto etcd = MakeEtcd(&w, 5);
    workload::YcsbConfig kv = wcfg;
    kv.ops_per_txn = 1;  // etcd rejects multi-op requests
    auto m = RunYcsb(&w, etcd.get(), kv, scale, 0, /*arrival=*/500);
    UniformPhaseRow("etcd", m);
  }
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::RunFabricBreakdown();
  dicho::bench::RunQueryBreakdown();
  dicho::bench::RunCrossSystemBreakdown();
  return 0;
}
