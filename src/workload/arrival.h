#ifndef DICHO_WORKLOAD_ARRIVAL_H_
#define DICHO_WORKLOAD_ARRIVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/simulator.h"

namespace dicho::workload {

/// One tenant in a multi-tenant contract mix: picked by weight, stamps its
/// fee bid and contract name onto every request it originates.
struct TenantSpec {
  std::string name = "default";
  std::string contract = "ycsb";
  double weight = 1.0;
  double fee = 1.0;
};

/// One flash-crowd burst: the arrival rate is multiplied by `amplitude`
/// over [start, start + duration).
struct FlashCrowd {
  sim::Time start = 0;
  sim::Time duration = 0;
  double amplitude = 1.0;
};

/// Open-loop arrival plan. The instantaneous rate is
///
///   rate(t) = base_rate_tps × diurnal(t) × flash(t)
///
/// where diurnal(t) = 1 + diurnal_amplitude × sin(2π t / diurnal_period)
/// (mass-conserving: it integrates to 1× over any whole period) and
/// flash(t) is the product of the amplitudes of the active flash crowds.
/// Flash-crowd windows are drawn from the engine seed over [0, horizon)
/// when `flash_count > 0` and `flash_crowds` is empty; explicit windows in
/// `flash_crowds` are used verbatim (and flash_count is ignored).
struct ArrivalConfig {
  double base_rate_tps = 100.0;

  double diurnal_amplitude = 0.0;  // in [0, 1); 0 disables the curve
  sim::Time diurnal_period = 60 * sim::kSec;

  uint32_t flash_count = 0;
  double flash_amplitude = 8.0;
  sim::Time flash_duration = 2 * sim::kSec;
  std::vector<FlashCrowd> flash_crowds;
  /// Window flash crowds are drawn from; also the default drift horizon.
  sim::Time horizon = 60 * sim::kSec;

  /// Key popularity: Zipf(theta) over record_count keys, with the hot set
  /// rotating by hot_rotation_step records every hot_rotation_period of
  /// virtual time (0 period = static hot set; 0 step = record_count / 16).
  uint64_t record_count = 10000;
  double zipf_theta = 0.8;
  sim::Time hot_rotation_period = 0;
  uint64_t hot_rotation_step = 0;

  /// Tenant mix; empty means a single default tenant.
  std::vector<TenantSpec> tenants;
};

/// One generated arrival.
struct Arrival {
  sim::Time time = 0;     // absolute virtual time
  uint32_t tenant = 0;    // index into config().tenants (0 when empty)
  double fee = 1.0;       // the tenant's fee bid
  uint64_t key_index = 0; // drifted-Zipf record index in [0, record_count)
};

/// Seed-deterministic open-loop arrival engine. All randomness comes from
/// one private Rng seeded at construction — never from the simulator's
/// partition streams — so the generated sequence is byte-identical across
/// reruns and DICHO_SIM_THREADS settings; callers replay it as timestamped
/// sim events. Arrivals are sampled by Lewis thinning against MaxRate(),
/// which is exact for the piecewise-smooth rate(t) above.
class ArrivalEngine {
 public:
  ArrivalEngine(const ArrivalConfig& config, uint64_t seed);

  /// Instantaneous offered rate at virtual time t, in txn/sec.
  double RateAt(sim::Time t) const;
  /// Tight upper bound on RateAt over all t (the thinning envelope).
  double MaxRate() const;

  /// Next arrival strictly after `now`. Advances the engine's Rng: call it
  /// exactly once per dispatched arrival, in arrival order.
  Arrival Next(sim::Time now);

  /// How far the hot set has rotated at time t (record-index offset).
  uint64_t HotOffset(sim::Time t) const;
  /// Drifted-Zipf key draw at time t (Zipf rank shifted by HotOffset).
  uint64_t SampleKeyIndex(sim::Time t);

  const ArrivalConfig& config() const { return config_; }
  const std::vector<FlashCrowd>& flash_crowds() const { return crowds_; }

 private:
  uint32_t SampleTenant();

  ArrivalConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
  std::vector<FlashCrowd> crowds_;
  std::vector<double> tenant_cumweight_;
  double tenant_total_weight_ = 0;
  double max_rate_ = 0;
};

}  // namespace dicho::workload

#endif  // DICHO_WORKLOAD_ARRIVAL_H_
