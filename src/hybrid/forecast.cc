#include "hybrid/forecast.h"

#include <cmath>
#include <cstdio>

namespace dicho::hybrid {

Forecast ThroughputForecaster::Predict(const SystemDescriptor& system) const {
  double tps = system.replication == ReplicationModel::kTxnBased
                   ? factors_.txn_based_base_tps
                   : factors_.storage_based_base_tps;
  switch (system.approach) {
    case ReplicationApproach::kConsensus:
      tps *= factors_.consensus_factor;
      break;
    case ReplicationApproach::kSharedLog:
      tps *= factors_.shared_log_factor;
      break;
    case ReplicationApproach::kPrimaryBackup:
      tps *= factors_.primary_backup_factor;
      break;
  }
  switch (system.failure) {
    case FailureModel::kCft:
      tps *= factors_.cft_factor;
      break;
    case FailureModel::kBft:
      tps *= factors_.bft_factor;
      break;
    case FailureModel::kPow:
      tps *= factors_.pow_factor;
      break;
  }
  switch (system.concurrency) {
    case ConcurrencyModel::kSerial:
      tps *= factors_.serial_factor;
      break;
    case ConcurrencyModel::kOccCommit:
      tps *= factors_.occ_commit_factor;
      break;
    case ConcurrencyModel::kConcurrent:
      tps *= factors_.concurrent_factor;
      break;
    case ConcurrencyModel::kDeterministic:
      tps *= factors_.deterministic_factor;
      break;
  }
  if (system.ledger == LedgerAbstraction::kChain) {
    tps *= factors_.ledger_factor;
  }
  if (system.sharding && system.shards > 1) {
    tps *= std::pow(static_cast<double>(system.shards),
                    factors_.shard_scaling);
    tps /= 1 + factors_.cross_shard_forward_penalty *
                   system.cross_shard_fraction;
  }
  Forecast f;
  f.expected_tps = tps;
  f.low_tps = tps / 2;
  f.high_tps = tps * 2;
  return f;
}

std::string ThroughputForecaster::Report(
    const std::vector<SystemDescriptor>& systems) const {
  std::string out;
  char buf[256];
  snprintf(buf, sizeof(buf), "%-14s %12s %22s %12s\n", "System",
           "predicted", "band", "reported");
  out += buf;
  for (const auto& system : systems) {
    Forecast f = Predict(system);
    snprintf(buf, sizeof(buf), "%-14s %9.0f tps [%7.0f, %8.0f] %9.0f tps\n",
             system.name.c_str(), f.expected_tps, f.low_tps, f.high_tps,
             system.reported_tps);
    out += buf;
  }
  return out;
}

}  // namespace dicho::hybrid
