file(REMOVE_RECURSE
  "CMakeFiles/table5_tidb_grid.dir/table5_tidb_grid.cc.o"
  "CMakeFiles/table5_tidb_grid.dir/table5_tidb_grid.cc.o.d"
  "table5_tidb_grid"
  "table5_tidb_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_tidb_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
