#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "adt/mpt.h"
#include "common/random.h"

namespace dicho::adt {
namespace {

std::string RandomKey(Rng* rng) {
  // Mix of shared-prefix account keys (which create branch values: "acct1"
  // is a prefix of "acct12") and free-form keys.
  if (rng->Uniform(4) != 0) {
    return "acct" + std::to_string(rng->Uniform(200));
  }
  return rng->Bytes(rng->UniformRange(1, 12));
}

// The core contract: CommitBatch must land on the exact root sequential
// Puts produce, for any batch against any pre-existing trie — across 1000
// randomized batches (including duplicate keys within a batch, overwrites
// of existing keys, prefix keys, and empty values).
TEST(MptBatchTest, BatchRootMatchesSequentialAcrossRandomBatches) {
  Rng rng(2024);
  MerklePatriciaTrie batched;
  MerklePatriciaTrie sequential;
  for (int round = 0; round < 1000; round++) {
    const int batch_size = 1 + static_cast<int>(rng.Uniform(12));
    std::vector<std::pair<std::string, std::string>> puts;
    for (int i = 0; i < batch_size; i++) {
      puts.emplace_back(RandomKey(&rng),
                        rng.Bytes(rng.UniformRange(0, 64)));
    }
    for (const auto& [key, value] : puts) {
      batched.StagePut(key, value);
      ASSERT_TRUE(sequential.Put(key, value).ok());
    }
    MerklePatriciaTrie::BatchCommitStats stats;
    ASSERT_TRUE(batched.CommitBatch(&stats).ok());
    ASSERT_EQ(batched.RootDigest(), sequential.RootDigest())
        << "divergence at round " << round;
    ASSERT_EQ(batched.size(), sequential.size()) << "round " << round;
    // A batch can never write more nodes than the sequential path does.
    ASSERT_LE(batched.last_update_nodes(), sequential.node_count());
  }
  // The batched trie stored strictly fewer nodes: shared path nodes are
  // written once per batch, and intermediate per-key roots never exist.
  EXPECT_LT(batched.node_count(), sequential.node_count());
}

TEST(MptBatchTest, EmptyBatchIsNoOp) {
  MerklePatriciaTrie trie;
  ASSERT_TRUE(trie.Put("k", "v").ok());
  crypto::Digest before = trie.RootDigest();
  MerklePatriciaTrie::BatchCommitStats stats;
  ASSERT_TRUE(trie.CommitBatch(&stats).ok());
  EXPECT_EQ(trie.RootDigest(), before);
  EXPECT_EQ(stats.keys, 0u);
  EXPECT_EQ(stats.nodes_written, 0u);
}

TEST(MptBatchTest, LastStagedValueWins) {
  MerklePatriciaTrie batched, sequential;
  batched.StagePut("key", "first");
  batched.StagePut("other", "x");
  batched.StagePut("key", "second");
  ASSERT_TRUE(batched.CommitBatch(nullptr).ok());
  ASSERT_TRUE(sequential.Put("key", "second").ok());
  ASSERT_TRUE(sequential.Put("other", "x").ok());
  EXPECT_EQ(batched.RootDigest(), sequential.RootDigest());
  EXPECT_EQ(batched.size(), 2u);
  std::string value;
  ASSERT_TRUE(batched.Get("key", &value).ok());
  EXPECT_EQ(value, "second");
}

TEST(MptBatchTest, StagedPutsInvisibleUntilCommit) {
  MerklePatriciaTrie trie;
  trie.StagePut("key", "value");
  std::string value;
  EXPECT_TRUE(trie.Get("key", &value).IsNotFound());
  EXPECT_EQ(trie.size(), 0u);
  ASSERT_TRUE(trie.CommitBatch(nullptr).ok());
  ASSERT_TRUE(trie.Get("key", &value).ok());
  EXPECT_EQ(value, "value");
}

// Repeated epochs over the same working set: the second epoch's batch walks
// must reuse untouched sibling subtrees by digest — the memoization the
// batched commit exists for.
TEST(MptBatchTest, MemoizationHitsOnRepeatedEpochs) {
  Rng rng(7);
  MerklePatriciaTrie trie;
  for (int i = 0; i < 500; i++) {
    trie.StagePut("acct" + std::to_string(i), rng.Bytes(20));
  }
  ASSERT_TRUE(trie.CommitBatch(nullptr).ok());
  const uint64_t hits_after_load = trie.batch_reuse_hits();
  // Epoch 2: touch a small subset, as a block commit would.
  MerklePatriciaTrie::BatchCommitStats stats;
  for (int i = 0; i < 20; i++) {
    trie.StagePut("acct" + std::to_string(i * 25), rng.Bytes(20));
  }
  ASSERT_TRUE(trie.CommitBatch(&stats).ok());
  EXPECT_GT(stats.subtrees_reused, 0u);
  EXPECT_GT(trie.batch_reuse_hits(), hits_after_load);
  // Far fewer nodes rewritten than a full rebuild of 500 keys would take.
  EXPECT_LT(stats.nodes_written, trie.node_count());
}

TEST(MptBatchTest, ProofsVerifyAfterBatchCommit) {
  Rng rng(3);
  MerklePatriciaTrie trie;
  std::map<std::string, std::string> model;
  for (int i = 0; i < 100; i++) {
    std::string key = "acct" + std::to_string(i);
    std::string value = rng.Bytes(30);
    trie.StagePut(key, value);
    model[key] = value;
  }
  ASSERT_TRUE(trie.CommitBatch(nullptr).ok());
  for (const auto& [key, value] : model) {
    MerklePatriciaTrie::Proof proof;
    ASSERT_TRUE(trie.Prove(key, &proof).ok());
    EXPECT_TRUE(VerifyMptProof(trie.RootDigest(), key, value, proof));
    EXPECT_FALSE(VerifyMptProof(trie.RootDigest(), key, "tampered", proof));
  }
}

// ---------------------------------------------------------------------------
// Out-of-line values (the opt-in fast storage path, DESIGN.md §2g).

MptOptions FastOptions() {
  MptOptions options;
  options.inline_value_threshold = 256;
  return options;
}

TEST(MptOutOfLineTest, GetProveVerifyRoundTrip) {
  Rng rng(21);
  MerklePatriciaTrie trie(FastOptions());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 80; i++) {
    std::string key = "acct" + std::to_string(i);
    // Straddle the threshold: small values stay inline, large go out of
    // line, and updates can flip a key between representations.
    std::string value = rng.Bytes(i % 2 == 0 ? 1000 : 16);
    ASSERT_TRUE(trie.Put(key, value).ok());
    model[key] = value;
  }
  EXPECT_GT(trie.out_of_line_values(), 0u);
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(trie.Get(key, &got).ok());
    ASSERT_EQ(got, value);
    MerklePatriciaTrie::Proof proof;
    ASSERT_TRUE(trie.Prove(key, &proof).ok());
    EXPECT_TRUE(VerifyMptProof(trie.RootDigest(), key, value, proof));
    // A proof for an out-of-line value binds the content digest: a
    // same-length forgery must fail.
    std::string forged = value;
    forged[0] ^= 1;
    EXPECT_FALSE(VerifyMptProof(trie.RootDigest(), key, forged, proof));
  }
}

TEST(MptOutOfLineTest, RepeatedValueHitsMemoAndDedups) {
  Rng rng(33);
  MerklePatriciaTrie trie(FastOptions());
  std::string value = rng.Bytes(5000);
  ASSERT_TRUE(trie.Put("a", value).ok());
  EXPECT_EQ(trie.out_of_line_values(), 1u);
  EXPECT_EQ(trie.value_dedup_hits(), 0u);
  // Same bytes under other keys: one stored copy, digest from the memo.
  ASSERT_TRUE(trie.Put("b", value).ok());
  ASSERT_TRUE(trie.Put("c", value).ok());
  EXPECT_EQ(trie.out_of_line_values(), 1u);
  EXPECT_EQ(trie.value_dedup_hits(), 2u);
  std::string got;
  ASSERT_TRUE(trie.Get("c", &got).ok());
  EXPECT_EQ(got, value);
}

TEST(MptOutOfLineTest, BatchMatchesSequentialWithFastOptions) {
  Rng rng(55);
  MerklePatriciaTrie batched(FastOptions());
  MerklePatriciaTrie sequential(FastOptions());
  for (int round = 0; round < 50; round++) {
    for (int i = 0; i < 8; i++) {
      std::string key = RandomKey(&rng);
      std::string value = rng.Bytes(rng.Uniform(2) == 0 ? 600 : 32);
      batched.StagePut(key, value);
      ASSERT_TRUE(sequential.Put(key, value).ok());
    }
    ASSERT_TRUE(batched.CommitBatch(nullptr).ok());
    ASSERT_EQ(batched.RootDigest(), sequential.RootDigest())
        << "round " << round;
  }
}

TEST(MptOutOfLineTest, DefaultOptionsNeverGoOutOfLine) {
  Rng rng(77);
  MerklePatriciaTrie trie;  // default: inline_value_threshold = SIZE_MAX
  ASSERT_TRUE(trie.Put("k", rng.Bytes(100000)).ok());
  EXPECT_EQ(trie.out_of_line_values(), 0u);
}

// The representation is part of the commitment: the same logical state
// hashes differently inline vs out-of-line, which is why the fast path is
// an explicit opt-in (golden traces pin the default).
TEST(MptOutOfLineTest, RootDiffersFromInlineRepresentation) {
  Rng rng(88);
  std::string value = rng.Bytes(2000);
  MerklePatriciaTrie inline_trie;
  MerklePatriciaTrie fast_trie(FastOptions());
  ASSERT_TRUE(inline_trie.Put("k", value).ok());
  ASSERT_TRUE(fast_trie.Put("k", value).ok());
  EXPECT_NE(inline_trie.RootDigest(), fast_trie.RootDigest());
}

}  // namespace
}  // namespace dicho::adt
