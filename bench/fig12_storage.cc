// Reproduces Fig. 12: storage cost per record — Fabric's block storage
// (the ledger: payloads, signatures, endorsements, rw-sets) plus state
// storage vs TiDB's state-only storage. Real bytes of real data
// structures; nothing here is modeled.
//
// Paper shape: for a 5000-byte record, Fabric consumes ~5000 B of state
// plus ~21.7 KB of block storage per record; TiDB stores ~the record.

#include "bench_util.h"

namespace dicho::bench {
namespace {

void Run() {
  PrintHeader("Fig 12: storage bytes per record (insert workload)");
  const size_t kSizes[] = {100, 1000, 5000};
  printf("%-8s %16s %16s %16s\n", "size", "fabric state", "fabric ledger",
         "tidb state");

  for (size_t size : kSizes) {
    const uint64_t kRecords = 300;
    uint64_t fabric_state = 0, fabric_ledger = 0, tidb_state = 0;
    {
      World w;
      auto fabric = MakeFabric(&w, 5);
      workload::YcsbConfig wcfg;
      wcfg.record_size = size;
      wcfg.record_count = kRecords;
      wcfg.read_modify_write = false;
      workload::YcsbWorkload workload(wcfg, 7);
      uint64_t done = 0;
      for (uint64_t i = 0; i < kRecords; i++) {
        core::TxnRequest req;
        req.txn_id = i + 1;
        req.client_id = i;
        req.contract = "ycsb";
        req.ops = {{core::OpType::kWrite, workload.KeyAt(i),
                    workload.RandomValue()}};
        fabric->Submit(req, [&done](const core::TxnResult& r) {
          done += r.status.ok();
        });
      }
      w.sim.RunFor(30 * sim::kSec);
      fabric_state = fabric->StateBytes() / kRecords;
      fabric_ledger = fabric->LedgerBytes() / kRecords;
    }
    {
      World w;
      auto tidb = MakeTidb(&w, 5, 5);
      workload::YcsbConfig wcfg;
      wcfg.record_size = size;
      wcfg.record_count = kRecords;
      workload::YcsbWorkload workload(wcfg, 7);
      uint64_t done = 0;
      for (uint64_t i = 0; i < kRecords; i++) {
        core::TxnRequest req;
        req.txn_id = i + 1;
        req.client_id = i;
        req.contract = "ycsb";
        req.ops = {{core::OpType::kWrite, workload.KeyAt(i),
                    workload.RandomValue()}};
        tidb->Submit(req, [&done](const core::TxnResult& r) {
          done += r.status.ok();
        });
      }
      w.sim.RunFor(30 * sim::kSec);
      tidb_state = tidb->StateBytes() / kRecords;
    }
    printf("%6zuB %14lluB %14lluB %14lluB\n", size,
           static_cast<unsigned long long>(fabric_state),
           static_cast<unsigned long long>(fabric_ledger),
           static_cast<unsigned long long>(tidb_state));
  }

  PrintHeader(
      "Fig 12b: fast-storage state footprint under field updates "
      "(logical vs physical bytes per record)");
  // 6 versions of every record, each a 32-byte field update — the shape the
  // content-addressed delta store (src/storage/delta) exploits. The plain
  // state keeps only the head version (logical == physical); the
  // delta-backed state additionally retains every historical version, yet
  // its physical footprint stays near the logical head-state size because
  // each non-anchor version stores as a small delta.
  printf("%-8s %16s %18s\n", "size", "fabric logical", "fabric+fs physical");
  for (size_t size : {size_t(1000), size_t(5000)}) {
    const uint64_t kRecords = 200;
    const int kVersions = 6;
    auto run = [&](bool fast) {
      World w;
      auto fabric = MakeFabric(&w, 5, 1, fast);
      workload::YcsbConfig wcfg;
      wcfg.record_size = size;
      wcfg.record_count = kRecords;
      wcfg.mutate_bytes = 32;
      workload::YcsbWorkload workload(wcfg, 7);
      uint64_t txn_id = 1;
      for (int version = 0; version < kVersions; version++) {
        for (uint64_t i = 0; i < kRecords; i++) {
          core::TxnRequest req;
          req.txn_id = txn_id++;
          req.client_id = i;
          req.contract = "ycsb";
          std::string key = workload.KeyAt(i);
          req.ops = {{core::OpType::kWrite, key, workload.ValueFor(key)}};
          fabric->Submit(req, [](const core::TxnResult&) {});
        }
        w.sim.RunFor(10 * sim::kSec);
      }
      return fast ? fabric->StatePhysicalBytes() : fabric->StateBytes();
    };
    uint64_t logical = run(false) / kRecords;
    uint64_t physical = run(true) / kRecords;
    printf("%6zuB %14lluB %16lluB\n", size,
           static_cast<unsigned long long>(logical),
           static_cast<unsigned long long>(physical));
  }
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
