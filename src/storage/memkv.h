#ifndef DICHO_STORAGE_MEMKV_H_
#define DICHO_STORAGE_MEMKV_H_

#include <map>
#include <memory>
#include <string>

#include "storage/kv.h"

namespace dicho::storage {

/// Reference KvStore over std::map — the oracle the property tests compare
/// the real engines against, and a lightweight state backend for unit tests.
class MemKv : public KvStore {
 public:
  Status Put(const Slice& key, const Slice& value) override {
    auto [it, inserted] = map_.insert_or_assign(key.ToString(), value.ToString());
    (void)it;
    (void)inserted;
    return Status::Ok();
  }

  Status Delete(const Slice& key) override {
    map_.erase(key.ToString());
    return Status::Ok();
  }

  Status Get(const Slice& key, std::string* value) override {
    auto it = map_.find(key.ToString());
    if (it == map_.end()) return Status::NotFound();
    *value = it->second;
    return Status::Ok();
  }

  Status Write(const WriteBatch& batch) override {
    for (const auto& op : batch.ops()) {
      if (op.type == WriteBatch::OpType::kPut) {
        map_[op.key] = op.value;
      } else {
        map_.erase(op.key);
      }
    }
    return Status::Ok();
  }

  class Iter : public Iterator {
   public:
    explicit Iter(const std::map<std::string, std::string>* m) : map_(m) {}
    bool Valid() const override { return it_ != map_->end(); }
    void SeekToFirst() override { it_ = map_->begin(); }
    void Seek(const Slice& target) override {
      it_ = map_->lower_bound(target.ToString());
    }
    void Next() override { ++it_; }
    Slice key() const override { return Slice(it_->first); }
    Slice value() const override { return Slice(it_->second); }

   private:
    const std::map<std::string, std::string>* map_;
    std::map<std::string, std::string>::const_iterator it_;
  };

  std::unique_ptr<Iterator> NewIterator() override {
    return std::make_unique<Iter>(&map_);
  }

  uint64_t ApproximateSize() const override {
    uint64_t total = 0;
    for (const auto& [k, v] : map_) total += k.size() + v.size();
    return total;
  }

  size_t size() const { return map_.size(); }
  const std::map<std::string, std::string>& map() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace dicho::storage

#endif  // DICHO_STORAGE_MEMKV_H_
