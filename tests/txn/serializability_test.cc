#include <gtest/gtest.h>

#include <string>

#include "testing/serializability.h"

namespace dicho::testing {
namespace {

// Serializability property tests: each concurrency-control scheme runs
// random interleaved histories and must produce a commit set that replays
// cleanly in its claimed serial order (OCC validation order, MVCC timestamp
// order, strict-2PL commit order). Every history ends with an audit
// transaction reading the whole key universe, so the certificate also pins
// the final database state. Histories are seed-deterministic — a failing
// seed replays identically.

void ExpectSerializable(const char* scheme, const HistoryResult& result,
                        uint64_t seed) {
  for (const std::string& err : result.errors) {
    ADD_FAILURE() << scheme << " seed " << seed << " executor error: " << err;
  }
  std::string error;
  EXPECT_TRUE(CheckSerialEquivalence({}, result.committed, &error))
      << scheme << " seed " << seed << ": " << error;
  // The final audit txn always commits, so a healthy run is never empty.
  EXPECT_FALSE(result.committed.empty()) << scheme << " seed " << seed;
}

TEST(SerializabilityPropertyTest, OccHistoriesAreSerializable) {
  HistoryConfig config;
  for (uint64_t seed = 1; seed <= 25; seed++) {
    HistoryResult result = RunOccHistory(seed, config);
    ExpectSerializable("occ", result, seed);
    EXPECT_GT(result.committed.size(), 1u) << "seed " << seed;
  }
}

TEST(SerializabilityPropertyTest, MvccHistoriesAreSerializable) {
  HistoryConfig config;
  for (uint64_t seed = 1; seed <= 25; seed++) {
    HistoryResult result = RunMvccHistory(seed, config);
    ExpectSerializable("mvcc", result, seed);
    EXPECT_GT(result.committed.size(), 1u) << "seed " << seed;
  }
}

TEST(SerializabilityPropertyTest, LockTableHistoriesAreSerializable) {
  HistoryConfig config;
  for (uint64_t seed = 1; seed <= 25; seed++) {
    HistoryResult result = RunLockTableHistory(seed, config);
    ExpectSerializable("lock", result, seed);
    EXPECT_GT(result.committed.size(), 1u) << "seed " << seed;
  }
}

TEST(SerializabilityPropertyTest, HighContentionStaysSerializable) {
  // Two hot keys, long transactions: maximal conflict pressure.
  HistoryConfig config;
  config.num_keys = 2;
  config.max_ops = 2;
  config.max_concurrent = 8;
  config.num_txns = 64;
  for (uint64_t seed = 1; seed <= 10; seed++) {
    ExpectSerializable("occ-hot", RunOccHistory(seed, config), seed);
    ExpectSerializable("mvcc-hot", RunMvccHistory(seed, config), seed);
    ExpectSerializable("lock-hot", RunLockTableHistory(seed, config), seed);
  }
}

TEST(SerializabilityPropertyTest, HistoriesAreSeedDeterministic) {
  HistoryConfig config;
  for (uint64_t seed : {3u, 17u}) {
    HistoryResult a = RunLockTableHistory(seed, config);
    HistoryResult b = RunLockTableHistory(seed, config);
    ASSERT_EQ(a.committed.size(), b.committed.size());
    for (size_t i = 0; i < a.committed.size(); i++) {
      EXPECT_EQ(a.committed[i].id, b.committed[i].id);
      EXPECT_EQ(a.committed[i].serial_order, b.committed[i].serial_order);
      EXPECT_EQ(a.committed[i].reads, b.committed[i].reads);
      EXPECT_EQ(a.committed[i].writes, b.committed[i].writes);
    }
    EXPECT_EQ(a.attempted, b.attempted);
    EXPECT_EQ(a.aborted, b.aborted);
  }
}

TEST(SerialEquivalenceCheckerTest, RejectsNonSerializableHistory) {
  // Classic lost update: both transactions read the initial value then
  // write, so no serial order can reproduce both reads.
  RecordedTxn t1;
  t1.id = 1;
  t1.serial_order = 1;
  t1.reads = {{"x", ""}};
  t1.writes = {{"x", "a"}};
  RecordedTxn t2;
  t2.id = 2;
  t2.serial_order = 2;
  t2.reads = {{"x", ""}};  // stale: serially it must see "a"
  t2.writes = {{"x", "b"}};
  std::string error;
  EXPECT_FALSE(CheckSerialEquivalence({}, {t1, t2}, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dicho::testing
