# Empty dependencies file for table2_taxonomy.
# This may be replaced when dependencies are built.
