#ifndef DICHO_CONSENSUS_POW_H_
#define DICHO_CONSENSUS_POW_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dicho::consensus {

using sim::NodeId;
using sim::Time;

struct PowConfig {
  /// Mean interval between blocks found across the whole network (Bitcoin:
  /// 600 s; a permissioned PoW like BlockchainDB's: seconds).
  Time mean_block_interval = 10 * sim::kSec;
  /// Blocks buried this deep count as confirmed.
  int confirm_depth = 2;
  size_t max_txns_per_block = 1000;
};

/// Proof-of-work longest-chain network. Mining is simulated: each miner's
/// time-to-solution is exponential with mean n * mean_block_interval, so the
/// network as a whole finds blocks at the configured rate. Forks happen
/// organically when two miners solve within a propagation delay of each
/// other; the longest-chain rule resolves them, and transactions only
/// confirm once buried confirm_depth blocks deep — which is exactly the
/// liveness-over-safety tradeoff the paper attributes to public chains
/// (Section 3.1.3).
class PowNetwork {
 public:
  using ConfirmCallback = std::function<void(Status, uint64_t height)>;
  /// apply(node, height, txn) once per confirmed transaction per node.
  using ApplyFn =
      std::function<void(NodeId, uint64_t height, const std::string& txn)>;

  PowNetwork(sim::Simulator* sim, sim::SimNetwork* net,
             std::vector<NodeId> miners, PowConfig config, ApplyFn apply);

  /// Begins mining on every node.
  void Start();

  /// Adds a transaction to the global mempool; `cb` fires when its block is
  /// confirm_depth-deep on the miner that first included it.
  void Submit(std::string txn, ConfirmCallback cb);

  // Introspection ------------------------------------------------------------
  uint64_t blocks_mined() const { return blocks_mined_; }
  uint64_t forks_observed() const { return forks_; }
  uint64_t chain_height(NodeId node) const { return tip_height_.at(node); }
  uint64_t confirmed_txns() const { return confirmed_txns_; }

 private:
  struct Block {
    uint64_t id;
    uint64_t parent;  // 0 = genesis
    uint64_t height;
    NodeId miner;
    std::vector<std::string> txns;
  };

  void ScheduleMining(NodeId miner);
  void OnBlockFound(NodeId miner, uint64_t mining_epoch);
  void DeliverBlock(NodeId node, uint64_t block_id);
  void ConfirmUpTo(NodeId node, uint64_t tip_id);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  std::vector<NodeId> miners_;
  PowConfig config_;
  ApplyFn apply_;

  std::map<uint64_t, Block> blocks_;
  uint64_t next_block_id_ = 1;
  std::vector<std::pair<std::string, ConfirmCallback>> mempool_;
  std::map<std::string, ConfirmCallback> awaiting_confirm_;  // txn -> cb

  std::map<NodeId, uint64_t> tip_;         // node -> block id (0 = genesis)
  std::map<NodeId, uint64_t> tip_height_;  // node -> height
  std::map<NodeId, uint64_t> mining_epoch_;
  std::map<NodeId, uint64_t> confirmed_height_;  // applied/confirmed prefix
  uint64_t blocks_mined_ = 0;
  uint64_t forks_ = 0;
  uint64_t confirmed_txns_ = 0;
};

}  // namespace dicho::consensus

#endif  // DICHO_CONSENSUS_POW_H_
