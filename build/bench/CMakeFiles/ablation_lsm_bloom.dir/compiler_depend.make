# Empty compiler generated dependencies file for ablation_lsm_bloom.
# This may be replaced when dependencies are built.
