# Empty compiler generated dependencies file for fig05_ycsb_latency.
# This may be replaced when dependencies are built.
