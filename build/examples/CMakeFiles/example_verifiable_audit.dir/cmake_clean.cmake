file(REMOVE_RECURSE
  "CMakeFiles/example_verifiable_audit.dir/verifiable_audit.cc.o"
  "CMakeFiles/example_verifiable_audit.dir/verifiable_audit.cc.o.d"
  "example_verifiable_audit"
  "example_verifiable_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_verifiable_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
