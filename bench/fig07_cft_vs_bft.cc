// Reproduces Fig. 7: Quorum throughput with CFT (Raft) vs BFT (IBFT)
// consensus as the number of tolerated failures f grows.
//
// Paper shapes: both protocols sustain similar, roughly constant peak
// throughput (consensus is not Quorum's bottleneck — serial execution is),
// but IBFT shows larger variance at larger f (bigger quorums, closer to
// round-change timeouts).
//
// All (f, consensus, repetition) cells are independent sealed Worlds, so the
// 18 runs execute concurrently through RunSweep; the per-f aggregation over
// the ordered results is unchanged from the serial loop.

#include <cmath>

#include "bench_util.h"
#include "parallel.h"

namespace dicho::bench {
namespace {

struct RunConfig {
  systems::QuorumConsensus consensus;
  uint32_t nodes;
  uint64_t seed;
};

double OneRun(const RunConfig& config) {
  World w(config.seed);
  auto quorum = MakeQuorum(&w, config.nodes, config.consensus);
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;
  BenchScale scale;
  scale.record_count = 5000;
  scale.measure = 10 * sim::kSec;
  auto m = RunYcsb(&w, quorum.get(), wcfg, scale, 0, /*arrival=*/280);
  return m.throughput_tps;
}

void Run() {
  PrintHeader("Fig 7: Quorum Raft(CFT) vs IBFT(BFT), update workload");
  printf("%-4s %-6s %18s %18s\n", "f", "", "raft (n=2f+1)", "ibft (n=3f+1)");
  const int kReps = 3;
  // Config order mirrors the serial loop: per f, alternating raft/ibft reps.
  std::vector<RunConfig> configs;
  for (uint32_t f = 1; f <= 3; f++) {
    for (int rep = 0; rep < kReps; rep++) {
      configs.push_back({systems::QuorumConsensus::kRaft, 2 * f + 1,
                         100 + static_cast<uint64_t>(rep)});
      configs.push_back({systems::QuorumConsensus::kIbft, 3 * f + 1,
                         200 + static_cast<uint64_t>(rep)});
    }
  }
  std::vector<double> tps = RunSweep(configs, OneRun);

  size_t i = 0;
  for (uint32_t f = 1; f <= 3; f++) {
    double raft_sum = 0, raft_sq = 0, ibft_sum = 0, ibft_sq = 0;
    for (int rep = 0; rep < kReps; rep++) {
      double r = tps[i++];
      double b = tps[i++];
      raft_sum += r;
      raft_sq += r * r;
      ibft_sum += b;
      ibft_sq += b * b;
    }
    double raft_mean = raft_sum / kReps;
    double ibft_mean = ibft_sum / kReps;
    double raft_std = std::sqrt(std::max(0.0, raft_sq / kReps - raft_mean * raft_mean));
    double ibft_std = std::sqrt(std::max(0.0, ibft_sq / kReps - ibft_mean * ibft_mean));
    printf("%-4u %-6s %9.0f ±%5.0f %10.0f ±%5.0f tps\n", f, "", raft_mean,
           raft_std, ibft_mean, ibft_std);
  }
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
