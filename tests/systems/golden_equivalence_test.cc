// Golden-equivalence suite (ctest -L golden): every fixed-seed case in
// src/testing/golden.cc must render byte-identically to the committed
// baseline in tests/golden/. The baselines were recorded BEFORE the systems
// were retargeted onto the shared runtime layer, so these tests prove the
// refactor preserved event ordering, costs, phase stamping, and stats for
// every registered system model plus the sim-fuzz harness. Regenerate with
// `golden_gen --out tests/golden` only for intentional behavior changes.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "testing/golden.h"

namespace dicho::testing {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class GoldenEquivalenceTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenEquivalenceTest, MatchesCommittedBaseline) {
  const GoldenCase& c = GetParam();
  const std::string path =
      std::string(DICHO_GOLDEN_DIR) + "/" + c.name + ".json";
  const std::string expected = ReadFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << "missing baseline " << path
      << " — regenerate with: golden_gen --out tests/golden";
  EXPECT_EQ(expected, c.run())
      << "fixed-seed run for '" << c.name
      << "' diverged from the committed baseline " << path;
}

std::string CaseName(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string name = info.param.name;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(Golden, GoldenEquivalenceTest,
                         ::testing::ValuesIn(AllGoldenCases()), CaseName);

}  // namespace
}  // namespace dicho::testing
