#ifndef DICHO_CORE_TYPES_H_
#define DICHO_CORE_TYPES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace dicho::core {

/// One key-value operation inside a transaction.
enum class OpType : uint8_t {
  kRead = 0,
  kWrite = 1,
  /// Read the record, then write it back modified — the paper's skew
  /// experiments use single-record read-modify-write transactions.
  kReadModifyWrite = 2,
};

struct Op {
  OpType type;
  std::string key;
  std::string value;  // for writes
};

/// A transaction as submitted by a client: a contract invocation
/// (contract + method + args) or an explicit op list (KV workloads use
/// ops; Smallbank uses method/args).
struct TxnRequest {
  uint64_t txn_id = 0;
  uint64_t client_id = 0;
  std::string contract;  // "ycsb" | "smallbank" | user-registered
  std::string method;
  std::vector<std::string> args;
  std::vector<Op> ops;

  /// Approximate wire size (drives the network model).
  uint64_t PayloadBytes() const {
    uint64_t total = 64 + contract.size() + method.size();
    for (const auto& a : args) total += a.size() + 4;
    for (const auto& op : ops) total += op.key.size() + op.value.size() + 8;
    return total;
  }

  std::string Serialize() const;
  static bool Deserialize(const std::string& data, TxnRequest* out);
};

/// Why a transaction aborted — the paper breaks abort rates down by cause
/// (Fig. 9b, Fig. 10b discussion).
enum class AbortReason : uint8_t {
  kNone = 0,
  kWriteConflict,           // write-write (TiDB/Percolator)
  kReadConflict,            // stale read version (Fabric MVCC check)
  kInconsistentEndorsement, // peers returned diverging simulation results
  kContention,              // latch/lock acquisition failed or timed out
  kConstraint,              // application logic abort (e.g. overdraft)
  kUnavailable,             // no leader / node down
  kOther,
};

const char* AbortReasonName(AbortReason reason);

/// Outcome delivered to the client, with the phase-level latency breakdown
/// used by the Fig. 8 experiments.
struct TxnResult {
  Status status;
  AbortReason reason = AbortReason::kNone;
  sim::Time submit_time = 0;
  sim::Time finish_time = 0;
  /// Phase name -> time spent (e.g. "execute", "order", "validate",
  /// "commit"; database systems use "parse", "prewrite", "commit").
  std::map<std::string, sim::Time> phase_us;
  /// Values returned by read operations, keyed by record key.
  std::map<std::string, std::string> reads;

  sim::Time latency() const { return finish_time - submit_time; }
};

using TxnCallback = std::function<void(const TxnResult&)>;

/// A read-only query (served without consensus in every benchmarked
/// system — paper Section 2.1).
struct ReadRequest {
  uint64_t client_id = 0;
  std::string key;
};

struct ReadResult {
  Status status;
  std::string value;
  sim::Time submit_time = 0;
  sim::Time finish_time = 0;
  std::map<std::string, sim::Time> phase_us;

  sim::Time latency() const { return finish_time - submit_time; }
};

using ReadCallback = std::function<void(const ReadResult&)>;

/// Aggregate counters every system maintains.
struct SystemStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  std::map<AbortReason, uint64_t> aborts_by_reason;
  uint64_t queries = 0;

  double AbortRate() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0.0 : static_cast<double>(aborted) / total;
  }
};

/// Common interface of every system composition in src/systems and every
/// hybrid built by the fusion framework — the "transactional system" the
/// paper's taxonomy ranges over.
class TransactionalSystem {
 public:
  virtual ~TransactionalSystem() = default;

  virtual void Submit(const TxnRequest& request, TxnCallback cb) = 0;
  virtual void Query(const ReadRequest& request, ReadCallback cb) = 0;
  virtual const SystemStats& stats() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace dicho::core

#endif  // DICHO_CORE_TYPES_H_
