#include "sim/simulator.h"

namespace dicho::sim {

obs::TraceSink* Simulator::default_trace_sink_ = nullptr;

uint64_t Simulator::RunUntil(Time t) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the closure handle (cheap shared state) then pop.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    n++;
    executed_++;
  }
  if (now_ < t) now_ = t;
  return n;
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (!queue_.empty() && n < max_events) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    n++;
    executed_++;
  }
  return n;
}

}  // namespace dicho::sim
