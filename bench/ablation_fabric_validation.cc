// Ablation: serial vs parallel block validation in Fabric. The paper notes
// (Section 5.2.1) that serial validation is an implementation choice —
// Fabric *could* commit concurrently. This bench quantifies what that
// choice costs by varying the modeled validation parallelism.

#include "bench_util.h"

namespace dicho::bench {
namespace {

void Run() {
  PrintHeader("Ablation: Fabric validation parallelism (uniform 1KB updates)");
  printf("%-12s %10s %16s\n", "validators", "tps", "p50 latency");
  BenchScale scale;
  scale.record_count = 20000;
  scale.measure = 10 * sim::kSec;
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;

  for (uint32_t parallelism : {1u, 2u, 4u, 8u}) {
    World w;
    auto fabric = MakeFabric(&w, 5, parallelism);
    auto m = RunYcsb(&w, fabric.get(), wcfg, scale, 0,
                     /*arrival=*/1100.0 * parallelism);
    printf("%-12u %8.0f %13.0fms\n", parallelism, m.throughput_tps,
           m.txn_latency_us.Percentile(50) / 1000.0);
    fflush(stdout);
  }
  printf("(endorsement-signature checks dominate; parallel validation buys "
         "near-linear throughput until ordering saturates)\n");
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
