#include "storage/delta/delta_store.h"

#include "storage/delta/delta.h"

namespace dicho::storage::delta {
namespace {

constexpr char kFullTag = 'F';
constexpr char kDeltaTag = 'D';

}  // namespace

PutOutcome DeltaStore::Put(const Slice& key, const Slice& value) {
  PutOutcome out;
  out.logical_bytes = value.size();
  out.digest = crypto::Sha256Hash(value);
  stats_.puts++;
  stats_.logical_bytes += value.size();

  auto head_it = heads_.find(std::string(key.data(), key.size()));

  Slice existing;
  if (records_.Find(out.digest, &existing)) {
    // Identical content already stored (by this key or any other): the head
    // pointer is all that moves. A record's own chain depth was fixed under
    // the cap when it was created, so reconstruction stays bounded; for the
    // *next* version's accounting, keep the length when the head already
    // pointed here, treat a full record as a fresh anchor, and price a
    // foreign delta record conservatively at the cap (the next non-dedup
    // put then anchors).
    out.deduped = true;
    stats_.dedup_hits++;
    uint32_t chain_len = 0;
    if (head_it != heads_.end() && head_it->second.digest == out.digest) {
      chain_len = head_it->second.chain_len;
    } else if (!existing.empty() && existing[0] == kDeltaTag) {
      chain_len = options_.max_chain;
    }
    heads_[std::string(key.data(), key.size())] = Head{out.digest, chain_len};
    return out;
  }

  // Decide the encoding: delta against the current head when the head
  // exists, both sizes clear the floor, the chain has room, and the delta
  // actually saves bytes.
  bool stored_as_delta = false;
  uint32_t new_chain_len = 0;
  if (head_it != heads_.end() && value.size() >= options_.min_delta_size) {
    if (head_it->second.chain_len + 1 > options_.max_chain) {
      stats_.anchors_forced++;
    } else {
      std::string base;
      if (Reconstruct(head_it->second.digest, &base, 0).ok() &&
          base.size() >= options_.min_delta_size) {
        std::string delta;
        EncodeDelta(base, value, &delta);
        if (static_cast<double>(delta.size()) <=
            options_.max_delta_fraction * static_cast<double>(value.size())) {
          record_scratch_.clear();
          record_scratch_.push_back(kDeltaTag);
          record_scratch_.append(
              reinterpret_cast<const char*>(head_it->second.digest.data()),
              head_it->second.digest.size());
          record_scratch_.append(delta);
          stored_as_delta = true;
          new_chain_len = head_it->second.chain_len + 1;
        }
      }
    }
  }
  if (!stored_as_delta) {
    record_scratch_.clear();
    record_scratch_.push_back(kFullTag);
    record_scratch_.append(value.data(), value.size());
  }

  records_.Insert(out.digest, record_scratch_);
  out.stored_bytes = 32 + record_scratch_.size();
  out.is_delta = stored_as_delta;
  stats_.physical_bytes += out.stored_bytes;
  if (stored_as_delta) {
    stats_.delta_stored++;
  } else {
    stats_.full_stored++;
  }
  heads_[std::string(key.data(), key.size())] =
      Head{out.digest, new_chain_len};
  return out;
}

Status DeltaStore::Get(const Slice& key, std::string* value) const {
  auto it = heads_.find(std::string(key.data(), key.size()));
  if (it == heads_.end()) return Status::NotFound();
  return Reconstruct(it->second.digest, value, 0);
}

Status DeltaStore::GetByDigest(const crypto::Digest& digest,
                               std::string* value) const {
  return Reconstruct(digest, value, 0);
}

bool DeltaStore::HeadDigest(const Slice& key, crypto::Digest* digest) const {
  auto it = heads_.find(std::string(key.data(), key.size()));
  if (it == heads_.end()) return false;
  *digest = it->second.digest;
  return true;
}

Status DeltaStore::Reconstruct(const crypto::Digest& digest,
                               std::string* value, uint32_t depth) const {
  if (depth > options_.max_chain + 1) {
    return Status::Corruption("delta store: chain exceeds cap");
  }
  Slice record;
  if (!records_.Find(digest, &record)) {
    return Status::NotFound("delta store: dangling digest");
  }
  if (record.empty()) return Status::Corruption("delta store: empty record");
  const char tag = record[0];
  record.RemovePrefix(1);
  if (tag == kFullTag) {
    value->assign(record.data(), record.size());
    return Status::Ok();
  }
  if (tag != kDeltaTag || record.size() < 32) {
    return Status::Corruption("delta store: bad record");
  }
  crypto::Digest base_digest =
      crypto::DigestFromBytes(Slice(record.data(), 32));
  record.RemovePrefix(32);
  std::string base;
  Status s = Reconstruct(base_digest, &base, depth + 1);
  if (!s.ok()) return s;
  return ApplyDelta(base, record, value);
}

}  // namespace dicho::storage::delta
