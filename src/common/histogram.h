#ifndef DICHO_COMMON_HISTOGRAM_H_
#define DICHO_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace dicho {

/// Latency/throughput statistics accumulator. Stores raw samples (double,
/// unit-agnostic — callers use microseconds by convention) and answers mean /
/// percentile / min / max queries. Not thread-safe; the simulator is
/// single-threaded by design.
class Histogram {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    if (samples_.empty()) return 0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    if (samples_.empty()) return 0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0, 100].
  double Percentile(double p) {
    if (samples_.empty()) return 0;
    EnsureSorted();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  double Median() { return Percentile(50); }

  /// Population standard deviation.
  double StdDev() const {
    if (samples_.size() < 2) return 0;
    double mean = Mean();
    double acc = 0;
    for (double v : samples_) acc += (v - mean) * (v - mean);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  /// "count=... mean=... p50=... p99=... max=..." summary line.
  std::string Summary();

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-memory log-linear histogram: the metrics-registry companion to the
/// exact (sample-storing) Histogram above. Values are rounded to integer
/// units (microseconds by convention) and bucketed HdrHistogram-style —
/// values below `sub_buckets` get unit-width buckets, and every power-of-two
/// octave above that is split into `sub_buckets` equal sub-buckets, so the
/// relative quantile error is bounded by 1/sub_buckets. Two histograms with
/// the same layout merge by bucket-count addition, which makes Merge
/// associative and commutative — the property the per-node registries rely
/// on when a sweep folds worker results together.
class LogLinearHistogram {
 public:
  /// `sub_buckets` must be a power of two >= 2. Values above `max_value`
  /// land in a dedicated overflow bucket (counted, clamped in quantiles).
  explicit LogLinearHistogram(uint32_t sub_buckets = 32,
                              uint64_t max_value = uint64_t{1} << 40);

  void Add(double value, uint64_t count = 1);
  /// Requires identical (sub_buckets, max_value) layout.
  void Merge(const LogLinearHistogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t overflow_count() const { return overflow_; }
  double sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  /// Exact extrema (tracked alongside the buckets).
  double Min() const { return count_ == 0 ? 0 : static_cast<double>(min_); }
  double Max() const { return count_ == 0 ? 0 : static_cast<double>(max_); }

  /// p in [0, 100]; interpolates linearly within the selected bucket.
  /// Overflowed mass reports max_value.
  double Percentile(double p) const;

  uint32_t sub_buckets() const { return sub_buckets_; }
  uint64_t max_value() const { return max_value_; }
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_count(size_t index) const { return buckets_[index]; }

  /// Bucket layout, exposed for the boundary unit tests: the index a value
  /// maps to and the half-open value range [lower, upper) of a bucket.
  static size_t BucketIndex(uint64_t value, uint32_t sub_buckets);
  static uint64_t BucketLowerBound(size_t index, uint32_t sub_buckets);

  /// "count=... p50=... p99=... max=..." summary line.
  std::string Summary() const;

 private:
  uint32_t sub_buckets_;
  uint64_t max_value_;
  uint64_t count_ = 0;
  uint64_t overflow_ = 0;
  double sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace dicho

#endif  // DICHO_COMMON_HISTOGRAM_H_
