#ifndef DICHO_WORKLOAD_WORKLOAD_H_
#define DICHO_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/types.h"

namespace dicho::workload {

/// YCSB parameters (paper Table 3; defaults = the underlined values).
struct YcsbConfig {
  uint64_t record_count = 100000;
  size_t record_size = 1000;
  double theta = 0.0;  // Zipfian coefficient; 0 = uniform
  int ops_per_txn = 1;
  /// Fraction of *read* ops inside update transactions (0 = update-only).
  double read_fraction = 0.0;
  /// Read-modify-write ops instead of blind writes (the paper's skew
  /// experiments modify a single record: first read, then write back).
  bool read_modify_write = true;
  /// Divide record_size by ops_per_txn so the transaction payload stays
  /// constant across the op-count sweep (paper 5.3.2).
  bool fix_txn_size = false;
  /// When > 0, update values mutate only this many bytes of a stable
  /// per-key base value (a field update, not a fresh record) — the shape
  /// real YCSB-style workloads have and the one the delta store
  /// (src/storage/delta) exploits. 0 (default) keeps fully random values
  /// and a byte-identical RNG stream (golden traces).
  size_t mutate_bytes = 0;
};

/// Generates YCSB transactions and point queries.
class YcsbWorkload {
 public:
  YcsbWorkload(YcsbConfig config, uint64_t seed = 1);

  core::TxnRequest NextTxn();
  core::ReadRequest NextRead();

  /// Keys/values for pre-population.
  std::string KeyAt(uint64_t index) const;
  std::string RandomValue();
  /// Write value for `key`: RandomValue() unless mutate_bytes > 0, in which
  /// case it is the key's base value with one randomized field window.
  std::string ValueFor(const std::string& key);
  const YcsbConfig& config() const { return config_; }

 private:
  size_t EffectiveRecordSize() const {
    if (!config_.fix_txn_size || config_.ops_per_txn <= 1) {
      return config_.record_size;
    }
    return config_.record_size / static_cast<size_t>(config_.ops_per_txn);
  }

  YcsbConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
  uint64_t next_txn_id_ = 1;
};

/// Smallbank parameters: 1M accounts, Zipfian account selection with
/// theta = 1 in the paper's Fig. 6 setup.
struct SmallbankConfig {
  uint64_t num_accounts = 1000000;
  double theta = 1.0;
  int64_t initial_checking = 100000;  // cents
  int64_t initial_savings = 100000;
};

/// Generates the standard Smallbank transaction mix.
class SmallbankWorkload {
 public:
  SmallbankWorkload(SmallbankConfig config, uint64_t seed = 1);

  core::TxnRequest NextTxn();
  std::string CustomerAt(uint64_t index) const;
  const SmallbankConfig& config() const { return config_; }

 private:
  std::string PickCustomer();

  SmallbankConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
  uint64_t next_txn_id_ = 1;
};

}  // namespace dicho::workload

#endif  // DICHO_WORKLOAD_WORKLOAD_H_
