#ifndef DICHO_TESTING_SCHEDULE_H_
#define DICHO_TESTING_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace dicho::testing {

/// One timed nemesis step. Which fields matter depends on `kind`.
struct FaultAction {
  enum class Kind {
    kCrash,          // node
    kRestart,        // node
    kPartition,      // groups (replaces any existing partition)
    kHeal,           //
    kDropStart,      // drop_rate
    kDropStop,       //
    kJitterSpike,    // jitter_us
    kJitterRestore,  //
    // Elasticity (lifecycle layer). The scenario's hooks own the mechanics:
    // join = snapshot transfer + "#cfg add", leave = "#cfg rm", drain =
    // leadership hand-off first, then leave — so a hook may span many
    // simulated round trips after the action fires.
    kJoin,           // node (an id above the initial num_nodes range)
    kLeave,          // node
    kDrain,          // node
  };

  sim::Time at = 0;
  Kind kind = Kind::kCrash;
  sim::NodeId node = 0;
  std::vector<std::vector<sim::NodeId>> groups;
  double drop_rate = 0;
  sim::Time jitter_us = 0;

  std::string ToString() const;
};

const char* FaultKindName(FaultAction::Kind kind);

/// Knobs for random schedule generation. The defaults suit a small
/// consensus group; scenarios tighten the budgets to what their protocol
/// tolerates (e.g. at most f concurrently-crashed BFT replicas).
struct ScheduleConfig {
  uint32_t num_nodes = 5;
  sim::Time horizon = 10 * sim::kSec;
  /// Mean virtual-time gap between nemesis steps (exponential).
  sim::Time mean_step_gap = 400 * sim::kMs;
  /// Safety budget: never more than this many nodes down at once.
  uint32_t max_concurrent_down = 2;
  bool allow_crash = true;
  bool allow_partition = true;
  bool allow_drop = true;
  bool allow_jitter = true;
  double max_drop_rate = 0.4;
  sim::Time max_jitter_us = 20 * sim::kMs;
  /// Fraction of the horizon reserved at the end with every fault lifted
  /// (crashed nodes restarted, partitions healed, drops/jitter restored) so
  /// the system can quiesce before final invariant checks.
  double quiet_tail = 0.3;

  /// Elasticity budget (all default off — existing seeds replay the exact
  /// same schedules). Joins/leaves are generated in a post-pass on a
  /// derived RNG stream, so enabling them never perturbs the base fault
  /// draws either. Joins introduce fresh ids num_nodes, num_nodes+1, ...;
  /// leaves only ever pick distinct initial members and keep at least
  /// `min_members` of them, so a majority of the grown group stays alive.
  uint32_t max_joins = 0;
  uint32_t max_leaves = 0;
  uint32_t min_members = 3;
};

/// A seed-determined sequence of fault actions sorted by time. Same
/// (seed, config) always yields the same schedule — the repro guarantee
/// sim_fuzz prints violating seeds under.
struct FaultSchedule {
  std::vector<FaultAction> actions;
  std::string ToString() const;
};

FaultSchedule GenerateSchedule(uint64_t seed, const ScheduleConfig& config);

}  // namespace dicho::testing

#endif  // DICHO_TESTING_SCHEDULE_H_
