// Quickstart: spin up a 4-peer Fabric-style permissioned blockchain on the
// deterministic simulator, submit transactions through the public API,
// query the state, and verify the ledger.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "systems/fabric.h"

using namespace dicho;  // examples favour brevity

int main() {
  // One simulated world: virtual clock, a 1 Gb LAN, calibrated cost model.
  sim::Simulator simulator(/*seed=*/42);
  sim::SimNetwork network(&simulator, sim::NetworkConfig{});
  sim::CostModel costs;

  // A 4-peer Fabric network with a 3-orderer Raft ordering service.
  systems::FabricConfig config;
  config.num_peers = 4;
  systems::FabricSystem fabric(&simulator, &network, &costs, config);
  fabric.Start();
  simulator.RunFor(1 * sim::kSec);  // let the orderers elect a leader

  printf("ordering service ready: %s\n", fabric.Ready() ? "yes" : "no");

  // Submit a few key-value transactions.
  int committed = 0;
  for (int i = 0; i < 5; i++) {
    core::TxnRequest txn;
    txn.txn_id = i + 1;
    txn.client_id = 1;
    txn.contract = "ycsb";
    txn.ops = {{core::OpType::kWrite, "asset" + std::to_string(i),
                "owner-alice"}};
    fabric.Submit(txn, [&](const core::TxnResult& result) {
      printf("txn %d: %s in %.0f ms (execute %.0f / order %.0f / validate "
             "%.0f ms)\n",
             i, result.status.ToString().c_str(), result.latency() / 1000.0,
             result.phases.Has(dicho::core::Phase::kExecute)
                 ? result.phases.Get(dicho::core::Phase::kExecute) / 1000.0
                 : 0.0,
             result.phases.Has(dicho::core::Phase::kOrder)
                 ? result.phases.Get(dicho::core::Phase::kOrder) / 1000.0
                 : 0.0,
             result.phases.Has(dicho::core::Phase::kValidate)
                 ? result.phases.Get(dicho::core::Phase::kValidate) / 1000.0
                 : 0.0);
      committed += result.status.ok();
    });
    simulator.RunFor(2 * sim::kSec);
  }
  printf("committed %d/5\n", committed);

  // Read one key back (no consensus needed for queries).
  fabric.Query({/*client_id=*/1, "asset0"}, [](const core::ReadResult& r) {
    printf("query asset0 -> '%s' in %.1f ms\n", r.value.c_str(),
           r.latency() / 1000.0);
  });
  simulator.RunFor(1 * sim::kSec);

  // Every peer holds the full hash-linked ledger; verify it end to end.
  for (sim::NodeId peer = 0; peer < 4; peer++) {
    const ledger::Chain& chain = fabric.chain_of(peer);
    printf("peer %u: height=%llu txns=%llu ledger=%llu bytes, verify=%s\n",
           peer, static_cast<unsigned long long>(chain.height()),
           static_cast<unsigned long long>(chain.TotalTxns()),
           static_cast<unsigned long long>(chain.TotalBytes()),
           chain.Verify().ToString().c_str());
  }
  return 0;
}
