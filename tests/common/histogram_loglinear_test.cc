// LogLinearHistogram unit tests: bucket-layout invariants, merge
// associativity, quantile accuracy against the exact (sample-storing)
// Histogram as oracle, and overflow-bucket behavior. These pin the
// properties the obs metrics registry depends on — bounded relative
// quantile error (1/sub_buckets) and order-independent merging.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace dicho {
namespace {

using Buckets = LogLinearHistogram;

TEST(LogLinearBucketsTest, LinearRegionHasUnitBuckets) {
  // Values below sub_buckets map to their own unit-width bucket.
  for (uint64_t v = 0; v < 32; v++) {
    EXPECT_EQ(Buckets::BucketIndex(v, 32), v);
    EXPECT_EQ(Buckets::BucketLowerBound(v, 32), v);
  }
}

TEST(LogLinearBucketsTest, EveryValueLandsInsideItsBucket) {
  // [BucketLowerBound(i), BucketLowerBound(i+1)) must contain every value
  // that maps to index i — checked densely through several octaves and at
  // power-of-two edges far up the range.
  const uint32_t kSub = 32;
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 4096; v++) values.push_back(v);
  for (int shift = 12; shift < 40; shift++) {
    values.push_back((uint64_t{1} << shift) - 1);
    values.push_back(uint64_t{1} << shift);
    values.push_back((uint64_t{1} << shift) + 1);
    values.push_back((uint64_t{1} << shift) + (uint64_t{1} << (shift - 2)));
  }
  for (uint64_t v : values) {
    const size_t idx = Buckets::BucketIndex(v, kSub);
    EXPECT_LE(Buckets::BucketLowerBound(idx, kSub), v) << "value " << v;
    EXPECT_GT(Buckets::BucketLowerBound(idx + 1, kSub), v) << "value " << v;
  }
}

TEST(LogLinearBucketsTest, IndicesAreMonotonicWithBoundedWidth) {
  const uint32_t kSub = 32;
  size_t prev = 0;
  for (uint64_t v = 0; v < 300000; v++) {
    const size_t idx = Buckets::BucketIndex(v, kSub);
    EXPECT_GE(idx, prev) << "index not monotonic at value " << v;
    prev = idx;
  }
  // Width of any bucket at or past the linear region is at most lower/kSub:
  // that is the 1/sub_buckets relative-error bound.
  for (size_t idx = kSub; idx < Buckets::BucketIndex(uint64_t{1} << 38, kSub);
       idx++) {
    const uint64_t lower = Buckets::BucketLowerBound(idx, kSub);
    const uint64_t width = Buckets::BucketLowerBound(idx + 1, kSub) - lower;
    EXPECT_LE(width * kSub, lower) << "bucket " << idx << " too wide";
  }
}

TEST(LogLinearBucketsTest, SubBucketCountScalesPrecision) {
  // Doubling sub_buckets halves the worst-case bucket width.
  for (uint64_t v : {100u, 1000u, 54321u, 1u << 20}) {
    for (uint32_t sub : {4u, 16u, 64u}) {
      const size_t idx = Buckets::BucketIndex(v, sub);
      const uint64_t width =
          Buckets::BucketLowerBound(idx + 1, sub) - Buckets::BucketLowerBound(idx, sub);
      EXPECT_LE(width * sub, std::max<uint64_t>(v, sub)) << "v=" << v << " sub=" << sub;
    }
  }
}

std::vector<double> MixedSamples(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> uniform(1, 100000);
  std::exponential_distribution<double> expo(1.0 / 5000.0);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    // Integer-valued so the histogram's llround is lossless and the oracle
    // comparison is about bucketing, not rounding.
    const double v = (i % 2 == 0) ? static_cast<double>(uniform(rng))
                                  : std::floor(expo(rng));
    out.push_back(v);
  }
  return out;
}

TEST(LogLinearHistogramTest, MergeEqualsPooledAddsAndIsAssociative) {
  const auto sa = MixedSamples(11, 4000);
  const auto sb = MixedSamples(22, 3000);
  const auto sc = MixedSamples(33, 5000);

  LogLinearHistogram a, b, c, pooled;
  for (double v : sa) { a.Add(v); pooled.Add(v); }
  for (double v : sb) { b.Add(v); pooled.Add(v); }
  for (double v : sc) { c.Add(v); pooled.Add(v); }

  // (a + b) + c
  LogLinearHistogram left;
  left.Merge(a);
  left.Merge(b);
  left.Merge(c);
  // a + (b + c)
  LogLinearHistogram bc;
  bc.Merge(b);
  bc.Merge(c);
  LogLinearHistogram right;
  right.Merge(a);
  right.Merge(bc);

  for (const LogLinearHistogram* h : {&left, &right}) {
    EXPECT_EQ(h->count(), pooled.count());
    EXPECT_EQ(h->overflow_count(), pooled.overflow_count());
    EXPECT_DOUBLE_EQ(h->sum(), pooled.sum());
    EXPECT_DOUBLE_EQ(h->Min(), pooled.Min());
    EXPECT_DOUBLE_EQ(h->Max(), pooled.Max());
    ASSERT_EQ(h->num_buckets(), pooled.num_buckets());
    for (size_t i = 0; i < pooled.num_buckets(); i++) {
      EXPECT_EQ(h->bucket_count(i), pooled.bucket_count(i)) << "bucket " << i;
    }
    for (double p : {50.0, 95.0, 99.0}) {
      EXPECT_DOUBLE_EQ(h->Percentile(p), pooled.Percentile(p)) << "p" << p;
    }
  }
}

TEST(LogLinearHistogramTest, QuantilesTrackSortedVectorOracle) {
  // The exact Histogram stores raw samples; the log-linear estimate must be
  // within the documented relative bound (1/sub_buckets, plus one unit of
  // integer slack) of the oracle for p50/p95/p99 across distributions.
  for (uint64_t seed : {1u, 7u, 42u}) {
    const auto samples = MixedSamples(seed, 10000);
    LogLinearHistogram ll;  // sub_buckets = 32
    Histogram oracle;
    for (double v : samples) {
      ll.Add(v);
      oracle.Add(v);
    }
    for (double p : {50.0, 90.0, 95.0, 99.0}) {
      const double expected = oracle.Percentile(p);
      const double actual = ll.Percentile(p);
      EXPECT_NEAR(actual, expected, expected / 32.0 + 1.0)
          << "seed " << seed << " p" << p;
    }
  }
}

TEST(LogLinearHistogramTest, QuantilesExactInLinearRegion) {
  // Below sub_buckets every bucket is unit-width, so integer quantiles are
  // recovered exactly.
  LogLinearHistogram h(64);
  for (int v = 0; v < 64; v++) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 63);
  EXPECT_NEAR(h.Percentile(50), 31.5, 1.0);
}

TEST(LogLinearHistogramTest, OverflowBucketCountsAndClamps) {
  LogLinearHistogram h(32, /*max_value=*/1000);
  for (int i = 0; i < 50; i++) h.Add(100);
  for (int i = 0; i < 50; i++) h.Add(5000);  // above max_value
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.overflow_count(), 50u);
  // Extrema are tracked exactly even for overflowed samples...
  EXPECT_DOUBLE_EQ(h.Max(), 5000);
  // ...but quantiles that land in the overflow mass report max_value.
  EXPECT_DOUBLE_EQ(h.Percentile(99), 1000);
  // Quantiles in the in-range mass are unaffected by the overflow tail.
  EXPECT_NEAR(h.Percentile(25), 100, 100 / 32.0 + 1.0);
}

TEST(LogLinearHistogramTest, EmptyAndSingleValueEdgeCases) {
  LogLinearHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
  h.Add(777);
  for (double p : {0.0, 50.0, 100.0}) {
    // Estimates are clamped to the exact extrema, so a single sample is
    // reported exactly at every percentile.
    EXPECT_DOUBLE_EQ(h.Percentile(p), 777) << "p" << p;
  }
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
}

TEST(LogLinearHistogramTest, NegativeValuesClampToZero) {
  LogLinearHistogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), 0);
}

// --- Deep-tail accuracy (bench_overload reports p99/p99.9 from these) ------

std::vector<double> LognormalSamples(uint64_t seed, size_t n) {
  // Box-Muller lognormal: exp(mu + sigma * z). mu = ln(2000 us),
  // sigma = 1.0 gives a latency-shaped body with a multi-decade tail.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(1e-12, 1.0);
  std::vector<double> out;
  out.reserve(n);
  const double mu = std::log(2000.0), sigma = 1.0;
  for (size_t i = 0; i < n; i += 2) {
    const double r = std::sqrt(-2.0 * std::log(unit(rng)));
    const double theta = 2.0 * 3.14159265358979323846 * unit(rng);
    out.push_back(std::floor(std::exp(mu + sigma * r * std::cos(theta))));
    if (out.size() < n) {
      out.push_back(std::floor(std::exp(mu + sigma * r * std::sin(theta))));
    }
  }
  return out;
}

std::vector<double> BimodalOverloadSamples(uint64_t seed, size_t n) {
  // Overload-shaped mix: 85% fast commits around 1-3 ms, 15% stuck behind
  // the queue at 200-800 ms — the shape the metastable bench produces, where
  // p99/p99.9 land inside the sparse far mode.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> fast(1000, 3000);
  std::uniform_int_distribution<uint64_t> slow(200000, 800000);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    out.push_back(static_cast<double>(coin(rng) < 0.85 ? fast(rng) : slow(rng)));
  }
  return out;
}

double SortedVectorQuantile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[std::min(rank == 0 ? 0 : rank - 1, samples.size() - 1)];
}

TEST(LogLinearTailTest, LognormalDeepTailTracksSortedOracle) {
  // 120k samples leave ~12 above p99.99 — enough for a stable oracle rank.
  const auto samples = LognormalSamples(17, 120000);
  LogLinearHistogram ll;
  for (double v : samples) ll.Add(v);
  for (double p : {99.0, 99.9, 99.99}) {
    const double expected = SortedVectorQuantile(samples, p);
    EXPECT_NEAR(ll.Percentile(p), expected, expected / 32.0 + 1.0) << "p" << p;
  }
}

TEST(LogLinearTailTest, BimodalOverloadTailTracksSortedOracle) {
  const auto samples = BimodalOverloadSamples(23, 120000);
  LogLinearHistogram ll;
  Histogram oracle;
  for (double v : samples) {
    ll.Add(v);
    oracle.Add(v);
  }
  // p50 sits in the fast mode, p99/p99.9 deep inside the sparse slow mode;
  // the estimator must not smear mass across the two-decade gap between
  // them. Checked against both the exact Histogram and a sorted vector.
  for (double p : {50.0, 99.0, 99.9, 99.99}) {
    const double expected = SortedVectorQuantile(samples, p);
    EXPECT_NEAR(ll.Percentile(p), expected, expected / 32.0 + 1.0) << "p" << p;
    EXPECT_NEAR(oracle.Percentile(p), expected, expected / 32.0 + 1.0)
        << "oracle drifted at p" << p;
  }
  EXPECT_LT(ll.Percentile(50), 4000.0);
  EXPECT_GT(ll.Percentile(99), 150000.0);
}

TEST(LogLinearTailTest, OverflowBucketAbsorbsTheDeepTail) {
  // With max_value below the slow mode, the whole slow mode overflows: deep
  // quantiles clamp to max_value while the fast mode stays accurate —
  // exactly how a mis-sized histogram fails, pinned so the benches size
  // theirs generously.
  const auto samples = BimodalOverloadSamples(29, 50000);
  LogLinearHistogram h(32, /*max_value=*/100000);
  uint64_t above = 0;
  for (double v : samples) {
    h.Add(v);
    if (v > 100000) above++;
  }
  EXPECT_EQ(h.overflow_count(), above);
  // count() includes overflowed samples; overflow_count() is a subset tally.
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_DOUBLE_EQ(h.Percentile(99), 100000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.9), 100000.0);
  const double p50 = SortedVectorQuantile(samples, 50.0);
  EXPECT_NEAR(h.Percentile(50), p50, p50 / 32.0 + 1.0);
  // Max is still exact: overflow only affects quantile resolution.
  EXPECT_GT(h.Max(), 100000.0);
}

}  // namespace
}  // namespace dicho
