#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "systems/etcd.h"
#include "systems/fabric.h"
#include "systems/harmonylike.h"
#include "systems/harmonyshard.h"

namespace dicho::systems {
namespace {

// System-level replica lifecycle: AddReplica/AddPeer mid-traffic must end
// with the joiner's state digest equal to an original replica's — the
// catch-up-correctness oracle — while the pre-join replicas keep committing.

core::TxnRequest PutTxn(uint64_t id, const std::string& key,
                        const std::string& value) {
  core::TxnRequest req;
  req.txn_id = id;
  req.client_id = id;
  req.contract = "ycsb";
  req.ops = {{core::OpType::kWrite, key, value}};
  return req;
}

runtime::ElasticityConfig TestElasticity() {
  runtime::ElasticityConfig elasticity;
  elasticity.enabled = true;
  // Small interval so the run folds several snapshots and the transfer
  // actually crosses compaction anchors.
  elasticity.snapshot_every = 16;
  return elasticity;
}

template <typename System>
int DriveWrites(sim::Simulator* sim, System* system, int count,
                sim::Time spacing, int* committed) {
  for (int i = 0; i < count; i++) {
    sim->Schedule(static_cast<sim::Time>(i + 1) * spacing,
                  [system, i, committed] {
                    system->Submit(
                        PutTxn(static_cast<uint64_t>(i + 1),
                               "key" + std::to_string(i % 40),
                               "value" + std::to_string(i)),
                        [committed](const core::TxnResult& r) {
                          if (r.status.ok()) (*committed)++;
                        });
                  });
  }
  return count;
}

TEST(ElasticityTest, EtcdJoinerConvergesToLeaderDigest) {
  sim::Simulator sim(42);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  EtcdConfig config;
  config.num_nodes = 3;
  config.elasticity = TestElasticity();
  EtcdSystem system(&sim, &net, &costs, config);
  system.Start();
  sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(system.HasLeader());
  for (int i = 0; i < 20; i++) {
    system.Load("seed" + std::to_string(i), "loaded");
  }

  int committed = 0;
  DriveWrites(&sim, &system, 300, 5 * sim::kMs, &committed);

  runtime::JoinReport report;
  NodeId joiner = 0;
  sim.Schedule(400 * sim::kMs, [&] {
    joiner = system.AddReplica(
        [&report](const runtime::JoinReport& r) { report = r; });
  });
  sim.RunFor(30 * sim::kSec);

  ASSERT_TRUE(report.ok) << "join never completed";
  EXPECT_GT(report.anchor, 0u);
  EXPECT_GT(committed, 250);
  // Catch-up correctness oracle: the joiner's shadow digest matches an
  // original replica's once traffic quiesces.
  ASSERT_NE(system.tracker(joiner), nullptr);
  EXPECT_EQ(system.tracker(joiner)->Digest(), system.tracker(0)->Digest());
  // The transferred keys landed in the joiner's real storage engine too.
  std::string value;
  ASSERT_TRUE(system.state_of(joiner)->Get("seed0", &value).ok());
  EXPECT_EQ(value, "loaded");
}

TEST(ElasticityTest, HarmonylikeJoinerMatchesMptRoot) {
  sim::Simulator sim(42);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  HarmonyConfig config;
  config.num_nodes = 3;
  config.elasticity = TestElasticity();
  HarmonySystem system(&sim, &net, &costs, config);
  system.Start();
  sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(system.HasSequencer());
  for (int i = 0; i < 20; i++) {
    system.Load("seed" + std::to_string(i), "loaded");
  }

  int committed = 0;
  DriveWrites(&sim, &system, 300, 5 * sim::kMs, &committed);

  runtime::JoinReport report;
  sim::NodeId joiner = 0;
  sim.Schedule(400 * sim::kMs, [&] {
    joiner = system.AddReplica(
        [&report](const runtime::JoinReport& r) { report = r; });
  });
  sim.RunFor(30 * sim::kSec);

  ASSERT_TRUE(report.ok) << "join never completed";
  EXPECT_GT(committed, 250);
  ASSERT_NE(system.tracker(joiner), nullptr);
  EXPECT_EQ(system.tracker(joiner)->Digest(),
            system.tracker(system.node_ids()[0])->Digest());
  // Deterministic execution's stronger promise: the joiner's authenticated
  // state root is byte-identical to its elders'.
  EXPECT_EQ(system.state_of(joiner).RootDigest(),
            system.state_of(system.node_ids()[0]).RootDigest());
}

TEST(ElasticityTest, FabricJoinedPeerCarriesMvccVersions) {
  sim::Simulator sim(42);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  FabricConfig config;
  config.num_peers = 4;
  config.elasticity = TestElasticity();
  FabricSystem system(&sim, &net, &costs, config);
  system.Start();
  sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(system.Ready());
  for (int i = 0; i < 20; i++) {
    system.Load("seed" + std::to_string(i), "loaded");
  }

  int committed = 0;
  DriveWrites(&sim, &system, 200, 10 * sim::kMs, &committed);

  runtime::JoinReport report;
  NodeId joiner = 0;
  sim.Schedule(500 * sim::kMs, [&] {
    joiner = system.AddPeer(
        [&report](const runtime::JoinReport& r) { report = r; });
  });
  sim.RunFor(30 * sim::kSec);

  ASSERT_TRUE(report.ok) << "join never completed";
  EXPECT_GT(committed, 100);
  ASSERT_NE(system.tracker(joiner), nullptr);
  EXPECT_EQ(system.tracker(joiner)->Digest(),
            system.tracker(runtime::kReplicaBase)->Digest());
  // The joiner received values *with* their MVCC versions: spot-check that
  // some committed key reads back with the exact version peer 0 holds —
  // without it, every post-join endorsement this peer served would diverge.
  const txn::VersionedState& elder = system.state_of(runtime::kReplicaBase);
  const txn::VersionedState& young = system.state_of(joiner);
  int checked = 0;
  for (int i = 0; i < 40; i++) {
    std::string key = "key" + std::to_string(i);
    std::string ev, yv;
    uint64_t eversion = 0, yversion = 0;
    elder.Get(key, &ev, &eversion);
    young.Get(key, &yv, &yversion);
    if (eversion == 0) continue;
    EXPECT_EQ(ev, yv) << key;
    EXPECT_EQ(eversion, yversion) << key;
    checked++;
  }
  EXPECT_GT(checked, 0);
}

TEST(ElasticityTest, HarmonyShardGroupAdmitsReplica) {
  sim::Simulator sim(42);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;
  HarmonyShardConfig config;
  config.num_shards = 2;
  config.nodes_per_shard = 3;
  config.elasticity = TestElasticity();
  HarmonyShardSystem system(&sim, &net, &costs, config);
  system.Start();
  sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(system.HasSequencer());

  int committed = 0;
  DriveWrites(&sim, &system, 300, 5 * sim::kMs, &committed);

  runtime::JoinReport report;
  sim.Schedule(400 * sim::kMs, [&] {
    system.AddShardReplica(
        0, [&report](const runtime::JoinReport& r) { report = r; });
  });
  sim.RunFor(30 * sim::kSec);

  ASSERT_TRUE(report.ok) << "join never completed";
  EXPECT_GT(committed, 250);
  // The group tracker kept folding past the join; the joiner's anchor is a
  // real point in that history.
  sharding::ShardExecutor* shard = system.mutable_shard(0);
  ASSERT_NE(shard->tracker(), nullptr);
  EXPECT_LE(report.anchor, shard->tracker()->applied_seq());
  EXPECT_GT(shard->applied_epochs(), 0u);
  // The epoch path still never pays a 2PC round, grown or not.
  EXPECT_EQ(system.sharding_stats().two_pc_rounds, 0u);
}

}  // namespace
}  // namespace dicho::systems
