#include "storage/lsm/memtable.h"

#include "common/coding.h"

namespace dicho::storage::lsm {

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  std::string entry;
  std::string ikey = MakeInternalKey(key, seq, type);
  PutLengthPrefixed(&entry, ikey);
  PutLengthPrefixed(&entry, value);
  mem_usage_ += entry.size() + 32;  // node overhead estimate
  table_.Insert(entry);
}

Status MemTable::Get(const Slice& key, SequenceNumber snapshot,
                     std::string* value, bool* found) const {
  *found = false;
  Iterator it(&table_);
  it.Seek(MakeInternalKey(key, snapshot, kValueTypeForSeek));
  if (!it.Valid()) return Status::NotFound();
  Slice ikey = it.key();
  if (ExtractUserKey(ikey) != key) return Status::NotFound();
  *found = true;
  if (ExtractValueType(ikey) == ValueType::kDeletion) {
    return Status::NotFound("tombstone");
  }
  *value = it.value().ToString();
  return Status::Ok();
}

void MemTable::Iterator::Seek(const Slice& internal_target) {
  std::string entry;
  PutLengthPrefixed(&entry, internal_target);
  iter_.Seek(entry);
  Decode();
}

void MemTable::Iterator::Decode() {
  if (!iter_.Valid()) {
    ikey_ = Slice();
    value_ = Slice();
    return;
  }
  Slice entry(iter_.key());
  GetLengthPrefixed(&entry, &ikey_);
  GetLengthPrefixed(&entry, &value_);
}

}  // namespace dicho::storage::lsm
