#include "contract/minivm.h"

#include <gtest/gtest.h>

#include <map>

namespace dicho::contract {
namespace {

class MapView : public StateView {
 public:
  explicit MapView(std::map<std::string, std::string>* state)
      : state_(state) {}
  Status Get(const Slice& key, std::string* value) override {
    auto it = state_->find(key.ToString());
    if (it == state_->end()) return Status::NotFound();
    *value = it->second;
    return Status::Ok();
  }

 private:
  std::map<std::string, std::string>* state_;
};

Status RunVm(const std::string& asm_src, std::map<std::string, std::string>* state,
           std::vector<std::string> args = {}, uint64_t* gas = nullptr,
           uint64_t gas_limit = 100000) {
  auto program = Assemble(asm_src);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) return program.status();
  core::TxnRequest req;
  req.args = std::move(args);
  MapView view(state);
  WriteSet writes;
  Status s = RunProgram(program.value(), req, &view, &writes, gas_limit, gas);
  if (s.ok()) {
    for (const auto& [k, v] : writes) (*state)[k] = v;
  }
  return s;
}

TEST(MiniVmTest, StoreAndLoad) {
  std::map<std::string, std::string> state;
  ASSERT_TRUE(RunVm("PUSH mykey\n"
                  "PUSH myvalue\n"
                  "SSTORE\n"
                  "HALT\n",
                  &state)
                  .ok());
  EXPECT_EQ(state["mykey"], "myvalue");
}

TEST(MiniVmTest, ArithmeticIncrement) {
  std::map<std::string, std::string> state{{"counter", "41"}};
  ASSERT_TRUE(RunVm("PUSH counter\n"
                  "PUSH counter\n"
                  "SLOAD\n"
                  "PUSH 1\n"
                  "ADD\n"
                  "SSTORE\n"
                  "HALT\n",
                  &state)
                  .ok());
  EXPECT_EQ(state["counter"], "42");
}

TEST(MiniVmTest, ConditionalBranchAndLoop) {
  // Sum 1..5 with a loop: exercises labels, JZ, comparisons.
  std::map<std::string, std::string> state;
  ASSERT_TRUE(RunVm("PUSH sum\n"
                  "PUSH 0\n"
                  "SSTORE\n"
                  "PUSH i\n"
                  "PUSH 5\n"
                  "SSTORE\n"
                  "loop:\n"
                  "PUSH i\n"
                  "SLOAD\n"
                  "JZ done\n"
                  "PUSH sum\n"
                  "PUSH sum\n"
                  "SLOAD\n"
                  "PUSH i\n"
                  "SLOAD\n"
                  "ADD\n"
                  "SSTORE\n"
                  "PUSH i\n"
                  "PUSH i\n"
                  "SLOAD\n"
                  "PUSH 1\n"
                  "SUB\n"
                  "SSTORE\n"
                  "JMP loop\n"
                  "done:\n"
                  "HALT\n",
                  &state)
                  .ok());
  EXPECT_EQ(state["sum"], "15");
}

TEST(MiniVmTest, ArgsAndConcat) {
  std::map<std::string, std::string> state;
  ASSERT_TRUE(RunVm("PUSH acct:\n"
                  "ARG 0\n"
                  "CONCAT\n"
                  "ARG 1\n"
                  "SSTORE\n"
                  "HALT\n",
                  &state, {"alice", "100"})
                  .ok());
  EXPECT_EQ(state["acct:alice"], "100");
}

TEST(MiniVmTest, AbortOpcode) {
  std::map<std::string, std::string> state;
  EXPECT_TRUE(RunVm("ABORT\n", &state).IsAborted());
}

TEST(MiniVmTest, OutOfGas) {
  std::map<std::string, std::string> state;
  uint64_t gas = 0;
  Status s = RunVm("loop: JMP loop\n", &state, {}, &gas, /*gas_limit=*/100);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_GE(gas, 100u);
}

TEST(MiniVmTest, GasAccountsStateOpsHigher) {
  std::map<std::string, std::string> state;
  uint64_t plain_gas = 0, state_gas = 0;
  ASSERT_TRUE(RunVm("PUSH 1\nPOP\nHALT\n", &state, {}, &plain_gas).ok());
  ASSERT_TRUE(RunVm("PUSH k\nSLOAD\nPOP\nHALT\n", &state, {}, &state_gas).ok());
  EXPECT_GT(state_gas, plain_gas + kGasState - 2);
}

TEST(MiniVmTest, StackUnderflowIsError) {
  std::map<std::string, std::string> state;
  EXPECT_TRUE(RunVm("ADD\nHALT\n", &state).IsCorruption());
}

TEST(MiniVmTest, DivisionByZeroAborts) {
  std::map<std::string, std::string> state;
  EXPECT_TRUE(RunVm("PUSH 4\nPUSH 0\nDIV\nHALT\n", &state).IsAborted());
}

TEST(MiniVmTest, ReadYourOwnWrites) {
  std::map<std::string, std::string> state;
  ASSERT_TRUE(RunVm("PUSH k\n"
                  "PUSH first\n"
                  "SSTORE\n"
                  "PUSH out\n"
                  "PUSH k\n"
                  "SLOAD\n"
                  "SSTORE\n"
                  "HALT\n",
                  &state)
                  .ok());
  EXPECT_EQ(state["out"], "first");
}

TEST(AssemblerTest, RejectsUnknownOpcode) {
  EXPECT_FALSE(Assemble("FROBNICATE\n").ok());
}

TEST(AssemblerTest, RejectsUndefinedLabel) {
  EXPECT_FALSE(Assemble("JMP nowhere\n").ok());
}

TEST(AssemblerTest, CommentsAndBlanksIgnored) {
  auto p = Assemble("# just a comment\n\nPUSH 1  # trailing\nHALT\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().size(), 2u);
}

TEST(VmContractTest, DispatchesByMethod) {
  VmContract contract("bank");
  auto deposit = Assemble("ARG 0\nARG 0\nSLOAD\nARG 1\nADD\nSSTORE\nHALT\n");
  ASSERT_TRUE(deposit.ok());
  contract.AddMethod("deposit", deposit.TakeValue());

  std::map<std::string, std::string> state{{"alice", "10"}};
  MapView view(&state);
  core::TxnRequest req;
  req.method = "deposit";
  req.args = {"alice", "5"};
  WriteSet writes;
  ASSERT_TRUE(contract.Execute(req, &view, &writes, nullptr).ok());
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].second, "15");
  EXPECT_GT(contract.last_gas_used(), 0u);

  req.method = "missing";
  EXPECT_EQ(contract.Execute(req, &view, &writes, nullptr).code(),
            StatusCode::kNotSupported);
}

TEST(CompileKvOpsTest, CompiledProgramMatchesDirectExecution) {
  std::map<std::string, std::string> state{{"k1", "old"}};
  std::vector<core::Op> ops = {{core::OpType::kRead, "k1", ""},
                               {core::OpType::kWrite, "k2", "v2"},
                               {core::OpType::kReadModifyWrite, "k1", "new"}};
  Program program = CompileKvOps(ops);
  core::TxnRequest req;
  MapView view(&state);
  WriteSet writes;
  uint64_t gas = 0;
  ASSERT_TRUE(RunProgram(program, req, &view, &writes, 100000, &gas).ok());
  for (const auto& [k, v] : writes) state[k] = v;
  EXPECT_EQ(state["k1"], "new");
  EXPECT_EQ(state["k2"], "v2");
  EXPECT_GT(gas, 3 * kGasState);
}

}  // namespace
}  // namespace dicho::contract
