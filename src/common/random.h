#ifndef DICHO_COMMON_RANDOM_H_
#define DICHO_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>

namespace dicho {

/// Deterministic xoshiro256++ PRNG. Every stochastic component in the library
/// (simulator jitter, workload generators, election timeouts) draws from an
/// explicitly seeded Rng so whole-cluster runs replay bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to fill the state from a single word.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Pre-condition: n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi]. Pre-condition: lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed with the given mean (for Poisson arrivals and
  /// simulated PoW mining intervals).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Random printable-byte string of exactly n bytes (workload payloads).
  std::string Bytes(size_t n) {
    std::string s;
    s.reserve(n);
    for (size_t i = 0; i < n; i++) {
      s.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// Zipfian key-index generator over [0, n) following Gray et al., the same
/// construction YCSB uses. theta = 0 degenerates to uniform; theta -> 1 is a
/// heavily skewed distribution (the paper sweeps theta in {0, 0.2, ..., 1}).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
    assert(n > 0);
    if (theta_ <= 0.0) return;  // uniform fast path
    // The Gray formulation is undefined exactly at theta == 1; nudge.
    if (theta_ >= 0.9999) theta_ = 0.9999;
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Rng* rng) {
    if (theta_ <= 0.0) return rng->Uniform(n_);
    const double u = rng->NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_ = 0, zeta2_ = 0, alpha_ = 0, eta_ = 0;
};

}  // namespace dicho

#endif  // DICHO_COMMON_RANDOM_H_
