#ifndef DICHO_HYBRID_FORECAST_H_
#define DICHO_HYBRID_FORECAST_H_

#include <string>

#include "hybrid/taxonomy.h"

namespace dicho::hybrid {

/// Back-of-the-envelope throughput forecast for a hybrid design — the
/// paper's Section 5.6 framework. The model is multiplicative over the
/// design choices, with the replication model as the dominant factor and
/// the failure model second, exactly as the paper argues:
///
///   peak ≈ base(replication model)
///          x factor(replication approach)
///          x factor(failure model)
///          x factor(concurrency)
///          x factor(ledger maintenance)
///
/// The factors are fitted to this library's measured systems plus the
/// reported numbers of the Fig. 15 hybrids; the claim being reproduced is
/// that this two-level rule *ranks* hybrids correctly (e.g. Veritas's 29k
/// vs ChainifyDB's 6.1k), not that it predicts absolute numbers.
struct ForecastFactors {
  double txn_based_base_tps = 4000;
  double storage_based_base_tps = 20000;
  double consensus_factor = 1.0;
  double shared_log_factor = 1.5;
  double primary_backup_factor = 1.8;
  double cft_factor = 1.0;
  double bft_factor = 0.25;
  double pow_factor = 0.01;
  double serial_factor = 0.35;
  double occ_commit_factor = 0.8;
  double concurrent_factor = 1.0;
  /// Order-then-deterministic-execute (harmonylike): multi-lane native
  /// execution with zero concurrency aborts beats OCC's validate-and-retry
  /// and serial's single lane. Calibrated against the measured harmonylike
  /// peak (bench/ablation_deterministic).
  double deterministic_factor = 1.6;
  double ledger_factor = 0.85;
  /// Sharded deployments (descriptor.shards > 1): throughput grows as
  /// shards^shard_scaling — sublinear because the global sequencing round
  /// and the epoch dissemination bytes don't shard — and every cross-shard
  /// transaction pays a one-shot ReadForward wave, modeled as dividing by
  /// (1 + penalty x cross_shard_fraction). Calibrated against the measured
  /// Fig 14 --scale sweep (BENCH_sharding.json): sqrt scaling plus a 1.5
  /// forward penalty lands within +-10% of harmonyshard's measured 4-shard
  /// 20%-cross cell.
  double shard_scaling = 0.5;
  double cross_shard_forward_penalty = 1.5;
};

struct Forecast {
  double expected_tps = 0;
  /// The model is order-of-magnitude; the band spans /2 .. x2.
  double low_tps = 0;
  double high_tps = 0;
};

class ThroughputForecaster {
 public:
  explicit ThroughputForecaster(ForecastFactors factors = {})
      : factors_(factors) {}

  Forecast Predict(const SystemDescriptor& system) const;

  /// "name: predicted ~Xk tps (reported Yk)" table for a set of systems.
  std::string Report(const std::vector<SystemDescriptor>& systems) const;

 private:
  const ForecastFactors factors_;
};

}  // namespace dicho::hybrid

#endif  // DICHO_HYBRID_FORECAST_H_
