#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "txn/lock_table.h"
#include "txn/mvcc.h"
#include "txn/occ.h"

namespace dicho::txn {
namespace {

// ---------------------------------------------------------------------------
// OCC / VersionedState
// ---------------------------------------------------------------------------

TEST(OccTest, MissingKeysReadVersionZero) {
  VersionedState state;
  std::string value;
  uint64_t version;
  state.Get("nope", &value, &version);
  EXPECT_EQ(version, 0u);
  EXPECT_TRUE(value.empty());
}

TEST(OccTest, ApplyBumpsVersion) {
  VersionedState state;
  state.Apply({{"k", "v1"}}, 1);
  std::string value;
  uint64_t version;
  state.Get("k", &value, &version);
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(version, 1u);
  state.Apply({{"k", "v2"}}, 5);
  state.Get("k", &value, &version);
  EXPECT_EQ(version, 5u);
}

TEST(OccTest, ValidatePassesOnFreshReads) {
  VersionedState state;
  state.Apply({{"a", "1"}, {"b", "2"}}, 3);
  EXPECT_TRUE(state.Validate({{"a", 3}, {"b", 3}, {"absent", 0}}, nullptr));
}

TEST(OccTest, ValidateFailsOnStaleRead) {
  VersionedState state;
  state.Apply({{"a", "1"}}, 1);
  // A transaction read "a" at version 1; someone commits version 2.
  state.Apply({{"a", "x"}}, 2);
  std::string conflict;
  EXPECT_FALSE(state.Validate({{"a", 1}}, &conflict));
  EXPECT_EQ(conflict, "a");
}

TEST(OccTest, SerializabilityUnderInterleaving) {
  // Classic lost-update scenario: two txns read the same version; the first
  // commits; the second must fail validation.
  VersionedState state;
  state.Apply({{"x", "0"}}, 1);
  std::vector<std::pair<std::string, uint64_t>> t1_reads = {{"x", 1}};
  std::vector<std::pair<std::string, uint64_t>> t2_reads = {{"x", 1}};
  ASSERT_TRUE(state.Validate(t1_reads, nullptr));
  state.Apply({{"x", "1"}}, 2);  // t1 commits
  EXPECT_FALSE(state.Validate(t2_reads, nullptr));  // t2 aborts
}

// ---------------------------------------------------------------------------
// LockTable (wound-wait)
// ---------------------------------------------------------------------------

TEST(LockTableTest, GrantsImmediatelyWhenFree) {
  LockTable locks;
  locks.RegisterTxn(1, 10, nullptr);
  bool granted = false;
  locks.Acquire(1, "k", [&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_TRUE(locks.IsHeldBy("k", 1));
}

TEST(LockTableTest, ReentrantAcquire) {
  LockTable locks;
  locks.RegisterTxn(1, 10, nullptr);
  int grants = 0;
  locks.Acquire(1, "k", [&] { grants++; });
  locks.Acquire(1, "k", [&] { grants++; });
  EXPECT_EQ(grants, 2);
}

TEST(LockTableTest, YoungerWaitsForOlder) {
  LockTable locks;
  bool old_wounded = false, young_wounded = false;
  locks.RegisterTxn(1, 10, [&] { old_wounded = true; });    // older
  locks.RegisterTxn(2, 20, [&] { young_wounded = true; });  // younger
  locks.Acquire(1, "k", [] {});
  bool young_granted = false;
  locks.Acquire(2, "k", [&] { young_granted = true; });
  EXPECT_FALSE(young_granted);
  EXPECT_FALSE(old_wounded);
  EXPECT_EQ(locks.waits(), 1u);
  // Older finishes; younger gets the lock.
  locks.ReleaseAll(1);
  EXPECT_TRUE(young_granted);
  EXPECT_TRUE(locks.IsHeldBy("k", 2));
  EXPECT_FALSE(young_wounded);
}

TEST(LockTableTest, OlderWoundsYounger) {
  LockTable locks;
  bool young_wounded = false;
  locks.RegisterTxn(2, 20, [&] { young_wounded = true; });
  locks.RegisterTxn(1, 10, nullptr);
  locks.Acquire(2, "k", [] {});
  bool old_granted = false;
  locks.Acquire(1, "k", [&] { old_granted = true; });
  EXPECT_TRUE(young_wounded);
  EXPECT_FALSE(old_granted);  // still waiting for release
  EXPECT_EQ(locks.wounds(), 1u);
  // The wounded transaction aborts and releases.
  locks.ReleaseAll(2);
  EXPECT_TRUE(old_granted);
  EXPECT_TRUE(locks.IsHeldBy("k", 1));
}

TEST(LockTableTest, NoDeadlockUnderOpposingOrders) {
  // T1 (old) holds a, wants b; T2 (young) holds b, wants a.
  // Wound-wait: T1 wounds T2; T2 releases; T1 proceeds. No deadlock.
  LockTable locks;
  bool t2_wounded = false;
  locks.RegisterTxn(1, 10, nullptr);
  locks.RegisterTxn(2, 20, [&] { t2_wounded = true; });
  locks.Acquire(1, "a", [] {});
  locks.Acquire(2, "b", [] {});
  bool t1_has_b = false;
  locks.Acquire(1, "b", [&] { t1_has_b = true; });
  EXPECT_TRUE(t2_wounded);
  // T2, wounded, releases everything (it would also drop its wait on a).
  locks.ReleaseAll(2);
  EXPECT_TRUE(t1_has_b);
  EXPECT_TRUE(locks.IsHeldBy("a", 1));
  EXPECT_TRUE(locks.IsHeldBy("b", 1));
}

TEST(LockTableTest, ReleaseRemovesFromWaitQueues) {
  LockTable locks;
  locks.RegisterTxn(1, 10, nullptr);
  locks.RegisterTxn(2, 20, nullptr);
  locks.RegisterTxn(3, 30, nullptr);
  locks.Acquire(1, "k", [] {});
  bool t3_granted = false;
  locks.Acquire(2, "k", [] {});  // waits
  locks.Acquire(3, "k", [&] { t3_granted = true; });  // waits behind 2
  locks.ReleaseAll(2);  // 2 gives up before being granted
  locks.ReleaseAll(1);
  EXPECT_TRUE(t3_granted);
}

// ---------------------------------------------------------------------------
// MvccStore (Percolator)
// ---------------------------------------------------------------------------

TEST(MvccTest, PrewriteCommitRead) {
  MvccStore store;
  ASSERT_TRUE(store.Prewrite("k", "v", 10, "k", 1).ok());
  EXPECT_TRUE(store.IsLocked("k"));
  ASSERT_TRUE(store.Commit("k", 10, 11).ok());
  EXPECT_FALSE(store.IsLocked("k"));
  std::string value;
  ASSERT_TRUE(store.GetSnapshot("k", 11, &value).ok());
  EXPECT_EQ(value, "v");
  // A snapshot before the commit sees nothing.
  EXPECT_TRUE(store.GetSnapshot("k", 10, &value).IsNotFound());
}

TEST(MvccTest, LockBlocksConflictingPrewrite) {
  MvccStore store;
  ASSERT_TRUE(store.Prewrite("k", "v1", 10, "k", 1).ok());
  EXPECT_TRUE(store.Prewrite("k", "v2", 12, "k", 2).IsConflict());
  // Idempotent retry by the same transaction is fine.
  EXPECT_TRUE(store.Prewrite("k", "v1", 10, "k", 1).ok());
}

TEST(MvccTest, WriteWriteConflictAborts) {
  MvccStore store;
  ASSERT_TRUE(store.Prewrite("k", "v1", 10, "k", 1).ok());
  ASSERT_TRUE(store.Commit("k", 10, 15).ok());
  // A transaction that began at ts 12 (< 15) must abort on prewrite.
  EXPECT_TRUE(store.Prewrite("k", "v2", 12, "k", 2).IsAborted());
  // One that began after the commit proceeds.
  EXPECT_TRUE(store.Prewrite("k", "v3", 20, "k", 3).ok());
}

TEST(MvccTest, SnapshotReadsSeeConsistentVersion) {
  MvccStore store;
  for (uint64_t i = 1; i <= 5; i++) {
    ASSERT_TRUE(store.Prewrite("k", "v" + std::to_string(i), i * 10, "k", i).ok());
    ASSERT_TRUE(store.Commit("k", i * 10, i * 10 + 1).ok());
  }
  std::string value;
  ASSERT_TRUE(store.GetSnapshot("k", 35, &value).ok());
  EXPECT_EQ(value, "v3");
  ASSERT_TRUE(store.GetSnapshot("k", 51, &value).ok());
  EXPECT_EQ(value, "v5");
}

TEST(MvccTest, ReadBlockedByOlderLock) {
  MvccStore store;
  ASSERT_TRUE(store.Prewrite("k", "v", 10, "k", 1).ok());
  std::string value;
  // Snapshot at 12 >= lock's start 10: must wait/resolve (Conflict).
  EXPECT_TRUE(store.GetSnapshot("k", 12, &value).IsConflict());
  // Snapshot at 5 < lock start: lock is irrelevant, nothing committed.
  EXPECT_TRUE(store.GetSnapshot("k", 5, &value).IsNotFound());
}

TEST(MvccTest, RollbackFreesLock) {
  MvccStore store;
  ASSERT_TRUE(store.Prewrite("k", "v", 10, "k", 1).ok());
  ASSERT_TRUE(store.Rollback("k", 10).ok());
  EXPECT_FALSE(store.IsLocked("k"));
  EXPECT_TRUE(store.Prewrite("k", "v2", 12, "k", 2).ok());
  // Commit of the rolled-back txn must fail.
  EXPECT_TRUE(store.Commit("k", 10, 14).IsNotFound());
}

TEST(MvccTest, SnapshotIsolationNoLostUpdate) {
  // Two concurrent read-modify-write transactions on the same key: exactly
  // one commits (the other hits a lock or a write-write conflict).
  MvccStore store;
  ASSERT_TRUE(store.Prewrite("x", "0", 1, "x", 0).ok());
  ASSERT_TRUE(store.Commit("x", 1, 2).ok());

  // T1 (start 10) and T2 (start 11) both read x.
  std::string v1, v2;
  ASSERT_TRUE(store.GetSnapshot("x", 10, &v1).ok());
  ASSERT_TRUE(store.GetSnapshot("x", 11, &v2).ok());

  // T1 prewrites first.
  ASSERT_TRUE(store.Prewrite("x", "1", 10, "x", 1).ok());
  // T2's prewrite hits the lock.
  EXPECT_TRUE(store.Prewrite("x", "1", 11, "x", 2).IsConflict());
  ASSERT_TRUE(store.Commit("x", 10, 12).ok());
  // T2 retries prewrite after the lock clears: now write-write conflict.
  EXPECT_TRUE(store.Prewrite("x", "1", 11, "x", 2).IsAborted());
}

TEST(MvccTest, FuzzTwoPhaseProtocol) {
  // Random interleaving of prewrite/commit/rollback across keys; invariant:
  // committed versions per key have strictly increasing commit_ts and a read
  // at any snapshot returns the version with the largest commit_ts <= ts.
  MvccStore store;
  Rng rng(9);
  uint64_t ts = 1;
  std::map<std::string, std::map<uint64_t, std::string>> model;
  for (int i = 0; i < 2000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(20));
    uint64_t start = ts++;
    std::string value = "v" + std::to_string(i);
    Status s = store.Prewrite(key, value, start, key, i);
    if (!s.ok()) continue;
    if (rng.Bernoulli(0.2)) {
      ASSERT_TRUE(store.Rollback(key, start).ok());
    } else {
      uint64_t commit = ts++;
      ASSERT_TRUE(store.Commit(key, start, commit).ok());
      model[key][commit] = value;
    }
  }
  for (const auto& [key, versions] : model) {
    for (uint64_t probe : {versions.begin()->first, versions.rbegin()->first,
                           versions.rbegin()->first + 10}) {
      std::string got;
      Status s = store.GetSnapshot(key, probe, &got);
      auto it = model[key].upper_bound(probe);
      ASSERT_NE(it, model[key].begin());
      --it;
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(got, it->second);
    }
  }
}

}  // namespace
}  // namespace dicho::txn
