#include "hybrid/builder.h"

#include "common/coding.h"
#include "crypto/signature.h"

namespace dicho::hybrid {

namespace {

class VersionedView : public contract::StateView {
 public:
  VersionedView(const txn::VersionedState* state,
                std::vector<std::pair<std::string, uint64_t>>* read_set)
      : state_(state), read_set_(read_set) {}
  Status Get(const Slice& key, std::string* value) override {
    uint64_t version;
    state_->Get(key, value, &version);
    if (read_set_ != nullptr) read_set_->emplace_back(key.ToString(), version);
    if (value->empty() && version == 0) return Status::NotFound();
    return Status::Ok();
  }

 private:
  const txn::VersionedState* state_;
  std::vector<std::pair<std::string, uint64_t>>* read_set_;
};

std::string SerializeBatch(const std::vector<ledger::LedgerTxn>& txns) {
  std::string out;
  PutVarint64(&out, txns.size());
  for (const auto& txn : txns) PutLengthPrefixed(&out, txn.Serialize());
  return out;
}

bool DeserializeBatch(const std::string& data,
                      std::vector<ledger::LedgerTxn>* txns) {
  Slice in(data);
  uint64_t count;
  if (!GetVarint64(&in, &count)) return false;
  txns->clear();
  for (uint64_t i = 0; i < count; i++) {
    Slice bytes;
    if (!GetLengthPrefixed(&in, &bytes)) return false;
    ledger::LedgerTxn txn;
    if (!ledger::LedgerTxn::Deserialize(bytes.ToString(), &txn)) return false;
    txns->push_back(std::move(txn));
  }
  return in.empty();
}

}  // namespace

namespace {

using systems::runtime::TransportKind;

/// The taxonomy point (approach x failure model) picks the transport.
TransportKind SelectTransport(ReplicationApproach approach,
                              FailureModel failure) {
  switch (approach) {
    case ReplicationApproach::kConsensus:
      if (failure == FailureModel::kCft) return TransportKind::kRaft;
      if (failure == FailureModel::kBft) return TransportKind::kBft;
      return TransportKind::kPow;
    case ReplicationApproach::kSharedLog:
      return TransportKind::kSharedLog;
    case ReplicationApproach::kPrimaryBackup:
      break;
  }
  return TransportKind::kPrimaryBackup;
}

}  // namespace

HybridSystem::HybridSystem(sim::Simulator* sim, sim::SimNetwork* net,
                           const sim::CostModel* costs, HybridConfig config)
    : sim_(sim),
      net_(net),
      costs_(costs),
      config_(std::move(config)),
      nodes_(sim, config_.base_node, config_.num_nodes),
      contracts_(contract::ContractRegistry::CreateDefault()),
      batch_queue_(&stats_.stages),
      inflight_(&stats_.stages),
      batch_timer_(sim, config_.batch_interval) {
  switch (config_.design.index) {
    case StateIndex::kMpt:
      mpt_ = std::make_unique<adt::MerklePatriciaTrie>();
      break;
    case StateIndex::kMbt:
      mbt_ = std::make_unique<adt::MerkleBucketTree>();
      break;
    case StateIndex::kPlain:
      break;
  }

  systems::runtime::TransportConfig transport;
  transport.kind =
      SelectTransport(config_.design.approach, config_.design.failure);
  transport.raft = config_.raft;
  transport.bft = config_.bft;
  transport.log = config_.log;
  transport.pow = config_.pow;
  transport_ = std::make_unique<systems::runtime::Transport>(
      sim, net, costs, nodes_.ids(), transport,
      [this](size_t node_index, uint64_t, const std::string& batch) {
        ApplyBatch(node_index, batch);
      });
}

void HybridSystem::Start() { transport_->Start(); }

void HybridSystem::Load(const std::string& key, const std::string& value) {
  systems::runtime::SeedAllReplicas(
      &nodes_, [&](Node& node) { node.state.Apply({{key, value}}, 0); });
  if (mpt_ != nullptr) mpt_->Put(key, value);
  if (mbt_ != nullptr) mbt_->Put(key, value);
}

Time HybridSystem::IndexCost(uint64_t bytes) const {
  switch (config_.design.index) {
    case StateIndex::kMpt:
      return costs_->MptUpdateCost(bytes);
    case StateIndex::kMbt:
      return costs_->MbtUpdateCost(bytes);
    case StateIndex::kPlain:
      return 0;
  }
  return 0;
}

Time HybridSystem::ExecCost(const core::TxnRequest& request) const {
  contract::Contract* contract = contracts_->Lookup(
      request.contract.empty() ? "ycsb" : request.contract);
  return contract == nullptr ? 0 : contract->ExecCost(request, *costs_);
}

ledger::LedgerTxn HybridSystem::MakeEnvelope(const PendingTxn& pending) {
  ledger::LedgerTxn envelope;
  envelope.txn_id = pending.request.txn_id;
  envelope.client_id = pending.request.client_id;
  envelope.payload = pending.request.Serialize();
  envelope.client_signature =
      crypto::Signer(pending.request.client_id).Sign(envelope.payload);

  if (!IsTxnBased()) {
    // Storage-based: execute once at the coordinator (node 0), replicate
    // the effects.
    VersionedView view(&nodes_.at_index(0).state, &envelope.read_set);
    contract::Contract* contract = contracts_->Lookup(
        pending.request.contract.empty() ? "ycsb" : pending.request.contract);
    contract::WriteSet writes;
    Status s = contract == nullptr
                   ? Status::NotSupported("unknown contract")
                   : contract->Execute(pending.request, &view, &writes, nullptr);
    envelope.valid = s.ok();
    envelope.write_set.assign(writes.begin(), writes.end());
  }
  return envelope;
}

void HybridSystem::Submit(const core::TxnRequest& request,
                          core::TxnCallback cb) {
  auto pending = std::make_shared<PendingTxn>();
  pending->request = request;
  pending->cb = std::move(cb);
  pending->submit_time = sim_->Now();
  inflight_.Insert(request.txn_id, pending);

  // Client -> coordinator/entry node.
  net_->Send(config_.client_node, nodes_.id_of(0), request.PayloadBytes() + 96,
             [this, pending] {
               if (!IsTxnBased()) {
                 // Coordinator-side execution happens concurrently (the
                 // underlying database), modeled as a delay.
                 sim_->Schedule(ExecCost(pending->request),
                                [this, pending] { EnqueueForOrdering(pending); });
               } else {
                 EnqueueForOrdering(pending);
               }
             });
}

void HybridSystem::EnqueueForOrdering(std::shared_ptr<PendingTxn> pending) {
  ledger::LedgerTxn envelope = MakeEnvelope(*pending);
  if (!IsTxnBased() && !envelope.valid) {
    // Constraint failure discovered at the coordinator.
    inflight_.Erase(pending->request.txn_id);
    core::TxnResult result;
    result.status = Status::Aborted("constraint");
    result.reason = core::AbortReason::kConstraint;
    result.submit_time = pending->submit_time;
    result.finish_time = sim_->Now();
    stats_.aborted++;
    stats_.aborts_by_reason[result.reason]++;
    pending->cb(result);
    return;
  }

  if (transport_->kind() == TransportKind::kSharedLog ||
      transport_->kind() == TransportKind::kPrimaryBackup) {
    // Shared log: ordering is cheap and decoupled, no batch window.
    // Primary-backup: the primary applies immediately, no batch window.
    std::vector<ledger::LedgerTxn> single{std::move(envelope)};
    transport_->Disseminate(SerializeBatch(single));
    return;
  }
  batch_queue_.Push(std::move(envelope));
  if (batch_queue_.size() >= config_.max_batch) {
    FlushBatch();
  } else {
    batch_timer_.Arm([this] {
      if (!batch_queue_.empty()) FlushBatch();
    });
  }
}

void HybridSystem::FlushBatch() {
  transport_->Disseminate(SerializeBatch(batch_queue_.DrainAll()));
}

void HybridSystem::ApplyBatch(size_t node_index, const std::string& batch) {
  auto txns = std::make_shared<std::vector<ledger::LedgerTxn>>();
  if (!DeserializeBatch(batch, txns.get())) return;
  Node* node = &nodes_.at_index(node_index);

  // Cost: execution (txn-based serial designs re-run contracts on the
  // node's serial thread; concurrent designs overlap it with the local
  // database), plus storage + authenticated-index maintenance per write.
  Time cost = 0;
  for (auto& txn : *txns) {
    core::TxnRequest request;
    if (!core::TxnRequest::Deserialize(txn.payload, &request)) continue;
    if (IsTxnBased() &&
        config_.design.concurrency == ConcurrencyModel::kSerial) {
      cost += ExecCost(request) + costs_->sig_verify_us;
    }
    for (const auto& [key, value] : txn.write_set) {
      cost += costs_->LsmWriteCost(key.size() + value.size()) +
              IndexCost(key.size() + value.size());
    }
    if (IsTxnBased()) {
      // Write sets come from local execution below; charge a nominal
      // storage cost per op instead.
      cost += static_cast<Time>(request.ops.size() + request.args.size()) *
              costs_->lsm_write_base_us;
    }
  }
  if (config_.design.ledger == LedgerAbstraction::kChain) {
    cost += costs_->hash_base_us * static_cast<Time>(txns->size());
  }

  node->cpu.Submit(cost, [this, node_index, node, txns] {
    uint64_t version = node->chain.height() + 1;
    ledger::Block block;
    block.header.number = node->chain.height();
    block.header.parent = node->chain.TipDigest();

    for (auto& txn : *txns) {
      bool valid = txn.valid;
      if (IsTxnBased()) {
        // Every node executes the transaction against its own state; the
        // global order makes the outcome deterministic.
        core::TxnRequest request;
        if (core::TxnRequest::Deserialize(txn.payload, &request)) {
          VersionedView view(&node->state, nullptr);
          contract::Contract* contract = contracts_->Lookup(
              request.contract.empty() ? "ycsb" : request.contract);
          contract::WriteSet writes;
          Status s = contract == nullptr
                         ? Status::NotSupported("unknown")
                         : contract->Execute(request, &view, &writes, nullptr);
          valid = s.ok();
          txn.write_set.assign(writes.begin(), writes.end());
        } else {
          valid = false;
        }
      } else if (config_.design.concurrency == ConcurrencyModel::kOccCommit) {
        // Veritas/FalconDB-style optimistic validation at commit.
        std::string conflict;
        valid = valid && node->state.Validate(txn.read_set, &conflict);
      }
      txn.valid = valid;
      if (valid) {
        node->state.Apply(txn.write_set, version);
        if (node_index == 0) {
          for (const auto& [key, value] : txn.write_set) {
            if (mpt_ != nullptr) mpt_->Put(key, value);
            if (mbt_ != nullptr) mbt_->Put(key, value);
          }
        }
      }
      if (node_index == 0) {
        Finish(txn.txn_id, valid,
               valid ? core::AbortReason::kNone
                     : core::AbortReason::kReadConflict);
      }
      if (config_.design.ledger == LedgerAbstraction::kChain) {
        block.txns.push_back(txn);
      }
    }
    if (config_.design.ledger == LedgerAbstraction::kChain) {
      block.SealTxnRoot();
      node->chain.Append(std::move(block));
    }
  });
}

void HybridSystem::Finish(uint64_t txn_id, bool valid,
                          core::AbortReason reason) {
  std::shared_ptr<PendingTxn> pending;
  if (!inflight_.Take(txn_id, &pending)) return;
  net_->Send(nodes_.id_of(0), config_.client_node, 64, [this, pending, valid,
                                                     reason] {
    core::TxnResult result;
    result.submit_time = pending->submit_time;
    result.finish_time = sim_->Now();
    if (valid) {
      result.status = Status::Ok();
      stats_.committed++;
    } else {
      result.status = Status::Aborted(core::AbortReasonName(reason));
      result.reason = reason;
      stats_.aborted++;
      stats_.aborts_by_reason[reason]++;
    }
    pending->cb(result);
  });
}

void HybridSystem::Query(const core::ReadRequest& request,
                         core::ReadCallback cb) {
  stats_.queries++;
  Time submit_time = sim_->Now();
  net_->Send(config_.client_node, nodes_.id_of(0), 64 + request.key.size(),
             [this, key = request.key, cb = std::move(cb),
              submit_time]() mutable {
               sim_->Schedule(costs_->lsm_read_us, [this, key,
                                                    cb = std::move(cb),
                                                    submit_time]() mutable {
                 std::string value;
                 uint64_t version;
                 nodes_.at_index(0).state.Get(key, &value, &version);
                 Status s = (value.empty() && version == 0)
                                ? Status::NotFound()
                                : Status::Ok();
                 net_->Send(nodes_.id_of(0), config_.client_node,
                            64 + value.size(),
                            [this, cb = std::move(cb), submit_time, s,
                             value = std::move(value)] {
                              core::ReadResult result;
                              result.status = s;
                              result.value = value;
                              result.submit_time = submit_time;
                              result.finish_time = sim_->Now();
                              cb(result);
                            });
               });
             });
}

uint64_t HybridSystem::LedgerBytes() const {
  return nodes_.at_index(0).chain.TotalBytes();
}

crypto::Digest HybridSystem::StateDigest() const {
  if (mpt_ != nullptr) return mpt_->RootDigest();
  if (mbt_ != nullptr) return mbt_->RootDigest();
  return crypto::ZeroDigest();
}

}  // namespace dicho::hybrid
