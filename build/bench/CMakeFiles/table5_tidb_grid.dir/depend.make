# Empty dependencies file for table5_tidb_grid.
# This may be replaced when dependencies are built.
