file(REMOVE_RECURSE
  "CMakeFiles/fig10_opcount.dir/fig10_opcount.cc.o"
  "CMakeFiles/fig10_opcount.dir/fig10_opcount.cc.o.d"
  "fig10_opcount"
  "fig10_opcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_opcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
