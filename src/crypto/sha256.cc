#include "crypto/sha256.h"

#include <cassert>
#include <cstring>

#include "common/hex.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define DICHO_SHA_NI_BUILD 1
#include <immintrin.h>
#else
#define DICHO_SHA_NI_BUILD 0
#endif

namespace dicho::crypto {
namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Sig0(uint32_t x) {
  return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3);
}
inline uint32_t Sig1(uint32_t x) {
  return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10);
}
inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

// Compresses `nblocks` consecutive 64-byte blocks into `state`. Fully
// unrolled: the schedule lives in 16 rotating words and the working variables
// rotate through the round macro instead of being shuffled every round.
void CompressPortable(uint32_t state[8], const uint8_t* data, size_t nblocks) {
  uint32_t a, b, c, d, e, f, g, h;
#define Rnd(a, b, c, d, e, f, g, h, k, w)                          \
  do {                                                             \
    uint32_t t1 = (h) + (Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25)) + \
                  (((e) & (f)) ^ (~(e) & (g))) + (k) + (w);        \
    uint32_t t2 = (Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22)) +       \
                  (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));       \
    (d) += t1;                                                     \
    (h) = t1 + t2;                                                 \
  } while (0)

  while (nblocks--) {
    uint32_t w0 = LoadBe32(data + 0), w1 = LoadBe32(data + 4);
    uint32_t w2 = LoadBe32(data + 8), w3 = LoadBe32(data + 12);
    uint32_t w4 = LoadBe32(data + 16), w5 = LoadBe32(data + 20);
    uint32_t w6 = LoadBe32(data + 24), w7 = LoadBe32(data + 28);
    uint32_t w8 = LoadBe32(data + 32), w9 = LoadBe32(data + 36);
    uint32_t w10 = LoadBe32(data + 40), w11 = LoadBe32(data + 44);
    uint32_t w12 = LoadBe32(data + 48), w13 = LoadBe32(data + 52);
    uint32_t w14 = LoadBe32(data + 56), w15 = LoadBe32(data + 60);

    a = state[0], b = state[1], c = state[2], d = state[3];
    e = state[4], f = state[5], g = state[6], h = state[7];

    Rnd(a, b, c, d, e, f, g, h, kK[0], w0);
    Rnd(h, a, b, c, d, e, f, g, kK[1], w1);
    Rnd(g, h, a, b, c, d, e, f, kK[2], w2);
    Rnd(f, g, h, a, b, c, d, e, kK[3], w3);

    Rnd(e, f, g, h, a, b, c, d, kK[4], w4);
    Rnd(d, e, f, g, h, a, b, c, kK[5], w5);
    Rnd(c, d, e, f, g, h, a, b, kK[6], w6);
    Rnd(b, c, d, e, f, g, h, a, kK[7], w7);

    Rnd(a, b, c, d, e, f, g, h, kK[8], w8);
    Rnd(h, a, b, c, d, e, f, g, kK[9], w9);
    Rnd(g, h, a, b, c, d, e, f, kK[10], w10);
    Rnd(f, g, h, a, b, c, d, e, kK[11], w11);

    Rnd(e, f, g, h, a, b, c, d, kK[12], w12);
    Rnd(d, e, f, g, h, a, b, c, kK[13], w13);
    Rnd(c, d, e, f, g, h, a, b, kK[14], w14);
    Rnd(b, c, d, e, f, g, h, a, kK[15], w15);

    w0 += Sig1(w14) + w9 + Sig0(w1);
    Rnd(a, b, c, d, e, f, g, h, kK[16], w0);
    w1 += Sig1(w15) + w10 + Sig0(w2);
    Rnd(h, a, b, c, d, e, f, g, kK[17], w1);
    w2 += Sig1(w0) + w11 + Sig0(w3);
    Rnd(g, h, a, b, c, d, e, f, kK[18], w2);
    w3 += Sig1(w1) + w12 + Sig0(w4);
    Rnd(f, g, h, a, b, c, d, e, kK[19], w3);

    w4 += Sig1(w2) + w13 + Sig0(w5);
    Rnd(e, f, g, h, a, b, c, d, kK[20], w4);
    w5 += Sig1(w3) + w14 + Sig0(w6);
    Rnd(d, e, f, g, h, a, b, c, kK[21], w5);
    w6 += Sig1(w4) + w15 + Sig0(w7);
    Rnd(c, d, e, f, g, h, a, b, kK[22], w6);
    w7 += Sig1(w5) + w0 + Sig0(w8);
    Rnd(b, c, d, e, f, g, h, a, kK[23], w7);

    w8 += Sig1(w6) + w1 + Sig0(w9);
    Rnd(a, b, c, d, e, f, g, h, kK[24], w8);
    w9 += Sig1(w7) + w2 + Sig0(w10);
    Rnd(h, a, b, c, d, e, f, g, kK[25], w9);
    w10 += Sig1(w8) + w3 + Sig0(w11);
    Rnd(g, h, a, b, c, d, e, f, kK[26], w10);
    w11 += Sig1(w9) + w4 + Sig0(w12);
    Rnd(f, g, h, a, b, c, d, e, kK[27], w11);

    w12 += Sig1(w10) + w5 + Sig0(w13);
    Rnd(e, f, g, h, a, b, c, d, kK[28], w12);
    w13 += Sig1(w11) + w6 + Sig0(w14);
    Rnd(d, e, f, g, h, a, b, c, kK[29], w13);
    w14 += Sig1(w12) + w7 + Sig0(w15);
    Rnd(c, d, e, f, g, h, a, b, kK[30], w14);
    w15 += Sig1(w13) + w8 + Sig0(w0);
    Rnd(b, c, d, e, f, g, h, a, kK[31], w15);

    w0 += Sig1(w14) + w9 + Sig0(w1);
    Rnd(a, b, c, d, e, f, g, h, kK[32], w0);
    w1 += Sig1(w15) + w10 + Sig0(w2);
    Rnd(h, a, b, c, d, e, f, g, kK[33], w1);
    w2 += Sig1(w0) + w11 + Sig0(w3);
    Rnd(g, h, a, b, c, d, e, f, kK[34], w2);
    w3 += Sig1(w1) + w12 + Sig0(w4);
    Rnd(f, g, h, a, b, c, d, e, kK[35], w3);

    w4 += Sig1(w2) + w13 + Sig0(w5);
    Rnd(e, f, g, h, a, b, c, d, kK[36], w4);
    w5 += Sig1(w3) + w14 + Sig0(w6);
    Rnd(d, e, f, g, h, a, b, c, kK[37], w5);
    w6 += Sig1(w4) + w15 + Sig0(w7);
    Rnd(c, d, e, f, g, h, a, b, kK[38], w6);
    w7 += Sig1(w5) + w0 + Sig0(w8);
    Rnd(b, c, d, e, f, g, h, a, kK[39], w7);

    w8 += Sig1(w6) + w1 + Sig0(w9);
    Rnd(a, b, c, d, e, f, g, h, kK[40], w8);
    w9 += Sig1(w7) + w2 + Sig0(w10);
    Rnd(h, a, b, c, d, e, f, g, kK[41], w9);
    w10 += Sig1(w8) + w3 + Sig0(w11);
    Rnd(g, h, a, b, c, d, e, f, kK[42], w10);
    w11 += Sig1(w9) + w4 + Sig0(w12);
    Rnd(f, g, h, a, b, c, d, e, kK[43], w11);

    w12 += Sig1(w10) + w5 + Sig0(w13);
    Rnd(e, f, g, h, a, b, c, d, kK[44], w12);
    w13 += Sig1(w11) + w6 + Sig0(w14);
    Rnd(d, e, f, g, h, a, b, c, kK[45], w13);
    w14 += Sig1(w12) + w7 + Sig0(w15);
    Rnd(c, d, e, f, g, h, a, b, kK[46], w14);
    w15 += Sig1(w13) + w8 + Sig0(w0);
    Rnd(b, c, d, e, f, g, h, a, kK[47], w15);

    w0 += Sig1(w14) + w9 + Sig0(w1);
    Rnd(a, b, c, d, e, f, g, h, kK[48], w0);
    w1 += Sig1(w15) + w10 + Sig0(w2);
    Rnd(h, a, b, c, d, e, f, g, kK[49], w1);
    w2 += Sig1(w0) + w11 + Sig0(w3);
    Rnd(g, h, a, b, c, d, e, f, kK[50], w2);
    w3 += Sig1(w1) + w12 + Sig0(w4);
    Rnd(f, g, h, a, b, c, d, e, kK[51], w3);

    w4 += Sig1(w2) + w13 + Sig0(w5);
    Rnd(e, f, g, h, a, b, c, d, kK[52], w4);
    w5 += Sig1(w3) + w14 + Sig0(w6);
    Rnd(d, e, f, g, h, a, b, c, kK[53], w5);
    w6 += Sig1(w4) + w15 + Sig0(w7);
    Rnd(c, d, e, f, g, h, a, b, kK[54], w6);
    w7 += Sig1(w5) + w0 + Sig0(w8);
    Rnd(b, c, d, e, f, g, h, a, kK[55], w7);

    w8 += Sig1(w6) + w1 + Sig0(w9);
    Rnd(a, b, c, d, e, f, g, h, kK[56], w8);
    w9 += Sig1(w7) + w2 + Sig0(w10);
    Rnd(h, a, b, c, d, e, f, g, kK[57], w9);
    w10 += Sig1(w8) + w3 + Sig0(w11);
    Rnd(g, h, a, b, c, d, e, f, kK[58], w10);
    w11 += Sig1(w9) + w4 + Sig0(w12);
    Rnd(f, g, h, a, b, c, d, e, kK[59], w11);

    w12 += Sig1(w10) + w5 + Sig0(w13);
    Rnd(e, f, g, h, a, b, c, d, kK[60], w12);
    w13 += Sig1(w11) + w6 + Sig0(w14);
    Rnd(d, e, f, g, h, a, b, c, kK[61], w13);
    w14 += Sig1(w12) + w7 + Sig0(w15);
    Rnd(c, d, e, f, g, h, a, b, kK[62], w14);
    w15 += Sig1(w13) + w8 + Sig0(w0);
    Rnd(b, c, d, e, f, g, h, a, kK[63], w15);

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    data += 64;
  }
#undef Rnd
}

#if DICHO_SHA_NI_BUILD
// x86 SHA-NI compression: two sha256rnds2 per 4 rounds, schedule kept in four
// xmm registers. Compiled with a per-function target so the translation unit
// itself needs no -msha; only ever called after a CPUID check.
__attribute__((target("sha,sse4.1,ssse3"))) void CompressShaNi(
    uint32_t state[8], const uint8_t* data, size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a..h} into the ABEF/CDGH register layout sha256rnds2 expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  st1 = _mm_shuffle_epi32(st1, 0x1B);
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);

#define QROUND(kidx_hi, kidx_lo, msg_in)                                      \
  do {                                                                        \
    __m128i k = _mm_set_epi64x(static_cast<long long>(kidx_hi),               \
                               static_cast<long long>(kidx_lo));              \
    __m128i m = _mm_add_epi32((msg_in), k);                                   \
    st1 = _mm_sha256rnds2_epu32(st1, st0, m);                                 \
    m = _mm_shuffle_epi32(m, 0x0E);                                           \
    st0 = _mm_sha256rnds2_epu32(st0, st1, m);                                 \
  } while (0)

  while (nblocks--) {
    const __m128i save0 = st0, save1 = st1;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffle);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)),
        kShuffle);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)),
        kShuffle);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)),
        kShuffle);

    // Rounds 0-15: raw message words.
    QROUND(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL, msg0);
    QROUND(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL, msg1);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);
    QROUND(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL, msg2);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);
    QROUND(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL, msg3);

    // Rounds 16-51: full schedule recurrence, msg registers rotate.
#define SCHED(mprev3, mprev2, mprev1, mcur)                       \
  do {                                                            \
    __m128i t = _mm_alignr_epi8((mcur), (mprev1), 4);             \
    (mprev3) = _mm_add_epi32((mprev3), t);                        \
    (mprev3) = _mm_sha256msg2_epu32((mprev3), (mcur));            \
    (mprev1) = _mm_sha256msg1_epu32((mprev1), (mcur));            \
  } while (0)

    SCHED(msg0, msg1, msg2, msg3);
    QROUND(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL, msg0);
    SCHED(msg1, msg2, msg3, msg0);
    QROUND(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL, msg1);
    SCHED(msg2, msg3, msg0, msg1);
    QROUND(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL, msg2);
    SCHED(msg3, msg0, msg1, msg2);
    QROUND(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL, msg3);
    SCHED(msg0, msg1, msg2, msg3);
    QROUND(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL, msg0);
    SCHED(msg1, msg2, msg3, msg0);
    QROUND(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL, msg1);
    SCHED(msg2, msg3, msg0, msg1);
    QROUND(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL, msg2);
    SCHED(msg3, msg0, msg1, msg2);
    QROUND(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL, msg3);
    SCHED(msg0, msg1, msg2, msg3);
    QROUND(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL, msg0);

    // Rounds 52-63: same rotation — the msg1 feeds in these groups still
    // prepare the registers consumed two groups later.
    SCHED(msg1, msg2, msg3, msg0);
    QROUND(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL, msg1);
    SCHED(msg2, msg3, msg0, msg1);
    QROUND(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL, msg2);
    SCHED(msg3, msg0, msg1, msg2);
    QROUND(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL, msg3);

    st0 = _mm_add_epi32(st0, save0);
    st1 = _mm_add_epi32(st1, save1);
    data += 64;
  }
#undef SCHED
#undef QROUND

  tmp = _mm_shuffle_epi32(st0, 0x1B);
  st1 = _mm_shuffle_epi32(st1, 0xB1);
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);
  st1 = _mm_alignr_epi8(st1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}
#endif  // DICHO_SHA_NI_BUILD

using CompressFn = void (*)(uint32_t[8], const uint8_t*, size_t);

CompressFn ResolveCompress() {
#if DICHO_SHA_NI_BUILD
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
      __builtin_cpu_supports("ssse3")) {
    return &CompressShaNi;
  }
#endif
  return &CompressPortable;
}

const CompressFn g_compress = ResolveCompress();

constexpr uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                               0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline void StoreDigest(const uint32_t state[8], Digest* out) {
  for (int i = 0; i < 8; i++) {
    (*out)[i * 4] = static_cast<uint8_t>(state[i] >> 24);
    (*out)[i * 4 + 1] = static_cast<uint8_t>(state[i] >> 16);
    (*out)[i * 4 + 2] = static_cast<uint8_t>(state[i] >> 8);
    (*out)[i * 4 + 3] = static_cast<uint8_t>(state[i]);
  }
}

// Writes the final sub-block bytes plus FIPS padding into `tail` (one or two
// blocks) and compresses them. `rem` < 64 trailing input bytes, `bits` is the
// total message length in bits.
inline void FinishTail(uint32_t state[8], const uint8_t* rem_data, size_t rem,
                       uint64_t bits) {
  uint8_t tail[128];
  memcpy(tail, rem_data, rem);
  tail[rem] = 0x80;
  const size_t padded = rem < 56 ? 64 : 128;
  memset(tail + rem + 1, 0, padded - 8 - (rem + 1));
  for (int i = 0; i < 8; i++) {
    tail[padded - 8 + i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  }
  g_compress(state, tail, padded / 64);
}

}  // namespace

bool Sha256UsesHardwareAcceleration() {
  return g_compress != &CompressPortable;
}

void Sha256::Reset() {
  memcpy(state_, kInit, sizeof(state_));
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::Update(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  bit_count_ += static_cast<uint64_t>(len) * 8;
  // Drain a partially filled staging buffer first.
  if (buffer_len_ != 0) {
    size_t take = 64 - buffer_len_;
    if (take > len) take = len;
    memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == 64) {
      g_compress(state_, buffer_, 1);
      buffer_len_ = 0;
    }
  }
  // Whole blocks go straight from the caller's buffer.
  if (len >= 64) {
    size_t nblocks = len / 64;
    g_compress(state_, p, nblocks);
    p += nblocks * 64;
    len -= nblocks * 64;
  }
  if (len > 0) {
    memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Digest Sha256::Finish() {
  FinishTail(state_, buffer_, buffer_len_, bit_count_);
  Digest out;
  StoreDigest(state_, &out);
  return out;
}

Digest Sha256Hash(const Slice& data) {
  uint32_t state[8];
  memcpy(state, kInit, sizeof(state));
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  const size_t nblocks = data.size() / 64;
  if (nblocks != 0) g_compress(state, p, nblocks);
  FinishTail(state, p + nblocks * 64, data.size() - nblocks * 64,
             static_cast<uint64_t>(data.size()) * 8);
  Digest out;
  StoreDigest(state, &out);
  return out;
}

Digest Sha256Of(const Slice& data) { return Sha256Hash(data); }

Digest Sha256Pair(const Digest& a, const Digest& b) {
  // One 64-byte block: hash it directly via the one-shot path.
  uint8_t block[64];
  memcpy(block, a.data(), 32);
  memcpy(block + 32, b.data(), 32);
  return Sha256Hash(Slice(reinterpret_cast<const char*>(block), 64));
}

std::string DigestHex(const Digest& d) {
  return ToHex(Slice(reinterpret_cast<const char*>(d.data()), d.size()));
}

std::string DigestBytes(const Digest& d) {
  return std::string(reinterpret_cast<const char*>(d.data()), d.size());
}

Digest DigestFromBytes(const Slice& bytes) {
  assert(bytes.size() == 32);
  Digest d;
  memcpy(d.data(), bytes.data(), 32);
  return d;
}

Digest ZeroDigest() {
  Digest d;
  d.fill(0);
  return d;
}

}  // namespace dicho::crypto
