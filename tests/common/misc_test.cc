#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/hex.h"
#include "common/histogram.h"

namespace dicho {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, 32), 0x8A9136AAu);
  // "123456789" -> 0xE3069283
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const char* data = "hello world, this is a crc test";
  size_t n = strlen(data);
  uint32_t whole = crc32c::Value(data, n);
  uint32_t part = crc32c::Value(data, 10);
  part = crc32c::Extend(part, data + 10, n - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(100, 'a');
  uint32_t before = crc32c::Value(data.data(), data.size());
  data[50] ^= 1;
  EXPECT_NE(before, crc32c::Value(data.data(), data.size()));
}

TEST(HexTest, RoundTrip) {
  std::string raw("\x00\xff\x10\xab", 4);
  EXPECT_EQ(ToHex(raw), "00ff10ab");
  EXPECT_EQ(FromHex("00ff10ab"), raw);
  EXPECT_EQ(FromHex("00FF10AB"), raw);
}

TEST(HexTest, MalformedInput) {
  EXPECT_EQ(FromHex("abc"), "");   // odd length
  EXPECT_EQ(FromHex("zz"), "");    // non-hex
  EXPECT_EQ(FromHex(""), "");
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.1);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, AddAfterPercentileStaysCorrect) {
  Histogram h;
  h.Add(10);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10);
  h.Add(20);
  h.Add(0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10);
  EXPECT_DOUBLE_EQ(h.Max(), 20);
}

TEST(HistogramTest, StdDev) {
  Histogram h;
  h.Add(2);
  h.Add(4);
  h.Add(4);
  h.Add(4);
  h.Add(5);
  h.Add(5);
  h.Add(7);
  h.Add(9);
  EXPECT_NEAR(h.StdDev(), 2.0, 1e-9);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace dicho
