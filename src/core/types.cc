#include "core/types.h"

#include "common/coding.h"

namespace dicho::core {

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kWriteConflict:
      return "write-conflict";
    case AbortReason::kReadConflict:
      return "read-conflict";
    case AbortReason::kInconsistentEndorsement:
      return "inconsistent-endorsement";
    case AbortReason::kContention:
      return "contention";
    case AbortReason::kConstraint:
      return "constraint";
    case AbortReason::kUnavailable:
      return "unavailable";
    case AbortReason::kOther:
      return "other";
    case AbortReason::kAdmissionReject:
      return "admission-reject";
    case AbortReason::kBadSignature:
      return "bad-signature";
  }
  return "unknown";
}

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kAuth:
      return "auth";
    case Phase::kCommit:
      return "commit";
    case Phase::kConsensus:
      return "consensus";
    case Phase::kConsensusCommit:
      return "consensus+commit";
    case Phase::kEvmRead:
      return "evm-read";
    case Phase::kExecute:
      return "execute";
    case Phase::kOrder:
      return "order";
    case Phase::kParse:
      return "parse";
    case Phase::kPrewrite:
      return "prewrite";
    case Phase::kProposal:
      return "proposal";
    case Phase::kRead:
      return "read";
    case Phase::kValidate:
      return "validate";
  }
  return "unknown";
}

bool ParsePhaseName(const std::string& name, Phase* out) {
  for (size_t i = 0; i < kNumPhases; i++) {
    Phase phase = static_cast<Phase>(i);
    if (name == PhaseName(phase)) {
      *out = phase;
      return true;
    }
  }
  return false;
}

sim::Time TxnResult::phase_us(const std::string& name) const {
  Phase phase;
  return ParsePhaseName(name, &phase) ? phases.Get(phase) : 0;
}

sim::Time ReadResult::phase_us(const std::string& name) const {
  Phase phase;
  return ParsePhaseName(name, &phase) ? phases.Get(phase) : 0;
}

std::string TxnRequest::Serialize() const {
  std::string out;
  PutFixed64(&out, txn_id);
  PutFixed64(&out, client_id);
  PutLengthPrefixed(&out, contract);
  PutLengthPrefixed(&out, method);
  PutVarint32(&out, static_cast<uint32_t>(args.size()));
  for (const auto& a : args) PutLengthPrefixed(&out, a);
  PutVarint32(&out, static_cast<uint32_t>(ops.size()));
  for (const auto& op : ops) {
    out.push_back(static_cast<char>(op.type));
    PutLengthPrefixed(&out, op.key);
    PutLengthPrefixed(&out, op.value);
  }
  return out;
}

bool TxnRequest::Deserialize(const std::string& data, TxnRequest* out) {
  Slice in(data);
  Slice contract, method;
  uint32_t nargs, nops;
  if (!GetFixed64(&in, &out->txn_id) || !GetFixed64(&in, &out->client_id) ||
      !GetLengthPrefixed(&in, &contract) ||
      !GetLengthPrefixed(&in, &method) || !GetVarint32(&in, &nargs)) {
    return false;
  }
  out->contract = contract.ToString();
  out->method = method.ToString();
  out->args.clear();
  for (uint32_t i = 0; i < nargs; i++) {
    Slice a;
    if (!GetLengthPrefixed(&in, &a)) return false;
    out->args.push_back(a.ToString());
  }
  if (!GetVarint32(&in, &nops)) return false;
  out->ops.clear();
  for (uint32_t i = 0; i < nops; i++) {
    if (in.empty()) return false;
    Op op;
    op.type = static_cast<OpType>(in[0]);
    in.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixed(&in, &key) || !GetLengthPrefixed(&in, &value)) {
      return false;
    }
    op.key = key.ToString();
    op.value = value.ToString();
    out->ops.push_back(std::move(op));
  }
  return in.empty();
}

}  // namespace dicho::core
