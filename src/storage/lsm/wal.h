#ifndef DICHO_STORAGE_LSM_WAL_H_
#define DICHO_STORAGE_LSM_WAL_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"

namespace dicho::storage::lsm {

/// Write-ahead-log writer. Record framing:
///   fixed32 masked_crc32c(payload) | fixed32 length | payload
/// Torn tails (partial record at the end after a crash) are detected by the
/// reader and treated as end-of-log, which is the standard recovery
/// contract: a write is durable iff its record is fully framed.
class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  Status AddRecord(const Slice& payload);
  Status Sync() { return file_->Sync(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

/// Reads records back; stops cleanly at a torn or corrupt tail.
class LogReader {
 public:
  /// `contents` is the whole log file.
  explicit LogReader(std::string contents)
      : contents_(std::move(contents)), pos_(0) {}

  /// Returns true and fills *payload while intact records remain.
  /// *corruption_detected (optional) reports whether the stop was due to a
  /// bad CRC / torn record rather than clean EOF.
  bool ReadRecord(std::string* payload, bool* corruption_detected = nullptr);

 private:
  std::string contents_;
  size_t pos_;
};

}  // namespace dicho::storage::lsm

#endif  // DICHO_STORAGE_LSM_WAL_H_
