#include "systems/runtime/transport.h"

#include <algorithm>

namespace dicho::systems::runtime {

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kRaft:
      return "raft";
    case TransportKind::kBft:
      return "bft";
    case TransportKind::kSharedLog:
      return "shared-log";
    case TransportKind::kPow:
      return "pow";
    case TransportKind::kPrimaryBackup:
      return "primary-backup";
  }
  return "unknown";
}

Transport::Transport(sim::Simulator* sim, sim::SimNetwork* net,
                     const sim::CostModel* costs,
                     std::vector<sim::NodeId> node_ids, TransportConfig config,
                     ApplyFn apply)
    : sim_(sim),
      net_(net),
      node_ids_(std::move(node_ids)),
      config_(std::move(config)),
      apply_(std::move(apply)) {
  const sim::NodeId base = node_ids_.front();
  if (config_.partition_replicas) {
    for (sim::NodeId id : node_ids_) {
      if (sim_->PartitionOfNode(id) == 0) {
        sim_->AssignNode(id, sim_->AddPartition());
      }
    }
    net_->SyncPartitions();
  }
  if (obs::MetricsRegistry* registry = sim_->metrics()) {
    const std::string prefix = std::string("transport.") +
                               TransportKindName(config_.kind) + ".n" +
                               std::to_string(base);
    disseminations_ = registry->GetCounter(prefix + ".disseminations");
    payload_bytes_ = registry->GetCounter(prefix + ".payload_bytes");
  }
  // Protocol delivery hands (node_id, seq, payload); replica code indexes
  // nodes by position in the span.
  auto deliver = [this, base](sim::NodeId node, uint64_t seq,
                              const std::string& payload) {
    if (apply_ != nullptr) {
      apply_(static_cast<size_t>(node - base), seq, payload);
    }
  };
  switch (config_.kind) {
    case TransportKind::kRaft:
      raft_ = consensus::RaftCluster::Create(sim, net, costs, node_ids_,
                                             config_.raft, deliver);
      break;
    case TransportKind::kBft:
      bft_ = consensus::BftCluster::Create(sim, net, costs, node_ids_,
                                           config_.bft, deliver);
      break;
    case TransportKind::kSharedLog: {
      sim::NodeId broker = node_ids_.back() + 1;  // Kafka-style broker node
      shared_log_ =
          std::make_unique<sharedlog::SharedLog>(sim, net, broker, config_.log);
      for (size_t i = 0; i < node_ids_.size(); i++) {
        shared_log_->Subscribe(
            node_ids_[i], [this, i](uint64_t seq, const std::string& record) {
              if (apply_ != nullptr) apply_(i, seq, record);
            });
      }
      break;
    }
    case TransportKind::kPow:
      pow_ = std::make_unique<consensus::PowNetwork>(sim, net, node_ids_,
                                                     config_.pow, deliver);
      break;
    case TransportKind::kPrimaryBackup:
      break;  // handled inline in Disseminate
  }
}

void Transport::Start() {
  if (raft_ != nullptr) raft_->StartAll();
  if (bft_ != nullptr) bft_->StartAll();
  if (pow_ != nullptr) pow_->Start();
}

void Transport::Disseminate(const std::string& payload) {
  if (disseminations_ != nullptr) {
    disseminations_->Inc();
    payload_bytes_->Inc(payload.size());
  }
  if (raft_ != nullptr) {
    consensus::RaftNode* leader = raft_->leader();
    if (leader == nullptr) {
      // Election in progress; retry shortly.
      sim_->Schedule(config_.raft_retry_interval,
                     [this, payload] { Disseminate(payload); });
      return;
    }
    leader->Propose(payload, [](Status, uint64_t) {});
    return;
  }
  if (bft_ != nullptr) {
    bft_->all()[0]->Submit(payload, [](Status, uint64_t) {});
    return;
  }
  if (pow_ != nullptr) {
    pow_->Submit(payload, nullptr);
    return;
  }
  if (shared_log_ != nullptr) {
    shared_log_->Append(node_ids_[0], payload, nullptr);
    return;
  }
  // Primary-backup: the first replica is the primary; backups receive the
  // stream over the wire.
  uint64_t seq = ++pb_seq_;
  if (apply_ != nullptr) apply_(0, seq, payload);
  for (size_t i = 1; i < node_ids_.size(); i++) {
    net_->Send(node_ids_[0], node_ids_[i], 64 + payload.size(),
               [this, i, seq, payload] {
                 if (apply_ != nullptr) apply_(i, seq, payload);
               });
  }
}

consensus::RaftNode* Transport::AddRaftReplica(sim::NodeId id) {
  if (raft_ == nullptr) return nullptr;
  // Bootstrap config = the construction-time span: a joiner replaying
  // history from its snapshot reconstructs every later config version from
  // the log (the adopted snapshot view fast-forwards it).
  std::vector<sim::NodeId> bootstrap = node_ids_;
  consensus::RaftNode* node = raft_->AddNode(id, bootstrap);
  if (std::find(node_ids_.begin(), node_ids_.end(), id) == node_ids_.end()) {
    node_ids_.push_back(id);
  }
  return node;
}

}  // namespace dicho::systems::runtime
