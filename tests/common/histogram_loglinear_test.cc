// LogLinearHistogram unit tests: bucket-layout invariants, merge
// associativity, quantile accuracy against the exact (sample-storing)
// Histogram as oracle, and overflow-bucket behavior. These pin the
// properties the obs metrics registry depends on — bounded relative
// quantile error (1/sub_buckets) and order-independent merging.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace dicho {
namespace {

using Buckets = LogLinearHistogram;

TEST(LogLinearBucketsTest, LinearRegionHasUnitBuckets) {
  // Values below sub_buckets map to their own unit-width bucket.
  for (uint64_t v = 0; v < 32; v++) {
    EXPECT_EQ(Buckets::BucketIndex(v, 32), v);
    EXPECT_EQ(Buckets::BucketLowerBound(v, 32), v);
  }
}

TEST(LogLinearBucketsTest, EveryValueLandsInsideItsBucket) {
  // [BucketLowerBound(i), BucketLowerBound(i+1)) must contain every value
  // that maps to index i — checked densely through several octaves and at
  // power-of-two edges far up the range.
  const uint32_t kSub = 32;
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 4096; v++) values.push_back(v);
  for (int shift = 12; shift < 40; shift++) {
    values.push_back((uint64_t{1} << shift) - 1);
    values.push_back(uint64_t{1} << shift);
    values.push_back((uint64_t{1} << shift) + 1);
    values.push_back((uint64_t{1} << shift) + (uint64_t{1} << (shift - 2)));
  }
  for (uint64_t v : values) {
    const size_t idx = Buckets::BucketIndex(v, kSub);
    EXPECT_LE(Buckets::BucketLowerBound(idx, kSub), v) << "value " << v;
    EXPECT_GT(Buckets::BucketLowerBound(idx + 1, kSub), v) << "value " << v;
  }
}

TEST(LogLinearBucketsTest, IndicesAreMonotonicWithBoundedWidth) {
  const uint32_t kSub = 32;
  size_t prev = 0;
  for (uint64_t v = 0; v < 300000; v++) {
    const size_t idx = Buckets::BucketIndex(v, kSub);
    EXPECT_GE(idx, prev) << "index not monotonic at value " << v;
    prev = idx;
  }
  // Width of any bucket at or past the linear region is at most lower/kSub:
  // that is the 1/sub_buckets relative-error bound.
  for (size_t idx = kSub; idx < Buckets::BucketIndex(uint64_t{1} << 38, kSub);
       idx++) {
    const uint64_t lower = Buckets::BucketLowerBound(idx, kSub);
    const uint64_t width = Buckets::BucketLowerBound(idx + 1, kSub) - lower;
    EXPECT_LE(width * kSub, lower) << "bucket " << idx << " too wide";
  }
}

TEST(LogLinearBucketsTest, SubBucketCountScalesPrecision) {
  // Doubling sub_buckets halves the worst-case bucket width.
  for (uint64_t v : {100u, 1000u, 54321u, 1u << 20}) {
    for (uint32_t sub : {4u, 16u, 64u}) {
      const size_t idx = Buckets::BucketIndex(v, sub);
      const uint64_t width =
          Buckets::BucketLowerBound(idx + 1, sub) - Buckets::BucketLowerBound(idx, sub);
      EXPECT_LE(width * sub, std::max<uint64_t>(v, sub)) << "v=" << v << " sub=" << sub;
    }
  }
}

std::vector<double> MixedSamples(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> uniform(1, 100000);
  std::exponential_distribution<double> expo(1.0 / 5000.0);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; i++) {
    // Integer-valued so the histogram's llround is lossless and the oracle
    // comparison is about bucketing, not rounding.
    const double v = (i % 2 == 0) ? static_cast<double>(uniform(rng))
                                  : std::floor(expo(rng));
    out.push_back(v);
  }
  return out;
}

TEST(LogLinearHistogramTest, MergeEqualsPooledAddsAndIsAssociative) {
  const auto sa = MixedSamples(11, 4000);
  const auto sb = MixedSamples(22, 3000);
  const auto sc = MixedSamples(33, 5000);

  LogLinearHistogram a, b, c, pooled;
  for (double v : sa) { a.Add(v); pooled.Add(v); }
  for (double v : sb) { b.Add(v); pooled.Add(v); }
  for (double v : sc) { c.Add(v); pooled.Add(v); }

  // (a + b) + c
  LogLinearHistogram left;
  left.Merge(a);
  left.Merge(b);
  left.Merge(c);
  // a + (b + c)
  LogLinearHistogram bc;
  bc.Merge(b);
  bc.Merge(c);
  LogLinearHistogram right;
  right.Merge(a);
  right.Merge(bc);

  for (const LogLinearHistogram* h : {&left, &right}) {
    EXPECT_EQ(h->count(), pooled.count());
    EXPECT_EQ(h->overflow_count(), pooled.overflow_count());
    EXPECT_DOUBLE_EQ(h->sum(), pooled.sum());
    EXPECT_DOUBLE_EQ(h->Min(), pooled.Min());
    EXPECT_DOUBLE_EQ(h->Max(), pooled.Max());
    ASSERT_EQ(h->num_buckets(), pooled.num_buckets());
    for (size_t i = 0; i < pooled.num_buckets(); i++) {
      EXPECT_EQ(h->bucket_count(i), pooled.bucket_count(i)) << "bucket " << i;
    }
    for (double p : {50.0, 95.0, 99.0}) {
      EXPECT_DOUBLE_EQ(h->Percentile(p), pooled.Percentile(p)) << "p" << p;
    }
  }
}

TEST(LogLinearHistogramTest, QuantilesTrackSortedVectorOracle) {
  // The exact Histogram stores raw samples; the log-linear estimate must be
  // within the documented relative bound (1/sub_buckets, plus one unit of
  // integer slack) of the oracle for p50/p95/p99 across distributions.
  for (uint64_t seed : {1u, 7u, 42u}) {
    const auto samples = MixedSamples(seed, 10000);
    LogLinearHistogram ll;  // sub_buckets = 32
    Histogram oracle;
    for (double v : samples) {
      ll.Add(v);
      oracle.Add(v);
    }
    for (double p : {50.0, 90.0, 95.0, 99.0}) {
      const double expected = oracle.Percentile(p);
      const double actual = ll.Percentile(p);
      EXPECT_NEAR(actual, expected, expected / 32.0 + 1.0)
          << "seed " << seed << " p" << p;
    }
  }
}

TEST(LogLinearHistogramTest, QuantilesExactInLinearRegion) {
  // Below sub_buckets every bucket is unit-width, so integer quantiles are
  // recovered exactly.
  LogLinearHistogram h(64);
  for (int v = 0; v < 64; v++) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 63);
  EXPECT_NEAR(h.Percentile(50), 31.5, 1.0);
}

TEST(LogLinearHistogramTest, OverflowBucketCountsAndClamps) {
  LogLinearHistogram h(32, /*max_value=*/1000);
  for (int i = 0; i < 50; i++) h.Add(100);
  for (int i = 0; i < 50; i++) h.Add(5000);  // above max_value
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.overflow_count(), 50u);
  // Extrema are tracked exactly even for overflowed samples...
  EXPECT_DOUBLE_EQ(h.Max(), 5000);
  // ...but quantiles that land in the overflow mass report max_value.
  EXPECT_DOUBLE_EQ(h.Percentile(99), 1000);
  // Quantiles in the in-range mass are unaffected by the overflow tail.
  EXPECT_NEAR(h.Percentile(25), 100, 100 / 32.0 + 1.0);
}

TEST(LogLinearHistogramTest, EmptyAndSingleValueEdgeCases) {
  LogLinearHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
  h.Add(777);
  for (double p : {0.0, 50.0, 100.0}) {
    // Estimates are clamped to the exact extrema, so a single sample is
    // reported exactly at every percentile.
    EXPECT_DOUBLE_EQ(h.Percentile(p), 777) << "p" << p;
  }
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
}

TEST(LogLinearHistogramTest, NegativeValuesClampToZero) {
  LogLinearHistogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), 0);
}

}  // namespace
}  // namespace dicho
