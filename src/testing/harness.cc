#include "testing/harness.h"

#include <functional>
#include <numeric>
#include <set>

#include "adt/mpt.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "core/types.h"
#include "obs/trace.h"
#include "ledger/ledger.h"
#include "sim/cost_model.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/harmonylike.h"
#include "systems/harmonyshard.h"
#include "systems/quorum.h"
#include "systems/runtime/registry.h"
#include "testing/nemesis.h"
#include "testing/serializability.h"
#include "workload/arrival.h"

namespace dicho::testing {

const char* BugName(BugInjection bug) {
  switch (bug) {
    case BugInjection::kNone:
      return "none";
    case BugInjection::kRaftCommitWithoutQuorum:
      return "raft-no-quorum";
    case BugInjection::kPbftSkipPrepareQuorum:
      return "pbft-no-quorum";
  }
  return "none";
}

bool ParseBugName(const std::string& name, BugInjection* out) {
  for (BugInjection bug :
       {BugInjection::kNone, BugInjection::kRaftCommitWithoutQuorum,
        BugInjection::kPbftSkipPrepareQuorum}) {
    if (name == BugName(bug)) {
      *out = bug;
      return true;
    }
  }
  return false;
}

namespace {

std::vector<sim::NodeId> MakeIds(uint32_t n) {
  std::vector<sim::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

// --- Raft scenarios ---------------------------------------------------------

ScenarioResult RunRaftScenario(const ScenarioOptions& options,
                               const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::RaftConfig config;
  config.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;

  RaftInvariantChecker* checker = nullptr;
  auto cluster = consensus::RaftCluster::Create(
      &sim, &net, &costs, MakeIds(sched.num_nodes), config,
      [&checker](sim::NodeId node, uint64_t index, const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, index, cmd);
      });
  RaftInvariantChecker check(cluster->all());
  checker = &check;

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    for (consensus::RaftNode* node : cluster->all()) {
      if (node->IsLeader()) {
        node->Propose("cmd-" + std::to_string(next_cmd++),
                      [](Status, uint64_t) {});
        break;
      }
    }
    sim.Schedule(50 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);
  std::function<void()> observe = [&] {
    check.Observe();
    sim.Schedule(20 * sim::kMs, observe);
  };
  sim.Schedule(20 * sim::kMs, observe);

  sim.RunUntil(sched.horizon);
  check.CheckFinal();
  result.report = *check.report();
  result.progress = check.applied_total();
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no node applied any command over the whole run "
                      "(schedule guarantees a majority plus a quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Partitioned-engine scenario (conservative parallel sync) ---------------

// One world: N-node Raft with every replica on its own simulator partition,
// run at `threads` worker threads. Faults and the proposing client are
// injected as global events (all partitions parked); node-local side effects
// run under the node's PartitionScope. Per-node applied logs are the
// outcome the safety and determinism checks run over.
struct PartitionedRaftOutcome {
  std::vector<std::vector<std::pair<uint64_t, std::string>>> applied;
  uint64_t sim_events = 0;
};

PartitionedRaftOutcome RunPartitionedRaftWorld(const ScenarioOptions& options,
                                               const ScheduleConfig& sched,
                                               const FaultSchedule& schedule,
                                               unsigned threads) {
  PartitionedRaftOutcome out;
  sim::Simulator sim(options.seed);
  sim.set_threads(threads);
  std::vector<sim::NodeId> ids = MakeIds(sched.num_nodes);
  for (sim::NodeId id : ids) sim.AssignNode(id, sim.AddPartition());
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::RaftConfig config;
  config.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;

  out.applied.resize(sched.num_nodes);
  auto cluster = consensus::RaftCluster::Create(
      &sim, &net, &costs, ids, config,
      [&out](sim::NodeId node, uint64_t index, const std::string& cmd) {
        // Node-confined slot: only ever touched from the node's partition.
        out.applied[node].emplace_back(index, cmd);
      });

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    sim::Simulator::PartitionScope scope(&sim, sim.PartitionOfNode(id));
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    sim::Simulator::PartitionScope scope(&sim, sim.PartitionOfNode(id));
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  nemesis.ArmGlobal(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    for (consensus::RaftNode* node : cluster->all()) {
      if (node->IsLeader()) {
        sim::Simulator::PartitionScope scope(&sim,
                                             sim.PartitionOfNode(node->id()));
        node->Propose("cmd-" + std::to_string(next_cmd++),
                      [](Status, uint64_t) {});
        break;
      }
    }
    sim.ScheduleGlobal(50 * sim::kMs, client);
  };
  sim.ScheduleGlobal(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);
  out.sim_events = sim.executed_events();
  return out;
}

ScenarioResult RunPartitionedRaftScenario(const ScenarioOptions& options,
                                          const ScheduleConfig& sched) {
  ScenarioResult result;
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  PartitionedRaftOutcome serial =
      RunPartitionedRaftWorld(options, sched, schedule, 1);
  PartitionedRaftOutcome parallel =
      RunPartitionedRaftWorld(options, sched, schedule, 2);

  // The conservative parallel engine must replay the serial merge exactly:
  // same per-node apply sequences, same event total.
  if (serial.sim_events != parallel.sim_events ||
      serial.applied != parallel.applied) {
    result.report.Add("parallel-determinism",
                      "threads=2 run diverged from threads=1 (events " +
                          std::to_string(serial.sim_events) + " vs " +
                          std::to_string(parallel.sim_events) + ")");
  }

  // State-machine safety across the cluster: no two applies may disagree on
  // the command at an index (restart re-application must replay the same
  // commands too).
  std::map<uint64_t, std::string> canon;
  for (size_t n = 0; n < serial.applied.size(); n++) {
    for (const auto& [index, cmd] : serial.applied[n]) {
      auto [it, inserted] = canon.emplace(index, cmd);
      if (!inserted && it->second != cmd) {
        result.report.Add(
            "raft-state-machine",
            "node " + std::to_string(n) + " applied '" + cmd + "' at index " +
                std::to_string(index) + " where '" + it->second +
                "' was already applied");
      }
    }
  }
  for (const auto& log : serial.applied) result.progress += log.size();
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no node applied any command over the whole run "
                      "(schedule guarantees a majority plus a quiet tail)");
  }
  result.sim_events = serial.sim_events;
  result.schedule = schedule.ToString();
  return result;
}

// --- PBFT scenarios ---------------------------------------------------------

ScenarioResult RunBftScenario(const ScenarioOptions& options,
                              const ScheduleConfig& sched,
                              const std::set<sim::NodeId>& byzantine) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::BftConfig config;
  config.unsafe_skip_prepare_quorum =
      options.bug == BugInjection::kPbftSkipPrepareQuorum;

  BftInvariantChecker* checker = nullptr;
  auto cluster = consensus::BftCluster::Create(
      &sim, &net, &costs, MakeIds(sched.num_nodes), config,
      [&checker](sim::NodeId node, uint64_t seq, const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, seq, cmd);
      });
  BftInvariantChecker check(cluster->all(), byzantine);
  checker = &check;
  for (sim::NodeId evil : byzantine) {
    cluster->node(evil)->SetByzantineEquivocation(true);
  }

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    std::string cmd = "op-" + std::to_string(next_cmd++);
    for (consensus::BftNode* node : cluster->all()) {
      if (nemesis.IsDown(node->id()) || byzantine.count(node->id()) > 0) {
        continue;
      }
      check.NoteSubmitted(cmd);
      node->Submit(cmd, [](Status, uint64_t) {});
      break;
    }
    sim.Schedule(60 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);
  check.CheckFinal();
  result.report = *check.report();
  result.progress = check.executed_total();
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no correct replica executed any command over the "
                      "whole run (schedule keeps >= 2f+1 correct replicas "
                      "up plus a quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Ledger pipeline --------------------------------------------------------

// Each replica turns its Raft apply stream into hash-linked blocks over an
// MPT-authenticated state (a miniature order-execute chain, Quorum-style),
// so the ledger audits get exercised against consensus under faults.
struct PipelineReplica {
  uint64_t applied = 0;  // highest Raft index folded in (restart replays skip)
  std::vector<std::string> buffer;
  adt::MerklePatriciaTrie state;
  ledger::Chain chain;
};

constexpr size_t kPipelineBlockTxns = 5;

void SealPipelineBlock(sim::NodeId id, PipelineReplica* replica,
                       InvariantReport* report) {
  ledger::Block block;
  block.header.number = replica->chain.height();
  block.header.parent = replica->chain.TipDigest();
  // Deterministic across replicas (wall-clock stamps would split the chain).
  block.header.timestamp_us = block.header.number;
  for (const std::string& cmd : replica->buffer) {
    ledger::LedgerTxn txn;
    txn.payload = cmd;
    size_t eq = cmd.find('=');
    txn.write_set.emplace_back(cmd.substr(0, eq), cmd.substr(eq + 1));
    block.txns.push_back(std::move(txn));
  }
  replica->buffer.clear();
  block.SealTxnRoot();
  for (const auto& txn : block.txns) {
    for (const auto& [key, value] : txn.write_set) {
      replica->state.Put(key, value);
    }
  }
  block.header.state_digest = replica->state.RootDigest();
  Status s = replica->chain.Append(std::move(block));
  if (!s.ok()) {
    report->Add("ledger-verify", "node " + std::to_string(id) +
                                     " failed to append its own block: " +
                                     s.message());
  }
}

ScenarioResult RunLedgerPipelineScenario(const ScenarioOptions& options,
                                         const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::RaftConfig config;
  config.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;

  std::map<sim::NodeId, PipelineReplica> replicas;
  RaftInvariantChecker* checker = nullptr;
  auto cluster = consensus::RaftCluster::Create(
      &sim, &net, &costs, MakeIds(sched.num_nodes), config,
      [&checker, &replicas, &result](sim::NodeId node, uint64_t index,
                                     const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, index, cmd);
        PipelineReplica& replica = replicas[node];
        if (index <= replica.applied) return;  // post-restart replay
        replica.applied = index;
        replica.buffer.push_back(cmd);
        if (replica.buffer.size() >= kPipelineBlockTxns) {
          SealPipelineBlock(node, &replica, &result.report);
        }
      });
  RaftInvariantChecker check(cluster->all());
  checker = &check;

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    for (consensus::RaftNode* node : cluster->all()) {
      if (node->IsLeader()) {
        std::string cmd = "acct" + std::to_string(next_cmd % 7) + "=v" +
                          std::to_string(next_cmd);
        next_cmd++;
        node->Propose(std::move(cmd), [](Status, uint64_t) {});
        break;
      }
    }
    sim.Schedule(40 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);
  check.CheckFinal();
  result.report = *check.report();

  std::vector<const ledger::Chain*> chains;
  for (auto& [id, replica] : replicas) {
    ledger_audit::AuditChain(replica.chain, "node " + std::to_string(id),
                             &result.report);
    chains.push_back(&replica.chain);
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);
  const ledger::Chain* longest = nullptr;
  for (const ledger::Chain* chain : chains) {
    if (longest == nullptr || chain->height() > longest->height()) {
      longest = chain;
    }
  }
  if (longest != nullptr) {
    ledger_audit::CheckStateDigests(*longest, {}, &result.report);
  }

  result.progress = check.applied_total();
  if (result.progress == 0) {
    result.report.Add("liveness", "no node applied any command");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Full Quorum pipeline ---------------------------------------------------

ScenarioResult RunQuorumScenario(const ScenarioOptions& options,
                                 const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::runtime::SystemOverrides overrides;
  overrides.nodes = sched.num_nodes;
  overrides.block_interval = 150 * sim::kMs;
  overrides.raft_unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  auto system_ptr = systems::runtime::MakeSystemAs<systems::QuorumSystem>(
      "quorum-raft", &sim, &net, &costs, overrides);
  systems::QuorumSystem& system = *system_ptr;
  for (int i = 0; i < 6; i++) {
    system.Load("acct" + std::to_string(i), "0");
  }
  system.Start();

  // Network faults only: the Quorum pipeline does not expose node crashes.
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);

  uint64_t next_txn = 0;
  std::function<void()> client = [&] {
    core::TxnRequest request;
    request.txn_id = ++next_txn;
    request.client_id = 7;
    request.ops.push_back(
        {core::OpType::kWrite, "acct" + std::to_string(next_txn % 6),
         "v" + std::to_string(next_txn)});
    system.Submit(request, [](const core::TxnResult&) {});
    sim.Schedule(100 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);

  std::vector<const ledger::Chain*> chains;
  for (uint32_t i = 0; i < sched.num_nodes; i++) {
    ledger_audit::AuditChain(system.chain_of(i), "node " + std::to_string(i),
                             &result.report);
    chains.push_back(&system.chain_of(i));
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);

  result.progress = system.stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Full harmonylike (fused) pipeline --------------------------------------

ScenarioResult RunHarmonyScenario(const ScenarioOptions& options,
                                  const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::runtime::SystemOverrides overrides;
  overrides.nodes = sched.num_nodes;
  overrides.block_interval = 150 * sim::kMs;
  overrides.raft_unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  auto system_ptr = systems::runtime::MakeSystemAs<systems::HarmonySystem>(
      "harmonylike", &sim, &net, &costs, overrides);
  systems::HarmonySystem& system = *system_ptr;
  std::vector<std::pair<std::string, std::string>> initial;
  for (int i = 0; i < 4; i++) {
    initial.emplace_back("acct" + std::to_string(i), "0");
    system.Load(initial.back().first, initial.back().second);
  }
  system.Start();

  // Network faults only, as for the Quorum pipeline; the hot-key RMW stream
  // forces multi-layer epoch schedules while the nemesis disturbs ordering.
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);

  uint64_t next_txn = 0;
  std::function<void()> client = [&] {
    core::TxnRequest request;
    request.txn_id = ++next_txn;
    request.client_id = 7;
    request.contract = "ycsb";
    request.ops.push_back(
        {core::OpType::kReadModifyWrite, "acct" + std::to_string(next_txn % 4),
         "v" + std::to_string(next_txn)});
    system.Submit(request, [](const core::TxnResult&) {});
    sim.Schedule(80 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);

  // Deterministic execution promises replica agreement down to the state
  // root, so this scenario runs the full ledger audit menu: per-node chain
  // verification, prefix agreement, and a write-set replay of the longest
  // chain against its headers' state digests.
  std::vector<const ledger::Chain*> chains;
  const ledger::Chain* longest = nullptr;
  for (sim::NodeId id : system.node_ids()) {
    const ledger::Chain& chain = system.chain_of(id);
    ledger_audit::AuditChain(chain, "node " + std::to_string(id),
                             &result.report);
    chains.push_back(&chain);
    if (longest == nullptr || chain.height() > longest->height()) {
      longest = &chain;
    }
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);
  if (longest != nullptr) {
    ledger_audit::CheckStateDigests(*longest, initial, &result.report);
  }
  if (system.stats().aborted != 0) {
    result.report.Add("det-aborts",
                      "deterministic execution reported " +
                          std::to_string(system.stats().aborted) +
                          " aborts on an abort-free workload");
  }

  result.progress = system.stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Overload shedding under faults ----------------------------------------

// Flash crowd at ~6x the mempool-bounded Quorum pipeline's capacity while
// the nemesis partitions the network, with the registry-applied admission
// gate (reject-newest, bound 128) in front. Invariants:
//   * exactly-once outcomes — every submitted txn resolves at most once,
//     nothing resolves that was never submitted;
//   * every gate rejection is an explicit kAdmissionReject outcome (counted
//     against the gate's own rejected_count — no silent shedding);
//   * conservation — at the horizon every admitted-but-unresolved txn is
//     still accounted for in the runtime's mempool or inflight table
//     (admitted txns are never silently dropped);
//   * the full per-node ledger-audit menu plus prefix agreement;
//   * liveness — the healed tail must commit transactions.
ScenarioResult RunOverloadShedScenario(const ScenarioOptions& options,
                                       const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::runtime::SystemOverrides overrides;
  overrides.nodes = sched.num_nodes;
  overrides.block_interval = 150 * sim::kMs;
  overrides.raft_unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  // Raft §8 no-op — without it a full admission gate livelocks the cluster
  // after leadership churn: §5.4.2 keeps the new leader from committing the
  // prior-term blocks holding every gate slot, and the gate keeps any new
  // (committable) proposal from entering. This scenario found that.
  overrides.raft_leader_noop = true;
  // Re-mint (geth-raft minter idiom): blocks whose Raft entry is lost to
  // leadership churn must return their txns to the mempool, or the orphans
  // pin every gate slot forever — the second livelock this scenario found.
  overrides.quorum_reproposal_timeout = 1 * sim::kSec;
  overrides.admission.policy =
      systems::runtime::AdmissionPolicy::kRejectNewest;
  overrides.admission.max_inflight = 128;
  // The registry wraps the concrete system in the admission gate — the same
  // wiring path the benches use.
  auto gated = systems::runtime::MakeSystem("quorum-raft", &sim, &net, &costs,
                                            overrides);
  auto* gate = static_cast<systems::runtime::AdmissionGate*>(gated.get());
  auto* quorum = static_cast<systems::QuorumSystem*>(gate->inner());
  for (int i = 0; i < 8; i++) {
    quorum->Load("acct" + std::to_string(i), "0");
  }
  gated->Start();

  // Network faults only (as for quorum_system: the pipeline exposes no
  // crash hooks — a fully partitioned node is the crash analog).
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);

  // Open-loop arrivals from the engine's private Rng: ~150 tps base with
  // two seed-placed 6x flash crowds — far above what 128 admission slots
  // over a partitioned Raft pipeline can absorb, so the gate must shed.
  workload::ArrivalConfig acfg;
  acfg.base_rate_tps = 150;
  acfg.flash_count = 2;
  acfg.flash_amplitude = 6.0;
  acfg.flash_duration = 1 * sim::kSec;
  acfg.horizon = sched.horizon * (1.0 - sched.quiet_tail);
  acfg.record_count = 8;
  acfg.zipf_theta = 0.5;
  workload::ArrivalEngine engine(acfg, options.seed * 7919 + 17);

  uint64_t submitted = 0;
  uint64_t reject_outcomes = 0;
  std::map<uint64_t, int> outcome_counts;
  const sim::Time stop_time = acfg.horizon;
  std::function<void()> pump = [&] {
    workload::Arrival arrival = engine.Next(sim.Now());
    if (arrival.time >= stop_time) return;
    sim.ScheduleAt(arrival.time, [&, arrival] {
      core::TxnRequest request;
      request.txn_id = ++submitted;
      request.client_id = 7;
      request.tenant = arrival.tenant;
      request.fee = arrival.fee;
      request.ops.push_back(
          {core::OpType::kWrite,
           "acct" + std::to_string(arrival.key_index % 8),
           "v" + std::to_string(submitted)});
      uint64_t id = request.txn_id;
      gated->Submit(request, [&, id](const core::TxnResult& txn_result) {
        outcome_counts[id]++;
        if (id == 0 || id > submitted) {
          result.report.Add("outcome-provenance",
                            "outcome for never-submitted txn " +
                                std::to_string(id));
        }
        bool is_reject =
            txn_result.reason == core::AbortReason::kAdmissionReject;
        if (is_reject) {
          reject_outcomes++;
          if (txn_result.status.ok()) {
            result.report.Add("reject-outcome",
                              "admission reject delivered with ok status "
                              "for txn " + std::to_string(id));
          }
        }
      });
      pump();
    });
  };
  pump();

  sim.RunUntil(sched.horizon);

  for (const auto& [id, count] : outcome_counts) {
    if (count > 1) {
      result.report.Add("outcome-exactly-once",
                        "txn " + std::to_string(id) + " resolved " +
                            std::to_string(count) + " times");
    }
  }
  if (reject_outcomes != gate->rejected_count()) {
    result.report.Add("reject-accounting",
                      "gate counted " +
                          std::to_string(gate->rejected_count()) +
                          " rejections but clients observed " +
                          std::to_string(reject_outcomes));
  }
  // Conservation: admitted = submitted - rejected; unresolved admitted txns
  // must all still sit in the runtime's queues — none silently dropped.
  uint64_t resolved = outcome_counts.size();
  uint64_t unresolved = submitted - resolved;
  if (unresolved != gate->gate_depth()) {
    result.report.Add("conservation",
                      std::to_string(unresolved) +
                          " unresolved txns vs gate depth " +
                          std::to_string(gate->gate_depth()));
  }
  const core::StageGauges& stages = gated->stats().stages;
  size_t queued = stages.mempool_depth + stages.inflight_depth;
  if (gate->gate_depth() != queued) {
    result.report.Add(
        "no-silent-drop",
        std::to_string(gate->gate_depth()) +
            " admitted txns outstanding but only " + std::to_string(queued) +
            " accounted in mempool+inflight (the rest vanished)");
  }

  std::vector<const ledger::Chain*> chains;
  for (uint32_t i = 0; i < sched.num_nodes; i++) {
    ledger_audit::AuditChain(quorum->chain_of(i), "node " + std::to_string(i),
                             &result.report);
    chains.push_back(&quorum->chain_of(i));
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);

  result.progress = gated->stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Transaction serializability --------------------------------------------

ScenarioResult RunTxnScenario(const ScenarioOptions& options) {
  ScenarioResult result;
  HistoryConfig config;
  struct Scheme {
    const char* name;
    HistoryResult (*run)(uint64_t, const HistoryConfig&);
  };
  const Scheme schemes[] = {{"occ", RunOccHistory},
                            {"mvcc", RunMvccHistory},
                            {"lock-table", RunLockTableHistory}};
  for (const Scheme& scheme : schemes) {
    HistoryResult history = scheme.run(options.seed, config);
    for (const std::string& error : history.errors) {
      result.report.Add("txn-progress",
                        std::string(scheme.name) + ": " + error);
    }
    std::string error;
    if (!CheckSerialEquivalence({}, history.committed, &error)) {
      result.report.Add("txn-serializability",
                        std::string(scheme.name) + ": " + error);
    }
    result.progress += history.committed.size();
  }
  result.schedule = "(no nemesis: interleavings are drawn from the seed)";
  return result;
}

// --- Cross-shard epoch fusion (harmonyshard) --------------------------------

// Raft shards plus a Raft sequencer group under partitions that sever whole
// shards mid-epoch (the generated virtual partition over {0..num_shards-1}
// is mapped onto the real shard node spans; the sequencer and the client
// ride with shard 0's side), drop bursts, and jitter spikes that lag
// individual shards' consensus. A two-key RMW stream over a small hot set
// makes a steady fraction of transactions cross-shard. Invariants:
//   * epoch atomicity + order agreement — every shard applies exactly the
//     epoch sequence the sequencer ordered (per-shard digest streams equal
//     in content and length: an epoch lands on all shards or none);
//   * zero aborts (deterministic execution, abort-free workload) and zero
//     2PC rounds (the epoch path has no prepare/decide to count);
//   * at-most-once completion per transaction;
//   * replay oracle — re-executing the applied epoch stream on a fresh
//     global state must reproduce every live shard's MPT root digest;
//   * liveness — the healed tail must commit transactions.
ScenarioResult RunShardEpochScenario(const ScenarioOptions& options,
                                     const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::HarmonyShardConfig config;
  config.num_shards = sched.num_nodes;  // one virtual nemesis node per shard
  config.nodes_per_shard = 3;
  config.sequencer_nodes = 3;
  config.record_payloads = true;  // replay oracle input
  config.raft.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  systems::HarmonyShardSystem system(&sim, &net, &costs, config);
  std::vector<std::pair<std::string, std::string>> initial;
  for (int i = 0; i < 4; i++) {
    initial.emplace_back("acct" + std::to_string(i), "0");
    system.Load(initial.back().first, initial.back().second);
  }
  system.Start();

  // The generated schedule partitions virtual nodes {0..num_shards-1}; each
  // virtual node is one whole shard's real id span, so a partition severs
  // shards from each other (and from the sequencer) without ever splitting
  // a replication group internally.
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  for (FaultAction& action : schedule.actions) {
    if (action.kind != FaultAction::Kind::kPartition) continue;
    std::vector<std::vector<sim::NodeId>> groups;
    for (const auto& group : action.groups) {
      std::vector<sim::NodeId> real;
      bool has_shard0 = false;
      for (sim::NodeId virtual_id : group) {
        uint32_t s = static_cast<uint32_t>(virtual_id);
        if (s >= system.num_shards()) continue;
        if (s == 0) has_shard0 = true;
        const auto& ids = system.shard(s).node_ids();
        real.insert(real.end(), ids.begin(), ids.end());
      }
      if (has_shard0) {
        const auto& seq = system.sequencer().node_ids();
        real.insert(real.end(), seq.begin(), seq.end());
        real.push_back(config.client_node);
      }
      groups.push_back(std::move(real));
    }
    action.groups = std::move(groups);
  }
  nemesis.Arm(schedule);

  // Two-key hot-set RMW stream: the keys hash across the shards, so a
  // steady fraction of transactions touches two shards and exercises the
  // ReadForward path. The client stops at the quiet tail so every ordered
  // epoch can settle before the final checks.
  const sim::Time stop_time =
      static_cast<sim::Time>(sched.horizon * (1.0 - sched.quiet_tail));
  uint64_t next_txn = 0;
  std::map<uint64_t, int> outcomes;
  std::function<void()> client = [&] {
    if (sim.Now() >= stop_time) return;
    core::TxnRequest request;
    request.txn_id = ++next_txn;
    request.client_id = 7;
    request.contract = "ycsb";
    request.ops.push_back(
        {core::OpType::kReadModifyWrite, "acct" + std::to_string(next_txn % 4),
         "v" + std::to_string(next_txn)});
    request.ops.push_back({core::OpType::kReadModifyWrite,
                           "acct" + std::to_string((next_txn + 1) % 4),
                           "w" + std::to_string(next_txn)});
    uint64_t id = request.txn_id;
    system.Submit(request, [&result, &outcomes, id](const core::TxnResult&) {
      if (++outcomes[id] > 1) {
        result.report.Add("exactly-once", "txn " + std::to_string(id) +
                                              " resolved more than once");
      }
    });
    sim.Schedule(80 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);

  // Epoch atomicity + order agreement: every shard's applied digest stream
  // must equal shard 0's and count exactly what the sequencer ordered.
  const uint64_t ordered = system.sequencer().epochs_cut();
  const auto& digests0 = system.shard(0).epoch_digests();
  for (uint32_t s = 0; s < system.num_shards(); s++) {
    const auto& digests = system.shard(s).epoch_digests();
    if (digests.size() != ordered) {
      result.report.Add(
          "epoch-atomicity",
          "shard " + std::to_string(s) + " applied " +
              std::to_string(digests.size()) + " epochs but the sequencer " +
              "ordered " + std::to_string(ordered));
    }
    if (s > 0 && digests != digests0) {
      result.report.Add("epoch-agreement",
                        "shard " + std::to_string(s) +
                            " epoch digest stream diverges from shard 0");
    }
  }

  if (system.stats().aborted != 0) {
    result.report.Add("det-aborts",
                      "deterministic execution reported " +
                          std::to_string(system.stats().aborted) +
                          " aborts on an abort-free workload");
  }
  if (system.sharding_stats().two_pc_rounds != 0) {
    result.report.Add("no-2pc",
                      "epoch path reported " +
                          std::to_string(system.sharding_stats().two_pc_rounds) +
                          " 2PC rounds; it must never coordinate");
  }

  // Replay oracle: re-execute shard 0's applied epoch stream serially on a
  // fresh global key-value world; rebuilding each shard's MPT from the
  // final world must reproduce every live shard's root digest (the MPT root
  // is insertion-order independent, so content equality is exact).
  {
    class WorldView : public contract::StateView {
     public:
      explicit WorldView(const std::map<std::string, std::string>* world)
          : world_(world) {}
      Status Get(const Slice& key, std::string* value) override {
        auto it = world_->find(key.ToString());
        if (it == world_->end()) return Status::NotFound();
        *value = it->second;
        return Status::Ok();
      }

     private:
      const std::map<std::string, std::string>* world_;
    };
    std::map<std::string, std::string> world(initial.begin(), initial.end());
    auto contracts = contract::ContractRegistry::CreateDefault();
    txn::DeterministicExecutor executor(contracts.get(), &costs,
                                        config.exec_lanes);
    for (const std::string& payload : system.shard(0).applied_payloads()) {
      sharding::EpochBatch batch;
      if (!sharding::EpochBatch::Deserialize(payload, &batch)) {
        result.report.Add("replay", "undecodable applied epoch payload");
        continue;
      }
      WorldView view(&world);
      txn::EpochOutcome outcome = executor.ExecuteEpoch(batch.txns, &view);
      for (const auto& txn_result : outcome.results) {
        for (const auto& [key, value] : txn_result.writes) {
          world[key] = value;
        }
      }
    }
    for (uint32_t s = 0; s < system.num_shards(); s++) {
      adt::MerklePatriciaTrie rebuilt;
      for (const auto& [key, value] : world) {
        if (system.partitioner().ShardOf(key) == s) rebuilt.Put(key, value);
      }
      if (!(rebuilt.RootDigest() == system.shard(s).StateDigest())) {
        result.report.Add(
            "state-digest",
            "shard " + std::to_string(s) +
                " live MPT root differs from the replay oracle's rebuild");
      }
    }
  }

  result.progress = system.stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

}  // namespace

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"raft_crash_restart",
       "5-node Raft under crash/restart faults (<=2 down at once)",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 5;
         sched.max_concurrent_down = 2;
         sched.allow_partition = false;
         sched.allow_drop = false;
         sched.allow_jitter = false;
         sched.horizon = 10 * sim::kSec;
         return RunRaftScenario(options, sched);
       }},
      {"raft_partition",
       "5-node Raft under the full nemesis menu: crashes, partitions, "
       "message-drop bursts, jitter spikes",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 5;
         sched.max_concurrent_down = 2;
         sched.horizon = 10 * sim::kSec;
         return RunRaftScenario(options, sched);
       }},
      {"raft_parallel",
       "5-node Raft with one simulator partition per replica, faults and "
       "client injected via global events; the same seed runs at 1 and 2 "
       "worker threads and must produce identical apply logs and event "
       "totals (conservative parallel engine determinism)",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 5;
         sched.max_concurrent_down = 2;
         sched.horizon = 5 * sim::kSec;
         return RunPartitionedRaftScenario(options, sched);
       }},
      {"pbft_crash",
       "4-node PBFT (f=1) under crash/restart, loss bursts and jitter",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.max_concurrent_down = 1;
         sched.allow_partition = false;
         sched.max_drop_rate = 0.2;
         sched.horizon = 8 * sim::kSec;
         return RunBftScenario(options, sched, {});
       }},
      {"pbft_byzantine",
       "7-node PBFT (f=2) with an equivocating replica 0, plus one "
       "crash/restart budget and loss bursts",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 7;
         sched.max_concurrent_down = 1;
         sched.allow_partition = false;
         sched.max_drop_rate = 0.2;
         sched.horizon = 8 * sim::kSec;
         return RunBftScenario(options, sched, {0});
       }},
      {"ledger_pipeline",
       "3-node Raft apply stream sealed into per-node hash-linked blocks "
       "over MPT state; chains audited block by block",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 3;
         sched.max_concurrent_down = 1;
         sched.allow_partition = false;
         sched.allow_drop = false;
         sched.allow_jitter = false;
         sched.horizon = 8 * sim::kSec;
         return RunLedgerPipelineScenario(options, sched);
       }},
      {"quorum_system",
       "full Quorum (order-execute blockchain on Raft) under partitions, "
       "loss bursts and jitter; per-node ledgers audited",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.allow_crash = false;
         sched.max_drop_rate = 0.3;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunQuorumScenario(options, sched);
       }},
      {"harmony_system",
       "fused order-then-deterministic-execute pipeline (harmonylike) under "
       "partitions, loss bursts and jitter; chains, prefix agreement and "
       "state-digest replay audited",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.allow_crash = false;
         sched.max_drop_rate = 0.3;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunHarmonyScenario(options, sched);
       }},
      {"txn_serializability",
       "random OCC / MVCC / lock-table histories checked against a serial "
       "oracle (final state certified by an audit txn)",
       [](const ScenarioOptions& options) { return RunTxnScenario(options); }},
      {"overload_shed",
       "flash crowd far past Quorum's capacity with a reject-newest admission "
       "gate under partitions; exactly-once outcomes, reject accounting, "
       "no-silent-drop conservation and ledger audits checked",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.allow_crash = false;
         // Partitions + jitter only: iid message loss would break the
         // strict conservation check (the Quorum client path has no
         // retransmit, so a dropped submit or completion legitimately
         // vanishes). Partitions never cut the client links — the client
         // node is outside every replica group — so conservation stays
         // exact while consensus is still stressed.
         sched.allow_drop = false;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunOverloadShedScenario(options, sched);
       }},
      {"shard_epoch",
       "harmonyshard (global sequencer + 3 Raft shards) under partitions "
       "that sever whole shards mid-epoch, drop bursts and jitter; epoch "
       "atomicity, digest agreement, zero 2PC rounds, at-most-once "
       "completions and a global replay oracle checked",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 3;  // virtual nodes = shards
         sched.allow_crash = false;
         sched.max_drop_rate = 0.3;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunShardEpochScenario(options, sched);
       }},
  };
  return kScenarios;
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& scenario : AllScenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

ScenarioResult RunScenario(const Scenario& scenario,
                           const ScenarioOptions& options) {
  // Scenarios construct their simulators internally, so tracing rides in on
  // the process-default sink (serial replay contexts only — see the
  // trace_path doc comment).
  obs::TraceSink sink;
  if (!options.trace_path.empty()) {
    sim::Simulator::SetDefaultTraceSink(&sink);
  }
  ScenarioResult result = scenario.run(options);
  if (!options.trace_path.empty()) {
    sim::Simulator::SetDefaultTraceSink(nullptr);
    obs::WriteChromeTrace(sink, options.trace_path);
  }
  result.scenario = scenario.name;
  result.seed = options.seed;
  result.bug = options.bug;
  return result;
}

}  // namespace dicho::testing
