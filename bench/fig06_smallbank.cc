// Reproduces Fig. 6: Smallbank OLTP throughput under a skewed workload
// (Zipfian theta = 1 account selection, 1M accounts in the paper; scaled
// population here).
//
// Paper shape: the blockchain-database gap nearly closes — Fabric 835,
// Quorum 655, TiDB 1031 tps. Skew + constraints hurt Fabric and TiDB;
// Quorum *improves* vs its 1 KB YCSB number because Smallbank records are
// tiny (Section 5.1.2).

#include "bench_util.h"

namespace dicho::bench {
namespace {

constexpr uint64_t kAccounts = 20000;

template <typename System>
workload::RunMetrics RunSmallbank(World* w, System* system,
                                  double arrival_rate = 0) {
  workload::SmallbankConfig scfg;
  scfg.num_accounts = kAccounts;
  scfg.theta = 1.0;
  workload::SmallbankWorkload workload(scfg, 7);
  LoadSmallbank(system, &workload, kAccounts);
  workload::DriverConfig dcfg;
  dcfg.num_clients = 256;
  dcfg.arrival_rate_tps = arrival_rate;
  dcfg.warmup = 3 * sim::kSec;
  dcfg.measure = 12 * sim::kSec;
  workload::Driver driver(&w->sim, system,
                          [&workload] { return workload.NextTxn(); }, dcfg);
  return driver.Run();
}

void Run() {
  PrintHeader("Fig 6: Smallbank throughput, skewed (theta=1)");
  printf("%-8s %10s %10s\n", "system", "tps", "abort");
  {
    World w;
    auto tidb = MakeTidb(&w, 5, 5);
    auto m = RunSmallbank(&w, tidb.get());
    printf("%-8s %8.0f %8.1f%%\n", "tidb", m.throughput_tps,
           m.AbortRate() * 100);
  }
  {
    World w;
    auto fabric = MakeFabric(&w, 5);
    auto m = RunSmallbank(&w, fabric.get(), /*arrival=*/1300);
    printf("%-8s %8.0f %8.1f%%\n", "fabric", m.throughput_tps,
           m.AbortRate() * 100);
  }
  {
    World w;
    auto quorum = MakeQuorum(&w, 5);
    auto m = RunSmallbank(&w, quorum.get(), /*arrival=*/1200);
    printf("%-8s %8.0f %8.1f%%\n", "quorum", m.throughput_tps,
           m.AbortRate() * 100);
  }
  printf("(etcd omitted: no general transaction support — paper 5.1.2)\n");
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
