#ifndef DICHO_LIFECYCLE_METRICS_H_
#define DICHO_LIFECYCLE_METRICS_H_

#include <string>

#include "lifecycle/catchup.h"
#include "obs/metrics.h"

namespace dicho::lifecycle {

/// Lifecycle observability bundle. All pointers are null when no registry
/// is attached (the default), so instrumented code guards with `if`.
struct LifecycleMetrics {
  obs::Counter* snapshot_bytes = nullptr;     // new chunk bytes stored
  obs::Counter* snapshot_chunks = nullptr;    // chunks written (post-dedup)
  obs::Counter* snapshots_taken = nullptr;
  obs::Counter* catchup_bytes = nullptr;      // wire bytes of transfers
  obs::Counter* catchup_chunks_reused = nullptr;  // delta-sync savings
  obs::Counter* catchups_completed = nullptr;
  obs::Counter* catchups_failed = nullptr;
  obs::Counter* config_changes = nullptr;     // committed membership changes

  static LifecycleMetrics For(obs::MetricsRegistry* reg,
                              const std::string& prefix) {
    LifecycleMetrics m;
    if (reg == nullptr) return m;
    m.snapshot_bytes = reg->GetCounter(prefix + ".snapshot.bytes");
    m.snapshot_chunks = reg->GetCounter(prefix + ".snapshot.chunks");
    m.snapshots_taken = reg->GetCounter(prefix + ".snapshot.taken");
    m.catchup_bytes = reg->GetCounter(prefix + ".catchup.bytes");
    m.catchup_chunks_reused = reg->GetCounter(prefix + ".catchup.chunks_reused");
    m.catchups_completed = reg->GetCounter(prefix + ".catchup.completed");
    m.catchups_failed = reg->GetCounter(prefix + ".catchup.failed");
    m.config_changes = reg->GetCounter(prefix + ".config.changes");
    return m;
  }

  void RecordTransfer(const CatchupStats& stats, bool ok) {
    if (catchup_bytes) catchup_bytes->Inc(stats.TotalBytes());
    if (catchup_chunks_reused) catchup_chunks_reused->Inc(stats.chunks_reused);
    if (ok && catchups_completed) catchups_completed->Inc();
    if (!ok && catchups_failed) catchups_failed->Inc();
  }
};

}  // namespace dicho::lifecycle

#endif  // DICHO_LIFECYCLE_METRICS_H_
