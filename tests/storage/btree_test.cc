#include "storage/btree/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "storage/memkv.h"

namespace dicho::storage::btree {
namespace {

TEST(BTreeTest, PutGet) {
  BTree tree;
  ASSERT_TRUE(tree.Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(tree.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_TRUE(tree.Get("missing", &value).IsNotFound());
}

TEST(BTreeTest, Overwrite) {
  BTree tree;
  ASSERT_TRUE(tree.Put("k", "v1").ok());
  ASSERT_TRUE(tree.Put("k", "v2").ok());
  std::string value;
  ASSERT_TRUE(tree.Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DeleteRemoves) {
  BTree tree;
  ASSERT_TRUE(tree.Put("k", "v").ok());
  ASSERT_TRUE(tree.Delete("k").ok());
  std::string value;
  EXPECT_TRUE(tree.Get("k", &value).IsNotFound());
  EXPECT_TRUE(tree.Delete("k").IsNotFound());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree tree(/*order=*/4);
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    ASSERT_TRUE(tree.Put(buf, "v").ok());
  }
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    std::string value;
    ASSERT_TRUE(tree.Get(buf, &value).ok()) << buf;
  }
}

TEST(BTreeTest, IteratorSortedScan) {
  BTree tree(/*order=*/8);
  std::map<std::string, std::string> model;
  Rng rng(11);
  for (int i = 0; i < 1000; i++) {
    std::string key = rng.Bytes(1 + rng.Uniform(12));
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(tree.Put(key, model[key]).ok());
  }
  auto it = tree.NewIterator();
  auto expect = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(it->key(), Slice(expect->first));
    EXPECT_EQ(it->value(), Slice(expect->second));
  }
  EXPECT_EQ(expect, model.end());
}

TEST(BTreeTest, SeekLowerBound) {
  BTree tree(/*order=*/4);
  for (int i = 0; i < 100; i += 10) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    ASSERT_TRUE(tree.Put(buf, "v").ok());
  }
  auto it = tree.NewIterator();
  it->Seek("key025");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), Slice("key030"));
  it->Seek("key090");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), Slice("key090"));
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST(BTreeTest, WriteBatch) {
  BTree tree;
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(tree.Write(batch).ok());
  std::string value;
  EXPECT_TRUE(tree.Get("a", &value).IsNotFound());
  ASSERT_TRUE(tree.Get("b", &value).ok());
}

TEST(BTreeTest, ApproximateSizeTracksBytes) {
  BTree tree;
  ASSERT_TRUE(tree.Put("abc", "0123456789").ok());
  EXPECT_EQ(tree.ApproximateSize(), 13u);
  ASSERT_TRUE(tree.Put("abc", "01234").ok());
  EXPECT_EQ(tree.ApproximateSize(), 8u);
  ASSERT_TRUE(tree.Delete("abc").ok());
  EXPECT_EQ(tree.ApproximateSize(), 0u);
}

// Differential fuzz across node orders: B+-tree vs std::map oracle, with
// invariants checked along the way.
class BTreeFuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(BTreeFuzzSweep, MatchesOracle) {
  BTree tree(GetParam());
  std::map<std::string, std::string> model;
  Rng rng(GetParam() * 7919);
  for (int i = 0; i < 5000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(600));
    double dice = rng.NextDouble();
    if (dice < 0.6) {
      std::string value = rng.Bytes(1 + rng.Uniform(30));
      model[key] = value;
      ASSERT_TRUE(tree.Put(key, value).ok());
    } else if (dice < 0.85) {
      bool existed = model.erase(key) > 0;
      Status s = tree.Delete(key);
      EXPECT_EQ(s.ok(), existed);
    } else {
      std::string got;
      Status s = tree.Get(key, &got);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(got, it->second);
      }
    }
    if (i % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), model.size());
  auto it = tree.NewIterator();
  auto expect = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(it->key(), Slice(expect->first));
  }
  EXPECT_EQ(expect, model.end());
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreeFuzzSweep,
                         ::testing::Values(4, 8, 16, 64, 128));

TEST(MemKvTest, BasicOperations) {
  storage::MemKv kv;
  ASSERT_TRUE(kv.Put("a", "1").ok());
  std::string value;
  ASSERT_TRUE(kv.Get("a", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(kv.Delete("a").ok());
  EXPECT_TRUE(kv.Get("a", &value).IsNotFound());
  EXPECT_EQ(kv.ApproximateSize(), 0u);
}

}  // namespace
}  // namespace dicho::storage::btree
