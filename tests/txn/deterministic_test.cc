#include "txn/deterministic.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "testing/serializability.h"

namespace dicho::txn {
namespace {

// ---------------------------------------------------------------------------
// Conflict-layer scheduling
// ---------------------------------------------------------------------------

TEST(BuildScheduleTest, DisjointKeySetsFormOneLayer) {
  EpochSchedule s = BuildSchedule({{"a"}, {"b"}, {"c"}, {"d"}});
  EXPECT_EQ(s.num_layers, 1u);
  EXPECT_EQ(s.conflict_edges, 0u);
  for (const auto& t : s.txns) EXPECT_EQ(t.layer, 0u);
}

TEST(BuildScheduleTest, HotKeyChainLayersSequentially) {
  // Every transaction touches "hot": the schedule is forced serial, and the
  // layer count equals the chain depth — the quantity that bounds epoch
  // makespan under skew.
  EpochSchedule s = BuildSchedule({{"hot"}, {"hot"}, {"hot"}, {"hot"}});
  EXPECT_EQ(s.num_layers, 4u);
  EXPECT_EQ(s.conflict_edges, 3u);
  for (size_t i = 0; i < s.txns.size(); i++) {
    EXPECT_EQ(s.txns[i].layer, i);
  }
}

TEST(BuildScheduleTest, LayerIsOnePastLatestConflictingPredecessor) {
  // t0{a} t1{b} t2{a,b} t3{c} t4{c,a}: t2 conflicts with both t0 and t1
  // (layer 1); t3 free (layer 0); t4 conflicts with t3 and t2 -> layer 2.
  EpochSchedule s = BuildSchedule({{"a"}, {"b"}, {"a", "b"}, {"c"},
                                   {"c", "a"}});
  ASSERT_EQ(s.txns.size(), 5u);
  EXPECT_EQ(s.txns[0].layer, 0u);
  EXPECT_EQ(s.txns[1].layer, 0u);
  EXPECT_EQ(s.txns[2].layer, 1u);
  EXPECT_EQ(s.txns[3].layer, 0u);
  EXPECT_EQ(s.txns[4].layer, 2u);
  EXPECT_EQ(s.num_layers, 3u);
}

TEST(ScheduledMakespanTest, ConflictFreeEpochDividesAcrossLanes) {
  EpochSchedule s = BuildSchedule({{"a"}, {"b"}, {"c"}, {"d"}});
  std::vector<sim::Time> costs(4, 100.0);
  EXPECT_DOUBLE_EQ(ScheduledMakespan(&s, costs, 4), 100.0);
  EXPECT_DOUBLE_EQ(ScheduledMakespan(&s, costs, 2), 200.0);
  EXPECT_DOUBLE_EQ(ScheduledMakespan(&s, costs, 1), 400.0);
}

TEST(ScheduledMakespanTest, SerialChainIgnoresLaneCount) {
  EpochSchedule s = BuildSchedule({{"hot"}, {"hot"}, {"hot"}});
  std::vector<sim::Time> costs(3, 100.0);
  EXPECT_DOUBLE_EQ(ScheduledMakespan(&s, costs, 8), 300.0);
}

TEST(ScheduledMakespanTest, LaneAssignmentIsDeterministic) {
  auto keys = std::vector<std::vector<std::string>>{
      {"a"}, {"b"}, {"c"}, {"d"}, {"e"}};
  std::vector<sim::Time> costs = {50, 10, 40, 10, 30};
  EpochSchedule s1 = BuildSchedule(keys);
  EpochSchedule s2 = BuildSchedule(keys);
  sim::Time m1 = ScheduledMakespan(&s1, costs, 2);
  sim::Time m2 = ScheduledMakespan(&s2, costs, 2);
  EXPECT_DOUBLE_EQ(m1, m2);
  for (size_t i = 0; i < s1.txns.size(); i++) {
    EXPECT_EQ(s1.txns[i].lane, s2.txns[i].lane) << i;
  }
}

// ---------------------------------------------------------------------------
// Epoch execution vs the serial oracle
// ---------------------------------------------------------------------------

/// StateView over a plain map (the test's committed state).
class MapView : public contract::StateView {
 public:
  explicit MapView(const std::map<std::string, std::string>* state)
      : state_(state) {}
  Status Get(const Slice& key, std::string* value) override {
    auto it = state_->find(std::string(key.data(), key.size()));
    if (it == state_->end()) return Status::NotFound("missing");
    *value = it->second;
    return Status::Ok();
  }

 private:
  const std::map<std::string, std::string>* state_;
};

core::TxnRequest RmwTxn(uint64_t id, std::vector<std::string> keys) {
  core::TxnRequest req;
  req.txn_id = id;
  req.client_id = id;
  req.contract = "ycsb";
  for (auto& key : keys) {
    req.ops.push_back({core::OpType::kReadModifyWrite, std::move(key),
                       "w" + std::to_string(id)});
  }
  return req;
}

/// Randomized conflict patterns: epoch execution must be serial-equivalent
/// in epoch order, certified by the same oracle the txn-layer tests use.
TEST(DeterministicExecutorTest, EpochOutputEqualsSerialOracle) {
  auto contracts = contract::ContractRegistry::CreateDefault();
  sim::CostModel costs;
  DeterministicExecutor executor(contracts.get(), &costs, 4);

  for (uint64_t seed = 1; seed <= 20; seed++) {
    Rng rng(seed);
    std::map<std::string, std::string> initial;
    const uint32_t num_keys = 1 + static_cast<uint32_t>(rng.Uniform(8));
    for (uint32_t k = 0; k < num_keys; k++) {
      initial["key" + std::to_string(k)] = "init" + std::to_string(k);
    }
    std::vector<core::TxnRequest> batch;
    const uint32_t num_txns = 16 + static_cast<uint32_t>(rng.Uniform(32));
    for (uint64_t i = 0; i < num_txns; i++) {
      std::vector<std::string> keys;
      uint32_t ops = 1 + static_cast<uint32_t>(rng.Uniform(3));
      for (uint32_t o = 0; o < ops; o++) {
        keys.push_back("key" + std::to_string(rng.Uniform(num_keys)));
      }
      batch.push_back(RmwTxn(i + 1, std::move(keys)));
    }

    MapView view(&initial);
    EpochOutcome outcome = executor.ExecuteEpoch(batch, &view);
    ASSERT_EQ(outcome.results.size(), batch.size());
    EXPECT_EQ(outcome.constraint_aborts, 0u) << "seed " << seed;

    std::vector<testing::RecordedTxn> recorded;
    for (size_t i = 0; i < batch.size(); i++) {
      testing::RecordedTxn txn;
      txn.id = batch[i].txn_id;
      txn.serial_order = i;
      for (const auto& [key, value] : outcome.results[i].reads) {
        txn.reads.emplace_back(key, value);
      }
      txn.writes = outcome.results[i].writes;
      recorded.push_back(std::move(txn));
    }
    std::string error;
    // The oracle reads missing keys as "", so seed every key it will see.
    EXPECT_TRUE(testing::CheckSerialEquivalence(initial, recorded, &error))
        << "seed " << seed << ": " << error;
  }
}

TEST(DeterministicExecutorTest, ReExecutionIsBitIdentical) {
  auto contracts = contract::ContractRegistry::CreateDefault();
  sim::CostModel costs;
  DeterministicExecutor executor(contracts.get(), &costs, 4);

  std::map<std::string, std::string> initial = {{"a", "1"}, {"b", "2"}};
  std::vector<core::TxnRequest> batch = {
      RmwTxn(1, {"a"}), RmwTxn(2, {"b", "a"}), RmwTxn(3, {"a"}),
      RmwTxn(4, {"b"})};
  MapView v1(&initial);
  MapView v2(&initial);
  EpochOutcome o1 = executor.ExecuteEpoch(batch, &v1);
  EpochOutcome o2 = executor.ExecuteEpoch(batch, &v2);
  ASSERT_EQ(o1.results.size(), o2.results.size());
  for (size_t i = 0; i < o1.results.size(); i++) {
    EXPECT_EQ(o1.results[i].writes, o2.results[i].writes) << i;
    EXPECT_EQ(o1.results[i].reads, o2.results[i].reads) << i;
  }
  EXPECT_DOUBLE_EQ(o1.makespan_us, o2.makespan_us);
  EXPECT_DOUBLE_EQ(o1.serial_us, o2.serial_us);
}

TEST(DeterministicExecutorTest, LaterTxnsSeeEarlierWritesInEpoch) {
  auto contracts = contract::ContractRegistry::CreateDefault();
  sim::CostModel costs;
  DeterministicExecutor executor(contracts.get(), &costs, 2);

  std::map<std::string, std::string> initial = {{"k", "orig"}};
  std::vector<core::TxnRequest> batch = {RmwTxn(1, {"k"}), RmwTxn(2, {"k"})};
  MapView view(&initial);
  EpochOutcome outcome = executor.ExecuteEpoch(batch, &view);
  ASSERT_EQ(outcome.results.size(), 2u);
  // Txn 2's RMW read must observe txn 1's write, not the initial value.
  ASSERT_EQ(outcome.results[1].reads.count("k"), 1u);
  EXPECT_EQ(outcome.results[1].reads.at("k"), "w1");
  EXPECT_EQ(outcome.schedule.num_layers, 2u);
}

TEST(DeterministicExecutorTest, ConstraintAbortsAreDeterministicNotConcurrency) {
  auto contracts = contract::ContractRegistry::CreateDefault();
  sim::CostModel costs;
  DeterministicExecutor executor(contracts.get(), &costs, 4);

  // Smallbank send_payment with insufficient funds: an application-level
  // abort. It must be flagged invalid with no writes, and a re-run must
  // reproduce it exactly (the replica-agreement requirement).
  std::map<std::string, std::string> initial = {
      {contract::SmallbankContract::CheckingKey("alice"), "10"},
      {contract::SmallbankContract::SavingsKey("alice"), "0"},
      {contract::SmallbankContract::CheckingKey("bob"), "50"},
      {contract::SmallbankContract::SavingsKey("bob"), "0"},
  };
  core::TxnRequest payment;
  payment.txn_id = 1;
  payment.client_id = 1;
  payment.contract = "smallbank";
  payment.method = "send_payment";
  payment.args = {"alice", "bob", "5000"};

  MapView view(&initial);
  EpochOutcome outcome = executor.ExecuteEpoch({payment}, &view);
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_FALSE(outcome.results[0].valid);
  EXPECT_TRUE(outcome.results[0].writes.empty());
  EXPECT_EQ(outcome.constraint_aborts, 1u);

  MapView view2(&initial);
  EpochOutcome replay = executor.ExecuteEpoch({payment}, &view2);
  EXPECT_EQ(replay.constraint_aborts, 1u);
}

TEST(DeterministicExecutorTest, MakespanNeverExceedsSerialWork) {
  auto contracts = contract::ContractRegistry::CreateDefault();
  sim::CostModel costs;
  DeterministicExecutor parallel4(contracts.get(), &costs, 4);
  DeterministicExecutor serial1(contracts.get(), &costs, 1);

  Rng rng(99);
  std::map<std::string, std::string> initial;
  for (int k = 0; k < 16; k++) {
    initial["k" + std::to_string(k)] = "v";
  }
  std::vector<core::TxnRequest> batch;
  for (uint64_t i = 0; i < 64; i++) {
    batch.push_back(RmwTxn(i + 1, {"k" + std::to_string(rng.Uniform(16))}));
  }
  MapView v1(&initial);
  MapView v2(&initial);
  EpochOutcome o4 = parallel4.ExecuteEpoch(batch, &v1);
  EpochOutcome o1 = serial1.ExecuteEpoch(batch, &v2);
  EXPECT_LE(o4.makespan_us, o4.serial_us);
  EXPECT_DOUBLE_EQ(o1.makespan_us, o1.serial_us);
  // Lanes must not change the state outcome.
  for (size_t i = 0; i < o4.results.size(); i++) {
    EXPECT_EQ(o4.results[i].writes, o1.results[i].writes) << i;
  }
}

}  // namespace
}  // namespace dicho::txn
