#include "workload/driver.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dicho::workload {

const Histogram& RunMetrics::phase_us(const std::string& name) const {
  core::Phase phase;
  if (core::ParsePhaseName(name, &phase)) return phase_hist[static_cast<size_t>(phase)];
  static const Histogram kEmpty;
  return kEmpty;
}

std::string RunMetrics::Summary() {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "tps=%.0f qps=%.0f abort=%.1f%% p50=%.1fms p99=%.1fms",
           throughput_tps, query_throughput_tps, AbortRate() * 100,
           txn_latency_us.Percentile(50) / 1000.0,
           txn_latency_us.Percentile(99) / 1000.0);
  return buf;
}

Driver::Driver(sim::Simulator* sim, core::TransactionalSystem* system,
               TxnGen txn_gen, ReadGen read_gen, DriverConfig config)
    : sim_(sim),
      system_(system),
      txn_gen_(std::move(txn_gen)),
      read_gen_(std::move(read_gen)),
      config_(config) {}

RunMetrics Driver::Run() {
  metrics_ = RunMetrics{};
  window_start_ = sim_->Now() + config_.warmup;
  window_end_ = window_start_ + config_.measure;
  stopping_ = false;
  if (obs::TraceSink* sink = sim_->trace_sink()) {
    sink->NoteWindow(window_start_, window_end_);
  }
  if (obs::MetricsRegistry* registry = sim_->metrics()) {
    txn_latency_ll_ = registry->GetHistogram("driver.txn_latency_us");
  }

  if (config_.arrival != nullptr) {
    ScheduleEngineArrival();
  } else if (config_.arrival_rate_tps > 0) {
    ScheduleArrival();
  } else {
    for (size_t c = 0; c < config_.num_clients; c++) {
      // Stagger initial submissions to avoid a synchronized burst.
      sim_->Schedule(static_cast<Time>(c) * 97.0,
                     [this, c] { Dispatch(c); });
    }
  }
  // Run to a bit past the window so in-flight completions are observed.
  sim_->RunUntil(window_end_ + 5 * sim::kSec);
  stopping_ = true;

  // Goodput: committed transactions only; aborts are reported separately
  // (the paper plots throughput and abort rate side by side).
  metrics_.throughput_tps =
      static_cast<double>(metrics_.committed) / (config_.measure / sim::kSec);
  metrics_.query_throughput_tps =
      static_cast<double>(metrics_.query_latency_us.count()) /
      (config_.measure / sim::kSec);
  return metrics_;
}

void Driver::ScheduleArrival() {
  if (sim_->Now() >= window_end_) return;
  Time gap = sim_->rng()->Exponential(sim::kSec / config_.arrival_rate_tps);
  sim_->Schedule(gap, [this] {
    Dispatch(0);
    ScheduleArrival();
  });
}

void Driver::ScheduleEngineArrival() {
  // The engine's Rng is private to it (never the simulator's partition
  // streams), so the timestamped plan — and therefore the whole run — is
  // byte-identical across DICHO_SIM_THREADS settings.
  Arrival arrival = config_.arrival->Next(sim_->Now());
  if (arrival.time >= window_end_) return;
  sim_->ScheduleAt(arrival.time, [this, arrival] {
    DispatchArrival(arrival);
    ScheduleEngineArrival();
  });
}

void Driver::DispatchArrival(const Arrival& arrival) {
  if (InWindow(sim_->Now())) metrics_.offered++;
  system_->Submit(config_.arrival_txn(arrival),
                  [this](const core::TxnResult& r) { OnTxnDone(0, r); });
}

void Driver::Dispatch(size_t client) {
  if (sim_->Now() >= window_end_) return;
  bool query = read_gen_ != nullptr &&
               sim_->rng()->NextDouble() < config_.query_fraction;
  if (query) {
    system_->Query(read_gen_(), [this, client](const core::ReadResult& r) {
      OnReadDone(client, r);
    });
  } else {
    system_->Submit(txn_gen_(), [this, client](const core::TxnResult& r) {
      OnTxnDone(client, r);
    });
  }
}

void Driver::OnTxnDone(size_t client, const core::TxnResult& result) {
  if (obs::TraceSink* sink = sim_->trace_sink()) sink->RecordTxn(result);
  bool shed = result.reason == core::AbortReason::kAdmissionReject;
  if (InWindow(result.finish_time)) {
    if (shed) {
      // A gate rejection is neither goodput nor a conflict abort; its
      // ~zero latency would also skew the latency tail.
      metrics_.rejected++;
    } else if (result.status.ok()) {
      metrics_.committed++;
    } else {
      metrics_.aborted++;
      metrics_.aborts_by_reason[result.reason]++;
    }
    if (!shed) {
      metrics_.txn_latency_us.Add(result.latency());
      if (txn_latency_ll_ != nullptr) txn_latency_ll_->Add(result.latency());
      result.phases.ForEach([this](core::Phase phase, sim::Time t) {
        metrics_.phase(phase).Add(t);
      });
    }
  }
  // Closed-loop clients re-issue after every outcome (including a shed —
  // the client retries); open-loop modes never re-issue.
  if (config_.arrival_rate_tps == 0 && config_.arrival == nullptr &&
      !stopping_) {
    IssueNext(client);
  }
}

void Driver::OnReadDone(size_t client, const core::ReadResult& result) {
  if (obs::TraceSink* sink = sim_->trace_sink()) sink->RecordQuery(result);
  if (InWindow(result.finish_time)) {
    metrics_.query_latency_us.Add(result.latency());
    result.phases.ForEach(
        [this](core::Phase phase, sim::Time t) { metrics_.phase(phase).Add(t); });
  }
  if (config_.arrival_rate_tps == 0 && !stopping_) IssueNext(client);
}

void Driver::IssueNext(size_t client) {
  // Break any synchronous completion->resubmit cycle (a system that rejects
  // requests inline would otherwise recurse through the client loop).
  sim_->Schedule(0, [this, client] { Dispatch(client); });
}

}  // namespace dicho::workload
