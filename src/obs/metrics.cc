#include "obs/metrics.h"

#include <cstdio>

namespace dicho::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  ForEachCounter([&](const std::string& name, const Counter& c) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    char buf[32];
    snprintf(buf, sizeof(buf), "\": %llu",
             static_cast<unsigned long long>(c.value()));
    out += buf;
  });
  out += "\n  },\n  \"gauges\": {";
  first = true;
  ForEachGauge([&](const std::string& name, const Gauge& g) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    out += "\": ";
    AppendDouble(&out, g.value());
  });
  out += "\n  },\n  \"histograms\": {";
  first = true;
  ForEachHistogram([&](const std::string& name, const LogLinearHistogram& h) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    char buf[32];
    snprintf(buf, sizeof(buf), "\": {\"count\": %llu",
             static_cast<unsigned long long>(h.count()));
    out += buf;
    out += ", \"mean\": ";
    AppendDouble(&out, h.Mean());
    out += ", \"p50\": ";
    AppendDouble(&out, h.Percentile(50));
    out += ", \"p95\": ";
    AppendDouble(&out, h.Percentile(95));
    out += ", \"p99\": ";
    AppendDouble(&out, h.Percentile(99));
    out += ", \"max\": ";
    AppendDouble(&out, h.Max());
    out += "}";
  });
  out += "\n  }\n}\n";
  return out;
}

bool WriteMetricsJson(const MetricsRegistry& registry,
                      const std::string& path) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = registry.ToJson();
  const size_t written = fwrite(json.data(), 1, json.size(), f);
  fclose(f);
  return written == json.size();
}

}  // namespace dicho::obs
