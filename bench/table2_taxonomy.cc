// Reproduces Table 2: the taxonomy of transactional systems along the four
// design dimensions, generated from the machine-readable descriptors the
// fusion framework uses.

#include <cstdio>

#include "hybrid/taxonomy.h"

int main() {
  printf("\n=== Table 2: systems in the four-dimensional design space ===\n");
  printf("%s", dicho::hybrid::RenderTaxonomyTable(
                   dicho::hybrid::Table2Systems())
                   .c_str());
  return 0;
}
