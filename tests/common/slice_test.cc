#include "common/slice.h"

#include <gtest/gtest.h>

namespace dicho {
namespace {

TEST(SliceTest, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SliceTest, FromString) {
  std::string str = "abc";
  Slice s(str);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s.ToString(), "abc");
}

TEST(SliceTest, CompareOrdersBytewise) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  // Prefix orders before extension.
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("ab") < Slice("abc"));
}

TEST(SliceTest, EqualityIncludesLength) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("ab"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("hello");
  s.RemovePrefix(2);
  EXPECT_EQ(s, Slice("llo"));
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("hello").StartsWith("he"));
  EXPECT_TRUE(Slice("hello").StartsWith(""));
  EXPECT_FALSE(Slice("hello").StartsWith("hex"));
  EXPECT_FALSE(Slice("he").StartsWith("hello"));
}

TEST(SliceTest, EmbeddedNulBytesCompareCorrectly) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).Compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

}  // namespace
}  // namespace dicho
