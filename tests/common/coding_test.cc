#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dicho {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  PutFixed32(&s, 0);
  PutFixed32(&s, 1);
  PutFixed32(&s, 0xDEADBEEF);
  PutFixed32(&s, UINT32_MAX);
  Slice in(s);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xDEADBEEF);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  PutFixed64(&s, 0x0123456789ABCDEFull);
  Slice in(s);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFull);
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  std::string s;
  PutFixed32(&s, 0x04030201);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 2);
  EXPECT_EQ(s[2], 3);
  EXPECT_EQ(s[3], 4);
}

TEST(CodingTest, VarintBoundaries) {
  std::string s;
  for (int shift = 0; shift < 64; shift += 7) {
    PutVarint64(&s, (1ull << shift) - 1);
    PutVarint64(&s, 1ull << shift);
  }
  PutVarint64(&s, UINT64_MAX);
  Slice in(s);
  uint64_t v;
  for (int shift = 0; shift < 64; shift += 7) {
    ASSERT_TRUE(GetVarint64(&in, &v));
    EXPECT_EQ(v, (1ull << shift) - 1);
    ASSERT_TRUE(GetVarint64(&in, &v));
    EXPECT_EQ(v, 1ull << shift);
  }
  ASSERT_TRUE(GetVarint64(&in, &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  Rng rng(7);
  for (int i = 0; i < 200; i++) {
    uint64_t v = rng.Next() >> rng.Uniform(64);
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v)) << v;
  }
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string s;
  PutVarint64(&s, 1ull << 40);
  Slice in(s.data(), s.size() - 1);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string s;
  PutVarint64(&s, 1ull << 40);
  Slice in(s);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  PutLengthPrefixed(&s, std::string(300, 'x'));
  Slice in(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_EQ(out, Slice("hello"));
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_EQ(out.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedFails) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  Slice in(s.data(), s.size() - 2);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(CodingTest, RandomRoundTripProperty) {
  Rng rng(99);
  for (int iter = 0; iter < 100; iter++) {
    std::vector<uint64_t> values;
    std::string buf;
    int n = 1 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < n; i++) {
      uint64_t v = rng.Next() >> rng.Uniform(64);
      values.push_back(v);
      PutVarint64(&buf, v);
    }
    Slice in(buf);
    for (uint64_t expected : values) {
      uint64_t got;
      ASSERT_TRUE(GetVarint64(&in, &got));
      EXPECT_EQ(got, expected);
    }
    EXPECT_TRUE(in.empty());
  }
}

}  // namespace
}  // namespace dicho
