#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/types.h"
#include "lifecycle/catchup.h"
#include "lifecycle/membership.h"
#include "lifecycle/snapshot.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dicho::lifecycle {
namespace {

std::map<std::string, std::string> SampleState(size_t keys) {
  std::map<std::string, std::string> state;
  for (size_t i = 0; i < keys; i++) {
    state["key" + std::to_string(i)] = "value" + std::to_string(i);
  }
  return state;
}

// ---------------------------------------------------------------------------
// Chunk store + snapshot dedup
// ---------------------------------------------------------------------------

TEST(ChunkStoreTest, DedupsIdenticalChunks) {
  ChunkStore store;
  crypto::Digest d = crypto::Sha256Of("payload");
  EXPECT_TRUE(store.Put(d, "payload"));
  EXPECT_FALSE(store.Put(d, "payload"));
  EXPECT_EQ(store.chunk_count(), 1u);
  EXPECT_EQ(store.dedup_hits(), 1u);
  EXPECT_EQ(store.bytes_stored(), 7u);
  ASSERT_NE(store.Get(d), nullptr);
  EXPECT_EQ(*store.Get(d), "payload");
}

TEST(SnapshotTest, RoundTripsState) {
  ChunkStore store;
  SnapshotConfig config;
  auto state = SampleState(100);
  SnapshotManifest m = BuildSnapshot(state, 17, config, &store);
  EXPECT_EQ(m.anchor, 17u);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.root, ManifestRoot(m));
  std::map<std::string, std::string> restored;
  ASSERT_TRUE(RestoreSnapshot(m, store, &restored));
  EXPECT_EQ(restored, state);
  EXPECT_EQ(StateDigest(restored), StateDigest(state));
}

TEST(SnapshotTest, SingleWriteDirtiesOneChunk) {
  // The dedup contract behind cheap periodic snapshots: a key always lands
  // in the same bucket, so consecutive snapshots share every chunk except
  // the written key's.
  ChunkStore store;
  SnapshotConfig config;
  auto state = SampleState(200);
  SnapshotManifest first = BuildSnapshot(state, 1, config, &store);
  uint64_t chunks_after_first = store.chunk_count();
  state["key42"] = "rewritten";
  SnapshotManifest second = BuildSnapshot(state, 2, config, &store);
  EXPECT_EQ(store.chunk_count(), chunks_after_first + 1);
  EXPECT_NE(first.root, second.root);
  EXPECT_GT(store.dedup_hits(), 0u);
}

TEST(SnapshotTest, RestoreFailsOnMissingChunk) {
  ChunkStore store;
  SnapshotConfig config;
  SnapshotManifest m = BuildSnapshot(SampleState(50), 3, config, &store);
  ChunkStore empty;
  std::map<std::string, std::string> out;
  EXPECT_FALSE(RestoreSnapshot(m, empty, &out));
}

TEST(SnapshotTest, ChunkCodecRoundTrips) {
  std::vector<std::pair<std::string, std::string>> entries = {
      {"a", "1"}, {"b", ""}, {"key with spaces", "value\nwith\nnewlines"}};
  std::string bytes = EncodeChunk(entries);
  std::vector<std::pair<std::string, std::string>> decoded;
  ASSERT_TRUE(DecodeChunk(Slice(bytes), &decoded));
  EXPECT_EQ(decoded, entries);
  std::vector<std::pair<std::string, std::string>> bad;
  EXPECT_FALSE(DecodeChunk(Slice(bytes.substr(0, bytes.size() / 2)), &bad));
}

// ---------------------------------------------------------------------------
// Delta plans + idempotent application
// ---------------------------------------------------------------------------

TEST(CatchupTest, DeltaPlanReusesSharedChunks) {
  ChunkStore source;
  SnapshotConfig config;
  auto state = SampleState(200);
  SnapshotManifest first = BuildSnapshot(state, 1, config, &source);

  // The joiner already holds the first snapshot's chunks (a laggard
  // rejoining after a partition).
  ChunkStore joiner;
  for (const crypto::Digest& d : first.chunks) {
    joiner.Put(d, *source.Get(d));
  }

  state["key7"] = "updated";
  SnapshotManifest second = BuildSnapshot(state, 2, config, &source);
  DeltaPlan plan = ComputeDelta(second, joiner);
  EXPECT_EQ(plan.need.size(), 1u);
  EXPECT_EQ(plan.reused, second.chunks.size() - 1);
}

TEST(CatchupTest, DeltaApplicationIsIdempotent) {
  // Re-delivered chunks and a re-replayed log tail must land on the same
  // state digest: transfers retry under faults, so both paths can run
  // twice.
  ChunkStore source;
  SnapshotConfig config;
  auto base = SampleState(80);
  SnapshotManifest m = BuildSnapshot(base, 10, config, &source);

  std::vector<std::pair<std::string, std::string>> tail = {
      {"key3", "after-anchor"}, {"new-key", "fresh"}};
  std::string tail_bytes = EncodeChunk(tail);

  crypto::Digest digests[2];
  for (int round = 0; round < 2; round++) {
    ChunkStore joiner;
    for (const crypto::Digest& d : m.chunks) {
      joiner.Put(d, *source.Get(d));
      joiner.Put(d, *source.Get(d));  // re-delivery dedups
    }
    std::map<std::string, std::string> state;
    ASSERT_TRUE(RestoreSnapshot(m, joiner, &state));
    for (int replay = 0; replay < 2; replay++) {  // re-replayed tail
      std::vector<std::pair<std::string, std::string>> decoded;
      ASSERT_TRUE(DecodeChunk(Slice(tail_bytes), &decoded));
      for (const auto& [key, value] : decoded) state[key] = value;
    }
    digests[round] = StateDigest(state);
    EXPECT_EQ(state["key3"], "after-anchor");
    EXPECT_EQ(state["new-key"], "fresh");
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(CatchupTest, TransferShipsOnlyMissingChunks) {
  sim::Simulator sim(7);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});

  ChunkStore source_store;
  SnapshotConfig snap_config;
  auto state = SampleState(150);
  SnapshotManifest first = BuildSnapshot(state, 5, snap_config, &source_store);
  state["key11"] = "changed";
  SnapshotManifest second =
      BuildSnapshot(state, 6, snap_config, &source_store);

  // The joiner holds the first snapshot already; the transfer targets the
  // second and must ship exactly the dirty chunk.
  ChunkStore joiner_store;
  for (const crypto::Digest& d : first.chunks) {
    joiner_store.Put(d, *source_store.Get(d));
  }

  SnapshotTransfer::Source src;
  src.available = [] { return true; };
  src.manifest = [&second] { return second; };
  src.chunks = [&source_store] { return &source_store; };
  src.log_suffix = [](uint64_t) { return LogSuffix{}; };

  TransferResult result;
  bool done = false;
  SnapshotTransfer::Start(&sim, &net, /*source=*/1, /*joiner=*/2, src,
                          &joiner_store, [] { return true; },
                          TransferConfig{}, [&](TransferResult r) {
                            result = std::move(r);
                            done = true;
                          });
  sim.RunFor(5 * sim::kSec);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.stats.chunks_fetched, 1u);
  EXPECT_EQ(result.stats.chunks_reused, second.chunks.size() - 1);
  std::map<std::string, std::string> restored;
  ASSERT_TRUE(RestoreSnapshot(result.manifest, joiner_store, &restored));
  EXPECT_EQ(StateDigest(restored), StateDigest(state));
}

// ---------------------------------------------------------------------------
// Config-change log semantics
// ---------------------------------------------------------------------------

TEST(MembershipTest, ConfigChangeCommandRoundTrips) {
  for (ConfigChangeKind kind :
       {ConfigChangeKind::kAddNode, ConfigChangeKind::kRemoveNode}) {
    ConfigChange cc;
    cc.kind = kind;
    cc.node = 42;
    std::string cmd = FormatConfigChange(cc);
    EXPECT_TRUE(IsConfigChangeCommand(cmd)) << cmd;
    ConfigChange parsed;
    ASSERT_TRUE(ParseConfigChange(cmd, &parsed)) << cmd;
    EXPECT_EQ(parsed.kind, kind);
    EXPECT_EQ(parsed.node, 42u);
  }
  EXPECT_FALSE(IsConfigChangeCommand("ordinary command"));
}

TEST(MembershipTest, ConfigChangesAreInvisibleToStateMachines) {
  // Config changes travel through the same replicated log as transactions;
  // system state machines must fail the parse and skip them rather than
  // corrupt state.
  std::string cmd = FormatConfigChange({ConfigChangeKind::kAddNode, 7});
  core::TxnRequest request;
  EXPECT_FALSE(core::TxnRequest::Deserialize(cmd, &request));
}

TEST(MembershipTest, ApplyRejectsNoOpChanges) {
  std::vector<NodeId> members = {1, 2, 3};
  EXPECT_FALSE(ApplyConfigChange({ConfigChangeKind::kAddNode, 2}, &members));
  EXPECT_FALSE(ApplyConfigChange({ConfigChangeKind::kRemoveNode, 9}, &members));
  EXPECT_EQ(members, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_TRUE(ApplyConfigChange({ConfigChangeKind::kAddNode, 4}, &members));
  EXPECT_EQ(members, (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_TRUE(ApplyConfigChange({ConfigChangeKind::kRemoveNode, 1}, &members));
  EXPECT_EQ(members, (std::vector<NodeId>{2, 3, 4}));
}

TEST(MembershipTest, SingleServerChangesKeepQuorumsOverlapping) {
  std::vector<NodeId> base = {1, 2, 3};
  std::vector<NodeId> grown = {1, 2, 3, 4};
  std::vector<NodeId> jumped = {1, 2, 3, 4, 5};
  EXPECT_TRUE(IsSingleServerChange(base, grown));
  EXPECT_TRUE(IsSingleServerChange(grown, base));
  EXPECT_FALSE(IsSingleServerChange(base, jumped));
  // Raft §6's point: adjacent single-server configs can never seat two
  // disjoint majorities; disjoint groups can.
  EXPECT_FALSE(DisjointQuorumsPossible(base, grown));
  EXPECT_TRUE(DisjointQuorumsPossible({1, 2, 3}, {3, 4, 5}));
  EXPECT_TRUE(DisjointQuorumsPossible({1, 2, 3}, {4, 5, 6}));
}

}  // namespace
}  // namespace dicho::lifecycle
