#include "consensus/pbft.h"

#include <algorithm>
#include <cassert>

namespace dicho::consensus {

namespace {
constexpr uint64_t kCtrlMsgBytes = 160;  // header + digest + signature

std::string DigestOf(const std::string& cmd) {
  return crypto::DigestBytes(crypto::Sha256Of(cmd));
}
}  // namespace

BftNode::BftNode(sim::Simulator* sim, sim::SimNetwork* net,
                 const sim::CostModel* costs, NodeId id,
                 std::vector<NodeId> all, BftConfig config, ApplyFn apply)
    : sim_(sim),
      net_(net),
      costs_(costs),
      id_(id),
      all_(std::move(all)),
      config_(config),
      apply_(std::move(apply)),
      cpu_(sim) {
  std::sort(all_.begin(), all_.end());
}

void BftNode::Start() {}

void BftNode::Charge(std::function<void()> fn) {
  // Verify the signature on the incoming message, then process. The O(n^2)
  // signed traffic per instance is charged here.
  cpu_.Submit(costs_->sig_verify_us + costs_->msg_handling_us,
              [this, fn = std::move(fn)] {
                if (!crashed_) fn();
              });
}

void BftNode::Broadcast(uint64_t bytes,
                        std::function<void(BftNode*)> deliver) {
  for (NodeId peer : all_) {
    if (peer == id_) continue;
    BftNode* target = group_.at(peer);
    net_->Send(id_, peer, bytes, [target, deliver] {
      target->Charge([target, deliver] { deliver(target); });
    });
  }
  deliver(this);  // self-delivery, no network or signature cost
}

void BftNode::Submit(std::string cmd, SubmitCallback cb) {
  if (crashed_) {
    cb(Status::Unavailable("node crashed"), 0);
    return;
  }
  std::string digest = DigestOf(cmd);
  pending_subs_[digest] = PendingSubmission{cmd, std::move(cb)};
  ArmViewChangeTimer();
  // PBFT clients broadcast requests to every replica; each replica monitors
  // the request for execution and starts a view change if the primary stalls
  // on it. Without this, only the submitting replica would ever time out and
  // a single view-change vote cannot reach quorum.
  for (NodeId peer : all_) {
    if (peer == id_) continue;
    BftNode* target = group_.at(peer);
    net_->Send(id_, peer, kCtrlMsgBytes + cmd.size(), [target, cmd] {
      target->Charge([target, cmd] { target->NoteRequest(cmd); });
    });
  }
  ForwardToPrimary(std::move(cmd));
}

void BftNode::NoteRequest(const std::string& cmd) {
  std::string digest = DigestOf(cmd);
  if (executed_digests_.count(digest) > 0) return;
  if (pending_subs_.count(digest) > 0) return;
  pending_subs_[digest] = PendingSubmission{cmd, nullptr};
  ArmViewChangeTimer();
  if (IsPrimary()) PrimaryPropose(cmd);
}

void BftNode::ForwardToPrimary(std::string cmd) {
  if (IsPrimary()) {
    PrimaryPropose(std::move(cmd));
    return;
  }
  NodeId p = primary();
  BftNode* target = group_.at(p);
  net_->Send(id_, p, kCtrlMsgBytes + cmd.size(),
             [target, cmd = std::move(cmd)]() mutable {
               target->Charge([target, cmd = std::move(cmd)]() mutable {
                 if (target->IsPrimary()) target->PrimaryPropose(std::move(cmd));
               });
             });
}

void BftNode::PrimaryPropose(std::string cmd) {
  std::string cmd_digest = DigestOf(cmd);
  if (proposed_digests_.count(cmd_digest) > 0 ||
      executed_digests_.count(cmd_digest) > 0) {
    return;  // duplicate relay of a request already in flight
  }
  if (in_view_change_) {
    queued_.emplace_back(std::move(cmd));
    return;
  }
  proposed_digests_.insert(cmd_digest);
  uint64_t seq = next_seq_++;
  uint64_t view = view_;
  std::string digest = DigestOf(cmd);

  if (equivocate_) {
    // Byzantine primary: conflicting proposals to the two halves.
    std::string evil_cmd = cmd + "#equivocation";
    size_t half = all_.size() / 2;
    size_t idx = 0;
    for (NodeId peer : all_) {
      if (peer == id_) continue;
      const std::string& c = (idx < half) ? cmd : evil_cmd;
      std::string d = DigestOf(c);
      BftNode* target = group_.at(peer);
      net_->Send(id_, peer, kCtrlMsgBytes + c.size(),
                 [target, me = id_, view, seq, d, c] {
                   target->Charge([target, me, view, seq, d, c] {
                     target->HandlePrePrepare(me, view, seq, d, c);
                   });
                 });
      idx++;
    }
    HandlePrePrepare(id_, view, seq, digest, cmd);
    return;
  }

  Broadcast(kCtrlMsgBytes + cmd.size(),
            [me = id_, view, seq, digest, cmd](BftNode* n) {
              n->HandlePrePrepare(me, view, seq, digest, cmd);
            });
}

void BftNode::HandlePrePrepare(NodeId from, uint64_t view, uint64_t seq,
                               const std::string& digest,
                               const std::string& cmd) {
  if (crashed_ || view != view_ || in_view_change_) return;
  if (from != primary()) return;  // only the primary proposes
  Instance& inst = instances_[seq];
  if (!inst.digest.empty() && inst.view == view) return;  // first one wins
  inst.cmd = cmd;
  inst.digest = digest;
  inst.view = view;

  std::string vote_digest = digest;
  if (equivocate_) vote_digest = DigestOf(digest + "#garbage");
  Broadcast(kCtrlMsgBytes, [me = id_, view, seq, vote_digest](BftNode* n) {
    n->HandlePrepare(me, view, seq, vote_digest);
  });
  // Prepares/commits may have raced ahead of this pre-prepare.
  CheckProgress(view, seq);
}

void BftNode::CheckProgress(uint64_t view, uint64_t seq) {
  Instance& inst = instances_[seq];
  if (inst.digest.empty() || inst.view != view) return;
  if (!inst.prepared && inst.prepares[inst.digest].size() >= 2 * f()) {
    inst.prepared = true;
    if (!inst.sent_commit) {
      inst.sent_commit = true;
      std::string digest = inst.digest;
      Broadcast(kCtrlMsgBytes, [me = id_, view, seq, digest](BftNode* n) {
        n->HandleCommit(me, view, seq, digest);
      });
    }
  }
  if (!inst.committed && inst.commits[inst.digest].size() >= Quorum()) {
    inst.committed = true;
    MaybeExecute();
  }
}

void BftNode::HandlePrepare(NodeId from, uint64_t view, uint64_t seq,
                            const std::string& digest) {
  if (crashed_ || view != view_ || in_view_change_) return;
  Instance& inst = instances_[seq];
  inst.prepares[digest].insert(from);
  CheckProgress(view, seq);
}

void BftNode::HandleCommit(NodeId from, uint64_t view, uint64_t seq,
                           const std::string& digest) {
  if (crashed_ || view != view_ || in_view_change_) return;
  Instance& inst = instances_[seq];
  inst.commits[digest].insert(from);
  CheckProgress(view, seq);
}

void BftNode::MaybeExecute() {
  while (true) {
    auto it = instances_.find(last_executed_ + 1);
    if (it == instances_.end() || !it->second.committed) return;
    uint64_t seq = it->first;
    Instance& inst = it->second;
    last_executed_ = seq;
    executed_log_[seq] = inst.cmd;
    executed_digests_.insert(DigestOf(inst.cmd));
    if (apply_) apply_(seq, inst.cmd);
    auto sub = pending_subs_.find(inst.digest);
    if (sub != pending_subs_.end()) {
      if (sub->second.cb) sub->second.cb(Status::Ok(), seq);
      pending_subs_.erase(sub);
    }
  }
}

void BftNode::ArmViewChangeTimer() {
  uint64_t epoch = ++timer_epoch_;
  uint64_t executed_snapshot = last_executed_;
  sim_->Schedule(config_.view_change_timeout, [this, epoch,
                                               executed_snapshot] {
    if (crashed_ || epoch != timer_epoch_) return;
    if (pending_subs_.empty()) return;
    if (last_executed_ > executed_snapshot) {
      // Progress is being made; re-arm and keep waiting.
      ArmViewChangeTimer();
      return;
    }
    StartViewChange(view_ + 1);
  });
}

void BftNode::StartViewChange(uint64_t new_view) {
  if (new_view <= view_) return;
  in_view_change_ = true;
  view_changes_++;
  std::map<uint64_t, std::string> prepared;
  for (const auto& [seq, inst] : instances_) {
    if (seq > last_executed_ && inst.prepared) prepared[seq] = inst.cmd;
  }
  Broadcast(kCtrlMsgBytes + 64 * prepared.size(),
            [me = id_, new_view, prepared](BftNode* n) {
              n->HandleViewChange(me, new_view, prepared);
            });
}

void BftNode::HandleViewChange(
    NodeId from, uint64_t new_view,
    const std::map<uint64_t, std::string>& prepared_cmds) {
  if (crashed_ || new_view <= view_) return;
  view_change_votes_[new_view].insert(from);
  auto& merged = view_change_prepared_[new_view];
  for (const auto& [seq, cmd] : prepared_cmds) {
    merged.emplace(seq, cmd);  // first report wins; honest reports agree
  }
  if (view_change_votes_[new_view].size() >= Quorum()) {
    EnterView(new_view);
  } else if (view_change_votes_[new_view].size() >= f() + 1 &&
             !in_view_change_) {
    // Join an in-progress view change (avoids waiting for our own timer).
    StartViewChange(new_view);
  }
}

void BftNode::EnterView(uint64_t new_view) {
  view_ = new_view;
  in_view_change_ = false;
  timer_epoch_++;  // cancel stale timers
  if (!pending_subs_.empty()) ArmViewChangeTimer();

  uint64_t max_seq = last_executed_;
  for (const auto& [seq, inst] : instances_) max_seq = std::max(max_seq, seq);
  const auto merged = view_change_prepared_[new_view];

  if (IsPrimary()) {
    for (const auto& [seq, cmd] : merged) max_seq = std::max(max_seq, seq);
    next_seq_ = max_seq + 1;
    // Re-propose prepared-but-unexecuted requests at their original seqs.
    for (const auto& [seq, cmd] : merged) {
      if (seq <= last_executed_) continue;
      uint64_t view = view_;
      std::string digest = DigestOf(cmd);
      // Reset the instance for the new view.
      instances_[seq] = Instance{};
      Broadcast(kCtrlMsgBytes + cmd.size(),
                [me = id_, view, seq, digest, cmd](BftNode* n) {
                  n->HandlePrePrepare(me, view, seq, digest, cmd);
                });
    }
    // Drain queued and pending submissions.
    auto queued = std::move(queued_);
    queued_.clear();
    for (auto& cmd : queued) PrimaryPropose(std::move(cmd));
  }
  // Clear per-view instance state for unexecuted seqs so the new view's
  // pre-prepares are accepted cleanly.
  for (auto& [seq, inst] : instances_) {
    if (seq > last_executed_ && inst.view < new_view && !inst.committed) {
      inst = Instance{};
    }
  }
  // Re-forward pending requests to the new primary (it dedups by digest).
  for (auto& [digest, sub] : pending_subs_) {
    ForwardToPrimary(sub.cmd);
  }
}

void BftNode::Crash() {
  crashed_ = true;
  net_->SetNodeDown(id_, true);
  for (auto& [digest, sub] : pending_subs_) {
    sub.cb(Status::Unavailable("node crashed"), 0);
  }
  pending_subs_.clear();
  cpu_.ResetBacklog();
}

void BftNode::Restart() {
  crashed_ = false;
  net_->SetNodeDown(id_, false);
  in_view_change_ = false;
  // View and executed log persist (stable storage); timers rearm on demand.
}

std::unique_ptr<BftCluster> BftCluster::Create(
    sim::Simulator* sim, sim::SimNetwork* net, const sim::CostModel* costs,
    const std::vector<NodeId>& ids, BftConfig config,
    std::function<void(NodeId, uint64_t, const std::string&)> apply) {
  auto cluster = std::unique_ptr<BftCluster>(new BftCluster());
  for (NodeId id : ids) {
    BftNode::ApplyFn node_apply;
    if (apply) {
      node_apply = [apply, id](uint64_t seq, const std::string& cmd) {
        apply(id, seq, cmd);
      };
    }
    cluster->nodes_[id] = std::make_unique<BftNode>(
        sim, net, costs, id, ids, config, std::move(node_apply));
  }
  std::map<NodeId, BftNode*> group;
  for (auto& [id, node] : cluster->nodes_) group[id] = node.get();
  for (auto& [id, node] : cluster->nodes_) node->SetGroup(group);
  return cluster;
}

BftNode* BftCluster::primary() {
  for (auto& [id, node] : nodes_) {
    if (node->IsPrimary()) return node.get();
  }
  return nullptr;
}

std::vector<BftNode*> BftCluster::all() {
  std::vector<BftNode*> out;
  for (auto& [id, node] : nodes_) out.push_back(node.get());
  return out;
}

void BftCluster::StartAll() {
  for (auto& [id, node] : nodes_) node->Start();
}

}  // namespace dicho::consensus
