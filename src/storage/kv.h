#ifndef DICHO_STORAGE_KV_H_
#define DICHO_STORAGE_KV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace dicho::storage {

/// Forward iterator over an ordered key space, positioned on key/value pairs.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  /// Pre-condition for key()/value(): Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
};

/// An atomically applied batch of updates (RocksDB WriteBatch idiom).
class WriteBatch {
 public:
  void Put(const Slice& key, const Slice& value) {
    ops_.push_back({OpType::kPut, key.ToString(), value.ToString()});
  }
  void Delete(const Slice& key) {
    ops_.push_back({OpType::kDelete, key.ToString(), ""});
  }
  void Clear() { ops_.clear(); }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  enum class OpType : uint8_t { kPut = 0, kDelete = 1 };
  struct Op {
    OpType type;
    std::string key;
    std::string value;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

/// Ordered key-value store interface implemented by the LSM engine, the
/// B+-tree engine, and the trivial map-backed baseline. System compositions
/// program against this, which is what lets Table 2's "Index (Storage
/// Engine)" column be a pluggable choice.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Get(const Slice& key, std::string* value) = 0;
  virtual Status Write(const WriteBatch& batch) = 0;
  /// Iterator over live (non-deleted) entries in key order. The iterator
  /// observes a snapshot taken at creation time where the engine supports
  /// snapshots; otherwise behaviour under concurrent mutation is undefined.
  virtual std::unique_ptr<Iterator> NewIterator() = 0;

  /// Approximate resident bytes of keys+values (storage-cost experiments).
  virtual uint64_t ApproximateSize() const = 0;
};

}  // namespace dicho::storage

#endif  // DICHO_STORAGE_KV_H_
