#ifndef DICHO_SIM_COST_MODEL_H_
#define DICHO_SIM_COST_MODEL_H_

#include <cstdint>

#include "sim/simulator.h"

namespace dicho::sim {

/// Every CPU cost in the performance model lives here, in one place, so the
/// calibration is auditable. Values are microseconds of service time on one
/// core of the paper's testbed (Xeon E5-1650). Anchors taken from the paper
/// itself are marked; the rest are standard figures for the named operation.
///
/// The *data-structure work itself* (MPT hashing, LSM writes, OCC version
/// checks) is executed for real against real state — the CostModel only
/// supplies the virtual-time price of each step, which is what turns the
/// pipeline structure into throughput/latency numbers.
struct CostModel {
  // --- Cryptography -------------------------------------------------------
  // ECDSA verify/sign. Anchor: Table 4 regression — Fabric validation cost
  // grows ~78 us per additional endorsement signature as N scales 3 -> 19.
  Time sig_verify_us = 78.0;
  Time sig_sign_us = 55.0;
  // SHA-256: ~300 MB/s single core.
  Time hash_base_us = 0.5;
  Time hash_per_byte_us = 0.0033;

  // --- Merkle Patricia Trie (Quorum/Ethereum state) ------------------------
  // Anchor (paper 5.3.3): MPT reconstruction per commit costs 56 us for
  // 10-byte records and 2.5 ms for 5000-byte records. Linear fit:
  Time mpt_update_base_us = 51.0;
  Time mpt_update_per_byte_us = 0.49;

  Time MptUpdateCost(uint64_t value_size) const {
    return mpt_update_base_us +
           mpt_update_per_byte_us * static_cast<Time>(value_size);
  }

  /// Fast-storage MPT update (DESIGN.md §2g): values live out of line under
  /// their content digest, so path nodes re-hash without touching the value
  /// bytes and repeated values skip hashing entirely via the digest memo.
  /// Calibrated from micro_hotpath on this hardware: the fast put is flat in
  /// value size (2.82 us at 10 B, 2.80 us at 5000 B) while the full path
  /// climbs 2.90 -> 15.7 us — the base (path traversal + node rewrites) is
  /// unchanged, the ~2.5 ns/B slope collapses below measurement noise
  /// (mpt_put_5000B vs mpt_put_full_5000B; see EXPERIMENTS.md). Mirrored in
  /// production-cost units: same base as mpt_update_base_us, slope ~60x
  /// shallower for the residual sampled-digest/memcmp work.
  Time mpt_update_fast_base_us = 51.0;
  Time mpt_update_fast_per_byte_us = 0.008;

  Time MptUpdateCostFast(uint64_t value_size) const {
    return mpt_update_fast_base_us +
           mpt_update_fast_per_byte_us * static_cast<Time>(value_size);
  }

  /// Copy/insert delta encoding of a value version against its predecessor
  /// (storage/delta): block-hash indexing plus greedy extension measures
  /// ~3.1 ns/B of CPU (delta_encode_5000B in micro_hotpath). The commit
  /// charge it replaces (fabric_commit_per_byte_us) models write
  /// amplification — physical bytes hitting the store — which a field
  /// update shrinks by the delta ratio, so the modeled rate drops ~30x and
  /// the encode CPU rides inside it.
  Time delta_encode_per_byte_us = 0.004;

  Time DeltaCommitCost(uint64_t value_size) const {
    return delta_encode_per_byte_us * static_cast<Time>(value_size);
  }

  // --- Merkle Bucket Tree (Fabric v0.6 state) ------------------------------
  // Depth is capped at ceil(log4 1000) = 5, so the cost is a small constant
  // plus hashing the record.
  Time mbt_update_base_us = 20.0;

  Time MbtUpdateCost(uint64_t value_size) const {
    return mbt_update_base_us + hash_per_byte_us * static_cast<Time>(value_size);
  }

  // --- Contract execution --------------------------------------------------
  // EVM-style interpreted execution (Quorum): per-gas-unit cost; a KV write
  // of S bytes costs roughly gas ~ f(S).
  Time vm_step_us = 0.08;
  // Native (Fabric chaincode / stored procedure) execution of one KV op.
  Time native_op_us = 18.0;

  // --- Storage engines ------------------------------------------------------
  // LSM write path: memtable insert + WAL append (group-committed).
  Time lsm_write_base_us = 6.0;
  Time lsm_write_per_byte_us = 0.004;
  Time lsm_read_us = 14.0;
  // B+-tree (etcd/BoltDB) point ops.
  Time btree_op_us = 5.0;
  Time btree_per_byte_us = 0.002;

  Time LsmWriteCost(uint64_t bytes) const {
    return lsm_write_base_us + lsm_write_per_byte_us * static_cast<Time>(bytes);
  }
  Time BtreeOpCost(uint64_t bytes) const {
    return btree_op_us + btree_per_byte_us * static_cast<Time>(bytes);
  }

  // --- Consensus / replication ---------------------------------------------
  // Raft leader work per committed op beyond the storage write: log append,
  // batching bookkeeping. Anchor: etcd Table 4 regression (52 us/op at N=3,
  // 165 us/op at N=19) => ~38 us fixed + ~7 us per follower.
  Time raft_leader_base_us = 38.0;
  Time raft_leader_per_follower_us = 7.0;
  // Per-message CPU handling (serialize/deserialize) for any protocol.
  Time msg_handling_us = 4.0;
  // PBFT/IBFT per-message signature handling is sig_verify_us above.

  // --- SQL layer (TiDB-server) ---------------------------------------------
  // Parse + plan + execute one Smallbank/YCSB statement set. Anchor: Table 5
  // — ~1900 tps per TiDB-server when TiKV is not the bottleneck
  // (~520 us of server CPU per transaction).
  Time sql_parse_us = 340.0;
  Time sql_execute_us = 300.0;
  // Follower-side apply of one replicated region write (TiKV raftstore).
  Time tikv_follower_apply_us = 25.0;
  // Per-request gRPC + scheduler overhead on TiKV's raw (transaction-free)
  // path. Anchor: standalone TiKV peaks near etcd in Fig. 4.
  Time tikv_grpc_us = 250.0;
  // Raft proposal-to-apply latency inside a TiKV/Paxos region beyond the
  // network round trip: WAL fsync + apply scheduling (~ms scale). This is
  // what the Percolator primary lock is held across — the paper's skew
  // collapse (TiDB -> 173 tps at theta=1) needs the realistic hold time.
  Time region_commit_latency_us = 2500.0;

  // --- Percolator / 2PC ------------------------------------------------------
  Time tso_request_us = 20.0;    // timestamp oracle round (PD)
  Time latch_acquire_us = 2.0;
  Time two_pc_coord_us = 25.0;   // coordinator bookkeeping per phase

  // --- Client / driver -------------------------------------------------------
  // Client-side signing of a transaction proposal and verification of
  // responses.
  Time client_auth_us = 350.0;

  // --- Quorum (order-execute) ------------------------------------------------
  // EVM interpretation of a state-writing operation. Anchors: the paper's
  // Quorum throughput at 10 B / 1 KB / 5 KB records (1547 / ~237 / 58 tps)
  // is consistent with a per-transaction serial execution cost of
  // ~0.66 / 4.1 / 18 ms — i.e. ~0.5 ms fixed plus ~3 us/byte on top of the
  // MPT term above (Section 5.3.3's linearity).
  Time evm_op_base_us = 500.0;
  Time evm_per_byte_us = 3.0;

  /// Full Quorum execution cost for one state-writing op of `bytes` payload
  /// (EVM interpretation + MPT path rebuild).
  Time QuorumOpCost(uint64_t bytes) const {
    return evm_op_base_us + evm_per_byte_us * static_cast<Time>(bytes) +
           MptUpdateCost(bytes);
  }

  // JSON-RPC handling + EVM read path for a Quorum query (paper Fig. 5:
  // ~4 ms Quorum queries vs sub-ms database reads).
  Time quorum_query_us = 3200.0;

  // --- Fabric ------------------------------------------------------------------
  // Peer-side chaincode simulation of one proposal (concurrent phase).
  Time fabric_endorse_us = 450.0;
  // Per-transaction validation/commit work *excluding* the per-endorsement
  // signature checks (those are sig_verify_us x N and grow with the
  // endorsement policy — Table 4's regression gives the split). The
  // per-byte term (write-set unmarshaling + hashing + state write) is what
  // halves Fabric's throughput at 5000-byte records (Fig. 11).
  Time fabric_commit_us = 380.0;
  Time fabric_commit_per_byte_us = 0.12;
  // Client authentication on the Fabric query path — dominates query
  // latency (paper Fig. 8b, ~9 ms queries).
  Time fabric_query_auth_us = 7000.0;

  // --- Hybrid-system extras ----------------------------------------------------
  // Verifier-side work in Veritas-like designs (timestamp check + log write).
  Time verifier_check_us = 30.0;
};

}  // namespace dicho::sim

#endif  // DICHO_SIM_COST_MODEL_H_
