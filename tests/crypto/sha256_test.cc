#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace dicho::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256Of("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256Of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256Of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split++) {
    Sha256 h;
    h.Update(msg.data(), split);
    h.Update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(h.Finish(), Sha256Of(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding boundaries must not crash
  // and must be distinct.
  Digest prev = ZeroDigest();
  for (size_t len : {54, 55, 56, 57, 63, 64, 65, 119, 120, 128}) {
    Digest d = Sha256Of(std::string(len, 'x'));
    EXPECT_NE(d, prev);
    prev = d;
  }
}

TEST(Sha256Test, ResetReuses) {
  Sha256 h;
  h.Update("abc");
  Digest first = h.Finish();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(h.Finish(), first);
}

// The one-shot fast path, the incremental path, and odd-boundary chunked
// updates must agree for every size straddling the block/padding structure,
// so the dispatched (SHA-NI or portable) fast paths can't drift.
TEST(Sha256Test, OneShotIncrementalChunkedEquivalence) {
  std::string msg;
  msg.reserve(5000);
  for (size_t i = 0; i < 5000; i++) {
    msg.push_back(static_cast<char>((i * 131 + 89) & 0xFF));
  }
  // All sizes through two blocks, then strides across the paper's value
  // range up to 5000 B.
  std::vector<size_t> sizes;
  for (size_t n = 0; n <= 130; n++) sizes.push_back(n);
  for (size_t n = 131; n <= 5000; n += 97) sizes.push_back(n);
  sizes.push_back(5000);

  for (size_t n : sizes) {
    Slice data(msg.data(), n);
    Digest oneshot = Sha256Hash(data);
    EXPECT_EQ(Sha256Of(data), oneshot) << "n=" << n;

    // Whole-message incremental.
    Sha256 h;
    h.Update(data);
    EXPECT_EQ(h.Finish(), oneshot) << "n=" << n;

    // Chunked at odd boundaries (prime stride, never block-aligned).
    Sha256 hc;
    size_t off = 0;
    for (size_t chunk = 1; off < n; chunk = chunk * 2 + 3) {
      size_t take = std::min(chunk, n - off);
      hc.Update(msg.data() + off, take);
      off += take;
    }
    EXPECT_EQ(hc.Finish(), oneshot) << "chunked n=" << n;
  }
}

// NIST CAVS-style extra vector: 448-bit two-block message digested
// incrementally byte-by-byte.
TEST(Sha256Test, ByteAtATime) {
  std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Sha256 h;
  for (char c : msg) h.Update(&c, 1);
  EXPECT_EQ(DigestHex(h.Finish()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, PairMatchesConcatenation) {
  Digest a = Sha256Of("left"), b = Sha256Of("right");
  std::string cat = DigestBytes(a) + DigestBytes(b);
  EXPECT_EQ(Sha256Pair(a, b), Sha256Of(cat));
}

TEST(Sha256Test, PairHashOrderMatters) {
  Digest a = Sha256Of("a"), b = Sha256Of("b");
  EXPECT_NE(Sha256Pair(a, b), Sha256Pair(b, a));
}

TEST(Sha256Test, DigestBytesRoundTrip) {
  Digest d = Sha256Of("roundtrip");
  std::string bytes = DigestBytes(d);
  ASSERT_EQ(bytes.size(), 32u);
  EXPECT_EQ(DigestFromBytes(bytes), d);
}

TEST(Sha256Test, ZeroDigestIsAllZero) {
  Digest z = ZeroDigest();
  for (uint8_t b : z) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace dicho::crypto
