#include "storage/delta/delta.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"

namespace dicho::storage::delta {
namespace {

constexpr uint8_t kInsertOp = 0x00;
constexpr uint8_t kCopyOp = 0x01;
constexpr uint8_t kTrailerOp = 0x02;

/// Base blocks of this size are indexed; a candidate match must cover at
/// least one full block before extension, so no copy op is shorter than
/// this — below it the varint overhead of the op beats the literal.
constexpr size_t kBlock = 16;

/// Hash of 16 bytes: two unaligned little-endian loads mixed with 64-bit
/// odd multipliers. Collisions are resolved by memcmp, so the hash only
/// needs to spread.
inline uint64_t BlockHash(const char* p) {
  uint64_t a, b;
  memcpy(&a, p, 8);
  memcpy(&b, p + 8, 8);
  uint64_t h = a * 0x9E3779B97F4A7C15ull;
  h ^= (b + 0x9E3779B97F4A7C15ull) * 0xC2B2AE3D27D4EB4Full;
  return h ^ (h >> 29);
}

void EmitInsert(std::string* delta, const char* data, size_t len) {
  if (len == 0) return;
  delta->push_back(static_cast<char>(kInsertOp));
  PutVarint64(delta, len);
  delta->append(data, len);
}

void EmitCopy(std::string* delta, size_t offset, size_t len) {
  delta->push_back(static_cast<char>(kCopyOp));
  PutVarint64(delta, offset);
  PutVarint64(delta, len);
}

void EmitTrailer(std::string* delta, const Slice& target) {
  delta->push_back(static_cast<char>(kTrailerOp));
  PutFixed32(delta, crc32c::Value(target.data(), target.size()));
}

}  // namespace

void EncodeDelta(const Slice& base, const Slice& target, std::string* delta) {
  delta->clear();
  PutVarint64(delta, target.size());

  const size_t num_blocks = base.size() / kBlock;
  if (num_blocks == 0 || target.size() < kBlock) {
    EmitInsert(delta, target.data(), target.size());
    EmitTrailer(delta, target);
    return;
  }

  // Open-addressing index of base block hashes -> block number. Power-of-two
  // sized at >= 2x blocks; on a full probe run later blocks overwrite
  // earlier ones, which just biases matches toward the end of the base.
  size_t table_size = 64;
  while (table_size < num_blocks * 2) table_size <<= 1;
  const size_t mask = table_size - 1;
  std::vector<uint32_t> table(table_size, UINT32_MAX);
  for (size_t blk = 0; blk < num_blocks; blk++) {
    uint64_t h = BlockHash(base.data() + blk * kBlock);
    size_t idx = static_cast<size_t>(h) & mask;
    for (int probe = 0; probe < 4 && table[idx] != UINT32_MAX; probe++) {
      idx = (idx + 1) & mask;
    }
    table[idx] = static_cast<uint32_t>(blk);
  }

  size_t literal_start = 0;  // first target byte not yet emitted
  size_t pos = 0;
  while (pos + kBlock <= target.size()) {
    uint64_t h = BlockHash(target.data() + pos);
    size_t idx = static_cast<size_t>(h) & mask;
    // Best candidate: target range [pos - best_back, pos + best_fwd)
    // matches base range starting at best_off - best_back.
    size_t best_fwd = 0, best_back = 0, best_off = 0;
    for (int probe = 0; probe < 4 && table[idx] != UINT32_MAX; probe++) {
      const size_t off = static_cast<size_t>(table[idx]) * kBlock;
      idx = (idx + 1) & mask;
      if (memcmp(base.data() + off, target.data() + pos, kBlock) != 0) {
        continue;
      }
      // Extend forward past the verified block.
      size_t fwd = kBlock;
      const size_t max_fwd = std::min(base.size() - off, target.size() - pos);
      while (fwd < max_fwd && base[off + fwd] == target[pos + fwd]) fwd++;
      // Extend backward into the pending literal run.
      size_t back = 0;
      const size_t max_back = std::min(pos - literal_start, off);
      while (back < max_back &&
             base[off - back - 1] == target[pos - back - 1]) {
        back++;
      }
      if (fwd + back > best_fwd + best_back) {
        best_fwd = fwd;
        best_back = back;
        best_off = off;
      }
    }
    if (best_fwd >= kBlock) {
      EmitInsert(delta, target.data() + literal_start,
                 pos - best_back - literal_start);
      EmitCopy(delta, best_off - best_back, best_back + best_fwd);
      pos += best_fwd;
      literal_start = pos;
    } else {
      pos++;
    }
  }
  EmitInsert(delta, target.data() + literal_start,
             target.size() - literal_start);
  EmitTrailer(delta, target);
}

Status ApplyDelta(const Slice& base, const Slice& delta, std::string* target) {
  target->clear();
  Slice in = delta;
  uint64_t expected_len;
  if (!GetVarint64(&in, &expected_len)) {
    return Status::Corruption("delta: bad header");
  }
  target->reserve(expected_len);
  while (!in.empty()) {
    uint8_t op = static_cast<uint8_t>(in[0]);
    in.RemovePrefix(1);
    if (op == kInsertOp) {
      uint64_t len;
      if (!GetVarint64(&in, &len) || in.size() < len) {
        return Status::Corruption("delta: truncated insert");
      }
      target->append(in.data(), static_cast<size_t>(len));
      in.RemovePrefix(static_cast<size_t>(len));
    } else if (op == kCopyOp) {
      uint64_t offset, len;
      if (!GetVarint64(&in, &offset) || !GetVarint64(&in, &len) ||
          offset + len < offset || offset + len > base.size()) {
        return Status::Corruption("delta: copy out of bounds");
      }
      target->append(base.data() + static_cast<size_t>(offset),
                     static_cast<size_t>(len));
    } else if (op == kTrailerOp) {
      uint32_t crc;
      if (!GetFixed32(&in, &crc) || !in.empty()) {
        return Status::Corruption("delta: bad trailer");
      }
      if (target->size() != expected_len ||
          crc32c::Value(target->data(), target->size()) != crc) {
        return Status::Corruption("delta: checksum mismatch");
      }
      return Status::Ok();
    } else {
      return Status::Corruption("delta: unknown op");
    }
  }
  return Status::Corruption("delta: missing trailer");
}

bool DeltaTargetSize(const Slice& delta, uint64_t* size) {
  Slice in = delta;
  return GetVarint64(&in, size);
}

}  // namespace dicho::storage::delta
