#include "txn/deterministic.h"

#include <algorithm>
#include <unordered_map>

namespace dicho::txn {

namespace {

/// Overlay view: reads see the epoch's accumulated writes first, then fall
/// through to the replica's committed state — the serial-replay semantics
/// every replica reproduces identically.
class OverlayView : public contract::StateView {
 public:
  explicit OverlayView(contract::StateView* base) : base_(base) {}

  Status Get(const Slice& key, std::string* value) override {
    auto it = overlay_.find(std::string(key.data(), key.size()));
    if (it != overlay_.end()) {
      *value = it->second;
      return Status::Ok();
    }
    return base_->Get(key, value);
  }

  void Apply(const contract::WriteSet& writes) {
    for (const auto& [key, value] : writes) overlay_[key] = value;
  }

 private:
  contract::StateView* base_;
  std::unordered_map<std::string, std::string> overlay_;
};

}  // namespace

EpochSchedule BuildSchedule(
    const std::vector<std::vector<std::string>>& key_sets) {
  EpochSchedule schedule;
  schedule.txns.resize(key_sets.size());
  // Last writer index per key — each transaction conflicts with the most
  // recent predecessor touching any of its keys, and that predecessor's
  // layer dominates all earlier ones on the same key (layers grow
  // monotonically along a key's access chain), so tracking only the last
  // toucher computes the exact longest-path layer in O(total keys).
  std::unordered_map<std::string, uint32_t> last_touch;
  for (size_t i = 0; i < key_sets.size(); i++) {
    uint32_t layer = 0;
    bool conflicted = false;
    for (const std::string& key : key_sets[i]) {
      auto it = last_touch.find(key);
      if (it != last_touch.end()) {
        conflicted = true;
        layer = std::max(layer, schedule.txns[it->second].layer + 1);
      }
    }
    schedule.txns[i].layer = layer;
    if (conflicted) schedule.conflict_edges++;
    schedule.num_layers = std::max(schedule.num_layers, layer + 1);
    for (const std::string& key : key_sets[i]) {
      last_touch[key] = static_cast<uint32_t>(i);
    }
  }
  return schedule;
}

sim::Time ScheduledMakespan(EpochSchedule* schedule,
                            const std::vector<sim::Time>& costs_us,
                            uint32_t lanes) {
  if (lanes == 0) lanes = 1;
  // lane_load[layer][lane]; filled in epoch order so the least-loaded pick
  // (ties -> lowest lane index) is deterministic.
  std::vector<std::vector<sim::Time>> lane_load(
      schedule->num_layers, std::vector<sim::Time>(lanes, 0));
  for (size_t i = 0; i < schedule->txns.size(); i++) {
    std::vector<sim::Time>& loads = lane_load[schedule->txns[i].layer];
    size_t lane = 0;
    for (size_t l = 1; l < loads.size(); l++) {
      if (loads[l] < loads[lane]) lane = l;
    }
    loads[lane] += costs_us[i];
    schedule->txns[i].lane = static_cast<uint32_t>(lane);
  }
  sim::Time makespan = 0;
  for (const auto& loads : lane_load) {
    makespan += *std::max_element(loads.begin(), loads.end());
  }
  return makespan;
}

EpochOutcome DeterministicExecutor::ExecuteEpoch(
    const std::vector<core::TxnRequest>& batch,
    contract::StateView* base) const {
  EpochOutcome outcome;
  outcome.results.resize(batch.size());

  // Schedule from static key sets — derivable by every replica from the
  // ordered batch alone, before touching any state.
  std::vector<std::vector<std::string>> key_sets;
  key_sets.reserve(batch.size());
  for (const auto& request : batch) {
    key_sets.push_back(contract::StaticKeySet(request));
  }
  outcome.schedule = BuildSchedule(key_sets);

  // Serial replay in epoch order against the overlay — the state outcome.
  // Layered execution of conflict-free transactions produces byte-identical
  // results, so the replay doubles as the correctness oracle input.
  OverlayView view(base);
  std::vector<sim::Time> costs_us(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); i++) {
    const core::TxnRequest& request = batch[i];
    EpochTxnResult& result = outcome.results[i];
    contract::Contract* contract = contracts_->Lookup(
        request.contract.empty() ? "ycsb" : request.contract);
    sim::Time cost = costs_->sig_verify_us;
    if (contract == nullptr) {
      result.valid = false;
      outcome.constraint_aborts++;
      costs_us[i] = cost;
      outcome.serial_us += cost;
      continue;
    }
    Status s = contract->Execute(request, &view, &result.writes,
                                 &result.reads);
    // Native stored-procedure pricing: reads hit the storage engine, writes
    // rebuild the authenticated-state path. No EVM interpretation term —
    // deterministic execution of pre-ordered batches runs compiled code.
    for (const auto& op : request.ops) {
      cost += costs_->native_op_us;
      if (op.type != core::OpType::kWrite) cost += costs_->lsm_read_us;
    }
    for (const auto& [key, value] : result.writes) {
      cost += fast_storage_
                  ? costs_->MptUpdateCostFast(key.size() + value.size())
                  : costs_->MptUpdateCost(key.size() + value.size());
    }
    if (request.ops.empty()) {
      cost += contract->ExecCost(request, *costs_);
    }
    result.valid = s.ok();
    if (!s.ok()) {
      // Application constraint abort: deterministic, identical on every
      // replica, and its (empty) effect still occupies the schedule slot.
      result.writes.clear();
      outcome.constraint_aborts++;
    }
    view.Apply(result.writes);
    costs_us[i] = cost;
    outcome.serial_us += cost;
  }

  outcome.makespan_us = ScheduledMakespan(&outcome.schedule, costs_us, lanes_);
  outcome.costs_us = std::move(costs_us);
  return outcome;
}

}  // namespace dicho::txn
