#ifndef DICHO_SIM_CPU_H_
#define DICHO_SIM_CPU_H_

#include <cstdint>
#include <functional>

#include "sim/simulator.h"

namespace dicho::sim {

/// A serial service station: models one execution thread of a node (e.g.,
/// the block-validation thread in Fabric, the EVM in Quorum, a TiKV apply
/// thread). Jobs are served FIFO; queueing delay emerges naturally when the
/// offered load exceeds capacity — this is exactly the mechanism behind the
/// paper's Fig. 8a (validation latency blow-up when Fabric saturates).
class CpuResource {
 public:
  explicit CpuResource(Simulator* sim) : sim_(sim) {}

  CpuResource(const CpuResource&) = delete;
  CpuResource& operator=(const CpuResource&) = delete;

  /// Enqueues a job needing `service_time`; `done` fires when it completes.
  void Submit(Time service_time, std::function<void()> done) {
    Time start = busy_until_ > sim_->Now() ? busy_until_ : sim_->Now();
    busy_until_ = start + service_time;
    total_busy_ += service_time;
    outstanding_++;
    sim_->ScheduleAt(busy_until_, [this, done = std::move(done)]() {
      outstanding_--;
      done();
    });
  }

  /// Wall-clock instant the queue drains if nothing else is submitted.
  Time busy_until() const { return busy_until_; }

  /// Jobs submitted but not yet completed (queued + in service).
  uint64_t outstanding() const { return outstanding_; }

  /// Current queueing delay a new job would see before starting service.
  Time backlog() const {
    return busy_until_ > sim_->Now() ? busy_until_ - sim_->Now() : 0;
  }

  /// Total virtual time spent serving jobs (utilization accounting).
  Time total_busy() const { return total_busy_; }

  /// Drops all queued work accounting (crash): jobs already scheduled still
  /// fire their callbacks, so components must guard with their own epoch
  /// checks; this only resets the backlog so a restarted node is not stuck
  /// behind pre-crash work.
  void ResetBacklog() { busy_until_ = sim_->Now(); }

 private:
  Simulator* sim_;
  Time busy_until_ = 0;
  Time total_busy_ = 0;
  uint64_t outstanding_ = 0;
};

}  // namespace dicho::sim

#endif  // DICHO_SIM_CPU_H_
