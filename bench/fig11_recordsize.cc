// Reproduces Fig. 11: performance under uniform updates as the record size
// grows 10 -> 5000 bytes, plus the Quorum/Fabric latency breakdown — and
// the storage-raw-speed ablation on top of it: fabric and harmonylike rows
// re-run with fast_storage (DESIGN.md §2g — delta-backed Fabric commits,
// out-of-line MPT values for harmonylike), which should visibly flatten
// their record-size curves.
//
// Paper shapes: Quorum collapses 1547 -> 58 tps (per-commit MPT
// reconstruction grows 56 us -> 2.5 ms and the EVM cost is per-byte; both
// phases of its double execution grow at the same rate); Fabric stays
// roughly flat then halves at 5000 B; the databases decline moderately.
//
// Usage: fig11_recordsize [--quick]
//   --quick   2s measurement over 4000 records; CI smoke mode.

#include <cstring>
#include <functional>

#include "bench_util.h"

namespace dicho::bench {
namespace {

void Run(bool quick) {
  PrintHeader("Fig 11a: record size sweep, uniform updates (tps)");
  const size_t kSizes[] = {10, 100, 1000, 5000};
  printf("%-12s", "system");
  for (size_t s : kSizes) printf("%9zuB", s);
  printf("\n");

  BenchScale scale;
  scale.record_count = quick ? 4000 : 20000;
  scale.warmup = quick ? 1 * sim::kSec : 3 * sim::kSec;
  scale.measure = quick ? 2 * sim::kSec : 10 * sim::kSec;

  using RowFn = std::function<workload::RunMetrics(World*, size_t)>;
  struct Row {
    const char* name;
    RowFn run;
  };
  auto ycsb = [&scale](World* w, core::TransactionalSystem* system,
                       size_t size, double arrival) {
    workload::YcsbConfig wcfg;
    wcfg.record_size = size;
    return RunYcsb(w, system, wcfg, scale, 0, arrival);
  };
  const Row kRows[] = {
      {"quorum",
       [&](World* w, size_t size) {
         auto s = MakeQuorum(w, 5);
         return ycsb(w, s.get(), size, 2200);
       }},
      {"fabric",
       [&](World* w, size_t size) {
         auto s = MakeFabric(w, 5);
         return ycsb(w, s.get(), size, 2200);
       }},
      {"fabric+fs",
       [&](World* w, size_t size) {
         auto s = MakeFabric(w, 5, 1, /*fast_storage=*/true);
         return ycsb(w, s.get(), size, 2200);
       }},
      {"harmony",
       [&](World* w, size_t size) {
         auto s = MakeHarmony(w, 5);
         return ycsb(w, s.get(), size, 2200);
       }},
      {"harmony+fs",
       [&](World* w, size_t size) {
         auto s = MakeHarmony(w, 5, /*fast_storage=*/true);
         return ycsb(w, s.get(), size, 2200);
       }},
      {"tidb",
       [&](World* w, size_t size) {
         auto s = MakeTidb(w, 5, 5);
         return ycsb(w, s.get(), size, 0);
       }},
      {"etcd",
       [&](World* w, size_t size) {
         auto s = MakeEtcd(w, 5);
         return ycsb(w, s.get(), size, 0);
       }},
  };

  std::map<size_t, workload::RunMetrics> quorum_runs;
  for (const Row& row : kRows) {
    printf("%-12s", row.name);
    for (size_t size : kSizes) {
      World w;
      auto m = row.run(&w, size);
      printf("%10.0f", m.throughput_tps);
      fflush(stdout);
      if (strcmp(row.name, "quorum") == 0) quorum_runs[size] = std::move(m);
    }
    printf("\n");
  }
  printf("(fast-storage rows: delta-backed Fabric commit, out-of-line MPT "
         "values for harmonylike — DESIGN.md §2g)\n");

  if (quick) return;  // breakdown below needs the full-length runs

  PrintHeader("Fig 11b: Quorum phase latency vs record size (ms)");
  // Measured just below each size's capacity so queueing does not swamp the
  // phase structure (the paper's breakdown is per-transaction work).
  printf("%-8s %16s %22s\n", "size", "proposal wait", "exec+consensus+commit");
  for (size_t size : kSizes) {
    World w;
    auto quorum = MakeQuorum(&w, 5);
    workload::YcsbConfig wcfg;
    wcfg.record_size = size;
    double arrival = 0.7 * quorum_runs[size].throughput_tps;
    auto m = RunYcsb(&w, quorum.get(), wcfg, scale, 0, arrival);
    printf("%6zuB %14.0fms %20.0fms\n", size,
           m.phase_us("proposal").Mean() / 1000.0,
           m.phase_us("consensus+commit").Mean() / 1000.0);
  }
  printf("(modeled per-record MPT reconstruction: 10B=%.0fus, 5000B=%.0fus "
         "— paper: 56us -> 2.5ms; fast path: 5000B=%.0fus)\n",
         sim::CostModel{}.MptUpdateCost(10),
         sim::CostModel{}.MptUpdateCost(5000),
         sim::CostModel{}.MptUpdateCostFast(5000));
}

}  // namespace
}  // namespace dicho::bench

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--quick") == 0) quick = true;
  }
  dicho::bench::Run(quick);
  return 0;
}
