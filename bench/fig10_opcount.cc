// Reproduces Fig. 10: throughput and abort rate as operations per
// transaction grow (1..10), with the *total transaction payload held at
// 1000 bytes* (record size shrinks as ops grow — paper 5.3.2).
//
// Paper shapes: TiDB drops to ~32% of its single-op throughput (more
// conflicts + wider 2PC fan-out), aborting up to ~27% on write-write
// conflicts; Fabric's aborts climb steeply (~87%: inconsistent endorsements
// + read-write conflicts); Quorum is roughly flat (serial; fixed payload).

#include "bench_util.h"

namespace dicho::bench {
namespace {

void Run() {
  PrintHeader("Fig 10: ops per txn (payload fixed at 1000 B)");
  const int kOps[] = {1, 2, 4, 6, 8, 10};
  printf("%-8s %-6s", "system", "");
  for (int ops : kOps) printf("   ops=%-2d", ops);
  printf("\n");

  BenchScale scale;
  // Multi-key conflict probability scales with in-flight-keys/population;
  // use a larger population (the paper used 100K) so ops=10 is not
  // conflict-saturated.
  scale.record_count = 50000;
  scale.measure = 10 * sim::kSec;

  auto sweep = [&](const char* name, auto make, double arrival,
                   bool print_reasons) {
    printf("%-8s %-6s", name, "tps");
    std::vector<workload::RunMetrics> all;
    for (int ops : kOps) {
      World w;
      auto system = make(&w);
      workload::YcsbConfig wcfg;
      wcfg.record_size = 1000;
      wcfg.ops_per_txn = ops;
      wcfg.fix_txn_size = true;
      wcfg.theta = 0.0;
      auto m = RunYcsb(&w, system.get(), wcfg, scale, 0, arrival);
      printf(" %8.0f", m.throughput_tps);
      fflush(stdout);
      all.push_back(std::move(m));
    }
    printf("\n%-8s %-6s", "", "abort");
    for (auto& m : all) printf(" %7.1f%%", m.AbortRate() * 100);
    printf("\n");
    if (print_reasons && !all.empty()) {
      auto& last = all.back();
      uint64_t inconsistent =
          last.aborts_by_reason[core::AbortReason::kInconsistentEndorsement];
      uint64_t rw = last.aborts_by_reason[core::AbortReason::kReadConflict];
      uint64_t total = inconsistent + rw;
      if (total > 0) {
        printf("%-8s %-6s at 10 ops: %.0f%% inconsistent-endorsement, "
               "%.0f%% read-write conflict\n",
               "", "cause", 100.0 * inconsistent / total, 100.0 * rw / total);
      }
    }
  };

  sweep("tidb", [](World* w) { return MakeTidb(w, 5, 5); }, 0, false);
  sweep("fabric", [](World* w) { return MakeFabric(w, 5); }, 1300, true);
  sweep("etcd-1op",
        [](World* w) { return MakeEtcd(w, 5); }, 0, false);
  sweep("quorum", [](World* w) { return MakeQuorum(w, 5); }, 280, false);
  printf("(etcd row meaningful only at ops=1 — no multi-op transactions)\n");
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
