// Ablation: block interval (batching window) in Quorum. Larger blocks
// amortize consensus but stretch latency; tiny intervals waste consensus
// rounds. The serial-execution bound caps throughput regardless — the
// taxonomy's point that consensus is not Quorum's bottleneck.

#include "bench_util.h"

namespace dicho::bench {
namespace {

void Run() {
  PrintHeader("Ablation: Quorum block interval (uniform 1KB updates)");
  printf("%-12s %10s %16s\n", "interval", "tps", "p50 latency");
  BenchScale scale;
  scale.record_count = 10000;
  scale.measure = 10 * sim::kSec;
  workload::YcsbConfig wcfg;
  wcfg.record_size = 1000;

  for (sim::Time interval :
       {50 * sim::kMs, 200 * sim::kMs, 800 * sim::kMs, 3200 * sim::kMs}) {
    World w;
    systems::QuorumConfig config;
    config.num_nodes = 5;
    config.block_interval = interval;
    auto quorum = std::make_unique<systems::QuorumSystem>(&w.sim, &w.net,
                                                          &w.costs, config);
    quorum->Start();
    w.sim.RunFor(1 * sim::kSec);
    auto m = RunYcsb(&w, quorum.get(), wcfg, scale, 0, /*arrival=*/280);
    printf("%9.0fms %8.0f %13.0fms\n", interval / sim::kMs, m.throughput_tps,
           m.txn_latency_us.Percentile(50) / 1000.0);
    fflush(stdout);
  }
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
