#include "consensus/pbft.h"

#include <algorithm>
#include <cassert>

#include "lifecycle/catchup.h"
#include "obs/trace.h"

namespace dicho::consensus {

namespace {
constexpr uint64_t kCtrlMsgBytes = 160;  // header + digest + signature

std::string DigestOf(const std::string& cmd) {
  return crypto::DigestBytes(crypto::Sha256Of(cmd));
}

// Fixed-width big-endian sequence key: chunk entries sort in seq order.
std::string SeqKey(uint64_t seq) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(seq & 0xff);
    seq >>= 8;
  }
  return std::string(buf, 8);
}

uint64_t SeqFromKey(const std::string& key) {
  uint64_t seq = 0;
  for (char c : key) seq = (seq << 8) | static_cast<unsigned char>(c);
  return seq;
}
}  // namespace

BftNode::BftNode(sim::Simulator* sim, sim::SimNetwork* net,
                 const sim::CostModel* costs, NodeId id,
                 std::vector<NodeId> all, BftConfig config, ApplyFn apply)
    : sim_(sim),
      net_(net),
      costs_(costs),
      id_(id),
      all_(std::move(all)),
      config_(config),
      apply_(std::move(apply)),
      cpu_(sim) {
  std::sort(all_.begin(), all_.end());
}

void BftNode::Start() {}

void BftNode::Charge(std::function<void()> fn) {
  // Verify the signature on the incoming message, then process. The O(n^2)
  // signed traffic per instance is charged here.
  cpu_.Submit(costs_->sig_verify_us + costs_->msg_handling_us,
              [this, fn = std::move(fn)] {
                if (!crashed_) fn();
              });
}

void BftNode::Broadcast(uint64_t bytes,
                        std::function<void(BftNode*)> deliver) {
  for (NodeId peer : all_) {
    if (peer == id_) continue;
    BftNode* target = group_.at(peer);
    net_->Send(id_, peer, bytes, [target, deliver] {
      target->Charge([target, deliver] { deliver(target); });
    });
  }
  deliver(this);  // self-delivery, no network or signature cost
}

lifecycle::MembershipView BftNode::membership() const {
  lifecycle::MembershipView view;
  view.version = membership_version_;
  view.members = all_;
  return view;
}

void BftNode::SubmitConfigChange(const lifecycle::ConfigChange& cc,
                                 SubmitCallback cb) {
  if (crashed_ || retired_) {
    cb(Status::Unavailable("node unavailable"), 0);
    return;
  }
  bool present = std::binary_search(all_.begin(), all_.end(), cc.node);
  if ((cc.kind == lifecycle::ConfigChangeKind::kAddNode && present) ||
      (cc.kind == lifecycle::ConfigChangeKind::kRemoveNode && !present)) {
    cb(Status::InvalidArgument("config change is a no-op"), 0);
    return;
  }
  // Tag with the epoch so the primary's digest dedup never confuses a
  // re-add with an earlier identical change (add 5 / rm 5 / add 5).
  std::string cmd = lifecycle::FormatConfigChange(cc) + " @" +
                    std::to_string(membership_version_);
  Submit(std::move(cmd), std::move(cb));
}

void BftNode::Submit(std::string cmd, SubmitCallback cb) {
  if (crashed_ || retired_) {
    cb(Status::Unavailable("node crashed"), 0);
    return;
  }
  std::string digest = DigestOf(cmd);
  pending_subs_[digest] = PendingSubmission{cmd, std::move(cb)};
  ArmViewChangeTimer();
  // PBFT clients broadcast requests to every replica; each replica monitors
  // the request for execution and starts a view change if the primary stalls
  // on it. Without this, only the submitting replica would ever time out and
  // a single view-change vote cannot reach quorum.
  for (NodeId peer : all_) {
    if (peer == id_) continue;
    BftNode* target = group_.at(peer);
    net_->Send(id_, peer, kCtrlMsgBytes + cmd.size(), [target, cmd] {
      target->Charge([target, cmd] { target->NoteRequest(cmd); });
    });
  }
  ForwardToPrimary(std::move(cmd));
}

void BftNode::NoteRequest(const std::string& cmd) {
  if (retired_) return;
  std::string digest = DigestOf(cmd);
  if (executed_digests_.count(digest) > 0) return;
  if (pending_subs_.count(digest) > 0) return;
  pending_subs_[digest] = PendingSubmission{cmd, nullptr};
  ArmViewChangeTimer();
  if (IsPrimary()) PrimaryPropose(cmd);
}

void BftNode::ForwardToPrimary(std::string cmd) {
  if (IsPrimary()) {
    PrimaryPropose(std::move(cmd));
    return;
  }
  NodeId p = primary();
  BftNode* target = group_.at(p);
  net_->Send(id_, p, kCtrlMsgBytes + cmd.size(),
             [target, cmd = std::move(cmd)]() mutable {
               target->Charge([target, cmd = std::move(cmd)]() mutable {
                 if (target->IsPrimary()) target->PrimaryPropose(std::move(cmd));
               });
             });
}

void BftNode::PrimaryPropose(std::string cmd) {
  if (retired_) return;
  std::string cmd_digest = DigestOf(cmd);
  if (proposed_digests_.count(cmd_digest) > 0 ||
      executed_digests_.count(cmd_digest) > 0) {
    return;  // duplicate relay of a request already in flight
  }
  if (in_view_change_) {
    queued_.emplace_back(std::move(cmd));
    return;
  }
  proposed_digests_.insert(cmd_digest);
  uint64_t seq = next_seq_++;
  uint64_t view = view_;
  std::string digest = DigestOf(cmd);

  if (equivocate_) {
    // Byzantine primary: conflicting proposals to the two halves.
    std::string evil_cmd = cmd + "#equivocation";
    size_t half = all_.size() / 2;
    size_t idx = 0;
    for (NodeId peer : all_) {
      if (peer == id_) continue;
      const std::string& c = (idx < half) ? cmd : evil_cmd;
      std::string d = DigestOf(c);
      BftNode* target = group_.at(peer);
      net_->Send(id_, peer, kCtrlMsgBytes + c.size(),
                 [target, me = id_, view, seq, d, c] {
                   target->Charge([target, me, view, seq, d, c] {
                     target->HandlePrePrepare(me, view, seq, d, c);
                   });
                 });
      idx++;
    }
    HandlePrePrepare(id_, view, seq, digest, cmd);
    return;
  }

  Broadcast(kCtrlMsgBytes + cmd.size(),
            [me = id_, view, seq, digest, cmd](BftNode* n) {
              n->HandlePrePrepare(me, view, seq, digest, cmd);
            });
}

void BftNode::HandlePrePrepare(NodeId from, uint64_t view, uint64_t seq,
                               const std::string& digest,
                               const std::string& cmd) {
  if (crashed_ || view != view_ || in_view_change_) return;
  if (from != primary()) return;  // only the primary proposes
  Instance& inst = instances_[seq];
  if (!inst.digest.empty() && inst.view == view) return;  // first one wins
  // A locally-committed slot is final; a later view's re-proposal of the
  // same request is redundant and a conflicting one must not clobber it.
  if (inst.committed) return;
  inst.cmd = cmd;
  inst.digest = digest;
  inst.view = view;
  inst.started = sim_->Now();

  std::string vote_digest = digest;
  if (equivocate_) vote_digest = DigestOf(digest + "#garbage");
  Broadcast(kCtrlMsgBytes, [me = id_, view, seq, vote_digest](BftNode* n) {
    n->HandlePrepare(me, view, seq, vote_digest);
  });
  // Prepares/commits may have raced ahead of this pre-prepare.
  CheckProgress(view, seq);
}

void BftNode::CheckProgress(uint64_t view, uint64_t seq) {
  Instance& inst = instances_[seq];
  if (inst.digest.empty() || inst.view != view) return;
  const size_t need_prepares =
      config_.unsafe_skip_prepare_quorum ? 0 : 2 * f();
  const size_t need_commits = config_.unsafe_skip_prepare_quorum ? 1 : Quorum();
  if (!inst.prepared && inst.prepares[inst.digest].size() >= need_prepares) {
    inst.prepared = true;
    prepared_backlog_[seq] = inst.cmd;
    if (!inst.sent_commit) {
      inst.sent_commit = true;
      std::string digest = inst.digest;
      Broadcast(kCtrlMsgBytes, [me = id_, view, seq, digest](BftNode* n) {
        n->HandleCommit(me, view, seq, digest);
      });
    }
  }
  if (!inst.committed && inst.commits[inst.digest].size() >= need_commits) {
    inst.committed = true;
    MaybeExecute();
  }
}

void BftNode::HandlePrepare(NodeId from, uint64_t view, uint64_t seq,
                            const std::string& digest) {
  if (crashed_ || view != view_ || in_view_change_) return;
  Instance& inst = instances_[seq];
  inst.prepares[digest].insert(from);
  CheckProgress(view, seq);
}

void BftNode::HandleCommit(NodeId from, uint64_t view, uint64_t seq,
                           const std::string& digest) {
  if (crashed_ || view != view_ || in_view_change_) return;
  Instance& inst = instances_[seq];
  inst.commits[digest].insert(from);
  CheckProgress(view, seq);
}

void BftNode::ExecuteCommand(uint64_t seq, const std::string& cmd) {
  executed_log_[seq] = cmd;
  prepared_backlog_.erase(seq);
  if (cmd.empty()) return;  // null fill: advances seq, applies nothing
  if (lifecycle::IsConfigChangeCommand(cmd)) ApplyReconfig(cmd);
  std::string digest = DigestOf(cmd);
  executed_digests_.insert(digest);
  if (apply_) apply_(seq, cmd);
  auto sub = pending_subs_.find(digest);
  if (sub != pending_subs_.end()) {
    if (sub->second.cb) sub->second.cb(Status::Ok(), seq);
    pending_subs_.erase(sub);
  }
}

void BftNode::MaybeExecute() {
  while (true) {
    auto it = instances_.find(last_executed_ + 1);
    if (it == instances_.end() || !it->second.committed) break;
    uint64_t seq = it->first;
    Instance& inst = it->second;
    last_executed_ = seq;
    if (inst.started > 0) {
      obs::EmitSpan(sim_, "pbft.seq", "consensus", id_, seq, inst.started,
                    sim_->Now());
    }
    ExecuteCommand(seq, inst.cmd);
  }
  MaybeCheckpoint();
}

void BftNode::MaybeCheckpoint() {
  if (config_.checkpoint_interval == 0) return;
  while (last_checkpoint_.anchor + config_.checkpoint_interval <=
         last_executed_) {
    uint64_t lo = last_checkpoint_.anchor + 1;
    uint64_t hi = last_checkpoint_.anchor + config_.checkpoint_interval;
    std::vector<std::pair<std::string, std::string>> entries;
    entries.reserve(static_cast<size_t>(hi - lo + 1));
    for (uint64_t seq = lo; seq <= hi; seq++) {
      auto it = executed_log_.find(seq);
      if (it == executed_log_.end()) return;  // defensive: execution is
                                              // sequential, gaps can't occur
      entries.emplace_back(SeqKey(seq), it->second);
    }
    std::string bytes = lifecycle::EncodeChunk(entries);
    crypto::Digest digest = crypto::Sha256Of(bytes);
    checkpoint_chunks_.Put(digest, std::move(bytes));
    last_checkpoint_.chunks.push_back(digest);
    last_checkpoint_.anchor = hi;
    last_checkpoint_.root = lifecycle::ManifestRoot(last_checkpoint_);
  }
}

void BftNode::ApplyReconfig(const std::string& cmd) {
  lifecycle::ConfigChange cc;
  if (!lifecycle::ParseConfigChange(cmd, &cc)) return;
  if (cc.kind == lifecycle::ConfigChangeKind::kAddNode) {
    if (!std::binary_search(all_.begin(), all_.end(), cc.node)) {
      all_.insert(std::lower_bound(all_.begin(), all_.end(), cc.node),
                  cc.node);
    }
  } else {
    auto it = std::lower_bound(all_.begin(), all_.end(), cc.node);
    if (it != all_.end() && *it == cc.node) all_.erase(it);
    if (cc.node == id_) {
      // Removed: retire. Keep the executed log + checkpoints to answer
      // catch-up requests, but never propose, vote, or time out again.
      retired_ = true;
      timer_epoch_++;
      timer_armed_ = false;
      in_view_change_ = false;
      for (auto& [digest, sub] : pending_subs_) {
        if (sub.cb) sub.cb(Status::Unavailable("removed from group"), 0);
      }
      pending_subs_.clear();
    }
  }
  membership_version_++;
  if (on_config_change_) on_config_change_(membership());
}

void BftNode::RequestCatchup() {
  if (crashed_) return;
  uint64_t after = last_executed_;
  Broadcast(kCtrlMsgBytes, [me = id_, after](BftNode* n) {
    n->HandleCatchupRequest(me, after);
  });
}

void BftNode::HandleCatchupRequest(NodeId from, uint64_t after_seq) {
  if (crashed_ || from == id_ || last_executed_ <= after_seq) return;
  auto target_it = group_.find(from);
  if (target_it == group_.end()) return;
  // Everything at or below our checkpoint anchor travels as digest-verified
  // chunks; only the tail past max(requester frontier, anchor) is shipped
  // as per-entry votes.
  std::map<uint64_t, std::string> tail;
  uint64_t bytes = kCtrlMsgBytes + last_checkpoint_.WireBytes();
  uint64_t start = std::max(after_seq, last_checkpoint_.anchor);
  for (uint64_t seq = start + 1; seq <= last_executed_; seq++) {
    auto it = executed_log_.find(seq);
    if (it == executed_log_.end() || tail.size() >= 64) break;
    tail[seq] = it->second;
    bytes += 16 + it->second.size();
  }
  BftNode* target = target_it->second;
  net_->Send(id_, from, bytes,
             [target, me = id_, view = view_, manifest = last_checkpoint_,
              tail] {
               target->Charge([target, me, view, manifest, tail] {
                 target->HandleCatchupReply(me, view, manifest, tail);
               });
             });
}

void BftNode::HandleCatchupReply(NodeId from, uint64_t peer_view,
                                 const lifecycle::SnapshotManifest& manifest,
                                 const std::map<uint64_t, std::string>& entries) {
  if (crashed_) return;
  // View adoption (a joiner starts at view 0): f+1 replicas claiming a
  // higher view prove at least one correct replica is there.
  if (peer_view > view_) {
    view_claims_[peer_view].insert(from);
    for (auto it = view_claims_.rbegin(); it != view_claims_.rend(); ++it) {
      if (it->first > view_ && it->second.size() >= f() + 1) {
        view_ = it->first;
        in_view_change_ = false;
        timer_epoch_++;
        timer_armed_ = false;
        if (!pending_subs_.empty()) ArmViewChangeTimer();
        break;
      }
    }
    view_claims_.erase(view_claims_.begin(),
                       view_claims_.upper_bound(view_));
  }
  // Checkpoint adoption: f+1 matching (anchor, root) votes make the
  // manifest trustworthy; chunk bodies then verify against its digests.
  if (manifest.anchor > last_executed_ && !manifest.chunks.empty()) {
    auto& vote =
        checkpoint_votes_[manifest.anchor][crypto::DigestBytes(manifest.root)];
    vote.voters.insert(from);
    vote.manifest = manifest;
    if (vote.voters.size() >= f() + 1 &&
        manifest.anchor > pending_checkpoint_.anchor) {
      pending_checkpoint_ = vote.manifest;
      pending_checkpoint_source_ = *vote.voters.begin();
      lifecycle::DeltaPlan plan =
          lifecycle::ComputeDelta(pending_checkpoint_, checkpoint_chunks_);
      catchup_chunks_reused_ += plan.reused;
      if (plan.need.empty()) {
        AdoptCheckpoint();
      } else {
        auto target_it = group_.find(pending_checkpoint_source_);
        if (target_it != group_.end()) {
          BftNode* target = target_it->second;
          uint64_t bytes = kCtrlMsgBytes + 32ull * plan.need.size();
          net_->Send(id_, pending_checkpoint_source_, bytes,
                     [target, me = id_, need = std::move(plan.need)] {
                       target->Charge([target, me, need] {
                         target->HandleChunkRequest(me, need);
                       });
                     });
        }
      }
    }
  }
  AdoptTailEntries(from, entries);
}

void BftNode::HandleChunkRequest(NodeId from,
                                 const std::vector<crypto::Digest>& digests) {
  if (crashed_ || from == id_) return;
  auto target_it = group_.find(from);
  if (target_it == group_.end()) return;
  std::vector<std::pair<crypto::Digest, std::string>> chunks;
  uint64_t bytes = kCtrlMsgBytes;
  for (const auto& d : digests) {
    const std::string* body = checkpoint_chunks_.Get(d);
    if (body == nullptr) continue;
    bytes += 32 + body->size();
    chunks.emplace_back(d, *body);
  }
  if (chunks.empty()) return;
  BftNode* target = target_it->second;
  net_->Send(id_, from, bytes, [target, me = id_, chunks] {
    target->Charge(
        [target, me, chunks] { target->HandleChunkReply(me, chunks); });
  });
}

void BftNode::HandleChunkReply(
    NodeId /*from*/,
    const std::vector<std::pair<crypto::Digest, std::string>>& chunks) {
  if (crashed_) return;
  for (const auto& [digest, body] : chunks) {
    if (crypto::Sha256Of(body) != digest) continue;  // Byzantine sender
    if (checkpoint_chunks_.Put(digest, body)) catchup_chunks_fetched_++;
  }
  if (pending_checkpoint_.anchor > last_executed_) {
    lifecycle::DeltaPlan plan =
        lifecycle::ComputeDelta(pending_checkpoint_, checkpoint_chunks_);
    if (plan.need.empty()) AdoptCheckpoint();
  }
}

void BftNode::AdoptCheckpoint() {
  const lifecycle::SnapshotManifest m = pending_checkpoint_;
  if (m.anchor <= last_executed_) return;
  std::map<uint64_t, std::string> entries;
  for (const auto& d : m.chunks) {
    const std::string* body = checkpoint_chunks_.Get(d);
    if (body == nullptr) return;  // still incomplete
    std::vector<std::pair<std::string, std::string>> pairs;
    if (!lifecycle::DecodeChunk(*body, &pairs)) return;
    for (auto& [key, cmd] : pairs) entries[SeqFromKey(key)] = std::move(cmd);
  }
  for (uint64_t seq = last_executed_ + 1; seq <= m.anchor; seq++) {
    if (entries.find(seq) == entries.end()) return;  // malformed: refuse
  }
  for (uint64_t seq = last_executed_ + 1; seq <= m.anchor; seq++) {
    last_executed_ = seq;
    ++catchup_entries_adopted_;
    ExecuteCommand(seq, entries[seq]);
  }
  last_checkpoint_ = m;
  transfer_votes_.erase(transfer_votes_.begin(),
                        transfer_votes_.upper_bound(last_executed_));
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.upper_bound(last_executed_));
  // The gap may have closed onto locally-committed instances.
  MaybeExecute();
}

bool BftNode::InstallCheckpoint(const lifecycle::SnapshotManifest& manifest,
                                const lifecycle::ChunkStore& chunks) {
  if (crashed_) return false;
  if (manifest.anchor <= last_executed_) return true;
  for (const auto& d : manifest.chunks) {
    const std::string* body = chunks.Get(d);
    if (body == nullptr || crypto::Sha256Of(*body) != d) return false;
    checkpoint_chunks_.Put(d, *body);
  }
  pending_checkpoint_ = manifest;
  AdoptCheckpoint();
  return last_executed_ >= manifest.anchor;
}

void BftNode::AdoptTailEntries(NodeId from,
                               const std::map<uint64_t, std::string>& entries) {
  transfer_votes_.erase(transfer_votes_.begin(),
                        transfer_votes_.upper_bound(last_executed_));
  for (const auto& [seq, cmd] : entries) {
    if (seq > last_executed_) transfer_votes_[seq][cmd].insert(from);
  }
  bool advanced = false;
  while (true) {
    auto it = transfer_votes_.find(last_executed_ + 1);
    if (it == transfer_votes_.end()) break;
    const std::string* winner = nullptr;
    for (const auto& [cmd, senders] : it->second) {
      if (senders.size() >= f() + 1) {
        winner = &cmd;
        break;
      }
    }
    if (winner == nullptr) break;
    uint64_t seq = it->first;
    std::string cmd = *winner;
    transfer_votes_.erase(it);
    last_executed_ = seq;
    ++catchup_entries_adopted_;
    advanced = true;
    ExecuteCommand(seq, cmd);
  }
  // The gap may have closed onto locally-committed instances.
  if (advanced) MaybeExecute();
}

void BftNode::ArmViewChangeTimer() {
  // Keep the earliest outstanding deadline: re-arming on every new request
  // would push the timeout back forever under continuous load, so a faulty
  // primary would never be voted out (a replica only needs *some* pending
  // request to stay unexecuted for a full window).
  if (timer_armed_) return;
  timer_armed_ = true;
  uint64_t epoch = ++timer_epoch_;
  uint64_t executed_snapshot = last_executed_;
  sim_->Schedule(config_.view_change_timeout, [this, epoch,
                                               executed_snapshot] {
    if (epoch != timer_epoch_) return;  // superseded (view entered / crash)
    timer_armed_ = false;
    if (crashed_ || pending_subs_.empty()) return;
    if (last_executed_ > executed_snapshot) {
      // Progress is being made; re-arm and keep waiting.
      ArmViewChangeTimer();
      return;
    }
    // We may be stalled on a sequence gap the rest of the group already
    // executed past (missed new-view pre-prepare) rather than on a faulty
    // primary — try to catch up while also rotating the view.
    RequestCatchup();
    StartViewChange(view_ + 1);
  });
}

void BftNode::StartViewChange(uint64_t new_view) {
  if (new_view <= view_) return;
  // Never regress to a lower target; re-voting the same target is allowed
  // (the timer path re-broadcasts, which doubles as retransmission when the
  // original votes were dropped).
  if (in_view_change_ && new_view < view_change_target_) return;
  in_view_change_ = true;
  view_change_target_ = new_view;
  view_changes_++;
  std::map<uint64_t, std::string> prepared;
  for (const auto& [seq, cmd] : prepared_backlog_) {
    if (seq > last_executed_) prepared[seq] = cmd;
  }
  Broadcast(kCtrlMsgBytes + 64 * prepared.size(),
            [me = id_, new_view, prepared](BftNode* n) {
              n->HandleViewChange(me, new_view, prepared);
            });
}

void BftNode::HandleViewChange(
    NodeId from, uint64_t new_view,
    const std::map<uint64_t, std::string>& prepared_cmds) {
  if (crashed_ || new_view <= view_) return;
  view_change_votes_[new_view].insert(from);
  auto& merged = view_change_prepared_[new_view];
  for (const auto& [seq, cmd] : prepared_cmds) {
    merged.emplace(seq, cmd);  // first report wins; honest reports agree
  }
  if (view_change_votes_[new_view].size() >= Quorum()) {
    EnterView(new_view);
  } else if (view_change_votes_[new_view].size() >= f() + 1 &&
             (!in_view_change_ || new_view > view_change_target_)) {
    // Join an in-progress view change (avoids waiting for our own timer).
    // A replica stuck in an *abandoned* lower view change must still join a
    // higher one — otherwise nodes that missed a view's quorum keep voting
    // for a view the rest of the group has moved past, the group splinters
    // across views, and no future view change can ever reach 2f+1 votes (a
    // permanent wedge the fuzzer found under loss bursts plus churn).
    StartViewChange(new_view);
  }
}

void BftNode::EnterView(uint64_t new_view) {
  view_ = new_view;
  in_view_change_ = false;
  timer_epoch_++;  // cancel stale timers
  timer_armed_ = false;
  if (!pending_subs_.empty()) ArmViewChangeTimer();

  const auto merged = view_change_prepared_[new_view];

  if (IsPrimary()) {
    // The new view's sequence numbering restarts right after everything that
    // can possibly have committed: executed/committed slots plus the merged
    // prepared set. Slots above that were never prepared at a quorum (or
    // they would be in `merged`), so nothing committed there and their
    // numbers are free for reuse. Deriving next_seq_ from the raw local
    // instance max instead inflates the sequence space every view — each
    // re-proposal round appends at ever-higher seqs, the growing gap must
    // be null-filled and executed sequentially, and the execution frontier
    // never catches the proposal frontier (a livelock the fuzzer found
    // under an equivocating primary plus churn).
    uint64_t max_seq = last_executed_;
    for (const auto& [seq, inst] : instances_) {
      if (inst.committed) max_seq = std::max(max_seq, seq);
    }
    for (const auto& [seq, cmd] : merged) max_seq = std::max(max_seq, seq);
    next_seq_ = max_seq + 1;
    // Re-propose prepared-but-unexecuted requests at their original seqs,
    // and record their digests so a client retry or pending-request
    // re-forward cannot allocate the same request a second, higher seq.
    for (const auto& [seq, cmd] : merged) {
      proposed_digests_.insert(DigestOf(cmd));
      if (seq <= last_executed_) continue;
      uint64_t view = view_;
      std::string digest = DigestOf(cmd);
      // Reset the instance for the new view.
      instances_[seq] = Instance{};
      Broadcast(kCtrlMsgBytes + cmd.size(),
                [me = id_, view, seq, digest, cmd](BftNode* n) {
                  n->HandlePrePrepare(me, view, seq, digest, cmd);
                });
    }
    // Fill the sequence gaps the old view left (pre-prepares that never
    // reached a prepare quorum, e.g. under an equivocating primary) with
    // null requests — PBFT's new-view rule. Execution is strictly
    // sequential, so an unfilled gap would wedge every seq above it
    // forever. Safe because anything that committed anywhere is prepared
    // at 2f+1 replicas and therefore carried in `merged`.
    for (uint64_t seq = last_executed_ + 1; seq < next_seq_; seq++) {
      if (merged.count(seq) > 0) continue;
      auto inst_it = instances_.find(seq);
      if (inst_it != instances_.end() && inst_it->second.committed) continue;
      uint64_t view = view_;
      std::string digest = DigestOf("");
      instances_[seq] = Instance{};
      Broadcast(kCtrlMsgBytes, [me = id_, view, seq, digest](BftNode* n) {
        n->HandlePrePrepare(me, view, seq, digest, "");
      });
    }
    // Drain queued and pending submissions.
    auto queued = std::move(queued_);
    queued_.clear();
    for (auto& cmd : queued) PrimaryPropose(std::move(cmd));
  }
  // Clear per-view instance state for unexecuted seqs so the new view's
  // pre-prepares are accepted cleanly.
  for (auto& [seq, inst] : instances_) {
    if (seq > last_executed_ && inst.view < new_view && !inst.committed) {
      inst = Instance{};
    }
  }
  // Re-forward pending requests to the new primary (it dedups by digest).
  // Snapshot the commands first: if we are the primary the forward proposes
  // synchronously, and a proposal that reaches execution in the same call
  // chain erases its entry from pending_subs_ mid-iteration.
  std::vector<std::string> pending;
  pending.reserve(pending_subs_.size());
  for (const auto& [digest, sub] : pending_subs_) pending.push_back(sub.cmd);
  for (std::string& cmd : pending) ForwardToPrimary(std::move(cmd));
}

void BftNode::Crash() {
  crashed_ = true;
  net_->SetNodeDown(id_, true);
  for (auto& [digest, sub] : pending_subs_) {
    // NoteRequest entries carry no client callback (replicas tracking a
    // request they saw relayed), so cb may be empty here.
    if (sub.cb) sub.cb(Status::Unavailable("node crashed"), 0);
  }
  pending_subs_.clear();
  timer_epoch_++;  // cancel outstanding view-change timers
  timer_armed_ = false;
  cpu_.ResetBacklog();
}

void BftNode::Restart() {
  crashed_ = false;
  net_->SetNodeDown(id_, false);
  in_view_change_ = false;
  // View and executed log persist (stable storage); timers rearm on demand.
}

std::unique_ptr<BftCluster> BftCluster::Create(
    sim::Simulator* sim, sim::SimNetwork* net, const sim::CostModel* costs,
    const std::vector<NodeId>& ids, BftConfig config,
    std::function<void(NodeId, uint64_t, const std::string&)> apply) {
  auto cluster = std::unique_ptr<BftCluster>(new BftCluster());
  cluster->sim_ = sim;
  cluster->net_ = net;
  cluster->costs_ = costs;
  cluster->config_ = config;
  cluster->apply_ = apply;
  for (NodeId id : ids) {
    BftNode::ApplyFn node_apply;
    if (apply) {
      node_apply = [apply, id](uint64_t seq, const std::string& cmd) {
        apply(id, seq, cmd);
      };
    }
    // Construct on the node's partition (per-partition RNG/queue when the
    // world is partitioned; behavior-neutral otherwise).
    dicho::sim::Simulator::PartitionScope scope(sim, sim->PartitionOfNode(id));
    cluster->nodes_[id] = std::make_unique<BftNode>(
        sim, net, costs, id, ids, config, std::move(node_apply));
  }
  std::map<NodeId, BftNode*> group;
  for (auto& [id, node] : cluster->nodes_) group[id] = node.get();
  for (auto& [id, node] : cluster->nodes_) node->SetGroup(group);
  return cluster;
}

BftNode* BftCluster::AddNode(NodeId id, const std::vector<NodeId>& all_ids) {
  auto existing = nodes_.find(id);
  if (existing != nodes_.end()) return existing->second.get();
  BftNode::ApplyFn node_apply;
  if (apply_) {
    auto apply = apply_;
    node_apply = [apply, id](uint64_t seq, const std::string& cmd) {
      apply(id, seq, cmd);
    };
  }
  {
    dicho::sim::Simulator::PartitionScope scope(sim_,
                                                sim_->PartitionOfNode(id));
    nodes_[id] = std::make_unique<BftNode>(sim_, net_, costs_, id, all_ids,
                                           config_, std::move(node_apply));
  }
  // Rewire every node's delivery map so peers can answer the joiner and
  // the joiner can reach the group. The new node is NOT started: callers
  // drive catch-up (and the committed "#cfg add" change) explicitly.
  std::map<NodeId, BftNode*> group;
  for (auto& [nid, node] : nodes_) group[nid] = node.get();
  for (auto& [nid, node] : nodes_) node->SetGroup(group);
  return nodes_[id].get();
}

BftNode* BftCluster::primary() {
  for (auto& [id, node] : nodes_) {
    if (node->IsPrimary()) return node.get();
  }
  return nullptr;
}

std::vector<BftNode*> BftCluster::all() {
  std::vector<BftNode*> out;
  for (auto& [id, node] : nodes_) out.push_back(node.get());
  return out;
}

void BftCluster::StartAll() {
  for (auto& [id, node] : nodes_) {
    dicho::sim::Simulator::PartitionScope scope(sim_,
                                                sim_->PartitionOfNode(id));
    node->Start();
  }
}

}  // namespace dicho::consensus
