// Ablation on the real storage engine: bloom filters on/off in the LSM
// tree. Measures actual table probes avoided and wall-clock for a
// read-heavy workload over a multi-level database. (This bench exercises
// real data structures — no simulation.)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "storage/env.h"
#include "storage/lsm/db.h"

namespace dicho::bench {
namespace {

void BuildDb(storage::lsm::LsmDb* db, int keys) {
  Rng rng(7);
  for (int i = 0; i < keys; i++) {
    std::string key = "key" + std::to_string(i);
    db->Put(key, rng.Bytes(100));
  }
  db->Flush();
}

void BM_LsmGet(benchmark::State& state) {
  bool bloom = state.range(0) != 0;
  auto env = storage::NewMemEnv();
  storage::lsm::LsmOptions options;
  options.env = env.get();
  options.path = "db";
  options.write_buffer_size = 32 * 1024;  // many tables
  options.level_base_bytes = 128 * 1024;
  options.bloom_bits_per_key = bloom ? 10 : 0;
  std::unique_ptr<storage::lsm::LsmDb> db;
  if (!storage::lsm::LsmDb::Open(options, &db).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  const int kKeys = 20000;
  BuildDb(db.get(), kKeys);

  Rng rng(11);
  for (auto _ : state) {
    // Half present, half absent: absent keys are where blooms pay off.
    std::string key = rng.Bernoulli(0.5)
                          ? "key" + std::to_string(rng.Uniform(kKeys))
                          : "absent" + std::to_string(rng.Uniform(kKeys));
    std::string value;
    benchmark::DoNotOptimize(db->Get(key, &value));
  }
  state.counters["table_probes/get"] =
      static_cast<double>(db->stats().table_probes) /
      static_cast<double>(db->stats().gets);
  state.counters["bloom_skips"] = static_cast<double>(db->stats().bloom_skips);
}

BENCHMARK(BM_LsmGet)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dicho::bench

BENCHMARK_MAIN();
