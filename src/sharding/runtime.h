#ifndef DICHO_SHARDING_RUNTIME_H_
#define DICHO_SHARDING_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adt/mpt.h"
#include "contract/contract.h"
#include "core/types.h"
#include "crypto/sha256.h"
#include "sharding/partition.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/runtime/elasticity.h"
#include "systems/runtime/mempool.h"
#include "systems/runtime/runtime.h"
#include "systems/runtime/transport.h"
#include "txn/deterministic.h"

namespace dicho::sharding {

/// The layered cross-shard runtime (paper Section 3.4 meets Calvin):
///
///   Partitioner  ->  EpochSequencer  ->  ShardExecutor (x num_shards)
///
/// A global sequencing group (Raft or PBFT) cuts seed-deterministic epochs
/// of *whole-batch* transactions and fans each ordered epoch out to every
/// shard over exactly-once links. Each shard orders the epoch in its own
/// replication group, snapshots the pre-epoch values of the keys it owns,
/// forwards them once to every other active shard (the one-shot ReadForward
/// message), and then drives the deterministic conflict-layer scheduler
/// (txn/deterministic.h) over the batch — charging its CPU only for its own
/// slice's makespan. Because every active shard executes the same ordered
/// batch against the same forwarded base views, execution is bit-identical
/// across shards: there are no locks, no concurrency aborts, and no
/// prepare/decide round. Classic 2PC (sharding/two_pc.h, systems/ahl,
/// systems/spannerlike) remains one coordination *strategy* behind the same
/// Partitioner + ShardPlanner routing layer; the epoch path is the other.

/// Cumulative counters every sharded system reports through its routing
/// layer. `two_pc_rounds` counts prepare/decide coordination rounds — the
/// tax the epoch path structurally never pays (it stays 0 for harmonyshard
/// at every sweep point, which the Fig 14 bench asserts).
struct ShardingStats {
  uint64_t single_shard_txns = 0;
  uint64_t cross_shard_txns = 0;
  uint64_t two_pc_rounds = 0;     // prepare/decide waves (ahl, spannerlike)
  uint64_t read_forwards = 0;     // one-shot ReadForward messages sent
  uint64_t forward_retransmits = 0;
  uint64_t epochs_ordered = 0;    // epochs the sequencer fanned out
  uint64_t epochs_applied = 0;    // per-shard applies (sums over shards)
};

/// Where one transaction's static key set lands: the sorted distinct shard
/// list plus its keys grouped per shard. The routing decision every sharded
/// system makes, factored out of ahl/spannerlike's private copies.
struct TxnShardPlan {
  /// Sorted, de-duplicated static key set.
  std::vector<std::string> keys;
  /// Sorted distinct shards touching the transaction. Empty key set => {0}
  /// (keyless transactions home on shard 0).
  std::vector<uint32_t> shards;
  std::map<uint32_t, std::vector<std::string>> keys_by_shard;

  bool cross_shard() const { return shards.size() > 1; }
  /// The shard that owns the client-visible outcome (lowest involved id).
  uint32_t home() const { return shards.empty() ? 0 : shards.front(); }
};

/// Pure routing over a Partitioner — no simulator interaction, so planning
/// is free to run anywhere (client, sequencer, every shard) and always
/// agrees.
class ShardPlanner {
 public:
  explicit ShardPlanner(const Partitioner* partitioner)
      : partitioner_(partitioner) {}

  TxnShardPlan Plan(const core::TxnRequest& request) const;

  const Partitioner* partitioner() const { return partitioner_; }

 private:
  const Partitioner* partitioner_;
};

/// One ordered epoch: the sequencer's batch number plus the whole-batch
/// transaction list every shard receives (Calvin-style full dissemination —
/// inactive shards skip execution but still advance their epoch cursor, so
/// "applied on all shards or none" is the natural atomicity invariant).
struct EpochBatch {
  uint64_t number = 0;
  std::vector<core::TxnRequest> txns;

  std::string Serialize() const;
  static bool Deserialize(const std::string& data, EpochBatch* out);
  uint64_t ByteSize() const;
  /// Content digest (number + payloads) — the cross-shard order-agreement
  /// oracle the shard_epoch fuzz scenario compares.
  crypto::Digest Digest() const;
};

/// Exactly-once, in-order-retransmitted unicast between two fixed nodes on
/// the simulated network: sequence numbers, acks, periodic retransmit while
/// anything is unacked, and receiver-side dedup. Partitions and drop bursts
/// delay delivery; they can no longer lose it. Carries the sequencer's
/// epoch fan-out and the shard-to-shard ReadForward messages.
class ReliableLink {
 public:
  /// deliver(seq, payload) runs on the receiving node, exactly once per
  /// Send, in any order (receivers that need order buffer by content).
  using DeliverFn = std::function<void(uint64_t seq, const std::string&)>;

  ReliableLink(sim::Simulator* sim, sim::SimNetwork* net, sim::NodeId from,
               sim::NodeId to, DeliverFn deliver,
               sim::Time retry_interval = 30 * sim::kMs);

  void Send(std::string payload);

  uint64_t sent() const { return next_seq_; }
  uint64_t delivered() const { return delivered_count_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t acked() const { return acked_count_; }

 private:
  /// An unacked message with its individual retransmit clock. Per-message
  /// exponential backoff (doubling to 16x the base interval) keeps a
  /// congested egress queue from melting down: without it, any message
  /// whose delivery takes longer than the retry interval — routine for
  /// MB-sized epoch payloads behind a serializing NIC — would be
  /// re-enqueued every tick, and the duplicates themselves deepen the
  /// backlog they are reacting to.
  struct Pending {
    std::string payload;
    sim::Time next_due = 0;
    sim::Time interval = 0;
  };

  void Transmit(uint64_t seq, const std::string& payload);
  void ArmRetry();

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  sim::NodeId from_;
  sim::NodeId to_;
  sim::Time retry_interval_;
  DeliverFn deliver_;
  uint64_t next_seq_ = 0;
  std::map<uint64_t, Pending> unacked_;
  std::set<uint64_t> received_;  // receiver-side dedup
  uint64_t delivered_count_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t acked_count_ = 0;
  bool retry_armed_ = false;
};

/// The global sequencing layer: a Raft- or PBFT-replicated group that cuts
/// seed-deterministic epochs of whole-batch transactions on a fixed cadence
/// and surfaces each ordered batch exactly once (on the fixed distributor
/// replica, in commit order). It does not execute anything — execution is
/// the shards' job.
class EpochSequencer {
 public:
  struct Config {
    sim::NodeId base = 0;  // first node id of the sequencer span
    uint32_t num_nodes = 3;
    bool bft = false;
    sim::Time epoch_interval = 50 * sim::kMs;
    size_t max_epoch_txns = 500;
    uint64_t max_epoch_bytes = 1ull << 20;
    consensus::RaftConfig raft;
    consensus::BftConfig bft_config;
  };

  /// Fired on the distributor replica in commit order, once per epoch.
  using OrderedFn = std::function<void(EpochBatch batch)>;
  /// Fired as each transaction is pulled out of the mempool into an epoch
  /// (the kProposal -> kOrder boundary). May be null.
  using CutFn = std::function<void(const core::TxnRequest&)>;

  EpochSequencer(sim::Simulator* sim, sim::SimNetwork* net,
                 const sim::CostModel* costs, Config config,
                 core::StageGauges* gauges, CutFn on_cut, OrderedFn on_ordered);

  void Start();

  bool HasLeader() const;
  /// Current leader/primary — where clients send transactions.
  sim::NodeId EntryId() const;
  /// Fixed replica (index 0) that fans ordered epochs out to the shards.
  sim::NodeId DistributorId() const { return nodes_.id_of(0); }

  void Enqueue(core::TxnRequest request) { mempool_.Push(std::move(request)); }

  size_t mempool_depth() const { return mempool_.size(); }
  uint64_t epochs_cut() const { return epochs_cut_; }
  const std::vector<sim::NodeId>& node_ids() const { return nodes_.ids(); }

 private:
  void Tick();
  void CutAndOrder();
  void OnCommitted(size_t node_index, const std::string& payload);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  Config config_;
  systems::runtime::NodeSet<systems::runtime::CpuSlot> nodes_;
  std::unique_ptr<systems::runtime::Transport> transport_;
  systems::runtime::Mempool<core::TxnRequest> mempool_;
  CutFn on_cut_;
  OrderedFn on_ordered_;
  uint64_t next_epoch_number_ = 0;
  uint64_t epochs_cut_ = 0;
};

/// One shard of the epoch runtime: its own replication group (Raft/PBFT)
/// orders incoming epochs, and the shard executes them strictly in epoch
/// order against its slice of the key space. Cross-shard reads resolve
/// through one-shot ReadForward messages: before executing epoch e, every
/// active shard sends the pre-epoch values of its owned keys in e's union
/// key set to every other active shard, exactly once, then waits for the
/// symmetric forwards. Execution of the full batch is bit-identical on all
/// active shards (same order, same base views), so a shard can acknowledge
/// its slice the moment it executes — no prepare/decide round exists.
class ShardExecutor {
 public:
  struct Config {
    uint32_t shard = 0;
    sim::NodeId base = 0;  // first node id of this shard's span
    uint32_t num_nodes = 3;
    bool bft = false;
    uint32_t exec_lanes = 4;
    consensus::RaftConfig raft;
    consensus::BftConfig bft_config;
    /// ReliableLink retransmit cadence for ReadForwards.
    sim::Time forward_retry_interval = 30 * sim::kMs;
    /// Entry-node re-propose cadence while an epoch is not yet ordered in
    /// the shard group (covers proposals lost to leadership churn).
    sim::Time propose_retry_interval = 200 * sim::kMs;
    /// Keep serialized batches of applied epochs (replay oracle; fuzz only).
    bool record_payloads = false;
    /// Replica-lifecycle support (default-off; enables AddReplica — Raft
    /// groups only).
    systems::runtime::ElasticityConfig elasticity;
  };

  /// Fired on the shard's entry replica after the epoch's writes are in the
  /// shard state and the modeled slice makespan has drained.
  using AppliedFn =
      std::function<void(uint32_t shard, const EpochBatch& batch,
                         const txn::EpochOutcome& outcome,
                         sim::Time ordered_time)>;

  ShardExecutor(sim::Simulator* sim, sim::SimNetwork* net,
                const sim::CostModel* costs, const ShardPlanner* planner,
                const contract::ContractRegistry* contracts, Config config,
                ShardingStats* stats, AppliedFn on_applied);

  void Start() { transport_->Start(); }

  /// Wires the one-shot ReadForward mesh. `peers` is indexed by shard id
  /// (this shard's own slot is ignored). Call once, after all executors
  /// exist, before Start().
  void ConnectPeers(const std::vector<ShardExecutor*>& peers);

  /// Epoch payload arriving from the sequencer's link (at the entry node):
  /// proposes it into the shard's own replication group, retrying until the
  /// group orders it.
  void DeliverEpoch(const std::string& serialized);

  void Load(const std::string& key, const std::string& value) {
    state_.Put(key, value);
    if (tracker_ != nullptr) tracker_->OnLoad(key, value);
  }

  uint32_t shard() const { return config_.shard; }
  sim::NodeId EntryId() const { return nodes_.id_of(0); }
  const std::vector<sim::NodeId>& node_ids() const { return nodes_.ids(); }
  const adt::MerklePatriciaTrie& state() const { return state_; }
  crypto::Digest StateDigest() const { return state_.RootDigest(); }
  /// Next epoch number this shard will apply == count applied so far.
  uint64_t applied_epochs() const { return next_epoch_; }
  /// Content digest per applied epoch, in epoch order — all shards must
  /// agree on the whole vector (order agreement + atomicity oracle).
  const std::vector<crypto::Digest>& epoch_digests() const {
    return epoch_digests_;
  }
  /// Serialized batches of applied epochs (config.record_payloads only).
  const std::vector<std::string>& applied_payloads() const {
    return applied_payloads_;
  }
  /// ReadForward retransmits across this shard's outbound links.
  uint64_t ForwardRetransmits() const {
    uint64_t total = 0;
    for (const auto& [shard, link] : forward_links_) {
      total += link->retransmits();
    }
    return total;
  }

  /// Lifecycle (requires config.elasticity.enabled and a Raft group):
  /// scales this shard's replication group out by one. Shard state is
  /// materialized once per group, so the joiner's data plane is just the
  /// group tracker's snapshot + log-tail transfer (install is a no-op);
  /// what the joiner really gains is a consensus vote — Raft §6
  /// single-server admission with a snapshot anchored at the group's last
  /// fold.
  sim::NodeId AddReplica(
      std::function<void(const systems::runtime::JoinReport&)> done);
  /// The shard group's lifecycle tracker (null when elasticity is off).
  systems::runtime::ReplicaTracker* tracker() { return tracker_.get(); }

 private:
  /// Buffered, not-yet-executed epoch.
  struct PendingEpoch {
    EpochBatch batch;
    std::string serialized;
    sim::Time ordered_time = 0;
    bool forwards_sent = false;
    /// Consensus slot (raft log index / BFT sequence) and term the group
    /// committed this epoch at — the tracker's snapshot anchor currency.
    uint64_t seq = 0;
    uint64_t term = 0;
  };

  void OnOrdered(uint64_t seq, uint64_t term, const std::string& payload);
  /// Feeds one applied epoch's own-slice writes into the group tracker.
  void TrackEpoch(const PendingEpoch& pending,
                  std::vector<std::pair<std::string, std::string>> writes);
  void OnForward(uint32_t from_shard, const std::string& payload);
  void ProposeRetry(uint64_t number);
  /// Executes every ready epoch in order; returns when the next epoch is
  /// missing or still waiting for forwards.
  void TryAdvance();
  std::vector<uint32_t> ActiveShards(const EpochBatch& batch) const;

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  const ShardPlanner* planner_;
  Config config_;
  systems::runtime::NodeSet<systems::runtime::CpuSlot> nodes_;
  std::unique_ptr<systems::runtime::Transport> transport_;
  txn::DeterministicExecutor executor_;
  ShardingStats* stats_;
  AppliedFn on_applied_;

  /// Shard state, materialized once per shard (replicas agree bit-for-bit
  /// by the deterministic-execution contract; the group replicates order).
  adt::MerklePatriciaTrie state_;
  /// One lifecycle tracker per shard *group* (state is materialized once);
  /// null when elasticity is disabled. Joiner-side sinks live in
  /// joiner_trackers_ for the duration of their transfers.
  std::unique_ptr<systems::runtime::ReplicaTracker> tracker_;
  std::vector<std::unique_ptr<systems::runtime::ReplicaTracker>>
      joiner_trackers_;

  uint64_t next_epoch_ = 0;                    // next epoch number to apply
  std::map<uint64_t, PendingEpoch> ordered_;   // ordered, not yet applied
  std::map<uint64_t, std::string> unordered_;  // delivered, awaiting order
  /// forwards_[epoch][from_shard] -> forwarded pre-epoch values.
  std::map<uint64_t, std::map<uint32_t, std::map<std::string, std::string>>>
      forwards_;
  /// Outbound ReadForward links, keyed by destination shard.
  std::map<uint32_t, std::unique_ptr<ReliableLink>> forward_links_;
  std::vector<crypto::Digest> epoch_digests_;
  std::vector<std::string> applied_payloads_;
};

}  // namespace dicho::sharding

#endif  // DICHO_SHARDING_RUNTIME_H_
