#ifndef DICHO_WORKLOAD_DRIVER_H_
#define DICHO_WORKLOAD_DRIVER_H_

#include <array>
#include <functional>
#include <map>
#include <string>

#include "common/histogram.h"
#include "core/types.h"
#include "sim/simulator.h"
#include "workload/arrival.h"

namespace dicho::workload {

using sim::Time;

/// Load-generation parameters. Closed loop (num_clients > 0, rate == 0):
/// each virtual client keeps one request outstanding — the saturation
/// benchmark mode. Open loop (arrival_rate_tps > 0): Poisson arrivals —
/// the unsaturated-latency mode. Engine open loop (arrival != nullptr):
/// the ArrivalEngine's timestamped plan (Poisson × diurnal × flash crowds)
/// drives submissions; arrival_rate_tps is ignored.
struct DriverConfig {
  size_t num_clients = 64;
  double arrival_rate_tps = 0;
  Time warmup = 5 * sim::kSec;
  Time measure = 20 * sim::kSec;
  /// Fraction of requests issued as point queries instead of transactions.
  double query_fraction = 0;
  /// Open-loop arrival plan (not owned; must outlive the run). Default
  /// nullptr keeps the two legacy modes byte-identical.
  ArrivalEngine* arrival = nullptr;
  /// Builds the request for one engine arrival (key/tenant/fee aware).
  /// Required when `arrival` is set; unused otherwise.
  std::function<core::TxnRequest(const Arrival&)> arrival_txn;
};

/// Results of one driver run.
struct RunMetrics {
  double throughput_tps = 0;
  double query_throughput_tps = 0;
  Histogram txn_latency_us;
  Histogram query_latency_us;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Open-loop accounting: requests dispatched inside the window, and
  /// admission-gate rejections observed inside the window. Rejections are
  /// counted here, NOT in `aborted` (a shed is not a conflict), and their
  /// ~zero latencies never pollute txn_latency_us.
  uint64_t offered = 0;
  uint64_t rejected = 0;
  std::map<core::AbortReason, uint64_t> aborts_by_reason;
  /// Per-phase latency histograms, indexed by core::Phase. A phase a system
  /// never stamps has count() == 0.
  std::array<Histogram, core::kNumPhases> phase_hist;

  Histogram& phase(core::Phase p) {
    return phase_hist[static_cast<size_t>(p)];
  }
  const Histogram& phase(core::Phase p) const {
    return phase_hist[static_cast<size_t>(p)];
  }
  /// Name-keyed shim ("execute", "order", ...) so bench printf code stays
  /// readable; unknown names map to a shared empty histogram.
  const Histogram& phase_us(const std::string& name) const;

  double AbortRate() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0 : static_cast<double>(aborted) / total;
  }
  /// Fraction of resolved requests shed at the admission gate.
  double RejectRate() const {
    uint64_t total = committed + aborted + rejected;
    return total == 0 ? 0 : static_cast<double>(rejected) / total;
  }
  /// One-line summary for the bench harness output.
  std::string Summary();
};

/// Drives a TransactionalSystem with a workload on the simulator and
/// measures throughput/latency/aborts over the measurement window.
class Driver {
 public:
  using TxnGen = std::function<core::TxnRequest()>;
  using ReadGen = std::function<core::ReadRequest()>;

  Driver(sim::Simulator* sim, core::TransactionalSystem* system,
         TxnGen txn_gen, DriverConfig config)
      : Driver(sim, system, std::move(txn_gen), nullptr, config) {}

  Driver(sim::Simulator* sim, core::TransactionalSystem* system,
         TxnGen txn_gen, ReadGen read_gen, DriverConfig config);

  /// Runs warmup + measurement on the simulator and returns the metrics.
  RunMetrics Run();

 private:
  void IssueNext(size_t client);
  void ScheduleArrival();
  void ScheduleEngineArrival();
  void Dispatch(size_t client);
  void DispatchArrival(const Arrival& arrival);
  void OnTxnDone(size_t client, const core::TxnResult& result);
  void OnReadDone(size_t client, const core::ReadResult& result);
  bool InWindow(Time t) const {
    return t >= window_start_ && t < window_end_;
  }

  sim::Simulator* sim_;
  core::TransactionalSystem* system_;
  TxnGen txn_gen_;
  ReadGen read_gen_;
  DriverConfig config_;
  RunMetrics metrics_;
  Time window_start_ = 0;
  Time window_end_ = 0;
  bool stopping_ = false;
  /// Mirror of txn_latency_us in the attached MetricsRegistry (log-linear,
  /// so benches can report p99/p99.9 from src/obs); null when detached.
  LogLinearHistogram* txn_latency_ll_ = nullptr;
};

}  // namespace dicho::workload

#endif  // DICHO_WORKLOAD_DRIVER_H_
