#include "systems/quorum.h"

#include <cassert>

#include "crypto/signature.h"
#include "obs/trace.h"

namespace dicho::systems {

namespace {

/// Read view over a node's MPT state.
class MptView : public contract::StateView {
 public:
  explicit MptView(const adt::MerklePatriciaTrie* state) : state_(state) {}
  Status Get(const Slice& key, std::string* value) override {
    return state_->Get(key, value);
  }

 private:
  const adt::MerklePatriciaTrie* state_;
};

}  // namespace

QuorumSystem::QuorumSystem(sim::Simulator* sim, sim::SimNetwork* net,
                           const sim::CostModel* costs, QuorumConfig config)
    : sim_(sim),
      net_(net),
      costs_(costs),
      config_(config),
      nodes_(sim, runtime::kReplicaBase, config_.num_nodes),
      contracts_(contract::ContractRegistry::CreateDefault()),
      mempool_(&stats_.stages),
      inflight_(&stats_.stages) {
  runtime::TransportConfig transport;
  transport.kind = config_.consensus == QuorumConsensus::kRaft
                       ? runtime::TransportKind::kRaft
                       : runtime::TransportKind::kBft;
  transport.raft = config_.raft;
  transport.bft = config_.ibft;
  transport_ = std::make_unique<runtime::Transport>(
      sim, net, costs, nodes_.ids(), transport,
      [this](size_t node_index, uint64_t, const std::string& cmd) {
        OnBlockCommitted(nodes_.id_of(node_index), cmd);
      });
  if (obs::MetricsRegistry* registry = sim_->metrics()) {
    runtime::RegisterSystemStats(registry, "quorum", &stats_);
    mempool_.AttachMetrics(registry, "quorum.mempool");
    inflight_.AttachMetrics(registry, "quorum.inflight");
    runtime::RegisterNodeCpuGauges(registry, "quorum", &nodes_,
                                   [](Node& node) { return &node.cpu; });
  }
}

void QuorumSystem::Start() {
  transport_->Start();
  sim_->Schedule(config_.block_interval, [this] { ProposerTick(); });
}

bool QuorumSystem::HasProposer() const {
  auto* transport = const_cast<runtime::Transport*>(transport_.get());
  if (transport->raft() != nullptr) {
    return transport->raft()->leader() != nullptr;
  }
  return transport->bft()->primary() != nullptr;
}

NodeId QuorumSystem::ProposerId() const {
  auto* transport = const_cast<runtime::Transport*>(transport_.get());
  if (transport->raft() != nullptr) {
    auto* leader = transport->raft()->leader();
    return leader != nullptr ? leader->id() : nodes_.id_of(0);
  }
  auto* primary = transport->bft()->primary();
  return primary != nullptr ? primary->id() : nodes_.id_of(0);
}

void QuorumSystem::ProposerTick() {
  if (config_.reproposal_timeout > 0) RequeueExpiredProposals();
  if (!mempool_.empty() && HasProposer()) {
    CutAndProposeBlock();
  }
  sim_->Schedule(config_.block_interval, [this] { ProposerTick(); });
}

void QuorumSystem::RequeueExpiredProposals() {
  Time cutoff = sim_->Now() - config_.reproposal_timeout;
  std::vector<PendingTxn> stale = inflight_.ExtractIf(
      [cutoff](uint64_t, const PendingTxn& pending) {
        return pending.proposed_time <= cutoff;
      });
  for (PendingTxn& pending : stale) {
    mempool_.Push(std::move(pending));
  }
}

Time QuorumSystem::ExecuteTxn(Node* node, const core::TxnRequest& request,
                              ledger::LedgerTxn* out, bool apply_writes) {
  contract::Contract* contract = contracts_->Lookup(
      request.contract.empty() ? "ycsb" : request.contract);
  Time cost = costs_->sig_verify_us;  // transaction signature check
  if (contract == nullptr) {
    out->valid = false;
    return cost;
  }
  MptView view(&node->state);
  contract::WriteSet writes;
  Status s = contract->Execute(request, &view, &writes, nullptr);

  // Read ops: state-trie lookups.
  for (const auto& op : request.ops) {
    if (op.type == core::OpType::kRead) {
      cost += costs_->lsm_read_us;
    }
  }
  // Write ops: EVM interpretation + MPT path rebuild per record.
  for (const auto& [key, value] : writes) {
    cost += costs_->QuorumOpCost(key.size() + value.size());
  }
  if (request.ops.empty()) {
    // Contract-method transactions (Smallbank): charge the VM base per
    // state access via the contract's own estimate.
    cost += contract->ExecCost(request, *costs_);
  }

  out->valid = s.ok();
  out->write_set.assign(writes.begin(), writes.end());
  if (s.ok() && apply_writes) {
    for (const auto& [key, value] : writes) {
      node->state.Put(key, value);  // real MPT hashing work
    }
  }
  return cost;
}

void QuorumSystem::CutAndProposeBlock() {
  NodeId proposer_id = ProposerId();
  Node* proposer = &nodes_.at(proposer_id);

  ledger::Block block;
  block.header.number = next_block_number_;
  block.header.parent = proposer->chain.TipDigest();
  block.header.timestamp_us = static_cast<uint64_t>(sim_->Now());

  Time exec_cost = 0;
  runtime::BatchPolicy policy;
  policy.max_txns = config_.max_block_txns;
  policy.max_bytes = config_.max_block_bytes;
  mempool_.Cut(policy, [&](PendingTxn pending) {
    pending.proposed_time = sim_->Now();

    ledger::LedgerTxn txn;
    txn.txn_id = pending.request.txn_id;
    txn.client_id = pending.request.client_id;
    txn.payload = pending.request.Serialize();
    txn.client_signature =
        crypto::Signer(pending.request.client_id).Sign(txn.payload);
    // Serial pre-execution against the proposer's state (applied now — the
    // proposer's chain head advances as it builds).
    exec_cost += ExecuteTxn(proposer, pending.request, &txn,
                            /*apply_writes=*/true);
    uint64_t bytes = txn.ByteSize();
    block.txns.push_back(std::move(txn));
    uint64_t txn_id = pending.request.txn_id;
    inflight_.Insert(txn_id, std::move(pending));
    return bytes;
  });
  if (block.txns.empty()) return;
  next_block_number_++;
  block.header.state_digest = proposer->state.RootDigest();
  block.SealTxnRoot();

  // Remember which blocks this node built so it can skip re-execution when
  // they commit (geth's miner does not re-process its own blocks).
  locally_built_[proposer_id].insert(
      crypto::DigestBytes(block.header.txn_root));

  std::string serialized = block.Serialize();
  // The pre-execution work occupies the proposer's serial thread; the block
  // goes to consensus when it finishes.
  proposer->cpu.Submit(exec_cost, [this, proposer_id,
                                   serialized = std::move(serialized)] {
    if (transport_->raft() != nullptr) {
      consensus::RaftNode* leader = transport_->raft()->leader();
      if (leader == nullptr || leader->id() != proposer_id) return;
      leader->Propose(serialized, [](Status, uint64_t) {});
    } else {
      consensus::BftNode* primary = transport_->bft()->primary();
      if (primary == nullptr) return;
      primary->Submit(serialized, [](Status, uint64_t) {});
    }
  });
}

void QuorumSystem::OnBlockCommitted(NodeId node_id, const std::string& cmd) {
  ledger::Block block;
  if (!ledger::Block::Deserialize(cmd, &block)) return;
  Node* node = &nodes_.at(node_id);

  // The proposer already executed this block while building it; skip its
  // re-execution.
  auto& built = locally_built_[node_id];
  auto built_it = built.find(crypto::DigestBytes(block.header.txn_root));
  bool already_executed = built_it != built.end();
  if (already_executed) built.erase(built_it);

  Time cost = 0;
  if (!already_executed) {
    for (const auto& txn : block.txns) {
      core::TxnRequest request;
      if (!core::TxnRequest::Deserialize(txn.payload, &request)) continue;
      ledger::LedgerTxn scratch;
      cost += ExecuteTxn(node, request, &scratch, /*apply_writes=*/false);
    }
    // Apply the block's write sets (deterministic replay).
    for (const auto& txn : block.txns) {
      if (!txn.valid) continue;
      for (const auto& [key, value] : txn.write_set) {
        node->state.Put(key, value);
      }
    }
  }

  // Serial commit on the node's execution thread.
  auto shared = std::make_shared<ledger::Block>(std::move(block));
  node->cpu.Submit(cost, [this, node_id, node, shared] {
    // Fix up the parent pointer for the node's own chain (proposer chains
    // can briefly diverge in IBFT view changes; benches keep it linear).
    ledger::Block to_append = *shared;
    to_append.header.number = node->chain.height();
    to_append.header.parent = node->chain.TipDigest();
    to_append.SealTxnRoot();
    node->chain.Append(std::move(to_append));

    // A fixed non-proposer node acts as the client's local peer: completion
    // fires when it has committed, so the latency includes the
    // re-execution (commit) phase like a real client observes.
    NodeId completion = nodes_.ids().back();
    if (completion == ProposerId() && nodes_.size() > 1) {
      completion = nodes_.id_of(nodes_.size() - 2);
    }
    if (node_id != completion) return;
    for (const auto& txn : shared->txns) {
      PendingTxn pending;
      if (!inflight_.Take(txn.txn_id, &pending)) continue;
      net_->Send(node_id, config_.client_node, 64,
                 [this, node_id, pending = std::move(pending),
                  valid = txn.valid]() mutable {
                   core::TxnResult result;
                   result.submit_time = pending.submit_time;
                   result.finish_time = sim_->Now();
                   result.phases.Set(core::Phase::kProposal,
                                     pending.proposed_time -
                                         pending.submit_time);
                   result.phases.Set(core::Phase::kConsensusCommit,
                                     result.finish_time -
                                         pending.proposed_time);
                   obs::EmitPhaseSpan(sim_, core::Phase::kProposal, node_id,
                                      pending.request.txn_id,
                                      pending.submit_time,
                                      pending.proposed_time);
                   obs::EmitPhaseSpan(sim_, core::Phase::kConsensusCommit,
                                      node_id, pending.request.txn_id,
                                      pending.proposed_time,
                                      result.finish_time);
                   if (valid) {
                     result.status = Status::Ok();
                     stats_.committed++;
                   } else {
                     result.status = Status::Aborted("contract aborted");
                     result.reason = core::AbortReason::kConstraint;
                     stats_.aborted++;
                     stats_.aborts_by_reason[result.reason]++;
                   }
                   pending.cb(result);
                 });
    }
  });
}

void QuorumSystem::Submit(const core::TxnRequest& request,
                          core::TxnCallback cb) {
  PendingTxn pending;
  pending.request = request;
  pending.cb = std::move(cb);
  pending.submit_time = sim_->Now();
  // Client sends the signed transaction to the proposer's mempool.
  net_->Send(config_.client_node, ProposerId(), request.PayloadBytes() + 96,
             [this, pending = std::move(pending)]() mutable {
               mempool_.Push(std::move(pending));
             });
}

void QuorumSystem::Query(const core::ReadRequest& request,
                         core::ReadCallback cb) {
  stats_.queries++;
  Time submit_time = sim_->Now();
  NodeId target = nodes_.id_of(request.client_id % nodes_.size());
  net_->Send(config_.client_node, target, 64 + request.key.size(),
             [this, target, key = request.key, cb = std::move(cb),
              submit_time]() mutable {
               // Served concurrently by the node's RPC layer (no consensus).
               sim_->Schedule(costs_->quorum_query_us, [this, target, key,
                                                        cb = std::move(cb),
                                                        submit_time]() mutable {
                 std::string value;
                 Status s = nodes_.at(target).state.Get(key, &value);
                 net_->Send(target, config_.client_node, 64 + value.size(),
                            [this, target, cb = std::move(cb), submit_time, s,
                             value = std::move(value)] {
                              core::ReadResult result;
                              result.status = s;
                              result.value = value;
                              result.submit_time = submit_time;
                              result.finish_time = sim_->Now();
                              result.phases.Set(core::Phase::kEvmRead,
                                                result.finish_time -
                                                    submit_time);
                              obs::EmitPhaseSpan(sim_, core::Phase::kEvmRead,
                                                 target, 0, submit_time,
                                                 result.finish_time);
                              cb(result);
                            });
               });
             });
}

}  // namespace dicho::systems
