#include "storage/lsm/block.h"

#include <cassert>

#include "common/coding.h"

namespace dicho::storage::lsm {

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    // Shared prefix with the previous key.
    size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) shared++;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  counter_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t r : restarts_) {
    PutFixed32(&buffer_, r);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  last_key_.clear();
  finished_ = false;
}

Block::Block(std::string contents) : data_(std::move(contents)) {
  if (data_.size() < 4) {
    num_restarts_ = 0;
    restarts_offset_ = 0;
    return;
  }
  num_restarts_ = DecodeFixed32(data_.data() + data_.size() - 4);
  uint64_t trailer = 4 + static_cast<uint64_t>(num_restarts_) * 4;
  if (trailer > data_.size()) {  // corrupt
    num_restarts_ = 0;
    restarts_offset_ = 0;
    return;
  }
  restarts_offset_ = static_cast<uint32_t>(data_.size() - trailer);
}

Block::Iter::Iter(const Block* block)
    : block_(block),
      num_restarts_(block->num_restarts_),
      restarts_offset_(block->restarts_offset_),
      current_(restarts_offset_) {}

uint32_t Block::Iter::RestartPoint(uint32_t index) const {
  return DecodeFixed32(block_->data_.data() + restarts_offset_ + 4 * index);
}

void Block::Iter::SeekToRestart(uint32_t index) {
  key_.clear();
  current_ = RestartPoint(index);
  next_ = current_;
  ParseCurrent();
}

bool Block::Iter::ParseCurrent() {
  current_ = next_;
  if (current_ >= restarts_offset_) {
    current_ = restarts_offset_;
    return false;
  }
  Slice input(block_->data_.data() + current_, restarts_offset_ - current_);
  uint32_t shared, non_shared, value_len;
  if (!GetVarint32(&input, &shared) || !GetVarint32(&input, &non_shared) ||
      !GetVarint32(&input, &value_len) ||
      input.size() < non_shared + value_len || shared > key_.size()) {
    current_ = restarts_offset_;  // treat corruption as end
    return false;
  }
  key_.resize(shared);
  key_.append(input.data(), non_shared);
  value_ = Slice(input.data() + non_shared, value_len);
  next_ = static_cast<uint32_t>(value_.data() + value_len -
                                block_->data_.data());
  return true;
}

void Block::Iter::SeekToFirst() {
  if (num_restarts_ == 0) {
    current_ = restarts_offset_;
    return;
  }
  SeekToRestart(0);
}

void Block::Iter::Next() {
  assert(Valid());
  ParseCurrent();
}

void Block::Iter::Seek(const Slice& target) {
  if (num_restarts_ == 0) {
    current_ = restarts_offset_;
    return;
  }
  // Binary search over restart points: find the last restart whose key is
  // < target, then scan forward.
  uint32_t left = 0, right = num_restarts_ - 1;
  while (left < right) {
    uint32_t mid = (left + right + 1) / 2;
    // Parse the full key at the restart point (shared == 0 there).
    uint32_t offset = RestartPoint(mid);
    Slice input(block_->data_.data() + offset, restarts_offset_ - offset);
    uint32_t shared, non_shared, value_len;
    if (!GetVarint32(&input, &shared) || !GetVarint32(&input, &non_shared) ||
        !GetVarint32(&input, &value_len)) {
      current_ = restarts_offset_;
      return;
    }
    Slice restart_key(input.data(), non_shared);
    if (CompareInternalKey(restart_key, target) < 0) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }
  SeekToRestart(left);
  while (Valid() && CompareInternalKey(Slice(key_), target) < 0) {
    ParseCurrent();
  }
}

}  // namespace dicho::storage::lsm
