# Empty compiler generated dependencies file for fig06_smallbank.
# This may be replaced when dependencies are built.
