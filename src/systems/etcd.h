#ifndef DICHO_SYSTEMS_ETCD_H_
#define DICHO_SYSTEMS_ETCD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/btree/btree.h"
#include "systems/runtime/elasticity.h"
#include "systems/runtime/runtime.h"
#include "systems/runtime/transport.h"

namespace dicho::systems {

using sim::NodeId;
using sim::Time;

struct EtcdConfig {
  uint32_t num_nodes = 5;
  consensus::RaftConfig raft;
  /// Client endpoint node id used as the "source" of requests on the wire.
  NodeId client_node = runtime::kClientNode;
  /// Replica-lifecycle support (default-off; enables AddReplica).
  runtime::ElasticityConfig elasticity;
};

/// etcd-like NoSQL store (Table 2's etcd row): storage-based replication,
/// one Raft group over all nodes (full replication), serial apply into a
/// B+-tree (BoltDB-like), no transactions — multi-op requests are rejected,
/// matching the paper's note that etcd cannot run Smallbank.
///
/// Design-dimension choices: storage-based replication / consensus (CFT
/// Raft) / serial execution / no ledger / B-tree index / no sharding.
class EtcdSystem : public core::TransactionalSystem {
 public:
  EtcdSystem(sim::Simulator* sim, sim::SimNetwork* net,
             const sim::CostModel* costs, EtcdConfig config);

  /// Elects the leader; run the simulator for ~1 virtual second afterwards.
  void Start() override;
  bool HasLeader() const { return transport_->raft()->leader() != nullptr; }

  void Submit(const core::TxnRequest& request, core::TxnCallback cb) override;
  void Query(const core::ReadRequest& request, core::ReadCallback cb) override;
  const core::SystemStats& stats() const override { return stats_; }
  std::string name() const override { return "etcd"; }

  /// Pre-populates every replica directly (benchmark setup; bypasses
  /// consensus the way a bulk load would).
  void Load(const std::string& key, const std::string& value) override {
    nodes_.ForEach([&](NodeId id, Node& node) {
      node.state.Put(key, value);
      if (runtime::ReplicaTracker* t = tracker(id)) t->OnLoad(key, value);
    });
  }

  /// Every node's full copy of the state (full replication).
  storage::btree::BTree* state_of(NodeId node) { return &nodes_.at(node).state; }
  uint64_t StateBytes() const;

  /// Lifecycle (requires config.elasticity.enabled): scales the group out
  /// by one replica — content-addressed snapshot + log-tail transfer from
  /// the leader, then Raft §6 single-server admission — all under live
  /// traffic. `done` fires once the replica is admitted. Returns the new
  /// replica's id.
  NodeId AddReplica(std::function<void(const runtime::JoinReport&)> done);
  /// The replica's lifecycle tracker (null when elasticity is disabled).
  runtime::ReplicaTracker* tracker(NodeId node) {
    size_t index = nodes_.index_of(node);
    return index < trackers_.size() ? trackers_[index].get() : nullptr;
  }

 private:
  struct Node {
    explicit Node(sim::Simulator* sim) : cpu(sim) {}
    storage::btree::BTree state;
    sim::CpuResource cpu;  // serial apply thread (BoltDB writer)
  };

  runtime::ReplicaTracker* MakeTracker(NodeId node);
  void ApplyEntry(NodeId node, uint64_t seq, const std::string& cmd);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  EtcdConfig config_;
  core::SystemStats stats_;
  runtime::NodeSet<Node> nodes_;
  /// One lifecycle tracker per replica, parallel to nodes_ (empty when
  /// elasticity is disabled — the default, so goldens are untouched).
  std::vector<std::unique_ptr<runtime::ReplicaTracker>> trackers_;
  /// One Raft group over all nodes; Submit goes through the raw raft()
  /// accessor because etcd rejects leaderless writes instead of retrying.
  std::unique_ptr<runtime::Transport> transport_;
};

}  // namespace dicho::systems

#endif  // DICHO_SYSTEMS_ETCD_H_
