#ifndef DICHO_SYSTEMS_SPANNERLIKE_H_
#define DICHO_SYSTEMS_SPANNERLIKE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "contract/contract.h"
#include "core/types.h"
#include "sharding/partition.h"
#include "sharding/runtime.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "systems/runtime/runtime.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "txn/lock_table.h"

namespace dicho::systems {

using sim::NodeId;
using sim::Time;

struct SpannerConfig {
  uint32_t num_shards = 2;
  uint32_t nodes_per_shard = 3;  // Paxos group size (paper Fig. 14 uses 3)
  int max_retries = 3;
  Time retry_backoff = 3 * sim::kMs;
  NodeId client_node = runtime::kClientNode;
};

/// Spanner-like NewSQL database: sharded, Paxos-replicated groups,
/// pessimistic two-phase locking with wound-wait, and 2PC across shards
/// with a trusted coordinator. Conflicting transactions *wait for locks*
/// rather than aborting fast — the contrast with TiDB the paper uses to
/// explain Fig. 14. Paxos replication within a shard is modeled at the cost
/// level (leader CPU + majority-ack delay), like TiKV regions.
class SpannerLikeSystem : public core::TransactionalSystem {
 public:
  SpannerLikeSystem(sim::Simulator* sim, sim::SimNetwork* net,
                    const sim::CostModel* costs, SpannerConfig config);

  void Submit(const core::TxnRequest& request, core::TxnCallback cb) override;
  void Query(const core::ReadRequest& request, core::ReadCallback cb) override;
  const core::SystemStats& stats() const override { return stats_; }
  std::string name() const override { return "spanner-like"; }

  void Load(const std::string& key, const std::string& value) override {
    shards_[partitioner_.ShardOf(key)]->state[key] = value;
  }
  uint64_t lock_waits() const;
  const sharding::ShardingStats& sharding_stats() const {
    return shard_stats_;
  }

 private:
  struct Shard {
    std::map<std::string, std::string> state;
    txn::LockTable locks;
    NodeId leader;  // Paxos leader node of this shard
  };
  struct Txn {
    core::TxnRequest request;
    core::TxnCallback cb;
    Time submit_time = 0;
    uint64_t ts = 0;  // wound-wait priority
    int attempt = 0;
    std::vector<std::string> keys;
    std::map<uint32_t, std::vector<std::string>> keys_by_shard;
    size_t locks_held = 0;
    bool wounded = false;
    bool finished = false;
  };
  using TxnPtr = std::shared_ptr<Txn>;

  Time ShardWriteCost(uint64_t bytes) const;
  Time ReplicationDelay() const;
  void StartAttempt(TxnPtr txn);
  void AcquireLocks(TxnPtr txn);
  void ExecuteAndCommit(TxnPtr txn);
  void ReleaseAll(TxnPtr txn);
  void RetryOrAbort(TxnPtr txn, Status why, core::AbortReason reason);
  void Finish(TxnPtr txn, Status status, core::AbortReason reason);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  SpannerConfig config_;
  sharding::HashPartitioner partitioner_;
  /// Routing through the shared layered API; lock-based 2PC is this
  /// system's coordination strategy behind it.
  sharding::ShardPlanner planner_;
  sharding::ShardingStats shard_stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<NodeId, std::unique_ptr<sim::CpuResource>> node_cpu_;
  std::unique_ptr<contract::ContractRegistry> contracts_;
  uint64_t next_ts_ = 1;
  core::SystemStats stats_;
};

}  // namespace dicho::systems

#endif  // DICHO_SYSTEMS_SPANNERLIKE_H_
