#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/parallel.h"
#include "testing/harness.h"

namespace dicho::bench {
namespace {

// Cross-thread determinism: RunSweep promises results in config order that
// are bit-identical to the serial loop, regardless of worker count. Every
// figure sweep and the sim_fuzz seed sweep lean on that promise, so pin it
// with a real workload — full scenario runs through the harness — executed
// under DICHO_BENCH_THREADS = 1, 2, and unset (hardware concurrency).

struct Cell {
  std::string scenario;
  uint64_t seed;
};

// Serializes everything observable about a scenario run. Any scheduling
// nondeterminism leaking into the worlds would show up here.
std::string SweepFingerprint(const std::vector<Cell>& cells) {
  auto results = RunSweep(cells, [](const Cell& cell) {
    const dicho::testing::Scenario* scenario =
        dicho::testing::FindScenario(cell.scenario);
    if (scenario == nullptr) return std::string("missing:") + cell.scenario;
    dicho::testing::ScenarioResult result = dicho::testing::RunScenario(
        *scenario, dicho::testing::ScenarioOptions{cell.seed});
    std::ostringstream out;
    out << result.scenario << "#" << result.seed << " progress="
        << result.progress << " events=" << result.sim_events
        << " ok=" << result.ok() << "\n"
        << result.schedule << result.report.Summary();
    return out.str();
  });
  std::string joined;
  for (const std::string& r : results) joined += r + "\n---\n";
  return joined;
}

class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("DICHO_BENCH_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      setenv("DICHO_BENCH_THREADS", value, /*overwrite=*/1);
    } else {
      unsetenv("DICHO_BENCH_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      setenv("DICHO_BENCH_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("DICHO_BENCH_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(SweepDeterminismTest, ScenarioSweepIsByteIdenticalAcrossThreadCounts) {
  // Mixed scenarios and seeds so cells finish out of order under contention.
  std::vector<Cell> cells;
  for (uint64_t seed = 1; seed <= 4; seed++) {
    cells.push_back({"raft_crash_restart", seed});
    cells.push_back({"txn_serializability", seed});
  }
  cells.push_back({"ledger_pipeline", 2});
  cells.push_back({"pbft_crash", 3});
  cells.push_back({"harmony_system", 1});
  cells.push_back({"harmony_system", 2});

  std::string serial;
  {
    ScopedThreadsEnv env("1");
    ASSERT_EQ(SweepThreads(), 1u);
    serial = SweepFingerprint(cells);
  }
  ASSERT_FALSE(serial.empty());

  {
    ScopedThreadsEnv env("2");
    ASSERT_EQ(SweepThreads(), 2u);
    EXPECT_EQ(SweepFingerprint(cells), serial)
        << "2-thread sweep diverged from serial loop";
  }
  {
    ScopedThreadsEnv env(nullptr);  // hardware concurrency
    EXPECT_EQ(SweepFingerprint(cells), serial)
        << "hardware-thread sweep diverged from serial loop";
  }
}

TEST(SweepDeterminismTest, RepeatedSweepsAreStableAtFixedThreadCount) {
  std::vector<Cell> cells = {{"raft_partition", 5},
                             {"quorum_system", 1},
                             {"txn_serializability", 9}};
  ScopedThreadsEnv env("2");
  std::string first = SweepFingerprint(cells);
  EXPECT_EQ(SweepFingerprint(cells), first);
}

}  // namespace
}  // namespace dicho::bench
