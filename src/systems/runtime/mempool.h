#ifndef DICHO_SYSTEMS_RUNTIME_MEMPOOL_H_
#define DICHO_SYSTEMS_RUNTIME_MEMPOOL_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace dicho::systems::runtime {

/// Block/batch cutting limits (Quorum's gas-limit analog, Hybrid's
/// max_batch): a cut stops at whichever cap is hit first.
struct BatchPolicy {
  size_t max_txns = 500;
  uint64_t max_bytes = ~0ull;
};

/// FIFO admission queue in front of ordering — Quorum's proposer mempool,
/// HybridSystem's pre-consensus batch queue. Maintains the queue-depth
/// gauges in SystemStats as a side effect; gauge updates never touch the
/// simulator, so adding them is observability-only.
template <typename Item>
class Mempool {
 public:
  explicit Mempool(core::StageGauges* gauges = nullptr) : gauges_(gauges) {}

  /// Wires this queue into a metrics registry: a pull-mode depth gauge plus
  /// a batch-size histogram fed on every cut. No-op registry → no
  /// instruments, no per-push cost beyond one null check.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) {
    if (registry == nullptr) return;
    registry->GetCallbackGauge(prefix + ".depth", [this] {
      return static_cast<double>(queue_.size());
    });
    batch_txns_ = registry->GetHistogram(prefix + ".batch_txns");
  }

  void Push(Item item) {
    queue_.push_back(std::move(item));
    if (gauges_ != nullptr) {
      gauges_->enqueued++;
      gauges_->mempool_depth = queue_.size();
      if (queue_.size() > gauges_->mempool_peak) {
        gauges_->mempool_peak = queue_.size();
      }
    }
  }

  /// Bounded enqueue: refuses (and counts a rejection) once the queue holds
  /// `capacity` items. capacity == 0 means unbounded — the default, so
  /// every existing Push call site is unaffected.
  bool TryPush(Item item, size_t capacity) {
    if (capacity > 0 && queue_.size() >= capacity) {
      if (gauges_ != nullptr) gauges_->rejected++;
      return false;
    }
    Push(std::move(item));
    return true;
  }

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

  /// Cuts one block: pops items in FIFO order until the queue drains or a
  /// policy cap trips. consume(item) admits the item to the block under
  /// construction and returns its byte size (counted against max_bytes,
  /// checked before the *next* pop — a single oversized item still cuts).
  template <typename ConsumeFn>
  size_t Cut(const BatchPolicy& policy, ConsumeFn consume) {
    size_t count = 0;
    uint64_t bytes = 0;
    while (!queue_.empty() && count < policy.max_txns &&
           bytes < policy.max_bytes) {
      Item item = std::move(queue_.front());
      queue_.pop_front();
      bytes += consume(std::move(item));
      count++;
    }
    DidCut(count);
    return count;
  }

  /// Drains the whole queue as one batch (Hybrid's timer flush).
  std::vector<Item> DrainAll() {
    std::vector<Item> items(std::make_move_iterator(queue_.begin()),
                            std::make_move_iterator(queue_.end()));
    queue_.clear();
    DidCut(items.size());
    return items;
  }

 private:
  void DidCut(size_t count) {
    if (batch_txns_ != nullptr && count > 0) {
      batch_txns_->Add(static_cast<double>(count));
    }
    if (gauges_ == nullptr) return;
    if (count > 0) gauges_->batches_cut++;
    gauges_->mempool_depth = queue_.size();
  }

  std::deque<Item> queue_;
  core::StageGauges* gauges_;
  LogLinearHistogram* batch_txns_ = nullptr;
};

/// One-shot flush timer armed on first enqueue (HybridSystem's batching
/// discipline): Arm() is a no-op while a flush is already scheduled, and
/// the timer disarms itself before firing so the flush can re-arm.
class BatchTimer {
 public:
  BatchTimer(sim::Simulator* sim, sim::Time interval)
      : sim_(sim), interval_(interval) {}

  template <typename Fn>
  void Arm(Fn fire) {
    if (armed_) return;
    armed_ = true;
    sim_->Schedule(interval_, [this, fire = std::move(fire)] {
      armed_ = false;
      fire();
    });
  }

  bool armed() const { return armed_; }

 private:
  sim::Simulator* sim_;
  sim::Time interval_;
  bool armed_ = false;
};

/// Submitted-but-unresolved transactions keyed by txn id — the table every
/// system kept privately to route ordered/validated outcomes back to the
/// waiting client callback. Insert overwrites (map::operator[] semantics,
/// what every system relied on for client retries reusing an id).
template <typename TxnState>
class InflightTable {
 public:
  explicit InflightTable(core::StageGauges* gauges = nullptr)
      : gauges_(gauges) {}

  /// Pull-mode depth gauge mirroring the inflight_depth stage gauge.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) {
    if (registry == nullptr) return;
    registry->GetCallbackGauge(prefix + ".depth", [this] {
      return static_cast<double>(map_.size());
    });
  }

  void Insert(uint64_t txn_id, TxnState state) {
    map_[txn_id] = std::move(state);
    if (gauges_ != nullptr) {
      gauges_->inflight_depth = map_.size();
      if (map_.size() > gauges_->inflight_peak) {
        gauges_->inflight_peak = map_.size();
      }
    }
  }

  TxnState* Find(uint64_t txn_id) {
    auto it = map_.find(txn_id);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Removes the entry, moving it into *out. Returns false when absent
  /// (already resolved — e.g. a block replaying on a non-completion node).
  bool Take(uint64_t txn_id, TxnState* out) {
    auto it = map_.find(txn_id);
    if (it == map_.end()) return false;
    *out = std::move(it->second);
    map_.erase(it);
    if (gauges_ != nullptr) gauges_->inflight_depth = map_.size();
    return true;
  }

  void Erase(uint64_t txn_id) {
    map_.erase(txn_id);
    if (gauges_ != nullptr) gauges_->inflight_depth = map_.size();
  }

  /// Removes every entry matching pred(txn_id, state) and returns them in
  /// txn-id order. Re-proposal sweeps (Quorum's minter re-mint of txns whose
  /// block never committed) use this to move stale entries back to the
  /// mempool.
  template <typename Pred>
  std::vector<TxnState> ExtractIf(Pred pred) {
    std::vector<TxnState> out;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first, it->second)) {
        out.push_back(std::move(it->second));
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
    if (!out.empty() && gauges_ != nullptr) {
      gauges_->inflight_depth = map_.size();
    }
    return out;
  }

  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }

 private:
  std::map<uint64_t, TxnState> map_;
  core::StageGauges* gauges_;
};

/// Mempool admission policy — how a system sheds load once its admission
/// window fills instead of queueing unboundedly (the metastable-overload
/// defense bench_overload measures).
enum class AdmissionPolicy : uint8_t {
  kNone = 0,      // admit everything (the pre-admission default)
  kRejectNewest,  // hard bound: reject arrivals once max_inflight is reached
  kFeePriority,   // under congestion, only fee >= min_fee (and non-shed
                  // tenants) get the remaining slots
  kTargetDelay,   // reject when projected queueing delay (inflight × EWMA
                  // service interval) exceeds target_delay
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kNone;
  /// Hard cap on admitted-but-unresolved txns (all policies except kNone).
  size_t max_inflight = 1024;
  /// kTargetDelay: admit while projected wait stays under this.
  sim::Time target_delay = 1 * sim::kSec;
  /// kTargetDelay: always admit while fewer than this many are inflight
  /// (keeps the pipeline primed so the service-rate estimate can form).
  size_t min_backlog = 8;
  /// kTargetDelay: EWMA weight of the newest completion gap.
  double ewma_alpha = 0.05;
  /// kFeePriority: congestion begins at this fraction of max_inflight.
  double congestion_fraction = 0.5;
  /// kFeePriority: minimum fee bid admitted under congestion.
  double min_fee = 1.0;
  /// kFeePriority: tenants shed outright under congestion.
  std::vector<uint32_t> shed_tenants;

  bool enabled() const { return policy != AdmissionPolicy::kNone; }
};

/// Pure admission decision logic, shared by every system through the gate
/// below. Deterministic: decisions depend only on virtual time, the gate's
/// inflight count, and the request's fee/tenant stamps.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  bool Admit(size_t inflight, const core::TxnRequest& request) const {
    switch (config_.policy) {
      case AdmissionPolicy::kNone:
        return true;
      case AdmissionPolicy::kRejectNewest:
        return inflight < config_.max_inflight;
      case AdmissionPolicy::kFeePriority: {
        if (inflight >= config_.max_inflight) return false;
        size_t congestion_floor = static_cast<size_t>(
            config_.congestion_fraction *
            static_cast<double>(config_.max_inflight));
        if (inflight < congestion_floor) return true;
        for (uint32_t tenant : config_.shed_tenants) {
          if (request.tenant == tenant) return false;
        }
        return request.fee >= config_.min_fee;
      }
      case AdmissionPolicy::kTargetDelay: {
        if (inflight >= config_.max_inflight) return false;
        if (inflight < config_.min_backlog) return true;
        double projected_wait =
            static_cast<double>(inflight) * ewma_service_us_;
        return projected_wait <= config_.target_delay;
      }
    }
    return true;
  }

  /// Feeds the service-rate estimator: called once per resolved txn with
  /// the virtual completion time.
  void OnCompletion(sim::Time now) {
    if (last_completion_ >= 0) {
      double gap = now - last_completion_;
      ewma_service_us_ = ewma_service_us_ == 0
                             ? gap
                             : config_.ewma_alpha * gap +
                                   (1.0 - config_.ewma_alpha) * ewma_service_us_;
    }
    last_completion_ = now;
  }

  double ewma_service_us() const { return ewma_service_us_; }
  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  sim::Time last_completion_ = -1;
  double ewma_service_us_ = 0;
};

/// Uniform mempool admission gate: a TransactionalSystem decorator applied
/// by the registry in front of *any* of the 8 system models — no
/// per-system forking. Rejections resolve asynchronously (one zero-delay
/// sim event) with AbortReason::kAdmissionReject so open-loop clients see
/// an explicit shed outcome rather than a silent drop; admitted requests
/// pass through untouched, and with kNone policy the gate adds zero sim
/// events (golden-trace compatible). Instruments — `<name>.mempool.rejected`
/// counter, `<name>.gate.depth` pull gauge, `<name>.gate.admitted_latency_us`
/// log-linear histogram — register only when the simulator has a
/// MetricsRegistry attached.
class AdmissionGate : public core::TransactionalSystem {
 public:
  AdmissionGate(sim::Simulator* sim,
                std::unique_ptr<core::TransactionalSystem> inner,
                const AdmissionConfig& config)
      : sim_(sim), inner_(std::move(inner)), controller_(config) {
    if (obs::MetricsRegistry* registry = sim_->metrics()) {
      const std::string name = inner_->name();
      rejected_counter_ = registry->GetCounter(name + ".mempool.rejected");
      admitted_counter_ = registry->GetCounter(name + ".gate.admitted");
      registry->GetCallbackGauge(name + ".gate.depth", [this] {
        return static_cast<double>(inflight_);
      });
      admitted_latency_us_ =
          registry->GetHistogram(name + ".gate.admitted_latency_us");
    }
  }

  void Submit(const core::TxnRequest& request, core::TxnCallback cb) override {
    if (!controller_.Admit(inflight_, request)) {
      rejected_count_++;
      if (rejected_counter_ != nullptr) rejected_counter_->Inc();
      core::TxnResult result;
      result.status = Status::Aborted("admission-reject");
      result.reason = core::AbortReason::kAdmissionReject;
      result.submit_time = sim_->Now();
      result.finish_time = sim_->Now();
      // Async delivery breaks the submit->completion cycle for open-loop
      // pumps that schedule the next arrival from the callback.
      sim_->Schedule(0, [cb = std::move(cb), result] { cb(result); });
      return;
    }
    inflight_++;
    if (inflight_ > inflight_peak_) inflight_peak_ = inflight_;
    if (admitted_counter_ != nullptr) admitted_counter_->Inc();
    inner_->Submit(request,
                   [this, cb = std::move(cb)](const core::TxnResult& result) {
                     inflight_--;
                     controller_.OnCompletion(sim_->Now());
                     if (admitted_latency_us_ != nullptr) {
                       admitted_latency_us_->Add(result.latency());
                     }
                     cb(result);
                   });
  }

  void Query(const core::ReadRequest& request, core::ReadCallback cb) override {
    inner_->Query(request, std::move(cb));
  }

  /// Inner stats with the gate's shed count overlaid on the stage gauges.
  const core::SystemStats& stats() const override {
    stats_ = inner_->stats();
    stats_.stages.rejected = rejected_count_;
    return stats_;
  }

  std::string name() const override { return inner_->name(); }
  void Load(const std::string& key, const std::string& value) override {
    inner_->Load(key, value);
  }
  void Start() override { inner_->Start(); }

  core::TransactionalSystem* inner() { return inner_.get(); }
  size_t gate_depth() const { return inflight_; }
  size_t gate_peak() const { return inflight_peak_; }
  uint64_t rejected_count() const { return rejected_count_; }
  const AdmissionController& controller() const { return controller_; }

 private:
  sim::Simulator* sim_;
  std::unique_ptr<core::TransactionalSystem> inner_;
  AdmissionController controller_;
  size_t inflight_ = 0;
  size_t inflight_peak_ = 0;
  uint64_t rejected_count_ = 0;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  LogLinearHistogram* admitted_latency_us_ = nullptr;
  mutable core::SystemStats stats_;
};

}  // namespace dicho::systems::runtime

#endif  // DICHO_SYSTEMS_RUNTIME_MEMPOOL_H_
