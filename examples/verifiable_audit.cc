// Verifiable audit: what the blockchain's security-oriented storage actually
// buys you. A light client verifies (1) that a record is part of the
// authenticated state via an MPT proof, (2) that a transaction is included
// in the ledger via a Merkle audit path, and (3) that any tampering with
// history is detected — all without trusting the serving node.

#include <cstdio>

#include "adt/mpt.h"
#include "crypto/merkle.h"
#include "ledger/ledger.h"

using namespace dicho;

int main() {
  printf("1) Authenticated state: Merkle Patricia Trie proofs\n");
  adt::MerklePatriciaTrie state;
  for (int i = 0; i < 100; i++) {
    state.Put("account" + std::to_string(i),
              "balance=" + std::to_string(1000 + i));
  }
  crypto::Digest trusted_root = state.RootDigest();
  printf("   trusted state digest: %s...\n",
         crypto::DigestHex(trusted_root).substr(0, 24).c_str());

  // The (untrusted) server hands over a value plus its access path.
  adt::MerklePatriciaTrie::Proof proof;
  state.Prove("account42", &proof);
  bool ok = adt::VerifyMptProof(trusted_root, "account42", "balance=1042",
                                proof);
  printf("   honest value verifies:   %s\n", ok ? "yes" : "NO");
  bool forged = adt::VerifyMptProof(trusted_root, "account42",
                                    "balance=999999", proof);
  printf("   forged value verifies:   %s\n", forged ? "YES (bug!)" : "no");

  printf("\n2) Ledger inclusion: transaction audit paths\n");
  ledger::Chain chain;
  for (int b = 0; b < 5; b++) {
    ledger::Block block;
    block.header.number = b;
    block.header.parent = chain.TipDigest();
    for (int t = 0; t < 8; t++) {
      ledger::LedgerTxn txn;
      txn.txn_id = b * 8 + t;
      txn.payload = "transfer #" + std::to_string(txn.txn_id);
      block.txns.push_back(std::move(txn));
    }
    block.SealTxnRoot();
    chain.Append(std::move(block));
  }
  auto inclusion = chain.ProveTxn(3, 5);
  const ledger::Block& block3 = chain.block(3);
  bool included = crypto::VerifyMerkleProof(block3.txns[5].Serialize(),
                                            inclusion.value(),
                                            block3.header.txn_root);
  printf("   txn (block 3, index 5) inclusion verifies: %s\n",
         included ? "yes" : "NO");

  printf("\n3) Tamper evidence: rewrite history, get caught\n");
  printf("   chain verifies before tampering: %s\n",
         chain.Verify().ToString().c_str());
  chain.MutableBlockForTest(2)->txns[1].payload = "transfer #999999";
  printf("   ...a node silently rewrites a transaction in block 2...\n");
  printf("   chain verifies after tampering:  %s\n",
         chain.Verify().ToString().c_str());

  printf("\nA database gives you none of this without extra machinery — "
         "which is exactly what the hybrid systems bolt on (see the "
         "design_explorer example).\n");
  return 0;
}
