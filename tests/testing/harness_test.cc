#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "testing/harness.h"
#include "testing/schedule.h"

namespace dicho::testing {
namespace {

// The simulation-test harness's own contract: schedules and whole scenario
// runs are pure functions of the seed (the repro guarantee behind every
// violating seed sim_fuzz prints), clean runs hold every invariant, and the
// checkers actually catch deliberately-injected protocol bugs.

TEST(FaultScheduleTest, SameSeedSameSchedule) {
  ScheduleConfig config;
  for (uint64_t seed : {1u, 7u, 123u}) {
    FaultSchedule a = GenerateSchedule(seed, config);
    FaultSchedule b = GenerateSchedule(seed, config);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
    EXPECT_FALSE(a.actions.empty()) << "seed " << seed;
  }
}

TEST(FaultScheduleTest, DifferentSeedsDiffer) {
  ScheduleConfig config;
  FaultSchedule a = GenerateSchedule(1, config);
  FaultSchedule b = GenerateSchedule(2, config);
  EXPECT_NE(a.ToString(), b.ToString());
}

TEST(FaultScheduleTest, RespectsCrashBudgetAndQuietTail) {
  ScheduleConfig config;
  config.num_nodes = 5;
  config.max_concurrent_down = 2;
  for (uint64_t seed = 1; seed <= 50; seed++) {
    FaultSchedule schedule = GenerateSchedule(seed, config);
    uint32_t down = 0;
    sim::Time latest_disruption = 0;
    for (const FaultAction& action : schedule.actions) {
      if (action.kind == FaultAction::Kind::kCrash) {
        down++;
        EXPECT_LE(down, config.max_concurrent_down) << "seed " << seed;
        latest_disruption = std::max(latest_disruption, action.at);
      } else if (action.kind == FaultAction::Kind::kRestart) {
        ASSERT_GT(down, 0u) << "seed " << seed;
        down--;
      } else if (action.kind == FaultAction::Kind::kPartition ||
                 action.kind == FaultAction::Kind::kDropStart ||
                 action.kind == FaultAction::Kind::kJitterSpike) {
        latest_disruption = std::max(latest_disruption, action.at);
      }
    }
    // Everything destructive ends before the quiet tail.
    EXPECT_LE(latest_disruption,
              static_cast<sim::Time>(config.horizon * (1 - config.quiet_tail)))
        << "seed " << seed;
  }
}

TEST(ScenarioTest, ReplaysAreByteIdentical) {
  const Scenario* scenario = FindScenario("raft_crash_restart");
  ASSERT_NE(scenario, nullptr);
  ScenarioResult a = RunScenario(*scenario, ScenarioOptions{11});
  ScenarioResult b = RunScenario(*scenario, ScenarioOptions{11});
  EXPECT_EQ(a.progress, b.progress);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.report.Summary(), b.report.Summary());
}

TEST(ScenarioTest, AllScenariosPassOnSmokeSeeds) {
  for (const Scenario& scenario : AllScenarios()) {
    for (uint64_t seed = 1; seed <= 3; seed++) {
      ScenarioResult result = RunScenario(scenario, ScenarioOptions{seed});
      EXPECT_TRUE(result.ok()) << scenario.name << " seed " << seed << ":\n"
                               << result.report.Summary();
      EXPECT_GT(result.progress, 0u) << scenario.name << " seed " << seed;
    }
  }
}

// The checkers must catch real safety bugs, and the repro must be
// deterministic: the first violating seed fails identically when re-run.
TEST(BugInjectionTest, RaftCommitWithoutQuorumIsCaught) {
  const Scenario* scenario = FindScenario("raft_partition");
  ASSERT_NE(scenario, nullptr);
  uint64_t violating_seed = 0;
  for (uint64_t seed = 1; seed <= 30 && violating_seed == 0; seed++) {
    ScenarioResult result = RunScenario(
        *scenario,
        ScenarioOptions{seed, BugInjection::kRaftCommitWithoutQuorum});
    if (!result.ok()) violating_seed = seed;
  }
  ASSERT_NE(violating_seed, 0u)
      << "injected no-quorum commit bug never caught in 30 seeds";
  ScenarioResult again = RunScenario(
      *scenario,
      ScenarioOptions{violating_seed, BugInjection::kRaftCommitWithoutQuorum});
  EXPECT_FALSE(again.ok()) << "violating seed did not reproduce";
}

TEST(BugInjectionTest, PbftSkippedQuorumIsCaught) {
  const Scenario* scenario = FindScenario("pbft_byzantine");
  ASSERT_NE(scenario, nullptr);
  uint64_t violating_seed = 0;
  for (uint64_t seed = 1; seed <= 30 && violating_seed == 0; seed++) {
    ScenarioResult result = RunScenario(
        *scenario, ScenarioOptions{seed, BugInjection::kPbftSkipPrepareQuorum});
    if (!result.ok()) violating_seed = seed;
  }
  ASSERT_NE(violating_seed, 0u)
      << "injected skipped-prepare-quorum bug never caught in 30 seeds";
  ScenarioResult again = RunScenario(
      *scenario,
      ScenarioOptions{violating_seed, BugInjection::kPbftSkipPrepareQuorum});
  EXPECT_FALSE(again.ok()) << "violating seed did not reproduce";
  // The injected bug is a safety bug — the report must include an agreement
  // or validity violation, not just a liveness complaint.
  bool safety = false;
  for (const auto& violation : again.report.violations()) {
    if (violation.invariant == "bft-agreement" ||
        violation.invariant == "bft-validity") {
      safety = true;
    }
  }
  EXPECT_TRUE(safety) << again.report.Summary();
}

class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("DICHO_SIM_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv("DICHO_SIM_THREADS", value, 1);
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      setenv("DICHO_SIM_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("DICHO_SIM_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ScenarioTest, ElasticGrowthIsThreadCountInvariant) {
  // elastic_growth runs the scale-out on the partitioned parallel engine:
  // the whole run — progress, event count, fault schedule, every invariant
  // verdict — must be identical under DICHO_SIM_THREADS in {1, 2, hw}, the
  // conservative-synchronization determinism contract applied to the
  // lifecycle layer (joins, transfers, config changes included).
  const Scenario* scenario = FindScenario("elastic_growth");
  ASSERT_NE(scenario, nullptr);
  for (uint64_t seed : {1u, 7u, 23u}) {
    ScenarioResult base;
    bool first = true;
    for (const char* threads : {"1", "2", "hw"}) {
      ScopedThreadsEnv env(threads);
      ScenarioResult result = RunScenario(*scenario, ScenarioOptions{seed});
      EXPECT_TRUE(result.ok()) << "seed " << seed << " threads " << threads
                               << ":\n"
                               << result.report.Summary();
      if (first) {
        base = result;
        first = false;
        continue;
      }
      EXPECT_EQ(base.progress, result.progress)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(base.sim_events, result.sim_events)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(base.schedule, result.schedule)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(base.report.Summary(), result.report.Summary())
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(BugNameTest, RoundTrips) {
  BugInjection bug = BugInjection::kNone;
  EXPECT_TRUE(ParseBugName("raft-no-quorum", &bug));
  EXPECT_EQ(bug, BugInjection::kRaftCommitWithoutQuorum);
  EXPECT_STREQ(BugName(bug), "raft-no-quorum");
  EXPECT_TRUE(ParseBugName("pbft-no-quorum", &bug));
  EXPECT_EQ(bug, BugInjection::kPbftSkipPrepareQuorum);
  EXPECT_STREQ(BugName(bug), "pbft-no-quorum");
  EXPECT_FALSE(ParseBugName("not-a-bug", &bug));
}

}  // namespace
}  // namespace dicho::testing
