#include <gtest/gtest.h>

#include "systems/fabric.h"
#include "systems/quorum.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace dicho::systems {
namespace {

// Whole-cluster determinism: identical seeds must give bit-identical
// results (throughput, event counts, final state digests). This is the
// property that makes every benchmark in bench/ replayable.

template <typename MakeSystem>
std::string TraceRun(uint64_t seed, MakeSystem make) {
  sim::Simulator simulator(seed);
  sim::SimNetwork network(&simulator, sim::NetworkConfig{});
  sim::CostModel costs;
  auto system = make(&simulator, &network, &costs);

  workload::YcsbConfig wcfg;
  wcfg.record_count = 500;
  wcfg.record_size = 100;
  workload::YcsbWorkload workload(wcfg, seed);
  for (int i = 0; i < 500; i++) {
    system->Load(workload.KeyAt(i), workload.RandomValue());
  }
  workload::DriverConfig dcfg;
  dcfg.num_clients = 16;
  dcfg.warmup = 1 * sim::kSec;
  dcfg.measure = 4 * sim::kSec;
  workload::Driver driver(&simulator, system.get(),
                          [&workload] { return workload.NextTxn(); }, dcfg);
  auto m = driver.Run();
  return std::to_string(m.committed) + "/" + std::to_string(m.aborted) + "/" +
         std::to_string(simulator.executed_events()) + "/" +
         std::to_string(network.messages_sent());
}

TEST(DeterminismTest, FabricRunsReplayIdentically) {
  auto make = [](sim::Simulator* simulator, sim::SimNetwork* network,
                 sim::CostModel* costs) {
    FabricConfig config;
    config.num_peers = 4;
    auto system =
        std::make_unique<FabricSystem>(simulator, network, costs, config);
    system->Start();
    simulator->RunFor(1 * sim::kSec);
    return system;
  };
  EXPECT_EQ(TraceRun(7, make), TraceRun(7, make));
  EXPECT_NE(TraceRun(7, make), TraceRun(8, make));
}

TEST(DeterminismTest, QuorumStateDigestsReplayIdentically) {
  auto run = [](uint64_t seed) {
    sim::Simulator simulator(seed);
    sim::SimNetwork network(&simulator, sim::NetworkConfig{});
    sim::CostModel costs;
    QuorumConfig config;
    config.num_nodes = 4;
    config.block_interval = 100 * sim::kMs;
    QuorumSystem system(&simulator, &network, &costs, config);
    system.Start();
    simulator.RunFor(1 * sim::kSec);
    for (int i = 0; i < 20; i++) {
      core::TxnRequest txn;
      txn.txn_id = i + 1;
      txn.client_id = i;
      txn.contract = "ycsb";
      txn.ops = {{core::OpType::kWrite, "k" + std::to_string(i % 7), "v"}};
      system.Submit(txn, [](const core::TxnResult&) {});
    }
    simulator.RunFor(5 * sim::kSec);
    return crypto::DigestHex(system.state_of(0).RootDigest());
  };
  EXPECT_EQ(run(3), run(3));
}

}  // namespace
}  // namespace dicho::systems
