#include "adt/mpt.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace dicho::adt {
namespace {

// Node serialization. Nibbles are stored one per byte — marginally larger
// than Ethereum's hex-prefix packing but simpler to audit; the storage
// overhead comparison (Fig. 13) is unaffected in shape. The byte format is
// frozen: root digests are golden-tested against the original
// std::map-backed implementation.
constexpr char kLeafTag = 'L';
constexpr char kExtTag = 'E';
constexpr char kBranchTag = 'B';

using Digest = crypto::Digest;

// Zero-copy view of a serialized node: path/value are Slices into the
// arena-resident (or proof-owned) raw bytes, which are stable for the life
// of the trie; child digests are copied out since they are only 32 bytes.
struct NodeView {
  char tag = 0;
  Slice path;                 // leaf/ext: nibbles, one per byte
  Slice value;                // leaf/branch
  bool has_value = false;     // branch
  Digest child;               // ext
  Digest children[16];        // branch; valid iff bit set in `bitmap`
  uint32_t bitmap = 0;        // branch: bit i = child i present
};

void AppendPath(std::string* out, const uint8_t* nibbles, size_t n) {
  PutVarint32(out, static_cast<uint32_t>(n));
  out->append(reinterpret_cast<const char*>(nibbles), n);
}

bool ParsePath(Slice* in, Slice* path) {
  uint32_t len;
  if (!GetVarint32(in, &len) || in->size() < len) return false;
  *path = Slice(in->data(), len);
  in->RemovePrefix(len);
  return true;
}

inline Slice DigestSlice(const Digest& d) {
  return Slice(reinterpret_cast<const char*>(d.data()), d.size());
}

void SerializeLeaf(std::string* out, const uint8_t* path, size_t n,
                   const Slice& value) {
  out->clear();
  out->push_back(kLeafTag);
  AppendPath(out, path, n);
  PutLengthPrefixed(out, value);
}

void SerializeExt(std::string* out, const uint8_t* path, size_t n,
                  const Digest& child) {
  out->clear();
  out->push_back(kExtTag);
  AppendPath(out, path, n);
  PutLengthPrefixed(out, DigestSlice(child));
}

void SerializeBranch(std::string* out, const Digest children[16],
                     uint32_t child_bitmap, bool has_value,
                     const Slice& value) {
  out->clear();
  out->push_back(kBranchTag);
  uint32_t bitmap = child_bitmap;
  if (has_value) bitmap |= (1u << 16);
  PutVarint32(out, bitmap);
  for (int i = 0; i < 16; i++) {
    if (child_bitmap & (1u << i)) PutLengthPrefixed(out, DigestSlice(children[i]));
  }
  if (has_value) PutLengthPrefixed(out, value);
}

bool ParseNode(const Slice& raw, NodeView* node) {
  if (raw.empty()) return false;
  Slice in = raw;
  node->tag = in[0];
  in.RemovePrefix(1);
  if (node->tag == kLeafTag) {
    if (!ParsePath(&in, &node->path) || !GetLengthPrefixed(&in, &node->value)) {
      return false;
    }
    node->has_value = true;
    return in.empty();
  }
  if (node->tag == kExtTag) {
    Slice child;
    if (!ParsePath(&in, &node->path) || !GetLengthPrefixed(&in, &child) ||
        child.size() != 32) {
      return false;
    }
    node->child = crypto::DigestFromBytes(child);
    return in.empty();
  }
  if (node->tag == kBranchTag) {
    uint32_t bitmap;
    if (!GetVarint32(&in, &bitmap)) return false;
    node->bitmap = bitmap & 0xFFFF;
    for (int i = 0; i < 16; i++) {
      if (bitmap & (1u << i)) {
        Slice child;
        if (!GetLengthPrefixed(&in, &child) || child.size() != 32) {
          return false;
        }
        node->children[i] = crypto::DigestFromBytes(child);
      }
    }
    node->has_value = (bitmap & (1u << 16)) != 0;
    if (node->has_value) {
      if (!GetLengthPrefixed(&in, &node->value)) return false;
    }
    return in.empty();
  }
  return false;
}

size_t CommonPrefix(const Slice& a, const uint8_t* b, size_t bn) {
  const size_t max = a.size() < bn ? a.size() : bn;
  size_t n = 0;
  while (n < max && static_cast<uint8_t>(a[n]) == b[n]) n++;
  return n;
}

inline const uint8_t* PathBytes(const Slice& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

}  // namespace

void MerklePatriciaTrie::ToNibbles(const Slice& key, Nibbles* out) {
  out->clear();
  out->reserve(key.size() * 2);
  for (size_t i = 0; i < key.size(); i++) {
    uint8_t b = static_cast<uint8_t>(key[i]);
    out->push_back(b >> 4);
    out->push_back(b & 0xF);
  }
}

MerklePatriciaTrie::Digest MerklePatriciaTrie::Store(const Slice& serialized) {
  Digest digest = crypto::Sha256Hash(serialized);
  if (nodes_.Insert(digest, serialized)) {
    total_node_bytes_ += 32 + serialized.size();
  }
  last_update_nodes_++;
  return digest;
}

Status MerklePatriciaTrie::Put(const Slice& key, const Slice& value) {
  ToNibbles(key, &nibbles_scratch_);
  last_update_nodes_ = 0;
  put_replaced_ = false;
  // Copy the root digest: InsertAt must not read through an alias of root_
  // while we overwrite it.
  Digest old_root = root_;
  root_ = InsertAt(has_root_ ? &old_root : nullptr, nibbles_scratch_, 0, value);
  has_root_ = true;
  if (!put_replaced_) size_++;
  return Status::Ok();
}

MerklePatriciaTrie::Digest MerklePatriciaTrie::InsertAt(const Digest* node_digest,
                                                        const Nibbles& path,
                                                        size_t depth,
                                                        const Slice& value) {
  const uint8_t* rest = path.data() + depth;
  const size_t rest_n = path.size() - depth;

  if (node_digest == nullptr) {
    SerializeLeaf(&node_scratch_, rest, rest_n, value);
    return Store(node_scratch_);
  }
  Slice raw;
  bool found = nodes_.Find(*node_digest, &raw);
  assert(found);
  (void)found;
  NodeView node;
  bool ok = ParseNode(raw, &node);
  assert(ok);
  (void)ok;

  if (node.tag == kLeafTag) {
    if (node.path.size() == rest_n &&
        memcmp(node.path.data(), rest, rest_n) == 0) {
      put_replaced_ = true;
      SerializeLeaf(&node_scratch_, rest, rest_n, value);  // overwrite
      return Store(node_scratch_);
    }
    size_t cp = CommonPrefix(node.path, rest, rest_n);
    Digest children[16];
    uint32_t bitmap = 0;
    bool branch_has_value = false;
    Slice branch_value;
    // Existing leaf's continuation.
    if (node.path.size() == cp) {
      branch_has_value = true;
      branch_value = node.value;
    } else {
      uint8_t idx = PathBytes(node.path)[cp];
      SerializeLeaf(&node_scratch_, PathBytes(node.path) + cp + 1,
                    node.path.size() - cp - 1, node.value);
      children[idx] = Store(node_scratch_);
      bitmap |= (1u << idx);
    }
    // New key's continuation.
    if (rest_n == cp) {
      branch_has_value = true;
      branch_value = value;
    } else {
      uint8_t idx = rest[cp];
      SerializeLeaf(&node_scratch_, rest + cp + 1, rest_n - cp - 1, value);
      children[idx] = Store(node_scratch_);
      bitmap |= (1u << idx);
    }
    SerializeBranch(&node_scratch_, children, bitmap, branch_has_value,
                    branch_value);
    Digest branch = Store(node_scratch_);
    if (cp > 0) {
      SerializeExt(&node_scratch_, rest, cp, branch);
      return Store(node_scratch_);
    }
    return branch;
  }

  if (node.tag == kExtTag) {
    size_t cp = CommonPrefix(node.path, rest, rest_n);
    if (cp == node.path.size()) {
      Digest child = InsertAt(&node.child, path, depth + cp, value);
      SerializeExt(&node_scratch_, rest, cp, child);
      return Store(node_scratch_);
    }
    // Split the extension at cp.
    Digest children[16];
    uint32_t bitmap = 0;
    bool branch_has_value = false;
    Slice branch_value;
    // The extension's remainder.
    {
      uint8_t idx = PathBytes(node.path)[cp];
      if (node.path.size() - cp == 1) {
        children[idx] = node.child;
      } else {
        SerializeExt(&node_scratch_, PathBytes(node.path) + cp + 1,
                     node.path.size() - cp - 1, node.child);
        children[idx] = Store(node_scratch_);
      }
      bitmap |= (1u << idx);
    }
    // The new key's remainder.
    if (rest_n == cp) {
      branch_has_value = true;
      branch_value = value;
    } else {
      uint8_t idx = rest[cp];
      SerializeLeaf(&node_scratch_, rest + cp + 1, rest_n - cp - 1, value);
      children[idx] = Store(node_scratch_);
      bitmap |= (1u << idx);
    }
    SerializeBranch(&node_scratch_, children, bitmap, branch_has_value,
                    branch_value);
    Digest branch = Store(node_scratch_);
    if (cp > 0) {
      SerializeExt(&node_scratch_, rest, cp, branch);
      return Store(node_scratch_);
    }
    return branch;
  }

  // Branch.
  if (rest_n == 0) {
    if (node.has_value) put_replaced_ = true;
    SerializeBranch(&node_scratch_, node.children, node.bitmap, true, value);
    return Store(node_scratch_);
  }
  uint8_t idx = rest[0];
  const Digest* child =
      (node.bitmap & (1u << idx)) ? &node.children[idx] : nullptr;
  node.children[idx] = InsertAt(child, path, depth + 1, value);
  node.bitmap |= (1u << idx);
  SerializeBranch(&node_scratch_, node.children, node.bitmap, node.has_value,
                  node.value);
  return Store(node_scratch_);
}

Status MerklePatriciaTrie::Get(const Slice& key, std::string* value) const {
  if (!has_root_) return Status::NotFound();
  thread_local Nibbles path;
  ToNibbles(key, &path);
  return GetAt(root_, path, 0, value, nullptr);
}

Status MerklePatriciaTrie::GetAt(const Digest& node_digest,
                                 const Nibbles& path, size_t depth,
                                 std::string* value,
                                 std::vector<std::string>* proof_nodes) const {
  Slice raw;
  if (!nodes_.Find(node_digest, &raw)) {
    return Status::Corruption("dangling node hash");
  }
  if (proof_nodes != nullptr) proof_nodes->push_back(raw.ToString());
  NodeView node;
  if (!ParseNode(raw, &node)) return Status::Corruption("bad node");

  const uint8_t* rest = path.data() + depth;
  const size_t rest_n = path.size() - depth;
  if (node.tag == kLeafTag) {
    if (node.path.size() != rest_n ||
        memcmp(node.path.data(), rest, rest_n) != 0) {
      return Status::NotFound();
    }
    value->assign(node.value.data(), node.value.size());
    return Status::Ok();
  }
  if (node.tag == kExtTag) {
    size_t cp = CommonPrefix(node.path, rest, rest_n);
    if (cp != node.path.size()) return Status::NotFound();
    return GetAt(node.child, path, depth + cp, value, proof_nodes);
  }
  // Branch.
  if (rest_n == 0) {
    if (!node.has_value) return Status::NotFound();
    value->assign(node.value.data(), node.value.size());
    return Status::Ok();
  }
  if (!(node.bitmap & (1u << rest[0]))) return Status::NotFound();
  return GetAt(node.children[rest[0]], path, depth + 1, value, proof_nodes);
}

Status MerklePatriciaTrie::Prove(const Slice& key, Proof* proof) const {
  proof->nodes.clear();
  if (!has_root_) return Status::NotFound();
  thread_local Nibbles path;
  ToNibbles(key, &path);
  std::string value;
  return GetAt(root_, path, 0, &value, &proof->nodes);
}

uint64_t MerklePatriciaTrie::ReachableBytes() const {
  if (!has_root_) return 0;
  return ReachableBytesAt(root_);
}

uint64_t MerklePatriciaTrie::ReachableBytesAt(const Digest& node_digest) const {
  Slice raw;
  if (!nodes_.Find(node_digest, &raw)) return 0;
  NodeView node;
  if (!ParseNode(raw, &node)) return 0;
  uint64_t total = 32 + raw.size();
  if (node.tag == kExtTag) {
    total += ReachableBytesAt(node.child);
  } else if (node.tag == kBranchTag) {
    for (int i = 0; i < 16; i++) {
      if (node.bitmap & (1u << i)) total += ReachableBytesAt(node.children[i]);
    }
  }
  return total;
}

bool VerifyMptProof(const crypto::Digest& root, const Slice& key,
                    const Slice& value,
                    const MerklePatriciaTrie::Proof& proof) {
  if (proof.nodes.empty()) return false;
  std::vector<uint8_t> path;
  path.reserve(key.size() * 2);
  for (size_t i = 0; i < key.size(); i++) {
    uint8_t b = static_cast<uint8_t>(key[i]);
    path.push_back(b >> 4);
    path.push_back(b & 0xF);
  }

  Digest expected = root;
  size_t depth = 0;
  for (size_t n = 0; n < proof.nodes.size(); n++) {
    const std::string& raw = proof.nodes[n];
    if (crypto::Sha256Hash(raw) != expected) return false;
    NodeView node;
    if (!ParseNode(raw, &node)) return false;
    const uint8_t* rest = path.data() + depth;
    const size_t rest_n = path.size() - depth;
    if (node.tag == kLeafTag) {
      return n == proof.nodes.size() - 1 && node.path.size() == rest_n &&
             memcmp(node.path.data(), rest, rest_n) == 0 &&
             node.value == value;
    }
    if (node.tag == kExtTag) {
      size_t cp = CommonPrefix(node.path, rest, rest_n);
      if (cp != node.path.size()) return false;
      depth += cp;
      expected = node.child;
      continue;
    }
    // Branch.
    if (rest_n == 0) {
      return n == proof.nodes.size() - 1 && node.has_value &&
             node.value == value;
    }
    if (!(node.bitmap & (1u << rest[0]))) return false;
    expected = node.children[rest[0]];
    depth += 1;
  }
  return false;  // ran out of nodes before reaching the terminal
}

}  // namespace dicho::adt
