#include "txn/lock_table.h"

#include <cassert>

namespace dicho::txn {

void LockTable::RegisterTxn(uint64_t txn_id, uint64_t priority_ts,
                            WoundFn wound) {
  txns_[txn_id] = TxnInfo{priority_ts, std::move(wound), false, {}};
}

void LockTable::Acquire(uint64_t txn_id, const std::string& key,
                        GrantFn granted) {
  auto txn_it = txns_.find(txn_id);
  assert(txn_it != txns_.end());

  auto holder_it = holders_.find(key);
  if (holder_it == holders_.end()) {
    holders_[key] = txn_id;
    txn_it->second.held.insert(key);
    granted();
    return;
  }
  if (holder_it->second == txn_id) {
    granted();  // re-entrant
    return;
  }

  TxnInfo& requester = txn_it->second;
  TxnInfo& holder = txns_.at(holder_it->second);
  if (requester.priority_ts < holder.priority_ts && !holder.wounded) {
    // Wound-wait: the older transaction wounds the younger holder. The
    // wounded transaction is expected to call ReleaseAll from its wound
    // callback (or soon after), which hands the lock over.
    holder.wounded = true;
    wounds_++;
    WoundFn wound = holder.wound;
    queues_[key].push_back({txn_id, std::move(granted)});
    waits_++;
    if (wound) wound();
    return;
  }
  // Younger (or equal) requester waits.
  queues_[key].push_back({txn_id, std::move(granted)});
  waits_++;
}

void LockTable::ReleaseAll(uint64_t txn_id) {
  auto txn_it = txns_.find(txn_id);
  if (txn_it == txns_.end()) return;

  // Remove from all wait queues first (aborted transactions may be queued).
  for (auto& [key, queue] : queues_) {
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->txn_id == txn_id) {
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::set<std::string> held = std::move(txn_it->second.held);
  txns_.erase(txn_it);
  for (const auto& key : held) {
    holders_.erase(key);
    GrantNext(key);
  }
}

void LockTable::GrantNext(const std::string& key) {
  auto queue_it = queues_.find(key);
  if (queue_it == queues_.end()) return;
  auto& queue = queue_it->second;
  // Grant the oldest (highest-priority) waiter, not the FIFO front. The
  // wound check runs only at Acquire time against the holder of that moment;
  // handing the lock to a younger front waiter would leave any older
  // transaction queued behind it waiting on a younger holder it never got
  // the chance to wound — an edge wound-wait's deadlock-freedom argument
  // forbids, and a real deadlock once that younger holder blocks on a lock
  // the older one holds. Priority-ordered handoff keeps every handoff edge
  // young-waits-on-old.
  auto best = queue.end();
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    auto txn_it = txns_.find(it->txn_id);
    if (txn_it == txns_.end()) continue;  // waiter already gone
    if (best == queue.end() ||
        txn_it->second.priority_ts < txns_.at(best->txn_id).priority_ts) {
      best = it;
    }
  }
  if (best == queue.end()) {
    queues_.erase(queue_it);
    return;
  }
  Waiter waiter = std::move(*best);
  queue.erase(best);
  holders_[key] = waiter.txn_id;
  txns_.at(waiter.txn_id).held.insert(key);
  if (queue.empty()) queues_.erase(queue_it);
  waiter.granted();
}

bool LockTable::IsHeldBy(const std::string& key, uint64_t txn_id) const {
  auto it = holders_.find(key);
  return it != holders_.end() && it->second == txn_id;
}

}  // namespace dicho::txn
