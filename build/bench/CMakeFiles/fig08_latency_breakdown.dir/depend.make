# Empty dependencies file for fig08_latency_breakdown.
# This may be replaced when dependencies are built.
