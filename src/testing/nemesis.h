#ifndef DICHO_TESTING_NEMESIS_H_
#define DICHO_TESTING_NEMESIS_H_

#include <functional>
#include <set>

#include "sim/network.h"
#include "sim/simulator.h"
#include "testing/schedule.h"

namespace dicho::testing {

/// Applies a FaultSchedule to a running world: crash/restart go through the
/// target's hooks (so protocol state is torn down the way the component
/// models it), partitions/drops/jitter go straight to the SimNetwork. All
/// actions are scheduled as simulator events, so the nemesis is as
/// deterministic as everything else in the world.
class Nemesis {
 public:
  struct Hooks {
    std::function<void(sim::NodeId)> crash;
    std::function<void(sim::NodeId)> restart;
    /// Elasticity (optional; scenarios without a lifecycle layer leave these
    /// empty and their schedules never emit the matching kinds). The hook
    /// fires at the action's time; the protocol work it kicks off — snapshot
    /// transfer, config-change replication, leadership drain — completes
    /// asynchronously over subsequent simulated round trips.
    std::function<void(sim::NodeId)> join;
    std::function<void(sim::NodeId)> leave;
    std::function<void(sim::NodeId)> drain;
  };

  Nemesis(sim::Simulator* sim, sim::SimNetwork* net, Hooks hooks)
      : sim_(sim),
        net_(net),
        hooks_(std::move(hooks)),
        default_drop_(net->config().drop_rate),
        default_jitter_(net->config().jitter_us) {}

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  /// Schedules every action. Call once, before running the simulator.
  void Arm(const FaultSchedule& schedule) {
    for (const auto& action : schedule.actions) {
      sim_->ScheduleAt(action.at, [this, action] { Apply(action); });
    }
  }

  /// Partitioned-world variant: every action runs as a global event
  /// (Simulator::ScheduleGlobalAt), i.e. with all partitions parked — the
  /// only safe way to mutate world-shared fault state (crash flags, network
  /// partitions, drop/jitter knobs) under the parallel engine. Hooks that
  /// touch node-local state should wrap themselves in the node's
  /// PartitionScope so timers and RNG draws stay on the node's own stream.
  void ArmGlobal(const FaultSchedule& schedule) {
    for (const auto& action : schedule.actions) {
      sim_->ScheduleGlobalAt(action.at, [this, action] { Apply(action); });
    }
  }

  bool IsDown(sim::NodeId node) const { return down_.count(node) > 0; }
  uint64_t steps_applied() const { return steps_applied_; }

 private:
  void Apply(const FaultAction& action) {
    steps_applied_++;
    switch (action.kind) {
      case FaultAction::Kind::kCrash:
        down_.insert(action.node);
        if (hooks_.crash) hooks_.crash(action.node);
        break;
      case FaultAction::Kind::kRestart:
        down_.erase(action.node);
        if (hooks_.restart) hooks_.restart(action.node);
        break;
      case FaultAction::Kind::kPartition:
        net_->Partition(action.groups);
        break;
      case FaultAction::Kind::kHeal:
        net_->HealPartition();
        break;
      case FaultAction::Kind::kDropStart:
        net_->set_drop_rate(action.drop_rate);
        break;
      case FaultAction::Kind::kDropStop:
        net_->set_drop_rate(default_drop_);
        break;
      case FaultAction::Kind::kJitterSpike:
        net_->set_jitter(action.jitter_us);
        break;
      case FaultAction::Kind::kJitterRestore:
        net_->set_jitter(default_jitter_);
        break;
      case FaultAction::Kind::kJoin:
        if (hooks_.join) hooks_.join(action.node);
        break;
      case FaultAction::Kind::kLeave:
        if (hooks_.leave) hooks_.leave(action.node);
        break;
      case FaultAction::Kind::kDrain:
        if (hooks_.drain) hooks_.drain(action.node);
        break;
    }
  }

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  Hooks hooks_;
  double default_drop_;
  sim::Time default_jitter_;
  std::set<sim::NodeId> down_;
  uint64_t steps_applied_ = 0;
};

}  // namespace dicho::testing

#endif  // DICHO_TESTING_NEMESIS_H_
