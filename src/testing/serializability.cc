#include "testing/serializability.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>

#include "common/random.h"
#include "txn/lock_table.h"
#include "txn/mvcc.h"
#include "txn/occ.h"

namespace dicho::testing {

namespace {

std::string KeyName(uint64_t i) { return "key" + std::to_string(i); }

std::string ValueOf(uint64_t txn_id, uint64_t op) {
  return "t" + std::to_string(txn_id) + "o" + std::to_string(op);
}

/// 1..max_ops distinct random keys.
std::vector<std::string> PickKeys(Rng* rng, const HistoryConfig& config) {
  uint32_t count = static_cast<uint32_t>(
      1 + rng->Uniform(std::min(config.max_ops, config.num_keys)));
  std::set<uint64_t> picked;
  while (picked.size() < count) picked.insert(rng->Uniform(config.num_keys));
  std::vector<std::string> keys;
  for (uint64_t k : picked) keys.push_back(KeyName(k));
  // Random acquisition/read order (std::set iteration is sorted; shuffle).
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rng->Uniform(i)]);
  }
  return keys;
}

/// Reads every key in the universe from `get` and appends the result as a
/// final audit transaction, so CheckSerialEquivalence also certifies the
/// final state of the store.
template <typename GetFn>
void AppendFinalAudit(const HistoryConfig& config, uint64_t order, GetFn get,
                      HistoryResult* result) {
  RecordedTxn audit;
  audit.id = UINT64_MAX;
  audit.serial_order = order;
  for (uint64_t k = 0; k < config.num_keys; k++) {
    audit.reads.emplace_back(KeyName(k), get(KeyName(k)));
  }
  result->committed.push_back(std::move(audit));
}

}  // namespace

bool CheckSerialEquivalence(const std::map<std::string, std::string>& initial,
                            std::vector<RecordedTxn> committed,
                            std::string* error) {
  std::stable_sort(committed.begin(), committed.end(),
                   [](const RecordedTxn& a, const RecordedTxn& b) {
                     return a.serial_order < b.serial_order;
                   });
  for (size_t i = 1; i < committed.size(); i++) {
    if (committed[i].serial_order == committed[i - 1].serial_order) {
      if (error) {
        *error = "duplicate serial order " +
                 std::to_string(committed[i].serial_order) + " (txns " +
                 std::to_string(committed[i - 1].id) + ", " +
                 std::to_string(committed[i].id) + ")";
      }
      return false;
    }
  }
  std::map<std::string, std::string> oracle = initial;
  for (const RecordedTxn& txn : committed) {
    for (const auto& [key, seen] : txn.reads) {
      auto it = oracle.find(key);
      const std::string& expected = it == oracle.end() ? std::string() : it->second;
      if (seen != expected) {
        if (error) {
          *error = "txn " + std::to_string(txn.id) + " (serial position " +
                   std::to_string(txn.serial_order) + ") read '" + seen +
                   "' from " + key + " but the serial oracle holds '" +
                   expected + "'";
        }
        return false;
      }
    }
    for (const auto& [key, value] : txn.writes) oracle[key] = value;
  }
  return true;
}

// --- OCC -------------------------------------------------------------------

HistoryResult RunOccHistory(uint64_t seed, const HistoryConfig& config) {
  Rng rng(seed ^ 0x0CCull);
  txn::VersionedState state;
  HistoryResult result;

  struct OccTxn {
    uint64_t id;
    std::vector<std::string> read_keys;
    std::vector<std::pair<std::string, std::string>> writes;
    // Execution state.
    size_t next_read = 0;
    std::vector<std::pair<std::string, uint64_t>> version_set;
    std::vector<std::pair<std::string, std::string>> observed;
  };

  // Pre-generate the workload so interleaving choices don't change it.
  std::deque<OccTxn> pending;
  for (uint64_t id = 0; id < config.num_txns; id++) {
    OccTxn txn;
    txn.id = id;
    txn.read_keys = PickKeys(&rng, config);
    if (!rng.Bernoulli(config.read_only_prob)) {
      uint64_t op = 0;
      for (const std::string& key : PickKeys(&rng, config)) {
        txn.writes.emplace_back(key, ValueOf(id, op++));
      }
    }
    pending.push_back(std::move(txn));
  }
  result.attempted = pending.size();

  uint64_t commit_counter = 0;
  std::vector<OccTxn> active;
  while (!pending.empty() || !active.empty()) {
    while (active.size() < config.max_concurrent && !pending.empty()) {
      active.push_back(std::move(pending.front()));
      pending.pop_front();
    }
    size_t pick = rng.Uniform(active.size());
    OccTxn& txn = active[pick];
    if (txn.next_read < txn.read_keys.size()) {
      const std::string& key = txn.read_keys[txn.next_read++];
      std::string value;
      uint64_t version = 0;
      state.Get(key, &value, &version);
      txn.version_set.emplace_back(key, version);
      txn.observed.emplace_back(key, value);
    } else {
      // Commit step: optimistic validation against current versions.
      std::string conflict;
      if (state.Validate(txn.version_set, &conflict)) {
        commit_counter++;
        state.Apply(txn.writes, commit_counter);
        RecordedTxn record;
        record.id = txn.id;
        record.serial_order = commit_counter;
        record.reads = std::move(txn.observed);
        record.writes = std::move(txn.writes);
        result.committed.push_back(std::move(record));
      } else {
        result.aborted++;
      }
      active.erase(active.begin() + pick);
    }
  }

  AppendFinalAudit(config, commit_counter + 1,
                   [&state](const std::string& key) {
                     std::string value;
                     uint64_t version = 0;
                     state.Get(key, &value, &version);
                     return value;
                   },
                   &result);
  return result;
}

// --- MVCC (Percolator two-phase) -------------------------------------------

HistoryResult RunMvccHistory(uint64_t seed, const HistoryConfig& config) {
  Rng rng(seed ^ 0x3FCCull);
  txn::MvccStore store;
  HistoryResult result;

  // Writers are read-modify-write (write set == read set): under snapshot
  // isolation with Percolator's first-committer-wins, RMW histories are
  // serializable in commit_ts order, and read-only snapshots serialize at
  // their start_ts. (Allowing reads outside the write set would admit write
  // skew, which SI permits and a serializability check would rightly flag.)
  struct MvccTxn {
    uint64_t id;
    std::vector<std::string> keys;
    bool read_only;
    enum class Phase { kStart, kRead, kPrewrite, kCommit } phase = Phase::kStart;
    uint64_t start_ts = 0;
    size_t next_read = 0;
    uint64_t read_retries = 0;
    std::vector<std::pair<std::string, std::string>> observed;
  };

  std::deque<MvccTxn> pending;
  for (uint64_t id = 0; id < config.num_txns; id++) {
    MvccTxn txn;
    txn.id = id;
    txn.keys = PickKeys(&rng, config);
    txn.read_only = rng.Bernoulli(config.read_only_prob);
    pending.push_back(std::move(txn));
  }
  result.attempted = pending.size();

  uint64_t ts = 0;
  constexpr uint64_t kMaxRetries = 1000;
  std::vector<MvccTxn> active;
  while (!pending.empty() || !active.empty()) {
    while (active.size() < config.max_concurrent && !pending.empty()) {
      active.push_back(std::move(pending.front()));
      pending.pop_front();
    }
    size_t pick = rng.Uniform(active.size());
    MvccTxn& txn = active[pick];
    bool finished = false;
    bool aborted = false;
    switch (txn.phase) {
      case MvccTxn::Phase::kStart:
        txn.start_ts = ++ts;
        txn.phase = MvccTxn::Phase::kRead;
        break;
      case MvccTxn::Phase::kRead: {
        const std::string& key = txn.keys[txn.next_read];
        std::string value;
        Status s = store.GetSnapshot(key, txn.start_ts, &value);
        if (s.IsConflict()) {
          // Blocked by a lock from an older transaction; retry after other
          // transactions get to run (they resolve the lock).
          if (++txn.read_retries > kMaxRetries) {
            result.errors.push_back("mvcc txn " + std::to_string(txn.id) +
                                    " stuck behind a lock on " + key);
            aborted = true;
          }
          break;
        }
        txn.observed.emplace_back(key, s.ok() ? value : "");
        if (++txn.next_read >= txn.keys.size()) {
          txn.phase = txn.read_only ? MvccTxn::Phase::kCommit
                                    : MvccTxn::Phase::kPrewrite;
        }
        break;
      }
      case MvccTxn::Phase::kPrewrite: {
        // Primary-first prewrite over the sorted write set; any conflict
        // aborts the whole transaction (Percolator's abort-fast choice).
        std::vector<std::string> sorted = txn.keys;
        std::sort(sorted.begin(), sorted.end());
        const std::string& primary = sorted[0];
        bool failed = false;
        size_t placed = 0;
        for (const std::string& key : sorted) {
          Status s = store.Prewrite(key, ValueOf(txn.id, placed), txn.start_ts,
                                    primary, txn.id);
          if (!s.ok()) {
            failed = true;
            break;
          }
          placed++;
        }
        if (failed) {
          for (size_t i = 0; i < placed; i++) {
            store.Rollback(sorted[i], txn.start_ts);
          }
          aborted = true;
        } else {
          txn.phase = MvccTxn::Phase::kCommit;
        }
        break;
      }
      case MvccTxn::Phase::kCommit: {
        RecordedTxn record;
        record.id = txn.id;
        record.reads = std::move(txn.observed);
        if (txn.read_only) {
          record.serial_order = txn.start_ts;
        } else {
          uint64_t commit_ts = ++ts;
          std::vector<std::string> sorted = txn.keys;
          std::sort(sorted.begin(), sorted.end());
          size_t op = 0;
          for (const std::string& key : sorted) {
            store.Commit(key, txn.start_ts, commit_ts);
            record.writes.emplace_back(key, ValueOf(txn.id, op++));
          }
          record.serial_order = commit_ts;
        }
        result.committed.push_back(std::move(record));
        finished = true;
        break;
      }
    }
    if (aborted) result.aborted++;
    if (finished || aborted) active.erase(active.begin() + pick);
  }

  uint64_t audit_ts = ++ts;
  AppendFinalAudit(config, audit_ts,
                   [&store, audit_ts](const std::string& key) {
                     std::string value;
                     Status s = store.GetSnapshot(key, audit_ts, &value);
                     return s.ok() ? value : std::string();
                   },
                   &result);
  return result;
}

// --- Lock table (wound-wait strict 2PL) ------------------------------------

HistoryResult RunLockTableHistory(uint64_t seed, const HistoryConfig& config) {
  Rng rng(seed ^ 0x10CCull);
  txn::LockTable locks;
  std::map<std::string, std::string> state;
  HistoryResult result;

  struct LockTxn {
    uint64_t id;
    std::vector<std::string> keys;  // random order — exercises wound-wait
    bool read_only;
    size_t next_key = 0;
    bool waiting = false;
    bool wounded = false;
    std::vector<std::pair<std::string, std::string>> observed;
  };

  std::deque<LockTxn> pending;
  for (uint64_t id = 0; id < config.num_txns; id++) {
    LockTxn txn;
    txn.id = id;
    txn.keys = PickKeys(&rng, config);
    txn.read_only = rng.Bernoulli(config.read_only_prob);
    pending.push_back(std::move(txn));
  }
  result.attempted = pending.size();

  uint64_t commit_counter = 0;
  std::vector<LockTxn*> active;  // stable pointers — grant callbacks capture
  std::vector<std::unique_ptr<LockTxn>> storage;
  uint64_t safety_steps = 0;
  const uint64_t max_steps = 1000ull * config.num_txns * config.max_ops + 10000;

  auto finish = [&](LockTxn* txn, bool commit) {
    if (commit) {
      RecordedTxn record;
      record.id = txn->id;
      record.serial_order = ++commit_counter;
      record.reads = std::move(txn->observed);
      if (!txn->read_only) {
        uint64_t op = 0;
        for (const std::string& key : txn->keys) {
          record.writes.emplace_back(key, ValueOf(txn->id, op));
          state[key] = ValueOf(txn->id, op);
          op++;
        }
      }
      result.committed.push_back(std::move(record));
    } else {
      result.aborted++;
    }
    locks.ReleaseAll(txn->id);  // strict 2PL: all locks drop at the end
    active.erase(std::find(active.begin(), active.end(), txn));
  };

  while (!pending.empty() || !active.empty()) {
    if (++safety_steps > max_steps) {
      result.errors.push_back("lock-table scheduler exceeded its step budget "
                              "(wound-wait should be deadlock-free)");
      break;
    }
    while (active.size() < config.max_concurrent && !pending.empty()) {
      storage.push_back(std::make_unique<LockTxn>(std::move(pending.front())));
      pending.pop_front();
      LockTxn* txn = storage.back().get();
      active.push_back(txn);
      // Priority = admission order: earlier transactions are older.
      locks.RegisterTxn(txn->id, txn->id, [txn] { txn->wounded = true; });
    }
    // Step a runnable transaction: wounded ones abort; waiters are parked
    // until their grant callback fires.
    std::vector<LockTxn*> runnable;
    for (LockTxn* txn : active) {
      if (txn->wounded || !txn->waiting) runnable.push_back(txn);
    }
    if (runnable.empty()) {
      std::string dump =
          "lock-table scheduler stalled: every active transaction is waiting:";
      for (LockTxn* t : active) {
        dump += " txn" + std::to_string(t->id) + "(next_key=" +
                std::to_string(t->next_key) + "/" +
                std::to_string(t->keys.size()) + " wants=" +
                (t->next_key < t->keys.size() ? t->keys[t->next_key] : "-") +
                " holds=";
        for (size_t i = 0; i < t->next_key; i++) {
          dump += t->keys[i] + (locks.IsHeldBy(t->keys[i], t->id) ? "+" : "!");
        }
        dump += ")";
      }
      result.errors.push_back(dump);
      break;
    }
    LockTxn* txn = runnable[rng.Uniform(runnable.size())];
    if (txn->wounded) {
      finish(txn, /*commit=*/false);
      continue;
    }
    if (txn->next_key < txn->keys.size()) {
      const std::string& key = txn->keys[txn->next_key];
      txn->waiting = true;
      locks.Acquire(txn->id, key, [txn, key, &state] {
        txn->waiting = false;
        txn->next_key++;
        // Read under the exclusive lock: the value is pinned until release,
        // so it is the value as of this transaction's commit point.
        auto it = state.find(key);
        txn->observed.emplace_back(
            key, it == state.end() ? std::string() : it->second);
      });
      continue;
    }
    finish(txn, /*commit=*/true);
  }

  AppendFinalAudit(config, commit_counter + 1,
                   [&state](const std::string& key) {
                     auto it = state.find(key);
                     return it == state.end() ? std::string() : it->second;
                   },
                   &result);
  return result;
}

}  // namespace dicho::testing
