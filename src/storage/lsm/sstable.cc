#include "storage/lsm/sstable.h"

#include <cassert>
#include <functional>

#include "common/coding.h"

namespace dicho::storage::lsm {

TableBuilder::TableBuilder(WritableFile* file, size_t block_size,
                           int bloom_bits_per_key)
    : file_(file),
      block_size_(block_size),
      bloom_(bloom_bits_per_key),
      data_block_(),
      index_block_() {}

void TableBuilder::Add(const Slice& ikey, const Slice& value) {
  if (num_entries_ == 0) first_key_ = ikey.ToString();
  if (pending_index_) {
    // The previous data block ended; index it under its last key now that we
    // know where the block boundary is.
    std::string handle_enc;
    pending_handle_.EncodeTo(&handle_enc);
    index_block_.Add(pending_index_key_, handle_enc);
    pending_index_ = false;
  }

  user_keys_.push_back(ExtractUserKey(ikey).ToString());
  data_block_.Add(ikey, value);
  last_key_ = ikey.ToString();
  num_entries_++;

  if (data_block_.CurrentSizeEstimate() >= block_size_) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return;
  Slice contents = data_block_.Finish();
  WriteBlock(contents, &pending_handle_);
  pending_index_key_ = last_key_;
  pending_index_ = true;
  data_block_.Reset();
}

Status TableBuilder::WriteBlock(const Slice& contents, BlockHandle* handle) {
  handle->offset = offset_;
  handle->size = contents.size();
  Status s = file_->Append(contents);
  offset_ += contents.size();
  return s;
}

Status TableBuilder::Finish() {
  FlushDataBlock();
  if (pending_index_) {
    std::string handle_enc;
    pending_handle_.EncodeTo(&handle_enc);
    index_block_.Add(pending_index_key_, handle_enc);
    pending_index_ = false;
  }

  // Filter block.
  std::string filter_contents;
  std::vector<Slice> key_slices;
  key_slices.reserve(user_keys_.size());
  for (const auto& k : user_keys_) key_slices.emplace_back(k);
  bloom_.CreateFilter(key_slices, &filter_contents);
  BlockHandle filter_handle;
  Status s = WriteBlock(filter_contents, &filter_handle);
  if (!s.ok()) return s;

  // Index block.
  BlockHandle index_handle;
  s = WriteBlock(index_block_.Finish(), &index_handle);
  if (!s.ok()) return s;

  // Footer: fixed-size would be simpler but varint handles are fine if we
  // pad to a fixed 48-byte footer.
  std::string footer;
  filter_handle.EncodeTo(&footer);
  index_handle.EncodeTo(&footer);
  footer.resize(40);  // pad handles region
  PutFixed64(&footer, kTableMagic);
  s = file_->Append(footer);
  if (!s.ok()) return s;
  offset_ += footer.size();
  return file_->Sync();
}

Status Table::Open(std::unique_ptr<RandomAccessFile> file,
                   std::unique_ptr<Table>* table) {
  uint64_t size = file->Size();
  if (size < 48) return Status::Corruption("table too small");

  std::string scratch;
  Slice footer;
  Status s = file->Read(size - 48, 48, &footer, &scratch);
  if (!s.ok()) return s;
  if (footer.size() != 48) return Status::Corruption("bad footer length");
  uint64_t magic = DecodeFixed64(footer.data() + 40);
  if (magic != kTableMagic) return Status::Corruption("bad table magic");

  Slice handles(footer.data(), 40);
  BlockHandle filter_handle, index_handle;
  if (!filter_handle.DecodeFrom(&handles) ||
      !index_handle.DecodeFrom(&handles)) {
    return Status::Corruption("bad block handles");
  }

  auto t = std::unique_ptr<Table>(new Table());
  t->file_ = std::move(file);

  s = t->ReadBlockContents(filter_handle, &t->filter_);
  if (!s.ok()) return s;
  std::string index_contents;
  s = t->ReadBlockContents(index_handle, &index_contents);
  if (!s.ok()) return s;
  t->index_ = std::make_unique<Block>(std::move(index_contents));

  *table = std::move(t);
  return Status::Ok();
}

Status Table::ReadBlockContents(const BlockHandle& handle,
                                std::string* out) const {
  std::string scratch;
  Slice result;
  Status s = file_->Read(handle.offset, handle.size, &result, &scratch);
  if (!s.ok()) return s;
  if (result.size() != handle.size) return Status::Corruption("short block read");
  *out = result.ToString();
  return Status::Ok();
}

Status Table::Get(const Slice& ikey, std::string* ikey_found,
                  std::string* value) {
  if (!bloom_.KeyMayMatch(ExtractUserKey(ikey), filter_)) {
    bloom_negatives_++;
    return Status::NotFound();
  }
  auto index_iter = index_->NewIterator();
  index_iter->Seek(ikey);
  if (!index_iter->Valid()) return Status::NotFound();

  BlockHandle handle;
  Slice handle_slice = index_iter->value();
  if (!handle.DecodeFrom(&handle_slice)) {
    return Status::Corruption("bad index entry");
  }
  std::string contents;
  Status s = ReadBlockContents(handle, &contents);
  if (!s.ok()) return s;
  Block block(std::move(contents));
  auto it = block.NewIterator();
  it->Seek(ikey);
  if (!it->Valid()) return Status::NotFound();
  if (ExtractUserKey(it->key()) != ExtractUserKey(ikey)) {
    return Status::NotFound();
  }
  *ikey_found = it->key().ToString();
  *value = it->value().ToString();
  return Status::Ok();
}

namespace {

/// Two-level iterator: walks the index block; materializes one data block at
/// a time.
class TableIteratorImpl : public storage::Iterator {
 public:
  TableIteratorImpl(const Table* table, const Block* index,
                    const std::function<Status(const BlockHandle&, std::string*)>&
                        read_block)
      : index_iter_(index->NewIterator()), read_block_(read_block) {
    (void)table;
  }

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyBlocksForward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

 private:
  void InitDataBlock() {
    data_block_.reset();
    data_iter_.reset();
    if (!index_iter_->Valid()) return;
    BlockHandle handle;
    Slice v = index_iter_->value();
    if (!handle.DecodeFrom(&v)) return;
    std::string contents;
    if (!read_block_(handle, &contents).ok()) return;
    data_block_ = std::make_unique<Block>(std::move(contents));
    data_iter_ = data_block_->NewIterator();
  }

  void SkipEmptyBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  std::unique_ptr<storage::Iterator> index_iter_;
  std::function<Status(const BlockHandle&, std::string*)> read_block_;
  std::unique_ptr<Block> data_block_;
  std::unique_ptr<Block::Iter> data_iter_;
};

}  // namespace

std::unique_ptr<storage::Iterator> Table::NewIterator() const {
  return std::make_unique<TableIteratorImpl>(
      this, index_.get(),
      [this](const BlockHandle& h, std::string* out) {
        return ReadBlockContents(h, out);
      });
}

}  // namespace dicho::storage::lsm
