#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "sharding/partition.h"
#include "sharding/two_pc.h"

namespace dicho::sharding {
namespace {

TEST(PartitionTest, HashCoversAllShardsRoughlyEvenly) {
  HashPartitioner part(8);
  std::map<uint32_t, int> counts;
  for (int i = 0; i < 8000; i++) {
    uint32_t shard = part.ShardOf("key" + std::to_string(i));
    ASSERT_LT(shard, 8u);
    counts[shard]++;
  }
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, 700) << shard;
    EXPECT_LT(count, 1300) << shard;
  }
}

TEST(PartitionTest, HashIsDeterministic) {
  HashPartitioner a(16), b(16);
  for (int i = 0; i < 100; i++) {
    std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a.ShardOf(key), b.ShardOf(key));
  }
}

TEST(PartitionTest, RangeRespectsBoundaries) {
  RangePartitioner part({"g", "p"});
  EXPECT_EQ(part.num_shards(), 3u);
  EXPECT_EQ(part.ShardOf("apple"), 0u);
  EXPECT_EQ(part.ShardOf("g"), 1u);  // boundary goes right
  EXPECT_EQ(part.ShardOf("hat"), 1u);
  EXPECT_EQ(part.ShardOf("zebra"), 2u);
}

struct TwoPcHarness {
  TwoPcHarness() : sim(42), net(&sim, sim::NetworkConfig{}), coord(&sim, &net, 0) {}

  /// A participant at `node` voting `vote`, tracking outcomes.
  TwoPcParticipant Participant(NodeId node, bool vote) {
    prepared[node] = false;
    finished[node] = 0;
    return TwoPcParticipant{
        node,
        [this, node, vote](uint64_t, std::function<void(bool)> reply) {
          prepared[node] = true;
          reply(vote);
        },
        [this, node](uint64_t, bool commit) {
          finished[node] = commit ? 1 : -1;
        }};
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  TwoPcCoordinator coord;
  std::map<NodeId, bool> prepared;
  std::map<NodeId, int> finished;  // 0 pending, 1 committed, -1 aborted
};

TEST(TwoPcTest, AllYesCommits) {
  TwoPcHarness h;
  Status outcome = Status::Internal("not called");
  h.coord.Run(1, {h.Participant(1, true), h.Participant(2, true)},
              [&](Status s) { outcome = s; });
  h.sim.RunFor(1 * sim::kSec);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(h.finished[1], 1);
  EXPECT_EQ(h.finished[2], 1);
  EXPECT_EQ(h.coord.committed(), 1u);
}

TEST(TwoPcTest, AnyNoAborts) {
  TwoPcHarness h;
  Status outcome;
  h.coord.Run(1, {h.Participant(1, true), h.Participant(2, false)},
              [&](Status s) { outcome = s; });
  h.sim.RunFor(1 * sim::kSec);
  EXPECT_TRUE(outcome.IsAborted());
  // Atomicity: both sides abort, including the yes-voter.
  EXPECT_EQ(h.finished[1], -1);
  EXPECT_EQ(h.finished[2], -1);
}

TEST(TwoPcTest, CoordinatorCrashBlocksParticipants) {
  TwoPcHarness h;
  h.coord.CrashBeforeDecision();
  bool called = false;
  h.coord.Run(1, {h.Participant(1, true), h.Participant(2, true)},
              [&](Status) { called = true; });
  h.sim.RunFor(2 * sim::kSec);
  // Participants prepared, then nothing: the classic blocking anomaly.
  EXPECT_TRUE(h.prepared[1]);
  EXPECT_TRUE(h.prepared[2]);
  EXPECT_EQ(h.finished[1], 0);
  EXPECT_EQ(h.finished[2], 0);
  EXPECT_FALSE(called);
  EXPECT_EQ(h.coord.blocked(), 1u);
}

TEST(ShardFormationTest, FailureProbabilityBasics) {
  // No Byzantine nodes: formation can never fail.
  EXPECT_DOUBLE_EQ(ShardFailureProbability(100, 0, 10, 1.0 / 3), 0.0);
  // All Byzantine: always fails.
  EXPECT_NEAR(ShardFailureProbability(100, 100, 10, 1.0 / 3), 1.0, 1e-9);
  // Monotonic in the number of Byzantine nodes.
  double p10 = ShardFailureProbability(100, 10, 10, 1.0 / 3);
  double p25 = ShardFailureProbability(100, 25, 10, 1.0 / 3);
  EXPECT_LT(p10, p25);
  EXPECT_GT(p10, 0.0);
}

TEST(ShardFormationTest, BiggerShardsAreSafer) {
  // The paper's point (3.4.1): shard size must be large enough that the
  // sampled Byzantine fraction stays below threshold.
  double small = ShardFailureProbability(600, 150, 12, 1.0 / 3);
  double large = ShardFailureProbability(600, 150, 120, 1.0 / 3);
  EXPECT_LT(large, small / 10);
}

TEST(ShardFormationTest, MatchesMonteCarlo) {
  const uint32_t n = 60, b = 15, s = 9;
  const double threshold = 1.0 / 3;
  double analytic = ShardFailureProbability(n, b, s, threshold);
  Rng rng(4242);
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < n; i++) nodes.push_back(i);
  int failures = 0;
  const int kTrials = 20000;
  uint32_t bad_needed = static_cast<uint32_t>(std::ceil(threshold * s));
  for (int t = 0; t < kTrials; t++) {
    auto shards = RandomShardAssignment(nodes, s, &rng);
    uint32_t bad = 0;
    for (NodeId id : shards[0]) {
      if (id < b) bad++;
    }
    if (bad >= bad_needed) failures++;
  }
  double empirical = static_cast<double>(failures) / kTrials;
  EXPECT_NEAR(empirical, analytic, 0.02);
}

TEST(ShardFormationTest, AnyShardBoundGrowsWithShardCount) {
  double one = AnyShardFailureProbability(1000, 200, 50, 1.0 / 3, 1);
  double twenty = AnyShardFailureProbability(1000, 200, 50, 1.0 / 3, 20);
  EXPECT_GT(twenty, one);
  EXPECT_LE(twenty, 1.0);
}

TEST(ShardFormationTest, AssignmentPartitionsNodes) {
  Rng rng(7);
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < 20; i++) nodes.push_back(i);
  auto shards = RandomShardAssignment(nodes, 5, &rng);
  ASSERT_EQ(shards.size(), 4u);
  std::set<NodeId> seen;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.size(), 5u);
    for (NodeId id : shard) {
      EXPECT_TRUE(seen.insert(id).second) << "node in two shards";
    }
  }
  EXPECT_EQ(seen.size(), 20u);
}

}  // namespace
}  // namespace dicho::sharding
