// Simulation-engine microbenchmark: events/sec for the discrete-event core
// itself, not any system built on it. Two sections:
//
//   serial   the arena-pooled EventFn + calendar-queue hot loop vs an inline
//            std::function + std::priority_queue reference engine (the
//            pre-refactor shape), identical self-scheduling actor workload —
//            the "measurable serial win" the engine refactor claims.
//   sweep    a 256-node PBFT world with every replica on its own partition
//            (one logical process each), run to the same virtual horizon at
//            1/2/4/8 worker threads — conservative-lookahead parallel
//            speedup, plus a cheap cross-thread consistency check (the
//            byte-level proof lives in ctest -L sim / -L golden).
//
// Emits BENCH_sim.json in the working directory; the copy at the repo root
// is refreshed when the numbers move (see EXPERIMENTS.md). Parallel speedup
// is only visible with real cores — the JSON records hardware_concurrency so
// a 1-core container's ~1x sweep reads as what it is.
//
// Usage: micro_sim [--quick]
//   --quick   ~4x smaller event counts / horizons; CI smoke mode.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "consensus/pbft.h"
#include "sim/cost_model.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dicho::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

// --- serial: engine hot loop vs std::function + binary-heap reference -------

// The pre-refactor event loop in miniature: heap-allocated std::function
// events ordered by (time, seq) in a std::priority_queue.
class RefEngine {
 public:
  void Schedule(double delay, std::function<void()> fn) {
    heap_.push({now_ + delay, seq_++, std::move(fn)});
  }
  double now() const { return now_; }
  uint64_t Run() {
    uint64_t ran = 0;
    while (!heap_.empty()) {
      // std::priority_queue::top() is const — move out via const_cast, the
      // standard workaround (the entry is popped immediately after).
      Ev& top = const_cast<Ev&>(heap_.top());
      now_ = top.t;
      std::function<void()> fn = std::move(top.fn);
      heap_.pop();
      fn();
      ran++;
    }
    return ran;
  }

 private:
  struct Ev {
    double t;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Ev& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> heap_;
  double now_ = 0;
  uint64_t seq_ = 0;
};

// Self-scheduling actors with the simulator's real delay mix: mostly dense
// in-window hops, some zero-delay continuations, a tail of far timers that
// force calendar-queue overflow traffic and window re-bases.
template <typename Engine>
double DriveActors(Engine* engine, int actors, uint64_t steps_per_actor,
                   uint64_t* ran_out) {
  Rng rng(17);
  std::function<void(int, uint64_t)> step = [&](int actor, uint64_t left) {
    if (left == 0) return;
    double r = rng.NextDouble();
    double delay;
    if (r < 0.75) {
      delay = rng.Exponential(20.0);  // dense, in-window
    } else if (r < 0.90) {
      delay = 0;  // same-timestamp continuation
    } else {
      delay = rng.NextDouble() * 300000.0;  // far timer (elections, mining)
    }
    engine->Schedule(delay,
                     [&step, actor, left] { step(actor, left - 1); });
  };
  for (int a = 0; a < actors; a++) step(a, steps_per_actor);
  auto t0 = std::chrono::steady_clock::now();
  uint64_t ran = engine->Run();
  auto t1 = std::chrono::steady_clock::now();
  *ran_out = ran;
  return Seconds(t0, t1);
}

struct SerialResult {
  uint64_t events = 0;
  double engine_eps = 0;
  double ref_eps = 0;
  double speedup = 0;
};

SerialResult BenchSerial(bool quick) {
  const int kActors = 64;
  const uint64_t steps = (quick ? 500000 : 2000000) / kActors;
  SerialResult out;

  {
    sim::Simulator sim(/*seed=*/1);
    uint64_t ran = 0;
    double secs = DriveActors(&sim, kActors, steps, &ran);
    out.events = ran;
    out.engine_eps = static_cast<double>(ran) / secs;
  }
  {
    RefEngine ref;
    uint64_t ran = 0;
    double secs = DriveActors(&ref, kActors, steps, &ran);
    if (ran != out.events) {
      fprintf(stderr, "WARNING: workload mismatch (%llu vs %llu events)\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(out.events));
    }
    out.ref_eps = static_cast<double>(ran) / secs;
  }
  out.speedup = out.engine_eps / out.ref_eps;
  printf("%-36s %12.0f events/sec\n", "serial_engine", out.engine_eps);
  printf("%-36s %12.0f events/sec\n", "serial_function_heap_ref", out.ref_eps);
  printf("%-36s %12.2fx\n", "serial_speedup", out.speedup);
  fflush(stdout);
  return out;
}

// --- sweep: 256-node PBFT world across worker-thread counts -----------------

struct SweepPoint {
  unsigned threads = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  uint64_t sim_events = 0;
  uint64_t parallel_rounds = 0;
  uint64_t applied = 0;  // total commands executed across replicas
};

SweepPoint RunPbftWorld(unsigned threads, uint32_t nodes, sim::Time horizon,
                        sim::Time submit_every) {
  SweepPoint out;
  out.threads = threads;
  sim::Simulator sim(/*seed=*/42);
  sim.set_threads(threads);
  std::vector<sim::NodeId> ids;
  for (uint32_t i = 0; i < nodes; i++) {
    ids.push_back(i);
    sim.AssignNode(i, sim.AddPartition());
  }
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  // Node-confined apply slots: each replica only writes its own counter.
  std::vector<uint64_t> applied(nodes, 0);
  auto cluster = consensus::BftCluster::Create(
      &sim, &net, &costs, ids, consensus::BftConfig{},
      [&applied](sim::NodeId node, uint64_t, const std::string&) {
        applied[node]++;
      });
  cluster->StartAll();

  // Client as a recurring global event: reading the primary and submitting
  // under its PartitionScope is the safe cross-partition driving pattern.
  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    consensus::BftNode* primary = cluster->primary();
    if (primary != nullptr) {
      sim::Simulator::PartitionScope scope(&sim,
                                           sim.PartitionOfNode(primary->id()));
      primary->Submit("cmd-" + std::to_string(next_cmd++),
                      [](Status, uint64_t) {});
    }
    sim.ScheduleGlobal(submit_every, client);
  };
  sim.ScheduleGlobal(5 * sim::kMs, client);

  auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(horizon);
  auto t1 = std::chrono::steady_clock::now();
  out.wall_sec = Seconds(t0, t1);
  out.sim_events = sim.executed_events();
  out.parallel_rounds = sim.parallel_rounds();
  out.events_per_sec = static_cast<double>(out.sim_events) / out.wall_sec;
  for (uint64_t a : applied) out.applied += a;
  return out;
}

std::vector<SweepPoint> BenchSweep(bool quick, uint32_t nodes,
                                   bool* identical) {
  const sim::Time horizon = (quick ? 100 : 400) * sim::kMs;
  const sim::Time submit_every = 20 * sim::kMs;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<SweepPoint> points;
  *identical = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    // Always sweep 1 and 2 (determinism evidence even on small machines);
    // only oversubscribe beyond that when the cores exist.
    if (threads > 2 && threads > hw) continue;
    SweepPoint p = RunPbftWorld(threads, nodes, horizon, submit_every);
    if (!points.empty() && (p.sim_events != points[0].sim_events ||
                            p.applied != points[0].applied)) {
      *identical = false;
      fprintf(stderr, "WARNING: thread count %u diverged from serial\n",
              threads);
    }
    printf("pbft_%unodes_t%-2u %23.0f events/sec  (%.2fs wall, %llu events, "
           "%llu rounds, %llu applied)\n",
           nodes, p.threads, p.events_per_sec, p.wall_sec,
           static_cast<unsigned long long>(p.sim_events),
           static_cast<unsigned long long>(p.parallel_rounds),
           static_cast<unsigned long long>(p.applied));
    fflush(stdout);
    points.push_back(p);
  }
  return points;
}

void WriteJson(const char* path, bool quick, const SerialResult& serial,
               uint32_t nodes, const std::vector<SweepPoint>& sweep,
               bool identical) {
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"bench\": \"micro_sim\",\n");
  fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  fprintf(f, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());
  fprintf(f, "  \"serial\": {\n");
  fprintf(f, "    \"events\": %llu,\n",
          static_cast<unsigned long long>(serial.events));
  fprintf(f, "    \"engine_events_per_sec\": %.0f,\n", serial.engine_eps);
  fprintf(f, "    \"function_heap_ref_events_per_sec\": %.0f,\n",
          serial.ref_eps);
  fprintf(f, "    \"speedup\": %.3f\n", serial.speedup);
  fprintf(f, "  },\n");
  fprintf(f, "  \"pbft_sweep\": {\n");
  fprintf(f, "    \"nodes\": %u,\n", nodes);
  fprintf(f, "    \"identical_across_threads\": %s,\n",
          identical ? "true" : "false");
  fprintf(f, "    \"points\": [\n");
  for (size_t i = 0; i < sweep.size(); i++) {
    const SweepPoint& p = sweep[i];
    fprintf(f,
            "      {\"threads\": %u, \"events_per_sec\": %.0f, "
            "\"wall_sec\": %.3f, \"sim_events\": %llu, "
            "\"parallel_rounds\": %llu, \"applied\": %llu}%s\n",
            p.threads, p.events_per_sec, p.wall_sec,
            static_cast<unsigned long long>(p.sim_events),
            static_cast<unsigned long long>(p.parallel_rounds),
            static_cast<unsigned long long>(p.applied),
            i + 1 < sweep.size() ? "," : "");
  }
  fprintf(f, "    ]\n");
  fprintf(f, "  }\n}\n");
  fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace
}  // namespace dicho::bench

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--quick") == 0) quick = true;
  }
  printf("micro_sim%s (hardware_concurrency: %u)\n", quick ? " --quick" : "",
         std::thread::hardware_concurrency());
  dicho::bench::SerialResult serial = dicho::bench::BenchSerial(quick);
  const uint32_t kNodes = 256;
  bool identical = true;
  std::vector<dicho::bench::SweepPoint> sweep =
      dicho::bench::BenchSweep(quick, kNodes, &identical);
  dicho::bench::WriteJson("BENCH_sim.json", quick, serial, kNodes, sweep,
                          identical);
  return identical ? 0 : 1;
}
