// Reproduces Fig. 9: throughput and abort rate as workload skew grows
// (Zipfian theta 0 -> 1), single-record read-modify-write transactions.
//
// Paper shapes: TiDB collapses (5461 -> 173 tps; the primary-record latch is
// held across consensus rounds) with ~30% aborts; Fabric loses ~31% with
// OCC aborts climbing to ~44%; etcd and Quorum are flat (serial execution —
// no concurrency to destroy).

#include "bench_util.h"

namespace dicho::bench {
namespace {

void Run() {
  PrintHeader("Fig 9: skew sweep (single-record RMW transactions)");
  const double kThetas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  printf("%-8s %-6s", "system", "");
  for (double t : kThetas) printf("    θ=%.1f", t);
  printf("\n");

  BenchScale scale;
  scale.record_count = 20000;
  scale.measure = 10 * sim::kSec;

  auto sweep = [&](const char* name, auto make, double arrival) {
    printf("%-8s %-6s", name, "tps");
    std::vector<double> aborts;
    for (double theta : kThetas) {
      World w;
      auto system = make(&w);
      workload::YcsbConfig wcfg;
      wcfg.record_size = 1000;
      wcfg.theta = theta;
      wcfg.read_modify_write = true;
      auto m = RunYcsb(&w, system.get(), wcfg, scale, 0, arrival);
      printf(" %8.0f", m.throughput_tps);
      fflush(stdout);
      aborts.push_back(m.AbortRate() * 100);
    }
    printf("\n%-8s %-6s", "", "abort");
    for (double a : aborts) printf(" %7.1f%%", a);
    printf("\n");
  };

  sweep("tidb", [](World* w) { return MakeTidb(w, 5, 5); }, 0);
  sweep("fabric", [](World* w) { return MakeFabric(w, 5); }, 1300);
  sweep("etcd", [](World* w) { return MakeEtcd(w, 5); }, 0);
  sweep("quorum", [](World* w) { return MakeQuorum(w, 5); }, 280);
}

}  // namespace
}  // namespace dicho::bench

int main() {
  dicho::bench::Run();
  return 0;
}
