file(REMOVE_RECURSE
  "libdicho.a"
)
