// Block-validation signature checking and the fast storage path of the
// Fabric model: forged envelopes must be caught by the batched client
// signature verification (crypto/batch_verify.h) and marked invalid on the
// ledger, and fast_storage must back peer world state with the delta store
// without changing which transactions validate.

#include <gtest/gtest.h>

#include "crypto/signature.h"
#include "systems/fabric.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace dicho::systems {
namespace {

core::TxnRequest MakeWrite(uint64_t txn_id, const std::string& key,
                           const std::string& value) {
  core::TxnRequest request;
  request.txn_id = txn_id;
  request.client_id = 7;
  request.contract = "ycsb";
  core::Op op;
  op.type = core::OpType::kWrite;
  op.key = key;
  op.value = value;
  request.ops.push_back(std::move(op));
  return request;
}

ledger::LedgerTxn MakeEnvelope(const core::TxnRequest& request) {
  ledger::LedgerTxn envelope;
  envelope.txn_id = request.txn_id;
  envelope.client_id = request.client_id;
  envelope.payload = request.Serialize();
  envelope.client_signature =
      crypto::Signer(request.client_id).Sign(envelope.payload);
  envelope.read_set = {{request.ops[0].key, 0}};
  envelope.write_set = {{request.ops[0].key, request.ops[0].value}};
  envelope.valid = true;
  return envelope;
}

/// Finds `txn_id` anywhere on the peer's chain; returns its validity flag
/// through `valid`.
bool FindOnChain(const ledger::Chain& chain, uint64_t txn_id, bool* valid) {
  for (uint64_t b = 0; b < chain.height(); b++) {
    for (const auto& txn : chain.block(b).txns) {
      if (txn.txn_id == txn_id) {
        *valid = txn.valid;
        return true;
      }
    }
  }
  return false;
}

TEST(FabricSignatureTest, ForgedClientSignatureIsRejectedAtValidation) {
  sim::Simulator simulator(42);
  sim::SimNetwork network(&simulator, sim::NetworkConfig{});
  sim::CostModel costs;
  FabricConfig config;
  config.num_peers = 4;
  FabricSystem fabric(&simulator, &network, &costs, config);
  fabric.Start();
  simulator.RunFor(1 * sim::kSec);

  // A well-formed envelope whose signature does not verify — what a client
  // forging another identity (or an orderer tampering with a payload)
  // produces. It reaches every peer via ordering; block validation must
  // catch it before MVCC and keep it off the world state.
  ledger::LedgerTxn forged = MakeEnvelope(MakeWrite(9001, "victim", "evil"));
  forged.client_signature = std::string(32, 'x');
  fabric.SubmitRawEnvelopeForTest(forged);

  // A properly signed envelope commits in the same world.
  ledger::LedgerTxn honest = MakeEnvelope(MakeWrite(9002, "honest", "good"));
  fabric.SubmitRawEnvelopeForTest(honest);
  simulator.RunFor(5 * sim::kSec);

  const NodeId peer0 = runtime::kReplicaBase;
  bool valid = true;
  ASSERT_TRUE(FindOnChain(fabric.chain_of(peer0), 9001, &valid));
  EXPECT_FALSE(valid) << "forged signature survived block validation";
  ASSERT_TRUE(FindOnChain(fabric.chain_of(peer0), 9002, &valid));
  EXPECT_TRUE(valid);

  // The forged write never reached any peer's world state.
  std::string value;
  uint64_t version;
  fabric.state_of(peer0).Get("victim", &value, &version);
  EXPECT_TRUE(value.empty());
  fabric.state_of(peer0).Get("honest", &value, &version);
  EXPECT_EQ(value, "good");
}

TEST(FabricFastStorageTest, DeltaBackedPeersCommitIdenticallyAndStoreLess) {
  auto run = [](bool fast) {
    sim::Simulator simulator(42);
    sim::SimNetwork network(&simulator, sim::NetworkConfig{});
    sim::CostModel costs;
    FabricConfig config;
    config.num_peers = 4;
    config.fast_storage = fast;
    FabricSystem fabric(&simulator, &network, &costs, config);
    fabric.Start();
    simulator.RunFor(1 * sim::kSec);

    workload::YcsbConfig wcfg;
    wcfg.record_count = 200;
    wcfg.record_size = 2000;
    wcfg.mutate_bytes = 32;  // field updates: the delta-friendly shape
    workload::YcsbWorkload workload(wcfg, 3);
    for (int i = 0; i < 200; i++) {
      fabric.Load(workload.KeyAt(i), workload.ValueFor(workload.KeyAt(i)));
    }
    workload::DriverConfig dcfg;
    dcfg.arrival_rate_tps = 300;
    dcfg.warmup = 1 * sim::kSec;
    dcfg.measure = 4 * sim::kSec;
    workload::Driver driver(&simulator, &fabric,
                            [&workload] { return workload.NextTxn(); }, dcfg);
    workload::RunMetrics metrics = driver.Run();
    struct Out {
      uint64_t committed;
      uint64_t logical;
      uint64_t physical;
      uint64_t history;  // delta-store logical bytes: every version, full size
      bool backed;
    };
    const txn::VersionedState& state = fabric.state_of(runtime::kReplicaBase);
    uint64_t history =
        state.delta_backed() ? state.delta_stats()->logical_bytes : 0;
    return Out{metrics.committed, state.DataBytes(), state.PhysicalBytes(),
               history, state.delta_backed()};
  };

  auto base = run(false);
  auto fast = run(true);
  ASSERT_GT(base.committed, 0u);
  // The delta encoding never changes which transactions validate, and its
  // cheaper per-byte commit charge can only help the open-loop run — the
  // backed system commits at least as much as the baseline.
  EXPECT_GE(fast.committed, base.committed);
  EXPECT_FALSE(base.backed);
  EXPECT_TRUE(fast.backed);
  EXPECT_EQ(base.physical, base.logical);  // un-backed: physical == logical
  // The backed state retains every version (history > the head-only logical
  // bytes), yet 32-byte field updates delta-encode to a fraction of the
  // 2000-byte record: the physical bytes of the whole history stay well
  // under the logical bytes written into it.
  ASSERT_GT(fast.history, fast.logical);
  EXPECT_LT(fast.physical, fast.history / 2);
}

}  // namespace
}  // namespace dicho::systems
