#ifndef DICHO_CONSENSUS_RAFT_H_
#define DICHO_CONSENSUS_RAFT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "lifecycle/membership.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dicho::consensus {

using sim::NodeId;
using sim::Time;

/// Raft timing/batching parameters. Defaults model an etcd-like LAN
/// deployment.
struct RaftConfig {
  Time election_timeout_min = 150 * sim::kMs;
  Time election_timeout_max = 300 * sim::kMs;
  Time heartbeat_interval = 50 * sim::kMs;
  /// Proposals are micro-batched into one AppendEntries flush per window.
  Time append_interval = 1 * sim::kMs;
  size_t max_batch = 2000;
  /// Cap on one AppendEntries payload (etcd's max message size idiom).
  uint64_t max_batch_bytes = 1ull << 20;
  /// TESTING ONLY — deliberately broken commit rule: the leader commits and
  /// applies an entry the moment it is appended locally, without waiting for
  /// majority replication. Used by the simulation-test harness to validate
  /// that its invariant checkers catch real safety bugs (state-machine
  /// divergence after partitions/crashes). Never enable outside tests.
  bool unsafe_commit_without_quorum = false;
  /// Raft §8: a fresh leader appends a no-op entry of its own term, making
  /// prior-term entries committable without waiting for client traffic
  /// (§5.4.2 forbids counting replicas of old-term entries toward commit).
  /// Without it, a cluster whose clients are all blocked behind those very
  /// entries livelocks after leadership churn. Opt-in: the extra entry
  /// perturbs the message/log trace of existing calibrated runs.
  bool leader_noop = false;
  /// On a failed consistency probe, jump nextIndex straight to the
  /// follower's reported log end instead of walking back one entry per RTT.
  /// Essential for lifecycle joins (a snapshotted joiner starts its log at
  /// the anchor, potentially thousands of entries behind the probe), but
  /// opt-in: the skipped round trips perturb existing calibrated traces.
  bool fast_backtrack = false;
};

enum class RaftRole { kFollower, kCandidate, kLeader };

/// One Raft replica (Ongaro & Ousterhout) as a deterministic event-driven
/// state machine on the simulator: randomized elections, log replication
/// with per-follower nextIndex backtracking, majority commit, crash/restart
/// with persistent (term, votedFor, log) state. CPU costs for replication
/// work are charged to the node's CpuResource from the CostModel, which is
/// what makes the leader the throughput bottleneck as the group grows
/// (paper Table 4, etcd row).
///
/// Lifecycle extensions (all inert until used, so pre-lifecycle worlds are
/// byte-identical):
///   * Log-prefix compaction: InstallSnapshot() anchors the log at a
///     snapshot index/term pair; the replicated suffix lives above it.
///   * Single-server membership change (Raft §6): "#cfg add/rm <id>"
///     commands travel the log like any entry and re-shape `peers_` when
///     applied. One change may be in flight at a time, which keeps
///     adjacent configurations quorum-intersecting.
///   * Leader transfer: drain a leader before removal by pushing its
///     backlog to a target and sending it a TimeoutNow.
class RaftNode {
 public:
  /// Applied exactly once per committed entry, in log order, on every
  /// live replica.
  using ApplyFn = std::function<void(uint64_t index, const std::string& cmd)>;
  /// Completion for Propose: Ok + log index once committed, or an error
  /// (leadership lost, not leader).
  using CommitCallback = std::function<void(Status, uint64_t index)>;
  /// Fired when a committed config change re-shapes this node's view.
  using ConfigChangeFn = std::function<void(const lifecycle::MembershipView&)>;

  RaftNode(sim::Simulator* sim, sim::SimNetwork* net,
           const sim::CostModel* costs, NodeId id, std::vector<NodeId> peers,
           RaftConfig config, ApplyFn apply);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Wires up direct pointers to the other replicas (single-process sim).
  void SetGroup(std::map<NodeId, RaftNode*> group) { group_ = std::move(group); }

  /// Arms the election timer; call once on every node after SetGroup.
  void Start();

  /// Leader-only: replicate `cmd`; `cb` fires on commit or when leadership
  /// is lost. On a non-leader fails immediately with Unavailable.
  void Propose(std::string cmd, CommitCallback cb);

  /// Failure injection.
  void Crash();
  void Restart();

  // Lifecycle ----------------------------------------------------------------
  /// Compacts this node's log below (last_index, last_term): the caller has
  /// installed a state snapshot covering that prefix, so the entries are
  /// discarded and commit/apply cursors jump to the anchor. A suffix that
  /// extends past the anchor with a matching anchor term is retained.
  /// No-op when the node already committed past `last_index`.
  void InstallSnapshot(uint64_t last_index, uint64_t last_term);
  /// Snapshot install that also adopts the source's membership view (a
  /// snapshot's history includes every config change up to its anchor, so a
  /// joiner must take the member set and version along with the state —
  /// otherwise its config version numbering drifts from the group's).
  void InstallSnapshot(uint64_t last_index, uint64_t last_term,
                       const lifecycle::MembershipView& view);

  /// Marks this node as a joiner that is not yet part of the group: its
  /// reported membership() excludes itself until a committed config change
  /// (or an adopted snapshot view) admits it. Without this a joiner
  /// replaying config entries that predate its own admission would report
  /// views containing itself at versions where the group does not — a false
  /// membership-agreement violation. RaftCluster::AddNode sets it.
  void MarkJoining() { member_ = false; }

  /// Leader-only, single in flight: replicate a membership change. The
  /// callback fires when the change commits (it takes effect on each
  /// replica as the entry is applied).
  void ProposeConfigChange(const lifecycle::ConfigChange& cc,
                           CommitCallback cb);

  /// Leader-only: push our backlog to `target` and hand it leadership via
  /// TimeoutNow once caught up (the §6 drain used before removing a
  /// leader). Returns false when not leader or target unknown.
  bool TransferLeadership(NodeId target);

  /// Observer for committed membership changes (testing / lifecycle
  /// managers).
  void set_on_config_change(ConfigChangeFn fn) {
    on_config_change_ = std::move(fn);
  }

  // Introspection ------------------------------------------------------------
  NodeId id() const { return id_; }
  RaftRole role() const { return role_; }
  bool IsLeader() const { return role_ == RaftRole::kLeader && !crashed_; }
  bool crashed() const { return crashed_; }
  /// True once a committed config change removed this node: it stops
  /// campaigning and voting but keeps answering catch-up reads.
  bool retired() const { return retired_; }
  uint64_t current_term() const { return current_term_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_applied() const { return last_applied_; }
  /// Absolute index of the last log entry (compaction-aware).
  uint64_t log_size() const { return snapshot_index_ + log_.size(); }
  uint64_t snapshot_index() const { return snapshot_index_; }
  uint64_t snapshot_term() const { return snapshot_term_; }
  NodeId leader_hint() const { return leader_hint_; }
  sim::CpuResource* cpu() { return &cpu_; }
  const RaftConfig& config() const { return config_; }
  /// This node's current view of the group (self + peers, sorted), stamped
  /// with the number of config changes applied.
  lifecycle::MembershipView membership() const;
  uint64_t membership_version() const { return membership_version_; }
  /// Leader-side replication progress for `peer` (0 when unknown) — the
  /// laggard detector's input.
  uint64_t match_index_of(NodeId peer) const;

  /// Committed command at 1-based absolute log index (test oracle).
  /// Precondition: index > snapshot_index() — compacted entries are gone.
  const std::string& CommittedEntry(uint64_t index) const {
    return log_[index - snapshot_index_ - 1].cmd;
  }
  /// Term of the entry at 1-based absolute index (invariant checkers).
  /// Precondition: index > snapshot_index().
  uint64_t EntryTerm(uint64_t index) const {
    return log_[index - snapshot_index_ - 1].term;
  }

 private:
  struct LogEntry {
    uint64_t term;
    std::string cmd;
  };
  struct AppendEntriesArgs {
    uint64_t term;
    NodeId leader;
    uint64_t prev_index;
    uint64_t prev_term;
    std::vector<LogEntry> entries;
    uint64_t leader_commit;
  };

  void BecomeFollower(uint64_t term);
  void BecomeCandidate();
  void BecomeLeader();
  void ArmElectionTimer();
  void OnElectionTimeout(uint64_t epoch);
  void SendHeartbeats();
  void ScheduleFlush();
  void FlushAppends();
  void SendAppendTo(NodeId peer);
  void AdvanceCommit();
  void ApplyCommitted();
  void ApplyConfigEntry(const std::string& cmd);
  void HandleTimeoutNow(uint64_t term);
  void MaybeCompleteTransfer(NodeId from);

  void HandleRequestVote(NodeId from, uint64_t term, uint64_t last_log_index,
                         uint64_t last_log_term);
  void HandleVoteResponse(NodeId from, uint64_t term, bool granted);
  void HandleAppendEntries(const AppendEntriesArgs& args);
  void HandleAppendResponse(NodeId from, uint64_t term, bool success,
                            uint64_t match_index, uint64_t hint);

  /// Term of the entry at absolute `index`; snapshot_term_ at the anchor, 0
  /// at index 0. Precondition: index >= snapshot_index_.
  uint64_t TermAt(uint64_t index) const {
    if (index == snapshot_index_) return snapshot_term_;
    return index == 0 ? 0 : log_[index - snapshot_index_ - 1].term;
  }
  const LogEntry& EntryAt(uint64_t index) const {
    return log_[index - snapshot_index_ - 1];
  }
  uint64_t LastLogTerm() const {
    return log_.empty() ? snapshot_term_ : log_.back().term;
  }
  size_t MajoritySize() const { return (peers_.size() + 1) / 2 + 1; }
  void SendTo(NodeId peer, uint64_t bytes, std::function<void()> handler);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  NodeId id_;
  std::vector<NodeId> peers_;  // excluding self; re-shaped by config changes
  RaftConfig config_;
  ApplyFn apply_;
  std::map<NodeId, RaftNode*> group_;
  sim::CpuResource cpu_;

  // Persistent state (survives Crash/Restart).
  uint64_t current_term_ = 0;
  int64_t voted_for_ = -1;
  std::vector<LogEntry> log_;  // absolute index i lives at log_[i-snap-1]
  uint64_t snapshot_index_ = 0;  // log compacted through this absolute index
  uint64_t snapshot_term_ = 0;
  uint64_t membership_version_ = 0;  // committed config changes applied
  bool retired_ = false;             // removed from the group by config
  bool member_ = true;               // false for a joiner pre-admission

  // Volatile state.
  RaftRole role_ = RaftRole::kFollower;
  bool crashed_ = false;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  NodeId leader_hint_ = 0;
  uint64_t election_epoch_ = 0;  // invalidates stale timers
  size_t votes_ = 0;
  ConfigChangeFn on_config_change_;

  // Leader state.
  std::map<NodeId, uint64_t> next_index_;
  std::map<NodeId, uint64_t> match_index_;
  // In-flight tracking (etcd's Progress): while an entry-carrying append is
  // unacknowledged, further sends stay empty (heartbeats) instead of
  // re-shipping the backlog. Tracks when the batch was sent (loss recovery
  // timeout) and through which index it extends (so heartbeat acks don't
  // clear it).
  struct Inflight {
    Time since = 0;
    uint64_t through = 0;
  };
  std::map<NodeId, Inflight> inflight_;
  std::map<uint64_t, CommitCallback> pending_;  // log index -> callback
  /// Absolute log index of the uncommitted config-change entry this leader
  /// knows about (0 = none). Enforces the single-in-flight §6 rule.
  uint64_t config_change_inflight_ = 0;
  /// Leader-transfer target awaiting catch-up + TimeoutNow (0 = none).
  NodeId transfer_target_ = 0;
  /// Leader-side propose times for the "raft.commit" trace span; populated
  /// only while the simulator carries a trace sink, so untraced runs never
  /// touch it.
  std::map<uint64_t, Time> propose_times_;
  bool flush_scheduled_ = false;
  uint64_t flush_processed_ = 0;  // entries whose base CPU cost was charged
};

/// Convenience owner for a whole Raft group on one simulator.
class RaftCluster {
 public:
  /// Builds a cluster where every node shares one apply function that also
  /// receives the node id.
  static std::unique_ptr<RaftCluster> Create(
      sim::Simulator* sim, sim::SimNetwork* net, const sim::CostModel* costs,
      const std::vector<NodeId>& ids, RaftConfig config,
      std::function<void(NodeId, uint64_t, const std::string&)> apply);

  RaftNode* node(NodeId id) {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : it->second.get();
  }
  /// The current leader, or nullptr if none (unstable period).
  RaftNode* leader();
  std::vector<RaftNode*> all();
  /// Starts every node under its partition's scope, so election timers in a
  /// partitioned world draw from per-partition RNG streams.
  void StartAll();

  /// Lifecycle: constructs a node joining an existing group. `peers` is the
  /// membership the joiner believes in (typically the current view minus
  /// itself). The node is wired into every group map but NOT started —
  /// callers install a snapshot first, then Start() it under its partition
  /// scope. Returns the existing node if `id` is already present.
  RaftNode* AddNode(NodeId id, const std::vector<NodeId>& peers);

 private:
  RaftCluster() = default;
  sim::Simulator* sim_ = nullptr;
  sim::SimNetwork* net_ = nullptr;
  const sim::CostModel* costs_ = nullptr;
  RaftConfig config_{};
  std::function<void(NodeId, uint64_t, const std::string&)> apply_;
  std::map<NodeId, std::unique_ptr<RaftNode>> nodes_;
};

}  // namespace dicho::consensus

#endif  // DICHO_CONSENSUS_RAFT_H_
