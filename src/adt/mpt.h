#ifndef DICHO_ADT_MPT_H_
#define DICHO_ADT_MPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adt/node_store.h"
#include "common/slice.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace dicho::adt {

/// Merkle Patricia Trie — the authenticated state index of Ethereum and
/// Quorum. Keys are split into 4-bit nibbles; three node kinds:
///   leaf      (remaining path, value)
///   extension (shared path, child hash)
///   branch    (16 child hashes + optional value)
/// Every node is content-addressed: stored under SHA-256 of its
/// serialization, so the root digest commits to the entire state and every
/// update copy-writes the path from leaf to root (this is the per-commit
/// "MPT reconstruction" cost the paper measures in Section 5.3.3).
///
/// Hot-path layout: nodes live in a NodeStore (digest-keyed open-addressing
/// table over an arena), node parsing is zero-copy over arena Slices, and the
/// insert recursion walks (path, depth) indexes instead of materializing
/// per-level sub-paths. Sibling digests are carried verbatim from the parsed
/// parent, so unchanged subtrees are never re-serialized or re-hashed.
/// The serialized node format and therefore every root digest and proof are
/// byte-identical to the original std::map-based implementation (golden
/// tests assert this).
///
/// Deletion is not supported: the benchmarked blockchain state stores are
/// insert/update-only (documented in DESIGN.md).
class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie() = default;

  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value) const;

  /// Digest committing to the whole key-value state; ZeroDigest when empty.
  crypto::Digest RootDigest() const { return root_; }

  /// Number of distinct keys.
  size_t size() const { return size_; }

  /// Access path for `key`: the serialized nodes from root to the terminal
  /// node. Verifiable against the root digest without any other state.
  struct Proof {
    std::vector<std::string> nodes;
  };
  Status Prove(const Slice& key, Proof* proof) const;

  /// Storage accounting ------------------------------------------------------
  /// Bytes of every node ever written (archival store: all historical
  /// versions reachable from old roots).
  uint64_t TotalNodeBytes() const { return total_node_bytes_; }
  /// Bytes of nodes reachable from the current root (live state), including
  /// the 32-byte content hash each node is filed under.
  uint64_t ReachableBytes() const;
  /// Nodes currently stored.
  size_t node_count() const { return nodes_.size(); }
  /// Nodes written by the most recent Put (path length — proxy for the
  /// hashing work per update).
  size_t last_update_nodes() const { return last_update_nodes_; }

 private:
  using Digest = crypto::Digest;
  using Nibbles = std::vector<uint8_t>;

  static void ToNibbles(const Slice& key, Nibbles* out);

  Digest Store(const Slice& serialized);

  /// Recursive insert below the node named by `node` (nullptr = empty
  /// subtree): returns the digest of the replacement node.
  Digest InsertAt(const Digest* node, const Nibbles& path, size_t depth,
                  const Slice& value);
  Status GetAt(const Digest& node, const Nibbles& path, size_t depth,
               std::string* value,
               std::vector<std::string>* proof_nodes) const;
  uint64_t ReachableBytesAt(const Digest& node) const;

  Digest root_ = crypto::ZeroDigest();
  bool has_root_ = false;
  NodeStore nodes_;
  uint64_t total_node_bytes_ = 0;
  size_t size_ = 0;
  size_t last_update_nodes_ = 0;
  /// True after InsertAt when the Put overwrote an existing key.
  bool put_replaced_ = false;
  /// Reused scratch buffers: key nibbles and the node being serialized.
  /// Safe because every Serialize*→Store pair completes before the parent
  /// serializes (the recursion returns digests, not buffers).
  Nibbles nibbles_scratch_;
  std::string node_scratch_;
};

/// Verifies an MPT access path: checks that proof.nodes[0] hashes to `root`,
/// each node links to the next, and the terminal node binds `key` to
/// `value`.
bool VerifyMptProof(const crypto::Digest& root, const Slice& key,
                    const Slice& value, const MerklePatriciaTrie::Proof& proof);

}  // namespace dicho::adt

#endif  // DICHO_ADT_MPT_H_
