# Empty dependencies file for dicho.
# This may be replaced when dependencies are built.
