# Empty dependencies file for dicho_tests.
# This may be replaced when dependencies are built.
