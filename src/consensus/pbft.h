#ifndef DICHO_CONSENSUS_PBFT_H_
#define DICHO_CONSENSUS_PBFT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "lifecycle/membership.h"
#include "lifecycle/snapshot.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dicho::consensus {

using sim::NodeId;
using sim::Time;

/// Protocol flavour. IBFT (Quorum's Istanbul BFT) is a PBFT-family protocol:
/// same three-phase structure and 2f+1-of-3f+1 quorums, but no checkpoint
/// sub-protocol (consensus metadata is embedded in the ledger) and the
/// proposer rotates via "round change" instead of PBFT's view change. Both
/// flavours here share the engine; the flag controls proposer rotation
/// naming/stats and message sizes.
enum class BftMode { kPbft, kIbft };

struct BftConfig {
  BftMode mode = BftMode::kPbft;
  /// A replica that has accepted a request but not executed it within this
  /// window starts a view change.
  Time view_change_timeout = 1000 * sim::kMs;
  /// Overrides the fault threshold derived from n (= (n-1)/3). AHL uses
  /// trusted hardware to run 2f+1-sized shards, e.g. n = 3 with f = 1.
  int forced_f = -1;
  /// TESTING ONLY — deliberately broken quorum rule: a replica treats an
  /// accepted pre-prepare as prepared immediately (skipping the 2f matching
  /// prepares) and commits on its first commit vote (skipping the 2f+1
  /// commit quorum). Under an equivocating primary this executes divergent
  /// commands; the simulation-test harness uses it to prove its agreement
  /// and validity checkers catch real safety bugs. Never enable outside
  /// tests.
  bool unsafe_skip_prepare_quorum = false;
  /// Every `checkpoint_interval` executed sequences a replica folds the
  /// window into a content-addressed chunk and extends its checkpoint
  /// manifest (the lifecycle layer's snapshot format). Checkpointing is
  /// pure local bookkeeping — no messages — so it never perturbs traces;
  /// the chunks back the catch-up protocol stragglers and joiners use.
  uint64_t checkpoint_interval = 128;
};

/// Practical Byzantine Fault Tolerance (Castro & Liskov) replica for a group
/// of n = 3f+1 nodes tolerating f Byzantine failures: pre-prepare / prepare
/// (2f matching) / commit (2f+1), sequential execution, and a simplified but
/// safety-preserving view change that carries prepared requests into the new
/// view. Every message is signed; signature verification cost is charged to
/// the receiving node's CPU — the O(n^2) message complexity is where BFT's
/// performance penalty comes from (paper Section 3.1.3).
class BftNode {
 public:
  using ApplyFn = std::function<void(uint64_t seq, const std::string& cmd)>;
  using SubmitCallback = std::function<void(Status, uint64_t seq)>;

  BftNode(sim::Simulator* sim, sim::SimNetwork* net,
          const sim::CostModel* costs, NodeId id, std::vector<NodeId> all,
          BftConfig config, ApplyFn apply);

  BftNode(const BftNode&) = delete;
  BftNode& operator=(const BftNode&) = delete;

  void SetGroup(std::map<NodeId, BftNode*> group) { group_ = std::move(group); }
  void Start();

  /// Submits a request; forwarded to the current primary if needed. The
  /// callback fires when the request executes on this node, or with an error
  /// if the view changes while it is pending here.
  void Submit(std::string cmd, SubmitCallback cb);

  /// Failure injection -------------------------------------------------------
  void Crash();
  void Restart();
  /// As primary: sends conflicting pre-prepares to different replicas.
  /// As replica: votes for garbage digests.
  void SetByzantineEquivocation(bool on) { equivocate_ = on; }

  // Lifecycle ----------------------------------------------------------------
  /// Replicates a membership change through the normal three-phase path
  /// ("#cfg add/rm <id>" request). The change takes effect on each replica
  /// when the command executes — a view-config epoch: from that sequence on,
  /// `all_`, f and the primary rotation reflect the new membership.
  void SubmitConfigChange(const lifecycle::ConfigChange& cc, SubmitCallback cb);
  /// Installs checkpoint state transferred out-of-band (a joining replica):
  /// adopts the manifest + chunks as executed history through the anchor.
  /// Returns false if chunks are missing/corrupt.
  bool InstallCheckpoint(const lifecycle::SnapshotManifest& manifest,
                         const lifecycle::ChunkStore& chunks);
  /// Asks the group for anything past our execution frontier (manifest
  /// agreement at f+1, digest-verified chunk fetch, per-entry f+1 tail).
  /// Fired automatically by the stall timer; joiners call it after
  /// InstallCheckpoint or cold start.
  void RequestCatchup();

  using ConfigChangeFn = std::function<void(const lifecycle::MembershipView&)>;
  void set_on_config_change(ConfigChangeFn fn) {
    on_config_change_ = std::move(fn);
  }

  // Introspection ------------------------------------------------------------
  NodeId id() const { return id_; }
  uint64_t view() const { return view_; }
  NodeId primary() const { return all_[view_ % all_.size()]; }
  bool IsPrimary() const { return primary() == id_ && !crashed_; }
  uint64_t last_executed() const { return last_executed_; }
  uint64_t view_changes() const { return view_changes_; }
  bool crashed() const { return crashed_; }
  size_t f() const {
    if (config_.forced_f >= 0) return static_cast<size_t>(config_.forced_f);
    return (all_.size() - 1) / 3;
  }
  /// Executed command at seq (test oracle). Pre-condition: executed.
  const std::string& ExecutedEntry(uint64_t seq) const {
    return executed_log_.at(seq);
  }
  /// Whether seq has executed on this node (invariant checkers probe this
  /// before ExecutedEntry so a gap reports instead of throwing).
  bool HasExecuted(uint64_t seq) const { return executed_log_.count(seq) > 0; }
  /// True once a committed config change removed this replica: it stops
  /// proposing/voting but keeps answering catch-up requests.
  bool retired() const { return retired_; }
  /// This replica's current view of the group, stamped with the number of
  /// config changes applied.
  lifecycle::MembershipView membership() const;
  uint64_t membership_version() const { return membership_version_; }
  const lifecycle::SnapshotManifest& last_checkpoint() const {
    return last_checkpoint_;
  }
  const lifecycle::ChunkStore& checkpoint_chunks() const {
    return checkpoint_chunks_;
  }
  uint64_t catchup_chunks_fetched() const { return catchup_chunks_fetched_; }
  uint64_t catchup_chunks_reused() const { return catchup_chunks_reused_; }
  uint64_t catchup_entries_adopted() const { return catchup_entries_adopted_; }

 private:
  struct Instance {
    std::string cmd;
    std::string digest;          // accepted pre-prepare digest (this view)
    /// When this replica accepted the pre-prepare — start of the "pbft.seq"
    /// trace span (0 = never accepted one, e.g. commit-quorum fast path).
    Time started = 0;
    uint64_t view = 0;
    std::map<std::string, std::set<NodeId>> prepares;  // digest -> voters
    std::map<std::string, std::set<NodeId>> commits;
    bool prepared = false;
    bool committed = false;
    bool sent_commit = false;
  };

  struct PendingSubmission {
    std::string cmd;
    SubmitCallback cb;
  };

  size_t Quorum() const { return 2 * f() + 1; }

  void Broadcast(uint64_t bytes, std::function<void(BftNode*)> deliver);
  void Charge(std::function<void()> fn);

  void PrimaryPropose(std::string cmd);
  void NoteRequest(const std::string& cmd);
  void ForwardToPrimary(std::string cmd);
  void HandlePrePrepare(NodeId from, uint64_t view, uint64_t seq,
                        const std::string& digest, const std::string& cmd);
  void CheckProgress(uint64_t view, uint64_t seq);
  void HandlePrepare(NodeId from, uint64_t view, uint64_t seq,
                     const std::string& digest);
  void HandleCommit(NodeId from, uint64_t view, uint64_t seq,
                    const std::string& digest);
  void MaybeExecute();
  // Catch-up (the lifecycle checkpoint protocol; replaced PR 2's ad-hoc
  // per-entry state transfer): a stalled replica broadcasts a catch-up
  // request; peers reply with their checkpoint manifest plus a bounded
  // per-entry tail. The straggler adopts a manifest once f+1 replies agree
  // on (anchor, root) — at least one of any f+1 replicas is correct — then
  // fetches only the chunk bodies its own store lacks (delta catch-up;
  // bodies verify against the agreed digests, so one honest sender
  // suffices). Tail entries above the anchor still adopt at f+1 matching
  // votes per sequence. Without catch-up, a replica that misses a new-view
  // pre-prepare can never execute past the gap (execution is strictly
  // sequential), and f+1 such stragglers keep timing out and drag the whole
  // group through endless view changes.
  void HandleCatchupRequest(NodeId from, uint64_t after_seq);
  void HandleCatchupReply(NodeId from, uint64_t peer_view,
                          const lifecycle::SnapshotManifest& manifest,
                          const std::map<uint64_t, std::string>& entries);
  void HandleChunkRequest(NodeId from,
                          const std::vector<crypto::Digest>& digests);
  void HandleChunkReply(
      NodeId from,
      const std::vector<std::pair<crypto::Digest, std::string>>& chunks);
  void AdoptCheckpoint();
  void AdoptTailEntries(NodeId from,
                        const std::map<uint64_t, std::string>& entries);
  void MaybeCheckpoint();
  void ApplyReconfig(const std::string& cmd);
  void ExecuteCommand(uint64_t seq, const std::string& cmd);
  void ArmViewChangeTimer();
  void StartViewChange(uint64_t new_view);
  void HandleViewChange(NodeId from, uint64_t new_view,
                        const std::map<uint64_t, std::string>& prepared_cmds);
  void EnterView(uint64_t new_view);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  NodeId id_;
  std::vector<NodeId> all_;  // sorted; defines primary rotation
  BftConfig config_;
  ApplyFn apply_;
  std::map<NodeId, BftNode*> group_;
  sim::CpuResource cpu_;

  uint64_t view_ = 0;
  uint64_t next_seq_ = 1;  // primary's allocator
  uint64_t last_executed_ = 0;
  uint64_t view_changes_ = 0;
  bool crashed_ = false;
  bool equivocate_ = false;
  bool in_view_change_ = false;
  uint64_t view_change_target_ = 0;  // view we last voted to change into

  std::map<uint64_t, Instance> instances_;        // seq -> state
  // Prepared certificates (PBFT's P set): seq -> cmd for every request this
  // replica has prepared but not yet executed. Unlike the per-view Instance
  // state — which is reset when a view change re-proposes the slot — this
  // survives across any number of failed views and is what StartViewChange
  // reports. Dropping a certificate just because an intermediate view made
  // no progress (e.g. its primary was crashed) loses committed-elsewhere
  // requests and breaks agreement.
  std::map<uint64_t, std::string> prepared_backlog_;
  std::map<uint64_t, std::string> executed_log_;  // seq -> cmd
  // Catch-up tail tally: seq -> claimed cmd -> replicas claiming it.
  std::map<uint64_t, std::map<std::string, std::set<NodeId>>> transfer_votes_;
  // Checkpoint state: sequential chunks over the executed log, one per
  // `checkpoint_interval` window; the manifest anchors at the last folded
  // window's end. ChunkStore dedup makes repeated catch-ups cheap.
  lifecycle::ChunkStore checkpoint_chunks_;
  lifecycle::SnapshotManifest last_checkpoint_;
  // Catch-up manifest tally: anchor -> root bytes -> (voters, manifest).
  struct CheckpointVote {
    std::set<NodeId> voters;
    lifecycle::SnapshotManifest manifest;
  };
  std::map<uint64_t, std::map<std::string, CheckpointVote>> checkpoint_votes_;
  // View adoption tally for joiners: claimed view -> voters.
  std::map<uint64_t, std::set<NodeId>> view_claims_;
  // Manifest agreed at f+1 whose chunks are still being fetched.
  lifecycle::SnapshotManifest pending_checkpoint_;
  NodeId pending_checkpoint_source_ = 0;
  uint64_t membership_version_ = 0;
  bool retired_ = false;
  ConfigChangeFn on_config_change_;
  uint64_t catchup_chunks_fetched_ = 0;
  uint64_t catchup_chunks_reused_ = 0;
  uint64_t catchup_entries_adopted_ = 0;
  // digest -> submission waiting to execute on this node.
  std::map<std::string, PendingSubmission> pending_subs_;
  std::set<std::string> proposed_digests_;  // primary dedup (this node)
  std::set<std::string> executed_digests_;
  std::deque<std::string> queued_;  // primary proposals awaiting view entry
  // View change bookkeeping: new_view -> voters and their prepared sets.
  std::map<uint64_t, std::set<NodeId>> view_change_votes_;
  std::map<uint64_t, std::map<uint64_t, std::string>> view_change_prepared_;
  uint64_t timer_epoch_ = 0;
  bool timer_armed_ = false;  // an un-superseded timer event is outstanding
};

/// Builds a wired BFT group of n nodes (n should be 3f+1).
class BftCluster {
 public:
  static std::unique_ptr<BftCluster> Create(
      sim::Simulator* sim, sim::SimNetwork* net, const sim::CostModel* costs,
      const std::vector<NodeId>& ids, BftConfig config,
      std::function<void(NodeId, uint64_t, const std::string&)> apply);

  BftNode* node(NodeId id) {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : it->second.get();
  }
  BftNode* primary();
  std::vector<BftNode*> all();
  /// Starts every node under its partition's scope (per-partition RNG and
  /// event queue in partitioned worlds).
  void StartAll();

  /// Lifecycle: constructs a replica joining an existing group. `all_ids` is
  /// the membership the joiner believes in (including itself). Wired into
  /// every group map but not started; the caller typically follows with
  /// InstallCheckpoint + RequestCatchup, then a "#cfg add" through a live
  /// replica. Returns the existing node if `id` is already present.
  BftNode* AddNode(NodeId id, const std::vector<NodeId>& all_ids);

 private:
  BftCluster() = default;
  sim::Simulator* sim_ = nullptr;
  sim::SimNetwork* net_ = nullptr;
  const sim::CostModel* costs_ = nullptr;
  BftConfig config_{};
  std::function<void(NodeId, uint64_t, const std::string&)> apply_;
  std::map<NodeId, std::unique_ptr<BftNode>> nodes_;
};

}  // namespace dicho::consensus

#endif  // DICHO_CONSENSUS_PBFT_H_
