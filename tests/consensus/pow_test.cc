#include "consensus/pow.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace dicho::consensus {
namespace {

struct PowHarness {
  PowHarness(size_t n, PowConfig config, uint64_t seed = 42)
      : sim(seed), net(&sim, sim::NetworkConfig{}) {
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < n; i++) ids.push_back(i);
    pow = std::make_unique<PowNetwork>(
        &sim, &net, ids, config,
        [this](NodeId node, uint64_t height, const std::string& txn) {
          applied[node].push_back({height, txn});
        });
    pow->Start();
  }

  sim::Simulator sim;
  sim::SimNetwork net;
  std::unique_ptr<PowNetwork> pow;
  std::map<NodeId, std::vector<std::pair<uint64_t, std::string>>> applied;
};

TEST(PowTest, MinesBlocksAtConfiguredRate) {
  PowConfig config;
  config.mean_block_interval = 1 * sim::kSec;
  PowHarness h(4, config);
  h.sim.RunFor(60 * sim::kSec);
  // ~60 blocks expected; allow wide stochastic slack.
  EXPECT_GT(h.pow->blocks_mined(), 30u);
  EXPECT_LT(h.pow->blocks_mined(), 120u);
}

TEST(PowTest, TransactionsConfirm) {
  PowConfig config;
  config.mean_block_interval = 500 * sim::kMs;
  config.confirm_depth = 2;
  PowHarness h(4, config);
  int confirmed = 0;
  for (int i = 0; i < 20; i++) {
    h.pow->Submit("txn" + std::to_string(i),
                  [&](Status s, uint64_t) { confirmed += s.ok(); });
  }
  h.sim.RunFor(60 * sim::kSec);
  EXPECT_EQ(confirmed, 20);
  EXPECT_EQ(h.pow->confirmed_txns(), 20u);
}

TEST(PowTest, ConfirmationWaitsForDepth) {
  PowConfig config;
  config.mean_block_interval = 1 * sim::kSec;
  config.confirm_depth = 6;  // Bitcoin-style deep confirmation
  PowHarness h(3, config);
  bool confirmed = false;
  double confirm_time = 0;
  h.pow->Submit("deep", [&](Status s, uint64_t) {
    confirmed = s.ok();
    confirm_time = h.sim.Now();
  });
  h.sim.RunFor(60 * sim::kSec);
  ASSERT_TRUE(confirmed);
  // At least ~depth block intervals must pass before confirmation.
  EXPECT_GT(confirm_time, 2 * sim::kSec);
}

TEST(PowTest, FastMiningOnSlowNetworkForksMore) {
  // Forks emerge when block interval approaches propagation delay — the
  // classic PoW security/throughput tension.
  auto forks_at = [](sim::Time interval) {
    sim::Simulator sim(7);
    sim::NetworkConfig ncfg;
    ncfg.base_latency_us = 50 * sim::kMs;  // sluggish propagation
    sim::SimNetwork net(&sim, ncfg);
    std::vector<NodeId> ids{0, 1, 2, 3, 4, 5, 6, 7};
    PowConfig config;
    config.mean_block_interval = interval;
    PowNetwork pow(&sim, &net, ids, config, nullptr);
    pow.Start();
    sim.RunFor(200 * sim::kSec);
    return pow.forks_observed();
  };
  uint64_t fast = forks_at(100 * sim::kMs);
  uint64_t slow = forks_at(10 * sim::kSec);
  EXPECT_GT(fast, slow * 2 + 2);
}

TEST(PowTest, CrashedMinerDoesNotStallNetwork) {
  PowConfig config;
  config.mean_block_interval = 500 * sim::kMs;
  PowHarness h(4, config);
  h.net.SetNodeDown(0, true);
  bool confirmed = false;
  h.pow->Submit("txn", [&](Status s, uint64_t) { confirmed = s.ok(); });
  h.sim.RunFor(60 * sim::kSec);
  EXPECT_TRUE(confirmed);
}

TEST(PowTest, AppliedPrefixesConsistent) {
  PowConfig config;
  config.mean_block_interval = 300 * sim::kMs;
  PowHarness h(5, config);
  for (int i = 0; i < 50; i++) {
    h.pow->Submit("txn" + std::to_string(i), nullptr);
  }
  h.sim.RunFor(120 * sim::kSec);
  // Confirmed sequences must agree pairwise on the common prefix.
  for (NodeId a = 0; a < 5; a++) {
    for (NodeId b = a + 1; b < 5; b++) {
      const auto& ea = h.applied[a];
      const auto& eb = h.applied[b];
      size_t common = std::min(ea.size(), eb.size());
      for (size_t i = 0; i < common; i++) {
        EXPECT_EQ(ea[i].second, eb[i].second)
            << "nodes " << a << "," << b << " diverge at " << i;
      }
    }
  }
}

}  // namespace
}  // namespace dicho::consensus
