#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

namespace dicho::workload {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

ArrivalEngine::ArrivalEngine(const ArrivalConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      zipf_(config.record_count == 0 ? 1 : config.record_count,
            config.zipf_theta) {
  if (config_.record_count == 0) config_.record_count = 1;
  if (config_.hot_rotation_step == 0) {
    config_.hot_rotation_step = std::max<uint64_t>(1, config_.record_count / 16);
  }
  crowds_ = config_.flash_crowds;
  if (crowds_.empty() && config_.flash_count > 0) {
    // Draw burst windows from the engine seed. Starts are uniform over the
    // horizon minus the burst so every crowd fits; draws happen in a fixed
    // order so the schedule is a pure function of (config, seed).
    sim::Time span = std::max<sim::Time>(config_.horizon - config_.flash_duration, 0);
    for (uint32_t i = 0; i < config_.flash_count; i++) {
      FlashCrowd crowd;
      crowd.start = rng_.NextDouble() * span;
      crowd.duration = config_.flash_duration;
      crowd.amplitude = config_.flash_amplitude;
      crowds_.push_back(crowd);
    }
    std::sort(crowds_.begin(), crowds_.end(),
              [](const FlashCrowd& a, const FlashCrowd& b) {
                return a.start < b.start;
              });
  }
  if (config_.tenants.empty()) config_.tenants.push_back(TenantSpec{});
  for (const TenantSpec& tenant : config_.tenants) {
    tenant_total_weight_ += std::max(tenant.weight, 0.0);
    tenant_cumweight_.push_back(tenant_total_weight_);
  }
  if (tenant_total_weight_ <= 0) {
    tenant_total_weight_ = 1.0;
    tenant_cumweight_.assign(1, 1.0);
  }

  // Thinning envelope: the diurnal peak times the worst-case product of
  // overlapping flash amplitudes (exact because both factors are bounded).
  double diurnal_peak = 1.0 + std::max(config_.diurnal_amplitude, 0.0);
  double flash_peak = 1.0;
  for (const FlashCrowd& a : crowds_) {
    double overlap = 1.0;
    for (const FlashCrowd& b : crowds_) {
      if (b.start < a.start + a.duration && a.start < b.start + b.duration) {
        overlap *= std::max(b.amplitude, 1.0);
      }
    }
    flash_peak = std::max(flash_peak, overlap);
  }
  max_rate_ = config_.base_rate_tps * diurnal_peak * flash_peak;
}

double ArrivalEngine::RateAt(sim::Time t) const {
  double rate = config_.base_rate_tps;
  if (config_.diurnal_amplitude > 0 && config_.diurnal_period > 0) {
    rate *= 1.0 + config_.diurnal_amplitude *
                      std::sin(2.0 * kPi * t / config_.diurnal_period);
  }
  for (const FlashCrowd& crowd : crowds_) {
    if (t >= crowd.start && t < crowd.start + crowd.duration) {
      rate *= crowd.amplitude;
    }
  }
  return rate;
}

double ArrivalEngine::MaxRate() const { return max_rate_; }

Arrival ArrivalEngine::Next(sim::Time now) {
  // Lewis-Shedler thinning: candidate gaps at the envelope rate, accepted
  // with probability rate(t)/envelope. Two Rng draws per candidate, in a
  // fixed order — the arrival sequence replays bit-identically.
  sim::Time t = now;
  while (true) {
    t += rng_.Exponential(sim::kSec / max_rate_);
    if (rng_.NextDouble() * max_rate_ <= RateAt(t)) break;
  }
  Arrival arrival;
  arrival.time = t;
  arrival.tenant = SampleTenant();
  arrival.fee = config_.tenants[arrival.tenant].fee;
  arrival.key_index = SampleKeyIndex(t);
  return arrival;
}

uint64_t ArrivalEngine::HotOffset(sim::Time t) const {
  if (config_.hot_rotation_period <= 0 || t <= 0) return 0;
  uint64_t rotations = static_cast<uint64_t>(t / config_.hot_rotation_period);
  return (rotations * config_.hot_rotation_step) % config_.record_count;
}

uint64_t ArrivalEngine::SampleKeyIndex(sim::Time t) {
  uint64_t rank = zipf_.Next(&rng_);
  if (rank >= config_.record_count) rank = config_.record_count - 1;
  return (rank + HotOffset(t)) % config_.record_count;
}

uint32_t ArrivalEngine::SampleTenant() {
  if (tenant_cumweight_.size() == 1) return 0;
  double u = rng_.NextDouble() * tenant_total_weight_;
  auto it = std::upper_bound(tenant_cumweight_.begin(), tenant_cumweight_.end(), u);
  size_t index = static_cast<size_t>(it - tenant_cumweight_.begin());
  if (index >= tenant_cumweight_.size()) index = tenant_cumweight_.size() - 1;
  return static_cast<uint32_t>(index);
}

}  // namespace dicho::workload
