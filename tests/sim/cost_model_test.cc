#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace dicho::sim {
namespace {

// The calibration anchors taken from the paper itself. If these drift, the
// bench reproductions drift with them — treat this test as the calibration
// contract.

TEST(CostModelTest, MptReconstructionMatchesPaperAnchors) {
  CostModel costs;
  // Paper 5.3.3: 56 us at 10-byte records, 2.5 ms at 5000-byte records.
  EXPECT_NEAR(costs.MptUpdateCost(10), 56.0, 8.0);
  EXPECT_NEAR(costs.MptUpdateCost(5000), 2500.0, 120.0);
}

TEST(CostModelTest, QuorumPerTxnCostMatchesThroughputAnchors) {
  CostModel costs;
  // Quorum's serial execution bound: ~1547 tps at 10 B, ~237 tps at 1 KB,
  // ~58 tps at 5 KB (Fig. 4 / Fig. 11). Cost = sig verify + one op.
  double txn_10 = costs.sig_verify_us + costs.QuorumOpCost(10);
  double txn_1k = costs.sig_verify_us + costs.QuorumOpCost(1000);
  double txn_5k = costs.sig_verify_us + costs.QuorumOpCost(5000);
  EXPECT_NEAR(1e6 / txn_10, 1547, 250);
  EXPECT_NEAR(1e6 / txn_1k, 237, 40);
  EXPECT_NEAR(1e6 / txn_5k, 58, 10);
}

TEST(CostModelTest, FabricValidationMatchesTable4Regression) {
  CostModel costs;
  // Table 4 regression: validation cost ~ fabric_commit + sig * (N + 1);
  // peak tps = 1e6 / cost. N=3 -> ~1560, N=19 -> ~528.
  auto peak = [&](int n) {
    return 1e6 / (costs.fabric_commit_us +
                  costs.sig_verify_us * static_cast<double>(n + 1));
  };
  EXPECT_NEAR(peak(3), 1560, 300);
  EXPECT_NEAR(peak(19), 528, 120);
}

TEST(CostModelTest, EtcdLeaderCostMatchesTable4Regression) {
  CostModel costs;
  // etcd per-op leader work: base + per-follower * (N-1); Table 4 gives
  // ~52 us at N=3. (At large N the NIC, not the CPU, binds.)
  double at3 = costs.raft_leader_base_us + 2 * costs.raft_leader_per_follower_us;
  EXPECT_NEAR(1e6 / at3, 19282, 6000);
}

TEST(CostModelTest, BftCostsExceedCftCosts) {
  CostModel costs;
  // Every BFT message carries a signature; CFT messages do not — the
  // structural cost asymmetry of Section 3.1.3.
  EXPECT_GT(costs.sig_verify_us, 10 * costs.msg_handling_us);
}

TEST(CostModelTest, MbtUpdateFarCheaperThanMpt) {
  CostModel costs;
  EXPECT_LT(costs.MbtUpdateCost(1000) * 5, costs.MptUpdateCost(1000));
}

}  // namespace
}  // namespace dicho::sim
