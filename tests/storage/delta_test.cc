#include "storage/delta/delta.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "storage/delta/delta_store.h"

namespace dicho::storage::delta {
namespace {

// Applies a random edit script to `base`: overwrite a window, splice bytes
// in, or chop bytes out — the kinds of version-to-version changes a
// read-modify-write workload produces.
std::string Mutate(const std::string& base, Rng* rng, int edits) {
  std::string out = base;
  for (int e = 0; e < edits; e++) {
    switch (rng->Uniform(3)) {
      case 0: {  // overwrite a window in place
        if (out.empty()) break;
        size_t pos = rng->Uniform(out.size());
        size_t len = std::min<size_t>(out.size() - pos,
                                      rng->UniformRange(1, 40));
        for (size_t i = 0; i < len; i++) {
          out[pos + i] = static_cast<char>('A' + rng->Uniform(26));
        }
        break;
      }
      case 1: {  // splice new bytes in
        size_t pos = rng->Uniform(out.size() + 1);
        out.insert(pos, rng->Bytes(rng->UniformRange(1, 40)));
        break;
      }
      default: {  // chop bytes out
        if (out.empty()) break;
        size_t pos = rng->Uniform(out.size());
        size_t len = std::min<size_t>(out.size() - pos,
                                      rng->UniformRange(1, 40));
        out.erase(pos, len);
        break;
      }
    }
  }
  return out;
}

TEST(DeltaCodecTest, RoundTripIdentical) {
  std::string base = "the quick brown fox jumps over the lazy dog, twice over";
  std::string delta, target;
  EncodeDelta(base, base, &delta);
  ASSERT_TRUE(ApplyDelta(base, delta, &target).ok());
  EXPECT_EQ(target, base);
  // A self-delta should collapse to roughly header + one copy + trailer.
  EXPECT_LT(delta.size(), 24u);
}

TEST(DeltaCodecTest, RoundTripDisjoint) {
  Rng rng(11);
  std::string base = rng.Bytes(500);
  std::string tgt(500, 'Z');  // shares nothing with base
  std::string delta, out;
  EncodeDelta(base, tgt, &delta);
  ASSERT_TRUE(ApplyDelta(base, delta, &out).ok());
  EXPECT_EQ(out, tgt);
}

TEST(DeltaCodecTest, EmptyEdgeCases) {
  std::string delta, out;
  EncodeDelta("", "", &delta);
  ASSERT_TRUE(ApplyDelta("", delta, &out).ok());
  EXPECT_EQ(out, "");
  EncodeDelta("", "abc", &delta);
  ASSERT_TRUE(ApplyDelta("", delta, &out).ok());
  EXPECT_EQ(out, "abc");
  EncodeDelta("abc", "", &delta);
  ASSERT_TRUE(ApplyDelta("abc", delta, &out).ok());
  EXPECT_EQ(out, "");
}

// Oracle: whatever the encoder emits, applying it must reproduce the target
// byte-for-byte — across many random (base, edit-script) pairs.
TEST(DeltaCodecTest, RandomEditScriptsRoundTrip) {
  Rng rng(42);
  for (int round = 0; round < 200; round++) {
    std::string base = rng.Bytes(rng.UniformRange(0, 3000));
    std::string target = Mutate(base, &rng, 1 + rng.Uniform(6));
    std::string delta, out;
    EncodeDelta(base, target, &delta);
    ASSERT_TRUE(ApplyDelta(base, delta, &out).ok()) << "round " << round;
    ASSERT_EQ(out, target) << "round " << round;
    uint64_t size;
    ASSERT_TRUE(DeltaTargetSize(delta, &size));
    EXPECT_EQ(size, target.size());
  }
}

TEST(DeltaCodecTest, SmallEditEncodesSmall) {
  Rng rng(7);
  std::string base = rng.Bytes(5000);
  std::string target = base;
  target[2500] = 'X';  // one-byte field update in a 5 KB record
  std::string delta;
  EncodeDelta(base, target, &delta);
  // Two copies + one literal byte + framing: far below the full value.
  EXPECT_LT(delta.size(), 64u);
  std::string out;
  ASSERT_TRUE(ApplyDelta(base, delta, &out).ok());
  EXPECT_EQ(out, target);
}

TEST(DeltaCodecTest, RejectsCorruptDelta) {
  std::string base = "base bytes for the corruption test, long enough";
  std::string delta, out;
  EncodeDelta(base, "target bytes for the corruption test!", &delta);
  // Flip a literal byte: the crc32c trailer must catch it.
  std::string bad = delta;
  bad[bad.size() / 2] ^= 0x20;
  EXPECT_FALSE(ApplyDelta(base, bad, &out).ok());
  // Truncation must fail cleanly too.
  EXPECT_FALSE(ApplyDelta(base, Slice(delta.data(), delta.size() - 3), &out)
                   .ok());
  // Applying against the wrong base is caught by the checksum.
  EXPECT_FALSE(ApplyDelta("completely different base material..", delta, &out)
                   .ok());
}

// ---------------------------------------------------------------------------
// DeltaStore

TEST(DeltaStoreTest, VersionsRoundTripAgainstOracle) {
  DeltaStoreOptions options;
  options.min_delta_size = 64;
  DeltaStore store(options);
  Rng rng(123);
  // Oracle: plain map key -> latest value, plus every historical digest.
  std::map<std::string, std::string> latest;
  std::map<std::string, std::string> by_digest;
  std::string current = rng.Bytes(1200);
  for (int version = 0; version < 60; version++) {
    std::string key = "obj" + std::to_string(version % 4);
    auto it = latest.find(key);
    current = it == latest.end() ? rng.Bytes(1200)
                                 : Mutate(it->second, &rng, 3);
    PutOutcome out = store.Put(key, current);
    latest[key] = current;
    by_digest[std::string(
        reinterpret_cast<const char*>(out.digest.data()), 32)] = current;
    EXPECT_EQ(out.logical_bytes, current.size());
  }
  for (const auto& [key, value] : latest) {
    std::string got;
    ASSERT_TRUE(store.Get(key, &got).ok());
    EXPECT_EQ(got, value);
  }
  // Every historical version stays readable by content address.
  for (const auto& [digest_bytes, value] : by_digest) {
    std::string got;
    crypto::Digest d = crypto::DigestFromBytes(digest_bytes);
    ASSERT_TRUE(store.GetByDigest(d, &got).ok());
    EXPECT_EQ(got, value);
  }
  // Similar successive versions must actually compress.
  EXPECT_GT(store.stats().delta_stored, 0u);
  EXPECT_LT(store.stats().physical_bytes, store.stats().logical_bytes);
}

TEST(DeltaStoreTest, ChainCapForcesAnchors) {
  DeltaStoreOptions options;
  options.min_delta_size = 32;
  options.max_chain = 3;
  DeltaStore store(options);
  Rng rng(5);
  std::string value = rng.Bytes(600);
  ASSERT_FALSE(store.Put("k", value).is_delta);  // first version: full
  int deltas_since_anchor = 0;
  for (int version = 0; version < 20; version++) {
    value = Mutate(value, &rng, 2);
    PutOutcome out = store.Put("k", value);
    if (out.is_delta) {
      deltas_since_anchor++;
      ASSERT_LE(deltas_since_anchor, 3) << "chain cap not enforced";
    } else {
      deltas_since_anchor = 0;
    }
    std::string got;
    ASSERT_TRUE(store.Get("k", &got).ok());
    ASSERT_EQ(got, value);
  }
  EXPECT_GT(store.stats().anchors_forced, 0u);
}

TEST(DeltaStoreTest, DedupsIdenticalContentAcrossKeys) {
  DeltaStore store;
  Rng rng(9);
  std::string value = rng.Bytes(800);
  PutOutcome first = store.Put("a", value);
  EXPECT_FALSE(first.deduped);
  PutOutcome second = store.Put("b", value);
  EXPECT_TRUE(second.deduped);
  EXPECT_EQ(second.stored_bytes, 0u);
  EXPECT_EQ(second.digest, first.digest);
  EXPECT_EQ(store.objects(), 1u);
  EXPECT_EQ(store.keys(), 2u);
  std::string got;
  ASSERT_TRUE(store.Get("b", &got).ok());
  EXPECT_EQ(got, value);
  // Re-putting a key's current value is also a dedup hit.
  EXPECT_TRUE(store.Put("a", value).deduped);
  EXPECT_EQ(store.stats().dedup_hits, 2u);
}

TEST(DeltaStoreTest, DissimilarVersionStoredFull) {
  DeltaStoreOptions options;
  options.min_delta_size = 64;
  DeltaStore store(options);
  Rng rng(17);
  store.Put("k", rng.Bytes(1000));
  // A completely different value: the max_delta_fraction cap must reject
  // the delta encoding.
  PutOutcome out = store.Put("k", rng.Bytes(1000));
  EXPECT_FALSE(out.is_delta);
  EXPECT_EQ(store.stats().delta_stored, 0u);
}

TEST(DeltaStoreTest, SmallValuesAlwaysFull) {
  DeltaStore store;  // min_delta_size = 256 default
  store.Put("k", "v1-small");
  PutOutcome out = store.Put("k", "v2-small");
  EXPECT_FALSE(out.is_delta);
  std::string got;
  ASSERT_TRUE(store.Get("k", &got).ok());
  EXPECT_EQ(got, "v2-small");
}

TEST(DeltaStoreTest, MissingKeyAndDigest) {
  DeltaStore store;
  std::string got;
  EXPECT_TRUE(store.Get("nope", &got).IsNotFound());
  crypto::Digest d{};
  EXPECT_FALSE(store.GetByDigest(d, &got).ok());
  EXPECT_FALSE(store.HeadDigest("nope", &d));
}

}  // namespace
}  // namespace dicho::storage::delta
