#ifndef DICHO_COMMON_HEX_H_
#define DICHO_COMMON_HEX_H_

#include <string>

#include "common/slice.h"

namespace dicho {

/// Lowercase hex encoding of raw bytes (digest pretty-printing).
std::string ToHex(const Slice& data);

/// Inverse of ToHex; returns empty string on malformed input of odd length or
/// non-hex characters.
std::string FromHex(const Slice& hex);

}  // namespace dicho

#endif  // DICHO_COMMON_HEX_H_
