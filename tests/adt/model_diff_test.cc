#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "adt/mbt.h"
#include "adt/mpt.h"
#include "common/random.h"
#include "crypto/sha256.h"
#include "storage/memkv.h"

namespace dicho::adt {
namespace {

// Model-based differential tests: drive the authenticated structures and a
// plain MemKv model with the same random operation streams, then check that
//   (a) every lookup agrees with the model,
//   (b) the root digest is a pure function of the final state — rebuilding
//       from the model in a different insertion order reproduces it, and
//   (c) membership proofs verify against the root.
// Random streams are seed-deterministic, so any failure reproduces exactly.

std::string RandomKey(Rng* rng, int universe) {
  return "key" + std::to_string(rng->Uniform(universe));
}

std::string RandomValue(Rng* rng, uint64_t step) {
  return "v" + std::to_string(step) + "-" + std::to_string(rng->Uniform(1000));
}

std::map<std::string, std::string> ModelContents(storage::MemKv* model) {
  std::map<std::string, std::string> contents;
  auto it = model->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    contents[it->key().ToString()] = it->value().ToString();
  }
  return contents;
}

TEST(MptModelDiffTest, MatchesModelUnderRandomPuts) {
  // MPT supports puts/overwrites only (insert-only state store).
  Rng rng(20240811);
  MerklePatriciaTrie mpt;
  storage::MemKv model;
  const int kUniverse = 200;  // small universe forces overwrites

  for (uint64_t step = 0; step < 2000; step++) {
    std::string key = RandomKey(&rng, kUniverse);
    std::string value = RandomValue(&rng, step);
    ASSERT_TRUE(mpt.Put(key, value).ok());
    ASSERT_TRUE(model.Put(key, value).ok());

    if (step % 250 == 0) {
      // Full sweep: every model key must read back identically.
      for (const auto& [k, v] : ModelContents(&model)) {
        std::string got;
        ASSERT_TRUE(mpt.Get(k, &got).ok()) << "missing " << k;
        EXPECT_EQ(got, v) << "divergence at " << k;
      }
    }
  }

  std::map<std::string, std::string> final_state = ModelContents(&model);
  crypto::Digest root = mpt.RootDigest();

  // Root digests are canonical: rebuilding the final state in sorted,
  // reverse-sorted, and seeded-shuffle orders all reproduce the same root.
  std::vector<std::pair<std::string, std::string>> entries(final_state.begin(),
                                                           final_state.end());
  auto rebuild = [&](const auto& ordered) {
    MerklePatriciaTrie fresh;
    for (const auto& [k, v] : ordered) EXPECT_TRUE(fresh.Put(k, v).ok());
    return fresh.RootDigest();
  };
  EXPECT_EQ(crypto::DigestBytes(rebuild(entries)), crypto::DigestBytes(root));
  std::reverse(entries.begin(), entries.end());
  EXPECT_EQ(crypto::DigestBytes(rebuild(entries)), crypto::DigestBytes(root));
  Rng shuffle_rng(99);
  for (size_t i = entries.size(); i > 1; i--) {
    std::swap(entries[i - 1], entries[shuffle_rng.Uniform(i)]);
  }
  EXPECT_EQ(crypto::DigestBytes(rebuild(entries)), crypto::DigestBytes(root));

  // Proof spot-checks: every 10th key proves membership against the root.
  size_t checked = 0;
  for (const auto& [k, v] : final_state) {
    if (checked++ % 10 != 0) continue;
    MerklePatriciaTrie::Proof proof;
    ASSERT_TRUE(mpt.Prove(k, &proof).ok());
    EXPECT_TRUE(VerifyMptProof(root, k, v, proof)) << "proof fails for " << k;
    // A tampered value must not verify.
    EXPECT_FALSE(VerifyMptProof(root, k, v + "!", proof));
  }
  EXPECT_GT(checked, 100u);
}

TEST(MbtModelDiffTest, MatchesModelUnderRandomPutsAndDeletes) {
  Rng rng(20240812);
  MerkleBucketTree mbt(/*num_buckets=*/64, /*fanout=*/4);
  storage::MemKv model;
  const int kUniverse = 150;

  for (uint64_t step = 0; step < 3000; step++) {
    std::string key = RandomKey(&rng, kUniverse);
    if (rng.Bernoulli(0.3)) {
      // Delete of an absent key is NotFound on both sides of the diff.
      std::string present;
      bool exists = model.Get(key, &present).ok();
      EXPECT_EQ(mbt.Delete(key).ok(), exists) << "step " << step;
      if (exists) {
        ASSERT_TRUE(model.Delete(key).ok());
      }
    } else {
      std::string value = RandomValue(&rng, step);
      ASSERT_TRUE(mbt.Put(key, value).ok());
      ASSERT_TRUE(model.Put(key, value).ok());
    }

    if (step % 300 == 0) {
      std::map<std::string, std::string> contents = ModelContents(&model);
      EXPECT_EQ(mbt.size(), contents.size());
      for (const auto& [k, v] : contents) {
        std::string got;
        ASSERT_TRUE(mbt.Get(k, &got).ok()) << "missing " << k;
        EXPECT_EQ(got, v) << "divergence at " << k;
      }
      // Deleted keys must be absent.
      for (int i = 0; i < kUniverse; i++) {
        std::string k = "key" + std::to_string(i);
        if (contents.count(k) > 0) continue;
        std::string got;
        EXPECT_FALSE(mbt.Get(k, &got).ok()) << "ghost key " << k;
      }
    }
  }

  std::map<std::string, std::string> final_state = ModelContents(&model);
  crypto::Digest root = mbt.RootDigest();

  // Canonical root: a fresh tree loaded with only the surviving entries (no
  // delete history), in forward and reverse orders, reproduces the digest.
  std::vector<std::pair<std::string, std::string>> entries(final_state.begin(),
                                                           final_state.end());
  auto rebuild = [&](const auto& ordered) {
    MerkleBucketTree fresh(64, 4);
    for (const auto& [k, v] : ordered) EXPECT_TRUE(fresh.Put(k, v).ok());
    return fresh.RootDigest();
  };
  EXPECT_EQ(crypto::DigestBytes(rebuild(entries)), crypto::DigestBytes(root));
  std::reverse(entries.begin(), entries.end());
  EXPECT_EQ(crypto::DigestBytes(rebuild(entries)), crypto::DigestBytes(root));

  // Proof spot-checks against the final root.
  size_t checked = 0;
  for (const auto& [k, v] : final_state) {
    if (checked++ % 10 != 0) continue;
    MerkleBucketTree::Proof proof;
    ASSERT_TRUE(mbt.Prove(k, &proof).ok());
    EXPECT_TRUE(VerifyMbtProof(root, k, v, proof)) << "proof fails for " << k;
    EXPECT_FALSE(VerifyMbtProof(root, k, v + "!", proof));
  }
  EXPECT_GT(checked, 50u);
}

}  // namespace
}  // namespace dicho::adt
