#include <gtest/gtest.h>

#include <memory>

#include "systems/etcd.h"
#include "systems/fabric.h"
#include "systems/quorum.h"
#include "systems/tidb.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace dicho::systems {
namespace {

core::TxnRequest PutTxn(uint64_t id, const std::string& key,
                        const std::string& value) {
  core::TxnRequest req;
  req.txn_id = id;
  req.client_id = id;
  req.contract = "ycsb";
  req.ops = {{core::OpType::kWrite, key, value}};
  return req;
}

core::TxnRequest SmallbankTxn(uint64_t id, const std::string& method,
                              std::vector<std::string> args) {
  core::TxnRequest req;
  req.txn_id = id;
  req.client_id = id;
  req.contract = "smallbank";
  req.method = method;
  req.args = std::move(args);
  return req;
}

// ---------------------------------------------------------------------------
// etcd
// ---------------------------------------------------------------------------

struct EtcdHarness {
  explicit EtcdHarness(uint32_t n = 5)
      : sim(42), net(&sim, sim::NetworkConfig{}) {
    EtcdConfig config;
    config.num_nodes = n;
    system = std::make_unique<EtcdSystem>(&sim, &net, &costs, config);
    system->Start();
    sim.RunFor(1 * sim::kSec);
  }
  sim::Simulator sim;
  sim::SimNetwork net;
  sim::CostModel costs;
  std::unique_ptr<EtcdSystem> system;
};

TEST(EtcdSystemTest, CommitsAndReplicatesWrites) {
  EtcdHarness h;
  ASSERT_TRUE(h.system->HasLeader());
  core::TxnResult result;
  h.system->Submit(PutTxn(1, "k", "v"),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.latency(), 0);
  // Full replication: every node has the value.
  h.sim.RunFor(1 * sim::kSec);
  for (NodeId n = 0; n < 5; n++) {
    std::string value;
    ASSERT_TRUE(h.system->state_of(n)->Get("k", &value).ok()) << n;
    EXPECT_EQ(value, "v");
  }
  EXPECT_EQ(h.system->stats().committed, 1u);
}

TEST(EtcdSystemTest, RejectsMultiOpTransactions) {
  EtcdHarness h;
  core::TxnRequest multi = PutTxn(1, "a", "1");
  multi.ops.push_back({core::OpType::kWrite, "b", "2"});
  core::TxnResult result;
  h.system->Submit(multi, [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(100 * sim::kMs);
  EXPECT_EQ(result.status.code(), StatusCode::kNotSupported);
}

TEST(EtcdSystemTest, QueryReturnsLoadedValue) {
  EtcdHarness h;
  h.system->Load("k", "loaded");
  core::ReadResult result;
  h.system->Query({1, "k"}, [&](const core::ReadResult& r) { result = r; });
  h.sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.value, "loaded");
  // Sub-millisecond reads (paper Fig. 5).
  EXPECT_LT(result.latency(), 2 * sim::kMs);
}

// ---------------------------------------------------------------------------
// Quorum
// ---------------------------------------------------------------------------

struct QuorumHarness {
  explicit QuorumHarness(QuorumConsensus consensus = QuorumConsensus::kRaft,
                         uint32_t n = 5)
      : sim(42), net(&sim, sim::NetworkConfig{}) {
    QuorumConfig config;
    config.num_nodes = n;
    config.consensus = consensus;
    config.block_interval = 100 * sim::kMs;  // faster tests
    system = std::make_unique<QuorumSystem>(&sim, &net, &costs, config);
    system->Start();
    sim.RunFor(1 * sim::kSec);
  }
  sim::Simulator sim;
  sim::SimNetwork net;
  sim::CostModel costs;
  std::unique_ptr<QuorumSystem> system;
};

TEST(QuorumSystemTest, CommitsThroughBlocks) {
  QuorumHarness h;
  ASSERT_TRUE(h.system->HasProposer());
  int committed = 0;
  for (int i = 0; i < 5; i++) {
    h.system->Submit(PutTxn(i + 1, "key" + std::to_string(i), "value"),
                     [&](const core::TxnResult& r) {
                       committed += r.status.ok();
                     });
  }
  h.sim.RunFor(5 * sim::kSec);
  EXPECT_EQ(committed, 5);
  // Ledger grew and verifies on every node; state identical everywhere.
  for (NodeId n = 0; n < 5; n++) {
    EXPECT_GT(h.system->chain_of(n).height(), 0u);
    EXPECT_TRUE(h.system->chain_of(n).Verify().ok());
    std::string value;
    ASSERT_TRUE(h.system->state_of(n).Get("key0", &value).ok());
    EXPECT_EQ(value, "value");
  }
  // All replicas agree on the state digest.
  auto root = h.system->state_of(0).RootDigest();
  for (NodeId n = 1; n < 5; n++) {
    EXPECT_EQ(h.system->state_of(n).RootDigest(), root);
  }
}

TEST(QuorumSystemTest, IbftAlsoCommits) {
  QuorumHarness h(QuorumConsensus::kIbft, 4);
  int committed = 0;
  for (int i = 0; i < 5; i++) {
    h.system->Submit(PutTxn(i + 1, "k" + std::to_string(i), "v"),
                     [&](const core::TxnResult& r) {
                       committed += r.status.ok();
                     });
  }
  h.sim.RunFor(8 * sim::kSec);
  EXPECT_EQ(committed, 5);
}

TEST(QuorumSystemTest, SmallbankConstraintAbortRecordedOnChain) {
  QuorumHarness h;
  h.system->Load(contract::SmallbankContract::CheckingKey("alice"), "50");
  h.system->Load(contract::SmallbankContract::CheckingKey("bob"), "0");
  core::TxnResult result;
  // alice has 50, sends 500: aborts in the contract.
  h.system->Submit(SmallbankTxn(1, "send_payment", {"alice", "bob", "500"}),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(5 * sim::kSec);
  EXPECT_TRUE(result.status.IsAborted());
  EXPECT_EQ(result.reason, core::AbortReason::kConstraint);
  // The aborted transaction is still recorded on the ledger.
  EXPECT_GT(h.system->chain_of(0).TotalTxns(), 0u);
}

TEST(QuorumSystemTest, QueriesAreMillisecondScale) {
  QuorumHarness h;
  h.system->Load("k", "v");
  core::ReadResult result;
  h.system->Query({1, "k"}, [&](const core::ReadResult& r) { result = r; });
  h.sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(result.status.ok());
  // ~4ms per the paper (well above database reads, far below updates).
  EXPECT_GT(result.latency(), 2 * sim::kMs);
  EXPECT_LT(result.latency(), 10 * sim::kMs);
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

struct FabricHarness {
  explicit FabricHarness(uint32_t peers = 5)
      : sim(42), net(&sim, sim::NetworkConfig{}) {
    FabricConfig config;
    config.num_peers = peers;
    config.ordering.batch_timeout = 100 * sim::kMs;  // faster tests
    system = std::make_unique<FabricSystem>(&sim, &net, &costs, config);
    system->Start();
    sim.RunFor(1 * sim::kSec);
  }
  sim::Simulator sim;
  sim::SimNetwork net;
  sim::CostModel costs;
  std::unique_ptr<FabricSystem> system;
};

TEST(FabricSystemTest, ExecuteOrderValidateCommit) {
  FabricHarness h;
  ASSERT_TRUE(h.system->Ready());
  core::TxnResult result;
  h.system->Submit(PutTxn(1, "k", "v"),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(3 * sim::kSec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // All three phases measured.
  EXPECT_GT(result.phases.Get(core::Phase::kExecute), 0);
  EXPECT_GT(result.phases.Get(core::Phase::kOrder), 0);
  EXPECT_GT(result.phases.Get(core::Phase::kValidate), 0);
  // Replicated to every peer; ledgers verify.
  for (NodeId p = 0; p < 5; p++) {
    std::string value;
    uint64_t version;
    h.system->state_of(p).Get("k", &value, &version);
    EXPECT_EQ(value, "v") << "peer " << p;
    EXPECT_TRUE(h.system->chain_of(p).Verify().ok());
  }
}

TEST(FabricSystemTest, StaleReadAbortsAtValidation) {
  FabricHarness h;
  h.system->Load("x", "0");
  // Two read-modify-write transactions on the same key submitted together:
  // both endorse against the same version; the one ordered second fails the
  // MVCC check (paper Fig. 9).
  core::TxnRequest t1 = PutTxn(1, "x", "a");
  t1.ops[0].type = core::OpType::kReadModifyWrite;
  core::TxnRequest t2 = PutTxn(2, "x", "b");
  t2.ops[0].type = core::OpType::kReadModifyWrite;
  core::TxnResult r1, r2;
  h.system->Submit(t1, [&](const core::TxnResult& r) { r1 = r; });
  h.system->Submit(t2, [&](const core::TxnResult& r) { r2 = r; });
  h.sim.RunFor(3 * sim::kSec);
  EXPECT_TRUE(r1.status.ok() != r2.status.ok());  // exactly one wins
  const core::TxnResult& loser = r1.status.ok() ? r2 : r1;
  EXPECT_EQ(loser.reason, core::AbortReason::kReadConflict);
  EXPECT_EQ(h.system->stats().aborts_by_reason.at(
                core::AbortReason::kReadConflict),
            1u);
}

TEST(FabricSystemTest, QueryDominatedByAuth) {
  FabricHarness h;
  h.system->Load("k", "v");
  core::ReadResult result;
  h.system->Query({1, "k"}, [&](const core::ReadResult& r) { result = r; });
  h.sim.RunFor(1 * sim::kSec);
  ASSERT_TRUE(result.status.ok());
  // ~9ms query dominated by client authentication (paper Fig. 8b).
  EXPECT_GT(result.latency(), 5 * sim::kMs);
  EXPECT_GT(result.phases.Get(core::Phase::kAuth),
            result.phases.Get(core::Phase::kRead));
}

TEST(FabricSystemTest, EndorsementsGrowWithPeerCount) {
  // More peers => more endorsement signatures per txn => heavier validation
  // (the Table 4 mechanism). Check the ledger carries N endorsements.
  FabricHarness h(7);
  core::TxnResult result;
  h.system->Submit(PutTxn(1, "k", "v"),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(3 * sim::kSec);
  ASSERT_TRUE(result.status.ok());
  const auto& chain = h.system->chain_of(0);
  ASSERT_GT(chain.height(), 0u);
  EXPECT_EQ(chain.block(0).txns[0].endorsements.size(), 7u);
}

// ---------------------------------------------------------------------------
// TiDB
// ---------------------------------------------------------------------------

struct TidbHarness {
  explicit TidbHarness(uint32_t servers = 3, uint32_t tikv = 3)
      : sim(42), net(&sim, sim::NetworkConfig{}) {
    TidbConfig config;
    config.num_tidb_servers = servers;
    config.num_tikv_nodes = tikv;
    system = std::make_unique<TidbSystem>(&sim, &net, &costs, config);
  }
  sim::Simulator sim;
  sim::SimNetwork net;
  sim::CostModel costs;
  std::unique_ptr<TidbSystem> system;
};

TEST(TidbSystemTest, CommitsReadModifyWrite) {
  TidbHarness h;
  h.system->Load("k", "1");
  core::TxnRequest txn = PutTxn(1, "k", "2");
  txn.ops[0].type = core::OpType::kReadModifyWrite;
  core::TxnResult result;
  h.system->Submit(txn, [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(2 * sim::kSec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.reads["k"], "1");
  EXPECT_GT(result.phases.Get(core::Phase::kPrewrite), 0);
  EXPECT_GT(result.phases.Get(core::Phase::kCommit), 0);
  // Milliseconds, not blockchain-scale latency.
  EXPECT_LT(result.latency(), 50 * sim::kMs);
}

TEST(TidbSystemTest, SmallbankTransfersAreAtomic) {
  TidbHarness h;
  h.system->Load(contract::SmallbankContract::CheckingKey("alice"), "1000");
  h.system->Load(contract::SmallbankContract::CheckingKey("bob"), "0");
  core::TxnResult result;
  h.system->Submit(SmallbankTxn(1, "send_payment", {"alice", "bob", "300"}),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(2 * sim::kSec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  core::ReadResult alice, bob;
  h.system->Query({1, contract::SmallbankContract::CheckingKey("alice")},
                  [&](const core::ReadResult& r) { alice = r; });
  h.system->Query({2, contract::SmallbankContract::CheckingKey("bob")},
                  [&](const core::ReadResult& r) { bob = r; });
  h.sim.RunFor(1 * sim::kSec);
  EXPECT_EQ(alice.value, "700");
  EXPECT_EQ(bob.value, "300");
}

TEST(TidbSystemTest, WriteWriteConflictOneWinsOrRetries) {
  TidbHarness h;
  h.system->Load("hot", "0");
  // A burst of conflicting RMWs on one key: with retries most eventually
  // commit, occupying the coordinator (the skew-collapse mechanism).
  int done = 0, ok = 0;
  for (int i = 0; i < 10; i++) {
    core::TxnRequest txn = PutTxn(i + 1, "hot", "v" + std::to_string(i));
    txn.ops[0].type = core::OpType::kReadModifyWrite;
    h.system->Submit(txn, [&](const core::TxnResult& r) {
      done++;
      ok += r.status.ok();
    });
  }
  h.sim.RunFor(10 * sim::kSec);
  EXPECT_EQ(done, 10);
  EXPECT_GT(ok, 0);
  // The final value is one of the writes (no lost intermediate state).
  core::ReadResult result;
  h.system->Query({1, "hot"}, [&](const core::ReadResult& r) { result = r; });
  h.sim.RunFor(1 * sim::kSec);
  EXPECT_EQ(result.value.rfind("v", 0), 0u);
}

TEST(TidbSystemTest, ConstraintAbortDoesNotRetry) {
  TidbHarness h;
  h.system->Load(contract::SmallbankContract::SavingsKey("carl"), "100");
  core::TxnResult result;
  h.system->Submit(SmallbankTxn(1, "transact_savings", {"carl", "-500"}),
                   [&](const core::TxnResult& r) { result = r; });
  h.sim.RunFor(2 * sim::kSec);
  EXPECT_TRUE(result.status.IsAborted());
  EXPECT_EQ(result.reason, core::AbortReason::kConstraint);
}

TEST(TidbSystemTest, RawTikvPathIsFasterThanTxnPath) {
  TidbHarness h;
  h.system->Load("k", "v");
  // Transactional write.
  core::TxnResult txn_result;
  core::TxnRequest txn = PutTxn(1, "k", "w");
  txn.ops[0].type = core::OpType::kReadModifyWrite;
  h.system->Submit(txn, [&](const core::TxnResult& r) { txn_result = r; });
  h.sim.RunFor(2 * sim::kSec);
  ASSERT_TRUE(txn_result.status.ok());

  // Raw put.
  double raw_latency = -1;
  sim::Time t0 = h.sim.Now();
  h.system->RawPut("k2", "v2", [&](Status s) {
    ASSERT_TRUE(s.ok());
    raw_latency = h.sim.Now() - t0;
  });
  h.sim.RunFor(2 * sim::kSec);
  ASSERT_GT(raw_latency, 0);
  EXPECT_LT(raw_latency, txn_result.latency());
}

// ---------------------------------------------------------------------------
// Cross-system: the paper's headline ordering under a small YCSB run
// ---------------------------------------------------------------------------

TEST(SystemsIntegrationTest, ThroughputOrderingMatchesPaper) {
  // Small-scale YCSB update-only: etcd > TiDB > Fabric > Quorum.
  auto run = [](auto make_system, auto start) {
    sim::Simulator sim(7);
    sim::SimNetwork net(&sim, sim::NetworkConfig{});
    sim::CostModel costs;
    auto system = make_system(&sim, &net, &costs);
    start(system.get(), &sim);

    workload::YcsbConfig wcfg;
    wcfg.record_count = 1000;
    wcfg.record_size = 1000;
    workload::YcsbWorkload workload(wcfg, 3);
    for (uint64_t i = 0; i < wcfg.record_count; i++) {
      system->Load(workload.KeyAt(i), workload.RandomValue());
    }
    workload::DriverConfig dcfg;
    // Saturating concurrency: the comparison is peak capacity, and etcd's
    // group-commit batching needs enough in-flight requests to express it.
    dcfg.num_clients = 320;
    dcfg.warmup = 2 * sim::kSec;
    dcfg.measure = 5 * sim::kSec;
    workload::Driver driver(
        &sim, system.get(), [&] { return workload.NextTxn(); }, dcfg);
    return driver.Run().throughput_tps;
  };

  double etcd_tps = run(
      [](auto* sim, auto* net, auto* costs) {
        EtcdConfig config;
        return std::make_unique<EtcdSystem>(sim, net, costs, config);
      },
      [](EtcdSystem* s, sim::Simulator* sim) {
        s->Start();
        sim->RunFor(1 * sim::kSec);
      });
  double tidb_tps = run(
      [](auto* sim, auto* net, auto* costs) {
        TidbConfig config;
        return std::make_unique<TidbSystem>(sim, net, costs, config);
      },
      [](TidbSystem*, sim::Simulator*) {});
  double fabric_tps = run(
      [](auto* sim, auto* net, auto* costs) {
        FabricConfig config;
        return std::make_unique<FabricSystem>(sim, net, costs, config);
      },
      [](FabricSystem* s, sim::Simulator* sim) {
        s->Start();
        sim->RunFor(1 * sim::kSec);
      });
  double quorum_tps = run(
      [](auto* sim, auto* net, auto* costs) {
        QuorumConfig config;
        return std::make_unique<QuorumSystem>(sim, net, costs, config);
      },
      [](QuorumSystem* s, sim::Simulator* sim) {
        s->Start();
        sim->RunFor(1 * sim::kSec);
      });

  EXPECT_GT(etcd_tps, tidb_tps) << "etcd should beat TiDB";
  EXPECT_GT(tidb_tps, fabric_tps) << "TiDB should beat Fabric";
  EXPECT_GT(fabric_tps, quorum_tps) << "Fabric should beat Quorum at 1KB";
  EXPECT_GT(quorum_tps, 50) << "Quorum should still make progress";
}

}  // namespace
}  // namespace dicho::systems
