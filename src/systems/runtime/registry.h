#ifndef DICHO_SYSTEMS_RUNTIME_REGISTRY_H_
#define DICHO_SYSTEMS_RUNTIME_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "hybrid/taxonomy.h"
#include "sim/cost_model.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/runtime/mempool.h"

namespace dicho::systems::runtime {

/// Cross-system construction knobs. Zero/empty means "keep the system's
/// default"; fields a system has no analog for are ignored. Anything not
/// expressible here (endorsement policies, epoch tuning, ...) still goes
/// through the concrete config structs — the registry covers the knobs the
/// benches and the testing harness actually sweep.
struct SystemOverrides {
  /// Primary replica count: quorum/etcd nodes, fabric peers, TiDB SQL
  /// servers, hybrid nodes.
  uint32_t nodes = 0;
  /// Secondary tier: TiKV storage nodes.
  uint32_t aux_nodes = 0;
  /// TiDB replication factor (0 = full replication).
  uint32_t replication = 0;
  /// Fabric validation-pool width.
  uint32_t validation_parallelism = 0;
  /// Quorum block-cutting cadence (0 = default 250 ms).
  sim::Time block_interval = 0;
  /// Quorum re-mint timeout (see QuorumConfig::reproposal_timeout; 0 = off).
  sim::Time quorum_reproposal_timeout = 0;
  /// Simulated-PoW mean block interval for hybrid designs (0 = default).
  sim::Time pow_mean_block_interval = 0;
  /// Raft fault-injection flag (simulation testing harness).
  bool raft_unsafe_commit_without_quorum = false;
  /// Raft §8 leader no-op on election (see RaftConfig::leader_noop).
  bool raft_leader_noop = false;
  /// Fast storage path (DESIGN.md §2g): fabric delta-backed world state,
  /// harmonylike out-of-line MPT values + fast per-write pricing. Ignored
  /// by systems without the flag.
  bool fast_storage = false;
  /// Taxonomy point for the "hybrid" entry; ignored elsewhere. Must stay
  /// alive through the call (the descriptor is copied into the config).
  const hybrid::SystemDescriptor* hybrid_design = nullptr;
  /// Mempool admission control, applied uniformly to every registry name by
  /// wrapping the constructed system in an AdmissionGate. Default policy
  /// kNone builds the bare system — byte-identical to pre-admission runs.
  /// NOTE: with a non-kNone policy MakeSystem returns the gate, so
  /// MakeSystemAs<T> (which static_casts to the concrete type) must only be
  /// used with admission disabled.
  AdmissionConfig admission;
};

/// Constructs a system by registry name: "quorum-raft", "quorum-ibft",
/// "fabric", "tidb", "etcd", "ahl", "spannerlike", "harmonylike",
/// "harmonyshard", or
/// "hybrid" (which requires overrides.hybrid_design). Construction only
/// — callers decide
/// when to Start() and how long to warm up. Returns nullptr for unknown
/// names.
std::unique_ptr<core::TransactionalSystem> MakeSystem(
    const std::string& name, sim::Simulator* sim, sim::SimNetwork* net,
    const sim::CostModel* costs, const SystemOverrides& overrides = {});

/// Typed construction for call sites that need the concrete system's extra
/// surface (chain_of, StateBytes, ...). T must match `name`'s concrete type.
template <typename T>
std::unique_ptr<T> MakeSystemAs(const std::string& name, sim::Simulator* sim,
                                sim::SimNetwork* net,
                                const sim::CostModel* costs,
                                const SystemOverrides& overrides = {}) {
  auto system = MakeSystem(name, sim, net, costs, overrides);
  return std::unique_ptr<T>(static_cast<T*>(system.release()));
}

/// Registry names in registration order.
std::vector<std::string> RegisteredSystems();

}  // namespace dicho::systems::runtime

#endif  // DICHO_SYSTEMS_RUNTIME_REGISTRY_H_
