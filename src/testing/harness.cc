#include "testing/harness.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>

#include "adt/mpt.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "core/types.h"
#include "lifecycle/catchup.h"
#include "lifecycle/snapshot.h"
#include "obs/trace.h"
#include "ledger/ledger.h"
#include "sim/cost_model.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/harmonylike.h"
#include "systems/harmonyshard.h"
#include "systems/quorum.h"
#include "systems/runtime/registry.h"
#include "testing/nemesis.h"
#include "testing/serializability.h"
#include "workload/arrival.h"

namespace dicho::testing {

const char* BugName(BugInjection bug) {
  switch (bug) {
    case BugInjection::kNone:
      return "none";
    case BugInjection::kRaftCommitWithoutQuorum:
      return "raft-no-quorum";
    case BugInjection::kPbftSkipPrepareQuorum:
      return "pbft-no-quorum";
  }
  return "none";
}

bool ParseBugName(const std::string& name, BugInjection* out) {
  for (BugInjection bug :
       {BugInjection::kNone, BugInjection::kRaftCommitWithoutQuorum,
        BugInjection::kPbftSkipPrepareQuorum}) {
    if (name == BugName(bug)) {
      *out = bug;
      return true;
    }
  }
  return false;
}

namespace {

std::vector<sim::NodeId> MakeIds(uint32_t n) {
  std::vector<sim::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

// --- Raft scenarios ---------------------------------------------------------

ScenarioResult RunRaftScenario(const ScenarioOptions& options,
                               const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::RaftConfig config;
  config.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;

  RaftInvariantChecker* checker = nullptr;
  auto cluster = consensus::RaftCluster::Create(
      &sim, &net, &costs, MakeIds(sched.num_nodes), config,
      [&checker](sim::NodeId node, uint64_t index, const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, index, cmd);
      });
  RaftInvariantChecker check(cluster->all());
  checker = &check;

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    for (consensus::RaftNode* node : cluster->all()) {
      if (node->IsLeader()) {
        node->Propose("cmd-" + std::to_string(next_cmd++),
                      [](Status, uint64_t) {});
        break;
      }
    }
    sim.Schedule(50 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);
  std::function<void()> observe = [&] {
    check.Observe();
    sim.Schedule(20 * sim::kMs, observe);
  };
  sim.Schedule(20 * sim::kMs, observe);

  sim.RunUntil(sched.horizon);
  check.CheckFinal();
  result.report = *check.report();
  result.progress = check.applied_total();
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no node applied any command over the whole run "
                      "(schedule guarantees a majority plus a quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Partitioned-engine scenario (conservative parallel sync) ---------------

// One world: N-node Raft with every replica on its own simulator partition,
// run at `threads` worker threads. Faults and the proposing client are
// injected as global events (all partitions parked); node-local side effects
// run under the node's PartitionScope. Per-node applied logs are the
// outcome the safety and determinism checks run over.
struct PartitionedRaftOutcome {
  std::vector<std::vector<std::pair<uint64_t, std::string>>> applied;
  uint64_t sim_events = 0;
};

PartitionedRaftOutcome RunPartitionedRaftWorld(const ScenarioOptions& options,
                                               const ScheduleConfig& sched,
                                               const FaultSchedule& schedule,
                                               unsigned threads) {
  PartitionedRaftOutcome out;
  sim::Simulator sim(options.seed);
  sim.set_threads(threads);
  std::vector<sim::NodeId> ids = MakeIds(sched.num_nodes);
  for (sim::NodeId id : ids) sim.AssignNode(id, sim.AddPartition());
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::RaftConfig config;
  config.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;

  out.applied.resize(sched.num_nodes);
  auto cluster = consensus::RaftCluster::Create(
      &sim, &net, &costs, ids, config,
      [&out](sim::NodeId node, uint64_t index, const std::string& cmd) {
        // Node-confined slot: only ever touched from the node's partition.
        out.applied[node].emplace_back(index, cmd);
      });

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    sim::Simulator::PartitionScope scope(&sim, sim.PartitionOfNode(id));
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    sim::Simulator::PartitionScope scope(&sim, sim.PartitionOfNode(id));
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  nemesis.ArmGlobal(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    for (consensus::RaftNode* node : cluster->all()) {
      if (node->IsLeader()) {
        sim::Simulator::PartitionScope scope(&sim,
                                             sim.PartitionOfNode(node->id()));
        node->Propose("cmd-" + std::to_string(next_cmd++),
                      [](Status, uint64_t) {});
        break;
      }
    }
    sim.ScheduleGlobal(50 * sim::kMs, client);
  };
  sim.ScheduleGlobal(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);
  out.sim_events = sim.executed_events();
  return out;
}

ScenarioResult RunPartitionedRaftScenario(const ScenarioOptions& options,
                                          const ScheduleConfig& sched) {
  ScenarioResult result;
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  PartitionedRaftOutcome serial =
      RunPartitionedRaftWorld(options, sched, schedule, 1);
  PartitionedRaftOutcome parallel =
      RunPartitionedRaftWorld(options, sched, schedule, 2);

  // The conservative parallel engine must replay the serial merge exactly:
  // same per-node apply sequences, same event total.
  if (serial.sim_events != parallel.sim_events ||
      serial.applied != parallel.applied) {
    result.report.Add("parallel-determinism",
                      "threads=2 run diverged from threads=1 (events " +
                          std::to_string(serial.sim_events) + " vs " +
                          std::to_string(parallel.sim_events) + ")");
  }

  // State-machine safety across the cluster: no two applies may disagree on
  // the command at an index (restart re-application must replay the same
  // commands too).
  std::map<uint64_t, std::string> canon;
  for (size_t n = 0; n < serial.applied.size(); n++) {
    for (const auto& [index, cmd] : serial.applied[n]) {
      auto [it, inserted] = canon.emplace(index, cmd);
      if (!inserted && it->second != cmd) {
        result.report.Add(
            "raft-state-machine",
            "node " + std::to_string(n) + " applied '" + cmd + "' at index " +
                std::to_string(index) + " where '" + it->second +
                "' was already applied");
      }
    }
  }
  for (const auto& log : serial.applied) result.progress += log.size();
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no node applied any command over the whole run "
                      "(schedule guarantees a majority plus a quiet tail)");
  }
  result.sim_events = serial.sim_events;
  result.schedule = schedule.ToString();
  return result;
}

// --- PBFT scenarios ---------------------------------------------------------

ScenarioResult RunBftScenario(const ScenarioOptions& options,
                              const ScheduleConfig& sched,
                              const std::set<sim::NodeId>& byzantine) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::BftConfig config;
  config.unsafe_skip_prepare_quorum =
      options.bug == BugInjection::kPbftSkipPrepareQuorum;

  BftInvariantChecker* checker = nullptr;
  auto cluster = consensus::BftCluster::Create(
      &sim, &net, &costs, MakeIds(sched.num_nodes), config,
      [&checker](sim::NodeId node, uint64_t seq, const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, seq, cmd);
      });
  BftInvariantChecker check(cluster->all(), byzantine);
  checker = &check;
  for (sim::NodeId evil : byzantine) {
    cluster->node(evil)->SetByzantineEquivocation(true);
  }

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    std::string cmd = "op-" + std::to_string(next_cmd++);
    for (consensus::BftNode* node : cluster->all()) {
      if (nemesis.IsDown(node->id()) || byzantine.count(node->id()) > 0) {
        continue;
      }
      check.NoteSubmitted(cmd);
      node->Submit(cmd, [](Status, uint64_t) {});
      break;
    }
    sim.Schedule(60 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);
  check.CheckFinal();
  result.report = *check.report();
  result.progress = check.executed_total();
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no correct replica executed any command over the "
                      "whole run (schedule keeps >= 2f+1 correct replicas "
                      "up plus a quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Ledger pipeline --------------------------------------------------------

// Each replica turns its Raft apply stream into hash-linked blocks over an
// MPT-authenticated state (a miniature order-execute chain, Quorum-style),
// so the ledger audits get exercised against consensus under faults.
struct PipelineReplica {
  uint64_t applied = 0;  // highest Raft index folded in (restart replays skip)
  std::vector<std::string> buffer;
  adt::MerklePatriciaTrie state;
  ledger::Chain chain;
};

constexpr size_t kPipelineBlockTxns = 5;

void SealPipelineBlock(sim::NodeId id, PipelineReplica* replica,
                       InvariantReport* report) {
  ledger::Block block;
  block.header.number = replica->chain.height();
  block.header.parent = replica->chain.TipDigest();
  // Deterministic across replicas (wall-clock stamps would split the chain).
  block.header.timestamp_us = block.header.number;
  for (const std::string& cmd : replica->buffer) {
    ledger::LedgerTxn txn;
    txn.payload = cmd;
    size_t eq = cmd.find('=');
    txn.write_set.emplace_back(cmd.substr(0, eq), cmd.substr(eq + 1));
    block.txns.push_back(std::move(txn));
  }
  replica->buffer.clear();
  block.SealTxnRoot();
  for (const auto& txn : block.txns) {
    for (const auto& [key, value] : txn.write_set) {
      replica->state.Put(key, value);
    }
  }
  block.header.state_digest = replica->state.RootDigest();
  Status s = replica->chain.Append(std::move(block));
  if (!s.ok()) {
    report->Add("ledger-verify", "node " + std::to_string(id) +
                                     " failed to append its own block: " +
                                     s.message());
  }
}

ScenarioResult RunLedgerPipelineScenario(const ScenarioOptions& options,
                                         const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  consensus::RaftConfig config;
  config.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;

  std::map<sim::NodeId, PipelineReplica> replicas;
  RaftInvariantChecker* checker = nullptr;
  auto cluster = consensus::RaftCluster::Create(
      &sim, &net, &costs, MakeIds(sched.num_nodes), config,
      [&checker, &replicas, &result](sim::NodeId node, uint64_t index,
                                     const std::string& cmd) {
        if (checker != nullptr) checker->OnApply(node, index, cmd);
        PipelineReplica& replica = replicas[node];
        if (index <= replica.applied) return;  // post-restart replay
        replica.applied = index;
        replica.buffer.push_back(cmd);
        if (replica.buffer.size() >= kPipelineBlockTxns) {
          SealPipelineBlock(node, &replica, &result.report);
        }
      });
  RaftInvariantChecker check(cluster->all());
  checker = &check;

  Nemesis::Hooks hooks;
  hooks.crash = [&](sim::NodeId id) {
    net.SetNodeDown(id, true);
    cluster->node(id)->Crash();
  };
  hooks.restart = [&](sim::NodeId id) {
    net.SetNodeDown(id, false);
    cluster->node(id)->Restart();
  };
  Nemesis nemesis(&sim, &net, std::move(hooks));
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);
  cluster->StartAll();

  uint64_t next_cmd = 0;
  std::function<void()> client = [&] {
    for (consensus::RaftNode* node : cluster->all()) {
      if (node->IsLeader()) {
        std::string cmd = "acct" + std::to_string(next_cmd % 7) + "=v" +
                          std::to_string(next_cmd);
        next_cmd++;
        node->Propose(std::move(cmd), [](Status, uint64_t) {});
        break;
      }
    }
    sim.Schedule(40 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);
  check.CheckFinal();
  result.report = *check.report();

  std::vector<const ledger::Chain*> chains;
  for (auto& [id, replica] : replicas) {
    ledger_audit::AuditChain(replica.chain, "node " + std::to_string(id),
                             &result.report);
    chains.push_back(&replica.chain);
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);
  const ledger::Chain* longest = nullptr;
  for (const ledger::Chain* chain : chains) {
    if (longest == nullptr || chain->height() > longest->height()) {
      longest = chain;
    }
  }
  if (longest != nullptr) {
    ledger_audit::CheckStateDigests(*longest, {}, &result.report);
  }

  result.progress = check.applied_total();
  if (result.progress == 0) {
    result.report.Add("liveness", "no node applied any command");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Full Quorum pipeline ---------------------------------------------------

ScenarioResult RunQuorumScenario(const ScenarioOptions& options,
                                 const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::runtime::SystemOverrides overrides;
  overrides.nodes = sched.num_nodes;
  overrides.block_interval = 150 * sim::kMs;
  overrides.raft_unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  auto system_ptr = systems::runtime::MakeSystemAs<systems::QuorumSystem>(
      "quorum-raft", &sim, &net, &costs, overrides);
  systems::QuorumSystem& system = *system_ptr;
  for (int i = 0; i < 6; i++) {
    system.Load("acct" + std::to_string(i), "0");
  }
  system.Start();

  // Network faults only: the Quorum pipeline does not expose node crashes.
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);

  uint64_t next_txn = 0;
  std::function<void()> client = [&] {
    core::TxnRequest request;
    request.txn_id = ++next_txn;
    request.client_id = 7;
    request.ops.push_back(
        {core::OpType::kWrite, "acct" + std::to_string(next_txn % 6),
         "v" + std::to_string(next_txn)});
    system.Submit(request, [](const core::TxnResult&) {});
    sim.Schedule(100 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);

  std::vector<const ledger::Chain*> chains;
  for (uint32_t i = 0; i < sched.num_nodes; i++) {
    ledger_audit::AuditChain(system.chain_of(i), "node " + std::to_string(i),
                             &result.report);
    chains.push_back(&system.chain_of(i));
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);

  result.progress = system.stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Full harmonylike (fused) pipeline --------------------------------------

ScenarioResult RunHarmonyScenario(const ScenarioOptions& options,
                                  const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::runtime::SystemOverrides overrides;
  overrides.nodes = sched.num_nodes;
  overrides.block_interval = 150 * sim::kMs;
  overrides.raft_unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  auto system_ptr = systems::runtime::MakeSystemAs<systems::HarmonySystem>(
      "harmonylike", &sim, &net, &costs, overrides);
  systems::HarmonySystem& system = *system_ptr;
  std::vector<std::pair<std::string, std::string>> initial;
  for (int i = 0; i < 4; i++) {
    initial.emplace_back("acct" + std::to_string(i), "0");
    system.Load(initial.back().first, initial.back().second);
  }
  system.Start();

  // Network faults only, as for the Quorum pipeline; the hot-key RMW stream
  // forces multi-layer epoch schedules while the nemesis disturbs ordering.
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);

  uint64_t next_txn = 0;
  std::function<void()> client = [&] {
    core::TxnRequest request;
    request.txn_id = ++next_txn;
    request.client_id = 7;
    request.contract = "ycsb";
    request.ops.push_back(
        {core::OpType::kReadModifyWrite, "acct" + std::to_string(next_txn % 4),
         "v" + std::to_string(next_txn)});
    system.Submit(request, [](const core::TxnResult&) {});
    sim.Schedule(80 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);

  // Deterministic execution promises replica agreement down to the state
  // root, so this scenario runs the full ledger audit menu: per-node chain
  // verification, prefix agreement, and a write-set replay of the longest
  // chain against its headers' state digests.
  std::vector<const ledger::Chain*> chains;
  const ledger::Chain* longest = nullptr;
  for (sim::NodeId id : system.node_ids()) {
    const ledger::Chain& chain = system.chain_of(id);
    ledger_audit::AuditChain(chain, "node " + std::to_string(id),
                             &result.report);
    chains.push_back(&chain);
    if (longest == nullptr || chain.height() > longest->height()) {
      longest = &chain;
    }
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);
  if (longest != nullptr) {
    ledger_audit::CheckStateDigests(*longest, initial, &result.report);
  }
  if (system.stats().aborted != 0) {
    result.report.Add("det-aborts",
                      "deterministic execution reported " +
                          std::to_string(system.stats().aborted) +
                          " aborts on an abort-free workload");
  }

  result.progress = system.stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Overload shedding under faults ----------------------------------------

// Flash crowd at ~6x the mempool-bounded Quorum pipeline's capacity while
// the nemesis partitions the network, with the registry-applied admission
// gate (reject-newest, bound 128) in front. Invariants:
//   * exactly-once outcomes — every submitted txn resolves at most once,
//     nothing resolves that was never submitted;
//   * every gate rejection is an explicit kAdmissionReject outcome (counted
//     against the gate's own rejected_count — no silent shedding);
//   * conservation — at the horizon every admitted-but-unresolved txn is
//     still accounted for in the runtime's mempool or inflight table
//     (admitted txns are never silently dropped);
//   * the full per-node ledger-audit menu plus prefix agreement;
//   * liveness — the healed tail must commit transactions.
ScenarioResult RunOverloadShedScenario(const ScenarioOptions& options,
                                       const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::runtime::SystemOverrides overrides;
  overrides.nodes = sched.num_nodes;
  overrides.block_interval = 150 * sim::kMs;
  overrides.raft_unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  // Raft §8 no-op — without it a full admission gate livelocks the cluster
  // after leadership churn: §5.4.2 keeps the new leader from committing the
  // prior-term blocks holding every gate slot, and the gate keeps any new
  // (committable) proposal from entering. This scenario found that.
  overrides.raft_leader_noop = true;
  // Re-mint (geth-raft minter idiom): blocks whose Raft entry is lost to
  // leadership churn must return their txns to the mempool, or the orphans
  // pin every gate slot forever — the second livelock this scenario found.
  overrides.quorum_reproposal_timeout = 1 * sim::kSec;
  overrides.admission.policy =
      systems::runtime::AdmissionPolicy::kRejectNewest;
  overrides.admission.max_inflight = 128;
  // The registry wraps the concrete system in the admission gate — the same
  // wiring path the benches use.
  auto gated = systems::runtime::MakeSystem("quorum-raft", &sim, &net, &costs,
                                            overrides);
  auto* gate = static_cast<systems::runtime::AdmissionGate*>(gated.get());
  auto* quorum = static_cast<systems::QuorumSystem*>(gate->inner());
  for (int i = 0; i < 8; i++) {
    quorum->Load("acct" + std::to_string(i), "0");
  }
  gated->Start();

  // Network faults only (as for quorum_system: the pipeline exposes no
  // crash hooks — a fully partitioned node is the crash analog).
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  nemesis.Arm(schedule);

  // Open-loop arrivals from the engine's private Rng: ~150 tps base with
  // two seed-placed 6x flash crowds — far above what 128 admission slots
  // over a partitioned Raft pipeline can absorb, so the gate must shed.
  workload::ArrivalConfig acfg;
  acfg.base_rate_tps = 150;
  acfg.flash_count = 2;
  acfg.flash_amplitude = 6.0;
  acfg.flash_duration = 1 * sim::kSec;
  acfg.horizon = sched.horizon * (1.0 - sched.quiet_tail);
  acfg.record_count = 8;
  acfg.zipf_theta = 0.5;
  workload::ArrivalEngine engine(acfg, options.seed * 7919 + 17);

  uint64_t submitted = 0;
  uint64_t reject_outcomes = 0;
  std::map<uint64_t, int> outcome_counts;
  const sim::Time stop_time = acfg.horizon;
  std::function<void()> pump = [&] {
    workload::Arrival arrival = engine.Next(sim.Now());
    if (arrival.time >= stop_time) return;
    sim.ScheduleAt(arrival.time, [&, arrival] {
      core::TxnRequest request;
      request.txn_id = ++submitted;
      request.client_id = 7;
      request.tenant = arrival.tenant;
      request.fee = arrival.fee;
      request.ops.push_back(
          {core::OpType::kWrite,
           "acct" + std::to_string(arrival.key_index % 8),
           "v" + std::to_string(submitted)});
      uint64_t id = request.txn_id;
      gated->Submit(request, [&, id](const core::TxnResult& txn_result) {
        outcome_counts[id]++;
        if (id == 0 || id > submitted) {
          result.report.Add("outcome-provenance",
                            "outcome for never-submitted txn " +
                                std::to_string(id));
        }
        bool is_reject =
            txn_result.reason == core::AbortReason::kAdmissionReject;
        if (is_reject) {
          reject_outcomes++;
          if (txn_result.status.ok()) {
            result.report.Add("reject-outcome",
                              "admission reject delivered with ok status "
                              "for txn " + std::to_string(id));
          }
        }
      });
      pump();
    });
  };
  pump();

  sim.RunUntil(sched.horizon);

  for (const auto& [id, count] : outcome_counts) {
    if (count > 1) {
      result.report.Add("outcome-exactly-once",
                        "txn " + std::to_string(id) + " resolved " +
                            std::to_string(count) + " times");
    }
  }
  if (reject_outcomes != gate->rejected_count()) {
    result.report.Add("reject-accounting",
                      "gate counted " +
                          std::to_string(gate->rejected_count()) +
                          " rejections but clients observed " +
                          std::to_string(reject_outcomes));
  }
  // Conservation: admitted = submitted - rejected; unresolved admitted txns
  // must all still sit in the runtime's queues — none silently dropped.
  uint64_t resolved = outcome_counts.size();
  uint64_t unresolved = submitted - resolved;
  if (unresolved != gate->gate_depth()) {
    result.report.Add("conservation",
                      std::to_string(unresolved) +
                          " unresolved txns vs gate depth " +
                          std::to_string(gate->gate_depth()));
  }
  const core::StageGauges& stages = gated->stats().stages;
  size_t queued = stages.mempool_depth + stages.inflight_depth;
  if (gate->gate_depth() != queued) {
    result.report.Add(
        "no-silent-drop",
        std::to_string(gate->gate_depth()) +
            " admitted txns outstanding but only " + std::to_string(queued) +
            " accounted in mempool+inflight (the rest vanished)");
  }

  std::vector<const ledger::Chain*> chains;
  for (uint32_t i = 0; i < sched.num_nodes; i++) {
    ledger_audit::AuditChain(quorum->chain_of(i), "node " + std::to_string(i),
                             &result.report);
    chains.push_back(&quorum->chain_of(i));
  }
  ledger_audit::CheckPrefixAgreement(chains, &result.report);

  result.progress = gated->stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Transaction serializability --------------------------------------------

ScenarioResult RunTxnScenario(const ScenarioOptions& options) {
  ScenarioResult result;
  HistoryConfig config;
  struct Scheme {
    const char* name;
    HistoryResult (*run)(uint64_t, const HistoryConfig&);
  };
  const Scheme schemes[] = {{"occ", RunOccHistory},
                            {"mvcc", RunMvccHistory},
                            {"lock-table", RunLockTableHistory}};
  for (const Scheme& scheme : schemes) {
    HistoryResult history = scheme.run(options.seed, config);
    for (const std::string& error : history.errors) {
      result.report.Add("txn-progress",
                        std::string(scheme.name) + ": " + error);
    }
    std::string error;
    if (!CheckSerialEquivalence({}, history.committed, &error)) {
      result.report.Add("txn-serializability",
                        std::string(scheme.name) + ": " + error);
    }
    result.progress += history.committed.size();
  }
  result.schedule = "(no nemesis: interleavings are drawn from the seed)";
  return result;
}

// --- Cross-shard epoch fusion (harmonyshard) --------------------------------

// Raft shards plus a Raft sequencer group under partitions that sever whole
// shards mid-epoch (the generated virtual partition over {0..num_shards-1}
// is mapped onto the real shard node spans; the sequencer and the client
// ride with shard 0's side), drop bursts, and jitter spikes that lag
// individual shards' consensus. A two-key RMW stream over a small hot set
// makes a steady fraction of transactions cross-shard. Invariants:
//   * epoch atomicity + order agreement — every shard applies exactly the
//     epoch sequence the sequencer ordered (per-shard digest streams equal
//     in content and length: an epoch lands on all shards or none);
//   * zero aborts (deterministic execution, abort-free workload) and zero
//     2PC rounds (the epoch path has no prepare/decide to count);
//   * at-most-once completion per transaction;
//   * replay oracle — re-executing the applied epoch stream on a fresh
//     global state must reproduce every live shard's MPT root digest;
//   * liveness — the healed tail must commit transactions.
ScenarioResult RunShardEpochScenario(const ScenarioOptions& options,
                                     const ScheduleConfig& sched) {
  ScenarioResult result;
  sim::Simulator sim(options.seed);
  sim::SimNetwork net(&sim, sim::NetworkConfig{});
  sim::CostModel costs;

  systems::HarmonyShardConfig config;
  config.num_shards = sched.num_nodes;  // one virtual nemesis node per shard
  config.nodes_per_shard = 3;
  config.sequencer_nodes = 3;
  config.record_payloads = true;  // replay oracle input
  config.raft.unsafe_commit_without_quorum =
      options.bug == BugInjection::kRaftCommitWithoutQuorum;
  systems::HarmonyShardSystem system(&sim, &net, &costs, config);
  std::vector<std::pair<std::string, std::string>> initial;
  for (int i = 0; i < 4; i++) {
    initial.emplace_back("acct" + std::to_string(i), "0");
    system.Load(initial.back().first, initial.back().second);
  }
  system.Start();

  // The generated schedule partitions virtual nodes {0..num_shards-1}; each
  // virtual node is one whole shard's real id span, so a partition severs
  // shards from each other (and from the sequencer) without ever splitting
  // a replication group internally.
  Nemesis nemesis(&sim, &net, Nemesis::Hooks{});
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);
  for (FaultAction& action : schedule.actions) {
    if (action.kind != FaultAction::Kind::kPartition) continue;
    std::vector<std::vector<sim::NodeId>> groups;
    for (const auto& group : action.groups) {
      std::vector<sim::NodeId> real;
      bool has_shard0 = false;
      for (sim::NodeId virtual_id : group) {
        uint32_t s = static_cast<uint32_t>(virtual_id);
        if (s >= system.num_shards()) continue;
        if (s == 0) has_shard0 = true;
        const auto& ids = system.shard(s).node_ids();
        real.insert(real.end(), ids.begin(), ids.end());
      }
      if (has_shard0) {
        const auto& seq = system.sequencer().node_ids();
        real.insert(real.end(), seq.begin(), seq.end());
        real.push_back(config.client_node);
      }
      groups.push_back(std::move(real));
    }
    action.groups = std::move(groups);
  }
  nemesis.Arm(schedule);

  // Two-key hot-set RMW stream: the keys hash across the shards, so a
  // steady fraction of transactions touches two shards and exercises the
  // ReadForward path. The client stops at the quiet tail so every ordered
  // epoch can settle before the final checks.
  const sim::Time stop_time =
      static_cast<sim::Time>(sched.horizon * (1.0 - sched.quiet_tail));
  uint64_t next_txn = 0;
  std::map<uint64_t, int> outcomes;
  std::function<void()> client = [&] {
    if (sim.Now() >= stop_time) return;
    core::TxnRequest request;
    request.txn_id = ++next_txn;
    request.client_id = 7;
    request.contract = "ycsb";
    request.ops.push_back(
        {core::OpType::kReadModifyWrite, "acct" + std::to_string(next_txn % 4),
         "v" + std::to_string(next_txn)});
    request.ops.push_back({core::OpType::kReadModifyWrite,
                           "acct" + std::to_string((next_txn + 1) % 4),
                           "w" + std::to_string(next_txn)});
    uint64_t id = request.txn_id;
    system.Submit(request, [&result, &outcomes, id](const core::TxnResult&) {
      if (++outcomes[id] > 1) {
        result.report.Add("exactly-once", "txn " + std::to_string(id) +
                                              " resolved more than once");
      }
    });
    sim.Schedule(80 * sim::kMs, client);
  };
  sim.Schedule(10 * sim::kMs, client);

  sim.RunUntil(sched.horizon);

  // Epoch atomicity + order agreement: every shard's applied digest stream
  // must equal shard 0's and count exactly what the sequencer ordered.
  const uint64_t ordered = system.sequencer().epochs_cut();
  const auto& digests0 = system.shard(0).epoch_digests();
  for (uint32_t s = 0; s < system.num_shards(); s++) {
    const auto& digests = system.shard(s).epoch_digests();
    if (digests.size() != ordered) {
      result.report.Add(
          "epoch-atomicity",
          "shard " + std::to_string(s) + " applied " +
              std::to_string(digests.size()) + " epochs but the sequencer " +
              "ordered " + std::to_string(ordered));
    }
    if (s > 0 && digests != digests0) {
      result.report.Add("epoch-agreement",
                        "shard " + std::to_string(s) +
                            " epoch digest stream diverges from shard 0");
    }
  }

  if (system.stats().aborted != 0) {
    result.report.Add("det-aborts",
                      "deterministic execution reported " +
                          std::to_string(system.stats().aborted) +
                          " aborts on an abort-free workload");
  }
  if (system.sharding_stats().two_pc_rounds != 0) {
    result.report.Add("no-2pc",
                      "epoch path reported " +
                          std::to_string(system.sharding_stats().two_pc_rounds) +
                          " 2PC rounds; it must never coordinate");
  }

  // Replay oracle: re-execute shard 0's applied epoch stream serially on a
  // fresh global key-value world; rebuilding each shard's MPT from the
  // final world must reproduce every live shard's root digest (the MPT root
  // is insertion-order independent, so content equality is exact).
  {
    class WorldView : public contract::StateView {
     public:
      explicit WorldView(const std::map<std::string, std::string>* world)
          : world_(world) {}
      Status Get(const Slice& key, std::string* value) override {
        auto it = world_->find(key.ToString());
        if (it == world_->end()) return Status::NotFound();
        *value = it->second;
        return Status::Ok();
      }

     private:
      const std::map<std::string, std::string>* world_;
    };
    std::map<std::string, std::string> world(initial.begin(), initial.end());
    auto contracts = contract::ContractRegistry::CreateDefault();
    txn::DeterministicExecutor executor(contracts.get(), &costs,
                                        config.exec_lanes);
    for (const std::string& payload : system.shard(0).applied_payloads()) {
      sharding::EpochBatch batch;
      if (!sharding::EpochBatch::Deserialize(payload, &batch)) {
        result.report.Add("replay", "undecodable applied epoch payload");
        continue;
      }
      WorldView view(&world);
      txn::EpochOutcome outcome = executor.ExecuteEpoch(batch.txns, &view);
      for (const auto& txn_result : outcome.results) {
        for (const auto& [key, value] : txn_result.writes) {
          world[key] = value;
        }
      }
    }
    for (uint32_t s = 0; s < system.num_shards(); s++) {
      adt::MerklePatriciaTrie rebuilt;
      for (const auto& [key, value] : world) {
        if (system.partitioner().ShardOf(key) == s) rebuilt.Put(key, value);
      }
      if (!(rebuilt.RootDigest() == system.shard(s).StateDigest())) {
        result.report.Add(
            "state-digest",
            "shard " + std::to_string(s) +
                " live MPT root differs from the replay oracle's rebuild");
      }
    }
  }

  result.progress = system.stats().committed;
  if (result.progress == 0) {
    result.report.Add("liveness",
                      "no transaction committed over the whole run "
                      "(network heals in the quiet tail)");
  }
  result.sim_events = sim.executed_events();
  result.schedule = schedule.ToString();
  return result;
}

// --- Elasticity (replica lifecycle) -----------------------------------------

struct ElasticOptions {
  uint32_t initial_nodes = 3;
  /// Ids [0, max_nodes) are pre-assigned simulator partitions at world
  /// construction, so joiners never add partitions mid-run (the parallel
  /// engine's partition set is fixed once running).
  uint32_t max_nodes = 5;
  bool partitioned = false;  // one simulator partition per replica
  unsigned threads = 1;
  sim::Time horizon = 10 * sim::kSec;
  sim::Time client_gap = 20 * sim::kMs;
  /// Flash crowd: inside [flash_start, flash_end) the client tightens its
  /// gap to flash_gap (0 = no flash crowd).
  sim::Time flash_gap = 0;
  sim::Time flash_start = 0;
  sim::Time flash_end = 0;
  /// The leader folds a snapshot (and compacts its log) once this many
  /// entries applied past the previous anchor.
  uint64_t snapshot_every = 48;
  uint32_t key_space = 48;
};

/// Drives a replicated key-value Raft group ("k=v" put commands) through the
/// full lifecycle protocol under nemesis control: periodic content-addressed
/// snapshots with log compaction on the leader, delta snapshot transfers to
/// stragglers and joiners (lifecycle::SnapshotTransfer), single-server
/// membership changes, and leadership drain before leader removal. All
/// orchestration (client, snapshot folding, laggard rescue, join/leave state
/// machines) runs as control events — global events in partitioned worlds,
/// so world-shared state is only touched with every partition parked; node
/// state (kv map, applied log, membership observations) is only mutated on
/// the owning node's partition.
class ElasticRaftGroup {
 public:
  ElasticRaftGroup(uint64_t seed, const ElasticOptions& opts, BugInjection bug)
      : opts_(opts), sim_(seed), net_(&sim_, sim::NetworkConfig{}) {
    sim_.set_threads(opts_.threads);
    if (opts_.partitioned) {
      for (sim::NodeId id = 0; id < opts_.max_nodes; id++) {
        sim_.AssignNode(id, sim_.AddPartition());
      }
      net_.SyncPartitions();  // partitions were added after net_ constructed
    }
    kv_.resize(opts_.max_nodes);
    applied_.resize(opts_.max_nodes);
    frontier_.assign(opts_.max_nodes, 0);
    views_.resize(opts_.max_nodes);
    store_.resize(opts_.max_nodes);
    folds_.resize(opts_.max_nodes);
    stats_.resize(opts_.max_nodes);
    transfer_busy_.assign(opts_.max_nodes, 0);
    transfers_failed_.assign(opts_.max_nodes, 0);
    left_.assign(opts_.max_nodes, 0);
    admitted_.assign(opts_.max_nodes, 0);
    for (sim::NodeId id = 0; id < opts_.initial_nodes; id++) admitted_[id] = 1;
    started_.assign(opts_.max_nodes, 0);
    rescues_.assign(opts_.max_nodes, 0);

    consensus::RaftConfig config;
    config.unsafe_commit_without_quorum =
        bug == BugInjection::kRaftCommitWithoutQuorum;
    // Both lifecycle opt-ins: a drained leader's successor must commit
    // without waiting for client traffic, and a snapshotted joiner must pull
    // the leader's probe to its anchor in one round trip.
    config.leader_noop = true;
    config.fast_backtrack = true;
    cluster_ = consensus::RaftCluster::Create(
        &sim_, &net_, &costs_, MakeIds(opts_.initial_nodes), config,
        [this](sim::NodeId node, uint64_t index, const std::string& cmd) {
          frontier_[node] = index;
          applied_[node].emplace_back(index, cmd);
          CatchupDigestChecker::ApplyCommand(cmd, &kv_[node]);
        });
    for (consensus::RaftNode* node : cluster_->all()) WireNode(node);
    for (sim::NodeId id = 0; id < opts_.initial_nodes; id++) started_[id] = 1;
  }

  void Run(const FaultSchedule& schedule) {
    Nemesis::Hooks hooks;
    hooks.crash = [this](sim::NodeId id) {
      consensus::RaftNode* node = cluster_->node(id);
      if (node == nullptr) return;
      down_.insert(id);
      net_.SetNodeDown(id, true);
      sim::Simulator::PartitionScope scope(&sim_, sim_.PartitionOfNode(id));
      node->Crash();
    };
    hooks.restart = [this](sim::NodeId id) {
      consensus::RaftNode* node = cluster_->node(id);
      if (node == nullptr || down_.count(id) == 0) return;
      down_.erase(id);
      net_.SetNodeDown(id, false);
      sim::Simulator::PartitionScope scope(&sim_, sim_.PartitionOfNode(id));
      node->Restart();
    };
    hooks.join = [this](sim::NodeId id) { Join(id); };
    hooks.leave = [this](sim::NodeId id) { LeaveStep(id, false); };
    hooks.drain = [this](sim::NodeId id) { LeaveStep(id, true); };
    Nemesis nemesis(&sim_, &net_, std::move(hooks));
    if (opts_.partitioned) {
      nemesis.ArmGlobal(schedule);
    } else {
      nemesis.Arm(schedule);
    }
    cluster_->StartAll();
    StartClient();
    StartMaintenance();
    sim_.RunUntil(opts_.horizon);
    sim_events_ = sim_.executed_events();
  }

  /// Determinism oracle for the parallel engine: two worlds with the same
  /// (seed, schedule) must agree on every per-node apply log, every
  /// membership observation, and the event total.
  bool SameOutcome(const ElasticRaftGroup& other) const {
    return applied_ == other.applied_ && views_ == other.views_ &&
           sim_events_ == other.sim_events_;
  }

  void FinalChecks(const FaultSchedule& schedule, ScenarioResult* result) {
    // State-machine agreement + canonical committed log.
    std::map<uint64_t, std::string> canon;
    for (sim::NodeId id = 0; id < opts_.max_nodes; id++) {
      for (const auto& [index, cmd] : applied_[id]) {
        auto [it, inserted] = canon.emplace(index, cmd);
        if (!inserted && it->second != cmd) {
          result->report.Add(
              "raft-state-machine",
              "node " + std::to_string(id) + " applied '" + cmd +
                  "' at index " + std::to_string(index) + " where '" +
                  it->second + "' was already applied");
        }
      }
      result->progress += applied_[id].size();
    }
    // Membership-change safety over every observed config.
    MembershipInvariantChecker mcheck;
    mcheck.SeedInitial(MakeIds(opts_.initial_nodes));
    for (sim::NodeId id = 0; id < opts_.max_nodes; id++) {
      for (const auto& view : views_[id]) mcheck.OnConfigChange(id, view);
    }
    mcheck.CheckFinal();
    result->report.Merge(*mcheck.report());
    // Catch-up correctness: every replica's materialized state — whether it
    // got there by normal applies, snapshot install, or delta rescue — must
    // equal a replay of the canonical log through its frontier.
    CatchupDigestChecker dcheck;
    for (const auto& [index, cmd] : canon) dcheck.NoteCommitted(index, cmd);
    for (sim::NodeId id = 0; id < opts_.max_nodes; id++) {
      if (cluster_->node(id) == nullptr) continue;
      dcheck.CheckNode(id, frontier_[id], kv_[id]);
    }
    result->report.Merge(*dcheck.report());
    // Log matching across whatever membership survived (snapshot-aware).
    RaftInvariantChecker rcheck(cluster_->all());
    rcheck.CheckFinal();
    result->report.Merge(*rcheck.report());
    // Every scheduled join/leave must have finished inside the horizon (the
    // schedules leave a generous quiet tail).
    consensus::RaftNode* leader = FindLeader();
    for (const FaultAction& action : schedule.actions) {
      if (action.kind == FaultAction::Kind::kJoin && !started_[action.node]) {
        result->report.Add("join-liveness",
                           "node " + std::to_string(action.node) +
                               " never finished joining (transfer + config "
                               "change + start)");
      }
      if ((action.kind == FaultAction::Kind::kLeave ||
           action.kind == FaultAction::Kind::kDrain) &&
          leader != nullptr && leader->membership().Contains(action.node)) {
        result->report.Add("leave-liveness",
                           "node " + std::to_string(action.node) +
                               " is still a member after its scheduled leave");
      }
    }
    if (result->progress == 0) {
      result->report.Add("liveness",
                         "no node applied any command over the whole run");
    }
    result->sim_events = sim_events_;
  }

  uint32_t rescues(sim::NodeId id) const { return rescues_[id]; }
  uint64_t frontier(sim::NodeId id) const { return frontier_[id]; }
  uint64_t snapshots_taken() const { return snapshots_taken_; }
  uint64_t chunks_reused() const {
    uint64_t total = 0;
    for (const auto& s : stats_) total += s.chunks_reused;
    return total;
  }

 private:
  struct Fold {
    lifecycle::SnapshotManifest manifest;
    uint64_t term = 0;
    lifecycle::MembershipView view;
  };

  /// Control-plane scheduling: global events in partitioned worlds (all
  /// partitions parked — the only safe context for world-shared state).
  void Ctl(sim::Time delay, std::function<void()> fn) {
    if (opts_.partitioned) {
      sim_.ScheduleGlobal(delay, std::move(fn));
    } else {
      sim_.Schedule(delay, std::move(fn));
    }
  }

  /// Highest-term claimant wins: a partitioned-away stale leader still
  /// believes it leads until it hears the new term, and steering the client
  /// (or a config change) at it would black-hole proposals for the whole
  /// isolation window.
  consensus::RaftNode* FindLeader() {
    consensus::RaftNode* best = nullptr;
    for (consensus::RaftNode* node : cluster_->all()) {
      if (!node->IsLeader() || node->retired()) continue;
      if (best == nullptr || node->current_term() > best->current_term()) {
        best = node;
      }
    }
    return best;
  }

  void WireNode(consensus::RaftNode* node) {
    sim::NodeId id = node->id();
    node->set_on_config_change(
        [this, id](const lifecycle::MembershipView& view) {
          views_[id].push_back(view);
          // A joiner replaying config entries that predate its own admission
          // correctly sees views without itself — only a disappearance
          // *after* admission means it was removed.
          if (view.Contains(id)) {
            admitted_[id] = 1;
          } else if (admitted_[id]) {
            left_[id] = 1;
          }
        });
  }

  void StartClient() {
    client_tick_ = [this] {
      consensus::RaftNode* leader = FindLeader();
      if (leader != nullptr) {
        sim::Simulator::PartitionScope scope(&sim_,
                                             sim_.PartitionOfNode(leader->id()));
        uint64_t n = next_op_++;
        leader->Propose("k" + std::to_string(n % opts_.key_space) + "=v" +
                            std::to_string(n),
                        [](Status, uint64_t) {});
      }
      sim::Time gap = opts_.client_gap;
      if (opts_.flash_gap > 0 && sim_.Now() >= opts_.flash_start &&
          sim_.Now() < opts_.flash_end) {
        gap = opts_.flash_gap;
      }
      Ctl(gap, client_tick_);
    };
    Ctl(10 * sim::kMs, client_tick_);
  }

  void StartMaintenance() {
    maintenance_tick_ = [this] {
      MaybeFold();
      RescueLaggards();
      Ctl(120 * sim::kMs, maintenance_tick_);
    };
    Ctl(120 * sim::kMs, maintenance_tick_);
  }

  /// Periodic snapshot on EVERY live replica (each folds its own applied
  /// prefix, as real replicas checkpoint independently): chunk the applied
  /// state, keep the manifest + term + membership for future transfers,
  /// compact the log. Because followers compact too, a long-isolated
  /// laggard can never be back-filled from someone's intact log — recovery
  /// has to go through the delta snapshot transfer path.
  void MaybeFold() {
    for (consensus::RaftNode* node : cluster_->all()) {
      sim::NodeId id = node->id();
      if (!started_[id] || left_[id] || down_.count(id) > 0 ||
          node->crashed() || node->retired()) {
        continue;
      }
      if (node->last_applied() <
          node->snapshot_index() + opts_.snapshot_every) {
        continue;
      }
      uint64_t anchor = node->last_applied();
      Fold& fold = folds_[id];
      fold.term = node->EntryTerm(anchor);
      fold.view = node->membership();
      fold.manifest =
          lifecycle::BuildSnapshot(kv_[id], anchor, snap_config_, &store_[id]);
      {
        sim::Simulator::PartitionScope scope(&sim_, sim_.PartitionOfNode(id));
        node->InstallSnapshot(anchor, fold.term);
      }
      snapshots_taken_++;
    }
  }

  /// A follower whose replication position fell below the leader's snapshot
  /// anchor can never be back-filled from the log (those entries are
  /// compacted away) — rescue it with a delta snapshot transfer.
  void RescueLaggards() {
    consensus::RaftNode* leader = FindLeader();
    if (leader == nullptr) return;
    const Fold& fold = folds_[leader->id()];
    if (fold.manifest.empty() ||
        fold.manifest.anchor != leader->snapshot_index()) {
      return;  // this leader has no fold matching its own anchor yet
    }
    for (sim::NodeId id = 0; id < opts_.max_nodes; id++) {
      if (id == leader->id() || transfer_busy_[id] || left_[id] ||
          !started_[id] || down_.count(id) > 0) {
        continue;
      }
      consensus::RaftNode* node = cluster_->node(id);
      if (node == nullptr || node->retired()) continue;
      if (node->commit_index() >= leader->snapshot_index()) continue;
      if (leader->match_index_of(id) >= leader->snapshot_index()) continue;
      StartTransfer(leader->id(), id, fold);
    }
  }

  void Join(sim::NodeId id) {
    if (id >= opts_.max_nodes || cluster_->node(id) != nullptr) return;
    // The joiner's version-0 view is the BOOTSTRAP config, not the current
    // membership: if it ends up replaying the log from entry 1 (leader has
    // not compacted), applying each config entry reconstructs every version
    // exactly as the original replicas saw it. A snapshot install merely
    // fast-forwards past that replay.
    std::vector<sim::NodeId> peers;
    for (sim::NodeId m : MakeIds(opts_.initial_nodes)) {
      if (m != id) peers.push_back(m);
    }
    WireNode(cluster_->AddNode(id, peers));
    JoinStep(id);
  }

  /// Join state machine, advanced by polling (robust against leadership
  /// churn, duplicate proposals, and transfer failures — every phase simply
  /// re-runs until its postcondition holds):
  ///   1. state: pull a verified snapshot if the group compacted past us
  ///   2. membership: replicate "#cfg add <id>" until we are a member
  ///   3. start: arm timers once admitted
  void JoinStep(sim::NodeId id) {
    if (left_[id]) return;  // removed before the join finished: abandon
    consensus::RaftNode* node = cluster_->node(id);
    consensus::RaftNode* leader = FindLeader();
    if (leader == nullptr) {
      Ctl(250 * sim::kMs, [this, id] { JoinStep(id); });
      return;
    }
    if (leader->snapshot_index() > node->commit_index()) {
      const Fold& fold = folds_[leader->id()];
      if (!transfer_busy_[id] && !fold.manifest.empty() &&
          fold.manifest.anchor == leader->snapshot_index()) {
        StartTransfer(leader->id(), id, fold);
      }
      Ctl(250 * sim::kMs, [this, id] { JoinStep(id); });
      return;
    }
    if (!leader->membership().Contains(id)) {
      lifecycle::ConfigChange cc;
      cc.kind = lifecycle::ConfigChangeKind::kAddNode;
      cc.node = id;
      {
        sim::Simulator::PartitionScope scope(&sim_,
                                             sim_.PartitionOfNode(leader->id()));
        leader->ProposeConfigChange(cc, [](Status, uint64_t) {});
      }
      Ctl(300 * sim::kMs, [this, id] { JoinStep(id); });
      return;
    }
    if (!started_[id]) {
      sim::Simulator::PartitionScope scope(&sim_, sim_.PartitionOfNode(id));
      node->Start();
      started_[id] = 1;
      joins_completed_++;
    }
  }

  /// Leave state machine: with `drain`, a leader first hands leadership to
  /// its most caught-up follower (TransferLeadership pushes the backlog and
  /// sends TimeoutNow), then the removal replicates like any other change.
  void LeaveStep(sim::NodeId id, bool drain) {
    consensus::RaftNode* node = cluster_->node(id);
    if (node == nullptr) return;
    consensus::RaftNode* leader = FindLeader();
    if (leader == nullptr) {
      Ctl(250 * sim::kMs, [this, id, drain] { LeaveStep(id, drain); });
      return;
    }
    if (!leader->membership().Contains(id)) {
      leaves_completed_++;
      return;
    }
    if (drain && leader->id() == id) {
      sim::NodeId target = BestDrainTarget(leader);
      if (target != id) {
        sim::Simulator::PartitionScope scope(&sim_, sim_.PartitionOfNode(id));
        leader->TransferLeadership(target);
      }
      Ctl(400 * sim::kMs, [this, id, drain] { LeaveStep(id, drain); });
      return;
    }
    lifecycle::ConfigChange cc;
    cc.kind = lifecycle::ConfigChangeKind::kRemoveNode;
    cc.node = id;
    {
      sim::Simulator::PartitionScope scope(&sim_,
                                           sim_.PartitionOfNode(leader->id()));
      leader->ProposeConfigChange(cc, [](Status, uint64_t) {});
    }
    Ctl(300 * sim::kMs, [this, id, drain] { LeaveStep(id, drain); });
  }

  sim::NodeId BestDrainTarget(consensus::RaftNode* leader) {
    sim::NodeId best = leader->id();
    uint64_t best_match = 0;
    bool found = false;
    for (sim::NodeId m : leader->membership().members) {
      if (m == leader->id() || left_[m] || down_.count(m) > 0) continue;
      consensus::RaftNode* node = cluster_->node(m);
      if (node == nullptr || node->crashed()) continue;
      uint64_t match = leader->match_index_of(m);
      if (!found || match > best_match) {
        best = m;
        best_match = match;
        found = true;
      }
    }
    return best;
  }

  void StartTransfer(sim::NodeId source, sim::NodeId joiner, Fold fold) {
    transfer_busy_[joiner] = 1;
    lifecycle::SnapshotTransfer::Source src;
    src.available = [this, source] {
      consensus::RaftNode* node = cluster_->node(source);
      return node != nullptr && !node->crashed();
    };
    // The manifest is frozen at transfer start so its (anchor, term, view)
    // triple stays consistent even if the source folds again mid-transfer;
    // the chunk store keeps old chunks, so the frozen digests stay servable.
    src.manifest = [fold] { return fold.manifest; };
    src.chunks = [this, source] { return &store_[source]; };
    src.log_suffix = [](uint64_t) { return lifecycle::LogSuffix{}; };
    sim::Simulator::PartitionScope scope(&sim_, sim_.PartitionOfNode(joiner));
    lifecycle::SnapshotTransfer::Start(
        &sim_, &net_, source, joiner, std::move(src), &store_[joiner],
        [this, joiner] {
          consensus::RaftNode* node = cluster_->node(joiner);
          return node != nullptr && !node->crashed() && !left_[joiner];
        },
        transfer_config_,
        [this, joiner, fold](lifecycle::TransferResult result) {
          // Joiner partition.
          transfer_busy_[joiner] = 0;
          lifecycle::CatchupStats& acc = stats_[joiner];
          acc.control_bytes += result.stats.control_bytes;
          acc.manifest_bytes += result.stats.manifest_bytes;
          acc.chunk_bytes += result.stats.chunk_bytes;
          acc.chunks_fetched += result.stats.chunks_fetched;
          acc.chunks_reused += result.stats.chunks_reused;
          acc.retries += result.stats.retries;
          if (!result.ok) {
            transfers_failed_[joiner]++;
            return;
          }
          FinishTransfer(joiner, fold);
        });
  }

  void FinishTransfer(sim::NodeId joiner, const Fold& fold) {
    consensus::RaftNode* node = cluster_->node(joiner);
    // A rescue that raced normal replication past the anchor is stale.
    if (node == nullptr || fold.manifest.anchor <= node->commit_index()) return;
    std::map<std::string, std::string> state;
    if (!lifecycle::RestoreSnapshot(fold.manifest, store_[joiner], &state)) {
      transfers_failed_[joiner]++;
      return;
    }
    kv_[joiner] = std::move(state);
    frontier_[joiner] = fold.manifest.anchor;
    node->InstallSnapshot(fold.manifest.anchor, fold.term, fold.view);
    folds_[joiner] = fold;  // this node can now source future transfers
    rescues_[joiner]++;
  }

  ElasticOptions opts_;
  sim::Simulator sim_;
  sim::SimNetwork net_;
  sim::CostModel costs_;
  lifecycle::SnapshotConfig snap_config_;
  /// Fail-fast transfer policy: a transfer aimed at (or from) a node behind
  /// a network partition is doomed, and while it retries the target's busy
  /// flag blocks any replacement. Short attempts + the 120ms maintenance
  /// tick re-initiating with a fresh fold beat long in-place backoff.
  lifecycle::TransferConfig transfer_config_{/*retry_timeout=*/150 * sim::kMs,
                                             /*max_attempts=*/4};
  std::unique_ptr<consensus::RaftCluster> cluster_;

  // Node-confined state (only touched on the owning node's partition).
  std::vector<std::map<std::string, std::string>> kv_;
  std::vector<std::vector<std::pair<uint64_t, std::string>>> applied_;
  std::vector<uint64_t> frontier_;
  std::vector<std::vector<lifecycle::MembershipView>> views_;
  std::vector<lifecycle::ChunkStore> store_;
  std::vector<Fold> folds_;
  std::vector<lifecycle::CatchupStats> stats_;
  std::vector<uint8_t> transfer_busy_;
  std::vector<uint32_t> transfers_failed_;
  std::vector<uint8_t> left_;
  std::vector<uint8_t> admitted_;
  std::vector<uint8_t> started_;
  std::vector<uint32_t> rescues_;

  // Control-plane state (ctl events only).
  std::set<sim::NodeId> down_;
  uint64_t next_op_ = 0;
  uint64_t snapshots_taken_ = 0;
  uint64_t joins_completed_ = 0;
  uint64_t leaves_completed_ = 0;
  uint64_t sim_events_ = 0;
  std::function<void()> client_tick_;
  std::function<void()> maintenance_tick_;
};

// Scale-out during a flash crowd, on the parallel engine: 3 replicas grow to
// 5 while the client floods, replayed at 1 and 2 worker threads (identical
// outcomes required).
ScenarioResult RunElasticGrowthScenario(const ScenarioOptions& options) {
  ScenarioResult result;
  ScheduleConfig sched;
  sched.num_nodes = 3;
  sched.horizon = 10 * sim::kSec;
  sched.allow_crash = false;
  sched.allow_partition = false;
  sched.allow_drop = false;
  sched.max_jitter_us = 10 * sim::kMs;
  sched.max_joins = 2;
  FaultSchedule schedule = GenerateSchedule(options.seed, sched);

  ElasticOptions eopts;
  eopts.initial_nodes = 3;
  eopts.max_nodes = 5;
  eopts.partitioned = true;
  eopts.horizon = sched.horizon;
  eopts.client_gap = 15 * sim::kMs;
  eopts.flash_gap = 3 * sim::kMs;
  eopts.flash_start = 2500 * sim::kMs;
  eopts.flash_end = 4500 * sim::kMs;

  eopts.threads = 1;
  ElasticRaftGroup serial(options.seed, eopts, options.bug);
  serial.Run(schedule);
  {
    eopts.threads = 2;
    ElasticRaftGroup parallel(options.seed, eopts, options.bug);
    parallel.Run(schedule);
    if (!serial.SameOutcome(parallel)) {
      result.report.Add("parallel-determinism",
                        "threads=2 elastic world diverged from threads=1 "
                        "(apply logs, membership views, or event totals)");
    }
  }
  serial.FinalChecks(schedule, &result);
  result.schedule = schedule.ToString();
  return result;
}

// Serial drain/replace of every original replica: node i is drained
// (leadership handed off if it leads), removed, and replaced by fresh node
// 5+i — a rolling restart where the whole fleet turns over.
ScenarioResult RunRollingRestartScenario(const ScenarioOptions& options) {
  ScenarioResult result;
  ScheduleConfig noise;
  noise.num_nodes = 5;
  noise.horizon = 13 * sim::kSec;
  noise.allow_crash = false;
  noise.allow_partition = false;
  noise.allow_drop = false;
  noise.max_jitter_us = 8 * sim::kMs;
  FaultSchedule schedule = GenerateSchedule(options.seed, noise);
  for (uint32_t i = 0; i < 5; i++) {
    FaultAction drain;
    drain.at = (400 + 1800 * i) * sim::kMs;
    drain.kind = FaultAction::Kind::kDrain;
    drain.node = i;
    schedule.actions.push_back(drain);
    FaultAction join;
    join.at = drain.at + 900 * sim::kMs;
    join.kind = FaultAction::Kind::kJoin;
    join.node = 5 + i;
    schedule.actions.push_back(join);
  }
  std::stable_sort(
      schedule.actions.begin(), schedule.actions.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });

  ElasticOptions eopts;
  eopts.initial_nodes = 5;
  eopts.max_nodes = 10;
  eopts.horizon = noise.horizon;
  eopts.client_gap = 25 * sim::kMs;
  eopts.snapshot_every = 40;
  ElasticRaftGroup world(options.seed, eopts, options.bug);
  world.Run(schedule);
  world.FinalChecks(schedule, &result);
  result.schedule = schedule.ToString();
  return result;
}

// A replica is partitioned away twice while the leader keeps snapshotting
// and compacting its log past the laggard's position; each heal must end in
// a delta snapshot rescue (the second one reusing chunks already fetched).
ScenarioResult RunLaggardRejoinScenario(const ScenarioOptions& options) {
  ScenarioResult result;
  ScheduleConfig noise;
  noise.num_nodes = 5;
  noise.horizon = 11 * sim::kSec;
  noise.allow_crash = false;
  noise.allow_partition = false;
  noise.allow_drop = false;
  noise.max_jitter_us = 8 * sim::kMs;
  FaultSchedule schedule = GenerateSchedule(options.seed, noise);

  const sim::NodeId laggard = static_cast<sim::NodeId>(options.seed % 5);
  std::vector<sim::NodeId> rest;
  for (sim::NodeId id = 0; id < 5; id++) {
    if (id != laggard) rest.push_back(id);
  }
  auto cut = [&](sim::Time at, FaultAction::Kind kind) {
    FaultAction action;
    action.at = at;
    action.kind = kind;
    if (kind == FaultAction::Kind::kPartition) {
      action.groups = {{laggard}, rest};
    }
    schedule.actions.push_back(action);
  };
  cut(800 * sim::kMs, FaultAction::Kind::kPartition);
  cut(3800 * sim::kMs, FaultAction::Kind::kHeal);
  cut(5500 * sim::kMs, FaultAction::Kind::kPartition);
  cut(7500 * sim::kMs, FaultAction::Kind::kHeal);
  std::stable_sort(
      schedule.actions.begin(), schedule.actions.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });

  ElasticOptions eopts;
  eopts.initial_nodes = 5;
  eopts.max_nodes = 5;
  eopts.horizon = noise.horizon;
  eopts.client_gap = 18 * sim::kMs;
  eopts.snapshot_every = 32;
  ElasticRaftGroup world(options.seed, eopts, options.bug);
  world.Run(schedule);
  world.FinalChecks(schedule, &result);
  // Both isolation windows outlast several snapshot intervals, so log
  // back-fill is impossible and the laggard's recovery proves the delta
  // catch-up path ran.
  if (world.rescues(laggard) == 0 && result.report.ok()) {
    result.report.Add("catchup-liveness",
                      "laggard node " + std::to_string(laggard) +
                          " was never rescued by a snapshot transfer despite "
                          "the leader compacting past it");
  }
  result.schedule = schedule.ToString();
  return result;
}

}  // namespace

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"raft_crash_restart",
       "5-node Raft under crash/restart faults (<=2 down at once)",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 5;
         sched.max_concurrent_down = 2;
         sched.allow_partition = false;
         sched.allow_drop = false;
         sched.allow_jitter = false;
         sched.horizon = 10 * sim::kSec;
         return RunRaftScenario(options, sched);
       }},
      {"raft_partition",
       "5-node Raft under the full nemesis menu: crashes, partitions, "
       "message-drop bursts, jitter spikes",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 5;
         sched.max_concurrent_down = 2;
         sched.horizon = 10 * sim::kSec;
         return RunRaftScenario(options, sched);
       }},
      {"raft_parallel",
       "5-node Raft with one simulator partition per replica, faults and "
       "client injected via global events; the same seed runs at 1 and 2 "
       "worker threads and must produce identical apply logs and event "
       "totals (conservative parallel engine determinism)",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 5;
         sched.max_concurrent_down = 2;
         sched.horizon = 5 * sim::kSec;
         return RunPartitionedRaftScenario(options, sched);
       }},
      {"pbft_crash",
       "4-node PBFT (f=1) under crash/restart, loss bursts and jitter",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.max_concurrent_down = 1;
         sched.allow_partition = false;
         sched.max_drop_rate = 0.2;
         sched.horizon = 8 * sim::kSec;
         return RunBftScenario(options, sched, {});
       }},
      {"pbft_byzantine",
       "7-node PBFT (f=2) with an equivocating replica 0, plus one "
       "crash/restart budget and loss bursts",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 7;
         sched.max_concurrent_down = 1;
         sched.allow_partition = false;
         sched.max_drop_rate = 0.2;
         sched.horizon = 8 * sim::kSec;
         return RunBftScenario(options, sched, {0});
       }},
      {"ledger_pipeline",
       "3-node Raft apply stream sealed into per-node hash-linked blocks "
       "over MPT state; chains audited block by block",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 3;
         sched.max_concurrent_down = 1;
         sched.allow_partition = false;
         sched.allow_drop = false;
         sched.allow_jitter = false;
         sched.horizon = 8 * sim::kSec;
         return RunLedgerPipelineScenario(options, sched);
       }},
      {"quorum_system",
       "full Quorum (order-execute blockchain on Raft) under partitions, "
       "loss bursts and jitter; per-node ledgers audited",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.allow_crash = false;
         sched.max_drop_rate = 0.3;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunQuorumScenario(options, sched);
       }},
      {"harmony_system",
       "fused order-then-deterministic-execute pipeline (harmonylike) under "
       "partitions, loss bursts and jitter; chains, prefix agreement and "
       "state-digest replay audited",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.allow_crash = false;
         sched.max_drop_rate = 0.3;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunHarmonyScenario(options, sched);
       }},
      {"txn_serializability",
       "random OCC / MVCC / lock-table histories checked against a serial "
       "oracle (final state certified by an audit txn)",
       [](const ScenarioOptions& options) { return RunTxnScenario(options); }},
      {"overload_shed",
       "flash crowd far past Quorum's capacity with a reject-newest admission "
       "gate under partitions; exactly-once outcomes, reject accounting, "
       "no-silent-drop conservation and ledger audits checked",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 4;
         sched.allow_crash = false;
         // Partitions + jitter only: iid message loss would break the
         // strict conservation check (the Quorum client path has no
         // retransmit, so a dropped submit or completion legitimately
         // vanishes). Partitions never cut the client links — the client
         // node is outside every replica group — so conservation stays
         // exact while consensus is still stressed.
         sched.allow_drop = false;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunOverloadShedScenario(options, sched);
       }},
      {"shard_epoch",
       "harmonyshard (global sequencer + 3 Raft shards) under partitions "
       "that sever whole shards mid-epoch, drop bursts and jitter; epoch "
       "atomicity, digest agreement, zero 2PC rounds, at-most-once "
       "completions and a global replay oracle checked",
       [](const ScenarioOptions& options) {
         ScheduleConfig sched;
         sched.num_nodes = 3;  // virtual nodes = shards
         sched.allow_crash = false;
         sched.max_drop_rate = 0.3;
         sched.horizon = 8 * sim::kSec;
         sched.quiet_tail = 0.35;
         return RunShardEpochScenario(options, sched);
       }},
      {"elastic_growth",
       "3-replica Raft KV group scales out to 5 mid-flash-crowd on the "
       "parallel engine (snapshot transfer + single-server config changes), "
       "replayed at 1 and 2 worker threads; membership safety, catch-up "
       "digests and join liveness checked",
       [](const ScenarioOptions& options) {
         return RunElasticGrowthScenario(options);
       }},
      {"rolling_restart",
       "every replica of a 5-node Raft KV group is serially drained "
       "(leadership hand-off), removed and replaced by a fresh joiner under "
       "live traffic; membership safety, catch-up digests and join/leave "
       "liveness checked",
       [](const ScenarioOptions& options) {
         return RunRollingRestartScenario(options);
       }},
      {"laggard_rejoin",
       "one replica is partitioned away twice while the leader snapshots and "
       "compacts past it; each heal must end in a delta snapshot rescue "
       "(chunk-dedup catch-up), verified by digest against full replay",
       [](const ScenarioOptions& options) {
         return RunLaggardRejoinScenario(options);
       }},
  };
  return kScenarios;
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& scenario : AllScenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

ScenarioResult RunScenario(const Scenario& scenario,
                           const ScenarioOptions& options) {
  // Scenarios construct their simulators internally, so tracing rides in on
  // the process-default sink (serial replay contexts only — see the
  // trace_path doc comment).
  obs::TraceSink sink;
  if (!options.trace_path.empty()) {
    sim::Simulator::SetDefaultTraceSink(&sink);
  }
  ScenarioResult result = scenario.run(options);
  if (!options.trace_path.empty()) {
    sim::Simulator::SetDefaultTraceSink(nullptr);
    obs::WriteChromeTrace(sink, options.trace_path);
  }
  result.scenario = scenario.name;
  result.seed = options.seed;
  result.bug = options.bug;
  return result;
}

}  // namespace dicho::testing
