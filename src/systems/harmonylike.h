#ifndef DICHO_SYSTEMS_HARMONYLIKE_H_
#define DICHO_SYSTEMS_HARMONYLIKE_H_

#include <memory>
#include <string>
#include <vector>

#include "adt/mpt.h"
#include "contract/contract.h"
#include "core/types.h"
#include "ledger/ledger.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "systems/runtime/elasticity.h"
#include "systems/runtime/mempool.h"
#include "systems/runtime/runtime.h"
#include "systems/runtime/transport.h"
#include "txn/deterministic.h"

namespace dicho::systems {

enum class HarmonyConsensus { kRaft, kBft };

struct HarmonyConfig {
  uint32_t num_nodes = 5;
  HarmonyConsensus consensus = HarmonyConsensus::kRaft;
  /// Sequencer cuts an epoch on this cadence.
  sim::Time epoch_interval = 50 * sim::kMs;
  size_t max_epoch_txns = 500;
  uint64_t max_epoch_bytes = 1ull << 20;
  /// Modeled deterministic-execution worker lanes per replica.
  uint32_t exec_lanes = 4;
  sim::NodeId client_node = runtime::kClientNode;
  consensus::RaftConfig raft;
  consensus::BftConfig bft;
  /// Replica-lifecycle support (default-off; enables AddReplica — Raft
  /// consensus only).
  runtime::ElasticityConfig elasticity;
  /// Fast storage path (DESIGN.md §2g): replica MPTs store large values out
  /// of line (adt::MptOptions) and per-write execution cost is priced with
  /// MptUpdateCostFast. Default-off — out-of-line encoding changes state
  /// digests, so golden traces run with the original layout.
  bool fast_storage = false;
};

/// Cumulative deterministic-scheduling statistics (ablation reporting).
struct HarmonyEpochStats {
  uint64_t epochs = 0;
  uint64_t scheduled_txns = 0;
  uint64_t conflict_edges = 0;
  uint64_t total_layers = 0;  // sum of per-epoch layer counts
  sim::Time makespan_us = 0;  // modeled multi-lane execution time
  sim::Time serial_us = 0;    // single-lane equivalent work

  double AvgDepth() const {
    return epochs == 0 ? 0.0
                       : static_cast<double>(total_layers) /
                             static_cast<double>(epochs);
  }
  double LaneSpeedup() const {
    return makespan_us == 0 ? 1.0 : serial_us / makespan_us;
  }
};

/// Harmony-style fused design: order-then-deterministic-execute (the point
/// "When Private Blockchain Meets Deterministic Database" shows dominates
/// both of the paper's blockchain execution orders under contention).
/// Consensus (Raft or PBFT via the shared runtime transport) orders an
/// epoch of *unexecuted* transactions; every replica then executes the
/// epoch with the deterministic conflict-layer scheduler (src/txn/
/// deterministic.h) against its own MPT state. There is no validation
/// phase to fail and no re-execution: the schedule is a pure function of
/// the order, so replicas stay byte-identical and the only aborts are
/// application constraint aborts. Contrast with Quorum (order-execute,
/// serial double execution) and Fabric (execute-order-validate, OCC aborts
/// climb with skew).
///
/// Design-dimension choices: transaction-based replication / consensus
/// (CFT Raft or BFT PBFT) / deterministic concurrent execution / ledger /
/// MPT-authenticated state / no sharding.
class HarmonySystem : public core::TransactionalSystem {
 public:
  HarmonySystem(sim::Simulator* sim, sim::SimNetwork* net,
                const sim::CostModel* costs, HarmonyConfig config);

  void Start() override;
  bool HasSequencer() const;

  void Submit(const core::TxnRequest& request, core::TxnCallback cb) override;
  void Query(const core::ReadRequest& request, core::ReadCallback cb) override;
  const core::SystemStats& stats() const override { return stats_; }
  std::string name() const override { return "harmonylike"; }

  void Load(const std::string& key, const std::string& value) override {
    nodes_.ForEach([&](sim::NodeId id, Node& node) {
      node.state.Put(key, value);
      if (runtime::ReplicaTracker* t = tracker(id)) t->OnLoad(key, value);
    });
  }

  /// Lifecycle (requires config.elasticity.enabled and Raft consensus):
  /// scales the replica set out by one — snapshot + log-tail transfer from
  /// a live replica, then Raft single-server admission. Because execution
  /// is deterministic, catch-up is a pure data transfer: the joiner
  /// replays ordered epochs past the anchor and lands byte-identical
  /// (PAPERS.md, "When Private Blockchain Meets Deterministic Database").
  sim::NodeId AddReplica(std::function<void(const runtime::JoinReport&)> done);
  runtime::ReplicaTracker* tracker(sim::NodeId node) {
    size_t index = nodes_.index_of(node);
    return index < trackers_.size() ? trackers_[index].get() : nullptr;
  }

  const adt::MerklePatriciaTrie& state_of(sim::NodeId node) const {
    return nodes_.at(node).state;
  }
  const ledger::Chain& chain_of(sim::NodeId node) const {
    return nodes_.at(node).chain;
  }
  const std::vector<sim::NodeId>& node_ids() const { return nodes_.ids(); }
  const HarmonyEpochStats& epoch_stats() const { return epoch_stats_; }
  size_t mempool_depth() const { return mempool_.size(); }

 private:
  struct Node {
    explicit Node(sim::Simulator* sim) : cpu(sim) {}
    adt::MerklePatriciaTrie state;
    ledger::Chain chain;
    sim::CpuResource cpu;  // the replica's execution engine
  };
  struct PendingTxn {
    core::TxnRequest request;
    core::TxnCallback cb;
    sim::Time submit_time = 0;
    sim::Time proposed_time = 0;
  };

  sim::NodeId SequencerId() const;
  sim::NodeId CompletionId() const;
  runtime::ReplicaTracker* MakeTracker(sim::NodeId node);
  void SequencerTick();
  void CutAndOrderEpoch();
  void OnEpochCommitted(sim::NodeId node, uint64_t seq,
                        const std::string& serialized);

  sim::Simulator* sim_;
  sim::SimNetwork* net_;
  const sim::CostModel* costs_;
  HarmonyConfig config_;
  core::SystemStats stats_;
  HarmonyEpochStats epoch_stats_;
  runtime::NodeSet<Node> nodes_;
  /// Parallel to nodes_; empty when elasticity is disabled (the default).
  std::vector<std::unique_ptr<runtime::ReplicaTracker>> trackers_;
  std::unique_ptr<runtime::Transport> transport_;
  std::unique_ptr<contract::ContractRegistry> contracts_;
  txn::DeterministicExecutor executor_;

  runtime::Mempool<PendingTxn> mempool_;
  runtime::InflightTable<PendingTxn> inflight_;
  uint64_t next_epoch_number_ = 0;
};

}  // namespace dicho::systems

#endif  // DICHO_SYSTEMS_HARMONYLIKE_H_
