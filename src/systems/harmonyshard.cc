#include "systems/harmonyshard.h"

#include <utility>

#include "obs/trace.h"

namespace dicho::systems {

HarmonyShardSystem::HarmonyShardSystem(sim::Simulator* sim,
                                       sim::SimNetwork* net,
                                       const sim::CostModel* costs,
                                       HarmonyShardConfig config)
    : sim_(sim),
      net_(net),
      costs_(costs),
      config_(config),
      partitioner_(config_.num_shards == 0 ? 1 : config_.num_shards),
      planner_(&partitioner_),
      contracts_(contract::ContractRegistry::CreateDefault()),
      inflight_(&stats_.stages) {
  if (config_.num_shards == 0) config_.num_shards = 1;

  sharding::EpochSequencer::Config seq;
  seq.base = runtime::kHarmonyShardBase;
  seq.num_nodes = config_.sequencer_nodes;
  seq.bft = config_.bft;
  seq.epoch_interval = config_.epoch_interval;
  seq.max_epoch_txns = config_.max_epoch_txns;
  seq.max_epoch_bytes = config_.max_epoch_bytes;
  seq.raft = config_.raft;
  seq.bft_config = config_.bft_config;
  sequencer_ = std::make_unique<sharding::EpochSequencer>(
      sim, net, costs, seq, &stats_.stages,
      [this](const core::TxnRequest& request) {
        if (PendingTxn* pending = inflight_.Find(request.txn_id)) {
          pending->proposed_time = sim_->Now();
        }
      },
      [this](sharding::EpochBatch batch) {
        OnEpochOrdered(std::move(batch));
      });

  // With elasticity on, each shard's id span gets headroom for joins so a
  // grown group never collides with the next shard's base. Zero when off —
  // node ids (and therefore the golden baselines) are unchanged.
  const uint32_t headroom = config_.elasticity.enabled ? 8 : 0;
  for (uint32_t s = 0; s < config_.num_shards; s++) {
    sharding::ShardExecutor::Config shard;
    shard.shard = s;
    shard.base = runtime::kHarmonyShardBase + config_.sequencer_nodes +
                 s * (config_.nodes_per_shard + headroom);
    shard.num_nodes = config_.nodes_per_shard;
    shard.bft = config_.bft;
    shard.exec_lanes = config_.exec_lanes;
    shard.raft = config_.raft;
    shard.bft_config = config_.bft_config;
    shard.record_payloads = config_.record_payloads;
    shard.elasticity = config_.elasticity;
    shards_.push_back(std::make_unique<sharding::ShardExecutor>(
        sim, net, costs, &planner_, contracts_.get(), shard, &shard_stats_,
        [this](uint32_t shard_id, const sharding::EpochBatch& batch,
               const txn::EpochOutcome& outcome, sim::Time ordered_time) {
          OnShardApplied(shard_id, batch, outcome, ordered_time);
        }));
  }
  std::vector<sharding::ShardExecutor*> peers;
  for (auto& shard : shards_) peers.push_back(shard.get());
  for (auto& shard : shards_) shard->ConnectPeers(peers);

  // Epoch dissemination tree: the sequencer's fixed distributor replica
  // feeds shard 0, and each shard's entry replica relays the payload to
  // shards 2i+1 / 2i+2 on receipt. Exactly-once per link (partitions delay
  // a link's retransmits, they cannot lose an epoch); a severed interior
  // shard delays its subtree until the partition heals, which the
  // shard_epoch fuzz scenario exercises.
  for (uint32_t s = 0; s < config_.num_shards; s++) {
    sim::NodeId from = s == 0 ? sequencer_->DistributorId()
                              : shards_[(s - 1) / 2]->EntryId();
    epoch_links_.push_back(std::make_unique<sharding::ReliableLink>(
        sim, net, from, shards_[s]->EntryId(),
        [this, s](uint64_t, const std::string& payload) {
          OnEpochRelay(s, payload);
        }));
  }

  if (obs::MetricsRegistry* registry = sim_->metrics()) {
    runtime::RegisterSystemStats(registry, "harmonyshard", &stats_);
    inflight_.AttachMetrics(registry, "harmonyshard.inflight");
    registry->GetCallbackGauge("harmonyshard.epochs_ordered", [this] {
      return static_cast<double>(shard_stats_.epochs_ordered);
    });
    registry->GetCallbackGauge("harmonyshard.cross_shard_txns", [this] {
      return static_cast<double>(shard_stats_.cross_shard_txns);
    });
    registry->GetCallbackGauge("harmonyshard.read_forwards", [this] {
      return static_cast<double>(shard_stats_.read_forwards);
    });
    registry->GetCallbackGauge("harmonyshard.two_pc_rounds", [this] {
      return static_cast<double>(shard_stats_.two_pc_rounds);
    });
  }
}

void HarmonyShardSystem::Start() {
  sequencer_->Start();
  for (auto& shard : shards_) shard->Start();
}

uint64_t HarmonyShardSystem::ForwardRetransmits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->ForwardRetransmits();
  for (const auto& link : epoch_links_) total += link->retransmits();
  return total;
}

std::vector<sim::NodeId> HarmonyShardSystem::AllNodeIds() const {
  std::vector<sim::NodeId> ids = sequencer_->node_ids();
  for (const auto& shard : shards_) {
    ids.insert(ids.end(), shard->node_ids().begin(), shard->node_ids().end());
  }
  return ids;
}

void HarmonyShardSystem::OnEpochOrdered(sharding::EpochBatch batch) {
  shard_stats_.epochs_ordered++;
  epoch_links_[0]->Send(batch.Serialize());
}

void HarmonyShardSystem::OnEpochRelay(uint32_t shard,
                                      const std::string& payload) {
  for (uint32_t child : {2 * shard + 1, 2 * shard + 2}) {
    if (child < config_.num_shards) epoch_links_[child]->Send(payload);
  }
  shards_[shard]->DeliverEpoch(payload);
}

void HarmonyShardSystem::OnShardApplied(uint32_t shard,
                                        const sharding::EpochBatch& batch,
                                        const txn::EpochOutcome& outcome,
                                        sim::Time ordered_time) {
  // Runs on the shard's entry replica once the slice makespan has drained.
  // Each transaction completes from its *home* shard (the lowest involved
  // shard id), so every outcome reaches the client exactly once even though
  // all active shards execute the full batch.
  sim::NodeId entry = shards_[shard]->EntryId();
  for (size_t i = 0; i < batch.txns.size(); i++) {
    PendingTxn* found = inflight_.Find(batch.txns[i].txn_id);
    if (found == nullptr || found->home_shard != shard) continue;
    PendingTxn pending;
    if (!inflight_.Take(batch.txns[i].txn_id, &pending)) continue;
    bool valid = i < outcome.results.size() ? outcome.results[i].valid : true;
    net_->Send(
        entry, config_.client_node, 64,
        [this, entry, pending = std::move(pending), valid,
         ordered_time]() mutable {
          core::TxnResult result;
          result.submit_time = pending.submit_time;
          result.finish_time = sim_->Now();
          if (pending.proposed_time == 0) {
            pending.proposed_time = pending.submit_time;
          }
          result.phases.Set(core::Phase::kProposal,
                            pending.proposed_time - pending.submit_time);
          result.phases.Set(core::Phase::kOrder,
                            ordered_time - pending.proposed_time);
          result.phases.Set(core::Phase::kExecute,
                            result.finish_time - ordered_time);
          obs::EmitPhaseSpan(sim_, core::Phase::kProposal, entry,
                             pending.request.txn_id, pending.submit_time,
                             pending.proposed_time);
          obs::EmitPhaseSpan(sim_, core::Phase::kOrder, entry,
                             pending.request.txn_id, pending.proposed_time,
                             ordered_time);
          obs::EmitPhaseSpan(sim_, core::Phase::kExecute, entry,
                             pending.request.txn_id, ordered_time,
                             result.finish_time);
          if (valid) {
            result.status = Status::Ok();
            stats_.committed++;
          } else {
            // The only abort class deterministic execution admits: an
            // application constraint, identical on every shard.
            result.status = Status::Aborted("contract aborted");
            result.reason = core::AbortReason::kConstraint;
            stats_.aborted++;
            stats_.aborts_by_reason[result.reason]++;
          }
          pending.cb(result);
        });
  }
}

void HarmonyShardSystem::Submit(const core::TxnRequest& request,
                                core::TxnCallback cb) {
  sharding::TxnShardPlan plan = planner_.Plan(request);
  if (plan.cross_shard()) {
    shard_stats_.cross_shard_txns++;
  } else {
    shard_stats_.single_shard_txns++;
  }
  PendingTxn pending;
  pending.request = request;
  pending.cb = std::move(cb);
  pending.submit_time = sim_->Now();
  pending.home_shard = plan.home();
  // Client sends the signed transaction to the global sequencer's mempool;
  // routing needs no shard round-trip (planning is pure).
  net_->Send(config_.client_node, sequencer_->EntryId(),
             request.PayloadBytes() + 96,
             [this, pending = std::move(pending)]() mutable {
               core::TxnRequest request_copy = pending.request;
               uint64_t txn_id = request_copy.txn_id;
               inflight_.Insert(txn_id, std::move(pending));
               sequencer_->Enqueue(std::move(request_copy));
             });
}

void HarmonyShardSystem::Query(const core::ReadRequest& request,
                               core::ReadCallback cb) {
  stats_.queries++;
  sim::Time submit_time = sim_->Now();
  uint32_t shard = partitioner_.ShardOf(request.key);
  sim::NodeId target = shards_[shard]->EntryId();
  net_->Send(config_.client_node, target, 64 + request.key.size(),
             [this, shard, target, key = request.key, cb = std::move(cb),
              submit_time]() mutable {
               // Native read against the owning shard's slice — single-shard
               // reads never touch another shard.
               sim::Time cost = costs_->native_op_us + costs_->lsm_read_us;
               sim_->Schedule(cost, [this, shard, target, key,
                                     cb = std::move(cb),
                                     submit_time]() mutable {
                 std::string value;
                 Status s = shards_[shard]->state().Get(key, &value);
                 net_->Send(target, config_.client_node, 64 + value.size(),
                            [this, target, cb = std::move(cb), submit_time, s,
                             value = std::move(value)] {
                              core::ReadResult result;
                              result.status = s;
                              result.value = value;
                              result.submit_time = submit_time;
                              result.finish_time = sim_->Now();
                              result.phases.Set(core::Phase::kRead,
                                                result.finish_time -
                                                    submit_time);
                              obs::EmitPhaseSpan(sim_, core::Phase::kRead,
                                                 target, 0, submit_time,
                                                 result.finish_time);
                              cb(result);
                            });
               });
             });
}

}  // namespace dicho::systems
